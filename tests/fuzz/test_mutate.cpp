// GenProgram mutation: deterministic, and every mutant keeps the three
// invariants that make it a legal differential-oracle input (structure,
// deadlock freedom via equal barrier counts, recomputed closed form).
#include "fuzz/mutate.h"

#include <gtest/gtest.h>

#include "explore/program_gen.h"
#include "util/rng.h"

namespace pmc::fuzz {
namespace {

using explore::GenOp;
using explore::GenProgram;
using explore::ProgramShape;
using explore::generate_program;
using explore::shape_for_seed;

size_t barriers(const std::vector<GenOp>& ops) {
  size_t n = 0;
  for (const GenOp& op : ops) {
    if (op.kind == GenOp::Kind::kBarrier) ++n;
  }
  return n;
}

TEST(Mutate, DeterministicGivenRngState) {
  const GenProgram parent = generate_program(shape_for_seed(3));
  util::Rng a(7);
  util::Rng b(7);
  std::string what_a;
  std::string what_b;
  const GenProgram ca = mutate(parent, a, {}, &what_a);
  const GenProgram cb = mutate(parent, b, {}, &what_b);
  EXPECT_EQ(to_string(ca), to_string(cb));
  EXPECT_EQ(what_a, what_b);
  EXPECT_EQ(ca.shape.seed, cb.shape.seed);
}

TEST(Mutate, AlwaysReturnsAChangedWellFormedProgram) {
  util::Rng rng(11);
  for (uint64_t seed = 0; seed < 4; ++seed) {
    const GenProgram parent = generate_program(shape_for_seed(seed));
    for (int i = 0; i < 50; ++i) {
      std::string what;
      const GenProgram child = mutate(parent, rng, {}, &what);
      EXPECT_FALSE(what.empty());
      std::string why;
      EXPECT_TRUE(well_formed(child, &why)) << what << ": " << why;
      EXPECT_FALSE(child == parent && child.shape.seed == parent.shape.seed)
          << what << " produced an identical program";
    }
  }
}

TEST(Mutate, LongChainsKeepEveryInvariant) {
  // Chain mutations (each child becomes the next parent) — the farm's
  // actual usage pattern — and check barrier alignment, caps, and the
  // recomputed closed form at every step.
  const MutationLimits limits;
  util::Rng rng(99);
  GenProgram prog = generate_program(shape_for_seed(1));
  for (int step = 0; step < 300; ++step) {
    prog = mutate(prog, rng, limits);
    std::string why;
    ASSERT_TRUE(well_formed(prog, &why)) << "step " << step << ": " << why;
    ASSERT_LE(static_cast<int>(prog.threads.size()), limits.max_cores);
    const size_t b0 = barriers(prog.threads[0]);
    for (const auto& th : prog.threads) {
      ASSERT_LE(th.size(), limits.max_ops_per_thread);
      ASSERT_EQ(barriers(th), b0) << "step " << step;
    }
    // The oracle is recomputed from the op list: the closed form equals the
    // sum of addends per object, whatever the mutation did.
    for (int obj = 0; obj < prog.shape.objects; ++obj) {
      uint32_t want = GenProgram::initial_value(obj);
      for (const auto& th : prog.threads) {
        for (const GenOp& op : th) {
          if (op.obj != obj) continue;
          if (op.kind == GenOp::Kind::kUpdate) {
            want += op.arg + (op.flush ? op.arg2 : 0);
          } else if (op.kind == GenOp::Kind::kNested) {
            want += op.arg;
          }
        }
      }
      ASSERT_EQ(prog.expected_final(obj), want) << "step " << step;
    }
  }
}

TEST(Mutate, WellFormedNamesTheViolation) {
  std::string why;

  GenProgram unequal = generate_program(shape_for_seed(0));
  unequal.threads[0].push_back({GenOp::Kind::kBarrier});
  EXPECT_FALSE(well_formed(unequal, &why));
  EXPECT_NE(why.find("deadlock"), std::string::npos) << why;

  GenProgram wrong_count = generate_program(shape_for_seed(0));
  wrong_count.threads.pop_back();
  EXPECT_FALSE(well_formed(wrong_count, &why));
  EXPECT_NE(why.find("shape.cores"), std::string::npos) << why;

  GenProgram out_of_range = generate_program(shape_for_seed(0));
  out_of_range.threads[0][0] = GenOp{GenOp::Kind::kUpdate, /*obj=*/99,
                                     /*obj2=*/0, /*arg=*/1};
  EXPECT_FALSE(well_formed(out_of_range, &why));
  EXPECT_NE(why.find("x99"), std::string::npos) << why;

  GenProgram self_nest = generate_program(shape_for_seed(0));
  self_nest.threads[0][0] = GenOp{GenOp::Kind::kNested, /*obj=*/1,
                                  /*obj2=*/1, /*arg=*/2};
  EXPECT_FALSE(well_formed(self_nest, &why));
  EXPECT_NE(why.find("self-nest"), std::string::npos) << why;

  GenProgram zero_add = generate_program(shape_for_seed(0));
  zero_add.threads[0][0] = GenOp{GenOp::Kind::kUpdate, /*obj=*/0,
                                 /*obj2=*/0, /*arg=*/0};
  EXPECT_FALSE(well_formed(zero_add, &why));
  EXPECT_NE(why.find("zero addend"), std::string::npos) << why;

  EXPECT_TRUE(well_formed(generate_program(shape_for_seed(0)), &why)) << why;
}

TEST(Mutate, ReshapeStaysInsideTheLimits) {
  MutationLimits tight;
  tight.max_cores = 3;
  tight.max_objects = 3;
  tight.max_steps = 5;
  util::Rng rng(5);
  // shape_for_seed(0) = {cores 2, objects 2, steps 4}: already inside the
  // tight caps, and non-reshape operators never grow the shape.
  GenProgram prog = generate_program(shape_for_seed(0));
  for (int i = 0; i < 120; ++i) {
    prog = mutate(prog, rng, tight);
    ASSERT_LE(prog.shape.cores, tight.max_cores);
    ASSERT_LE(prog.shape.objects, tight.max_objects);
    ASSERT_LE(prog.shape.steps, tight.max_steps);
    ASSERT_GE(prog.shape.cores, 2);
  }
}

}  // namespace
}  // namespace pmc::fuzz
