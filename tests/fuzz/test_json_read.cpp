// The corpus-file JSON reader: exact-integer round trips and origin:line
// error naming, in the MachineConfig parser's style.
#include "fuzz/json_read.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pmc::fuzz {
namespace {

/// Runs `fn` and returns the CheckFailure message it must throw.
template <typename Fn>
std::string error_of(Fn fn) {
  try {
    fn();
  } catch (const util::CheckFailure& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected a CheckFailure";
  return {};
}

TEST(JsonRead, ParsesTheCorpusShapes) {
  const JsonValue v = json_parse(
      R"({"version": 1, "names": ["a", "b"], "nested": {"flag": true},
          "empty": [], "none": null})",
      "t");
  EXPECT_EQ(v.get("version", "t", "version").as_u64("t", "version"), 1u);
  const auto& names = v.get("names", "t", "names").as_array("t", "names");
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[1].as_string("t", "names[]"), "b");
  EXPECT_TRUE(v.get("nested", "t", "nested")
                  .get("flag", "t", "nested.flag")
                  .as_bool("t", "nested.flag"));
  EXPECT_TRUE(v.get("empty", "t", "empty").as_array("t", "empty").empty());
  EXPECT_EQ(v.get("none", "t", "none").kind, JsonValue::Kind::kNull);
  EXPECT_EQ(v.find("absent"), nullptr);
}

TEST(JsonRead, Uint64HashesRoundTripExactly) {
  // Full-range hb-class hashes; a double bounce would corrupt these, which
  // is why numbers keep their raw literal text.
  const JsonValue v = json_parse("[18446744073709551615, 9007199254740993]",
                                 "t");
  const auto& items = v.as_array("t", "root");
  EXPECT_EQ(items[0].as_u64("t", "root[]"), 18446744073709551615ull);
  EXPECT_EQ(items[1].as_u64("t", "root[]"), 9007199254740993ull);
  EXPECT_EQ(items[0].literal, "18446744073709551615");
}

TEST(JsonRead, StringEscapesDecode) {
  const JsonValue v = json_parse(R"("a\"b\\c\n\tA")", "t");
  EXPECT_EQ(v.as_string("t", "root"), "a\"b\\c\n\tA");
}

TEST(JsonRead, ErrorsNameOriginLineAndField) {
  const std::string missing = error_of([] {
    const JsonValue v = json_parse("{\n  \"a\": 1\n}", "corpus.json");
    v.get("next_id", "corpus.json", "next_id");
  });
  EXPECT_NE(missing.find("corpus.json:1"), std::string::npos) << missing;
  EXPECT_NE(missing.find("\"next_id\" is missing"), std::string::npos)
      << missing;

  const std::string wrong_kind = error_of([] {
    const JsonValue v = json_parse("{\n\n  \"execs\": \"many\"\n}", "s.json");
    v.get("execs", "s.json", "stats.execs").as_u64("s.json", "stats.execs");
  });
  EXPECT_NE(wrong_kind.find("s.json:3"), std::string::npos) << wrong_kind;
  EXPECT_NE(wrong_kind.find("\"stats.execs\" must be a number, got string"),
            std::string::npos)
      << wrong_kind;
}

TEST(JsonRead, RejectsInexactIntegers) {
  const JsonValue v = json_parse("{\"a\": 3.5, \"b\": -2}", "t");
  const std::string frac = error_of(
      [&] { v.get("a", "t", "a").as_u64("t", "a"); });
  EXPECT_NE(frac.find("not an exact unsigned integer"), std::string::npos)
      << frac;
  const std::string neg = error_of(
      [&] { v.get("b", "t", "b").as_u64("t", "b"); });
  EXPECT_NE(neg.find("must be non-negative"), std::string::npos) << neg;
  EXPECT_EQ(v.get("b", "t", "b").as_int("t", "b"), -2);
}

TEST(JsonRead, RejectsMalformedDocuments) {
  for (const char* bad :
       {"{", "[1,", "{\"a\" 1}", "{\"a\": 1} trailing", "tru",
        "{\"a\": 1, \"a\": 2}", "\"unterminated"}) {
    EXPECT_THROW(json_parse(bad, "t"), util::CheckFailure) << bad;
  }
  const std::string dup =
      error_of([] { json_parse("{\"k\": 1,\n \"k\": 2}", "t"); });
  EXPECT_NE(dup.find("duplicate key \"k\""), std::string::npos) << dup;
}

TEST(JsonRead, MemberOrderIsPreserved) {
  // The corpus writer emits keys in canonical order; preserving it on read
  // is what keeps load -> save byte-identical.
  const JsonValue v = json_parse("{\"z\": 1, \"a\": 2, \"m\": 3}", "t");
  ASSERT_EQ(v.members.size(), 3u);
  EXPECT_EQ(v.members[0].first, "z");
  EXPECT_EQ(v.members[1].first, "a");
  EXPECT_EQ(v.members[2].first, "m");
}

TEST(JsonRead, MissingFileNamesThePath) {
  const std::string err = error_of(
      [] { json_parse_file("/nonexistent/corpus.json"); });
  EXPECT_NE(err.find("/nonexistent/corpus.json"), std::string::npos) << err;
}

}  // namespace
}  // namespace pmc::fuzz
