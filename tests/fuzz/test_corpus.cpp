// Corpus persistence (ISSUE satellite): byte-identical re-save after a
// load (the losslessness behind stop/--resume), counters surviving the
// round trip, and corrupted entries rejected with errors naming the file
// and the bad field.
#include "fuzz/corpus.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "explore/program_gen.h"
#include "fuzz/json_read.h"
#include "fuzz/mutate.h"
#include "util/check.h"

namespace pmc::fuzz {
namespace {

namespace fs = std::filesystem;
using explore::GenProgram;
using explore::generate_program;
using explore::shape_for_seed;

/// Fresh scratch directory per test, removed on exit.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("pmc_corpus_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }
  fs::path operator/(const std::string& name) const { return path_ / name; }

 private:
  fs::path path_;
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void patch_file(const fs::path& p, const std::string& from,
                const std::string& to) {
  std::string text = slurp(p);
  const size_t at = text.find(from);
  ASSERT_NE(at, std::string::npos) << from << " not in " << p;
  text.replace(at, from.size(), to);
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out << text;
}

/// A corpus with two entries, per-back-end classes, growth samples and
/// non-zero counters — every field the save format carries.
Corpus populated() {
  Corpus c;
  const uint64_t a = c.add("seed:0", generate_program(shape_for_seed(0)));
  c.add("mutant:0:reshape", generate_program(shape_for_seed(3)));
  c.count_exec();
  c.note_classes("nocc", {3u, 1u, 18446744073709551615ull});
  c.record_growth();
  c.count_exec();
  c.note_classes("dsm", {7u, 3u});
  c.record_growth();
  SeedStats& stats = c.entry(a).stats;
  stats.execs = 5;
  stats.classes_discovered = 4;
  stats.schedules_explored = 120;
  stats.dpor_pruned = 64;
  stats.wall_micros = 1234;
  stats.last_new_exec = 2;
  (void)c.take_crash_index();
  return c;
}

TEST(Corpus, ProgramJsonRoundTripsExactly) {
  for (uint64_t seed : {0ull, 1ull, 2ull, 5ull}) {
    const GenProgram prog = generate_program(shape_for_seed(seed));
    const std::string text = program_to_json(prog);
    const GenProgram back =
        program_from_json(json_parse(text, "t"), "t");
    EXPECT_EQ(back, prog) << "seed " << seed;          // threads
    EXPECT_EQ(back.shape, prog.shape) << "seed " << seed;  // provenance
    // And the oracle survives: same closed form on every object.
    for (int obj = 0; obj < prog.shape.objects; ++obj) {
      EXPECT_EQ(back.expected_final(obj), prog.expected_final(obj));
    }
  }
}

TEST(Corpus, SaveLoadResaveIsByteIdentical) {
  const ScratchDir dir("resave");
  const Corpus c = populated();
  c.save(dir.str());
  const std::string index_before = slurp(dir / "corpus.json");
  const std::string seed0_before = slurp(dir / "seed_0.json");
  const std::string seed1_before = slurp(dir / "seed_1.json");

  const Corpus loaded = Corpus::load(dir.str());
  loaded.save(dir.str());
  EXPECT_EQ(slurp(dir / "corpus.json"), index_before);
  EXPECT_EQ(slurp(dir / "seed_0.json"), seed0_before);
  EXPECT_EQ(slurp(dir / "seed_1.json"), seed1_before);
}

TEST(Corpus, LoadReconstructsEveryCounter) {
  const ScratchDir dir("counters");
  Corpus c = populated();
  c.save(dir.str());

  Corpus loaded = Corpus::load(dir.str());
  EXPECT_EQ(loaded.total_execs(), 2u);
  EXPECT_EQ(loaded.total_classes(), 5u);
  ASSERT_EQ(loaded.entries().size(), 2u);
  EXPECT_EQ(loaded.entries()[0].origin, "seed:0");
  EXPECT_EQ(loaded.entries()[1].origin, "mutant:0:reshape");
  EXPECT_EQ(loaded.entry(0).stats, c.entry(0).stats);
  EXPECT_EQ(loaded.growth(), c.growth());
  // next_crash persisted: the first crash file after resume is crash_1.
  EXPECT_EQ(loaded.take_crash_index(), 1u);
  // next_id persisted: a new entry continues the dense id sequence.
  EXPECT_EQ(loaded.add("seed:9", generate_program(shape_for_seed(1))), 2u);
}

TEST(Corpus, NoteClassesCountsOnlyFreshHashes) {
  Corpus c;
  EXPECT_EQ(c.note_classes("nocc", {1, 2, 3}), 3u);
  EXPECT_EQ(c.note_classes("nocc", {3, 4}), 1u);
  // Class identity is per back-end: the same hash on another back-end is
  // new coverage.
  EXPECT_EQ(c.note_classes("dsm", {3}), 1u);
  EXPECT_EQ(c.total_classes(), 5u);
}

TEST(Corpus, GrowthOnlySamplesWhenCoverageGrows) {
  Corpus c;
  c.count_exec();
  c.note_classes("nocc", {1});
  c.record_growth();
  c.count_exec();
  c.record_growth();  // nothing new: no sample
  c.count_exec();
  c.note_classes("nocc", {2});
  c.record_growth();
  const std::vector<std::pair<uint64_t, uint64_t>> want = {{1, 1}, {3, 2}};
  EXPECT_EQ(c.growth(), want);
}

TEST(Corpus, RejectsCorruptionNamingFileAndField) {
  const auto error_of = [](auto fn) -> std::string {
    try {
      fn();
    } catch (const util::CheckFailure& e) {
      return e.what();
    }
    ADD_FAILURE() << "expected a CheckFailure";
    return {};
  };

  {  // Unknown back-end in the class map.
    const ScratchDir dir("backend");
    populated().save(dir.str());
    patch_file(dir / "corpus.json", "\"dsm\"", "\"vax\"");
    const std::string err =
        error_of([&] { Corpus::load(dir.str()); });
    EXPECT_NE(err.find("corpus.json"), std::string::npos) << err;
    EXPECT_NE(err.find("classes.vax"), std::string::npos) << err;
    EXPECT_NE(err.find("unregistered back-end"), std::string::npos) << err;
  }
  {  // Entry id beyond next_id.
    const ScratchDir dir("id");
    populated().save(dir.str());
    patch_file(dir / "corpus.json", "\"entries\": [0, 1]",
               "\"entries\": [0, 7]");
    const std::string err =
        error_of([&] { Corpus::load(dir.str()); });
    EXPECT_NE(err.find("entries[]"), std::string::npos) << err;
    EXPECT_NE(err.find("7"), std::string::npos) << err;
  }
  {  // Seed file disagreeing with the index about its id.
    const ScratchDir dir("mismatch");
    populated().save(dir.str());
    patch_file(dir / "seed_1.json", "\"id\": 1", "\"id\": 0");
    const std::string err =
        error_of([&] { Corpus::load(dir.str()); });
    EXPECT_NE(err.find("seed_1.json"), std::string::npos) << err;
    EXPECT_NE(err.find("\"id\""), std::string::npos) << err;
  }
  {  // Unsupported version.
    const ScratchDir dir("version");
    populated().save(dir.str());
    patch_file(dir / "corpus.json", "\"version\": 1", "\"version\": 2");
    const std::string err =
        error_of([&] { Corpus::load(dir.str()); });
    EXPECT_NE(err.find("\"version\""), std::string::npos) << err;
  }
  {  // A stats counter that is not an exact integer.
    const ScratchDir dir("stats");
    populated().save(dir.str());
    patch_file(dir / "seed_0.json", "\"execs\": 5", "\"execs\": \"5\"");
    const std::string err =
        error_of([&] { Corpus::load(dir.str()); });
    EXPECT_NE(err.find("seed_0.json"), std::string::npos) << err;
    EXPECT_NE(err.find("stats.execs"), std::string::npos) << err;
  }
  {  // A program edit that breaks well-formedness (zero addend).
    const ScratchDir dir("program");
    Corpus c;
    GenProgram prog;
    prog.shape.cores = 2;
    prog.shape.objects = 2;
    prog.threads = {{explore::GenOp{explore::GenOp::Kind::kUpdate,
                                    /*obj=*/0, /*obj2=*/0, /*arg=*/5}},
                    {explore::GenOp{explore::GenOp::Kind::kReadOnly,
                                    /*obj=*/1}}};
    c.add("seed:0", prog);
    c.save(dir.str());
    patch_file(dir / "seed_0.json", "\"arg\":5", "\"arg\":0");
    const std::string err =
        error_of([&] { Corpus::load(dir.str()); });
    EXPECT_NE(err.find("seed_0.json"), std::string::npos) << err;
    EXPECT_NE(err.find("not a runnable program"), std::string::npos) << err;
    EXPECT_NE(err.find("zero addend"), std::string::npos) << err;
  }
  {  // Missing seed file referenced by the index.
    const ScratchDir dir("missing");
    populated().save(dir.str());
    fs::remove(dir / "seed_1.json");
    const std::string err =
        error_of([&] { Corpus::load(dir.str()); });
    EXPECT_NE(err.find("seed_1.json"), std::string::npos) << err;
  }
}

TEST(Corpus, AddRefusesMalformedPrograms) {
  Corpus c;
  GenProgram broken = generate_program(shape_for_seed(0));
  broken.threads[0].push_back({explore::GenOp::Kind::kBarrier});
  EXPECT_THROW(c.add("seed:0", broken), util::CheckFailure);
  EXPECT_TRUE(c.entries().empty());
}

}  // namespace
}  // namespace pmc::fuzz
