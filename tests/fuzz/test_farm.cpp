// The coverage-guided farm (ISSUE tentpole acceptance): mutation reaches
// strictly more distinct hb-classes than blind seeding under the same exec
// budget, runs are bit-deterministic at jobs=1, stop/--resume is lossless,
// and seeded protocol faults funnel through the minimize pipeline into
// replayable failures.
#include "fuzz/farm.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "explore/litmus_driver.h"
#include "util/check.h"

namespace pmc::fuzz {
namespace {

namespace fs = std::filesystem;

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("pmc_farm_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }
  fs::path operator/(const std::string& name) const { return path_ / name; }

 private:
  fs::path path_;
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Small deterministic farm: two cheap back-ends, a handful of canonical
/// seeds, per-exec budgets low enough that the whole suite stays fast.
FarmOptions small_farm(uint64_t max_execs, bool mutate) {
  FarmOptions o;
  o.max_execs = max_execs;
  o.jobs = 1;
  o.seed = 1;
  o.mutate = mutate;
  o.initial_seeds = 4;
  o.backends = {rt::Target::kNoCC, rt::Target::kDSM};
  o.session.explore.max_schedules = 64;
  o.session.explore.horizon = 10;
  return o;
}

TEST(Farm, MutationBeatsBlindAtTheSameExecBudget) {
  // The acceptance gate: identical --seed, identical initial seeds and
  // per-exec budgets, identical exec count — the only difference is the
  // hb-class feedback loop (mutation + promotion roster scans).
  const uint64_t kBudget = 60;
  const FarmResult guided = Farm(small_farm(kBudget, /*mutate=*/true)).run();
  const FarmResult blind = Farm(small_farm(kBudget, /*mutate=*/false)).run();
  EXPECT_EQ(guided.execs, kBudget);
  EXPECT_EQ(blind.execs, kBudget);
  EXPECT_TRUE(guided.failures.empty());
  EXPECT_TRUE(blind.failures.empty());
  EXPECT_GT(guided.total_classes, blind.total_classes)
      << "guided=" << guided.total_classes
      << " blind=" << blind.total_classes;
  // The feedback loop is visibly doing its job: mutants got promoted.
  EXPECT_GT(guided.corpus_size, 4u);
}

TEST(Farm, RunsAreBitDeterministicAtJobsOne) {
  const FarmResult a = Farm(small_farm(30, /*mutate=*/true)).run();
  const FarmResult b = Farm(small_farm(30, /*mutate=*/true)).run();
  EXPECT_EQ(a.execs, b.execs);
  EXPECT_EQ(a.new_classes, b.new_classes);
  EXPECT_EQ(a.total_classes, b.total_classes);
  EXPECT_EQ(a.schedules, b.schedules);
  EXPECT_EQ(a.dpor_pruned, b.dpor_pruned);
  EXPECT_EQ(a.corpus_size, b.corpus_size);
  EXPECT_EQ(a.growth, b.growth);
}

TEST(Farm, CorpusOriginsAndStatsAreReproducible) {
  Farm a(small_farm(30, /*mutate=*/true));
  Farm b(small_farm(30, /*mutate=*/true));
  (void)a.run();
  (void)b.run();
  const auto& ea = a.corpus().entries();
  const auto& eb = b.corpus().entries();
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].id, eb[i].id);
    EXPECT_EQ(ea[i].origin, eb[i].origin);
    EXPECT_EQ(ea[i].program, eb[i].program);
    // Everything except wall_micros, which is wall-clock telemetry and
    // deliberately never feeds a farm decision.
    EXPECT_EQ(ea[i].stats.execs, eb[i].stats.execs);
    EXPECT_EQ(ea[i].stats.classes_discovered, eb[i].stats.classes_discovered);
    EXPECT_EQ(ea[i].stats.schedules_explored, eb[i].stats.schedules_explored);
    EXPECT_EQ(ea[i].stats.dpor_pruned, eb[i].stats.dpor_pruned);
    EXPECT_EQ(ea[i].stats.last_new_exec, eb[i].stats.last_new_exec);
  }
}

TEST(Farm, StopAndResumeAreLossless) {
  const ScratchDir dir("resume");

  FarmOptions first = small_farm(16, /*mutate=*/true);
  first.corpus_dir = dir.str();
  const FarmResult r1 = Farm(first).run();

  // Losslessness: what the farm saved reconstructs bit-for-bit.
  const std::string index_bytes = slurp(dir / "corpus.json");
  Corpus::load(dir.str()).save(dir.str());
  EXPECT_EQ(slurp(dir / "corpus.json"), index_bytes);

  // A resumed farm continues the same curve instead of starting over.
  FarmOptions second = small_farm(10, /*mutate=*/true);
  second.corpus_dir = dir.str();
  second.resume = true;
  Farm farm2(second);
  const FarmResult r2 = farm2.run();
  EXPECT_EQ(r2.execs, 10u);
  EXPECT_EQ(farm2.corpus().total_execs(), r1.execs + r2.execs);
  EXPECT_GE(r2.total_classes, r1.total_classes);
  EXPECT_GE(r2.growth.size(), r1.growth.size());
  // The resumed curve extends the saved one; history is never rewritten.
  for (size_t i = 0; i < r1.growth.size(); ++i) {
    EXPECT_EQ(r2.growth[i], r1.growth[i]) << "sample " << i;
  }
}

TEST(Farm, SeededFaultIsFoundMinimizedAndReplayable) {
  // Self-test soak: protocol faults seeded into every back-end must surface
  // through the farm's roster scans and come out program- and
  // schedule-minimized with a one-command repro (DiffFuzz's contract, now
  // via the farm path).
  FarmOptions o;
  o.max_execs = 12;
  o.jobs = 1;
  o.seed = 1;
  o.initial_seeds = 2;
  o.seed_base = 1;  // shape_for_seed(1): the DiffFuzz seeded-fault witness
  o.faults = explore::all_seeded_faults();
  o.session.explore.horizon = 10;
  o.session.explore.max_schedules = 1024;  // headroom: no truncation, so
                                           // shrinking always runs
  Farm farm(o);
  const FarmResult r = farm.run();
  ASSERT_FALSE(r.failures.empty());
  const FarmFailure& f = r.failures.front();
  EXPECT_FALSE(f.message.empty());
  // Roster-scan programs are canonical, so the repro is the standard
  // seed-based line, not a crash file.
  EXPECT_TRUE(f.crash_file.empty()) << f.crash_file;
  EXPECT_NE(f.repro.find("--seed-bug"), std::string::npos) << f.repro;
  EXPECT_NE(f.repro.find("--replay="), std::string::npos) << f.repro;

  // The minimized program still fails under the minimized schedule.
  const explore::CheckSession session(o.session);
  const explore::GenProgramTarget minimized(f.program, f.target, o.faults);
  bool applied = false;
  const explore::RunOutcome out = session.replay(minimized, f.schedule,
                                                 &applied);
  EXPECT_TRUE(applied);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.message, f.message);
}

TEST(Farm, HandoffOrderRegression) {
  // The farm's first real find — a harness bug, not a protocol bug. A
  // contended lock handoff could record the waiter's acquire event before
  // the holder's release event (the physical release is a scheduling
  // point), so the validator built no sync edge and flagged two properly
  // locked writes as a write/write race. The witness the farm minimized:
  // a flush-carrying update racing a plain update on one object. Must be
  // model-valid on every back-end (sim_env.cpp orders the events now).
  using explore::GenOp;
  explore::GenProgram prog;
  prog.shape.cores = 2;
  prog.shape.objects = 1;
  prog.shape.steps = 2;
  prog.threads = {
      {{.kind = GenOp::Kind::kCompute, .arg = 26},
       {.kind = GenOp::Kind::kUpdate, .arg = 5, .arg2 = 2, .flush = true},
       {.kind = GenOp::Kind::kBarrier}},
      {{.kind = GenOp::Kind::kUpdate, .arg = 8},
       {.kind = GenOp::Kind::kBarrier}},
  };
  ASSERT_TRUE(well_formed(prog));

  explore::SessionOptions o;
  o.explore.preemption_bound = 1;
  o.explore.horizon = 12;
  o.explore.max_schedules = 512;
  o.explore.dpor = explore::DporMode::kSleepSet;
  const explore::CheckSession session(o);
  for (const rt::Target t : rt::sim_targets()) {
    const explore::GenProgramTarget target(prog, t);
    const explore::CheckReport rep = session.check(target);
    EXPECT_FALSE(rep.truncated) << rt::to_string(t);
    EXPECT_TRUE(rep.ok) << rt::to_string(t) << ": "
                        << rep.first_failing_message;
  }
}

TEST(Farm, CrashFilesRoundTripAndReplay) {
  const ScratchDir dir("crash");
  CrashReport crash;
  crash.target = rt::Target::kSWCC;
  crash.program = explore::generate_program(explore::shape_for_seed(2));
  crash.schedule = explore::parse_decision_string("3:2,7:1");
  crash.message = "final state diverged on x1: got 1007, want 1012";
  crash.faults = {"swcc_skip_exit_writeback"};
  const std::string path = (dir / "crash_0.json").string();
  write_crash(path, crash);

  const CrashReport back = load_crash(path);
  EXPECT_EQ(back.target, crash.target);
  EXPECT_EQ(back.program, crash.program);
  EXPECT_EQ(back.program.shape, crash.program.shape);
  EXPECT_EQ(to_string(back.schedule), to_string(crash.schedule));
  EXPECT_EQ(back.message, crash.message);
  EXPECT_EQ(back.faults, crash.faults);
}

TEST(Farm, BudgetIsRequired) {
  FarmOptions o;  // neither seconds nor max_execs
  EXPECT_THROW(Farm(o).run(), util::CheckFailure);
}

TEST(Farm, GrowthCurveEndsAtTheReportedTotals) {
  const FarmResult r = Farm(small_farm(20, /*mutate=*/true)).run();
  ASSERT_FALSE(r.growth.empty());
  EXPECT_EQ(r.growth.back().second, r.total_classes);
  EXPECT_LE(r.growth.back().first, r.execs);
  for (size_t i = 1; i < r.growth.size(); ++i) {
    EXPECT_GT(r.growth[i].second, r.growth[i - 1].second);
    EXPECT_GE(r.growth[i].first, r.growth[i - 1].first);
  }
}

}  // namespace
}  // namespace pmc::fuzz
