// SeedPlan: the one resolver for every seed-width knob (ISSUE satellite).
// Precedence: explicit flag count > PMC_FUZZ_SEEDS > caller default, with
// clamping to [1, 10000] wherever the width came from.
#include "fuzz/seed_plan.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace pmc::fuzz {
namespace {

/// Scoped PMC_FUZZ_SEEDS override; restores the previous state on exit so
/// this suite composes with a widened ctest run.
class ScopedEnv {
 public:
  explicit ScopedEnv(const char* value) {
    const char* old = std::getenv("PMC_FUZZ_SEEDS");
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr) {
      ::setenv("PMC_FUZZ_SEEDS", value, 1);
    } else {
      ::unsetenv("PMC_FUZZ_SEEDS");
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv("PMC_FUZZ_SEEDS", saved_.c_str(), 1);
    } else {
      ::unsetenv("PMC_FUZZ_SEEDS");
    }
  }

 private:
  std::string saved_;
  bool had_ = false;
};

TEST(SeedPlan, DefaultWhenNothingElseSpeaks) {
  const ScopedEnv env(nullptr);
  const SeedPlan plan = SeedPlan::resolve(10);
  EXPECT_EQ(plan.count, 10u);
  EXPECT_EQ(plan.source, SeedPlan::Source::kDefault);
  EXPECT_STREQ(to_string(plan.source), "default");
}

TEST(SeedPlan, EnvBeatsDefault) {
  const ScopedEnv env("25");
  const SeedPlan plan = SeedPlan::resolve(10);
  EXPECT_EQ(plan.count, 25u);
  EXPECT_EQ(plan.source, SeedPlan::Source::kEnv);
}

TEST(SeedPlan, FlagBeatsEnv) {
  const ScopedEnv env("25");
  const SeedPlan plan = SeedPlan::resolve(10, /*flag_count=*/3);
  EXPECT_EQ(plan.count, 3u);
  EXPECT_EQ(plan.source, SeedPlan::Source::kFlag);
  EXPECT_STREQ(to_string(plan.source), "flag");
}

TEST(SeedPlan, WidthsClampToSaneRange) {
  const ScopedEnv env(nullptr);
  EXPECT_EQ(SeedPlan::resolve(0).count, 1u);
  EXPECT_EQ(SeedPlan::resolve(10, 0).count, 1u);
  EXPECT_EQ(SeedPlan::resolve(10, 1'000'000).count, 10'000u);
  const ScopedEnv wide("999999999");
  EXPECT_EQ(SeedPlan::resolve(10).count, 10'000u);
  const ScopedEnv junk("-3");
  EXPECT_EQ(SeedPlan::resolve(10).count, 1u);
}

TEST(SeedPlan, SeedsAreTheContiguousSweep) {
  SeedPlan plan;
  plan.base = 5;
  plan.count = 3;
  EXPECT_EQ(plan.seeds(), (std::vector<uint64_t>{5, 6, 7}));
}

TEST(SeedPlan, SweepHelperMatchesResolve) {
  const ScopedEnv env("4");
  const auto seeds = seed_sweep(10);
  ASSERT_EQ(seeds.size(), 4u);
  EXPECT_EQ(seeds.front(), 0u);
  EXPECT_EQ(seeds.back(), 3u);
}

}  // namespace
}  // namespace pmc::fuzz
