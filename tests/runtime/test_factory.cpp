// backend_from_string / target_from_string: exact inverses of to_string.
#include <gtest/gtest.h>

#include "runtime/program.h"

namespace pmc::rt {
namespace {

TEST(Factory, BackendFromStringRoundTrips) {
  for (BackendKind k : {BackendKind::kNoCC, BackendKind::kSWCC,
                        BackendKind::kDSM, BackendKind::kSPM}) {
    const auto back = backend_from_string(to_string(k));
    ASSERT_TRUE(back.has_value()) << to_string(k);
    EXPECT_EQ(*back, k);
  }
}

TEST(Factory, BackendFromStringRejectsUnknownNames) {
  EXPECT_FALSE(backend_from_string("").has_value());
  EXPECT_FALSE(backend_from_string("swc").has_value());
  EXPECT_FALSE(backend_from_string("SWCC").has_value());
  EXPECT_FALSE(backend_from_string("swcc ").has_value());
  EXPECT_FALSE(backend_from_string("host-sc").has_value());
}

TEST(Factory, TargetFromStringRoundTrips) {
  for (Target t : all_targets()) {
    const auto target = target_from_string(to_string(t));
    ASSERT_TRUE(target.has_value()) << to_string(t);
    EXPECT_EQ(*target, t);
  }
}

TEST(Factory, TargetFromStringRejectsUnknownNames) {
  EXPECT_FALSE(target_from_string("cache-coherent").has_value());
  EXPECT_FALSE(target_from_string("host").has_value());
}

}  // namespace
}  // namespace pmc::rt
