// backend_from_string / target_from_string: exact inverses of to_string,
// driven by the registry rather than a hand-maintained kind list.
#include <gtest/gtest.h>

#include "runtime/backends/registry.h"
#include "runtime/program.h"
#include "util/check.h"

namespace pmc::rt {
namespace {

TEST(Factory, BackendFromStringRoundTrips) {
  for (const BackendDescriptor& d : backend_registry()) {
    EXPECT_STREQ(to_string(d.kind), d.name);
    const auto back = backend_from_string(to_string(d.kind));
    ASSERT_TRUE(back.has_value()) << d.name;
    EXPECT_EQ(*back, d.kind);
  }
}

TEST(Factory, BackendFromStringRejectsUnknownNames) {
  EXPECT_FALSE(backend_from_string("").has_value());
  EXPECT_FALSE(backend_from_string("swc").has_value());
  EXPECT_FALSE(backend_from_string("SWCC").has_value());
  EXPECT_FALSE(backend_from_string("swcc ").has_value());
  EXPECT_FALSE(backend_from_string("host-sc").has_value());
}

TEST(Factory, OutOfRangeKindIsANamedErrorNotAQuestionMark) {
  // to_string/descriptor on a kind outside the registry must throw an error
  // that names the registered back-ends — no "?" placeholder (ISSUE 9).
  const auto bogus =
      static_cast<BackendKind>(static_cast<int>(backend_registry().size()));
  try {
    (void)to_string(bogus);
    FAIL() << "out-of-range BackendKind did not throw";
  } catch (const util::CheckFailure& e) {
    const std::string msg = e.what();
    for (const BackendDescriptor& d : backend_registry()) {
      EXPECT_NE(msg.find(d.name), std::string::npos) << msg;
    }
  }
}

TEST(Factory, TargetFromStringRoundTrips) {
  for (Target t : all_targets()) {
    const auto target = target_from_string(to_string(t));
    ASSERT_TRUE(target.has_value()) << to_string(t);
    EXPECT_EQ(*target, t);
  }
}

TEST(Factory, TargetFromStringRejectsUnknownNames) {
  EXPECT_FALSE(target_from_string("cache-coherent").has_value());
  EXPECT_FALSE(target_from_string("host").has_value());
}

}  // namespace
}  // namespace pmc::rt
