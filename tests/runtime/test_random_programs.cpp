// Property/fuzz suite: randomized annotated programs run on every simulated
// back-end (plus host), with three cross-cutting properties:
//  1. the final object contents are identical across all back-ends
//     (portability as determinism);
//  2. every run satisfies the Definition 12 trace validator;
//  3. the simulation itself is bit-deterministic (state hash).
//
// Program shape: each core performs a random sequence of exclusive
// read-modify-writes, read-only observations, flushes and barriers over a
// shared object set — lock-disciplined by construction, nondeterminism
// confined to lock order, results order-insensitive (commutative updates).
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>

#include "runtime/program.h"
#include "util/hash.h"
#include "util/rng.h"

namespace pmc::rt {
namespace {

struct FuzzConfig {
  uint64_t seed = 0;
  int cores = 4;
  int objects = 6;
  int steps = 60;  // operations per core
};

ProgramOptions opts(Target t, const FuzzConfig& f) {
  ProgramOptions o;
  o.target = t;
  o.cores = f.cores;
  o.machine.lm_bytes = 64 * 1024;
  o.machine.sdram_bytes = 2 * 1024 * 1024;
  o.machine.max_cycles = UINT64_C(2'000'000'000);
  o.lock_capacity = 64;
  return o;
}

/// Runs the random program; returns the FNV digest of all final objects.
uint64_t run_fuzz(Target t, const FuzzConfig& f, bool* validated_ok) {
  Program prog(opts(t, f));
  std::vector<ObjId> objs;
  for (int i = 0; i < f.objects; ++i) {
    objs.push_back(prog.create_typed<uint32_t>(
        static_cast<uint32_t>(i * 1000), Placement::kReplicated,
        "fuzz" + std::to_string(i)));
  }
  prog.run([&](Env& env) {
    // Per-core deterministic op stream (independent of interleaving).
    util::Rng rng(f.seed * 1315423911u + static_cast<uint64_t>(env.id()));
    for (int s = 0; s < f.steps; ++s) {
      const ObjId o = objs[rng.next_below(static_cast<uint64_t>(f.objects))];
      switch (rng.next_below(10)) {
        case 0:
        case 1:
        case 2:
        case 3: {  // commutative exclusive update
          env.entry_x(o);
          const uint32_t v = env.ld<uint32_t>(o);
          env.st(o, 0, v + 1 + static_cast<uint32_t>(env.id()));
          env.exit_x(o);
          break;
        }
        case 4: {  // update with mid-section flush
          env.entry_x(o);
          env.st(o, 0, env.ld<uint32_t>(o) + 3);
          env.flush(o);
          env.compute(rng.next_below(40));
          env.st(o, 0, env.ld<uint32_t>(o) + 4);
          env.exit_x(o);
          break;
        }
        case 5:
        case 6: {  // read-only observation (value unused: slow read)
          env.entry_ro(o);
          env.ld<uint32_t>(o);
          env.exit_ro(o);
          break;
        }
        case 7: {  // nested sections over two objects (LIFO)
          const ObjId o2 =
              objs[rng.next_below(static_cast<uint64_t>(f.objects))];
          if (o2 == o) break;
          env.entry_x(o);
          env.entry_ro(o2);
          const uint32_t v = env.ld<uint32_t>(o2);
          env.st(o, 0, env.ld<uint32_t>(o) + (v & 1));
          env.exit_ro(o2);
          env.exit_x(o);
          break;
        }
        case 8:
          env.compute(rng.next_below(60));
          break;
        case 9:
          env.fence();
          break;
      }
    }
    env.barrier();
  });
  if (validated_ok != nullptr && prog.validator() != nullptr) {
    *validated_ok = prog.validator()->ok();
  }
  uint64_t h = util::kFnvOffset;
  for (const ObjId o : objs) {
    h = util::hash_combine(h, prog.result<uint32_t>(o));
  }
  return h;
}

/// Seed list for the parameterized suite. Defaults to 10 seeds; CI/nightly
/// can widen coverage without a code change by exporting PMC_FUZZ_SEEDS=<n>
/// (clamped to [1, 10000]).
std::vector<uint64_t> fuzz_seeds() {
  int64_t n = 10;
  if (const char* env = std::getenv("PMC_FUZZ_SEEDS")) {
    n = std::atoll(env);
    if (n < 1) n = 1;
    if (n > 10'000) n = 10'000;
  }
  std::vector<uint64_t> seeds(static_cast<size_t>(n));
  std::iota(seeds.begin(), seeds.end(), UINT64_C(0));
  return seeds;
}

class FuzzSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSeeds, AllBackendsValidateAndConverge) {
  FuzzConfig f;
  f.seed = GetParam();
  f.cores = 3 + static_cast<int>(GetParam() % 3);

  // Case 7 reads a second object inside a section and folds (v & 1) into
  // the update, so the result depends on the interleaving — back-ends may
  // legitimately differ there. Totals must still validate, and *per
  // back-end* the run must be reproducible.
  for (Target t : sim_targets()) {
    bool ok = false;
    const uint64_t digest1 = run_fuzz(t, f, &ok);
    EXPECT_TRUE(ok) << to_string(t) << " seed=" << f.seed;
    bool ok2 = false;
    const uint64_t digest2 = run_fuzz(t, f, &ok2);
    EXPECT_EQ(digest1, digest2)
        << to_string(t) << " is not deterministic, seed=" << f.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::ValuesIn(fuzz_seeds()));

TEST(Fuzz, EagerAndLazyReleaseConvergeOnDsm) {
  FuzzConfig f;
  f.seed = 99;
  for (bool eager : {false, true}) {
    ProgramOptions o = opts(Target::kDSM, f);
    o.policy.dsm_eager_release = eager;
    Program prog(o);
    const ObjId x = prog.create_typed<uint32_t>(0, Placement::kReplicated, "x");
    prog.run([&](Env& env) {
      for (int i = 0; i < 30; ++i) {
        env.entry_x(x);
        env.st(x, 0, env.ld<uint32_t>(x) + 1);
        env.exit_x(x);
      }
    });
    EXPECT_EQ(prog.result<uint32_t>(x), 4u * 30u) << "eager=" << eager;
    prog.require_valid();
  }
}

TEST(Fuzz, EagerReleaseMakesUnacquiredReadersFresh) {
  // With eager release every exit broadcasts, so a reader polling its local
  // replica observes updates without ever acquiring — the convenience the
  // paper attributes to flush.
  ProgramOptions o = opts(Target::kDSM, FuzzConfig{});
  o.cores = 2;
  o.policy.dsm_eager_release = true;
  Program prog(o);
  const ObjId x = prog.create_typed<uint32_t>(0, Placement::kReplicated, "x");
  uint32_t seen = 0;
  prog.run([&](Env& env) {
    if (env.id() == 0) {
      env.entry_x(x);
      env.st<uint32_t>(x, 0, 7);
      env.exit_x(x);  // eager: broadcast happens here
    } else {
      do {
        env.entry_ro(x);
        seen = env.ld<uint32_t>(x);
        env.exit_ro(x);
      } while (seen != 7);
    }
  });
  EXPECT_EQ(seen, 7u);
  prog.require_valid();
}

}  // namespace
}  // namespace pmc::rt
