// Property/fuzz suite over the generator library (src/explore/program_gen,
// promoted out of this file): randomized lock-disciplined programs run on
// every simulated back-end plus the host, with three cross-cutting
// properties per seed:
//  1. cross-back-end agreement — every target ends on the generator's
//     closed-form final state (portability as determinism; the generated
//     updates all commute, so the closed form is schedule-exact);
//  2. every simulated run satisfies the Definition 12 trace validator;
//  3. the simulation itself is bit-deterministic (machine state hash).
#include <gtest/gtest.h>

#include "explore/program_gen.h"
#include "fuzz/seed_plan.h"
#include "runtime/program.h"
#include "util/hash.h"

namespace pmc::rt {
namespace {

using explore::GenProgram;
using explore::ProgramShape;

/// Bigger shapes than the schedule explorer uses: single-schedule runs are
/// cheap, so push more ops through every protocol path.
ProgramShape big_shape(uint64_t seed) {
  ProgramShape s;
  s.seed = seed;
  s.cores = 3 + static_cast<int>(seed % 3);
  s.objects = 6;
  s.steps = 40;
  return s;
}

ProgramOptions opts(Target t, int cores) {
  ProgramOptions o;
  o.target = t;
  o.cores = cores;
  o.machine.lm_bytes = 64 * 1024;
  o.machine.sdram_bytes = 2 * 1024 * 1024;
  o.machine.max_cycles = UINT64_C(2'000'000'000);
  o.lock_capacity = 64;
  return o;
}

struct FuzzRun {
  uint64_t finals_digest = 0;  // FNV over all final object values
  uint64_t state_hash = 0;     // full machine fingerprint (sim targets)
  bool validated = true;
};

FuzzRun run_fuzz(Target t, const GenProgram& prog) {
  Program p(opts(t, prog.shape.cores));
  std::vector<ObjId> objs;
  for (int i = 0; i < prog.shape.objects; ++i) {
    objs.push_back(p.create_typed<uint32_t>(GenProgram::initial_value(i),
                                            Placement::kReplicated,
                                            "fuzz" + std::to_string(i)));
  }
  p.run([&](Env& env) { explore::run_ops(prog, env, objs); });
  FuzzRun r;
  if (p.validator() != nullptr) r.validated = p.validator()->ok();
  if (p.machine() != nullptr) r.state_hash = p.machine()->state_hash();
  uint64_t h = util::kFnvOffset;
  for (const ObjId o : objs) h = util::hash_combine(h, p.result<uint32_t>(o));
  r.finals_digest = h;
  return r;
}

uint64_t expected_digest(const GenProgram& prog) {
  uint64_t h = util::kFnvOffset;
  for (int i = 0; i < prog.shape.objects; ++i) {
    h = util::hash_combine(h, prog.expected_final(i));
  }
  return h;
}

class FuzzSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSeeds, AllBackendsValidateAndConverge) {
  const GenProgram prog = explore::generate_program(big_shape(GetParam()));
  const uint64_t want = expected_digest(prog);

  for (Target t : sim_targets()) {
    const FuzzRun a = run_fuzz(t, prog);
    EXPECT_TRUE(a.validated) << to_string(t) << " seed=" << prog.shape.seed;
    EXPECT_EQ(a.finals_digest, want)
        << to_string(t) << " diverged from the closed form, seed="
        << prog.shape.seed;
    const FuzzRun b = run_fuzz(t, prog);
    EXPECT_EQ(a.state_hash, b.state_hash)
        << to_string(t) << " is not bit-deterministic, seed="
        << prog.shape.seed;
  }
  // The host target runs the same ops on real shared memory.
  EXPECT_EQ(run_fuzz(Target::kHostSC, prog).finals_digest, want)
      << "host diverged from the closed form, seed=" << prog.shape.seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::ValuesIn(fuzz::seed_sweep()));

TEST(Fuzz, EagerAndLazyReleaseConvergeOnDsm) {
  for (bool eager : {false, true}) {
    ProgramOptions o = opts(Target::kDSM, 4);
    o.policy.dsm_eager_release = eager;
    Program prog(o);
    const ObjId x = prog.create_typed<uint32_t>(0, Placement::kReplicated, "x");
    prog.run([&](Env& env) {
      for (int i = 0; i < 30; ++i) {
        env.entry_x(x);
        env.st(x, 0, env.ld<uint32_t>(x) + 1);
        env.exit_x(x);
      }
    });
    EXPECT_EQ(prog.result<uint32_t>(x), 4u * 30u) << "eager=" << eager;
    prog.require_valid();
  }
}

TEST(Fuzz, EagerReleaseMakesUnacquiredReadersFresh) {
  // With eager release every exit broadcasts, so a reader polling its local
  // replica observes updates without ever acquiring — the convenience the
  // paper attributes to flush.
  ProgramOptions o = opts(Target::kDSM, 2);
  o.policy.dsm_eager_release = true;
  Program prog(o);
  const ObjId x = prog.create_typed<uint32_t>(0, Placement::kReplicated, "x");
  uint32_t seen = 0;
  prog.run([&](Env& env) {
    if (env.id() == 0) {
      env.entry_x(x);
      env.st<uint32_t>(x, 0, 7);
      env.exit_x(x);  // eager: broadcast happens here
    } else {
      do {
        env.entry_ro(x);
        seen = env.ld<uint32_t>(x);
        env.exit_ro(x);
      } while (seen != 7);
    }
  });
  EXPECT_EQ(seen, 7u);
  prog.require_valid();
}

}  // namespace
}  // namespace pmc::rt
