// The paper's running example (Figs. 5/6): annotated message passing must
// deliver 42 on every back-end — the core portability claim.
#include <gtest/gtest.h>

#include "runtime/program.h"
#include "util/check.h"

namespace pmc::rt {
namespace {

ProgramOptions opts(Target t) {
  ProgramOptions o;
  o.target = t;
  o.cores = 2;
  o.machine.lm_bytes = 64 * 1024;
  o.machine.sdram_bytes = 1024 * 1024;
  o.machine.max_cycles = 100'000'000;
  o.lock_capacity = 16;
  return o;
}

class MessagePassing : public ::testing::TestWithParam<Target> {};

// Fig. 6, verbatim structure. X is a multi-word payload so the flag really
// races against a larger transfer; f is a word (no ro-lock needed to poll).
TEST_P(MessagePassing, Fig6DeliversThePayload) {
  Program prog(opts(GetParam()));
  struct Payload {
    uint32_t a, b, c;
  };
  const Payload want{42, 43, 44};
  const ObjId x =
      prog.create_object(sizeof(Payload), Placement::kReplicated, "X");
  const ObjId f = prog.create_typed<uint32_t>(0, Placement::kReplicated, "f");
  Payload got{};
  prog.run([&](Env& env) {
    if (env.id() == 0) {
      env.entry_x(x);       // 1: entry_x(X)
      env.st(x, 0, want);   // 2: X = 42
      env.fence();          // 3: fence()
      env.exit_x(x);        // 4: exit_x(X)
      env.entry_x(f);       // 6: entry_x(f)
      env.st<uint32_t>(f, 0, 1);  // 7: f = 1
      env.flush(f);         // 8: flush(f)
      env.exit_x(f);        // 9: exit_x(f)
    } else {
      uint32_t poll = 0;
      do {                  // 10-13: poll f read-only
        env.entry_ro(f);
        poll = env.ld<uint32_t>(f);
        env.exit_ro(f);
      } while (poll != 1);
      env.fence();          // 14: fence()
      env.entry_x(x);       // 16: entry_x(X)
      got = env.ld<Payload>(x);
      env.exit_x(x);        // 18: exit_x(X)
    }
  });
  EXPECT_EQ(got.a, want.a);
  EXPECT_EQ(got.b, want.b);
  EXPECT_EQ(got.c, want.c);
  if (is_sim(GetParam())) prog.require_valid();
}

// Repeated rounds of ping-pong message passing stress ownership transfer.
TEST_P(MessagePassing, PingPongRounds) {
  Program prog(opts(GetParam()));
  const ObjId data = prog.create_typed<uint32_t>(0, Placement::kReplicated, "d");
  const ObjId turn = prog.create_typed<uint32_t>(0, Placement::kReplicated, "t");
  const int rounds = 12;
  uint32_t last_seen[2] = {0, 0};
  prog.run([&](Env& env) {
    const uint32_t me = static_cast<uint32_t>(env.id());
    for (int r = 0; r < rounds; ++r) {
      // Wait for my turn.
      uint32_t t;
      do {
        env.entry_ro(turn);
        t = env.ld<uint32_t>(turn);
        env.exit_ro(turn);
      } while (t % 2 != me);
      env.fence();
      env.entry_x(data);
      const uint32_t v = env.ld<uint32_t>(data);
      last_seen[me] = v;
      env.st<uint32_t>(data, 0, v + 1);
      env.exit_x(data);
      env.entry_x(turn);
      env.st<uint32_t>(turn, 0, t + 1);
      env.flush(turn);
      env.exit_x(turn);
    }
  });
  EXPECT_EQ(prog.result<uint32_t>(data), static_cast<uint32_t>(2 * rounds));
  EXPECT_EQ(last_seen[0], static_cast<uint32_t>(2 * rounds - 2));
  EXPECT_EQ(last_seen[1], static_cast<uint32_t>(2 * rounds - 1));
  if (is_sim(GetParam())) prog.require_valid();
}

INSTANTIATE_TEST_SUITE_P(
    Targets, MessagePassing, ::testing::ValuesIn(all_targets()),
    [](const ::testing::TestParamInfo<Target>& pinfo) {
      std::string n = to_string(pinfo.param);
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

}  // namespace
}  // namespace pmc::rt
