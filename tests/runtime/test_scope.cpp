// RAII scopes (Fig. 10): constructor = entry, destructor = exit.
#include "runtime/scope.h"

#include <gtest/gtest.h>

#include "runtime/program.h"

namespace pmc::rt {
namespace {

ProgramOptions opts(Target t) {
  ProgramOptions o;
  o.target = t;
  o.cores = 2;
  o.machine.lm_bytes = 64 * 1024;
  o.machine.sdram_bytes = 1024 * 1024;
  o.machine.max_cycles = 100'000'000;
  o.lock_capacity = 32;
  return o;
}

struct Vec2 {
  int32_t x = 0, y = 0;
};

class ScopeTargets : public ::testing::TestWithParam<Target> {};

TEST_P(ScopeTargets, Fig10StyleWorker) {
  Program prog(opts(GetParam()));
  const ObjId window = prog.create_object(128, Placement::kReplicated, "win");
  const ObjId vec = prog.create_typed<Vec2>({}, Placement::kReplicated, "vec");
  std::vector<uint8_t> init(128);
  for (size_t i = 0; i < init.size(); ++i) init[i] = static_cast<uint8_t>(i);
  prog.init_object(window, init.data(), init.size());

  prog.run([&](Env& env) {
    if (env.id() != 0) return;
    ScopeRO<uint8_t> window_s(env, window);      // Fig. 10 line 27
    ScopeX<Vec2> vector_s(env, vec);             // Fig. 10 line 29
    int32_t acc = 0;
    for (uint32_t i = 0; i < 128; ++i) acc += window_s.at<uint8_t>(i);
    vector_s = Vec2{acc, -acc};                  // Fig. 10 line 30
  });  // all scope objects destructed (line 31)

  const Vec2 got = prog.result<Vec2>(vec);
  EXPECT_EQ(got.x, 127 * 128 / 2);
  EXPECT_EQ(got.y, -127 * 128 / 2);
  if (is_sim(GetParam())) prog.require_valid();
}

TEST_P(ScopeTargets, ScopeXFlushPublishesEarly) {
  Program prog(opts(GetParam()));
  const ObjId w = prog.create_typed<uint32_t>(0, Placement::kReplicated, "w");
  uint32_t seen = 0;
  prog.run([&](Env& env) {
    if (env.id() == 0) {
      ScopeX<uint32_t> s(env, w);
      s.set(9);
      s.flush();
      // Hold the section open for a long time: the flush already published.
      env.compute(20'000);
    } else {
      uint32_t v = 0;
      do {
        env.entry_ro(w);
        v = env.ld<uint32_t>(w);
        env.exit_ro(w);
      } while (v != 9);
      seen = v;
    }
  });
  EXPECT_EQ(seen, 9u);
}

INSTANTIATE_TEST_SUITE_P(
    Targets, ScopeTargets, ::testing::ValuesIn(all_targets()),
    [](const ::testing::TestParamInfo<Target>& pinfo) {
      std::string n = to_string(pinfo.param);
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

}  // namespace
}  // namespace pmc::rt
