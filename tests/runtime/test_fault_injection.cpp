// Failure injection: a deliberately broken protocol must be *caught* by the
// Definition 12 trace validator — proof that the model-as-oracle machinery
// detects real coherence bugs rather than passing vacuously.
#include <gtest/gtest.h>

#include "runtime/program.h"
#include "util/check.h"

namespace pmc::rt {
namespace {

ProgramOptions opts(Target t, const FaultInjection& faults) {
  ProgramOptions o;
  o.target = t;
  o.cores = 2;
  o.machine.lm_bytes = 64 * 1024;
  o.machine.sdram_bytes = 1024 * 1024;
  o.machine.max_cycles = 100'000'000;
  o.lock_capacity = 16;
  o.faults = faults;
  return o;
}

/// Two cores alternate exclusive increments; any lost update or stale view
/// surfaces as an illegal version read.
void run_handover_workload(Program& prog, ObjId x) {
  prog.run([&](Env& env) {
    for (int round = 0; round < 6; ++round) {
      env.entry_x(x);
      env.st(x, 0, env.ld<uint32_t>(x) + 1);
      env.exit_x(x);
      env.compute(50);
      env.barrier();
    }
  });
}

TEST(FaultInjection, SwccMissingExitFlushIsFlagged) {
  Program prog(opts(Target::kSWCC,
                    FaultInjection::one("swcc_skip_exit_writeback")));
  const ObjId x = prog.create_typed<uint32_t>(0, Placement::kSdram, "x");
  run_handover_workload(prog, x);
  ASSERT_NE(prog.validator(), nullptr);
  EXPECT_FALSE(prog.validator()->ok())
      << "a skipped cache flush must violate Definition 12";
  EXPECT_THROW(prog.require_valid(), util::CheckFailure);
}

TEST(FaultInjection, DsmMissingTransferIsFlagged) {
  Program prog(opts(Target::kDSM, FaultInjection::one("dsm_skip_transfer")));
  const ObjId x = prog.create_typed<uint32_t>(0, Placement::kReplicated, "x");
  run_handover_workload(prog, x);
  ASSERT_NE(prog.validator(), nullptr);
  EXPECT_FALSE(prog.validator()->ok())
      << "a skipped ownership transfer must violate Definition 12";
}

TEST(FaultInjection, SpmMissingCopyBackIsFlagged) {
  Program prog(opts(Target::kSPM, FaultInjection::one("spm_skip_copy_back")));
  const ObjId x = prog.create_typed<uint32_t>(0, Placement::kSdram, "x");
  run_handover_workload(prog, x);
  ASSERT_NE(prog.validator(), nullptr);
  EXPECT_FALSE(prog.validator()->ok())
      << "a skipped SDRAM copy-back must violate Definition 12";
}

TEST(FaultInjection, RegcMissingRegionWritebackIsFlagged) {
  Program prog(opts(Target::kRegC,
                    FaultInjection::one("regc_skip_region_writeback")));
  const ObjId x = prog.create_typed<uint32_t>(0, Placement::kSdram, "x");
  run_handover_workload(prog, x);
  ASSERT_NE(prog.validator(), nullptr);
  EXPECT_FALSE(prog.validator()->ok())
      << "a skipped region write-back must violate Definition 12";
}

TEST(FaultInjection, Shl1SkippedLockIsFlagged) {
  Program prog(opts(Target::kShL1, FaultInjection::one("shl1_skip_lock")));
  const ObjId x = prog.create_typed<uint32_t>(0, Placement::kSdram, "x");
  run_handover_workload(prog, x);
  ASSERT_NE(prog.validator(), nullptr);
  EXPECT_FALSE(prog.validator()->ok())
      << "unserialized exclusive writers must violate Definition 12";
}

TEST(FaultInjection, UnknownFaultNameIsRejected) {
  EXPECT_THROW(FaultInjection::one("no_such_fault"), util::CheckFailure);
}

TEST(FaultInjection, HealthyProtocolsPassTheSameWorkload) {
  for (Target t : sim_targets()) {
    Program prog(opts(t, FaultInjection{}));
    const ObjId x = prog.create_typed<uint32_t>(0, Placement::kReplicated, "x");
    run_handover_workload(prog, x);
    ASSERT_NE(prog.validator(), nullptr) << to_string(t);
    EXPECT_TRUE(prog.validator()->ok())
        << to_string(t) << ": " << prog.validator()->first_violation();
    EXPECT_EQ(prog.result<uint32_t>(x), 12u) << to_string(t);
  }
}

}  // namespace
}  // namespace pmc::rt
