// Regression test for a real protocol hazard found during design (documented
// in backends/dsm.cpp): two flush broadcasts from *different* owners travel
// on different NoC channels and could reorder at a third tile, making its
// replica go backwards — a Definition 12 monotonicity violation. The fix is
// that flush() waits for its own packets to arrive before the section can
// release. This test hammers exactly that window.
#include <gtest/gtest.h>

#include "runtime/program.h"

namespace pmc::rt {
namespace {

TEST(DsmFlushOrdering, ObserverNeverSeesValuesGoBackwards) {
  ProgramOptions o;
  o.target = Target::kDSM;
  o.cores = 4;  // cores 0/1 alternate ownership+flush, 2/3 observe
  o.machine.lm_bytes = 64 * 1024;
  o.machine.max_cycles = UINT64_C(2'000'000'000);
  o.lock_capacity = 16;
  // Sharpen the race: long head latency, so broadcasts stay in flight.
  o.machine.timing.noc_base = 24;
  Program prog(o);
  const ObjId x = prog.create_typed<uint32_t>(0, Placement::kReplicated, "x");
  const int rounds = 40;
  int regressions = 0;
  prog.run([&](Env& env) {
    if (env.id() < 2) {
      for (int i = 0; i < rounds; ++i) {
        env.entry_x(x);
        env.st<uint32_t>(x, 0, env.ld<uint32_t>(x) + 1);
        env.flush(x);  // broadcast under rapidly alternating ownership
        env.exit_x(x);
      }
    } else {
      uint32_t last = 0;
      while (last < 2 * rounds) {
        env.entry_ro(x);
        const uint32_t v = env.ld<uint32_t>(x);
        env.exit_ro(x);
        if (v < last) ++regressions;
        if (v > last) last = v;
        env.compute(7);
      }
    }
  });
  EXPECT_EQ(regressions, 0)
      << "a replica went backwards: flush broadcasts reordered";
  EXPECT_EQ(prog.result<uint32_t>(x), 2u * rounds);
  prog.require_valid();
}

TEST(DsmFlushOrdering, TransferAfterFlushSeesTheFlushedVersion) {
  // Acquire-transfer must never deliver an older state than a completed
  // flush (the transfer source is the last owner, serialized by the lock).
  ProgramOptions o;
  o.target = Target::kDSM;
  o.cores = 3;
  o.machine.lm_bytes = 64 * 1024;
  o.machine.max_cycles = UINT64_C(2'000'000'000);
  o.lock_capacity = 16;
  Program prog(o);
  const ObjId x = prog.create_typed<uint32_t>(0, Placement::kReplicated, "x");
  prog.run([&](Env& env) {
    for (int i = 0; i < 20; ++i) {
      env.entry_x(x);
      const uint32_t v = env.ld<uint32_t>(x);
      env.st<uint32_t>(x, 0, v + 1);
      if (i % 3 == 0) env.flush(x);
      env.exit_x(x);
      env.compute(11 + static_cast<uint64_t>(env.id()) * 5);
    }
  });
  EXPECT_EQ(prog.result<uint32_t>(x), 60u);
  prog.require_valid();
}

}  // namespace
}  // namespace pmc::rt
