// The back-end registry (DESIGN.md §13): descriptor integrity, name lookup,
// usage-string generation, machine-requirement checking, and the named
// seeded-fault table — the single source every enumeration site iterates.
#include "runtime/backends/registry.h"

#include <gtest/gtest.h>

#include <set>

#include "runtime/program.h"
#include "util/check.h"

namespace pmc::rt {
namespace {

TEST(Registry, KindsIndexTheRegistryAndNamesAreUnique) {
  const auto& reg = backend_registry();
  ASSERT_GE(reg.size(), 6u);  // the Table II grid is at least six columns
  std::set<std::string> names;
  for (size_t i = 0; i < reg.size(); ++i) {
    EXPECT_EQ(static_cast<size_t>(reg[i].kind), i);
    EXPECT_NE(reg[i].name, nullptr);
    EXPECT_TRUE(names.insert(reg[i].name).second)
        << "duplicate name " << reg[i].name;
    EXPECT_NE(reg[i].summary, nullptr);
    EXPECT_NE(reg[i].make, nullptr);
  }
}

TEST(Registry, FindBackendIsExactMatchOnly) {
  for (const BackendDescriptor& d : backend_registry()) {
    const BackendDescriptor* found = find_backend(d.name);
    ASSERT_NE(found, nullptr) << d.name;
    EXPECT_EQ(found->kind, d.kind);
  }
  EXPECT_EQ(find_backend(""), nullptr);
  EXPECT_EQ(find_backend("host-sc"), nullptr);
  EXPECT_EQ(find_backend("SWCC"), nullptr);
}

TEST(Registry, BackendNamesJoinsEveryNameInKindOrder) {
  const std::string names = backend_names();
  std::string expect;
  for (const BackendDescriptor& d : backend_registry()) {
    if (!expect.empty()) expect += "|";
    expect += d.name;
  }
  EXPECT_EQ(names, expect);
  EXPECT_NE(backend_names(", ").find(", "), std::string::npos);
}

TEST(Registry, DescriptorThrowsNamedErrorOutsideTheRegistry) {
  const auto bogus =
      static_cast<BackendKind>(backend_registry().size() + 3);
  EXPECT_THROW((void)descriptor(bogus), util::CheckFailure);
}

TEST(Registry, CheckMachineFlagsMissingCluster) {
  sim::MachineConfig cfg;  // default: no cluster SRAM
  cfg.cluster_bytes = 0;
  for (const BackendDescriptor& d : backend_registry()) {
    const std::string err = check_machine(d, cfg);
    if (d.needs_cluster) {
      EXPECT_NE(err.find(d.name), std::string::npos) << err;
      EXPECT_NE(err.find("[cluster]"), std::string::npos) << err;
    } else {
      EXPECT_EQ(err, "");
    }
  }
  cfg.cluster_bytes = 128 * 1024;
  for (const BackendDescriptor& d : backend_registry()) {
    EXPECT_EQ(check_machine(d, cfg), "") << d.name;
  }
}

TEST(Registry, FaultTableBacksFaultInjection) {
  for (const BackendDescriptor& d : backend_registry()) {
    for (const std::string& f : d.faults) {
      EXPECT_TRUE(fault_name_known(f)) << f;
      const FaultInjection one = FaultInjection::one(f);
      EXPECT_TRUE(one.enabled(f));
      EXPECT_TRUE(one.any());
    }
  }
  EXPECT_FALSE(fault_name_known("no_such_fault"));
  EXPECT_FALSE(FaultInjection{}.any());
}

TEST(Registry, TargetEnumTracksTheRegistry) {
  // Target is host-sc plus the registry shifted by one; sim_targets() must
  // enumerate exactly the registered kinds, in order.
  const auto targets = sim_targets();
  const auto& reg = backend_registry();
  ASSERT_EQ(targets.size(), reg.size());
  for (size_t i = 0; i < reg.size(); ++i) {
    EXPECT_EQ(backend_kind(targets[i]), reg[i].kind);
    EXPECT_STREQ(to_string(targets[i]), reg[i].name);
  }
}

}  // namespace
}  // namespace pmc::rt
