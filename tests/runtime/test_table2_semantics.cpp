// Per-back-end behaviour pinned to the rows of Table II.
#include <gtest/gtest.h>

#include "runtime/program.h"
#include "util/check.h"

namespace pmc::rt {
namespace {

ProgramOptions opts(Target t, int cores) {
  ProgramOptions o;
  o.target = t;
  o.cores = cores;
  o.machine.lm_bytes = 64 * 1024;
  o.machine.sdram_bytes = 1024 * 1024;
  o.machine.max_cycles = 200'000'000;
  o.lock_capacity = 64;
  return o;
}

TEST(Table2Swcc, ObjectLeavesTheCacheAtExit) {
  // "the object does not reside in the cache outside of any entry/exit
  // pair": two consecutive sections must fill from SDRAM twice.
  Program prog(opts(Target::kSWCC, 1));
  const ObjId x = prog.create_object(64, Placement::kSdram, "x");
  prog.run([&](Env& env) {
    for (int i = 0; i < 5; ++i) {
      env.entry_ro(x);
      env.ld<uint32_t>(x, 0);
      env.ld<uint32_t>(x, 32);
      env.exit_ro(x);
    }
  });
  const auto s = prog.stats_sum();
  // Two lines per section, refetched every time (the cost §VI-A discusses).
  EXPECT_GE(s.dcache_misses, 10u);
  EXPECT_GE(s.lines_flushed, 10u);
  EXPECT_EQ(s.dcache_hits, 0u);
}

TEST(Table2Swcc, ReuseWithinSectionHits) {
  Program prog(opts(Target::kSWCC, 1));
  const ObjId x = prog.create_object(64, Placement::kSdram, "x");
  prog.run([&](Env& env) {
    env.entry_ro(x);
    for (int i = 0; i < 50; ++i) env.ld<uint32_t>(x, (i % 16) * 4);
    env.exit_ro(x);
  });
  const auto s = prog.stats_sum();
  EXPECT_LE(s.dcache_misses, 3u);
  EXPECT_GE(s.dcache_hits, 47u);
}

TEST(Table2Swcc, FlushOverheadIsMeasured) {
  Program prog(opts(Target::kSWCC, 2));
  const ObjId x = prog.create_typed<uint32_t>(0, Placement::kSdram, "x");
  prog.run([&](Env& env) {
    for (int i = 0; i < 10; ++i) {
      env.entry_x(x);
      env.st(x, 0, env.ld<uint32_t>(x) + 1);
      env.exit_x(x);
    }
  });
  EXPECT_GT(prog.stats_sum().stall_flush, 0u);
  prog.require_valid();
}

TEST(Table2Nocc, SharedDataNeverTouchesTheCache) {
  Program prog(opts(Target::kNoCC, 2));
  const ObjId x = prog.create_object(64, Placement::kSdram, "x");
  prog.run([&](Env& env) {
    env.entry_x(x);
    for (int i = 0; i < 10; ++i) env.ld<uint32_t>(x, (i % 16) * 4);
    env.st<uint32_t>(x, 0, 1);
    env.exit_x(x);
  });
  const auto s = prog.stats_sum();
  EXPECT_EQ(s.dcache_misses, 0u);
  EXPECT_EQ(s.dcache_hits, 0u);
  EXPECT_EQ(s.lines_flushed, 0u);  // "all cache flushes are nullified"
  EXPECT_GT(s.stall_shared_read, 0u);
}

TEST(Table2Dsm, PollsAreLocalMemoryReads) {
  // "the read and write pointers are only polled from local memory, which is
  // fast and does not influence the execution of other processors."
  Program prog(opts(Target::kDSM, 2));
  const ObjId w = prog.create_typed<uint32_t>(0, Placement::kReplicated, "w");
  prog.run([&](Env& env) {
    if (env.id() == 0) {
      env.compute(2000);
      env.entry_x(w);
      env.st<uint32_t>(w, 0, 1);
      env.flush(w);
      env.exit_x(w);
    } else {
      uint32_t v = 0;
      do {
        env.entry_ro(w);
        v = env.ld<uint32_t>(w);
        env.exit_ro(w);
      } while (v != 1);
    }
  });
  // The poller (core 1) never touches SDRAM for data.
  EXPECT_EQ(prog.machine()->stats(1).stall_shared_read, 0u);
  EXPECT_EQ(prog.machine()->stats(1).dcache_misses, 0u);
  prog.require_valid();
}

TEST(Table2Dsm, FlushBroadcastsToEveryTile) {
  const int cores = 6;
  Program prog(opts(Target::kDSM, cores));
  const ObjId w = prog.create_typed<uint32_t>(0, Placement::kReplicated, "w");
  prog.run([&](Env& env) {
    if (env.id() == 0) {
      env.entry_x(w);
      env.st<uint32_t>(w, 0, 7);
      env.flush(w);
      env.exit_x(w);
    } else {
      uint32_t v = 0;
      do {
        env.entry_ro(w);
        v = env.ld<uint32_t>(w);
        env.exit_ro(w);
      } while (v != 7);
    }
  });
  // One packet per other tile (plus possibly lock traffic).
  EXPECT_GE(prog.machine()->stats(0).remote_writes,
            static_cast<uint64_t>(cores - 1));
  prog.require_valid();
}

TEST(Table2Dsm, OwnershipTransferCarriesTheData) {
  // exit_x is lazy; the *acquiring* processor receives the bytes.
  Program prog(opts(Target::kDSM, 2));
  const ObjId x = prog.create_object(256, Placement::kReplicated, "x");
  prog.run([&](Env& env) {
    if (env.id() == 0) {
      env.entry_x(x);
      for (uint32_t i = 0; i < 64; ++i) env.st<uint32_t>(x, i * 4, i * 3 + 1);
      env.exit_x(x);  // lazy: no broadcast, no SDRAM
      env.barrier();
    } else {
      env.barrier();
      env.entry_x(x);
      for (uint32_t i = 0; i < 64; ++i) {
        PMC_CHECK(env.ld<uint32_t>(x, i * 4) == i * 3 + 1);
      }
      env.exit_x(x);
    }
  });
  prog.require_valid();
}

TEST(Table2Spm, RepeatedAccessIsLocalAfterStaging) {
  Program prog(opts(Target::kSPM, 1));
  const ObjId x = prog.create_object(1024, Placement::kSdram, "x");
  prog.run([&](Env& env) {
    env.entry_ro(x);
    const auto before = prog.machine()->stats(0).stall_shared_read;
    for (int i = 0; i < 200; ++i) env.ld<uint32_t>(x, (i % 256) * 4);
    const auto after = prog.machine()->stats(0).stall_shared_read;
    PMC_CHECK(after == before);  // all 200 reads hit the scratch-pad
    env.exit_ro(x);
  });
  SUCCEED();
}

TEST(Table2Spm, DirtyDataIsCopiedBackCleanIsDiscarded) {
  Program prog(opts(Target::kSPM, 2));
  const ObjId x = prog.create_typed<uint32_t>(5, Placement::kSdram, "x");
  prog.run([&](Env& env) {
    if (env.id() == 0) {
      env.entry_x(x);
      env.st<uint32_t>(x, 0, 6);
      env.exit_x(x);  // copy back
      env.barrier();
    } else {
      env.barrier();
      env.entry_ro(x);  // stages a fresh copy from SDRAM
      PMC_CHECK(env.ld<uint32_t>(x) == 6);
      env.exit_ro(x);   // discard
    }
  });
  EXPECT_EQ(prog.result<uint32_t>(x), 6u);
  prog.require_valid();
}

TEST(Table2Spm, ScratchpadExhaustionIsChecked) {
  ProgramOptions o = opts(Target::kSPM, 1);
  o.machine.lm_bytes = 8 * 1024;
  o.lock_capacity = 8;
  Program prog(o);
  const ObjId big = prog.create_object(7 * 1024, Placement::kSdram, "big");
  const ObjId big2 = prog.create_object(7 * 1024, Placement::kSdram, "big2");
  EXPECT_THROW(prog.run([&](Env& env) {
                 env.entry_ro(big);
                 env.entry_ro(big2);  // does not fit next to big
               }),
               util::CheckFailure);
}

TEST(Table2Regc, LinesStayCachedAcrossSectionsOfOneStreak) {
  // Regional Consistency's payoff over SWCC: while a region streak is open,
  // lines survive across entry/exit pairs into the same region — the
  // write-back-and-invalidate is batched to the streak's last exit.
  ProgramOptions o = opts(Target::kRegC, 1);
  o.policy.regc_objects_per_region = 2;  // x and y share one region
  Program prog(o);
  const ObjId x = prog.create_object(64, Placement::kSdram, "x");
  const ObjId y = prog.create_object(64, Placement::kSdram, "y");
  prog.run([&](Env& env) {
    env.entry_x(x);  // opens the region; the streak begins
    for (int i = 0; i < 5; ++i) {
      // Same region: the nested entries re-enter the held region lock and
      // the exits defer the flush, so only the first load misses.
      env.entry_ro(y);
      env.ld<uint32_t>(y, 0);
      env.exit_ro(y);
    }
    env.exit_x(x);  // streak ends: one batched write-back-and-invalidate
  });
  const auto s = prog.stats_sum();
  // One fill per distinct line (x's span, y's payload, y's version word);
  // every repeated inner-section access afterwards hits.
  EXPECT_LE(s.dcache_misses, 3u);
  EXPECT_GE(s.dcache_hits, 4u);
  prog.require_valid();
}

TEST(Table2Regc, SharedRegionHandoverStaysCoherent) {
  // Two cores alternate exclusive updates to two objects of one region; the
  // batched release write-back must publish both before the lock moves.
  ProgramOptions o = opts(Target::kRegC, 2);
  o.policy.regc_objects_per_region = 2;
  Program prog(o);
  const ObjId x = prog.create_typed<uint32_t>(0, Placement::kSdram, "x");
  const ObjId y = prog.create_typed<uint32_t>(0, Placement::kSdram, "y");
  prog.run([&](Env& env) {
    for (int round = 0; round < 4; ++round) {
      env.entry_x(x);
      env.entry_x(y);  // same region: reentrant, no self-deadlock
      env.st(x, 0, env.ld<uint32_t>(x) + 1);
      env.st(y, 0, env.ld<uint32_t>(y) + 2);
      env.exit_x(y);
      env.exit_x(x);
      env.compute(50);
      env.barrier();
    }
  });
  EXPECT_EQ(prog.result<uint32_t>(x), 8u);
  EXPECT_EQ(prog.result<uint32_t>(y), 16u);
  prog.require_valid();
}

TEST(Table2Shl1, ObjectsLiveInTheClusterNotTheCache) {
  // Shared-L1: accesses go straight to the interleaved cluster SRAM — no
  // D-cache fills, no exit flushes, entry/exit are near-free.
  Program prog(opts(Target::kShL1, 1));
  const ObjId x = prog.create_object(64, Placement::kSdram, "x");
  prog.run([&](Env& env) {
    for (int i = 0; i < 5; ++i) {
      env.entry_ro(x);
      env.ld<uint32_t>(x, 0);
      env.exit_ro(x);
    }
  });
  const auto s = prog.stats_sum();
  EXPECT_EQ(s.dcache_misses, 0u);
  EXPECT_EQ(s.dcache_hits, 0u);
  EXPECT_EQ(s.lines_flushed, 0u);
  EXPECT_GE(s.loads, 5u);
  prog.require_valid();
}

TEST(Table2Fence, FenceIsFreeOnInOrderCores) {
  // "the fence only controls reordering by the compiler and does not emit
  // any instructions."
  Program prog(opts(Target::kSWCC, 1));
  uint64_t t_before = 0, t_after = 0;
  ProgramOptions o2 = opts(Target::kSWCC, 1);
  prog.run([&](Env& env) {
    auto& core = static_cast<SimEnv&>(env).core();
    t_before = core.now();
    for (int i = 0; i < 100; ++i) env.fence();
    t_after = core.now();
  });
  (void)o2;
  EXPECT_EQ(t_before, t_after);
}

}  // namespace
}  // namespace pmc::rt
