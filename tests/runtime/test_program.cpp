// Program basics and annotation-discipline enforcement, on every target.
#include "runtime/program.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pmc::rt {
namespace {

class EveryTarget : public ::testing::TestWithParam<Target> {};

ProgramOptions opts(Target t, int cores = 2) {
  ProgramOptions o;
  o.target = t;
  o.cores = cores;
  o.machine.lm_bytes = 64 * 1024;
  o.machine.sdram_bytes = 1024 * 1024;
  o.machine.max_cycles = 100'000'000;
  o.lock_capacity = 64;
  return o;
}

TEST_P(EveryTarget, CreateInitReadBack) {
  Program prog(opts(GetParam()));
  const uint32_t init = 0x12345678;
  const ObjId x = prog.create_typed<uint32_t>(init, Placement::kReplicated, "x");
  prog.run([&](Env& env) {
    if (env.id() == 0) {
      env.entry_x(x);
      const uint32_t v = env.ld<uint32_t>(x);
      env.st(x, 0, v + 1);
      env.exit_x(x);
    }
  });
  EXPECT_EQ(prog.result<uint32_t>(x), init + 1);
}

TEST_P(EveryTarget, LockedCounterCountsExactly) {
  Program prog(opts(GetParam(), 4));
  const ObjId ctr = prog.create_typed<uint32_t>(0, Placement::kReplicated, "ctr");
  const int rounds = 20;
  prog.run([&](Env& env) {
    for (int i = 0; i < rounds; ++i) {
      env.entry_x(ctr);
      env.st(ctr, 0, env.ld<uint32_t>(ctr) + 1);
      env.exit_x(ctr);
      env.compute(5);
    }
  });
  EXPECT_EQ(prog.result<uint32_t>(ctr), 4u * rounds);
  if (is_sim(GetParam())) prog.require_valid();
}

TEST_P(EveryTarget, ReadOutsideSectionIsRejected) {
  Program prog(opts(GetParam(), 1));
  const ObjId x = prog.create_typed<uint32_t>(0, Placement::kReplicated, "x");
  EXPECT_THROW(prog.run([&](Env& env) { env.ld<uint32_t>(x); }),
               util::CheckFailure);
}

TEST_P(EveryTarget, WriteInReadOnlySectionIsRejected) {
  Program prog(opts(GetParam(), 1));
  const ObjId x = prog.create_typed<uint32_t>(0, Placement::kReplicated, "x");
  EXPECT_THROW(prog.run([&](Env& env) {
                 env.entry_ro(x);
                 env.st<uint32_t>(x, 0, 1);
               }),
               util::CheckFailure);
}

TEST_P(EveryTarget, NonLifoExitIsRejected) {
  Program prog(opts(GetParam(), 1));
  const ObjId a = prog.create_typed<uint32_t>(0, Placement::kReplicated, "a");
  const ObjId b = prog.create_typed<uint32_t>(0, Placement::kReplicated, "b");
  EXPECT_THROW(prog.run([&](Env& env) {
                 env.entry_x(a);
                 env.entry_x(b);
                 env.exit_x(a);  // out of order
               }),
               util::CheckFailure);
}

TEST_P(EveryTarget, UnclosedSectionIsRejected) {
  Program prog(opts(GetParam(), 1));
  const ObjId x = prog.create_typed<uint32_t>(0, Placement::kReplicated, "x");
  EXPECT_THROW(prog.run([&](Env& env) { env.entry_x(x); }),
               util::CheckFailure);
}

TEST_P(EveryTarget, BarrierSynchronizesPhases) {
  Program prog(opts(GetParam(), 4));
  const ObjId sum = prog.create_typed<uint32_t>(0, Placement::kReplicated, "sum");
  prog.run([&](Env& env) {
    env.entry_x(sum);
    env.st(sum, 0, env.ld<uint32_t>(sum) + 1);
    env.exit_x(sum);
    env.barrier();
    // After the barrier all contributions are in.
    env.entry_x(sum);
    const uint32_t v = env.ld<uint32_t>(sum);
    env.exit_x(sum);
    PMC_CHECK(v == 4);
  });
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(
    Targets, EveryTarget,
    ::testing::ValuesIn(all_targets()),
    [](const ::testing::TestParamInfo<Target>& pinfo) {
      std::string n = to_string(pinfo.param);
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

TEST(Program, FlushOutsideExclusiveSectionIsRejected) {
  Program prog(opts(Target::kSWCC, 1));
  const ObjId x = prog.create_typed<uint32_t>(0, Placement::kSdram, "x");
  EXPECT_THROW(prog.run([&](Env& env) { env.flush(x); }),
               util::CheckFailure);
  Program prog2(opts(Target::kSWCC, 1));
  const ObjId y = prog2.create_typed<uint32_t>(0, Placement::kSdram, "y");
  EXPECT_THROW(prog2.run([&](Env& env) {
                 env.entry_ro(y);
                 env.flush(y);  // §V-A: only inside entry_x/exit_x
               }),
               util::CheckFailure);
}

TEST(Program, DsmRequiresReplicatedObjects) {
  Program prog(opts(Target::kDSM, 2));
  const ObjId x = prog.create_typed<uint32_t>(0, Placement::kSdram, "x");
  EXPECT_THROW(prog.run([&](Env& env) {
                 if (env.id() == 0) {
                   env.entry_x(x);
                   env.exit_x(x);
                 }
               }),
               util::CheckFailure);
}

TEST(Program, RunsOnlyOnce) {
  Program prog(opts(Target::kSWCC, 1));
  prog.run([](Env&) {});
  EXPECT_THROW(prog.run([](Env&) {}), util::CheckFailure);
}

}  // namespace
}  // namespace pmc::rt
