// The SPLASH-2-like kernels: bit-identical checksums across back-ends and
// core counts, model-validated runs.
#include <gtest/gtest.h>

#include "apps/radiosity_like.h"
#include "util/hash.h"
#include "apps/raytrace_like.h"
#include "apps/volrend_like.h"

namespace pmc::apps {
namespace {

using rt::Target;

ProgramOptions opts(Target t, int cores) {
  ProgramOptions o;
  o.target = t;
  o.cores = cores;
  o.machine.lm_bytes = 128 * 1024;
  o.machine.sdram_bytes = 4 * 1024 * 1024;
  o.machine.max_cycles = 800'000'000;
  o.lock_capacity = 512;
  return o;
}

RadiosityConfig small_radiosity() {
  RadiosityConfig c;
  c.patches = 48;
  c.neighbors = 6;
  c.iterations = 2;
  return c;
}

RaytraceConfig small_raytrace() {
  RaytraceConfig c;
  c.width = 24;
  c.height = 24;
  c.spheres = 12;
  return c;
}

VolrendConfig small_volrend() {
  VolrendConfig c;
  c.volume = 16;
  c.image = 20;
  return c;
}

// The kernels use SDRAM-placed objects, so they run on every target except
// DSM — exactly the paper's situation ("the local memories in our system are
// too small to put all data in them").
std::vector<Target> kernel_targets() {
  return {Target::kHostSC, Target::kNoCC, Target::kSWCC, Target::kSPM};
}

TEST(Kernels, RadiosityChecksumPortability) {
  RadiosityLike ref(small_radiosity());
  const uint64_t want = run_app(ref, opts(Target::kHostSC, 4)).checksum;
  ASSERT_NE(want, 0u);
  for (Target t : kernel_targets()) {
    RadiosityLike app(small_radiosity());
    const auto r = run_app(app, opts(t, 4));
    EXPECT_EQ(r.checksum, want) << to_string(t);
    EXPECT_TRUE(r.validated_ok) << to_string(t);
  }
}

TEST(Kernels, RadiosityCoreCountInvariance) {
  uint64_t want = 0;
  for (int cores : {1, 2, 5, 8}) {
    RadiosityLike app(small_radiosity());
    const auto r = run_app(app, opts(Target::kSWCC, cores));
    if (want == 0) {
      want = r.checksum;
    } else {
      EXPECT_EQ(r.checksum, want) << cores << " cores";
    }
  }
}

TEST(Kernels, RaytraceChecksumPortability) {
  RaytraceLike ref(small_raytrace());
  const uint64_t want = run_app(ref, opts(Target::kHostSC, 4)).checksum;
  for (Target t : kernel_targets()) {
    RaytraceLike app(small_raytrace());
    const auto r = run_app(app, opts(t, 4));
    EXPECT_EQ(r.checksum, want) << to_string(t);
    EXPECT_TRUE(r.validated_ok) << to_string(t);
  }
}

TEST(Kernels, RaytraceProducesNonTrivialImage) {
  RaytraceLike app(small_raytrace());
  Program prog(opts(Target::kHostSC, 2));
  app.build(prog);
  prog.run([&](Env& env) { app.body(env); });
  // At least one sphere must have been shaded.
  EXPECT_NE(app.checksum(prog),
            [] {
              // checksum of an all-zero framebuffer
              RaytraceConfig c = small_raytrace();
              std::vector<uint8_t> zeros(static_cast<size_t>(c.width), 0);
              uint64_t h = pmc::util::kFnvOffset;
              for (int y = 0; y < c.height; ++y) {
                h = pmc::util::fnv1a(zeros.data(), zeros.size(), h);
              }
              return h;
            }());
}

TEST(Kernels, VolrendChecksumPortability) {
  VolrendLike ref(small_volrend());
  const uint64_t want = run_app(ref, opts(Target::kHostSC, 4)).checksum;
  for (Target t : kernel_targets()) {
    VolrendLike app(small_volrend());
    const auto r = run_app(app, opts(t, 4));
    EXPECT_EQ(r.checksum, want) << to_string(t);
    EXPECT_TRUE(r.validated_ok) << to_string(t);
  }
}

TEST(Kernels, SwccBeatsNoccOnReadMostlyKernels) {
  // The Fig. 8 headline, in miniature: caching shared data (with software
  // coherency) shortens the makespan of the read-mostly kernels.
  for (int variant = 0; variant < 2; ++variant) {
    std::unique_ptr<App> nocc_app, swcc_app;
    if (variant == 0) {
      nocc_app = std::make_unique<RaytraceLike>(small_raytrace());
      swcc_app = std::make_unique<RaytraceLike>(small_raytrace());
    } else {
      nocc_app = std::make_unique<VolrendLike>(small_volrend());
      swcc_app = std::make_unique<VolrendLike>(small_volrend());
    }
    const auto nocc = run_app(*nocc_app, opts(Target::kNoCC, 4));
    const auto swcc = run_app(*swcc_app, opts(Target::kSWCC, 4));
    EXPECT_LT(swcc.makespan, nocc.makespan)
        << (variant == 0 ? "raytrace" : "volrend");
    EXPECT_EQ(swcc.checksum, nocc.checksum);
  }
}

TEST(Kernels, DeterministicAcrossRepeatedRuns) {
  auto once = [] {
    VolrendLike app(small_volrend());
    return run_app(app, opts(Target::kSWCC, 3));
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.stats.cycles_total, b.stats.cycles_total);
}

}  // namespace
}  // namespace pmc::apps
