// Motion estimation is self-checking: the search must recover the known
// shift of every block (SAD 0), on every back-end including SPM and DSM.
#include "apps/motion_est.h"

#include <gtest/gtest.h>

namespace pmc::apps {
namespace {

using rt::Target;

ProgramOptions opts(Target t, int cores) {
  ProgramOptions o;
  o.target = t;
  o.cores = cores;
  o.machine.lm_bytes = 64 * 1024;
  o.machine.sdram_bytes = 2 * 1024 * 1024;
  o.machine.max_cycles = 800'000'000;
  o.lock_capacity = 128;
  return o;
}

MotionConfig small_config() {
  MotionConfig c;
  c.blocks_x = 3;
  c.blocks_y = 2;
  c.block = 6;
  c.search = 3;
  return c;
}

class MotionTargets : public ::testing::TestWithParam<Target> {};

TEST_P(MotionTargets, RecoversTheKnownMotionVectors) {
  MotionEst app(small_config());
  ProgramOptions o = opts(GetParam(), 3);
  app.tune(o);
  Program prog(o);
  app.build(prog);
  prog.run([&](Env& env) { app.body(env); });
  const auto found = app.found(prog);
  const auto& want = app.expected();
  ASSERT_EQ(found.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(found[i].dx, want[i].dx) << "block " << i;
    EXPECT_EQ(found[i].dy, want[i].dy) << "block " << i;
  }
  if (is_sim(GetParam())) prog.require_valid();
}

INSTANTIATE_TEST_SUITE_P(
    Targets, MotionTargets, ::testing::ValuesIn(rt::all_targets()),
    [](const ::testing::TestParamInfo<Target>& pinfo) {
      std::string n = to_string(pinfo.param);
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

TEST(MotionEst, ChecksumStableAcrossCoreCounts) {
  uint64_t want = 0;
  for (int cores : {1, 2, 4}) {
    MotionEst app(small_config());
    const auto r = run_app(app, opts(Target::kSPM, cores));
    if (want == 0) {
      want = r.checksum;
    } else {
      EXPECT_EQ(r.checksum, want) << cores << " cores";
    }
  }
}

TEST(MotionEst, SpmBeatsNoccAndSwcc) {
  // §VI-C: "experiments show a significant performance increase when this
  // application is using SPMs, compared to the software cache coherency
  // setup" — the window/block are read many times per staging.
  MotionEst spm_app(small_config());
  MotionEst swcc_app(small_config());
  MotionEst nocc_app(small_config());
  const auto spm = run_app(spm_app, opts(Target::kSPM, 3));
  const auto swcc = run_app(swcc_app, opts(Target::kSWCC, 3));
  const auto nocc = run_app(nocc_app, opts(Target::kNoCC, 3));
  EXPECT_LT(spm.makespan, swcc.makespan);
  EXPECT_LT(swcc.makespan, nocc.makespan);
  EXPECT_EQ(spm.checksum, swcc.checksum);
  EXPECT_EQ(spm.checksum, nocc.checksum);
}

}  // namespace
}  // namespace pmc::apps
