// Fig. 9 FIFO: every reader receives every element, slot order is global,
// per-writer order is preserved — on every back-end.
#include "apps/mfifo.h"

#include <gtest/gtest.h>

#include <map>

#include "runtime/program.h"

namespace pmc::apps {
namespace {

using rt::all_targets;
using rt::is_sim;
using rt::Target;

rt::ProgramOptions opts(Target t, int cores) {
  rt::ProgramOptions o;
  o.target = t;
  o.cores = cores;
  o.machine.lm_bytes = 64 * 1024;
  o.machine.sdram_bytes = 2 * 1024 * 1024;
  o.machine.max_cycles = 400'000'000;
  o.lock_capacity = 128;
  return o;
}

class FifoTargets : public ::testing::TestWithParam<Target> {};

TEST_P(FifoTargets, SingleWriterSingleReaderInOrder) {
  rt::Program prog(opts(GetParam(), 2));
  MFifo fifo(prog, 4, /*depth=*/4, /*readers=*/1);
  const int items = 24;
  std::vector<uint32_t> got;
  prog.run([&](rt::Env& env) {
    if (env.id() == 0) {
      for (uint32_t i = 0; i < items; ++i) {
        const uint32_t v = 1000 + i;
        fifo.push(env, &v);
      }
    } else {
      for (int i = 0; i < items; ++i) {
        uint32_t v = 0;
        fifo.pop(env, 0, &v);
        got.push_back(v);
      }
    }
  });
  ASSERT_EQ(got.size(), static_cast<size_t>(items));
  for (int i = 0; i < items; ++i) {
    EXPECT_EQ(got[static_cast<size_t>(i)], 1000u + static_cast<uint32_t>(i));
  }
  if (is_sim(GetParam())) prog.require_valid();
}

TEST_P(FifoTargets, BroadcastToAllReaders) {
  // 1 writer, 2 readers: both readers receive every element, in order.
  rt::Program prog(opts(GetParam(), 3));
  MFifo fifo(prog, 4, /*depth=*/3, /*readers=*/2);
  const int items = 15;
  std::vector<uint32_t> got[2];
  prog.run([&](rt::Env& env) {
    if (env.id() == 0) {
      for (uint32_t i = 0; i < items; ++i) {
        fifo.push(env, &i);
      }
    } else {
      const int me = env.id() - 1;
      for (int i = 0; i < items; ++i) {
        uint32_t v = 0;
        fifo.pop(env, me, &v);
        got[me].push_back(v);
      }
    }
  });
  for (int r = 0; r < 2; ++r) {
    ASSERT_EQ(got[r].size(), static_cast<size_t>(items));
    for (int i = 0; i < items; ++i) {
      EXPECT_EQ(got[r][static_cast<size_t>(i)], static_cast<uint32_t>(i));
    }
  }
  if (is_sim(GetParam())) prog.require_valid();
}

TEST_P(FifoTargets, MultiWriterMultiReader) {
  // 2 writers, 2 readers. Readers agree on one global order; each writer's
  // elements appear in its push order.
  rt::Program prog(opts(GetParam(), 4));
  MFifo fifo(prog, 4, /*depth=*/4, /*readers=*/2);
  const int per_writer = 10;
  std::vector<uint32_t> got[2];
  prog.run([&](rt::Env& env) {
    if (env.id() < 2) {
      const uint32_t tag = static_cast<uint32_t>(env.id()) << 24;
      for (uint32_t i = 0; i < per_writer; ++i) {
        const uint32_t v = tag | i;
        fifo.push(env, &v);
        env.compute(30 + 17 * static_cast<uint64_t>(env.id()));
      }
    } else {
      const int me = env.id() - 2;
      for (int i = 0; i < 2 * per_writer; ++i) {
        uint32_t v = 0;
        fifo.pop(env, me, &v);
        got[me].push_back(v);
      }
    }
  });
  EXPECT_EQ(got[0], got[1]) << "all readers must agree on the slot order";
  std::map<uint32_t, uint32_t> next_seq;
  for (const uint32_t v : got[0]) {
    const uint32_t writer = v >> 24;
    const uint32_t seq = v & 0xffffff;
    EXPECT_EQ(seq, next_seq[writer]++) << "per-writer order broken";
  }
  EXPECT_EQ(next_seq[0], static_cast<uint32_t>(per_writer));
  EXPECT_EQ(next_seq[1], static_cast<uint32_t>(per_writer));
  if (is_sim(GetParam())) prog.require_valid();
}

TEST_P(FifoTargets, LargePayloadsSurviveTransfer) {
  rt::Program prog(opts(GetParam(), 2));
  struct Packet {
    uint32_t words[16];
  };
  MFifo fifo(prog, sizeof(Packet), /*depth=*/2, /*readers=*/1);
  const int items = 6;
  int mismatches = -1;
  prog.run([&](rt::Env& env) {
    if (env.id() == 0) {
      for (uint32_t i = 0; i < items; ++i) {
        Packet p;
        for (uint32_t w = 0; w < 16; ++w) p.words[w] = i * 100 + w;
        fifo.push(env, &p);
      }
    } else {
      mismatches = 0;
      for (uint32_t i = 0; i < items; ++i) {
        Packet p{};
        fifo.pop(env, 0, &p);
        for (uint32_t w = 0; w < 16; ++w) {
          if (p.words[w] != i * 100 + w) ++mismatches;
        }
      }
    }
  });
  EXPECT_EQ(mismatches, 0);
  if (is_sim(GetParam())) prog.require_valid();
}

INSTANTIATE_TEST_SUITE_P(
    Targets, FifoTargets, ::testing::ValuesIn(all_targets()),
    [](const ::testing::TestParamInfo<Target>& pinfo) {
      std::string n = to_string(pinfo.param);
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

}  // namespace
}  // namespace pmc::apps
