// The CheckTarget/CheckSession front door (DESIGN.md §9): apps-layer
// targets model-checked on every back-end, byte-identical reports across
// engines and job counts, seeded-fault discovery with minimization, and the
// generic target-shrinking contract.
#include "explore/check.h"

#include <gtest/gtest.h>

#include "explore/litmus_driver.h"
#include "explore/program_gen.h"
#include "model/litmus_library.h"

namespace pmc::explore {
namespace {

SessionOptions app_opts(DporMode dpor = DporMode::kSleepSet, int jobs = 1,
                        Engine engine = Engine::kAuto) {
  SessionOptions opts;
  opts.explore.preemption_bound = 1;
  opts.explore.horizon = 14;
  opts.explore.dpor = dpor;
  opts.jobs = jobs;
  opts.engine = engine;
  return opts;
}

TEST(AppKind, ParsesAndPrints) {
  EXPECT_STREQ(to_string(AppKind::kMFifo), "mfifo");
  EXPECT_STREQ(to_string(AppKind::kTaskCounter), "taskcounter");
  EXPECT_EQ(app_kind_from_string("mfifo"), AppKind::kMFifo);
  EXPECT_EQ(app_kind_from_string("taskcounter"), AppKind::kTaskCounter);
  EXPECT_FALSE(app_kind_from_string("fifo").has_value());
  EXPECT_EQ(all_app_kinds().size(), 2u);
}

TEST(CheckTargetNames, AreStableAndBackendQualified) {
  EXPECT_EQ(MFifoTarget(rt::Target::kSWCC).name(), "mfifo(d2,r2,i2)@swcc");
  EXPECT_EQ(TaskCounterTarget(rt::Target::kDSM).name(),
            "taskcounter(c2,t3,k1)@dsm");
  EXPECT_EQ(LitmusTarget(model::litmus::fig4_exclusive(), rt::Target::kSPM)
                .name(),
            "fig4_exclusive@spm");
  const GenProgram prog = generate_program(shape_for_seed(3));
  EXPECT_EQ(GenProgramTarget(prog, rt::Target::kNoCC).name(),
            "fuzz-seed-3@nocc");
}

TEST(FnTarget, WrapsAdHocRunners) {
  const FnTarget target("always-ok", [](ReplayPolicy&) {
    RunOutcome out;
    out.trace_hash = 7;
    return out;
  });
  EXPECT_EQ(target.name(), "always-ok");
  EXPECT_EQ(target.shrink_count(), 0u);
  const auto rep = CheckSession(ExploreConfig{}).check(target);
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.target, "always-ok");
  EXPECT_EQ(rep.distinct_traces, 1u);
}

// -- Apps on every back-end under the reduced search (ISSUE 5 satellite) -----

class AppSweep : public ::testing::TestWithParam<rt::Target> {};

TEST_P(AppSweep, MFifoBroadcastHoldsOnEveryExploredSchedule) {
  const MFifoTarget target(GetParam());  // depth 2, 2 readers, 2 items
  const CheckReport rep = CheckSession(app_opts()).check(target);
  EXPECT_TRUE(rep.ok) << rep.to_text();
  EXPECT_EQ(rep.failing, 0u)
      << rt::to_string(GetParam()) << ": schedule \""
      << to_string(rep.first_failing) << "\": " << rep.first_failing_message;
  EXPECT_GE(rep.explored, 1u);
  // The reduced search accounts for every bypassed alternative.
  EXPECT_GT(rep.dpor_pruned, 0u);
}

TEST_P(AppSweep, TaskCounterPartitionHoldsOnEveryExploredSchedule) {
  const TaskCounterTarget target(GetParam());
  const CheckReport rep = CheckSession(app_opts()).check(target);
  EXPECT_TRUE(rep.ok) << rep.to_text();
  EXPECT_GE(rep.explored, 1u);
  EXPECT_GT(rep.dpor_pruned, 0u);
  // The chunk counter is racy-by-design (which core grabs which chunk), so
  // exploration must reach more than one partition-assignment class.
  EXPECT_GE(rep.distinct_traces, 2u);
}

INSTANTIATE_TEST_SUITE_P(SimTargets, AppSweep,
                         ::testing::ValuesIn(rt::sim_targets()),
                         [](const auto& info) {
                           return std::string(rt::to_string(info.param));
                         });

// -- Report determinism across engines and job counts (ISSUE 5 satellite) ----

TEST(AppCheck, ReportsAreByteIdenticalAcrossEnginesAndJobs) {
  // A failing target exercises the whole pipeline (canonicalization,
  // minimization, replay): the seeded swcc fault fails fast via the
  // Definition 12 oracle on both apps.
  for (const AppKind kind : all_app_kinds()) {
    const auto target =
        make_app_target(kind, rt::Target::kSWCC, all_seeded_faults());
    const CheckReport ref =
        CheckSession(app_opts(DporMode::kSleepSet, 1, Engine::kSequential))
            .check(*target);
    ASSERT_GT(ref.failing, 0u) << to_string(kind);
    for (int jobs : {1, 2, 8}) {
      const CheckReport rep =
          CheckSession(app_opts(DporMode::kSleepSet, jobs, Engine::kParallel))
              .check(*target);
      EXPECT_EQ(rep.to_text(), ref.to_text())
          << to_string(kind) << " jobs=" << jobs;
    }
  }
}

TEST(AppCheck, CleanReportsAreByteIdenticalAcrossJobs) {
  const MFifoTarget target(rt::Target::kDSM);
  const CheckReport ref =
      CheckSession(app_opts(DporMode::kSleepSet, 1, Engine::kSequential))
          .check(target);
  EXPECT_TRUE(ref.ok);
  for (int jobs : {2, 8}) {
    const CheckReport rep =
        CheckSession(app_opts(DporMode::kSleepSet, jobs, Engine::kParallel))
            .check(target);
    EXPECT_EQ(rep.to_text(), ref.to_text()) << "jobs=" << jobs;
  }
}

// -- Seeded faults are caught and minimized (ISSUE 5 satellite) --------------

TEST(AppCheck, SeededFaultIsCaughtAndMinimized) {
  // all_seeded_faults() injects every back-end's protocol fault at once;
  // each back-end reads only its own flag. The session must catch the
  // resulting oracle violations and hand back a minimized, replayable
  // schedule (the minimum can be the default schedule — minimization then
  // proves no single override is needed to reproduce).
  struct Combo {
    AppKind kind;
    rt::Target target;
  };
  const Combo combos[] = {
      {AppKind::kMFifo, rt::Target::kSWCC},
      {AppKind::kTaskCounter, rt::Target::kSWCC},
      {AppKind::kTaskCounter, rt::Target::kDSM},
  };
  const CheckSession session(app_opts());
  for (const Combo& c : combos) {
    const auto target = make_app_target(c.kind, c.target, all_seeded_faults());
    const CheckReport rep = session.check(*target);
    ASSERT_GT(rep.failing, 0u) << target->name();
    EXPECT_FALSE(rep.ok);
    EXPECT_FALSE(rep.minimized_message.empty()) << target->name();
    EXPECT_LE(rep.minimized_schedule.size(), rep.first_failing.size());
    // The minimized schedule replays to the reported violation.
    bool applied = false;
    const RunOutcome again =
        session.replay(*target, rep.minimized_schedule, &applied);
    EXPECT_TRUE(applied) << target->name();
    EXPECT_FALSE(again.ok) << target->name();
    EXPECT_EQ(again.message, rep.minimized_message) << target->name();
    // Apps targets are not shrinkable; the repro schedule is the minimum.
    EXPECT_EQ(rep.minimized_target, nullptr);
    EXPECT_EQ(to_string(rep.repro_schedule), to_string(rep.minimized_schedule));
  }
}

TEST(AppCheck, CleanBackendsStayCleanUnderSeededFaults) {
  // no-CC has no coherence action to omit: with every fault injected it
  // still reads only its own (absent) flag and must stay green.
  const CheckSession session(app_opts());
  for (const AppKind kind : all_app_kinds()) {
    const auto target =
        make_app_target(kind, rt::Target::kNoCC, all_seeded_faults());
    const CheckReport rep = session.check(*target);
    EXPECT_TRUE(rep.ok) << rep.to_text();
  }
}

// -- The generic shrinking contract ------------------------------------------

TEST(GenProgramTargetShrink, FlattensThreadOpPairsInOrder) {
  const GenProgram prog = generate_program(shape_for_seed(1));
  const GenProgramTarget target(prog, rt::Target::kNoCC);
  ASSERT_EQ(target.shrink_count(), prog.ops());
  // Candidate 0 drops thread 0's first op (or, for a barrier, that barrier
  // from every thread).
  const auto cand = target.shrink(0);
  ASSERT_NE(cand, nullptr);
  const auto* gen = dynamic_cast<const GenProgramTarget*>(cand.get());
  ASSERT_NE(gen, nullptr);
  EXPECT_LT(gen->program().ops(), prog.ops());
  // Out-of-range candidates are structurally impossible, not errors.
  EXPECT_EQ(target.shrink(target.shrink_count()), nullptr);
}

TEST(CheckSessionShrink, MinimizedTargetIsOneMinimal) {
  // Through the session, a failing shrinkable target shrinks until dropping
  // any single op hides the bug; the result is carried in the report.
  ExploreConfig cfg;
  cfg.preemption_bound = 1;
  cfg.horizon = 10;
  const GenProgram prog = generate_program(shape_for_seed(1));
  const GenProgramTarget target(
      prog, rt::Target::kSWCC,
      rt::FaultInjection::one("swcc_skip_exit_writeback"));
  const CheckSession session(cfg, /*jobs=*/2);
  const CheckReport rep = session.check(target);
  ASSERT_GT(rep.failing, 0u);
  ASSERT_NE(rep.minimized_target, nullptr);
  const auto* shrunk =
      dynamic_cast<const GenProgramTarget*>(rep.minimized_target.get());
  ASSERT_NE(shrunk, nullptr);
  EXPECT_LT(shrunk->program().ops(), prog.ops());
  EXPECT_FALSE(rep.minimized_listing.empty());
  // 1-minimality: every further single-op drop makes the bug vanish.
  for (size_t i = 0; i < shrunk->shrink_count(); ++i) {
    const auto cand = shrunk->shrink(i);
    if (cand == nullptr) continue;
    EXPECT_EQ(session.explore(*cand).failing, 0u) << "drop " << i;
  }
  // And the minimized schedule fails on the minimized target.
  bool applied = false;
  EXPECT_FALSE(session.replay(*shrunk, rep.minimized_schedule, &applied).ok);
  EXPECT_TRUE(applied);
}

}  // namespace
}  // namespace pmc::explore
