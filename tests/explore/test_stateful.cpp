// Stateful exploration (DESIGN.md §10). The snapshot engine's whole claim
// is observational equivalence: forking schedules from machine snapshots
// must produce byte-identical CheckReports to full stateless replay, over
// every target family, DPOR mode, job count, and fault seed. These suites
// pin that claim (the differential grid), the snapshot/restore round-trip
// properties underneath it, the bounded-pool fallback, and the
// ReplayPolicy recording contract that keeps scheduler state outside the
// machine from tearing on restore.
#include "explore/stateful.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "explore/check.h"
#include "explore/litmus_driver.h"
#include "explore/program_gen.h"
#include "model/litmus_library.h"
#include "sim/machine.h"
#include "sim/scheduler.h"
#include "util/check.h"

namespace pmc::explore {
namespace {

// Fiber scheduling is what makes checkpoints possible; builds without it
// (e.g. sanitizers that reject swapcontext) fall back to replay, and these
// suites have nothing stateful left to test.
#define SKIP_WITHOUT_FIBERS()                                             \
  do {                                                                    \
    if (!sim::Scheduler::fibers_supported()) {                            \
      GTEST_SKIP() << "fiber scheduling unavailable in this build";       \
    }                                                                     \
  } while (0)

SessionOptions grid_opts(EngineState state, DporMode dpor = DporMode::kOff,
                         int jobs = 1, uint64_t horizon = 12,
                         int preemptions = 2) {
  SessionOptions opts;
  opts.explore.preemption_bound = preemptions;
  opts.explore.horizon = horizon;
  opts.explore.dpor = dpor;
  opts.jobs = jobs;
  opts.engine = jobs > 1 ? Engine::kParallel : Engine::kSequential;
  opts.engine_state = state;
  return opts;
}

std::string check_text(const CheckTarget& target, const SessionOptions& opts) {
  return CheckSession(opts).check(target).to_text();
}

// -- The differential grid: snapshot must match replay byte-for-byte ---------

class LitmusDifferential : public ::testing::TestWithParam<rt::Target> {};

TEST_P(LitmusDifferential, EveryAnnotatableTestMatchesReplay) {
  SKIP_WITHOUT_FIBERS();
  for (const auto& test : annotatable_tests()) {
    const LitmusTarget target(test, GetParam());
    const std::string ref =
        check_text(target, grid_opts(EngineState::kReplay));
    EXPECT_EQ(check_text(target, grid_opts(EngineState::kSnapshot)), ref)
        << target.name();
  }
}

INSTANTIATE_TEST_SUITE_P(SimTargets, LitmusDifferential,
                         ::testing::ValuesIn(rt::sim_targets()),
                         [](const auto& info) {
                           return std::string(rt::to_string(info.param));
                         });

TEST(StatefulDifferential, DporModesAndJobCountsMatchReplay) {
  SKIP_WITHOUT_FIBERS();
  const LitmusTarget mp(model::litmus::fig5_mp_annotated(), rt::Target::kSWCC);
  const LitmusTarget ex(model::litmus::fig4_exclusive(), rt::Target::kDSM);
  for (const CheckTarget* target : {
           static_cast<const CheckTarget*>(&mp),
           static_cast<const CheckTarget*>(&ex),
       }) {
    for (const DporMode dpor :
         {DporMode::kOff, DporMode::kFootprint, DporMode::kSleepSet}) {
      const std::string ref =
          check_text(*target, grid_opts(EngineState::kReplay, dpor));
      for (const int jobs : {1, 2, 8}) {
        EXPECT_EQ(check_text(*target,
                             grid_opts(EngineState::kSnapshot, dpor, jobs)),
                  ref)
            << target->name() << " dpor=" << to_string(dpor)
            << " jobs=" << jobs;
      }
    }
  }
}

TEST(StatefulDifferential, AppTargetsMatchReplayOnEveryBackend) {
  SKIP_WITHOUT_FIBERS();
  // App bounds: kernels take more decisions per schedule than a litmus
  // test, so trade horizon for per-schedule depth (same as the CLI).
  for (const rt::Target t : rt::sim_targets()) {
    for (const AppKind kind : all_app_kinds()) {
      const auto target = make_app_target(kind, t);
      const std::string ref = check_text(
          *target,
          grid_opts(EngineState::kReplay, DporMode::kSleepSet, 1, 14, 1));
      EXPECT_EQ(check_text(*target, grid_opts(EngineState::kSnapshot,
                                              DporMode::kSleepSet, 1, 14, 1)),
                ref)
          << target->name();
    }
  }
}

TEST(StatefulDifferential, FuzzProgramsMatchReplay) {
  SKIP_WITHOUT_FIBERS();
  for (const uint64_t seed : {1u, 2u, 5u}) {
    const GenProgram prog = generate_program(shape_for_seed(seed));
    for (const rt::Target t : {rt::Target::kNoCC, rt::Target::kSWCC}) {
      const GenProgramTarget target(prog, t);
      const std::string ref = check_text(
          target, grid_opts(EngineState::kReplay, DporMode::kOff, 1, 10, 1));
      EXPECT_EQ(check_text(target, grid_opts(EngineState::kSnapshot,
                                             DporMode::kOff, 1, 10, 1)),
                ref)
          << target.name();
    }
  }
}

TEST(StatefulDifferential, SeededFaultReportsMatchReplayIncludingMinimization) {
  SKIP_WITHOUT_FIBERS();
  // Failing targets exercise the rest of the pipeline — canonicalization,
  // minimization, replay confirmation — so byte-equality here covers the
  // minimized schedule/message set, not just the totals.
  const LitmusTarget litmus = seeded_bug_check(rt::Target::kSWCC);
  const std::string litmus_ref = check_text(
      litmus, grid_opts(EngineState::kReplay, DporMode::kOff, 1, 16));
  ASSERT_NE(litmus_ref.find("failing"), std::string::npos);
  for (const int jobs : {1, 2}) {
    EXPECT_EQ(check_text(litmus, grid_opts(EngineState::kSnapshot,
                                           DporMode::kOff, jobs, 16)),
              litmus_ref)
        << "jobs=" << jobs;
  }

  for (const AppKind kind : all_app_kinds()) {
    const auto target =
        make_app_target(kind, rt::Target::kSWCC, all_seeded_faults());
    const CheckReport ref = CheckSession(grid_opts(EngineState::kReplay,
                                                   DporMode::kSleepSet, 1, 14,
                                                   1))
                                .check(*target);
    ASSERT_GT(ref.failing, 0u) << target->name();
    for (const int jobs : {1, 2}) {
      EXPECT_EQ(check_text(*target, grid_opts(EngineState::kSnapshot,
                                              DporMode::kSleepSet, jobs, 14,
                                              1)),
                ref.to_text())
          << target->name() << " jobs=" << jobs;
    }
  }
}

// -- Bounded pool: eviction pressure only costs time, never changes reports --

TEST(SnapshotPool, RootOnlyPoolStillMatchesReplay) {
  SKIP_WITHOUT_FIBERS();
  const LitmusTarget target(model::litmus::fig5_mp_annotated(),
                            rt::Target::kSWCC);
  const std::string ref = check_text(target, grid_opts(EngineState::kReplay));
  for (const size_t pool : {size_t{0}, size_t{2}}) {
    SessionOptions opts = grid_opts(EngineState::kSnapshot);
    opts.snapshot_pool = pool;
    opts.snapshot_stride = 4;
    EXPECT_EQ(check_text(target, opts), ref) << "pool=" << pool;
  }
}

TEST(SnapshotPool, CapacityZeroFallsBackToRootRestores) {
  SKIP_WITHOUT_FIBERS();
  const LitmusTarget target(model::litmus::fig5_mp_annotated(),
                            rt::Target::kSWCC);
  StatefulOptions sopts;
  sopts.horizon = 12;
  sopts.checkpoint_stride = 4;
  sopts.pool_capacity = 0;
  StatefulExecutor exec(target.make_spec(), sopts);
  ExploreConfig cfg;
  cfg.horizon = 12;
  const ExploreReport rep = Explorer(exec.runner()).explore(cfg);
  EXPECT_EQ(rep.failing, 0u);
  // Every non-first schedule restarted from the pinned root: no mid-run
  // forks survived eviction, yet exploration still completed identically.
  EXPECT_EQ(exec.stats().pool_hits, 0u);
  EXPECT_EQ(exec.stats().pool_misses, rep.explored - 1);
  EXPECT_GE(exec.stats().snapshots_taken, 1u);

  const ExploreReport ref = Explorer(target.runner()).explore(cfg);
  EXPECT_EQ(rep.explored, ref.explored);
  EXPECT_EQ(rep.distinct_traces, ref.distinct_traces);
}

TEST(SnapshotPool, DefaultPoolForksMostSchedulesMidRun) {
  SKIP_WITHOUT_FIBERS();
  const LitmusTarget target(model::litmus::fig5_mp_annotated(),
                            rt::Target::kSWCC);
  StatefulExecutor exec(target.make_spec(), StatefulOptions{});
  ExploreConfig cfg;
  cfg.horizon = 24;
  const ExploreReport rep = Explorer(exec.runner()).explore(cfg);
  EXPECT_EQ(rep.failing, 0u);
  EXPECT_GT(exec.stats().pool_hits, exec.stats().pool_misses);
}

// -- Snapshot/restore round-trip properties ----------------------------------

// Captures one (machine snapshot, policy recording) pair at a fixed
// decision step — the minimal checkpoint hook, bypassing the pool.
struct CaptureHook final : sim::CheckpointHook {
  rt::Program* prog = nullptr;
  ReplayPolicy* policy = nullptr;
  uint64_t grab_step = 8;
  std::optional<rt::Program::Snapshot> snap;
  ReplayPolicy::Recording rec;

  bool wants_checkpoint(uint64_t step, int) override {
    return step == grab_step && !snap.has_value();
  }
  void on_checkpoint(uint64_t) override {
    rec = policy->export_recording();
    snap = prog->snapshot();
  }
};

// Builds the program for `spec`, runs it under a recording policy, and
// captures a mid-run checkpoint at `grab_step`.
struct RoundTrip {
  explicit RoundTrip(const StatefulSpec& spec, uint64_t grab_step = 8)
      : policy({}, /*horizon=*/24) {
    rt::ProgramOptions opts = spec.opts;
    opts.schedule_policy = &policy;
    prog = std::make_unique<rt::Program>(opts);
    prog->enable_snapshots();
    hook.prog = prog.get();
    hook.policy = &policy;
    hook.grab_step = grab_step;
    prog->set_checkpoint_hook(&hook);
    spec.setup(*prog);
    prog->run(spec.body);
  }

  ReplayPolicy policy;
  std::unique_ptr<rt::Program> prog;
  CaptureHook hook;
};

TEST(SnapshotRoundTrip, RestoredContinuationIsBitIdentical) {
  SKIP_WITHOUT_FIBERS();
  const LitmusTarget target(model::litmus::fig5_mp_annotated(),
                            rt::Target::kSWCC);
  const StatefulSpec spec = target.make_spec();
  RoundTrip rt(spec);
  ASSERT_TRUE(rt.hook.snap.has_value())
      << "default schedule never reached decision step 8";

  const rt::Program::Snapshot final1 = rt.prog->snapshot();
  RunOutcome out1;
  spec.judge(*rt.prog, out1);

  // Fork the captured mid-run state and re-continue: machine digest, trace,
  // and verdict must all reproduce bit-for-bit.
  ReplayPolicy p2({}, /*horizon=*/24);
  p2.seed(rt.hook.rec);
  rt.prog->restore(*rt.hook.snap);
  rt.prog->set_schedule_policy(&p2);
  rt.prog->resume();
  const rt::Program::Snapshot final2 = rt.prog->snapshot();
  RunOutcome out2;
  spec.judge(*rt.prog, out2);

  EXPECT_EQ(sim::Machine::digest(final1.m), sim::Machine::digest(final2.m));
  EXPECT_EQ(final1.trace.size(), final2.trace.size());
  EXPECT_EQ(out1.ok, out2.ok);
  EXPECT_EQ(out1.trace_hash, out2.trace_hash);
  EXPECT_EQ(out1.message, out2.message);
}

TEST(SnapshotRoundTrip, RestoreIsIdempotent) {
  SKIP_WITHOUT_FIBERS();
  const LitmusTarget target(model::litmus::fig4_exclusive(),
                            rt::Target::kDSM);
  const StatefulSpec spec = target.make_spec();
  RoundTrip rt(spec);
  ASSERT_TRUE(rt.hook.snap.has_value());
  const uint64_t mid_digest = sim::Machine::digest(rt.hook.snap->m);

  // restore → snapshot must reproduce the captured state exactly, however
  // many times the same snapshot is re-entered.
  uint64_t final_digest = 0;
  for (int round = 0; round < 2; ++round) {
    ReplayPolicy p({}, /*horizon=*/24);
    p.seed(rt.hook.rec);
    rt.prog->restore(*rt.hook.snap);
    EXPECT_EQ(sim::Machine::digest(rt.prog->snapshot().m), mid_digest)
        << "round " << round;
    rt.prog->set_schedule_policy(&p);
    rt.prog->resume();
    const uint64_t d = sim::Machine::digest(rt.prog->snapshot().m);
    if (round == 0) {
      final_digest = d;
    } else {
      EXPECT_EQ(d, final_digest);
    }
  }
}

// -- The ReplayPolicy recording contract (scheduler state outside the
// machine must travel with the snapshot) ------------------------------------

TEST(RecordingContract, ResumingWithAnUnseededPolicyThrowsOutOfOrder) {
  SKIP_WITHOUT_FIBERS();
  const LitmusTarget target(model::litmus::fig5_mp_annotated(),
                            rt::Target::kSWCC);
  RoundTrip rt(target.make_spec());
  ASSERT_TRUE(rt.hook.snap.has_value());

  // A fresh policy that was never seeded believes the run starts at step 0;
  // the restored machine resumes at step 8. The policy must refuse loudly —
  // silently re-numbering the steps would corrupt every recorded footprint
  // and override match of the shared prefix.
  ReplayPolicy unseeded({}, /*horizon=*/24);
  rt.prog->restore(*rt.hook.snap);
  rt.prog->set_schedule_policy(&unseeded);
  try {
    rt.prog->resume();
    FAIL() << "resume with an unseeded policy must throw";
  } catch (const util::CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find(
                  "scheduler decisions arrived out of order"),
              std::string::npos)
        << e.what();
  }
}

TEST(RecordingContract, SeededResumeRecordsWhatAFullReplayRecords) {
  SKIP_WITHOUT_FIBERS();
  const LitmusTarget target(model::litmus::fig5_mp_annotated(),
                            rt::Target::kSWCC);
  RoundTrip rt(target.make_spec());
  ASSERT_TRUE(rt.hook.snap.has_value());
  const ReplayPolicy::Recording full = rt.policy.export_recording();

  ReplayPolicy p2({}, /*horizon=*/24);
  p2.seed(rt.hook.rec);
  rt.prog->restore(*rt.hook.snap);
  rt.prog->set_schedule_policy(&p2);
  rt.prog->resume();
  const ReplayPolicy::Recording resumed = p2.export_recording();

  // DPOR consumes these post-run: a resumed policy must be indistinguishable
  // from one that watched the whole run.
  EXPECT_EQ(resumed.steps, full.steps);
  EXPECT_EQ(resumed.cand_count, full.cand_count);
  EXPECT_EQ(resumed.cand_cores, full.cand_cores);
  EXPECT_EQ(resumed.chosen, full.chosen);
  EXPECT_EQ(resumed.observable, full.observable);
}

}  // namespace
}  // namespace pmc::explore
