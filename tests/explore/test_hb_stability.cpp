// hb_trace_hash stability (ISSUE satellite): the farm's entire coverage
// signal is the set of hb-class hashes an exploration reports, so that set
// must be a pure function of (target, bounds) — identical across the replay
// and snapshot engines and across job counts, on every back-end. A drift
// here would silently corrupt every persisted corpus.
#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "explore/check.h"
#include "explore/litmus_driver.h"
#include "runtime/program.h"

namespace pmc::explore {
namespace {

SessionOptions base_options() {
  SessionOptions s;
  s.explore.preemption_bound = 1;
  s.explore.horizon = 10;
  s.explore.dpor = DporMode::kSleepSet;
  s.explore.collect_trace_hashes = true;
  s.jobs = 1;
  s.engine_state = EngineState::kReplay;
  return s;
}

class HbStability : public ::testing::TestWithParam<rt::Target> {};

TEST_P(HbStability, ClassSetIsEngineAndJobInvariant) {
  const rt::Target target = GetParam();
  for (const model::LitmusTest& test : annotatable_tests()) {
    const LitmusTarget lt(test, target);

    SessionOptions ref_opts = base_options();
    const CheckReport ref = CheckSession(ref_opts).check(lt);
    ASSERT_FALSE(ref.truncated) << lt.name();
    EXPECT_FALSE(ref.trace_hashes.empty()) << lt.name();
    EXPECT_EQ(static_cast<uint64_t>(ref.trace_hashes.size()),
              ref.distinct_traces)
        << lt.name();
    EXPECT_TRUE(std::is_sorted(ref.trace_hashes.begin(),
                               ref.trace_hashes.end()))
        << lt.name();

    for (const EngineState state :
         {EngineState::kReplay, EngineState::kSnapshot}) {
      for (const int jobs : {1, 2, 8}) {
        if (state == EngineState::kReplay && jobs == 1) continue;  // == ref
        SessionOptions opts = base_options();
        opts.engine_state = state;
        opts.jobs = jobs;
        const CheckReport rep = CheckSession(opts).check(lt);
        EXPECT_EQ(rep.trace_hashes, ref.trace_hashes)
            << lt.name() << " on " << rt::to_string(target) << ": "
            << to_string(state) << " jobs=" << jobs
            << " drifted from replay jobs=1";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, HbStability, ::testing::ValuesIn(rt::sim_targets()),
    [](const ::testing::TestParamInfo<rt::Target>& info) {
      return std::string(rt::to_string(info.param));
    });

}  // namespace
}  // namespace pmc::explore
