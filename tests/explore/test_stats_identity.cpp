// The §V-B time-decomposition identity: on every core, of every simulated
// back-end, cycles_total == busy + stall_total() + idle — under the default
// schedule and under schedule overrides, whose frontier warps advance a
// core's clock without passing through any charge (folded into idle at run
// end, DESIGN.md §6). Regression guard for the trace/telemetry
// instrumentation: observability must never unbalance the ledger.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "explore/check.h"
#include "explore/litmus_driver.h"
#include "model/litmus_library.h"
#include "runtime/program.h"
#include "sim/machine.h"

namespace pmc::explore {
namespace {

constexpr uint64_t kHorizon = 24;

/// Runs `test` on `backend` under `ds`, asserts the identity on every core,
/// and returns the candidate count at each decision step (for building
/// overrides that are guaranteed to bind).
std::vector<int> run_and_check(const model::LitmusTest& test,
                               rt::Target backend, const DecisionString& ds) {
  const LitmusTarget target(test, backend);
  StatefulSpec spec = target.make_spec();
  ReplayPolicy policy(ds, kHorizon, /*record_footprints=*/false);
  rt::ProgramOptions opts = spec.opts;
  opts.schedule_policy = &policy;
  rt::Program prog(opts);
  spec.setup(prog);
  prog.run(spec.body);

  const sim::Machine* m = prog.machine();
  EXPECT_NE(m, nullptr);
  for (int c = 0; c < m->num_cores(); ++c) {
    const sim::CoreStats& s = m->stats(c);
    EXPECT_EQ(s.cycles_total, s.busy + s.stall_total() + s.idle)
        << test.name << "@" << rt::to_string(backend) << " core " << c
        << " schedule \"" << to_string(ds) << "\": busy=" << s.busy
        << " stall=" << s.stall_total() << " idle=" << s.idle;
  }
  std::vector<int> cands;
  for (uint64_t p = 0; p < policy.decision_points() && p < kHorizon; ++p) {
    cands.push_back(policy.candidates_at(p));
  }
  return cands;
}

class StatsIdentity : public ::testing::TestWithParam<rt::Target> {};

TEST_P(StatsIdentity, HoldsOnDefaultSchedules) {
  for (const model::LitmusTest& test : annotatable_tests()) {
    run_and_check(test, GetParam(), {});
  }
}

TEST_P(StatsIdentity, HoldsUnderScheduleOverrides) {
  // Non-default dispatches warp the chosen core's clock forward to the
  // frontier; every warped cycle must land in idle or the identity breaks.
  // Overrides are built from a probe run so each one is guaranteed to bind
  // (choice 1 exists only at steps with >= 2 runnable cores).
  for (const model::LitmusTest& test : annotatable_tests()) {
    const std::vector<int> cands = run_and_check(test, GetParam(), {});
    DecisionString ds;
    for (uint64_t p = 0; p < cands.size() && ds.size() < 2; ++p) {
      if (cands[p] >= 2) ds.push_back({p, 1});
    }
    ASSERT_FALSE(ds.empty())
        << test.name << ": no contended decision step to override";
    run_and_check(test, GetParam(), ds);
  }
}

INSTANTIATE_TEST_SUITE_P(SimTargets, StatsIdentity,
                         ::testing::ValuesIn(rt::sim_targets()),
                         [](const auto& info) {
                           return std::string(rt::to_string(info.param));
                         });

}  // namespace
}  // namespace pmc::explore
