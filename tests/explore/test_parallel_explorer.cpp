// ParallelExplorer: totals and the canonical (lexicographically least)
// failing schedule must be independent of the worker count, minimization
// must be identical at any job count, and the parallel engine must agree
// with the sequential Explorer on the same bounded space.
#include "explore/parallel_explorer.h"

#include <gtest/gtest.h>

#include "explore/litmus_driver.h"
#include "model/litmus_library.h"

namespace pmc::explore {
namespace {

TEST(LexLess, OrdersByStepThenChoiceThenLength) {
  const DecisionString empty;
  const DecisionString a{{2, 1}};
  const DecisionString b{{2, 2}};
  const DecisionString c{{3, 1}};
  const DecisionString ab{{2, 1}, {5, 1}};
  EXPECT_TRUE(lex_less(empty, a));
  EXPECT_TRUE(lex_less(a, b));
  EXPECT_TRUE(lex_less(b, c));
  EXPECT_TRUE(lex_less(a, ab));  // prefix sorts before its extension
  EXPECT_FALSE(lex_less(ab, a));
  EXPECT_FALSE(lex_less(a, a));
}

TEST(ParallelExplorer, MatchesSequentialTotalsOnCleanSweep) {
  const LitmusCheck check(model::litmus::fig5_mp_annotated(),
                          rt::Target::kNoCC);
  ExploreConfig cfg;
  cfg.preemption_bound = 2;
  cfg.horizon = 10;
  cfg.prune_delay = false;
  Explorer seq(check.runner());
  const auto s = seq.explore(cfg);
  ASSERT_EQ(s.explored, 56u);  // Σ C(10, j), j ≤ 2 — the closed form
  for (int jobs : {1, 2, 8}) {
    ParallelExplorer par(check.runner(), jobs);
    const auto p = par.explore(cfg);
    EXPECT_EQ(p.explored, s.explored) << "jobs=" << jobs;
    EXPECT_EQ(p.pruned, s.pruned) << "jobs=" << jobs;
    EXPECT_EQ(p.distinct_traces, s.distinct_traces) << "jobs=" << jobs;
    EXPECT_EQ(p.failing, 0u);
    EXPECT_FALSE(p.truncated);
  }
}

TEST(ParallelExplorer, PruningAccountingMatchesSequential) {
  const LitmusCheck check(model::litmus::fig5_mp_annotated(),
                          rt::Target::kNoCC);
  ExploreConfig cfg;
  cfg.preemption_bound = 1;  // depth 1: explored + pruned is the closed form
  cfg.horizon = 10;
  cfg.prune_delay = true;
  Explorer seq(check.runner());
  const auto s = seq.explore(cfg);
  EXPECT_EQ(s.explored + s.pruned, 11u);
  for (int jobs : {2, 8}) {
    ParallelExplorer par(check.runner(), jobs);
    const auto p = par.explore(cfg);
    EXPECT_EQ(p.explored, s.explored) << "jobs=" << jobs;
    EXPECT_EQ(p.pruned, s.pruned) << "jobs=" << jobs;
  }
}

TEST(ParallelExplorer, TruncationCapsTheExploredCount) {
  const LitmusCheck check(model::litmus::fig5_mp_annotated(),
                          rt::Target::kNoCC);
  ExploreConfig cfg;
  cfg.preemption_bound = 2;
  cfg.horizon = 10;
  cfg.prune_delay = false;
  cfg.max_schedules = 7;
  ParallelExplorer par(check.runner(), 4);
  const auto p = par.explore(cfg);
  EXPECT_TRUE(p.truncated);
  EXPECT_EQ(p.explored, 7u);
}

// -- Seeded-bug determinism (ISSUE satellite) -------------------------------

struct SeededResult {
  uint64_t explored = 0;
  uint64_t pruned = 0;
  uint64_t failing = 0;
  std::string first_failing;
  std::string minimized;
  std::string message;
};

SeededResult run_seeded(rt::Target t, int jobs) {
  LitmusCheck check = seeded_bug_check(t);
  ExploreConfig cfg;
  cfg.preemption_bound = 2;
  cfg.horizon = 16;
  ParallelExplorer ex(check.runner(), jobs);
  const auto rep = ex.explore(cfg);
  SeededResult r;
  r.explored = rep.explored;
  r.pruned = rep.pruned;
  r.failing = rep.failing;
  r.first_failing = to_string(rep.first_failing);
  const auto minimal = ex.minimize(rep.first_failing, cfg.horizon);
  r.minimized = to_string(minimal);
  r.message = ex.replay(minimal, cfg.horizon).message;
  return r;
}

TEST(ParallelExplorer, SeededBugReportIsIdenticalAtAnyJobCount) {
  const SeededResult ref = run_seeded(rt::Target::kDSM, 1);
  ASSERT_GT(ref.failing, 0u);
  ASSERT_FALSE(ref.minimized.empty());
  ASSERT_FALSE(ref.message.empty());
  for (int jobs : {2, 8}) {
    const SeededResult r = run_seeded(rt::Target::kDSM, jobs);
    EXPECT_EQ(r.explored, ref.explored) << "jobs=" << jobs;
    EXPECT_EQ(r.pruned, ref.pruned) << "jobs=" << jobs;
    EXPECT_EQ(r.failing, ref.failing) << "jobs=" << jobs;
    EXPECT_EQ(r.first_failing, ref.first_failing) << "jobs=" << jobs;
    EXPECT_EQ(r.minimized, ref.minimized) << "jobs=" << jobs;
    EXPECT_EQ(r.message, ref.message) << "jobs=" << jobs;
  }
}

TEST(ParallelExplorer, SequentialAndParallelReportsAreByteIdentical) {
  // ISSUE 4 satellite: both engines canonicalize failures to the
  // lexicographic minimum, so the whole report — counts, failing schedule,
  // message, minimization — is byte-identical between Explorer and
  // ParallelExplorer at jobs ∈ {1, 2, 8} on the same space.
  LitmusCheck check = seeded_bug_check(rt::Target::kSWCC);
  ExploreConfig cfg;
  cfg.preemption_bound = 2;
  cfg.horizon = 16;
  Explorer seq(check.runner());
  const auto s = seq.explore(cfg);
  ASSERT_GT(s.failing, 0u);
  const auto s_min = seq.minimize(s.first_failing, cfg.horizon);
  for (int jobs : {1, 2, 8}) {
    ParallelExplorer par(check.runner(), jobs);
    const auto p = par.explore(cfg);
    EXPECT_EQ(p.explored, s.explored) << "jobs=" << jobs;
    EXPECT_EQ(p.pruned, s.pruned) << "jobs=" << jobs;
    EXPECT_EQ(p.dpor_pruned, s.dpor_pruned) << "jobs=" << jobs;
    EXPECT_EQ(p.failing, s.failing) << "jobs=" << jobs;
    EXPECT_EQ(to_string(p.first_failing), to_string(s.first_failing))
        << "jobs=" << jobs;
    EXPECT_EQ(p.first_failing_message, s.first_failing_message)
        << "jobs=" << jobs;
    EXPECT_EQ(to_string(par.minimize(p.first_failing, cfg.horizon)),
              to_string(s_min))
        << "jobs=" << jobs;
  }
  // And the canonical failure really fails.
  bool applied = false;
  EXPECT_FALSE(seq.replay(s.first_failing, cfg.horizon, &applied).ok);
  EXPECT_TRUE(applied);
}

TEST(ParallelExplorer, MinimizeAgreesWithSequentialMinimize) {
  LitmusCheck check = seeded_bug_check(rt::Target::kSPM);
  ExploreConfig cfg;
  cfg.preemption_bound = 2;
  cfg.horizon = 16;
  ParallelExplorer par(check.runner(), 4);
  const auto rep = par.explore(cfg);
  ASSERT_GT(rep.failing, 0u);
  Explorer seq(check.runner());
  EXPECT_EQ(to_string(par.minimize(rep.first_failing, cfg.horizon)),
            to_string(seq.minimize(rep.first_failing, cfg.horizon)));
}

}  // namespace
}  // namespace pmc::explore
