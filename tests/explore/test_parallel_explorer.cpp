// Engine parity through the session API: totals and the canonical
// (lexicographically least) failing schedule must be independent of the
// worker count, minimization must be identical at any job count, and the
// parallel engine must agree with the sequential one on the same bounded
// space — the CheckSession determinism contract (DESIGN.md §7/§9).
#include "explore/check.h"

#include <gtest/gtest.h>

#include "explore/litmus_driver.h"
#include "model/litmus_library.h"

namespace pmc::explore {
namespace {

CheckSession session_for(const ExploreConfig& cfg, int jobs, Engine engine) {
  SessionOptions opts;
  opts.explore = cfg;
  opts.jobs = jobs;
  opts.engine = engine;
  return CheckSession(opts);
}

TEST(LexLess, OrdersByStepThenChoiceThenLength) {
  const DecisionString empty;
  const DecisionString a{{2, 1}};
  const DecisionString b{{2, 2}};
  const DecisionString c{{3, 1}};
  const DecisionString ab{{2, 1}, {5, 1}};
  EXPECT_TRUE(lex_less(empty, a));
  EXPECT_TRUE(lex_less(a, b));
  EXPECT_TRUE(lex_less(b, c));
  EXPECT_TRUE(lex_less(a, ab));  // prefix sorts before its extension
  EXPECT_FALSE(lex_less(ab, a));
  EXPECT_FALSE(lex_less(a, a));
}

TEST(CheckSession, EngineSelectionFollowsJobs) {
  ExploreConfig cfg;
  EXPECT_FALSE(CheckSession(cfg, 1).parallel_engine());
  EXPECT_TRUE(CheckSession(cfg, 2).parallel_engine());
  EXPECT_FALSE(session_for(cfg, 8, Engine::kSequential).parallel_engine());
  EXPECT_TRUE(session_for(cfg, 1, Engine::kParallel).parallel_engine());
}

TEST(ParallelEngine, MatchesSequentialTotalsOnCleanSweep) {
  const LitmusTarget target(model::litmus::fig5_mp_annotated(),
                            rt::Target::kNoCC);
  ExploreConfig cfg;
  cfg.preemption_bound = 2;
  cfg.horizon = 10;
  cfg.prune_delay = false;
  const auto s = session_for(cfg, 1, Engine::kSequential).explore(target);
  ASSERT_EQ(s.explored, 56u);  // Σ C(10, j), j ≤ 2 — the closed form
  for (int jobs : {1, 2, 8}) {
    const auto p = session_for(cfg, jobs, Engine::kParallel).explore(target);
    EXPECT_EQ(p.explored, s.explored) << "jobs=" << jobs;
    EXPECT_EQ(p.pruned, s.pruned) << "jobs=" << jobs;
    EXPECT_EQ(p.distinct_traces, s.distinct_traces) << "jobs=" << jobs;
    EXPECT_EQ(p.failing, 0u);
    EXPECT_FALSE(p.truncated);
  }
}

TEST(ParallelEngine, PruningAccountingMatchesSequential) {
  const LitmusTarget target(model::litmus::fig5_mp_annotated(),
                            rt::Target::kNoCC);
  ExploreConfig cfg;
  cfg.preemption_bound = 1;  // depth 1: explored + pruned is the closed form
  cfg.horizon = 10;
  cfg.prune_delay = true;
  const auto s = session_for(cfg, 1, Engine::kSequential).explore(target);
  EXPECT_EQ(s.explored + s.pruned, 11u);
  for (int jobs : {2, 8}) {
    const auto p = session_for(cfg, jobs, Engine::kParallel).explore(target);
    EXPECT_EQ(p.explored, s.explored) << "jobs=" << jobs;
    EXPECT_EQ(p.pruned, s.pruned) << "jobs=" << jobs;
  }
}

TEST(ParallelEngine, TruncationCapsTheExploredCount) {
  const LitmusTarget target(model::litmus::fig5_mp_annotated(),
                            rt::Target::kNoCC);
  ExploreConfig cfg;
  cfg.preemption_bound = 2;
  cfg.horizon = 10;
  cfg.prune_delay = false;
  cfg.max_schedules = 7;
  const auto p = session_for(cfg, 4, Engine::kParallel).explore(target);
  EXPECT_TRUE(p.truncated);
  EXPECT_EQ(p.explored, 7u);
}

// -- Whole-report determinism (the CheckSession contract) --------------------

TEST(CheckReport, SeededBugReportIsIdenticalAtAnyJobCount) {
  const LitmusTarget target = seeded_bug_check(rt::Target::kDSM);
  ExploreConfig cfg;
  cfg.preemption_bound = 2;
  cfg.horizon = 16;
  const CheckReport ref =
      session_for(cfg, 1, Engine::kParallel).check(target);
  ASSERT_GT(ref.failing, 0u);
  ASSERT_FALSE(ref.minimized_schedule.empty());
  ASSERT_FALSE(ref.minimized_message.empty());
  for (int jobs : {2, 8}) {
    const CheckReport rep =
        session_for(cfg, jobs, Engine::kParallel).check(target);
    EXPECT_EQ(rep.to_text(), ref.to_text()) << "jobs=" << jobs;
  }
}

TEST(CheckReport, SequentialAndParallelReportsAreByteIdentical) {
  // Both engines canonicalize failures to the lexicographic minimum and
  // share the minimization pipeline, so the whole rendered report — counts,
  // failing schedule, message, minimization — is byte-identical between the
  // sequential and the parallel engine at jobs ∈ {1, 2, 8}.
  const LitmusTarget target = seeded_bug_check(rt::Target::kSWCC);
  ExploreConfig cfg;
  cfg.preemption_bound = 2;
  cfg.horizon = 16;
  const CheckSession seq = session_for(cfg, 1, Engine::kSequential);
  const CheckReport s = seq.check(target);
  ASSERT_GT(s.failing, 0u);
  for (int jobs : {1, 2, 8}) {
    const CheckReport p =
        session_for(cfg, jobs, Engine::kParallel).check(target);
    EXPECT_EQ(p.to_text(), s.to_text()) << "jobs=" << jobs;
  }
  // And the canonical failure really fails.
  bool applied = false;
  EXPECT_FALSE(seq.replay(target, s.first_failing, &applied).ok);
  EXPECT_TRUE(applied);
}

TEST(ParallelEngine, MinimizeAgreesWithSequentialMinimize) {
  const LitmusTarget target = seeded_bug_check(rt::Target::kSPM);
  ExploreConfig cfg;
  cfg.preemption_bound = 2;
  cfg.horizon = 16;
  const CheckSession par = session_for(cfg, 4, Engine::kParallel);
  const auto rep = par.explore(target);
  ASSERT_GT(rep.failing, 0u);
  const CheckSession seq = session_for(cfg, 1, Engine::kSequential);
  EXPECT_EQ(to_string(par.minimize(target, rep.first_failing)),
            to_string(seq.minimize(target, rep.first_failing)));
}

}  // namespace
}  // namespace pmc::explore
