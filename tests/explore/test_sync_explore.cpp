// The sync primitives themselves under schedule exploration: mutual
// exclusion of both lock managers and the ordering guarantee of the
// sense-reversing barrier must hold on every explored interleaving — raw on
// the machine (no runtime back-end in the way) and at the Env level on all
// four Table II back-ends. Everything goes through the CheckSession front
// door; raw runners ride along as ScheduleRunner lambdas (DESIGN.md §9).
#include <gtest/gtest.h>

#include <memory>

#include "explore/check.h"
#include "explore/program_gen.h"
#include "sim/machine.h"
#include "sync/barrier.h"
#include "sync/locks.h"

namespace pmc::explore {
namespace {

using sim::Addr;
using sim::Core;
using sim::Machine;
using sim::MachineConfig;
using sim::MemClass;

constexpr Addr kLockArea = sim::kSdramBase;
constexpr uint32_t kLockAreaBytes = 8 * 1024;
constexpr Addr kCounterWord = sim::kSdramBase + 64 * 1024;
constexpr Addr kSlotBase = sim::kSdramBase + 96 * 1024;

MachineConfig raw_cfg(int cores) {
  MachineConfig c = MachineConfig::ml605(cores);
  c.lm_bytes = 16 * 1024;
  c.sdram_bytes = 256 * 1024;
  c.max_cycles = 500'000'000;
  // Plain loads/stores go straight to SDRAM (no private-cache staleness),
  // so the shared counter is coherent if and only if the lock serializes
  // its read-modify-write — exactly the property under test.
  c.cache_shared = false;
  return c;
}

/// One schedule of `cores` cores incrementing a plain shared counter
/// `rounds` times each, with or without a lock around the increment.
RunOutcome run_lock_once(bool dist, bool locked, int cores, int rounds,
                         ReplayPolicy& policy) {
  RunOutcome out;
  try {
    Machine m(raw_cfg(cores));
    m.set_schedule_policy(&policy);
    std::unique_ptr<sync::LockManager> locks;
    if (dist) {
      locks = std::make_unique<sync::DistLockManager>(
          m, kLockArea, kLockAreaBytes, /*lm_offset=*/0, 8 * 1024);
    } else {
      locks = std::make_unique<sync::SpinLockManager>(m, kLockArea,
                                                      kLockAreaBytes);
    }
    const int l = locks->create();
    m.run([&](Core& core) {
      for (int r = 0; r < rounds; ++r) {
        if (locked) locks->acquire(core, l);
        const uint32_t v = core.load_u32(kCounterWord, MemClass::kSharedData);
        core.compute(8);
        core.store_u32(kCounterWord, v + 1, MemClass::kSharedData);
        if (locked) locks->release(core, l);
        core.compute(5);
      }
    });
    out.trace_hash = m.state_hash();
    uint32_t final_value = 0;
    m.peek(kCounterWord, &final_value, sizeof final_value);
    const uint32_t want = static_cast<uint32_t>(cores * rounds);
    if (final_value != want) {
      out.ok = false;
      out.message = "lost update: counter is " + std::to_string(final_value) +
                    ", mutual exclusion requires " + std::to_string(want);
    }
  } catch (const std::exception& e) {
    out.ok = false;
    out.message = e.what();
  }
  return out;
}

/// One schedule of a per-round barrier protocol: every core publishes its
/// round number, waits, then requires every other core's slot to have
/// reached that round — the barrier's all-arrived-before-anyone-leaves
/// guarantee, observed through memory.
RunOutcome run_barrier_once(int cores, int rounds, ReplayPolicy& policy) {
  RunOutcome out;
  try {
    Machine m(raw_cfg(cores));
    m.set_schedule_policy(&policy);
    sync::Barrier bar(m, /*count_word=*/kLockArea, /*lm_flag_offset=*/0);
    const auto slot = [](int id) {
      return kSlotBase + static_cast<Addr>(id) * 64;
    };
    std::string violation;  // single-runner safe, like the machine itself
    m.run([&](Core& core) {
      for (uint32_t r = 1; r <= static_cast<uint32_t>(rounds); ++r) {
        core.store_u32(slot(core.id()), r, MemClass::kSharedData);
        bar.wait(core);
        for (int j = 0; j < core.num_cores(); ++j) {
          const uint32_t v = core.load_u32(slot(j), MemClass::kSharedData);
          if (v < r && violation.empty()) {
            violation = "core " + std::to_string(core.id()) +
                        " left barrier round " + std::to_string(r) +
                        " but saw core " + std::to_string(j) + " at round " +
                        std::to_string(v);
          }
        }
      }
    });
    out.trace_hash = m.state_hash();
    if (!violation.empty()) {
      out.ok = false;
      out.message = violation;
    }
  } catch (const std::exception& e) {
    out.ok = false;
    out.message = e.what();
  }
  return out;
}

ExploreConfig sync_cfg() {
  ExploreConfig cfg;
  cfg.preemption_bound = 1;
  cfg.horizon = 14;
  return cfg;
}

class LockKind : public ::testing::TestWithParam<bool> {};

TEST_P(LockKind, MutualExclusionHoldsOnEveryExploredSchedule) {
  const bool dist = GetParam();
  const CheckSession session(sync_cfg(), /*jobs=*/2);
  const auto rep = session.explore([dist](ReplayPolicy& p) {
    return run_lock_once(dist, /*locked=*/true, /*cores=*/2,
                         /*rounds=*/2, p);
  });
  EXPECT_EQ(rep.failing, 0u)
      << "schedule \"" << to_string(rep.first_failing)
      << "\": " << rep.first_failing_message;
  EXPECT_GE(rep.explored, 2u);
  EXPECT_GT(rep.distinct_traces, 0u);
}

TEST_P(LockKind, OracleHasTeethWithoutTheLock) {
  // Drop the lock and the very same oracle must catch a lost update on some
  // (often every) interleaving — the explorer is not vacuously green.
  const bool dist = GetParam();
  ExploreConfig cfg = sync_cfg();
  cfg.horizon = 20;
  const CheckSession session(cfg, /*jobs=*/2);
  const auto rep = session.explore([dist](ReplayPolicy& p) {
    return run_lock_once(dist, /*locked=*/false, /*cores=*/2,
                         /*rounds=*/2, p);
  });
  EXPECT_GT(rep.failing, 0u)
      << "no explored schedule lost an update on the unlocked counter";
}

INSTANTIATE_TEST_SUITE_P(Managers, LockKind, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? std::string("dist")
                                             : std::string("spin");
                         });

TEST(BarrierExplore, AllArrivedBeforeAnyoneLeavesOnEverySchedule) {
  const CheckSession session(sync_cfg(), /*jobs=*/2);
  const auto rep = session.explore(
      [](ReplayPolicy& p) { return run_barrier_once(3, /*rounds=*/2, p); });
  EXPECT_EQ(rep.failing, 0u)
      << "schedule \"" << to_string(rep.first_failing)
      << "\": " << rep.first_failing_message;
  EXPECT_GE(rep.explored, 2u);
}

// -- The same properties through the Env annotations, per back-end ----------

GenProgram mutex_program(int cores, int rounds) {
  GenProgram prog;
  prog.shape.seed = 0;
  prog.shape.cores = cores;
  prog.shape.objects = 1;
  prog.shape.steps = rounds;
  prog.threads.resize(static_cast<size_t>(cores));
  for (auto& th : prog.threads) {
    for (int r = 0; r < rounds; ++r) {
      GenOp op;
      op.kind = GenOp::Kind::kUpdate;
      op.obj = 0;
      op.arg = 1;
      th.push_back(op);
    }
    th.push_back({GenOp::Kind::kBarrier});
  }
  return prog;
}

class BackendSync : public ::testing::TestWithParam<rt::Target> {};

TEST_P(BackendSync, EntryExitMutualExclusionOnEverySchedule) {
  // cores × rounds exclusive increments of one object: the closed-form
  // oracle (== cores·rounds) fails on any schedule where the back-end's
  // entry_x/exit_x (lock + Table II data movement) lets an update slip.
  const GenProgramTarget target(mutex_program(/*cores=*/2, /*rounds=*/3),
                                GetParam());
  ExploreConfig cfg;
  cfg.preemption_bound = 1;
  cfg.horizon = 12;
  const auto rep = CheckSession(cfg, /*jobs=*/2).explore(target);
  EXPECT_EQ(rep.failing, 0u)
      << rt::to_string(GetParam()) << ": schedule \""
      << to_string(rep.first_failing) << "\": " << rep.first_failing_message;
}

/// Barrier visibility at the Env level: each core writes its own object,
/// barriers, then reads everyone's. DSM runs eager release like every
/// unsynchronized-reader litmus (a lazy replica may legally stay stale —
/// the paper's "slow reads").
RunOutcome run_env_barrier_once(rt::Target t, int cores,
                                ReplayPolicy& policy) {
  RunOutcome out;
  try {
    rt::ProgramOptions opts;
    opts.target = t;
    opts.cores = cores;
    opts.machine = sim::MachineConfig::ml605(cores);
    opts.machine.lm_bytes = 32 * 1024;
    opts.machine.sdram_bytes = 256 * 1024;
    opts.machine.max_cycles = 100'000'000;
    opts.validate = true;
    opts.policy.dsm_eager_release = true;
    opts.schedule_policy = &policy;
    rt::Program p(opts);
    std::vector<rt::ObjId> objs;
    for (int i = 0; i < cores; ++i) {
      objs.push_back(p.create_typed<uint32_t>(0, rt::Placement::kReplicated,
                                              "b" + std::to_string(i)));
    }
    std::vector<uint32_t> seen(static_cast<size_t>(cores * cores), 0);
    p.run([&](rt::Env& env) {
      const auto me = static_cast<size_t>(env.id());
      env.entry_x(objs[me]);
      env.st<uint32_t>(objs[me], 0, 100u + static_cast<uint32_t>(me));
      env.exit_x(objs[me]);
      env.barrier();
      for (int j = 0; j < cores; ++j) {
        env.entry_ro(objs[static_cast<size_t>(j)]);
        seen[me * static_cast<size_t>(cores) + static_cast<size_t>(j)] =
            env.ld<uint32_t>(objs[static_cast<size_t>(j)]);
        env.exit_ro(objs[static_cast<size_t>(j)]);
      }
    });
    out.trace_hash = p.machine() != nullptr ? p.machine()->state_hash() : 0;
    if (p.validator() != nullptr && !p.validator()->ok()) {
      out.ok = false;
      out.message =
          "Definition 12 violation: " + p.validator()->first_violation();
      return out;
    }
    for (int i = 0; i < cores && out.ok; ++i) {
      for (int j = 0; j < cores; ++j) {
        const uint32_t v =
            seen[static_cast<size_t>(i) * static_cast<size_t>(cores) +
                 static_cast<size_t>(j)];
        if (v != 100u + static_cast<uint32_t>(j)) {
          out.ok = false;
          out.message = "core " + std::to_string(i) +
                        " read a pre-barrier value of object " +
                        std::to_string(j) + " (" + std::to_string(v) + ")";
          break;
        }
      }
    }
  } catch (const std::exception& e) {
    out.ok = false;
    out.message = e.what();
  }
  return out;
}

TEST_P(BackendSync, BarrierMakesPreBarrierWritesVisibleOnEverySchedule) {
  const rt::Target t = GetParam();
  ExploreConfig cfg;
  cfg.preemption_bound = 1;
  cfg.horizon = 12;
  const CheckSession session(cfg, /*jobs=*/2);
  const auto rep = session.explore(
      [t](ReplayPolicy& p) { return run_env_barrier_once(t, 2, p); });
  EXPECT_EQ(rep.failing, 0u)
      << rt::to_string(t) << ": schedule \"" << to_string(rep.first_failing)
      << "\": " << rep.first_failing_message;
  EXPECT_GE(rep.explored, 2u);
}

INSTANTIATE_TEST_SUITE_P(SimTargets, BackendSync,
                         ::testing::ValuesIn(rt::sim_targets()),
                         [](const auto& info) {
                           return std::string(rt::to_string(info.param));
                         });

}  // namespace
}  // namespace pmc::explore
