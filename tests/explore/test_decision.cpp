// Decision-string encode/parse round trips and rejection of malformed input.
#include "explore/decision.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pmc::explore {
namespace {

TEST(Decision, EmptyStringIsDefaultSchedule) {
  EXPECT_EQ(to_string(DecisionString{}), "");
  EXPECT_TRUE(parse_decision_string("").empty());
}

TEST(Decision, RoundTrip) {
  const DecisionString ds = {{12, 1}, {40, 2}, {1000000, 7}};
  const std::string text = to_string(ds);
  EXPECT_EQ(text, "12:1,40:2,1000000:7");
  EXPECT_EQ(parse_decision_string(text), ds);
}

TEST(Decision, SingleOverride) {
  const auto ds = parse_decision_string("3:1");
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].step, 3u);
  EXPECT_EQ(ds[0].choice, 1);
}

TEST(Decision, RejectsMalformedInput) {
  EXPECT_THROW(parse_decision_string("abc"), util::CheckFailure);
  EXPECT_THROW(parse_decision_string("3"), util::CheckFailure);
  EXPECT_THROW(parse_decision_string("3:"), util::CheckFailure);
  EXPECT_THROW(parse_decision_string("3:1,"), util::CheckFailure);
  EXPECT_THROW(parse_decision_string(":1"), util::CheckFailure);
  EXPECT_THROW(parse_decision_string("3:1 4:1"), util::CheckFailure);
}

TEST(Decision, RejectsDefaultChoiceAndNonIncreasingSteps) {
  // choice 0 is the default pick — never a legal override.
  EXPECT_THROW(parse_decision_string("3:0"), util::CheckFailure);
  EXPECT_THROW(parse_decision_string("4:1,4:1"), util::CheckFailure);
  EXPECT_THROW(parse_decision_string("5:1,4:1"), util::CheckFailure);
}

}  // namespace
}  // namespace pmc::explore
