// Decision-string encode/parse round trips and rejection of malformed input.
#include "explore/decision.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/rng.h"

namespace pmc::explore {
namespace {

TEST(Decision, EmptyStringIsDefaultSchedule) {
  EXPECT_EQ(to_string(DecisionString{}), "");
  EXPECT_TRUE(parse_decision_string("").empty());
}

TEST(Decision, RoundTrip) {
  const DecisionString ds = {{12, 1}, {40, 2}, {1000000, 7}};
  const std::string text = to_string(ds);
  EXPECT_EQ(text, "12:1,40:2,1000000:7");
  EXPECT_EQ(parse_decision_string(text), ds);
}

TEST(Decision, SingleOverride) {
  const auto ds = parse_decision_string("3:1");
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].step, 3u);
  EXPECT_EQ(ds[0].choice, 1);
}

TEST(Decision, RejectsMalformedInput) {
  EXPECT_THROW(parse_decision_string("abc"), util::CheckFailure);
  EXPECT_THROW(parse_decision_string("3"), util::CheckFailure);
  EXPECT_THROW(parse_decision_string("3:"), util::CheckFailure);
  EXPECT_THROW(parse_decision_string("3:1,"), util::CheckFailure);
  EXPECT_THROW(parse_decision_string(":1"), util::CheckFailure);
  EXPECT_THROW(parse_decision_string("3:1 4:1"), util::CheckFailure);
}

TEST(Decision, RejectsDefaultChoiceAndNonIncreasingSteps) {
  // choice 0 is the default pick — never a legal override.
  EXPECT_THROW(parse_decision_string("3:0"), util::CheckFailure);
  EXPECT_THROW(parse_decision_string("4:1,4:1"), util::CheckFailure);
  EXPECT_THROW(parse_decision_string("5:1,4:1"), util::CheckFailure);
}

TEST(Decision, RejectsOverflowInsteadOfWrapping) {
  // 99999999999999999999999 wraps to a small number in 64-bit arithmetic;
  // a parser that accepts it replays some unrelated schedule (ISSUE 4).
  EXPECT_THROW(parse_decision_string("99999999999999999999999:1"),
               util::CheckFailure);
  EXPECT_THROW(parse_decision_string("1:99999999999999999999999"),
               util::CheckFailure);
  // UINT64_MAX itself parses as a number but fails the range check.
  EXPECT_THROW(parse_decision_string("18446744073709551615:1"),
               util::CheckFailure);
  // One past UINT64_MAX overflows in the last digit.
  EXPECT_THROW(parse_decision_string("18446744073709551616:1"),
               util::CheckFailure);
}

TEST(Decision, BoundsStepLikeChoice) {
  // Steps come from horizon-bounded exploration; both fields share the
  // 1'000'000 cap.
  EXPECT_NO_THROW(parse_decision_string("1000000:1000000"));
  EXPECT_THROW(parse_decision_string("1000001:1"), util::CheckFailure);
  EXPECT_THROW(parse_decision_string("1:1000001"), util::CheckFailure);
}

TEST(Decision, RandomizedRoundTripProperty) {
  // to_string(parse(s)) == s and parse(to_string(ds)) == ds over random
  // well-formed strings: the encoding is a bijection on legal schedules.
  util::Rng rng(0xDEC15105);
  for (int iter = 0; iter < 200; ++iter) {
    DecisionString ds;
    uint64_t step = 0;
    const int len = static_cast<int>(rng.next_below(5));
    for (int i = 0; i < len; ++i) {
      step += 1 + rng.next_below(1000);
      if (step > 1'000'000) break;
      ds.push_back({step, 1 + static_cast<int>(rng.next_below(999))});
    }
    const std::string text = to_string(ds);
    EXPECT_EQ(parse_decision_string(text), ds);
    EXPECT_EQ(to_string(parse_decision_string(text)), text);
  }
}

}  // namespace
}  // namespace pmc::explore
