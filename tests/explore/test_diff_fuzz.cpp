// Differential fuzzing of randomized lock-disciplined programs: every
// back-end, under every explored schedule, must satisfy the Definition 12
// validator and land on the generator's closed-form final state. Seeded
// protocol faults must be found, program- and schedule-minimized, and
// reported with an exact one-command repro line in the assertion message.
#include "explore/diff_check.h"

#include <gtest/gtest-spi.h>
#include <gtest/gtest.h>

#include "explore/check.h"
#include "explore/litmus_driver.h"
#include "fuzz/seed_plan.h"
#include "runtime/program.h"

namespace pmc::explore {
namespace {

ExploreConfig fuzz_cfg() {
  ExploreConfig cfg;
  cfg.preemption_bound = 1;
  cfg.horizon = 10;
  return cfg;
}

rt::FaultInjection all_faults() { return all_seeded_faults(); }

/// The one assertion every fuzz property funnels through: a failing report
/// trips EXPECT_TRUE with the repro line (and the minimized program) in the
/// assertion message — the contract the grep test below locks in.
void expect_diff_ok(const DiffReport& rep) {
  if (!rep.failure.has_value()) {
    EXPECT_TRUE(rep.ok);
    return;
  }
  EXPECT_TRUE(rep.ok) << rep.failure->message << "\n"
                      << rep.failure->repro << "\nminimized program:\n"
                      << to_string(rep.failure->program);
}

// -- Generator invariants ---------------------------------------------------

TEST(ProgramGen, GenerationIsDeterministicAndShaped) {
  const ProgramShape shape = shape_for_seed(3);
  const GenProgram a = generate_program(shape);
  const GenProgram b = generate_program(shape);
  EXPECT_EQ(a, b);
  ASSERT_EQ(static_cast<int>(a.threads.size()), shape.cores);
  for (const auto& th : a.threads) {
    EXPECT_EQ(th.back().kind, GenOp::Kind::kBarrier);
  }
  EXPECT_NE(a, generate_program(shape_for_seed(4)));
}

TEST(ProgramGen, BarriersStaySlotAlignedAcrossThreads) {
  for (uint64_t seed : fuzz::seed_sweep(8)) {
    ProgramShape shape = shape_for_seed(seed);
    shape.barrier_pct = 40;  // force several barriers
    const GenProgram prog = generate_program(shape);
    std::vector<size_t> counts;
    for (const auto& th : prog.threads) {
      size_t n = 0;
      for (const auto& op : th) {
        if (op.kind == GenOp::Kind::kBarrier) ++n;
      }
      counts.push_back(n);
    }
    for (size_t n : counts) EXPECT_EQ(n, counts[0]) << "seed=" << seed;
  }
}

TEST(ProgramGen, DroppingABarrierDropsItEverywhere) {
  ProgramShape shape = shape_for_seed(0);
  shape.barrier_pct = 100;
  GenProgram prog = generate_program(shape);
  const auto barriers = [](const GenProgram& p, size_t t) {
    size_t n = 0;
    for (const auto& op : p.threads[t]) {
      if (op.kind == GenOp::Kind::kBarrier) ++n;
    }
    return n;
  };
  const size_t before = barriers(prog, 0);
  ASSERT_GE(before, 2u);
  // Find a barrier op in thread 1 and drop it; thread 0 must shrink too.
  size_t idx = 0;
  while (prog.threads[1][idx].kind != GenOp::Kind::kBarrier) ++idx;
  ASSERT_TRUE(prog.drop(1, idx));
  EXPECT_EQ(barriers(prog, 0), before - 1);
  EXPECT_EQ(barriers(prog, 1), before - 1);
}

TEST(ProgramGen, ClosedFormMatchesAHostRun) {
  // The host back-end is real hardware shared memory — an independent
  // implementation of the closed form.
  for (uint64_t seed : fuzz::seed_sweep(4)) {
    const GenProgram prog = generate_program(shape_for_seed(seed));
    rt::ProgramOptions opts;
    opts.target = rt::Target::kHostSC;
    opts.cores = prog.shape.cores;
    rt::Program p(opts);
    std::vector<rt::ObjId> objs;
    for (int i = 0; i < prog.shape.objects; ++i) {
      objs.push_back(p.create_typed<uint32_t>(GenProgram::initial_value(i),
                                              rt::Placement::kReplicated,
                                              "h" + std::to_string(i)));
    }
    p.run([&](rt::Env& env) { run_ops(prog, env, objs); });
    for (int i = 0; i < prog.shape.objects; ++i) {
      EXPECT_EQ(p.result<uint32_t>(objs[static_cast<size_t>(i)]),
                prog.expected_final(i))
          << "seed=" << seed << " object=" << i;
    }
  }
}

// -- The differential property ----------------------------------------------

class DiffFuzzSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DiffFuzzSeeds, EveryBackendValidatesAndAgreesOnEverySchedule) {
  const GenProgram prog = generate_program(shape_for_seed(GetParam()));
  const DiffCheck dc(prog);
  const DiffReport rep = dc.check(fuzz_cfg(), /*jobs=*/2);
  expect_diff_ok(rep);
  EXPECT_FALSE(rep.truncated);
  EXPECT_GE(rep.explored, 4u);  // at least the default schedule per back-end
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffFuzzSeeds,
                         ::testing::ValuesIn(fuzz::seed_sweep(6)));

// -- Seeded-bug self-test ----------------------------------------------------

TEST(DiffFuzz, SeededFaultIsFoundMinimizedAndReplayable) {
  const GenProgram prog = generate_program(shape_for_seed(1));
  const DiffCheck dc(prog, all_faults());
  const ExploreConfig cfg = fuzz_cfg();
  const DiffReport rep = dc.check(cfg, 2);
  ASSERT_FALSE(rep.ok);
  ASSERT_TRUE(rep.failure.has_value());
  const DiffFailure& f = *rep.failure;

  // The repro line carries the env var, the ctest invocation, the fault
  // re-injection flag, and a step:choice replay string.
  EXPECT_NE(f.repro.find("PMC_FUZZ_SEEDS="), std::string::npos) << f.repro;
  EXPECT_NE(f.repro.find("ctest -R"), std::string::npos) << f.repro;
  EXPECT_NE(f.repro.find("--seed-bug"), std::string::npos) << f.repro;
  const size_t replay_at = f.repro.find("--replay=");
  ASSERT_NE(replay_at, std::string::npos) << f.repro;

  // The repro's replay string holds on the *original* program (the one the
  // CLI regenerates from the seed): it must fail there, fully applied.
  const DecisionString repro_schedule = parse_decision_string(
      f.repro.substr(replay_at + std::string("--replay=").size()));
  const CheckSession session(cfg, /*jobs=*/2);
  const auto original = dc.target(f.target);
  bool applied = false;
  EXPECT_FALSE(session.replay(*original, repro_schedule, &applied).ok);
  EXPECT_TRUE(applied);

  // The minimized program got smaller and the minimized schedule still
  // reproduces the exact failure on it.
  EXPECT_LT(f.program.ops(), prog.ops());
  const GenProgramTarget minimized(f.program, f.target, all_faults());
  applied = false;
  const RunOutcome out = session.replay(minimized, f.schedule, &applied);
  EXPECT_TRUE(applied);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.message, f.message);
}

TEST(DiffFuzz, SeededFailureIsIdenticalAtAnyJobCount) {
  const rt::FaultInjection faults =
      rt::FaultInjection::one("swcc_skip_exit_writeback");
  const GenProgram prog = generate_program(shape_for_seed(2));
  const DiffCheck dc(prog, faults);
  const DiffReport ref = dc.check(fuzz_cfg(), 1);
  ASSERT_TRUE(ref.failure.has_value());
  for (int jobs : {2, 8}) {
    const DiffReport rep = dc.check(fuzz_cfg(), jobs);
    ASSERT_TRUE(rep.failure.has_value()) << "jobs=" << jobs;
    EXPECT_EQ(rep.explored, ref.explored) << "jobs=" << jobs;
    EXPECT_EQ(rep.pruned, ref.pruned) << "jobs=" << jobs;
    EXPECT_EQ(rep.failure->target, ref.failure->target) << "jobs=" << jobs;
    EXPECT_EQ(to_string(rep.failure->schedule),
              to_string(ref.failure->schedule))
        << "jobs=" << jobs;
    EXPECT_EQ(to_string(rep.failure->program), to_string(ref.failure->program))
        << "jobs=" << jobs;
    EXPECT_EQ(rep.failure->message, ref.failure->message) << "jobs=" << jobs;
    EXPECT_EQ(rep.failure->repro, ref.failure->repro) << "jobs=" << jobs;
  }
}

TEST(DiffFuzz, AssertionMessageCarriesTheReproLine) {
  // Force a seeded-bug failure through the real assertion path and grep the
  // resulting gtest message for the repro line (ISSUE satellite).
  const GenProgram prog = generate_program(shape_for_seed(1));
  const DiffCheck dc(prog, all_faults());
  const DiffReport rep = dc.check(fuzz_cfg(), 2);
  ASSERT_FALSE(rep.ok);
  EXPECT_NONFATAL_FAILURE(expect_diff_ok(rep), "PMC_FUZZ_SEEDS=");
  EXPECT_NONFATAL_FAILURE(expect_diff_ok(rep), "ctest -R");
  EXPECT_NONFATAL_FAILURE(expect_diff_ok(rep), "--replay=");
}

}  // namespace
}  // namespace pmc::explore
