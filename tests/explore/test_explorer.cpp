// Session-driven enumeration, pruning accounting, back-end model checking,
// and seeded-bug discovery (the sequential engine).
//
// The closed-form counting tests pin the enumeration exactly: for a 2-core
// litmus program every decision step below the horizon has exactly two
// runnable cores (one alternative), so the number of schedules with at most
// k preemptions in the first H steps is sum_{j<=k} C(H, j). The session's
// explored (pruning off) — or explored + pruned (k = 1) — must match it.
#include "explore/check.h"

#include <gtest/gtest.h>

#include "explore/litmus_driver.h"
#include "model/litmus_library.h"
#include "sim/machine.h"

namespace pmc::explore {
namespace {

TEST(Annotatable, FiltersTheLitmusLibrary) {
  EXPECT_TRUE(annotatable(model::litmus::fig5_mp_annotated()));
  EXPECT_TRUE(annotatable(model::litmus::fig4_exclusive()));
  EXPECT_TRUE(annotatable(model::litmus::sb_locked()));
  EXPECT_TRUE(annotatable(model::litmus::wrc_locked()));
  // Naked accesses cannot run on the §V-A runtime.
  EXPECT_FALSE(annotatable(model::litmus::fig1_mp_plain()));
  EXPECT_FALSE(annotatable(model::litmus::sb_plain()));
  EXPECT_FALSE(annotatable(model::litmus::racy_write_write()));
  EXPECT_FALSE(annotatable(model::litmus::coherence_rr()));
  EXPECT_GE(annotatable_tests().size(), 6u);
}

// -- Closed-form enumeration (2 cores, 2 objects: fig5_mp_annotated) --------

TEST(CheckSession, ClosedFormCountWithoutPruning) {
  const LitmusTarget target(model::litmus::fig5_mp_annotated(),
                            rt::Target::kNoCC);
  ExploreConfig cfg;
  cfg.preemption_bound = 2;
  cfg.horizon = 10;
  cfg.prune_delay = false;
  const auto rep = CheckSession(cfg).explore(target);
  // C(10,0) + C(10,1) + C(10,2) = 1 + 10 + 45.
  EXPECT_EQ(rep.explored, 56u);
  EXPECT_EQ(rep.pruned, 0u);
  EXPECT_FALSE(rep.truncated);
  EXPECT_EQ(rep.failing, 0u);
}

// A 2-core raw-machine program whose schedule prefix contains genuine
// pure-delay segments: back-to-back compute() calls yield decision points
// whose just-ended segment performed no memory-system effect. (Litmus
// programs have none in-horizon: every segment of a memory op — including
// the mid-op stall slices — now carries its footprint, closing the PR 2 gap
// where those slices were silently treated as preemptible pure delay.)
RunOutcome run_compute_heavy(ReplayPolicy& policy) {
  sim::MachineConfig mc = sim::MachineConfig::ml605(2);
  sim::Machine m(mc);
  m.set_schedule_policy(&policy);
  m.run([](sim::Core& core) {
    const sim::Addr a =
        sim::kSdramBase + 64 * static_cast<sim::Addr>(core.id());
    for (uint32_t i = 0; i < 4; ++i) {
      core.store_u32(a, i, sim::MemClass::kSharedData);
      core.compute(8);
      core.compute(8);  // the segment between the computes is pure delay
    }
  });
  RunOutcome out;
  out.trace_hash = m.state_hash();
  return out;
}

TEST(CheckSession, ClosedFormCountWithPruning) {
  const FnTarget target("compute-heavy", run_compute_heavy);
  ExploreConfig cfg;
  cfg.preemption_bound = 1;  // depth 1: pruned schedules have no children
  cfg.horizon = 10;
  cfg.prune_delay = true;
  const auto rep = CheckSession(cfg).explore(target);
  // Every enumerated schedule is either run or pruned: C(10,0) + C(10,1).
  EXPECT_EQ(rep.explored + rep.pruned, 11u);
  EXPECT_GT(rep.pruned, 0u) << "back-to-back computes must prune";
  EXPECT_EQ(rep.failing, 0u);
}

TEST(CheckSession, MemoryOpStallSegmentsAreNotPureDelay) {
  // Regression for the PR 2 gap: the mid-operation stall segment of an
  // uncached store contains the posted write, so preempting it is a real
  // reordering — it must not be delay-pruned. With pruning on and off the
  // litmus space is therefore the same size.
  const LitmusTarget target(model::litmus::fig5_mp_annotated(),
                            rt::Target::kNoCC);
  ExploreConfig cfg;
  cfg.preemption_bound = 1;
  cfg.horizon = 10;
  cfg.prune_delay = true;
  const auto pruned_on = CheckSession(cfg).explore(target);
  cfg.prune_delay = false;
  const auto pruned_off = CheckSession(cfg).explore(target);
  EXPECT_EQ(pruned_on.explored, pruned_off.explored);
  EXPECT_EQ(pruned_on.pruned, 0u);
}

TEST(CheckSession, ThreeCoreClosedFormCount) {
  // wrc_locked has 3 threads: two alternatives per step below the horizon.
  const LitmusTarget target(model::litmus::wrc_locked(), rt::Target::kNoCC);
  ExploreConfig cfg;
  cfg.preemption_bound = 1;
  cfg.horizon = 8;
  cfg.prune_delay = false;
  const auto rep = CheckSession(cfg).explore(target);
  EXPECT_EQ(rep.explored, 1u + 2u * 8u);
}

TEST(CheckSession, TruncatedRunReportsLexLeastAmongExplored) {
  // `max_schedules` cuts the space short, but the reported failing schedule
  // must still be the lexicographic minimum among what *was* explored — not
  // whatever the DFS happened to hit first (ISSUE 4 satellite).
  const LitmusTarget target = seeded_bug_check(rt::Target::kSWCC);
  ExploreConfig cfg;
  cfg.preemption_bound = 2;
  cfg.horizon = 16;
  cfg.collect_failing = true;
  const auto full = CheckSession(cfg).explore(target);
  ASSERT_FALSE(full.truncated);
  ASSERT_GT(full.failing, 0u);
  // Truncate right after the temporally first failure: later (possibly
  // lex-smaller) failures are cut off, so the report must be the minimum of
  // the explored prefix, not of the full space.
  cfg.max_schedules = full.schedules_to_first_failure;
  const auto rep = CheckSession(cfg).explore(target);
  ASSERT_TRUE(rep.truncated);
  EXPECT_EQ(rep.explored, full.schedules_to_first_failure);
  ASSERT_GT(rep.failing, 0u);
  ASSERT_EQ(rep.failing_schedules.size(), rep.failing);
  EXPECT_EQ(to_string(rep.first_failing),
            to_string(rep.failing_schedules.front()));
  for (const auto& f : rep.failing_schedules) {
    EXPECT_FALSE(lex_less(f, rep.first_failing));
  }
}

TEST(CheckSession, MaxSchedulesTruncates) {
  const LitmusTarget target(model::litmus::fig5_mp_annotated(),
                            rt::Target::kNoCC);
  ExploreConfig cfg;
  cfg.preemption_bound = 2;
  cfg.horizon = 10;
  cfg.prune_delay = false;
  cfg.max_schedules = 7;
  const auto rep = CheckSession(cfg).explore(target);
  EXPECT_TRUE(rep.truncated);
  EXPECT_EQ(rep.explored, 7u);
}

TEST(CheckSession, ReplayReportsUnappliedOverrides) {
  // A stale decision string (step beyond the run, or wrong program) must
  // not masquerade as a verdict about the requested schedule.
  const LitmusTarget target(model::litmus::fig5_mp_annotated(),
                            rt::Target::kNoCC);
  ExploreConfig cfg;
  cfg.horizon = 16;
  const CheckSession session(cfg);
  bool applied = false;
  const auto out = session.replay(target, {}, &applied);
  EXPECT_TRUE(out.ok);
  EXPECT_TRUE(applied);
  session.replay(target, {{99'999'999, 1}}, &applied);
  EXPECT_FALSE(applied);
}

// -- Model checking the back-ends across interleavings ----------------------

class BackendSweep : public ::testing::TestWithParam<rt::Target> {};

TEST_P(BackendSweep, EveryExploredScheduleIsModelValid) {
  ExploreConfig cfg;
  cfg.preemption_bound = 1;
  cfg.horizon = 10;
  const CheckSession session(cfg);
  for (const auto& test : annotatable_tests()) {
    const LitmusTarget target(test, GetParam());
    const auto rep = session.explore(target);
    EXPECT_EQ(rep.failing, 0u)
        << test.name << " on " << rt::to_string(GetParam()) << ": schedule \""
        << to_string(rep.first_failing)
        << "\": " << rep.first_failing_message;
    EXPECT_GE(rep.explored, 1u);
  }
}

TEST_P(BackendSweep, ExplorationReachesDistinctTraces) {
  // fig4_exclusive races a reader and a writer for one lock: both orders
  // are reachable within these bounds and observably different (the reader
  // sees 0 or 42), so the happens-before quotient must count >= 2 classes.
  const LitmusTarget target(model::litmus::fig4_exclusive(), GetParam());
  ExploreConfig cfg;
  cfg.preemption_bound = 1;
  cfg.horizon = 12;
  cfg.prune_delay = false;
  const auto rep = CheckSession(cfg).explore(target);
  EXPECT_GT(rep.distinct_traces, 1u)
      << "preemptions should produce observably different interleavings";
}

INSTANTIATE_TEST_SUITE_P(SimTargets, BackendSweep,
                         ::testing::ValuesIn(rt::sim_targets()),
                         [](const auto& info) {
                           return std::string(rt::to_string(info.param));
                         });

// -- Seeded-bug discovery and minimization ----------------------------------

class SeededBug : public ::testing::TestWithParam<rt::Target> {};

TEST_P(SeededBug, HiddenUnderDefaultScheduleFoundByExploration) {
  const LitmusTarget target = seeded_bug_check(GetParam());
  ExploreConfig cfg;
  cfg.preemption_bound = 2;
  cfg.horizon = 16;
  const CheckSession session(cfg);

  // The fault is schedule-dependent: the default min-time schedule gives the
  // reader the lock first and sees nothing wrong.
  EXPECT_TRUE(session.replay(target, {}).ok);

  const CheckReport rep = session.check(target);
  ASSERT_GT(rep.failing, 0u) << "session must find the seeded fault";
  EXPECT_FALSE(rep.ok);

  // The failing schedule minimizes and replays deterministically. A litmus
  // target is not shrinkable, so the minimized schedule is the repro one.
  ASSERT_FALSE(rep.minimized_schedule.empty());
  EXPECT_LE(rep.minimized_schedule.size(), rep.first_failing.size());
  EXPECT_EQ(to_string(rep.minimized_schedule), to_string(rep.repro_schedule));
  EXPECT_EQ(rep.minimized_target, nullptr);
  const auto again = session.replay(target, rep.minimized_schedule);
  EXPECT_FALSE(again.ok);
  EXPECT_EQ(again.message, rep.minimized_message);
}

INSTANTIATE_TEST_SUITE_P(FaultableTargets, SeededBug,
                         ::testing::Values(rt::Target::kSWCC,
                                           rt::Target::kDSM,
                                           rt::Target::kSPM),
                         [](const auto& info) {
                           return std::string(rt::to_string(info.param));
                         });

TEST(SeededBugCoverage, NoCCHasNoSeedableFault) {
  EXPECT_FALSE(has_seeded_fault(rt::Target::kNoCC));
  EXPECT_TRUE(has_seeded_fault(rt::Target::kSWCC));
  EXPECT_TRUE(has_seeded_fault(rt::Target::kDSM));
  EXPECT_TRUE(has_seeded_fault(rt::Target::kSPM));
}

}  // namespace
}  // namespace pmc::explore
