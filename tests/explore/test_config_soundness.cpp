// Config-driven machines through the model checker (DESIGN.md §12).
//
// Two guard rails for the machine-description tentpole:
//   1. Byte-equality — a LitmusTarget with the default (empty) description
//      must produce the same CheckReport text as one with no description
//      at all, and DPOR totals on the default shape must not move. The
//      contention model must be invisible until a config turns it on.
//   2. Soundness — with the mesh NoC model on, timing changes but the
//      memory model doesn't: clean litmus tests stay clean, DPOR-reduced
//      exploration finds the same outcome set as full exploration, and
//      footprint recording still prunes soundly.
#include <string>

#include <gtest/gtest.h>

#include "explore/check.h"
#include "explore/litmus_driver.h"
#include "model/litmus_library.h"
#include "sim/machine.h"

namespace pmc::explore {
namespace {

SessionOptions bounds(DporMode dpor = DporMode::kOff) {
  SessionOptions opts;
  opts.explore.preemption_bound = 2;
  opts.explore.horizon = 12;
  opts.explore.dpor = dpor;
  return opts;
}

sim::MachineConfig mesh_config() {
  // A scaled-machine description in miniature: narrow phits + shallow
  // buffers so contention actually prices in, on the litmus core counts.
  return sim::MachineConfig::from_string(R"(
[machine]
lm_bytes = 32k
sdram_bytes = 256k
[timing]
noc_per_word = 4
[noc]
model = mesh
buffer_words = 2
)");
}

TEST(ConfigSoundness, EmptyDescriptionKeepsReportsByteIdentical) {
  // from_string("") is the ml605 preset — but the LitmusTarget default
  // path also tweaks lm/sdram sizes, so spell those out. This pins the
  // contract that a config-driven target with default-equivalent contents
  // reports byte-identically to the hardcoded default.
  sim::MachineConfig dflt = sim::MachineConfig::from_string(
      "[machine]\nlm_bytes = 32k\nsdram_bytes = 256k\n");
  const CheckSession session(bounds());
  for (const rt::Target t : {rt::Target::kSWCC, rt::Target::kDSM}) {
    const LitmusTarget plain(model::litmus::fig4_exclusive(), t);
    const LitmusTarget described(model::litmus::fig4_exclusive(), t, {},
                                 dflt);
    EXPECT_EQ(session.check(described).to_text(),
              session.check(plain).to_text())
        << rt::to_string(t);
  }
}

TEST(ConfigSoundness, DporTotalsUnchangedOnDefaultShape) {
  // The DPOR-totals guard: footprint recording feeds the pruning logic,
  // so a footprint perturbation from the NoC/port changes would show up
  // here as moved explored/pruned counts on the *default* machine.
  const LitmusTarget target(model::litmus::fig4_exclusive(),
                            rt::Target::kSWCC);
  const auto full = CheckSession(bounds()).explore(target);
  const auto fp = CheckSession(bounds(DporMode::kFootprint)).explore(target);
  const auto ss = CheckSession(bounds(DporMode::kSleepSet)).explore(target);
  // Pinned totals from the pre-contention-model tree (the seed baseline).
  EXPECT_EQ(full.explored, 79u);
  EXPECT_EQ(full.distinct_traces, 2u);
  EXPECT_EQ(full.failing, 0u);
  EXPECT_EQ(fp.explored, 6u);
  EXPECT_EQ(fp.dpor_pruned, 37u);
  EXPECT_EQ(ss.explored, 6u);
  EXPECT_EQ(ss.dpor_pruned, 37u);
  EXPECT_EQ(fp.distinct_traces, full.distinct_traces);
  EXPECT_EQ(ss.distinct_traces, full.distinct_traces);
}

TEST(ConfigSoundness, MeshModelKeepsCleanTestsClean) {
  // Contention delays packets; it must never un-order a channel or lose a
  // write. Every annotatable litmus test stays failure-free under the
  // mesh model across the interleaving sweep.
  const CheckSession session(bounds());
  for (const auto& test : annotatable_tests()) {
    const LitmusTarget target(test, rt::Target::kSWCC, {}, mesh_config());
    const auto rep = session.check(target);
    EXPECT_TRUE(rep.ok) << test.name << ": " << rep.to_text();
  }
}

TEST(ConfigSoundness, MeshModelDporMatchesFullExploration) {
  // Footprint soundness under contention timing: the reduced tree must
  // reach exactly the distinct-trace set of the full tree.
  const LitmusTarget target(model::litmus::fig4_exclusive(),
                            rt::Target::kDSM, {}, mesh_config());
  const auto full = CheckSession(bounds()).explore(target);
  const auto fp = CheckSession(bounds(DporMode::kFootprint)).explore(target);
  const auto ss = CheckSession(bounds(DporMode::kSleepSet)).explore(target);
  EXPECT_EQ(full.failing, 0u);
  EXPECT_EQ(fp.failing, 0u);
  EXPECT_EQ(ss.failing, 0u);
  EXPECT_EQ(fp.distinct_traces, full.distinct_traces);
  EXPECT_EQ(ss.distinct_traces, full.distinct_traces);
  // dpor_pruned counts bypassed candidates, each of which elides a whole
  // subtree — so the reduced tree is strictly smaller, not sum-equal.
  EXPECT_LT(fp.explored, full.explored);
  EXPECT_LT(ss.explored, full.explored);
  EXPECT_GT(fp.dpor_pruned, 0u);
  EXPECT_GT(ss.dpor_pruned, 0u);
}

TEST(ConfigSoundness, DescribedMachineChangesTimingNotResults) {
  // Same litmus target, default vs mesh-contended machine: the outcome
  // verdict (ok, failing count) agrees even though cycle timing differs.
  const CheckSession session(bounds());
  const LitmusTarget plain(model::litmus::wrc_locked(), rt::Target::kSPM);
  const LitmusTarget described(model::litmus::wrc_locked(), rt::Target::kSPM,
                               {}, mesh_config());
  const auto a = session.check(plain);
  const auto b = session.check(described);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.failing, b.failing);
}

}  // namespace
}  // namespace pmc::explore
