// The trace byte-equality contract (DESIGN.md §11): replaying one
// (target, schedule) pair with a recorder attached produces byte-identical
// Chrome trace documents on every engine state and job count, a disarmed
// recorder is observationally invisible, and CheckReport::to_json carries
// the session telemetry as valid JSON.
#include <gtest/gtest.h>

#include <string>

#include "explore/check.h"
#include "explore/litmus_driver.h"
#include "model/litmus_library.h"
#include "obs/trace.h"
#include "../support/mini_json.h"

namespace pmc::explore {
namespace {

SessionOptions opts_for(EngineState state, int jobs) {
  SessionOptions o;
  o.explore.preemption_bound = 2;
  o.explore.horizon = 24;
  o.jobs = jobs;
  o.engine = jobs > 1 ? Engine::kParallel : Engine::kSequential;
  o.engine_state = state;
  return o;
}

TEST(TraceDeterminism, ByteIdenticalAcrossEngineStatesAndJobs) {
  const LitmusTarget target(model::litmus::fig4_exclusive(),
                            rt::Target::kSWCC);
  // The seeded-bug repro schedule: both overrides bind (writer dispatched
  // first), so this replays a genuinely reordered execution.
  const DecisionString ds = parse_decision_string("0:1,1:1");

  std::string ref_doc;
  uint64_t ref_hash = 0;
  for (const EngineState state :
       {EngineState::kReplay, EngineState::kSnapshot}) {
    for (const int jobs : {1, 2, 8}) {
      const CheckSession session(opts_for(state, jobs));
      obs::TraceRecorder rec;
      bool applied = false;
      const RunOutcome out = session.replay_traced(target, ds, &rec, &applied);
      EXPECT_TRUE(out.ok) << out.message;
      EXPECT_TRUE(applied);
      ASSERT_FALSE(rec.empty());
      const std::string doc = obs::chrome_trace_json(rec);
      if (ref_doc.empty()) {
        ref_doc = doc;
        ref_hash = out.trace_hash;
        EXPECT_TRUE(test_support::json_valid(doc)) << doc;
      } else {
        EXPECT_EQ(doc, ref_doc)
            << to_string(state) << " jobs=" << jobs << " diverged";
        EXPECT_EQ(out.trace_hash, ref_hash);
      }
    }
  }
}

TEST(TraceDeterminism, DifferentSchedulesProduceDifferentTraces) {
  const LitmusTarget target(model::litmus::fig4_exclusive(),
                            rt::Target::kSWCC);
  const CheckSession session(opts_for(EngineState::kReplay, 1));
  obs::TraceRecorder default_rec, reordered_rec;
  ASSERT_TRUE(session.replay_traced(target, {}, &default_rec).ok);
  ASSERT_TRUE(session
                  .replay_traced(target, parse_decision_string("0:1,1:1"),
                                 &reordered_rec)
                  .ok);
  EXPECT_NE(obs::chrome_trace_json(default_rec),
            obs::chrome_trace_json(reordered_rec));
}

TEST(TraceDeterminism, AttachedRecorderDoesNotPerturbTheRun) {
  const LitmusTarget target(model::litmus::fig5_mp_annotated(),
                            rt::Target::kSWCC);
  const DecisionString ds = parse_decision_string("0:1");
  const CheckSession session(opts_for(EngineState::kReplay, 1));
  const RunOutcome plain = session.replay(target, ds);

  // Disarmed: the run must be bit-for-bit the never-attached one and the
  // recorder must stay empty (the "attached but off" zero-cost state).
  obs::TraceRecorder disarmed;
  disarmed.disarm();
  const RunOutcome off = session.replay_traced(target, ds, &disarmed);
  EXPECT_TRUE(disarmed.empty());
  EXPECT_EQ(off.ok, plain.ok);
  EXPECT_EQ(off.trace_hash, plain.trace_hash);
  EXPECT_EQ(off.message, plain.message);

  // Armed: tracing records events but never changes the verdict or the
  // behavior fingerprint — events carry simulated time only.
  obs::TraceRecorder armed;
  const RunOutcome on = session.replay_traced(target, ds, &armed);
  EXPECT_FALSE(armed.empty());
  EXPECT_EQ(on.ok, plain.ok);
  EXPECT_EQ(on.trace_hash, plain.trace_hash);
}

TEST(TraceDeterminism, NonStatefulTargetsRunUntraced) {
  const FnTarget target("opaque", [](ReplayPolicy&) {
    RunOutcome out;
    out.trace_hash = 7;
    return out;
  });
  const CheckSession session(opts_for(EngineState::kReplay, 1));
  obs::TraceRecorder rec;
  const RunOutcome out = session.replay_traced(target, {}, &rec);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.trace_hash, 7u);
  EXPECT_TRUE(rec.empty());  // no ProgramOptions to attach through
}

TEST(CheckReportJson, ParsesAndCarriesTelemetry) {
  const LitmusTarget target(model::litmus::fig4_exclusive(),
                            rt::Target::kSWCC);
  SessionOptions o = opts_for(EngineState::kReplay, 2);
  o.explore.sample_hb_curve = true;
  const CheckReport rep = CheckSession(o).check(target);
  EXPECT_TRUE(rep.ok) << rep.to_text();

  const std::string json = rep.to_json();
  EXPECT_TRUE(test_support::json_valid(json)) << json;
  EXPECT_NE(json.find("\"target\":\"fig4_exclusive@swcc\""),
            std::string::npos);
  EXPECT_NE(json.find("\"explored\":"), std::string::npos);
  EXPECT_NE(json.find("\"schedules_per_sec\":"), std::string::npos);
  EXPECT_NE(json.find("\"hb_curve\":["), std::string::npos);
  // The parallel engine reports one steal counter per worker.
  EXPECT_EQ(rep.telemetry.worker_steals.size(), 2u);
  EXPECT_FALSE(rep.telemetry.hb_curve.empty());
  EXPECT_GT(rep.telemetry.explore_seconds, 0);

  // The canonical text rendering excludes telemetry entirely: it is the
  // engine-invariant document, and wall-clock numbers would break that.
  EXPECT_EQ(rep.to_text().find("schedules_per_sec"), std::string::npos);
}

TEST(CheckReportJson, FailingReportCarriesSchedules) {
  const LitmusTarget target = seeded_bug_check(rt::Target::kSWCC);
  SessionOptions o = opts_for(EngineState::kReplay, 1);
  const CheckReport rep = CheckSession(o).check(target);
  ASSERT_GT(rep.failing, 0u);
  const std::string json = rep.to_json();
  EXPECT_TRUE(test_support::json_valid(json)) << json;
  EXPECT_NE(json.find("\"first_failing\":"), std::string::npos);
  EXPECT_NE(json.find("\"repro_schedule\":"), std::string::npos);
  EXPECT_NE(json.find("\"failing\":"), std::string::npos);
}

}  // namespace
}  // namespace pmc::explore
