// Happens-before dynamic partial-order reduction (DESIGN.md §8), driven
// through the CheckSession API, plus the trace-equivalence contract of
// `distinct_traces` (DESIGN.md §9).
//
// The acceptance properties of ISSUE 4 still hold through the session: with
// --dpor=sleepset the explored count on the annotatable litmus suite (k=2,
// H=24, all four back-ends) drops by >= 3x versus --dpor=off while the set
// of distinct minimized failing decision strings stays identical; the
// seeded fig4_exclusive fault is still found, minimized, and replayed on
// every faultable back-end; and all totals are bit-identical at any job
// count. ISSUE 5 adds: distinct_traces hashes the happens-before quotient,
// so commuting schedules stop counting as distinct behaviors.
#include <algorithm>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "explore/check.h"
#include "explore/diff_check.h"
#include "explore/litmus_driver.h"
#include "explore/program_gen.h"
#include "model/litmus_library.h"
#include "sim/machine.h"

namespace pmc::explore {
namespace {

TEST(DporMode, ParsesAndPrints) {
  EXPECT_STREQ(to_string(DporMode::kOff), "off");
  EXPECT_STREQ(to_string(DporMode::kFootprint), "footprint");
  EXPECT_STREQ(to_string(DporMode::kSleepSet), "sleepset");
  EXPECT_EQ(dpor_mode_from_string("off"), DporMode::kOff);
  EXPECT_EQ(dpor_mode_from_string("footprint"), DporMode::kFootprint);
  EXPECT_EQ(dpor_mode_from_string("sleepset"), DporMode::kSleepSet);
  EXPECT_FALSE(dpor_mode_from_string("on").has_value());
}

// -- The headline reduction (acceptance criterion) ---------------------------

TEST(Dpor, ReducesTheLitmusSuiteAtLeastThreefold) {
  ExploreConfig cfg;
  cfg.preemption_bound = 2;
  cfg.horizon = 24;
  uint64_t explored_off = 0;
  uint64_t explored_dpor = 0;
  for (rt::Target t : rt::sim_targets()) {
    for (const auto& test : annotatable_tests()) {
      const LitmusTarget target(test, t);
      cfg.dpor = DporMode::kOff;
      const auto off = CheckSession(cfg).explore(target);
      cfg.dpor = DporMode::kSleepSet;
      const auto on = CheckSession(cfg).explore(target);
      // The clean suite must stay clean under reduction, and the reduced
      // run accounts for what it skipped.
      EXPECT_EQ(off.failing, 0u) << test.name << " on " << rt::to_string(t);
      EXPECT_EQ(on.failing, 0u) << test.name << " on " << rt::to_string(t);
      EXPECT_EQ(off.dpor_pruned, 0u);
      EXPECT_GT(on.dpor_pruned, 0u) << test.name << " on " << rt::to_string(t);
      EXPECT_LE(on.explored, off.explored);
      explored_off += off.explored;
      explored_dpor += on.explored;
    }
  }
  ASSERT_GT(explored_dpor, 0u);
  EXPECT_GE(explored_off, 3 * explored_dpor)
      << "DPOR must reduce the 6-test suite by at least 3x (got "
      << explored_off << " vs " << explored_dpor << ")";
}

TEST(Dpor, CollapsesFullyCommutingPrefixesToOneSchedule) {
  // fig5's writer only touches its lock word and the data object inside the
  // first 24 decisions, while the reader only polls the still-unwritten
  // flag: every in-horizon reordering commutes, so the reduced space is a
  // single schedule and every alternative is accounted as dpor-pruned.
  const LitmusTarget target(model::litmus::fig5_mp_annotated(),
                            rt::Target::kNoCC);
  ExploreConfig cfg;
  cfg.preemption_bound = 2;
  cfg.horizon = 24;
  cfg.dpor = DporMode::kSleepSet;
  const auto rep = CheckSession(cfg).explore(target);
  EXPECT_EQ(rep.explored, 1u);
  EXPECT_EQ(rep.dpor_pruned, 24u);  // one bypassed candidate per decision
  EXPECT_EQ(rep.failing, 0u);
}

// -- Trace-equivalence-aware distinct_traces (ISSUE 5 satellite) -------------

TEST(HbTraceHash, CommutingEventOrdersHashIdentically) {
  using E = model::TraceEvent;
  // Two procs touching different locations: the interleaving commutes, so
  // the happens-before quotient — and with it the hash — is the same.
  const std::vector<E> ab = {E::write(0, 0, 1), E::write(1, 1, 2),
                             E::read(0, 0, 1)};
  const std::vector<E> ba = {E::write(1, 1, 2), E::write(0, 0, 1),
                             E::read(0, 0, 1)};
  EXPECT_EQ(hb_trace_hash(ab), hb_trace_hash(ba));
  // Same-location same-value reads by different procs commute too.
  const std::vector<E> rr = {E::read(0, 0, 0), E::read(1, 0, 0)};
  const std::vector<E> rr2 = {E::read(1, 0, 0), E::read(0, 0, 0)};
  EXPECT_EQ(hb_trace_hash(rr), hb_trace_hash(rr2));
}

TEST(HbTraceHash, DependentEventOrdersHashDifferently) {
  using E = model::TraceEvent;
  // Write/write to one location: the conflict order is the behavior.
  const std::vector<E> ww = {E::write(0, 0, 1), E::write(1, 0, 2)};
  const std::vector<E> ww2 = {E::write(1, 0, 2), E::write(0, 0, 1)};
  EXPECT_NE(hb_trace_hash(ww), hb_trace_hash(ww2));
  // Read before vs after the write it races with.
  const std::vector<E> rw = {E::read(1, 0, 0), E::write(0, 0, 1)};
  const std::vector<E> wr = {E::write(0, 0, 1), E::read(1, 0, 0)};
  EXPECT_NE(hb_trace_hash(rw), hb_trace_hash(wr));
  // Acquire order on one location is a total chain.
  const std::vector<E> aa = {E::acquire(0, 0), E::release(0, 0),
                             E::acquire(1, 0), E::release(1, 0)};
  const std::vector<E> aa2 = {E::acquire(1, 0), E::release(1, 0),
                              E::acquire(0, 0), E::release(0, 0)};
  EXPECT_NE(hb_trace_hash(aa), hb_trace_hash(aa2));
}

TEST(HbTraceHash, PollIterationCountsCollapse) {
  using E = model::TraceEvent;
  // A poll loop spinning on an unchanged version re-issues identical stale
  // reads; their count is pure timing, not behavior.
  const std::vector<E> two = {E::read(1, 0, 0), E::read(1, 0, 0),
                              E::write(0, 0, 1), E::read(1, 0, 1)};
  const std::vector<E> five = {E::read(1, 0, 0), E::read(1, 0, 0),
                               E::read(1, 0, 0), E::read(1, 0, 0),
                               E::read(1, 0, 0), E::write(0, 0, 1),
                               E::read(1, 0, 1)};
  EXPECT_EQ(hb_trace_hash(two), hb_trace_hash(five));
  // But whether the poll ever observed the stale value is behavior.
  const std::vector<E> fresh = {E::write(0, 0, 1), E::read(1, 0, 1)};
  EXPECT_NE(hb_trace_hash(two), hb_trace_hash(fresh));
}

TEST(Dpor, DistinctTracesCountBehaviorsNotSchedules) {
  // The lock of the ROADMAP item: distinct_traces hashes the happens-before
  // quotient, so the hundreds of explored interleavings of the litmus suite
  // collapse to a handful of behavior classes, and the footprint and
  // sleep-set reductions — which prune exactly commuting reorderings —
  // agree on the class count for every (test, back-end). The unreduced
  // count can only be >= the reduced one: off-mode additionally reaches
  // classes whose distinguishing race is resolved by frontier-warp timing
  // beyond the reordered pair, which footprint commutation deliberately
  // does not model (DESIGN.md §8's timed-machine caveat — equality there
  // needs the ROADMAP "Timed-DPOR independence" item).
  ExploreConfig cfg;
  cfg.preemption_bound = 2;
  cfg.horizon = 24;
  uint64_t suite_off_explored = 0;
  uint64_t suite_off_traces = 0;
  for (rt::Target t : rt::sim_targets()) {
    for (const auto& test : annotatable_tests()) {
      const LitmusTarget target(test, t);
      cfg.dpor = DporMode::kOff;
      const auto off = CheckSession(cfg).explore(target);
      cfg.dpor = DporMode::kFootprint;
      const auto fp = CheckSession(cfg).explore(target);
      cfg.dpor = DporMode::kSleepSet;
      const auto ss = CheckSession(cfg).explore(target);
      EXPECT_EQ(fp.distinct_traces, ss.distinct_traces)
          << test.name << " on " << rt::to_string(t);
      EXPECT_GE(off.distinct_traces, ss.distinct_traces)
          << test.name << " on " << rt::to_string(t);
      suite_off_explored += off.explored;
      suite_off_traces += off.distinct_traces;
    }
  }
  // Behavior classes, not interleavings: the whole unreduced suite explores
  // two orders of magnitude more schedules than it has behaviors.
  ASSERT_GT(suite_off_traces, 0u);
  EXPECT_GE(suite_off_explored, 50 * suite_off_traces)
      << "the quotient hash must collapse commuting interleavings";
}

TEST(Dpor, DistinctTracesAgreeAcrossAllModesWhereRacesAreInHorizon) {
  // fig4_exclusive has no poll loops and its one race (two cores, one lock)
  // is decided inside the branchable window, so every behavior class is
  // reachable by an explicit branch and all three modes count the same
  // classes on every back-end — the exact-equality half of the satellite.
  ExploreConfig cfg;
  cfg.preemption_bound = 2;
  cfg.horizon = 24;
  for (rt::Target t : rt::sim_targets()) {
    const LitmusTarget target(model::litmus::fig4_exclusive(), t);
    cfg.dpor = DporMode::kOff;
    const auto off = CheckSession(cfg).explore(target);
    cfg.dpor = DporMode::kFootprint;
    const auto fp = CheckSession(cfg).explore(target);
    cfg.dpor = DporMode::kSleepSet;
    const auto ss = CheckSession(cfg).explore(target);
    EXPECT_EQ(off.distinct_traces, fp.distinct_traces) << rt::to_string(t);
    EXPECT_EQ(off.distinct_traces, ss.distinct_traces) << rt::to_string(t);
    EXPECT_GE(off.distinct_traces, 2u)
        << rt::to_string(t) << ": both lock orders must be reachable";
  }
}

// A raw 2-core timing race: core 0 posts ten stores to disjoint addresses
// and then X=1; core 1 computes for 50k cycles and then stores X=2. The
// final value of X depends on *when* segments run, not only on their
// conflict order: every non-default dispatch shifts the frontier warp and
// with it all later posted-write arrivals. This program is deliberately
// outside the annotation discipline (naked racy stores) — it probes the
// boundary of what footprint commutation can claim in a timed machine.
RunOutcome run_timing_race(ReplayPolicy& policy) {
  sim::MachineConfig mc = sim::MachineConfig::ml605(2);
  mc.cache_shared = false;  // uncached: posted-write visibility is timed
  sim::Machine m(mc);
  m.set_schedule_policy(&policy);
  const sim::Addr x = sim::kSdramBase + 0x400;
  m.run([&](sim::Core& core) {
    if (core.id() == 0) {
      for (uint32_t i = 0; i < 10; ++i) {
        core.store_u32(sim::kSdramBase + 0x40 * (i + 1), i,
                       sim::MemClass::kSharedData);
      }
      core.store_u32(x, 1, sim::MemClass::kSharedData);
    } else {
      core.compute(50'000);
      core.store_u32(x, 2, sim::MemClass::kSharedData);
    }
  });
  uint32_t v = 0;
  m.peek(x, &v, 4);
  RunOutcome out;
  out.trace_hash = v;  // the behavior under test IS the final value of X
  return out;
}

TEST(Dpor, PureDelaySegmentsAreNeverTreatedAsIndependent) {
  // At horizon 2 the branchable prefix is exactly {core 0's first store
  // slice, core 1's compute}: one side of each candidate/default pair is
  // pure delay, so DPOR must not prune anything — the reduced space equals
  // the full one. (An empty footprint commutes with everything by the
  // conflict relation, but its *displacement* is a timing effect only
  // prune_delay may trade away.)
  ExploreConfig cfg;
  cfg.preemption_bound = 1;
  cfg.horizon = 2;
  cfg.prune_delay = false;
  const FnTarget target("timing-race", run_timing_race);
  cfg.dpor = DporMode::kOff;
  const auto off = CheckSession(cfg).explore(target);
  EXPECT_EQ(off.explored, 3u);  // root + one alternative at each step
  for (const DporMode mode : {DporMode::kFootprint, DporMode::kSleepSet}) {
    cfg.dpor = mode;
    const auto on = CheckSession(cfg).explore(target);
    EXPECT_EQ(on.explored, off.explored) << "dpor=" << to_string(mode);
    EXPECT_EQ(on.dpor_pruned, 0u) << "dpor=" << to_string(mode);
    EXPECT_EQ(on.distinct_traces, off.distinct_traces)
        << "dpor=" << to_string(mode);
  }
}

TEST(Dpor, UndisciplinedTimingRacesAreOutsideTheDporContract) {
  // Documents the §8 limitation: reordering two disjoint-footprint stores
  // shifts how far the frontier warp pushes the bypassed core, which can
  // flip the cycle-level arbitration of a *naked* same-address write race.
  // DPOR preserves conflict order, not cycle arithmetic — such programs are
  // rejected by the annotation discipline the drivers enforce, and --dpor
  // defaults to off for anything outside it.
  EXPECT_EQ(ExploreConfig{}.dpor, DporMode::kOff);
  ExploreConfig cfg;
  cfg.preemption_bound = 1;
  cfg.horizon = 40;
  cfg.prune_delay = false;
  const FnTarget target("timing-race", run_timing_race);
  const auto off = CheckSession(cfg).explore(target);
  // The unreduced default reaches both final values of the race...
  EXPECT_EQ(off.distinct_traces, 2u);
  // ...while the reduced search collapses disjoint-store reorderings and
  // keeps only the conflict-order representative. If this ever starts
  // matching the unreduced count, the timed-commutation caveat in
  // DESIGN.md §8 can be retired.
  cfg.dpor = DporMode::kSleepSet;
  const auto on = CheckSession(cfg).explore(target);
  EXPECT_LT(on.explored, off.explored);
  EXPECT_LE(on.distinct_traces, off.distinct_traces);
}

// -- Identical failing sets (acceptance criterion) ---------------------------

std::set<std::string> minimized_failing_set(const CheckSession& session,
                                            const CheckTarget& target,
                                            const ExploreReport& rep) {
  std::set<std::string> out;
  for (const DecisionString& f : rep.failing_schedules) {
    out.insert(to_string(session.minimize(target, f)));
  }
  return out;
}

class DporSeeded : public ::testing::TestWithParam<rt::Target> {};

TEST_P(DporSeeded, FailingSetsAreIdenticalAcrossDporModes) {
  const LitmusTarget target = seeded_bug_check(GetParam());
  ExploreConfig cfg;
  cfg.preemption_bound = 2;
  cfg.horizon = 16;
  cfg.collect_failing = true;

  cfg.dpor = DporMode::kOff;
  const CheckSession s_off(cfg);
  const auto off = s_off.explore(target);
  ASSERT_GT(off.failing, 0u);
  cfg.dpor = DporMode::kFootprint;
  const CheckSession s_fp(cfg);
  const auto fp = s_fp.explore(target);
  cfg.dpor = DporMode::kSleepSet;
  const CheckSession s_ss(cfg);
  const auto ss = s_ss.explore(target);

  // Strictly fewer runs, same bugs: after minimization the failure sets of
  // all three modes collapse to the same strings.
  EXPECT_LT(ss.explored, off.explored);
  EXPECT_LE(ss.explored, fp.explored);
  ASSERT_GT(fp.failing, 0u);
  ASSERT_GT(ss.failing, 0u);
  const auto set_off = minimized_failing_set(s_off, target, off);
  const auto set_fp = minimized_failing_set(s_fp, target, fp);
  const auto set_ss = minimized_failing_set(s_ss, target, ss);
  EXPECT_EQ(set_off, set_fp);
  EXPECT_EQ(set_off, set_ss);

  // The canonical minimized failure still replays to the same violation.
  const auto minimal = s_ss.minimize(target, ss.first_failing);
  ASSERT_FALSE(minimal.empty());
  bool applied = false;
  const auto confirm = s_ss.replay(target, minimal, &applied);
  EXPECT_FALSE(confirm.ok);
  EXPECT_TRUE(applied);
}

INSTANTIATE_TEST_SUITE_P(FaultableTargets, DporSeeded,
                         ::testing::Values(rt::Target::kSWCC,
                                           rt::Target::kDSM,
                                           rt::Target::kSPM),
                         [](const auto& info) {
                           return std::string(rt::to_string(info.param));
                         });

// -- Job-count invariance of the reduced tree (acceptance criterion) ---------

TEST(Dpor, TotalsAreBitIdenticalAcrossJobCounts) {
  const LitmusTarget target = seeded_bug_check(rt::Target::kDSM);
  SessionOptions opts;
  opts.explore.preemption_bound = 2;
  opts.explore.horizon = 16;
  opts.explore.dpor = DporMode::kSleepSet;
  opts.engine = Engine::kSequential;
  const CheckReport s = CheckSession(opts).check(target);
  ASSERT_GT(s.failing, 0u);
  opts.engine = Engine::kParallel;
  for (int jobs : {1, 2, 8}) {
    opts.jobs = jobs;
    const CheckReport p = CheckSession(opts).check(target);
    EXPECT_EQ(p.to_text(), s.to_text()) << "jobs=" << jobs;
  }
}

// -- DiffCheck picks the reduction up for free -------------------------------

TEST(Dpor, DiffCheckAgreesWithTheUnreducedVerdict) {
  // Scan a few fuzz seeds with every seeded protocol fault injected; on the
  // first program whose unreduced exploration fails, the reduced one must
  // fail too, on the same back-end — DiffCheck picks DPOR up through
  // ExploreConfig without any code of its own.
  ExploreConfig cfg;
  cfg.preemption_bound = 1;
  cfg.horizon = 10;
  bool found_failure = false;
  for (uint64_t seed = 0; seed < 6 && !found_failure; ++seed) {
    const GenProgram prog = generate_program(shape_for_seed(seed));
    const DiffCheck dc(prog, all_seeded_faults());
    cfg.dpor = DporMode::kOff;
    const DiffReport off = dc.check(cfg, /*jobs=*/1);
    cfg.dpor = DporMode::kSleepSet;
    const DiffReport on = dc.check(cfg, /*jobs=*/2);
    EXPECT_LE(on.explored, off.explored) << "seed " << seed;
    ASSERT_EQ(off.ok, on.ok) << "seed " << seed;
    if (!off.ok) {
      ASSERT_TRUE(on.failure.has_value());
      EXPECT_EQ(off.failure->target, on.failure->target) << "seed " << seed;
      found_failure = true;
    }
  }
  EXPECT_TRUE(found_failure)
      << "no seed in [0, 6) exposed a seeded fault at these bounds";
}

}  // namespace
}  // namespace pmc::explore
