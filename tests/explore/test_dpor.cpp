// Happens-before dynamic partial-order reduction (DESIGN.md §8).
//
// The acceptance properties of ISSUE 4: with --dpor=sleepset the explored
// count on the annotatable litmus suite (k=2, H=24, all four back-ends)
// drops by >= 3x versus --dpor=off while the set of distinct minimized
// failing decision strings stays identical; the seeded fig4_exclusive fault
// is still found, minimized, and replayed on every faultable back-end; and
// all totals are bit-identical at any job count (the reduced space is still
// a fixed tree — the sleep set travels with each frontier entry).
#include <algorithm>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "explore/diff_check.h"
#include "explore/litmus_driver.h"
#include "explore/parallel_explorer.h"
#include "explore/program_gen.h"
#include "model/litmus_library.h"
#include "sim/machine.h"

namespace pmc::explore {
namespace {

TEST(DporMode, ParsesAndPrints) {
  EXPECT_STREQ(to_string(DporMode::kOff), "off");
  EXPECT_STREQ(to_string(DporMode::kFootprint), "footprint");
  EXPECT_STREQ(to_string(DporMode::kSleepSet), "sleepset");
  EXPECT_EQ(dpor_mode_from_string("off"), DporMode::kOff);
  EXPECT_EQ(dpor_mode_from_string("footprint"), DporMode::kFootprint);
  EXPECT_EQ(dpor_mode_from_string("sleepset"), DporMode::kSleepSet);
  EXPECT_FALSE(dpor_mode_from_string("on").has_value());
}

// -- The headline reduction (acceptance criterion) ---------------------------

TEST(Dpor, ReducesTheLitmusSuiteAtLeastThreefold) {
  ExploreConfig cfg;
  cfg.preemption_bound = 2;
  cfg.horizon = 24;
  uint64_t explored_off = 0;
  uint64_t explored_dpor = 0;
  for (rt::Target t : rt::sim_targets()) {
    for (const auto& test : annotatable_tests()) {
      const LitmusCheck check(test, t);
      Explorer ex(check.runner());
      cfg.dpor = DporMode::kOff;
      const auto off = ex.explore(cfg);
      cfg.dpor = DporMode::kSleepSet;
      const auto on = ex.explore(cfg);
      // The clean suite must stay clean under reduction, and the reduced
      // run accounts for what it skipped.
      EXPECT_EQ(off.failing, 0u) << test.name << " on " << rt::to_string(t);
      EXPECT_EQ(on.failing, 0u) << test.name << " on " << rt::to_string(t);
      EXPECT_EQ(off.dpor_pruned, 0u);
      EXPECT_GT(on.dpor_pruned, 0u) << test.name << " on " << rt::to_string(t);
      EXPECT_LE(on.explored, off.explored);
      explored_off += off.explored;
      explored_dpor += on.explored;
    }
  }
  ASSERT_GT(explored_dpor, 0u);
  EXPECT_GE(explored_off, 3 * explored_dpor)
      << "DPOR must reduce the 6-test suite by at least 3x (got "
      << explored_off << " vs " << explored_dpor << ")";
}

TEST(Dpor, CollapsesFullyCommutingPrefixesToOneSchedule) {
  // fig5's writer only touches its lock word and the data object inside the
  // first 24 decisions, while the reader only polls the still-unwritten
  // flag: every in-horizon reordering commutes, so the reduced space is a
  // single schedule and every alternative is accounted as dpor-pruned.
  const LitmusCheck check(model::litmus::fig5_mp_annotated(),
                          rt::Target::kNoCC);
  Explorer ex(check.runner());
  ExploreConfig cfg;
  cfg.preemption_bound = 2;
  cfg.horizon = 24;
  cfg.dpor = DporMode::kSleepSet;
  const auto rep = ex.explore(cfg);
  EXPECT_EQ(rep.explored, 1u);
  EXPECT_EQ(rep.dpor_pruned, 24u);  // one bypassed candidate per decision
  EXPECT_EQ(rep.failing, 0u);
}

// A raw 2-core timing race: core 0 posts ten stores to disjoint addresses
// and then X=1; core 1 computes for 50k cycles and then stores X=2. The
// final value of X depends on *when* segments run, not only on their
// conflict order: every non-default dispatch shifts the frontier warp and
// with it all later posted-write arrivals. This program is deliberately
// outside the annotation discipline (naked racy stores) — it probes the
// boundary of what footprint commutation can claim in a timed machine.
RunOutcome run_timing_race(ReplayPolicy& policy) {
  sim::MachineConfig mc = sim::MachineConfig::ml605(2);
  mc.cache_shared = false;  // uncached: posted-write visibility is timed
  sim::Machine m(mc);
  m.set_schedule_policy(&policy);
  const sim::Addr x = sim::kSdramBase + 0x400;
  m.run([&](sim::Core& core) {
    if (core.id() == 0) {
      for (uint32_t i = 0; i < 10; ++i) {
        core.store_u32(sim::kSdramBase + 0x40 * (i + 1), i,
                       sim::MemClass::kSharedData);
      }
      core.store_u32(x, 1, sim::MemClass::kSharedData);
    } else {
      core.compute(50'000);
      core.store_u32(x, 2, sim::MemClass::kSharedData);
    }
  });
  uint32_t v = 0;
  m.peek(x, &v, 4);
  RunOutcome out;
  out.trace_hash = v;  // the behavior under test IS the final value of X
  return out;
}

TEST(Dpor, PureDelaySegmentsAreNeverTreatedAsIndependent) {
  // At horizon 2 the branchable prefix is exactly {core 0's first store
  // slice, core 1's compute}: one side of each candidate/default pair is
  // pure delay, so DPOR must not prune anything — the reduced space equals
  // the full one. (An empty footprint commutes with everything by the
  // conflict relation, but its *displacement* is a timing effect only
  // prune_delay may trade away.)
  ExploreConfig cfg;
  cfg.preemption_bound = 1;
  cfg.horizon = 2;
  cfg.prune_delay = false;
  Explorer ex(run_timing_race);
  cfg.dpor = DporMode::kOff;
  const auto off = ex.explore(cfg);
  EXPECT_EQ(off.explored, 3u);  // root + one alternative at each step
  for (const DporMode mode : {DporMode::kFootprint, DporMode::kSleepSet}) {
    cfg.dpor = mode;
    const auto on = ex.explore(cfg);
    EXPECT_EQ(on.explored, off.explored) << "dpor=" << to_string(mode);
    EXPECT_EQ(on.dpor_pruned, 0u) << "dpor=" << to_string(mode);
    EXPECT_EQ(on.distinct_traces, off.distinct_traces)
        << "dpor=" << to_string(mode);
  }
}

TEST(Dpor, UndisciplinedTimingRacesAreOutsideTheDporContract) {
  // Documents the §8 limitation: reordering two disjoint-footprint stores
  // shifts how far the frontier warp pushes the bypassed core, which can
  // flip the cycle-level arbitration of a *naked* same-address write race.
  // DPOR preserves conflict order, not cycle arithmetic — such programs are
  // rejected by the annotation discipline the drivers enforce, and --dpor
  // defaults to off for anything outside it.
  EXPECT_EQ(ExploreConfig{}.dpor, DporMode::kOff);
  ExploreConfig cfg;
  cfg.preemption_bound = 1;
  cfg.horizon = 40;
  cfg.prune_delay = false;
  Explorer ex(run_timing_race);
  const auto off = ex.explore(cfg);
  // The unreduced default reaches both final values of the race...
  EXPECT_EQ(off.distinct_traces, 2u);
  // ...while the reduced search collapses disjoint-store reorderings and
  // keeps only the conflict-order representative. If this ever starts
  // matching the unreduced count, the timed-commutation caveat in
  // DESIGN.md §8 can be retired.
  cfg.dpor = DporMode::kSleepSet;
  const auto on = ex.explore(cfg);
  EXPECT_LT(on.explored, off.explored);
  EXPECT_LE(on.distinct_traces, off.distinct_traces);
}

// -- Identical failing sets (acceptance criterion) ---------------------------

std::set<std::string> minimized_failing_set(Explorer& ex,
                                            const ExploreReport& rep,
                                            uint64_t horizon) {
  std::set<std::string> out;
  for (const DecisionString& f : rep.failing_schedules) {
    out.insert(to_string(ex.minimize(f, horizon)));
  }
  return out;
}

class DporSeeded : public ::testing::TestWithParam<rt::Target> {};

TEST_P(DporSeeded, FailingSetsAreIdenticalAcrossDporModes) {
  LitmusCheck check = seeded_bug_check(GetParam());
  Explorer ex(check.runner());
  ExploreConfig cfg;
  cfg.preemption_bound = 2;
  cfg.horizon = 16;
  cfg.collect_failing = true;

  cfg.dpor = DporMode::kOff;
  const auto off = ex.explore(cfg);
  ASSERT_GT(off.failing, 0u);
  cfg.dpor = DporMode::kFootprint;
  const auto fp = ex.explore(cfg);
  cfg.dpor = DporMode::kSleepSet;
  const auto ss = ex.explore(cfg);

  // Strictly fewer runs, same bugs: after minimization the failure sets of
  // all three modes collapse to the same strings.
  EXPECT_LT(ss.explored, off.explored);
  EXPECT_LE(ss.explored, fp.explored);
  ASSERT_GT(fp.failing, 0u);
  ASSERT_GT(ss.failing, 0u);
  const auto set_off = minimized_failing_set(ex, off, cfg.horizon);
  const auto set_fp = minimized_failing_set(ex, fp, cfg.horizon);
  const auto set_ss = minimized_failing_set(ex, ss, cfg.horizon);
  EXPECT_EQ(set_off, set_fp);
  EXPECT_EQ(set_off, set_ss);

  // The canonical minimized failure still replays to the same violation.
  const auto minimal = ex.minimize(ss.first_failing, cfg.horizon);
  ASSERT_FALSE(minimal.empty());
  bool applied = false;
  const auto confirm = ex.replay(minimal, cfg.horizon, &applied);
  EXPECT_FALSE(confirm.ok);
  EXPECT_TRUE(applied);
}

INSTANTIATE_TEST_SUITE_P(FaultableTargets, DporSeeded,
                         ::testing::Values(rt::Target::kSWCC,
                                           rt::Target::kDSM,
                                           rt::Target::kSPM),
                         [](const auto& info) {
                           return std::string(rt::to_string(info.param));
                         });

// -- Job-count invariance of the reduced tree (acceptance criterion) ---------

TEST(Dpor, TotalsAreBitIdenticalAcrossJobCounts) {
  LitmusCheck check = seeded_bug_check(rt::Target::kDSM);
  ExploreConfig cfg;
  cfg.preemption_bound = 2;
  cfg.horizon = 16;
  cfg.dpor = DporMode::kSleepSet;
  Explorer seq(check.runner());
  const auto s = seq.explore(cfg);
  ASSERT_GT(s.failing, 0u);
  for (int jobs : {1, 2, 8}) {
    ParallelExplorer par(check.runner(), jobs);
    const auto p = par.explore(cfg);
    EXPECT_EQ(p.explored, s.explored) << "jobs=" << jobs;
    EXPECT_EQ(p.pruned, s.pruned) << "jobs=" << jobs;
    EXPECT_EQ(p.dpor_pruned, s.dpor_pruned) << "jobs=" << jobs;
    EXPECT_EQ(p.failing, s.failing) << "jobs=" << jobs;
    EXPECT_EQ(to_string(p.first_failing), to_string(s.first_failing))
        << "jobs=" << jobs;
    EXPECT_EQ(p.first_failing_message, s.first_failing_message)
        << "jobs=" << jobs;
  }
}

// -- DiffCheck picks the reduction up for free -------------------------------

TEST(Dpor, DiffCheckAgreesWithTheUnreducedVerdict) {
  // Scan a few fuzz seeds with every seeded protocol fault injected; on the
  // first program whose unreduced exploration fails, the reduced one must
  // fail too, on the same back-end — DiffCheck picks DPOR up through
  // ExploreConfig without any code of its own.
  ExploreConfig cfg;
  cfg.preemption_bound = 1;
  cfg.horizon = 10;
  bool found_failure = false;
  for (uint64_t seed = 0; seed < 6 && !found_failure; ++seed) {
    const GenProgram prog = generate_program(shape_for_seed(seed));
    const DiffCheck dc(prog, all_seeded_faults());
    cfg.dpor = DporMode::kOff;
    const DiffReport off = dc.check(cfg, /*jobs=*/1);
    cfg.dpor = DporMode::kSleepSet;
    const DiffReport on = dc.check(cfg, /*jobs=*/2);
    EXPECT_LE(on.explored, off.explored) << "seed " << seed;
    ASSERT_EQ(off.ok, on.ok) << "seed " << seed;
    if (!off.ok) {
      ASSERT_TRUE(on.failure.has_value());
      EXPECT_EQ(off.failure->target, on.failure->target) << "seed " << seed;
      found_failure = true;
    }
  }
  EXPECT_TRUE(found_failure)
      << "no seed in [0, 6) exposed a seeded fault at these bounds";
}

}  // namespace
}  // namespace pmc::explore
