#include "util/stats.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/hash.h"
#include "util/table.h"

namespace pmc::util {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Summary, Percentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.percentile(50), 50.5, 0.5);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(Summary, EmptyChecks) {
  Summary s;
  EXPECT_THROW(s.mean(), CheckFailure);
  EXPECT_THROW(s.percentile(50), CheckFailure);
}

TEST(Pct, Formatting) {
  EXPECT_EQ(pct(1, 2), "50.0%");
  EXPECT_EQ(pct(1, 3), "33.3%");
  EXPECT_EQ(pct(0, 0), "0.0%");
}

TEST(HumanCount, Scales) {
  EXPECT_EQ(human_count(999), "999");
  EXPECT_EQ(human_count(1500), "1.50k");
  EXPECT_EQ(human_count(2'500'000), "2.50M");
  EXPECT_EQ(human_count(3'000'000'000ULL), "3.00G");
}

TEST(Table, RendersAligned) {
  Table t;
  t.add_row({"app", "time"});
  t.add_row({"radiosity", "12"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| app       | time |"), std::string::npos);
  EXPECT_NE(out.find("| radiosity | 12   |"), std::string::npos);
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(Hash, Fnv1aStability) {
  const uint8_t data[] = {1, 2, 3};
  EXPECT_EQ(fnv1a(data, 3), fnv1a(data, 3));
  EXPECT_NE(fnv1a(data, 3), fnv1a(data, 2));
  EXPECT_NE(hash_combine(kFnvOffset, 1), hash_combine(kFnvOffset, 2));
}

TEST(Check, MacroThrowsWithMessage) {
  try {
    PMC_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "expected throw";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace pmc::util
