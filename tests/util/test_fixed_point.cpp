#include "util/fixed_point.h"

#include <gtest/gtest.h>

namespace pmc::util {
namespace {

TEST(Fx, IntRoundTrip) {
  for (int32_t v : {-100, -1, 0, 1, 7, 32000}) {
    EXPECT_EQ(Fx::from_int(v).to_int(), v);
  }
}

TEST(Fx, Arithmetic) {
  const Fx a = Fx::from_int(6);
  const Fx b = Fx::from_int(4);
  EXPECT_EQ((a + b).to_int(), 10);
  EXPECT_EQ((a - b).to_int(), 2);
  EXPECT_EQ((a * b).to_int(), 24);
  EXPECT_EQ((a / b).raw(), Fx::ratio(3, 2).raw());
}

TEST(Fx, RatioAndRounding) {
  EXPECT_EQ(Fx::ratio(1, 2).round(), 1);   // 0.5 rounds up
  EXPECT_EQ(Fx::ratio(1, 4).round(), 0);
  EXPECT_EQ(Fx::ratio(3, 4).round(), 1);
  EXPECT_EQ(Fx::ratio(-1, 2).to_int(), -1);  // floor semantics of >>
}

TEST(Fx, Comparisons) {
  EXPECT_TRUE(Fx::from_int(1) < Fx::from_int(2));
  EXPECT_TRUE(Fx::from_int(2) >= Fx::ratio(3, 2));
  EXPECT_TRUE(Fx::from_int(3) == Fx::ratio(6, 2));
}

TEST(Fx, MultiplicationPreservesFractions) {
  const Fx half = Fx::ratio(1, 2);
  EXPECT_EQ((half * Fx::from_int(10)).to_int(), 5);
  EXPECT_EQ((half * half).raw(), Fx::ratio(1, 4).raw());
}

TEST(Isqrt, ExactSquares) {
  for (uint64_t v : {0ULL, 1ULL, 4ULL, 9ULL, 144ULL, 1ULL << 40}) {
    const uint32_t r = isqrt(v);
    EXPECT_EQ(static_cast<uint64_t>(r) * r, v);
  }
}

TEST(Isqrt, FloorBehaviour) {
  EXPECT_EQ(isqrt(2), 1u);
  EXPECT_EQ(isqrt(8), 2u);
  EXPECT_EQ(isqrt(99), 9u);
  EXPECT_EQ(isqrt(10000 - 1), 99u);
}

}  // namespace
}  // namespace pmc::util
