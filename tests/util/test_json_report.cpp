// JsonReport must emit valid JSON by construction: keys and string values
// are escaped, numeric values stay bare literals (ISSUE 4 satellite — the
// old writer fprintf'ed keys raw, so a '"' or '\' produced unparseable
// BENCH_*.json files).
#include "bench/bench_common.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace pmc::bench {
namespace {

std::string write_and_read(const JsonReport& json, const std::string& path) {
  std::string flag = "--json=" + path;
  char prog[] = "test";
  char* argv[] = {prog, flag.data()};
  EXPECT_TRUE(json.maybe_write(2, argv));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  std::remove(path.c_str());
  return ss.str();
}

TEST(JsonReport, WritesPlainMetricsUnchanged) {
  JsonReport json("demo");
  json.add("explored", static_cast<uint64_t>(42));
  json.add("ratio", 0.5);
  json.add("mode", std::string("sleepset"));
  const std::string out =
      write_and_read(json, testing::TempDir() + "json_plain.json");
  EXPECT_EQ(out,
            "{\n  \"bench\": \"demo\",\n  \"explored\": 42,\n"
            "  \"ratio\": 0.5,\n  \"mode\": \"sleepset\"\n}\n");
}

TEST(JsonReport, EscapesQuotesBackslashesAndControlCharacters) {
  JsonReport json("de\"mo");
  json.add(std::string("key\"with\\quote"), static_cast<uint64_t>(1));
  json.add("value", std::string("a\"b\\c\nd\te"));
  const std::string out =
      write_and_read(json, testing::TempDir() + "json_escape.json");
  EXPECT_EQ(out,
            "{\n  \"bench\": \"de\\\"mo\",\n"
            "  \"key\\\"with\\\\quote\": 1,\n"
            "  \"value\": \"a\\\"b\\\\c\\nd\\te\"\n}\n");
  // No raw quote/backslash survives unescaped: every '"' in the output is
  // either structural or preceded by a backslash.
  for (size_t i = 1; i + 1 < out.size(); ++i) {
    if (out[i] == '\n') continue;
    if (out[i] == '\\') {
      EXPECT_NE(std::string("\"\\nrtu").find(out[i + 1]), std::string::npos)
          << "stray backslash at offset " << i;
      ++i;  // the escaped character is accounted for
    }
  }
}

TEST(JsonReport, NoJsonFlagWritesNothing) {
  JsonReport json("demo");
  json.add("k", static_cast<uint64_t>(1));
  char prog[] = "test";
  char* argv[] = {prog};
  EXPECT_TRUE(json.maybe_write(1, argv));
}

}  // namespace
}  // namespace pmc::bench
