#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace pmc::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(r.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng r(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng r(11);
  for (int i = 0; i < 500; ++i) {
    const int64_t v = r.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0, 10));
    EXPECT_TRUE(r.chance(10, 10));
  }
}

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const uint64_t first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(first, sm2.next());
  EXPECT_NE(first, sm.next());
}

}  // namespace
}  // namespace pmc::util
