// MetricsRegistry counters/gauges/histograms, exact cross-worker merging,
// and the deterministic key-ordered JSON export (DESIGN.md §11).
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>

#include "../support/mini_json.h"

namespace pmc::obs {
namespace {

TEST(Histogram, BucketsArePowersOfTwo) {
  Histogram h;
  h.observe(0);    // bucket 0: v < 1
  h.observe(0.5);  // bucket 0
  h.observe(1);    // bucket 1: [1, 2)
  h.observe(2);    // bucket 2: [2, 4)
  h.observe(3);    // bucket 2
  h.observe(4);    // bucket 3: [4, 8)
  EXPECT_EQ(h.buckets[0], 2u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 2u);
  EXPECT_EQ(h.buckets[3], 1u);
  EXPECT_EQ(h.count, 6u);
  EXPECT_DOUBLE_EQ(h.sum, 10.5);
  EXPECT_DOUBLE_EQ(h.min, 0);
  EXPECT_DOUBLE_EQ(h.max, 4);
  EXPECT_DOUBLE_EQ(h.mean(), 10.5 / 6);
}

TEST(Histogram, HugeValuesClampToTheLastBucket) {
  Histogram h;
  h.observe(1e30);
  EXPECT_EQ(h.buckets[Histogram::kBuckets - 1], 1u);
}

TEST(Histogram, QuantileReadsBucketUpperBoundsClamped) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0);  // empty: no observations
  for (int i = 0; i < 99; ++i) h.observe(1);
  h.observe(1000);
  // p50 lands in the [1, 2) bucket and reads its upper bound.
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 2);
  // The tail reaches the outlier's bucket [512, 1024), whose bound 1024
  // clamps to the observed max.
  EXPECT_DOUBLE_EQ(h.quantile(0.999), 1000);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000);
}

TEST(Histogram, QuantileExactForConstantSeries) {
  // The common contention case: every wait is zero. All mass in bucket 0,
  // whose bound 1 clamps to [0, 0] — the quantile is exactly 0.
  Histogram h;
  for (int i = 0; i < 10; ++i) h.observe(0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0);
}

TEST(Histogram, MergeIsBucketwiseAddition) {
  Histogram a, b;
  a.observe(1);
  a.observe(8);
  b.observe(0);
  b.observe(100);
  a.merge(b);
  EXPECT_EQ(a.count, 4u);
  EXPECT_DOUBLE_EQ(a.min, 0);
  EXPECT_DOUBLE_EQ(a.max, 100);
  EXPECT_EQ(a.buckets[0], 1u);
  EXPECT_EQ(a.buckets[1], 1u);
  EXPECT_EQ(a.buckets[4], 1u);  // 8 in [8, 16)
  EXPECT_EQ(a.buckets[7], 1u);  // 100 in [64, 128)

  // Merging into an empty histogram copies min/max instead of keeping the
  // zero-initialized defaults.
  Histogram empty;
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.min, 0);
  EXPECT_DOUBLE_EQ(empty.max, 100);
  EXPECT_EQ(empty.count, 4u);
}

TEST(MetricsRegistry, CountersAccumulate) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.counter("missing"), 0u);
  m.inc("explored");
  m.inc("explored", 9);
  EXPECT_EQ(m.counter("explored"), 10u);
  EXPECT_FALSE(m.empty());
}

TEST(MetricsRegistry, GaugesAreLastWriteWins) {
  MetricsRegistry m;
  EXPECT_DOUBLE_EQ(m.gauge("missing"), 0);
  m.set_gauge("rate", 1.5);
  m.set_gauge("rate", 2.5);
  EXPECT_DOUBLE_EQ(m.gauge("rate"), 2.5);
}

TEST(MetricsRegistry, HistogramsObserveByName) {
  MetricsRegistry m;
  EXPECT_EQ(m.histogram("missing"), nullptr);
  m.observe("depth", 3);
  m.observe("depth", 5);
  const Histogram* h = m.histogram("depth");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_DOUBLE_EQ(h->sum, 8);
}

TEST(MetricsRegistry, MergeAddsCountersOverwritesGaugesCombinesHistograms) {
  MetricsRegistry a, b;
  a.inc("explored", 5);
  a.set_gauge("rate", 1.0);
  a.observe("depth", 2);
  b.inc("explored", 7);
  b.inc("pruned", 3);
  b.set_gauge("rate", 9.0);
  b.observe("depth", 4);
  a.merge(b);
  EXPECT_EQ(a.counter("explored"), 12u);
  EXPECT_EQ(a.counter("pruned"), 3u);
  EXPECT_DOUBLE_EQ(a.gauge("rate"), 9.0);
  EXPECT_EQ(a.histogram("depth")->count, 2u);
}

TEST(MetricsRegistry, JsonExportIsValidKeyOrderedAndDeterministic) {
  MetricsRegistry m;
  m.inc("zeta", 1);
  m.inc("alpha", 2);
  m.set_gauge("speed", 1.25);
  m.observe("lat", 3);
  const std::string json = m.to_json();
  EXPECT_TRUE(test_support::json_valid(json)) << json;
  // std::map storage ⇒ key-sorted members, independent of insertion order.
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"speed\":1.25"), std::string::npos);

  MetricsRegistry same;
  same.set_gauge("speed", 1.25);
  same.observe("lat", 3);
  same.inc("alpha", 2);
  same.inc("zeta", 1);
  EXPECT_EQ(same.to_json(), json);
}

TEST(MetricsRegistry, EmptyRegistryExportsEmptySections) {
  const std::string json = MetricsRegistry().to_json();
  EXPECT_TRUE(test_support::json_valid(json)) << json;
  EXPECT_EQ(json, "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(MetricsRegistry, JsonEscapesKeysAndElidesTrailingEmptyBuckets) {
  MetricsRegistry m;
  m.inc("weird \"key\"\n", 1);
  m.observe("h", 2);  // bucket 2 is the last non-empty one
  const std::string json = m.to_json();
  EXPECT_TRUE(test_support::json_valid(json)) << json;
  EXPECT_NE(json.find("\\\"key\\\"\\n"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[0,0,1]"), std::string::npos);
}

}  // namespace
}  // namespace pmc::obs
