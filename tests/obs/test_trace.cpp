// TraceRecorder ring semantics, snapshot/restore, counter throttling, and
// the Chrome trace-event export (DESIGN.md §11).
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../support/mini_json.h"

namespace pmc::obs {
namespace {

TraceEvent ev(EventKind kind, int core, uint64_t t0, uint64_t t1,
              uint64_t addr = 0, uint16_t aux = 0, uint64_t arg = 0) {
  TraceEvent e;
  e.kind = kind;
  e.core = static_cast<int16_t>(core);
  e.aux = aux;
  e.len = 4;
  e.t0 = t0;
  e.t1 = t1;
  e.addr = addr;
  e.arg = arg;
  return e;
}

/// A small buffer exercising every export shape: run slices, nested memory
/// and sync slices, a NoC send (delivery slice + flow arrow), a counter
/// sample, and a core left running at the end of the buffer.
std::vector<TraceEvent> sample_events() {
  return {
      ev(EventKind::kDispatch, 0, 0, 0),
      ev(EventKind::kLoad, 0, 2, 6, 0x1000),
      ev(EventKind::kCacheMiss, 0, 2, 2, 0x1000),
      ev(EventKind::kStore, 0, 6, 8, 0x1004),
      ev(EventKind::kNocSend, 0, 8, 9, 0x2000, /*dst=*/1, /*arrival=*/14),
      ev(EventKind::kCounter, 0, 9, 9, 0, uint16_t(CounterId::kBusy), 7),
      ev(EventKind::kPark, 0, 10, 10, 0, /*done=*/1),
      ev(EventKind::kDispatch, 1, 12, 12),
      ev(EventKind::kLockAcquire, 1, 13, 20, 0, /*lock=*/3),
  };
}

TEST(EventNames, AreStableAndExhaustive) {
  // The names are part of the byte-equality contract; "?" would mean a
  // kind fell through the switch.
  for (int k = 0; k <= static_cast<int>(EventKind::kCounter); ++k) {
    EXPECT_STRNE(event_name(static_cast<EventKind>(k)), "?") << k;
  }
  for (int c = 0; c < kNumCounters; ++c) {
    EXPECT_STRNE(counter_name(static_cast<CounterId>(c)), "?") << c;
  }
  EXPECT_STREQ(event_name(EventKind::kDispatch), "dispatch");
  EXPECT_STREQ(event_name(EventKind::kCacheFill), "cache_fill");
  EXPECT_STREQ(counter_name(CounterId::kNocBytes), "noc_bytes");
}

TEST(TraceRecorder, StartsEmptyAndArmed) {
  TraceRecorder rec(8);
  EXPECT_TRUE(rec.armed());
  EXPECT_TRUE(rec.empty());
  EXPECT_EQ(rec.capacity(), 8u);
  EXPECT_EQ(rec.dropped(), 0u);
  rec.disarm();
  EXPECT_FALSE(rec.armed());
  rec.arm();
  EXPECT_TRUE(rec.armed());
}

TEST(TraceRecorder, ReturnsEventsOldestFirst) {
  TraceRecorder rec(8);
  for (uint64_t i = 0; i < 5; ++i) {
    rec.record(ev(EventKind::kCompute, 0, i, i + 1));
  }
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].t0, i);
  }
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(TraceRecorder, RingOverwritesOldestAndCountsDrops) {
  TraceRecorder rec(4);
  for (uint64_t i = 0; i < 7; ++i) {
    rec.record(ev(EventKind::kCompute, 0, i, i + 1));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 3u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  // The three oldest (t0 = 0, 1, 2) were overwritten.
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].t0, i + 3);
  }
}

TEST(TraceRecorder, ClearResetsEverythingButArming) {
  TraceRecorder rec(4);
  for (uint64_t i = 0; i < 6; ++i) {
    rec.record(ev(EventKind::kCompute, 0, i, i));
  }
  rec.disarm();
  rec.clear();
  EXPECT_TRUE(rec.empty());
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_FALSE(rec.armed());  // clear() drops data, not configuration
  EXPECT_TRUE(rec.counter_due(0, 0));  // sampling throttle reset too
}

TEST(TraceRecorder, CounterDueThrottlesPerCore) {
  TraceRecorder rec;
  rec.set_counter_period(100);
  EXPECT_TRUE(rec.counter_due(0, 10));    // first sample always fires
  EXPECT_FALSE(rec.counter_due(0, 109));  // within the period
  EXPECT_TRUE(rec.counter_due(0, 110));
  EXPECT_TRUE(rec.counter_due(3, 0));  // cores throttle independently
  EXPECT_FALSE(rec.counter_due(3, 99));
}

TEST(TraceRecorder, CounterPeriodZeroClampsToOne) {
  TraceRecorder rec;
  rec.set_counter_period(0);
  EXPECT_EQ(rec.counter_period(), 1u);
}

TEST(TraceRecorder, SnapshotRestoreRoundTripsByteIdentical) {
  TraceRecorder rec(16);
  rec.set_counter_period(64);
  for (const TraceEvent& e : sample_events()) rec.record(e);
  (void)rec.counter_due(0, 5);

  const TraceRecorder::Snapshot snap = rec.snapshot();
  const auto at_snapshot = rec.events();
  const std::string doc_at_snapshot = chrome_trace_json(rec);

  // Diverge: more events, a drop-inducing overflow, and re-arming state.
  for (uint64_t i = 0; i < 20; ++i) {
    rec.record(ev(EventKind::kIdle, 1, 100 + i, 101 + i));
  }
  rec.disarm();
  EXPECT_GT(rec.dropped(), 0u);

  rec.restore(snap);
  EXPECT_TRUE(rec.armed());
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.counter_period(), 64u);
  EXPECT_EQ(rec.events(), at_snapshot);
  // The export is a pure function of the events, so the documents match
  // byte for byte — the same contract Machine::snapshot/restore leans on.
  EXPECT_EQ(chrome_trace_json(rec), doc_at_snapshot);
  // The sampling throttle was restored: core 0 sampled at t=5, period 64.
  EXPECT_FALSE(rec.counter_due(0, 68));
  EXPECT_TRUE(rec.counter_due(0, 69));
}

TEST(TraceRecorder, RestoreAfterWrapKeepsCompactedOrder) {
  TraceRecorder rec(4);
  for (uint64_t i = 0; i < 6; ++i) {
    rec.record(ev(EventKind::kCompute, 0, i, i));
  }
  const auto snap = rec.snapshot();
  rec.record(ev(EventKind::kCompute, 0, 99, 99));
  rec.restore(snap);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].t0, i + 2);
  }
  // The restored ring keeps appending correctly.
  rec.record(ev(EventKind::kCompute, 0, 50, 50));
  EXPECT_EQ(rec.events().back().t0, 50u);
  EXPECT_EQ(rec.dropped(), snap.dropped + 1);
}

TEST(ChromeTrace, DocumentIsValidJsonWithAllTrackKinds) {
  const std::string doc = chrome_trace_json(sample_events(), /*dropped=*/0);
  EXPECT_TRUE(test_support::json_valid(doc)) << doc;
  // Track metadata for both cores.
  EXPECT_NE(doc.find("\"name\":\"core 0\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"core 1\""), std::string::npos);
  // Dispatch/park collapsed into a "run" slice; the nested slices survive.
  EXPECT_NE(doc.find("\"name\":\"run\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"load\""), std::string::npos);
  EXPECT_NE(doc.find("\"addr\":\"0x1000\""), std::string::npos);
  // Counter track sample.
  EXPECT_NE(doc.find("\"name\":\"core0/busy\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
  // NoC delivery slice plus a flow arrow pair ending at the arrival.
  EXPECT_NE(doc.find("\"name\":\"noc_recv\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"f\",\"id\":0,\"bp\":\"e\""), std::string::npos);
  // Core 1 parked never: it still gets a run slice to its last activity.
  EXPECT_NE(doc.find("\"name\":\"lock_acquire\""), std::string::npos);
}

TEST(ChromeTrace, EmptyBufferIsStillAValidDocument) {
  const std::string doc = chrome_trace_json({}, 0);
  EXPECT_TRUE(test_support::json_valid(doc)) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
}

TEST(ChromeTrace, SurfacesDroppedCount) {
  const std::string doc = chrome_trace_json(sample_events(), /*dropped=*/17);
  EXPECT_TRUE(test_support::json_valid(doc));
  EXPECT_NE(doc.find("\"dropped_events\":17"), std::string::npos);
}

TEST(ChromeTrace, DeterministicForIdenticalEvents) {
  const auto events = sample_events();
  EXPECT_EQ(chrome_trace_json(events, 2), chrome_trace_json(events, 2));
}

}  // namespace
}  // namespace pmc::obs
