// Barrier: no core exits before the last enters; repeated rounds work.
#include "sync/barrier.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace pmc::sync {
namespace {

using sim::Core;
using sim::Machine;
using sim::MachineConfig;

MachineConfig cfg(int cores) {
  MachineConfig c = MachineConfig::ml605(cores);
  c.lm_bytes = 8 * 1024;
  c.sdram_bytes = 128 * 1024;
  c.max_cycles = 200'000'000;
  return c;
}

TEST(Barrier, SeparatesPhases) {
  const int n = 8;
  Machine m(cfg(n));
  Barrier bar(m, sim::kSdramBase, /*lm_flag_offset=*/0);
  std::vector<uint64_t> enter(n), exit_(n);
  m.run([&](Core& c) {
    c.compute(static_cast<uint64_t>(c.id()) * 37 + 5);  // staggered arrival
    enter[c.id()] = c.now();
    bar.wait(c);
    exit_[c.id()] = c.now();
  });
  const uint64_t last_enter = *std::max_element(enter.begin(), enter.end());
  const uint64_t first_exit = *std::min_element(exit_.begin(), exit_.end());
  EXPECT_GE(first_exit, last_enter)
      << "a core left the barrier before the last one arrived";
  EXPECT_EQ(bar.rounds(), 1u);
}

TEST(Barrier, ManyRounds) {
  const int n = 6;
  const int rounds = 20;
  Machine m(cfg(n));
  Barrier bar(m, sim::kSdramBase, 0);
  std::vector<int> phase(n, 0);
  int errors = 0;
  m.run([&](Core& c) {
    for (int r = 0; r < rounds; ++r) {
      phase[c.id()] = r + 1;
      bar.wait(c);
      // After the barrier every core must have finished phase r+1.
      for (int o = 0; o < n; ++o) {
        if (phase[o] < r + 1) ++errors;
      }
      bar.wait(c);  // second barrier so nobody races ahead into r+2
    }
  });
  EXPECT_EQ(errors, 0);
  EXPECT_EQ(bar.rounds(), static_cast<uint64_t>(2 * rounds));
}

TEST(Barrier, SingleCoreDegenerate) {
  Machine m(cfg(1));
  Barrier bar(m, sim::kSdramBase, 0);
  m.run([&](Core& c) {
    bar.wait(c);
    bar.wait(c);
  });
  EXPECT_EQ(bar.rounds(), 2u);
}

TEST(Barrier, DeterministicTiming) {
  auto once = [] {
    Machine m(cfg(8));
    Barrier bar(m, sim::kSdramBase, 0);
    m.run([&](Core& c) {
      for (int r = 0; r < 5; ++r) {
        c.compute(static_cast<uint64_t>((c.id() * 13 + r * 7) % 50));
        bar.wait(c);
      }
    });
    return m.state_hash();
  };
  EXPECT_EQ(once(), once());
}

}  // namespace
}  // namespace pmc::sync
