// Mutual exclusion, progress, and the asymmetric cost properties of the two
// lock implementations.
#include "sync/locks.h"

#include <gtest/gtest.h>

#include <memory>

#include "util/check.h"

namespace pmc::sync {
namespace {

using sim::Addr;
using sim::Core;
using sim::Machine;
using sim::MachineConfig;
using sim::MemClass;

constexpr Addr kLockArea = sim::kSdramBase;
constexpr uint32_t kLockAreaBytes = 16 * 1024;
constexpr uint32_t kLmLockOff = 0;

MachineConfig cfg(int cores) {
  MachineConfig c = MachineConfig::ml605(cores);
  c.lm_bytes = 16 * 1024;
  c.sdram_bytes = 256 * 1024;
  c.max_cycles = 200'000'000;
  return c;
}

std::unique_ptr<LockManager> make(Machine& m, bool dist) {
  if (dist) {
    return std::make_unique<DistLockManager>(m, kLockArea, kLockAreaBytes,
                                             kLmLockOff, 8 * 1024);
  }
  return std::make_unique<SpinLockManager>(m, kLockArea, kLockAreaBytes);
}

class LockKind : public ::testing::TestWithParam<bool> {};

TEST_P(LockKind, MutualExclusionUnderContention) {
  Machine m(cfg(8));
  auto locks = make(m, GetParam());
  const int l = locks->create();
  int inside = -1;       // host-side overlap detector (single-runner safe)
  int violations = 0;
  int completed = 0;
  m.run([&](Core& c) {
    for (int i = 0; i < 25; ++i) {
      locks->acquire(c, l);
      if (inside != -1) ++violations;
      inside = c.id();
      c.compute(20 + static_cast<uint64_t>(c.id()) % 7);
      if (inside != c.id()) ++violations;
      inside = -1;
      locks->release(c, l);
      c.compute(10);
    }
    ++completed;
  });
  EXPECT_EQ(violations, 0);
  EXPECT_EQ(completed, 8);
}

TEST_P(LockKind, UncontendedAcquireIsCheap) {
  Machine m(cfg(2));
  auto locks = make(m, GetParam());
  const int l = locks->create();
  m.run([&](Core& c) {
    if (c.id() != 0) return;
    for (int i = 0; i < 100; ++i) {
      locks->acquire(c, l);
      locks->release(c, l);
    }
  });
  // Uncontended: bounded atomics per round (TAS once / swap + CAS).
  EXPECT_LE(m.stats(0).atomics, 2u * 100u);
}

TEST_P(LockKind, ManyLocksAreIndependent) {
  Machine m(cfg(4));
  auto locks = make(m, GetParam());
  std::vector<int> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(locks->create());
  m.run([&](Core& c) {
    // Each core uses its own lock: no interference, quick completion.
    for (int i = 0; i < 50; ++i) {
      locks->acquire(c, ids[c.id()]);
      c.compute(5);
      locks->release(c, ids[c.id()]);
    }
  });
  SUCCEED();
}

TEST_P(LockKind, PreviousHolderTracksTransfer) {
  Machine m(cfg(2));
  auto locks = make(m, GetParam());
  const int l = locks->create();
  std::vector<int> seen;
  const Addr turn = sim::kSdramBase + kLockAreaBytes + 64;
  m.run([&](Core& c) {
    if (c.id() == 0) {
      locks->acquire(c, l);
      seen.push_back(locks->previous_holder(l));  // never held: -1
      locks->release(c, l);
      c.store_u32(turn, 1, MemClass::kSync);
    } else {
      c.spin_until([&] { return c.load_u32(turn, MemClass::kSync) == 1; });
      locks->acquire(c, l);
      seen.push_back(locks->previous_holder(l));  // transferred from core 0
      locks->release(c, l);
    }
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], -1);
  EXPECT_EQ(seen[1], 0);
}

TEST_P(LockKind, ReleaseWithoutHoldIsChecked) {
  Machine m(cfg(2));
  auto locks = make(m, GetParam());
  const int l = locks->create();
  EXPECT_THROW(m.run([&](Core& c) {
                 if (c.id() == 1) locks->release(c, l);
               }),
               util::CheckFailure);
}

INSTANTIATE_TEST_SUITE_P(SpinAndDist, LockKind, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& inf) {
                           return inf.param ? "Distributed" : "Spin";
                         });

TEST(DistLock, ContendedPollingStaysLocal) {
  // Under contention the distributed lock polls only local memory: its
  // atomic-unit traffic stays at ~1 op per acquire/release while the spin
  // lock's grows with waiting time.
  auto run = [](bool dist) {
    Machine m(cfg(8));
    auto locks = make(m, dist);
    const int l = locks->create();
    m.run([&](Core& c) {
      for (int i = 0; i < 20; ++i) {
        locks->acquire(c, l);
        c.compute(200);  // long critical section: heavy contention
        locks->release(c, l);
      }
    });
    return m.stats_sum().atomics;
  };
  const uint64_t spin_atomics = run(false);
  const uint64_t dist_atomics = run(true);
  EXPECT_LT(dist_atomics, spin_atomics / 2)
      << "distributed lock must not hammer the atomic unit";
  // 8 cores × 20 rounds, ≤ swap+cas each.
  EXPECT_LE(dist_atomics, 8u * 20u * 2u);
}

TEST(DistLock, HandoffUsesNocNotSdram) {
  Machine m(cfg(4));
  DistLockManager locks(m, kLockArea, kLockAreaBytes, kLmLockOff, 8 * 1024);
  const int l = locks.create();
  m.run([&](Core& c) {
    for (int i = 0; i < 10; ++i) {
      locks.acquire(c, l);
      c.compute(50);
      locks.release(c, l);
    }
  });
  EXPECT_GT(locks.handoffs(), 0u);
  EXPECT_GT(m.stats_sum().remote_writes, locks.handoffs());
}

TEST(DistLock, LockAreaExhaustionIsChecked) {
  Machine m(cfg(2));
  DistLockManager locks(m, kLockArea, /*area_bytes=*/128, kLmLockOff, 1024);
  locks.create();
  locks.create();
  EXPECT_THROW(locks.create(), util::CheckFailure);
}

}  // namespace
}  // namespace pmc::sync
