// Exhaustive checks of the Table I cell predicate.
#include "model/table1.h"

#include <gtest/gtest.h>

namespace pmc::model {
namespace {

constexpr LocId kV = 0;
constexpr LocId kW = 1;

TEST(Table1, ReadRow) {
  EXPECT_EQ(table1_edge(OpKind::kRead, kV, OpKind::kRead, kV), EdgeKind::kLocal);
  EXPECT_EQ(table1_edge(OpKind::kRead, kV, OpKind::kWrite, kV), EdgeKind::kLocal);
  EXPECT_EQ(table1_edge(OpKind::kRead, kV, OpKind::kRelease, kV),
            EdgeKind::kLocal);
  EXPECT_EQ(table1_edge(OpKind::kRead, kV, OpKind::kAcquire, kV), std::nullopt);
  EXPECT_EQ(table1_edge(OpKind::kRead, kV, OpKind::kFence, kAnyLoc),
            EdgeKind::kLocal);
}

TEST(Table1, WriteRow) {
  EXPECT_EQ(table1_edge(OpKind::kWrite, kV, OpKind::kRead, kV), EdgeKind::kLocal);
  EXPECT_EQ(table1_edge(OpKind::kWrite, kV, OpKind::kWrite, kV),
            EdgeKind::kProgram);
  EXPECT_EQ(table1_edge(OpKind::kWrite, kV, OpKind::kRelease, kV),
            EdgeKind::kProgram);
  EXPECT_EQ(table1_edge(OpKind::kWrite, kV, OpKind::kAcquire, kV), std::nullopt);
  EXPECT_EQ(table1_edge(OpKind::kWrite, kV, OpKind::kFence, kAnyLoc),
            EdgeKind::kLocal);
}

TEST(Table1, AcquireRow) {
  EXPECT_EQ(table1_edge(OpKind::kAcquire, kV, OpKind::kRead, kV),
            EdgeKind::kLocal);
  EXPECT_EQ(table1_edge(OpKind::kAcquire, kV, OpKind::kWrite, kV),
            EdgeKind::kProgram);
  EXPECT_EQ(table1_edge(OpKind::kAcquire, kV, OpKind::kRelease, kV),
            EdgeKind::kProgram);
  EXPECT_EQ(table1_edge(OpKind::kAcquire, kV, OpKind::kAcquire, kV),
            std::nullopt);
  EXPECT_EQ(table1_edge(OpKind::kAcquire, kV, OpKind::kFence, kAnyLoc),
            EdgeKind::kFence);
}

TEST(Table1, ReleaseRow) {
  EXPECT_EQ(table1_edge(OpKind::kRelease, kV, OpKind::kRead, kV), std::nullopt);
  EXPECT_EQ(table1_edge(OpKind::kRelease, kV, OpKind::kWrite, kV), std::nullopt);
  EXPECT_EQ(table1_edge(OpKind::kRelease, kV, OpKind::kRelease, kV),
            std::nullopt);
  EXPECT_EQ(table1_edge(OpKind::kRelease, kV, OpKind::kAcquire, kV),
            EdgeKind::kSync);
  EXPECT_EQ(table1_edge(OpKind::kRelease, kV, OpKind::kFence, kAnyLoc),
            EdgeKind::kFence);
}

TEST(Table1, FenceRow) {
  EXPECT_EQ(table1_edge(OpKind::kFence, kAnyLoc, OpKind::kRead, kV),
            std::nullopt);
  EXPECT_EQ(table1_edge(OpKind::kFence, kAnyLoc, OpKind::kWrite, kV),
            EdgeKind::kFence);
  EXPECT_EQ(table1_edge(OpKind::kFence, kAnyLoc, OpKind::kRelease, kV),
            EdgeKind::kFence);
  EXPECT_EQ(table1_edge(OpKind::kFence, kAnyLoc, OpKind::kAcquire, kV),
            EdgeKind::kFence);
  EXPECT_EQ(table1_edge(OpKind::kFence, kAnyLoc, OpKind::kFence, kAnyLoc),
            std::nullopt);
}

TEST(Table1, DifferentLocationsNeverOrderExceptThroughFences) {
  for (OpKind a : {OpKind::kRead, OpKind::kWrite, OpKind::kAcquire,
                   OpKind::kRelease}) {
    for (OpKind b : {OpKind::kRead, OpKind::kWrite, OpKind::kAcquire,
                     OpKind::kRelease}) {
      EXPECT_EQ(table1_edge(a, kV, b, kW), std::nullopt)
          << to_string(a) << "→" << to_string(b);
    }
  }
  // Fences span locations in both directions.
  EXPECT_TRUE(table1_edge(OpKind::kWrite, kV, OpKind::kFence, kAnyLoc)
                  .has_value());
  EXPECT_TRUE(table1_edge(OpKind::kFence, kAnyLoc, OpKind::kWrite, kW)
                  .has_value());
}

}  // namespace
}  // namespace pmc::model
