// TraceValidator: the model as an oracle over recorded operation streams.
#include "model/trace.h"

#include <gtest/gtest.h>

namespace pmc::model {
namespace {

using E = TraceEvent;

// Locations: 0 = X, 1 = f.
std::vector<E> annotated_mp_prefix() {
  return {
      E::acquire(0, 0), E::write(0, 0, 42), E::fence(0), E::release(0, 0),
      E::acquire(0, 1), E::write(0, 1, 1),  E::release(0, 1),
      E::read(1, 1, 1), E::fence(1),        E::acquire(1, 0),
  };
}

TEST(TraceValidator, AcceptsCorrectMessagePassing) {
  TraceValidator v(2, 2, {0, 0});
  auto trace = annotated_mp_prefix();
  trace.push_back(E::read(1, 0, 42));
  trace.push_back(E::release(1, 0));
  v.on_events(trace);
  EXPECT_TRUE(v.ok()) << v.first_violation();
  EXPECT_EQ(v.num_events(), trace.size());
}

TEST(TraceValidator, FlagsStaleReadAfterAcquire) {
  // After acquiring X, the only legal value is 42; a back-end delivering the
  // stale 0 (e.g. a missing cache invalidation) is caught.
  TraceValidator v(2, 2, {0, 0});
  auto trace = annotated_mp_prefix();
  trace.push_back(E::read(1, 0, 0));
  v.on_events(trace);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.first_violation().find("no legal write"), std::string::npos);
}

TEST(TraceValidator, AllowsStaleReadWithoutAcquire) {
  // Without the acquire, PMC permits the stale value — the validator must
  // not be stricter than the model.
  TraceValidator v(2, 2, {0, 0});
  v.on_events({
      E::acquire(0, 0), E::write(0, 0, 42), E::release(0, 0),
      E::read(1, 0, 0),  // stale but legal: no synchronization chain
  });
  EXPECT_TRUE(v.ok()) << v.first_violation();
}

TEST(TraceValidator, FlagsNonMonotonicReads) {
  TraceValidator v(2, 1, {0});
  v.on_events({
      E::write(0, 0, 1),
      E::read(1, 0, 1),  // observes the new value
      E::read(1, 0, 0),  // ...then the old one: forbidden
  });
  ASSERT_FALSE(v.ok());
}

TEST(TraceValidator, FlagsWriteWriteRace) {
  TraceValidator v(2, 1, {0});
  v.on_events({E::write(0, 0, 1), E::write(1, 0, 2)});
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.first_violation().find("race"), std::string::npos);
}

TEST(TraceValidator, AcceptsLockedWriterChain) {
  TraceValidator v(3, 1, {0});
  std::vector<E> trace;
  for (ProcId p = 0; p < 3; ++p) {
    trace.push_back(E::acquire(p, 0));
    trace.push_back(E::write(p, 0, 10 + static_cast<uint64_t>(p)));
    trace.push_back(E::release(p, 0));
  }
  trace.push_back(E::acquire(0, 0));
  trace.push_back(E::read(0, 0, 12));
  trace.push_back(E::release(0, 0));
  v.on_events(trace);
  EXPECT_TRUE(v.ok()) << v.first_violation();
}

TEST(TraceValidator, FlagsLostUpdate) {
  // Reader inside the critical section must see the latest locked write;
  // seeing the first one is a protocol bug.
  TraceValidator v(2, 1, {0});
  v.on_events({
      E::acquire(0, 0), E::write(0, 0, 1), E::release(0, 0),
      E::acquire(1, 0), E::write(1, 0, 2), E::release(1, 0),
      E::acquire(0, 0), E::read(0, 0, 1),
  });
  ASSERT_FALSE(v.ok());
}

TEST(TraceValidator, SaturatesInsteadOfExploding) {
  TraceValidator::Options opts;
  opts.max_ops = 8;
  TraceValidator v(1, 1, {0}, opts);
  for (int i = 0; i < 50; ++i) {
    v.on_event(E::write(0, 0, static_cast<uint64_t>(i)));
  }
  EXPECT_TRUE(v.saturated());
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(v.num_events(), 50u);
}

TEST(TraceValidator, GreedySourceSelectionPrefersNewest) {
  // Two writes with the same value: committing to the newest keeps later,
  // newer reads legal.
  TraceValidator v(2, 1, {0});
  v.on_events({
      E::acquire(0, 0), E::write(0, 0, 7), E::release(0, 0),
      E::acquire(0, 0), E::write(0, 0, 7), E::release(0, 0),
      E::read(1, 0, 7),
      E::acquire(1, 0), E::read(1, 0, 7), E::release(1, 0),
  });
  EXPECT_TRUE(v.ok()) << v.first_violation();
}

}  // namespace
}  // namespace pmc::model
