// Litmus-test outcome checks: the paper's figures as executable claims.
#include "model/litmus.h"

#include <gtest/gtest.h>

#include "model/litmus_library.h"
#include "util/check.h"

namespace pmc::model {
namespace {

using litmus::fig1_mp_plain;
using litmus::fig4_exclusive;
using litmus::fig5_mp_annotated;
using litmus::fig5_mp_no_reader_fence;
using litmus::fig5_mp_no_writer_fence;

ExploreOptions program_order() { return {IssueMode::kProgramOrder, 3, 5'000'000}; }
// Window 4 so a hoisted critical section can also retire its release —
// otherwise the deadlocked path is pruned and the stale outcome hides.
ExploreOptions weak_issue() { return {IssueMode::kWeakIssue, 4, 5'000'000}; }

TEST(Litmus, Fig1PlainMessagePassingAllowsStaleRead) {
  const auto res = explore(fig1_mp_plain(), program_order());
  EXPECT_FALSE(res.truncated);
  // Both the fresh and the stale value are reachable — the motivating bug.
  EXPECT_TRUE(res.outcomes.count({42}));
  EXPECT_TRUE(res.outcomes.count({0}));
  EXPECT_EQ(res.outcomes.size(), 2u);
}

TEST(Litmus, Fig5AnnotatedMessagePassingIsExact) {
  for (const auto& opts : {program_order(), weak_issue()}) {
    const auto res = explore(fig5_mp_annotated(), opts);
    EXPECT_FALSE(res.truncated);
    EXPECT_EQ(res.outcomes, std::set<Outcome>{{42}})
        << "mode=" << static_cast<int>(opts.mode);
    EXPECT_FALSE(res.race_observed);
  }
}

TEST(Litmus, Fig5ReaderFenceIsEssentialUnderWeakIssue) {
  // In program order the missing fence is invisible...
  const auto in_order = explore(fig5_mp_no_reader_fence(), program_order());
  EXPECT_EQ(in_order.outcomes, std::set<Outcome>{{42}});
  // ...but a weak issue engine may hoist the acquire above the poll loop
  // (Table I r→A is blank) and the stale read appears.
  const auto weak = explore(fig5_mp_no_reader_fence(), weak_issue());
  EXPECT_TRUE(weak.outcomes.count({42}));
  EXPECT_TRUE(weak.outcomes.count({0}))
      << "hoisted acquire should expose the stale value";
}

TEST(Litmus, Fig5WriterFenceIsModelRedundant) {
  // X=42 ≺P rel X already holds, so removing the line-3 fence changes
  // nothing — an analysis result the model makes checkable.
  for (const auto& opts : {program_order(), weak_issue()}) {
    const auto with_fence = explore(fig5_mp_annotated(), opts);
    const auto without = explore(fig5_mp_no_writer_fence(), opts);
    EXPECT_EQ(with_fence.outcomes, without.outcomes);
  }
}

TEST(Litmus, Fig4ExclusiveAccessHidesIntermediateValue) {
  const auto res = explore(fig4_exclusive(), program_order());
  EXPECT_TRUE(res.outcomes.count({0}));
  EXPECT_TRUE(res.outcomes.count({2}));
  EXPECT_FALSE(res.outcomes.count({1}))
      << "the intermediate value must never escape the critical section";
  EXPECT_EQ(res.outcomes.size(), 2u);
}

TEST(Litmus, StoreBufferingUnsynchronizedAllowsEverything) {
  const auto res = explore(litmus::sb_plain(), program_order());
  EXPECT_EQ(res.outcomes.size(), 4u);
  EXPECT_TRUE(res.outcomes.count({0, 0}));
  EXPECT_TRUE(res.outcomes.count({1, 1}));
}

TEST(Litmus, StoreBufferingWithEntryExitPairsIsSequentiallyConsistent) {
  // §IV-E: with per-object acquire/release pairs and fences, PMC behaves
  // like PC, which simulates SC for data-race-free programs: (0,0) vanishes.
  for (const auto& opts : {program_order(), weak_issue()}) {
    const auto res = explore(litmus::sb_locked(), opts);
    EXPECT_FALSE(res.outcomes.count({0, 0}))
        << "mode=" << static_cast<int>(opts.mode);
    EXPECT_TRUE(res.outcomes.count({1, 0}));
    EXPECT_TRUE(res.outcomes.count({0, 1}));
    EXPECT_TRUE(res.outcomes.count({1, 1}));
    EXPECT_FALSE(res.race_observed);
  }
}

TEST(Litmus, ReadCoherenceForbidsGoingBackwards) {
  const auto res = explore(litmus::coherence_rr(), program_order());
  EXPECT_TRUE(res.outcomes.count({0, 0}));
  EXPECT_TRUE(res.outcomes.count({0, 1}));
  EXPECT_TRUE(res.outcomes.count({1, 1}));
  EXPECT_FALSE(res.outcomes.count({1, 0}))
      << "Definition 12 monotonicity: newer value cannot be followed by older";
}

TEST(Litmus, UnprotectedWriteRaceIsDetected) {
  const auto res = explore(litmus::racy_write_write(), program_order());
  EXPECT_TRUE(res.race_observed);
}

TEST(Litmus, LoadBufferingIsUnconstrainedWithoutSync) {
  // No cross-thread r→w edge exists in Table I, so even (1,1) — each load
  // observing the other thread's later store — has an interleaving-free
  // justification under slow reads... but with issue-order exploration the
  // loads can only see issued writes, so (1,1) needs weak issue.
  const auto in_order = explore(litmus::lb_plain(), program_order());
  EXPECT_TRUE(in_order.outcomes.count({0, 0}));
  EXPECT_TRUE(in_order.outcomes.count({0, 1}));
  EXPECT_TRUE(in_order.outcomes.count({1, 0}));
  EXPECT_FALSE(in_order.outcomes.count({1, 1}));
  const auto weak = explore(litmus::lb_plain(), weak_issue());
  EXPECT_TRUE(weak.outcomes.count({1, 1}))
      << "store may hoist above the unrelated load under weak issue";
}

TEST(Litmus, WriteToReadCausalityHoldsWithAnnotations) {
  // If P2 saw Y=1 (written by P1 after it read X), what P2 then reads from
  // X must be at least what P1 saw. Forbidden: r1=1 (P1 saw X=1), r2=1
  // (P2 saw Y=1), r3=0 (P2 missed X=1).
  for (const auto& opts : {program_order(), weak_issue()}) {
    const auto res = explore(litmus::wrc_locked(), opts);
    for (const auto& outcome : res.outcomes) {
      EXPECT_FALSE(outcome[0] == 1 && outcome[1] == 1 && outcome[2] == 0)
          << "causality violated";
    }
    EXPECT_TRUE(res.outcomes.count({1, 1, 1}));
    EXPECT_FALSE(res.race_observed);
  }
}

TEST(Litmus, OutcomeAllowedHelper) {
  EXPECT_TRUE(outcome_allowed(fig1_mp_plain(), {0}));
  EXPECT_FALSE(outcome_allowed(fig5_mp_annotated(), {0}));
}

TEST(Litmus, AllLibraryTestsExploreCleanly) {
  for (const auto& test : litmus::all_tests()) {
    const auto res = explore(test, program_order());
    EXPECT_FALSE(res.truncated) << test.name;
    EXPECT_FALSE(res.outcomes.empty()) << test.name;
  }
}

TEST(Litmus, MalformedReleaseIsRejected) {
  LitmusTest t;
  t.name = "bad_release";
  t.num_locs = 1;
  t.num_regs = 0;
  t.threads = {{{LitmusOp::release(0)}}};
  EXPECT_THROW(explore(t, program_order()), util::CheckFailure);
}

TEST(Litmus, LocationBoundsAreValidated) {
  LitmusTest t;
  t.name = "bad_loc";
  t.num_locs = 1;
  t.num_regs = 1;
  t.threads = {{{LitmusOp::load(3, 0)}}};
  EXPECT_THROW(explore(t, program_order()), util::CheckFailure);
}

}  // namespace
}  // namespace pmc::model
