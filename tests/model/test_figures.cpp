// Reconstruction of the dependency graphs printed in the paper (Figs. 2–5).
// Each test issues the figure's operations in the depicted interleaving and
// asserts the ordering relations the figure draws.
#include <gtest/gtest.h>

#include "model/execution.h"

namespace pmc::model {
namespace {

// Fig. 2: Process 1: X=1; X=2 — init ≺P X=1 ≺P X=2.
TEST(Figures, Fig2ProgramOrder) {
  Execution e(1, 1);
  const OpId init = e.init_op(0);
  const OpId w1 = e.write(0, 0, 1);
  const OpId w2 = e.write(0, 0, 2);
  EXPECT_TRUE(e.hb_global(init, w1));
  EXPECT_TRUE(e.hb_global(w1, w2));
  // The printed graph is transitively reduced; init→w2 must still hold.
  EXPECT_TRUE(e.hb_global(init, w2));
}

// Fig. 3: X=1; if(X==1) X=2 — the read is locally pinned between the writes
// and "can only return the value 1".
TEST(Figures, Fig3LocalOrderOfRead) {
  Execution e(1, 1);
  const OpId w1 = e.write(0, 0, 1);
  // Before issuing the read, the only legal source is X=1.
  const auto legal = e.legal_sources_now(0, 0);
  ASSERT_EQ(legal.size(), 1u);
  EXPECT_EQ(legal[0], w1);
  const OpId r = e.read(0, 0, 1, w1);
  const OpId w2 = e.write(0, 0, 2);
  EXPECT_TRUE(e.hb_view(0, w1, r));
  EXPECT_TRUE(e.hb_view(0, r, w2));
  EXPECT_TRUE(e.hb_global(w1, w2));
}

// Fig. 4: exclusive access, interleaving where process 2 wins the lock.
TEST(Figures, Fig4ExclusiveAccessDepictedInterleaving) {
  Execution e(2, 1, {0});
  // Process 2 (index 1 here): acq X; X=1; X=2; rel X.
  const OpId acq4 = e.acquire(1, 0);
  const OpId w5 = e.write(1, 0, 1);
  const OpId w6 = e.write(1, 0, 2);
  const OpId rel7 = e.release(1, 0);
  // Process 1 (index 0): acq X; r = X; rel X.
  const OpId acq1 = e.acquire(0, 0);
  // Figure edges.
  EXPECT_TRUE(e.hb_global(e.init_op(0), acq4));  // init ≺S acq (line 4)
  EXPECT_TRUE(e.hb_global(acq4, w5));            // ≺P
  EXPECT_TRUE(e.hb_global(w5, w6));              // ≺P
  EXPECT_TRUE(e.hb_global(w6, rel7));            // ≺P
  EXPECT_TRUE(e.hb_global(rel7, acq1));          // ≺S across processes
  // The read must return 2: intermediate value 1 is hidden.
  const auto legal = e.legal_sources_now(0, 0);
  ASSERT_EQ(legal.size(), 1u);
  EXPECT_EQ(e.op(legal[0]).value, 2u);
  const OpId r2 = e.read(0, 0, 2, legal[0]);
  const OpId rel3 = e.release(0, 0);
  EXPECT_TRUE(e.hb_view(0, acq1, r2));  // 1≺ℓ in the figure
  EXPECT_TRUE(e.hb_view(0, r2, rel3));  // 1≺ℓ
  EXPECT_TRUE(e.hb_global(acq1, rel3));  // ≺P keeps the lock chain global
}

// Fig. 5: the full message-passing example with fences.
TEST(Figures, Fig5CommunicationExample) {
  // Locations: 0 = X, 1 = f.
  Execution e(2, 2, {0, 0});
  // Process 1: acq X; X=42; fence; rel X; acq f; f=1; rel f.
  const OpId acq_x = e.acquire(0, 0);
  const OpId w42 = e.write(0, 0, 42);
  const OpId f3 = e.fence(0);
  const OpId rel_x = e.release(0, 0);
  const OpId acq_f = e.acquire(0, 1);
  const OpId w_f = e.write(0, 1, 1);
  const OpId rel_f = e.release(0, 1);
  // Process 2: poll f; fence; acq X; r = X; rel X.
  const OpId poll = e.read(1, 1, 1, w_f);
  const OpId f11 = e.fence(1);
  const OpId acq_x2 = e.acquire(1, 0);

  // Figure edges, process 1.
  EXPECT_TRUE(e.hb_global(acq_x, w42));   // ≺P
  EXPECT_TRUE(e.hb_view(0, w42, f3));     // 1≺ℓ (write→fence is local)
  EXPECT_TRUE(e.hb_global(f3, rel_x));    // ≺F
  EXPECT_TRUE(e.hb_global(acq_x, f3));    // ≺F
  EXPECT_TRUE(e.hb_global(w42, rel_x));   // ≺P — the load-bearing edge
  EXPECT_TRUE(e.hb_global(acq_f, w_f));   // ≺P
  EXPECT_TRUE(e.hb_global(w_f, rel_f));   // ≺P

  // Figure edges, process 2.
  EXPECT_TRUE(e.hb_view(1, poll, f11));     // 2≺ℓ
  EXPECT_TRUE(e.hb_global(f11, acq_x2));    // ≺F
  EXPECT_TRUE(e.hb_global(rel_x, acq_x2));  // ≺S across processes

  // The guaranteed outcome: the read of X can only return 42.
  const auto legal = e.legal_sources_now(1, 0);
  ASSERT_EQ(legal.size(), 1u);
  EXPECT_EQ(e.op(legal[0]).value, 42u);
  const OpId r14 = e.read(1, 0, 42, legal[0]);
  const OpId rel15 = e.release(1, 0);
  EXPECT_TRUE(e.hb_view(1, acq_x2, r14));
  EXPECT_TRUE(e.hb_view(1, r14, rel15));
  // Global chain from the write of 42 to process 2's acquire.
  EXPECT_TRUE(e.hb_global(w42, acq_x2));
}

// Fig. 5's remark: "there is no way for process 2 to make sure the value 42
// of X is read at line 14, without acquiring it". Same program but the
// reader skips the acquire: the stale ⊥/0 value stays legal.
TEST(Figures, Fig5WithoutAcquireStaleReadIsLegal) {
  Execution e(2, 2, {0, 0});
  e.acquire(0, 0);
  e.write(0, 0, 42);
  e.fence(0);
  e.release(0, 0);
  e.acquire(0, 1);
  const OpId w_f = e.write(0, 1, 1);
  e.release(0, 1);
  e.read(1, 1, 1, w_f);
  e.fence(1);
  // No acquire of X: both the initial value and 42 are legal.
  const auto legal = e.legal_sources_now(1, 0);
  ASSERT_EQ(legal.size(), 2u);
  EXPECT_EQ(e.op(legal[0]).value, 0u);
  EXPECT_EQ(e.op(legal[1]).value, 42u);
}

}  // namespace
}  // namespace pmc::model
