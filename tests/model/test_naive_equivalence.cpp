// Property test: the reduced edge insertion of Execution computes the same
// reachability relations as the literal Table I implementation
// (NaiveExecution) on randomized well-formed programs.
//
// The single documented divergence: Execution chains consecutive fences of a
// process (≺F) as a closure-preserving reduction, so pairs of same-process
// fences are excluded from the comparison (DESIGN.md §4).
#include <gtest/gtest.h>

#include "model/execution.h"
#include "model/naive.h"
#include "util/rng.h"

namespace pmc::model {
namespace {

struct ProgramMirror {
  Execution fast;
  NaiveExecution naive;
  std::vector<int> holder;  // lock holder per location, -1 = free

  ProgramMirror(int procs, int locs)
      : fast(procs, locs, std::vector<uint64_t>(locs, 0)),
        naive(procs, locs, std::vector<uint64_t>(locs, 0)),
        holder(locs, -1) {}
};

/// Issues `steps` random well-formed operations to both implementations.
void run_random_program(ProgramMirror& m, int procs, int locs, int steps,
                        uint64_t seed) {
  util::Rng rng(seed);
  uint64_t next_value = 1;
  for (int i = 0; i < steps; ++i) {
    const ProcId p = static_cast<ProcId>(rng.next_below(procs));
    const LocId v = static_cast<LocId>(rng.next_below(locs));
    switch (rng.next_below(6)) {
      case 0: {  // read (value is irrelevant for reachability)
        m.fast.read(p, v, 0, kNoOp);
        m.naive.read(p, v, 0);
        break;
      }
      case 1:
      case 2: {  // write
        m.fast.write(p, v, next_value);
        m.naive.write(p, v, next_value);
        ++next_value;
        break;
      }
      case 3: {  // acquire, only when free (mutual exclusion)
        if (m.holder[v] != -1) break;
        m.fast.acquire(p, v);
        m.naive.acquire(p, v);
        m.holder[v] = p;
        break;
      }
      case 4: {  // release, only by the holder
        if (m.holder[v] != p) break;
        m.fast.release(p, v);
        m.naive.release(p, v);
        m.holder[v] = -1;
        break;
      }
      case 5: {
        m.fast.fence(p);
        m.naive.fence(p);
        break;
      }
    }
  }
}

bool same_proc_fences(const Operation& a, const Operation& b) {
  return a.is(OpKind::kFence) && b.is(OpKind::kFence) && a.proc == b.proc;
}

class NaiveEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NaiveEquivalence, ReachabilityMatchesOnRandomPrograms) {
  const uint64_t seed = GetParam();
  const int procs = 2 + static_cast<int>(seed % 2);
  const int locs = 2 + static_cast<int>(seed % 3);
  ProgramMirror m(procs, locs);
  run_random_program(m, procs, locs, /*steps=*/36, seed * 7919 + 1);

  ASSERT_EQ(m.fast.num_ops(), m.naive.num_ops());
  const OpId n = static_cast<OpId>(m.fast.num_ops());
  for (OpId a = 0; a < n; ++a) {
    for (OpId b = a + 1; b < n; ++b) {
      if (same_proc_fences(m.fast.op(a), m.fast.op(b))) continue;
      ASSERT_EQ(m.fast.hb_global(a, b), m.naive.hb_global(a, b))
          << "global " << m.fast.op(a).describe() << " vs "
          << m.fast.op(b).describe() << " seed=" << seed;
      for (ProcId p = 0; p < procs; ++p) {
        ASSERT_EQ(m.fast.hb_view(p, a, b), m.naive.hb_view(p, a, b))
            << "view p" << p << " " << m.fast.op(a).describe() << " vs "
            << m.fast.op(b).describe() << " seed=" << seed;
      }
    }
  }
  // The reduction must produce no more edges than the literal rules.
  EXPECT_LE(m.fast.num_edges(), m.naive.num_edges() + n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NaiveEquivalence,
                         ::testing::Range<uint64_t>(0, 40));

TEST(NaiveExecution, MatchesHandComputedExample) {
  NaiveExecution e(2, 2, {0, 0});
  const OpId a = e.acquire(0, 0);
  const OpId w = e.write(0, 0, 1);
  const OpId r = e.release(0, 0);
  const OpId a2 = e.acquire(1, 0);
  EXPECT_TRUE(e.hb_global(a, w));
  EXPECT_TRUE(e.hb_global(w, r));
  EXPECT_TRUE(e.hb_global(r, a2));
  EXPECT_FALSE(e.hb_global(a2, a));
}

}  // namespace
}  // namespace pmc::model
