// Unit tests for the Execution graph engine: Definitions 1–12.
#include "model/execution.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pmc::model {
namespace {

TEST(Execution, InitializationCreatesInitOps) {
  // Definition 3: every location has one initial op that is write + release.
  Execution e(2, 3);
  EXPECT_EQ(e.num_ops(), 3u);
  for (LocId v = 0; v < 3; ++v) {
    const Operation& init = e.op(e.init_op(v));
    EXPECT_TRUE(init.is(OpKind::kWrite));
    EXPECT_TRUE(init.is(OpKind::kRelease));
    EXPECT_FALSE(init.is(OpKind::kRead));
    EXPECT_EQ(init.proc, kInitProc);
    EXPECT_EQ(init.value, kBottom);
    EXPECT_EQ(e.writes_to(v).size(), 1u);
  }
}

TEST(Execution, InitialValuesCanBeProvided) {
  Execution e(1, 2, {5, 7});
  EXPECT_EQ(e.op(e.init_op(0)).value, 5u);
  EXPECT_EQ(e.op(e.init_op(1)).value, 7u);
}

TEST(Execution, ReadsAlwaysHaveAPredecessor) {
  Execution e(1, 1);
  const OpId r = e.read(0, 0, kBottom);
  EXPECT_FALSE(e.in_edges(r).empty());
  EXPECT_EQ(e.in_edges(r).front().from, e.init_op(0));
}

TEST(Execution, ProgramOrderBetweenWrites) {
  // Fig. 2: two writes by one process to one location are ≺P ordered.
  Execution e(1, 1);
  const OpId w1 = e.write(0, 0, 1);
  const OpId w2 = e.write(0, 0, 2);
  EXPECT_TRUE(e.hb_global(w1, w2));
  EXPECT_TRUE(e.hb_global(e.init_op(0), w1));
  EXPECT_FALSE(e.hb_global(w2, w1));
}

TEST(Execution, LocalOrderOfReadsIsInvisibleGlobally) {
  // Fig. 3: w ≺ℓ r ≺ℓ w' — the read is ordered only in the executing
  // process's view.
  Execution e(2, 1);
  const OpId w1 = e.write(0, 0, 1);
  const OpId r = e.read(0, 0, 1, w1);
  const OpId w2 = e.write(0, 0, 2);
  EXPECT_TRUE(e.hb_view(0, w1, r));
  EXPECT_TRUE(e.hb_view(0, r, w2));
  EXPECT_FALSE(e.hb_global(w1, r));  // reads are never globally ordered
  EXPECT_FALSE(e.hb_global(r, w2));
  EXPECT_FALSE(e.hb_view(1, w1, r));  // other processes may disagree
  EXPECT_TRUE(e.hb_global(w1, w2));   // but ≺P stands for everyone
}

TEST(Execution, WritesOfDifferentLocationsAreUnordered) {
  Execution e(1, 2);
  const OpId wx = e.write(0, 0, 1);
  const OpId wy = e.write(0, 1, 1);
  EXPECT_FALSE(e.hb_global(wx, wy));
  EXPECT_FALSE(e.hb_view(0, wx, wy));
}

TEST(Execution, FenceOrdersWritesAcrossLocations) {
  // w(x) ≺ℓ F ≺F w(y): the x-write is before the y-write in the local view,
  // and the fence-to-write edge is global.
  Execution e(1, 2);
  const OpId wx = e.write(0, 0, 1);
  const OpId f = e.fence(0);
  const OpId wy = e.write(0, 1, 1);
  EXPECT_TRUE(e.hb_view(0, wx, wy));
  EXPECT_TRUE(e.hb_global(f, wy));
  // w→F is only ≺ℓ (Table I), so the chain is not globally visible.
  EXPECT_FALSE(e.hb_global(wx, wy));
}

TEST(Execution, ReleaseAcquireSynchronizesAcrossProcesses) {
  Execution e(2, 1);
  const OpId a0 = e.acquire(0, 0);
  const OpId w = e.write(0, 0, 42);
  const OpId r0 = e.release(0, 0);
  const OpId a1 = e.acquire(1, 0);
  EXPECT_TRUE(e.hb_global(a0, w));
  EXPECT_TRUE(e.hb_global(w, r0));
  EXPECT_TRUE(e.hb_global(r0, a1));
  EXPECT_TRUE(e.hb_global(w, a1));  // transitively
}

TEST(Execution, AcquireSyncsWithReleasesOfAnyProcess) {
  // The † footnote of Table I: ≺S is on (R, ∗, v, ∗).
  Execution e(3, 1);
  e.acquire(1, 0);
  const OpId rel1 = e.release(1, 0);
  const OpId a2 = e.acquire(2, 0);
  EXPECT_TRUE(e.hb_global(rel1, a2));
}

TEST(Execution, InitialOpActsAsRelease) {
  // Fig. 4 shows init ≺S acq for the first acquire.
  Execution e(1, 1);
  const OpId a = e.acquire(0, 0);
  EXPECT_TRUE(e.hb_global(e.init_op(0), a));
  bool sync_edge = false;
  for (const Edge& edge : e.in_edges(a)) {
    sync_edge |= edge.kind == EdgeKind::kSync;
  }
  EXPECT_TRUE(sync_edge);
}

TEST(Execution, ReadDoesNotOrderBeforeAcquire) {
  // Table I r→A is blank: this is why Fig. 5 needs the fence at line 11.
  Execution e(1, 2);
  const OpId r = e.read(0, 1, kBottom);
  const OpId a = e.acquire(0, 0);
  EXPECT_FALSE(e.hb_view(0, r, a));
  EXPECT_FALSE(e.hb_global(r, a));
}

TEST(Execution, FencePinsAcquireBehindRead) {
  Execution e(1, 2);
  const OpId r = e.read(0, 1, kBottom);
  const OpId f = e.fence(0);
  const OpId a = e.acquire(0, 0);
  EXPECT_TRUE(e.hb_view(0, r, f));
  EXPECT_TRUE(e.hb_global(f, a));
  EXPECT_TRUE(e.hb_view(0, r, a));
}

TEST(Execution, SuccessiveReadsAreLocallyOrdered) {
  Execution e(1, 1);
  const OpId r1 = e.read(0, 0, kBottom);
  const OpId r2 = e.read(0, 0, kBottom);
  EXPECT_TRUE(e.hb_view(0, r1, r2));
  EXPECT_FALSE(e.hb_global(r1, r2));
}

TEST(Execution, LastWritesSingleWriterChain) {
  Execution e(1, 1);
  e.write(0, 0, 1);
  const OpId w2 = e.write(0, 0, 2);
  const auto w = e.last_writes_now(0, 0);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0], w2);
}

TEST(Execution, LastWritesSeesThroughSynchronization) {
  Execution e(2, 1);
  e.acquire(0, 0);
  const OpId w = e.write(0, 0, 42);
  e.release(0, 0);
  e.acquire(1, 0);
  const auto lw = e.last_writes_now(1, 0);
  ASSERT_EQ(lw.size(), 1u);
  EXPECT_EQ(lw[0], w);
}

TEST(Execution, UnsynchronizedWriteIsNotInFrontierButIsLegal) {
  // Definition 12: the frontier stays at init, but the newer value may be
  // returned ("or any value that is written afterwards").
  Execution e(2, 1);
  const OpId w = e.write(0, 0, 42);
  const auto frontier = e.last_writes_now(1, 0);
  ASSERT_EQ(frontier.size(), 1u);
  EXPECT_EQ(frontier[0], e.init_op(0));
  const auto legal = e.legal_sources_now(1, 0);
  ASSERT_EQ(legal.size(), 2u);
  EXPECT_EQ(legal[0], e.init_op(0));
  EXPECT_EQ(legal[1], w);
}

TEST(Execution, ReadMonotonicityRestrictsSources) {
  // After reading the new value, the old one is no longer legal.
  Execution e(2, 1);
  const OpId w = e.write(0, 0, 42);
  e.read(1, 0, 42, w);
  const auto legal = e.legal_sources_now(1, 0);
  ASSERT_EQ(legal.size(), 1u);
  EXPECT_EQ(legal[0], w);
}

TEST(Execution, ReadMonotonicityViolationThrows) {
  Execution e(2, 1);
  const OpId w = e.write(0, 0, 42);
  e.read(1, 0, 42, w);
  EXPECT_THROW(e.read(1, 0, kBottom, e.init_op(0)), util::CheckFailure);
}

TEST(Execution, RacyReadHasMultipleLastWrites) {
  // A plain write by p plus a locked write by q both reach p's read after it
  // acquires, but are mutually unordered: |W_o| = 2 (Definition 11).
  Execution e(2, 1);
  const OpId w_plain = e.write(0, 0, 1);
  e.acquire(1, 0);
  const OpId w_locked = e.write(1, 0, 2);
  e.release(1, 0);
  e.acquire(0, 0);
  const OpId r = e.read(0, 0, 2, w_locked);
  const auto w = e.last_writes(r);
  EXPECT_EQ(w.size(), 2u);
  EXPECT_TRUE(e.is_racy_read(r));
  const auto racy = e.unordered_write_pairs(0);
  ASSERT_EQ(racy.size(), 1u);
  EXPECT_EQ(racy[0].first, w_plain);
  EXPECT_EQ(racy[0].second, w_locked);
}

TEST(Execution, LockedWritersAreTotallyOrdered) {
  Execution e(2, 1);
  for (ProcId p : {0, 1, 0, 1}) {
    e.acquire(p, 0);
    e.write(p, 0, static_cast<uint64_t>(p));
    e.release(p, 0);
  }
  EXPECT_TRUE(e.unordered_write_pairs(0).empty());
}

TEST(Execution, DescribeAndDotRender) {
  Execution e(1, 1, {0});
  e.acquire(0, 0);
  e.write(0, 0, 9);
  e.release(0, 0);
  const std::string dot = e.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("W v0=9"), std::string::npos);
  EXPECT_NE(dot.find("sync"), std::string::npos);
  EXPECT_EQ(e.op(1).describe(), "#1 p0 acq v0");
}

TEST(Execution, BoundsAreChecked) {
  Execution e(1, 1);
  EXPECT_THROW(e.op(99), util::CheckFailure);
  EXPECT_THROW(e.read(0, 5, 0), util::CheckFailure);
  EXPECT_THROW(e.write(2, 0, 0), util::CheckFailure);
}

}  // namespace
}  // namespace pmc::model
