// Cache state machine: hits, LRU eviction, dirty handling, maintenance ops.
#include "sim/cache.h"

#include <gtest/gtest.h>

#include <cstring>

#include "util/check.h"

namespace pmc::sim {
namespace {

CacheConfig small_cache() {
  CacheConfig c;
  c.size_bytes = 256;  // 4 sets × 2 ways × 32B
  c.line_bytes = 32;
  c.ways = 2;
  return c;
}

TEST(Cache, MissThenHit) {
  Cache c(small_cache());
  EXPECT_EQ(c.lookup(0x1000), nullptr);
  Cache::Victim v;
  uint8_t* line = c.install(0x1000, &v);
  EXPECT_FALSE(v.dirty);
  std::memset(line, 0xab, 32);
  uint8_t* again = c.lookup(0x1000);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again[5], 0xab);
  EXPECT_EQ(c.valid_lines(), 1u);
}

TEST(Cache, LruEvictionWithinSet) {
  Cache c(small_cache());
  Cache::Victim v;
  // Three lines mapping to the same set (stride = line_bytes × num_sets).
  const Addr stride = 32 * 4;
  c.install(0x0000, &v);
  c.install(0x0000 + stride, &v);
  c.lookup(0x0000);  // refresh line 0: line +stride becomes LRU
  c.install(0x0000 + 2 * stride, &v);
  EXPECT_NE(c.lookup(0x0000), nullptr);
  EXPECT_EQ(c.lookup(0x0000 + stride), nullptr);  // evicted
  EXPECT_NE(c.lookup(0x0000 + 2 * stride), nullptr);
}

TEST(Cache, DirtyVictimIsReturned) {
  Cache c(small_cache());
  Cache::Victim v;
  const Addr stride = 32 * 4;
  uint8_t* line = c.install(0x0000, &v);
  std::memset(line, 0x77, 32);
  c.mark_dirty(0x0000);
  c.install(stride, &v);
  EXPECT_FALSE(v.dirty);  // second way was free
  Cache::Victim v2;
  c.install(2 * stride, &v2);
  ASSERT_TRUE(v2.dirty);
  EXPECT_EQ(v2.addr, 0x0000u);
  ASSERT_EQ(v2.data.size(), 32u);
  EXPECT_EQ(v2.data[0], 0x77);
}

TEST(Cache, WbinvalReturnsDirtyData) {
  Cache c(small_cache());
  Cache::Victim v;
  uint8_t* line = c.install(0x2000, &v);
  std::memset(line, 0x11, 32);
  c.mark_dirty(0x2000);
  std::vector<uint8_t> out;
  EXPECT_TRUE(c.wbinval_line(0x2000, &out));
  ASSERT_EQ(out.size(), 32u);
  EXPECT_EQ(out[31], 0x11);
  EXPECT_EQ(c.lookup(0x2000), nullptr);
  EXPECT_FALSE(c.wbinval_line(0x2000, &out));  // already gone
}

TEST(Cache, WbinvalCleanLineReturnsNoData) {
  Cache c(small_cache());
  Cache::Victim v;
  c.install(0x2000, &v);
  std::vector<uint8_t> out{1, 2, 3};
  EXPECT_TRUE(c.wbinval_line(0x2000, &out));
  EXPECT_TRUE(out.empty());
}

TEST(Cache, InvalDiscardsDirtyData) {
  // The MicroBlaze semantics the paper calls out: invalidate without
  // writeback loses the store.
  Cache c(small_cache());
  Cache::Victim v;
  uint8_t* line = c.install(0x2000, &v);
  std::memset(line, 0x42, 32);
  c.mark_dirty(0x2000);
  EXPECT_TRUE(c.inval_line(0x2000));
  EXPECT_EQ(c.lookup(0x2000), nullptr);
  EXPECT_EQ(c.dirty_lines(), 0u);
}

TEST(Cache, LineBaseMasksOffsets) {
  Cache c(small_cache());
  EXPECT_EQ(c.line_base(0x1234), 0x1220u);
  EXPECT_EQ(c.line_base(0x1220), 0x1220u);
}

TEST(Cache, ConfigValidation) {
  CacheConfig bad = small_cache();
  bad.line_bytes = 24;  // not a power of two
  EXPECT_THROW(Cache c(bad), util::CheckFailure);
  bad = small_cache();
  bad.size_bytes = 100;  // not divisible
  EXPECT_THROW(Cache c(bad), util::CheckFailure);
}

TEST(Cache, DoubleInstallIsChecked) {
  Cache c(small_cache());
  Cache::Victim v;
  c.install(0x1000, &v);
  EXPECT_THROW(c.install(0x1000, &v), util::CheckFailure);
}

}  // namespace
}  // namespace pmc::sim
