// NoC: topology, latency composition, per-channel FIFO, port contention,
// and the mesh model's per-link arbitration + finite-buffer backpressure.
#include "sim/noc.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pmc::sim {
namespace {

TEST(Noc, MeshHops) {
  Noc n(8, /*mesh_width=*/4, TimingConfig{});
  EXPECT_EQ(n.hops(0, 0), 0u);
  EXPECT_EQ(n.hops(0, 3), 3u);   // same row
  EXPECT_EQ(n.hops(0, 4), 1u);   // next row
  EXPECT_EQ(n.hops(0, 7), 4u);   // corner to corner of 4×2
  EXPECT_EQ(n.hops(7, 0), 4u);   // symmetric
}

TEST(Noc, LatencyGrowsWithDistanceAndSize) {
  TimingConfig t;
  Noc n(16, 4, t);
  MemModule near_mod("a", 0, 64), far_mod("b", 0, 64), big_mod("c", 0, 64);
  const uint64_t near_arrival = n.deliver(1000, 0, 1, near_mod, 4);
  const uint64_t far_arrival = n.deliver(1000, 0, 15, far_mod, 4);
  const uint64_t big_arrival = n.deliver(1000, 0, 1, big_mod, 64);
  EXPECT_LT(near_arrival, far_arrival);
  EXPECT_LT(near_arrival, big_arrival);
}

TEST(Noc, ChannelIsFifo) {
  // A later, smaller packet on the same channel must not overtake an
  // earlier large one.
  TimingConfig t;
  Noc n(4, 2, t);
  MemModule dst("d", 0, 256);
  const uint64_t first = n.deliver(100, 0, 1, dst, 128);
  const uint64_t second = n.deliver(101, 0, 1, dst, 4);
  EXPECT_GT(second, first);
}

TEST(Noc, DifferentDestinationsCanReorder) {
  // Same source, different destinations: the small late packet may arrive
  // before the big early one — the Fig. 1 property.
  TimingConfig t;
  Noc n(4, 2, t);
  MemModule d1("d1", 0, 256), d2("d2", 0, 256);
  const uint64_t big = n.deliver(100, 0, 1, d1, 128);
  const uint64_t small = n.deliver(101, 0, 2, d2, 4);
  EXPECT_LT(small, big);
}

TEST(Noc, DestinationPortSerializesSenders) {
  TimingConfig t;
  Noc n(4, 2, t);
  MemModule dst("d", 0, 256);
  const uint64_t a = n.deliver(100, 0, 3, dst, 32);
  const uint64_t b = n.deliver(100, 1, 3, dst, 32);
  EXPECT_NE(a, b);  // the port accepts one packet at a time
  EXPECT_EQ(n.packets_sent(), 2u);
  EXPECT_EQ(n.bytes_sent(), 64u);
}

TEST(Noc, RaggedMeshRejected) {
  EXPECT_THROW(Noc(12, 8, TimingConfig{}), util::CheckFailure);
  EXPECT_THROW(Noc(7, 2, TimingConfig{}), util::CheckFailure);
}

// -- Mesh model: per-link arbitration ----------------------------------------

TEST(Noc, MeshUncontendedMatchesFlat) {
  // With no competing traffic the X-Y route prices exactly the flat
  // formula: base + per_hop·hops + serialization. The contention model
  // only ever *adds* stall cycles.
  TimingConfig t;
  Noc flat(16, 4, t, NocModel::kFlat);
  Noc mesh(16, 4, t, NocModel::kMesh);
  MemModule d1("d1", 0, 256), d2("d2", 0, 256);
  EXPECT_EQ(flat.deliver(100, 0, 15, d1, 64),
            mesh.deliver(100, 0, 15, d2, 64));
  EXPECT_EQ(mesh.link_stall_cycles(), 0u);
  EXPECT_EQ(mesh.stalled_packets(), 0u);
}

TEST(Noc, MeshSharedLinkStallsTheSecondHead) {
  // 2×2 mesh: 0→1 and 0→3 both leave on tile 0's +x link. A 64-byte
  // packet holds that link for its 16-word serialization, so a packet
  // injected in the same cycle stalls exactly that long; under the flat
  // model the small packet is oblivious.
  TimingConfig t;  // base 4, per_hop 2, per_word 1
  Noc mesh(4, 2, t, NocModel::kMesh);
  MemModule da("da", 0, 256), db("db", 0, 256);
  const uint64_t big = mesh.deliver(100, 0, 1, da, 64);
  EXPECT_EQ(big, 138u);  // 100+4 (base) +2 (hop) +16 (serial) +16 (port)
  Noc::Delivery dv;
  const uint64_t small = mesh.deliver(100, 0, 3, db, 4, &dv);
  EXPECT_EQ(dv.link_stall, 16u);  // waited out the big packet's tail
  EXPECT_EQ(small, 126u);
  EXPECT_EQ(mesh.link_stall_cycles(), 16u);
  EXPECT_EQ(mesh.stalled_packets(), 1u);

  Noc flat(4, 2, t, NocModel::kFlat);
  MemModule fa("fa", 0, 256), fb("fb", 0, 256);
  flat.deliver(100, 0, 1, fa, 64);
  EXPECT_EQ(flat.deliver(100, 0, 3, fb, 4), 110u);  // no coupling
  EXPECT_EQ(flat.link_stall_cycles(), 0u);
}

TEST(Noc, MeshLinkIsFifoNoOvertake) {
  // Two packets on the same directed link leave it in claim order even
  // when the second is much smaller — wormhole heads do not pass.
  TimingConfig t;
  Noc mesh(4, 2, t, NocModel::kMesh);
  MemModule da("da", 0, 256), db("db", 0, 256);
  const uint64_t big = mesh.deliver(100, 0, 1, da, 128);
  const uint64_t small = mesh.deliver(101, 0, 3, db, 4);
  EXPECT_GT(small, big - 32);  // held behind the 32-word tail on link 0→1
  Noc::Delivery dv;
  mesh.deliver(200, 0, 3, db, 4, &dv);
  EXPECT_EQ(dv.link_stall, 0u);  // links drained: no residual penalty
}

TEST(Noc, MeshBackpressureBacksIntoUpstreamLink) {
  // 2×3 mesh, route 0→4 = 0→2→4. A long packet holds link 2→4; a
  // follower from tile 0 stalls there longer than the hop buffer can
  // absorb, so its tail keeps link 0→2 busy and a third, otherwise
  // unrelated packet pays for it. With a deep buffer the third packet is
  // untouched — only the buffer depth differs between the two fabrics.
  TimingConfig t;
  Noc shallow(6, 2, t, NocModel::kMesh, /*buffer_words=*/4);
  Noc deep(6, 2, t, NocModel::kMesh, /*buffer_words=*/64);
  for (Noc* n : {&shallow, &deep}) {
    MemModule da("da", 0, 256), db("db", 0, 256), dc("dc", 0, 256);
    n->deliver(100, 2, 4, da, 64);  // holds link 2→4 until cycle 120
    n->deliver(104, 0, 4, db, 4);   // stalls at 2→4, tail backs into 0→2
    Noc::Delivery dv;
    n->deliver(110, 0, 2, dc, 4, &dv);
    if (n == &shallow) {
      EXPECT_EQ(dv.link_stall, 2u);  // 0→2 held busy by the backed-up tail
    } else {
      EXPECT_EQ(dv.link_stall, 0u);
    }
  }
}

TEST(Noc, MeshArbitrationIsDeterministic) {
  // Same construction + same call sequence ⇒ identical arrivals and
  // counters: ties break by call order, never by anything ambient.
  TimingConfig t;
  Noc a(16, 4, t, NocModel::kMesh, 2);
  Noc b(16, 4, t, NocModel::kMesh, 2);
  MemModule ma("ma", 0, 4096), mb("mb", 0, 4096);
  for (int src = 0; src < 8; ++src) {
    const int dst = 15 - src;
    EXPECT_EQ(a.deliver(100 + src, src, dst, ma, 32),
              b.deliver(100 + src, src, dst, mb, 32));
  }
  EXPECT_EQ(a.link_stall_cycles(), b.link_stall_cycles());
  EXPECT_EQ(a.stalled_packets(), b.stalled_packets());
}

// -- Snapshot sparsity -------------------------------------------------------

TEST(Noc, SnapshotRestoreCrossBranchMatchesFreshReplay) {
  // Restore must work from *any* later state: traffic on an abandoned
  // branch touches channels and links the snapshot never saw, and they
  // must read as cold afterwards. The oracle is a fresh NoC replaying
  // only prefix + branch B.
  TimingConfig t;
  Noc n(16, 4, t, NocModel::kMesh, 2);
  Noc oracle(16, 4, t, NocModel::kMesh, 2);
  MemModule mn("mn", 0, 4096), mo("mo", 0, 4096);
  // Shared prefix.
  n.deliver(10, 0, 5, mn, 64);
  oracle.deliver(10, 0, 5, mo, 64);
  const Noc::Snapshot snap = n.snapshot();
  const MemModule::Snapshot msnap = mn.snapshot();
  // Branch A (abandoned): different channels, links, and counters.
  n.deliver(20, 3, 12, mn, 128);
  n.deliver(20, 7, 8, mn, 8);
  n.restore(snap);
  mn.restore(msnap);  // deliver() reserves the port too — roll both back
  // Branch B, replayed on both.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(n.deliver(30 + i, i, 15 - i, mn, 16),
              oracle.deliver(30 + i, i, 15 - i, mo, 16));
  }
  EXPECT_EQ(n.packets_sent(), oracle.packets_sent());
  EXPECT_EQ(n.bytes_sent(), oracle.bytes_sent());
  EXPECT_EQ(n.link_stall_cycles(), oracle.link_stall_cycles());
  EXPECT_EQ(n.stalled_packets(), oracle.stalled_packets());
  EXPECT_EQ(n.link_stall_hist().count, oracle.link_stall_hist().count);
}

TEST(Noc, SnapshotIsSparseInTraffic) {
  // O(traffic), not O(tiles²): one packet on a 256-tile machine snapshots
  // one channel entry and the links along one route — not 65 536 entries.
  TimingConfig t;
  Noc n(256, 16, t, NocModel::kMesh);
  MemModule d("d", 0, 4096);
  n.deliver(100, 0, 255, d, 4);
  const Noc::Snapshot s = n.snapshot();
  EXPECT_EQ(s.channels.size(), 1u);
  EXPECT_EQ(s.links.size(), n.hops(0, 255));
}

}  // namespace
}  // namespace pmc::sim
