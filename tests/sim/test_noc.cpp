// NoC: topology, latency composition, per-channel FIFO, port contention.
#include "sim/noc.h"

#include <gtest/gtest.h>

namespace pmc::sim {
namespace {

TEST(Noc, MeshHops) {
  Noc n(8, /*mesh_width=*/4, TimingConfig{});
  EXPECT_EQ(n.hops(0, 0), 0u);
  EXPECT_EQ(n.hops(0, 3), 3u);   // same row
  EXPECT_EQ(n.hops(0, 4), 1u);   // next row
  EXPECT_EQ(n.hops(0, 7), 4u);   // corner to corner of 4×2
  EXPECT_EQ(n.hops(7, 0), 4u);   // symmetric
}

TEST(Noc, LatencyGrowsWithDistanceAndSize) {
  TimingConfig t;
  Noc n(16, 4, t);
  MemModule near_mod("a", 0, 64), far_mod("b", 0, 64), big_mod("c", 0, 64);
  const uint64_t near_arrival = n.deliver(1000, 0, 1, near_mod, 4);
  const uint64_t far_arrival = n.deliver(1000, 0, 15, far_mod, 4);
  const uint64_t big_arrival = n.deliver(1000, 0, 1, big_mod, 64);
  EXPECT_LT(near_arrival, far_arrival);
  EXPECT_LT(near_arrival, big_arrival);
}

TEST(Noc, ChannelIsFifo) {
  // A later, smaller packet on the same channel must not overtake an
  // earlier large one.
  TimingConfig t;
  Noc n(4, 2, t);
  MemModule dst("d", 0, 256);
  const uint64_t first = n.deliver(100, 0, 1, dst, 128);
  const uint64_t second = n.deliver(101, 0, 1, dst, 4);
  EXPECT_GT(second, first);
}

TEST(Noc, DifferentDestinationsCanReorder) {
  // Same source, different destinations: the small late packet may arrive
  // before the big early one — the Fig. 1 property.
  TimingConfig t;
  Noc n(4, 2, t);
  MemModule d1("d1", 0, 256), d2("d2", 0, 256);
  const uint64_t big = n.deliver(100, 0, 1, d1, 128);
  const uint64_t small = n.deliver(101, 0, 2, d2, 4);
  EXPECT_LT(small, big);
}

TEST(Noc, DestinationPortSerializesSenders) {
  TimingConfig t;
  Noc n(4, 2, t);
  MemModule dst("d", 0, 256);
  const uint64_t a = n.deliver(100, 0, 3, dst, 32);
  const uint64_t b = n.deliver(100, 1, 3, dst, 32);
  EXPECT_NE(a, b);  // the port accepts one packet at a time
  EXPECT_EQ(n.packets_sent(), 2u);
  EXPECT_EQ(n.bytes_sent(), 64u);
}

}  // namespace
}  // namespace pmc::sim
