// Machine/Core integration: routing, visibility, the Fig. 1 reordering,
// cache coherence effects, and whole-machine determinism.
#include "sim/machine.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pmc::sim {
namespace {

MachineConfig tiny(int cores) {
  MachineConfig c = MachineConfig::ml605(cores);
  c.lm_bytes = 4096;
  c.sdram_bytes = 64 * 1024;
  c.max_cycles = 50'000'000;
  return c;
}

TEST(Machine, LocalMemoryLoadStore) {
  Machine m(tiny(2));
  m.run([&](Core& c) {
    const Addr a = m.lm_base(c.id());
    c.store_u32(a, 100 + static_cast<uint32_t>(c.id()), MemClass::kLocal);
    EXPECT_EQ(c.load_u32(a, MemClass::kLocal),
              100u + static_cast<uint32_t>(c.id()));
  });
}

TEST(Machine, ReadingAnotherTilesMemoryIsForbidden) {
  // The interconnect is write-only (Fig. 7): direct remote reads must trap.
  Machine m(tiny(2));
  EXPECT_THROW(m.run([&](Core& c) {
                 if (c.id() == 0) {
                   c.load_u32(m.lm_base(1), MemClass::kLocal);
                 }
               }),
               util::CheckFailure);
}

TEST(Machine, RemoteWriteBecomesVisibleAfterFlight) {
  Machine m(tiny(2));
  m.run([&](Core& c) {
    const Addr flag = m.lm_base(1);
    if (c.id() == 0) {
      const uint32_t one = 1;
      c.remote_write(1, flag, &one, 4);
    } else {
      c.spin_until([&] { return c.load_u32(flag, MemClass::kLocal) == 1; });
      SUCCEED();
    }
  });
  EXPECT_GT(m.stats(0).remote_writes, 0u);
}

TEST(Machine, UncachedSdramRoundTrip) {
  MachineConfig cfg = tiny(1);
  cfg.cache_shared = false;
  Machine m(cfg);
  m.run([&](Core& c) {
    c.store_u32(kSdramBase + 16, 99, MemClass::kSharedData);
    // Uncached stores are posted: spin until the write lands.
    c.spin_until([&] {
      return c.load_u32(kSdramBase + 16, MemClass::kSharedData) == 99;
    });
  });
  EXPECT_GT(m.stats(0).stall_shared_read, 0u);
  EXPECT_GT(m.stats(0).stall_write, 0u);
}

TEST(Machine, CachedReadsHitAfterFill) {
  Machine m(tiny(1));
  m.run([&](Core& c) {
    for (int i = 0; i < 8; ++i) {
      c.load_u32(kSdramBase + static_cast<Addr>(4 * i), MemClass::kSharedData);
    }
  });
  EXPECT_EQ(m.stats(0).dcache_misses, 1u);  // one 32B line
  EXPECT_EQ(m.stats(0).dcache_hits, 7u);
}

TEST(Machine, DirtyLineInvisibleUntilFlush) {
  // The write-back cache holds real bytes: without wbinval the other core
  // reads stale data; with it, the fresh value. This is the SWCC mechanism.
  MachineConfig cfg = tiny(2);
  Machine m(cfg);
  const Addr x = kSdramBase + 128;
  const Addr flag = kSdramBase + 4096;
  m.run([&](Core& c) {
    if (c.id() == 0) {
      c.store_u32(x, 42, MemClass::kSharedData);  // sits dirty in the cache
      c.store_u32(flag, 1, MemClass::kSync);      // uncached flag
    } else {
      c.spin_until([&] { return c.load_u32(flag, MemClass::kSync) == 1; });
      // Core 1 misses and fills from SDRAM, which still has 0.
      EXPECT_EQ(c.load_u32(x, MemClass::kSharedData), 0u);
    }
  });

  Machine m2(cfg);
  m2.run([&](Core& c) {
    if (c.id() == 0) {
      c.store_u32(x, 42, MemClass::kSharedData);
      c.cache_wbinval(x, 4);                  // flush: write becomes global
      c.idle(2 * cfg.timing.sdram_line_wb_visible + 8);
      c.store_u32(flag, 1, MemClass::kSync);
    } else {
      c.spin_until([&] { return c.load_u32(flag, MemClass::kSync) == 1; });
      EXPECT_EQ(c.load_u32(x, MemClass::kSharedData), 42u);
    }
  });
  EXPECT_GT(m2.stats(0).lines_flushed, 0u);
  EXPECT_GT(m2.stats(0).stall_flush, 0u);
}

TEST(Machine, StaleCachedReadWithoutInvalidate) {
  // Reader cached the line before the writer updated SDRAM: it keeps seeing
  // the stale value until it invalidates.
  Machine m(tiny(2));
  const Addr x = kSdramBase + 64;
  const Addr flag = kSdramBase + 4096;
  m.run([&](Core& c) {
    if (c.id() == 1) {
      EXPECT_EQ(c.load_u32(x, MemClass::kSharedData), 0u);  // warm the cache
      c.store_u32(flag, 1, MemClass::kSync);
      c.spin_until([&] { return c.load_u32(flag, MemClass::kSync) == 2; });
      // Still stale: the line sits in our cache.
      EXPECT_EQ(c.load_u32(x, MemClass::kSharedData), 0u);
      c.cache_inval(x, 4);
      EXPECT_EQ(c.load_u32(x, MemClass::kSharedData), 7u);
    } else {
      c.spin_until([&] { return c.load_u32(flag, MemClass::kSync) == 1; });
      c.store_u32(x, 7, MemClass::kSharedData);
      c.cache_wbinval(x, 4);
      c.idle(200);  // let the writeback land
      c.store_u32(flag, 2, MemClass::kSync);
    }
  });
}

TEST(Machine, Fig1ReorderingIsReal) {
  // Paper Fig. 1: X lives in slow memory (SDRAM), the flag in fast memory
  // (receiver's local store). Without synchronization the receiver can see
  // flag==1 while X is still in flight.
  MachineConfig cfg = MachineConfig::fig1_twomem();
  cfg.max_cycles = 1'000'000;
  Machine m(cfg);
  const Addr x = kSdramBase + 0;
  bool stale_observed = false;
  m.run([&](Core& c) {
    const Addr flag = m.lm_base(1);
    if (c.id() == 0) {
      c.store_u32(x, 42, MemClass::kSharedData);  // slow, posted
      const uint32_t one = 1;
      c.remote_write(1, flag, &one, 4);  // fast path
    } else {
      c.spin_until([&] { return c.load_u32(flag, MemClass::kLocal) == 1; });
      stale_observed = c.load_u32(x, MemClass::kSharedData) != 42;
    }
  });
  EXPECT_TRUE(stale_observed)
      << "the motivating example must break on this configuration";
}

TEST(Machine, AtomicsSerializeAcrossCores) {
  Machine m(tiny(4));
  const Addr ctr = kSdramBase + 8;
  m.run([&](Core& c) {
    for (int i = 0; i < 10; ++i) c.atomic_add(ctr, 1);
  });
  uint32_t v = 0;
  m.peek(ctr, &v, 4);
  EXPECT_EQ(v, 40u);
}

TEST(Machine, ComputeChargesBackgroundStalls) {
  MachineConfig cfg = tiny(1);
  cfg.profile.imiss_per_mille = 100;   // 1 miss / 10 instructions
  cfg.profile.priv_miss_per_mille = 50;
  Machine m(cfg);
  m.run([&](Core& c) { c.compute(1000); });
  const CoreStats& s = m.stats(0);
  EXPECT_EQ(s.instructions, 1000u);
  EXPECT_EQ(s.busy, 1000u);
  EXPECT_EQ(s.stall_ifetch, 100u * cfg.timing.imiss_penalty);
  EXPECT_EQ(s.stall_private_read, 50u * cfg.timing.priv_miss_penalty);
  EXPECT_EQ(s.cycles_total, s.busy + s.stall_total());
}

TEST(Machine, DeterministicStateHash) {
  auto one_run = [] {
    Machine m(tiny(4));
    const Addr ctr = kSdramBase + 8;
    m.run([&](Core& c) {
      for (int i = 0; i < 50; ++i) {
        c.atomic_add(ctr, static_cast<uint32_t>(c.id() + 1));
        c.compute(10 + static_cast<uint64_t>(c.id()));
        const Addr mine = m.lm_base(c.id());
        c.store_u32(mine, c.load_u32(ctr, MemClass::kSync), MemClass::kLocal);
        if (c.id() != 0) {
          uint32_t v = static_cast<uint32_t>(i);
          c.remote_write(0, m.lm_base(0) + 64, &v, 4);
        }
      }
    });
    return m.state_hash();
  };
  EXPECT_EQ(one_run(), one_run());
}

TEST(Machine, PokePeekBackdoor) {
  Machine m(tiny(1));
  const uint32_t v = 123;
  m.poke(kSdramBase + 100, &v, 4);
  uint32_t out = 0;
  m.peek(kSdramBase + 100, &out, 4);
  EXPECT_EQ(out, 123u);
}

TEST(Machine, MachineRunsOnlyOnce) {
  Machine m(tiny(1));
  m.run([](Core&) {});
  EXPECT_THROW(m.run([](Core&) {}), util::CheckFailure);
}

TEST(Machine, MisalignedAccessChecked) {
  Machine m(tiny(1));
  EXPECT_THROW(
      m.run([&](Core& c) { c.load_u32(kSdramBase + 2, MemClass::kSync); }),
      util::CheckFailure);
}

TEST(Machine, RaggedMeshConfigRejected) {
  // 12 tiles cannot fill rows of 8 — the shape the old
  // `mesh_width = min(8, cores)` rule silently built.
  MachineConfig c = tiny(12);
  c.mesh_width = 8;
  EXPECT_THROW(Machine m(c), util::CheckFailure);
  c.mesh_width = MachineConfig::derive_mesh_width(12);
  EXPECT_EQ(c.mesh_width, 6);
  Machine ok(c);  // derived widths always divide
}

TEST(Machine, ValidateRejectsImpossibleShapes) {
  EXPECT_THROW(
      {
        MachineConfig c = tiny(2);
        c.lm_bytes = 0;
        c.validate();
      },
      util::CheckFailure);
  EXPECT_THROW(
      {
        MachineConfig c = tiny(2);
        c.sdram_bytes = 0;
        c.validate();
      },
      util::CheckFailure);
  EXPECT_THROW(
      {
        MachineConfig c = tiny(2);
        c.dcache.line_bytes = 24;  // not a power of two
        c.validate();
      },
      util::CheckFailure);
  EXPECT_THROW(
      {
        MachineConfig c = tiny(2);
        c.mesh_width = 0;
        c.validate();
      },
      util::CheckFailure);
}

TEST(Machine, MeshNocModelIsDeterministic) {
  // The contention model must stay bit-deterministic: same program, same
  // config ⇒ same final state and same contention totals.
  auto one_run = [](uint64_t* stalls) {
    MachineConfig cfg = tiny(8);
    cfg.noc_model = NocModel::kMesh;
    cfg.noc_buffer_words = 2;
    cfg.timing.noc_per_word = 4;
    Machine m(cfg);
    m.run([&](Core& c) {
      for (int i = 0; i < 10; ++i) {
        uint32_t v = static_cast<uint32_t>(100 * c.id() + i);
        c.remote_write((c.id() + 3) % 8, m.lm_base((c.id() + 3) % 8) + 256,
                       &v, 4);
        c.atomic_add(kSdramBase + 8, 1);
      }
    });
    *stalls = m.noc().link_stall_cycles();
    return m.state_hash();
  };
  uint64_t s1 = 0, s2 = 0;
  const uint64_t h1 = one_run(&s1);
  const uint64_t h2 = one_run(&s2);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(s1, s2);
}

TEST(Machine, ExportMetricsReconcilesWithCounters) {
  MachineConfig cfg = tiny(4);
  cfg.noc_model = NocModel::kMesh;
  Machine m(cfg);
  m.run([&](Core& c) {
    uint32_t v = 1;
    c.remote_write((c.id() + 1) % 4, m.lm_base((c.id() + 1) % 4) + 64, &v, 4);
    c.atomic_add(kSdramBase + 8, 1);
  });
  obs::MetricsRegistry reg;
  m.export_metrics(reg);
  EXPECT_EQ(reg.counter("noc.packets"), m.noc().packets_sent());
  EXPECT_EQ(reg.counter("noc.bytes"), m.noc().bytes_sent());
  EXPECT_EQ(reg.counter("noc.link_stall_cycles"),
            m.noc().link_stall_cycles());
  // The merged port histogram's population equals the reservation count —
  // the accounting identity, machine-wide.
  const obs::Histogram* wait = reg.histogram("port.wait");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->count, reg.counter("port.reservations"));
  EXPECT_GT(reg.counter("port.reservations"), 0u);
}

}  // namespace
}  // namespace pmc::sim
