// Block and sub-word accesses across line and word boundaries.
#include <gtest/gtest.h>

#include "sim/machine.h"

namespace pmc::sim {
namespace {

MachineConfig tiny() {
  MachineConfig c = MachineConfig::ml605(1);
  c.lm_bytes = 8 * 1024;
  c.sdram_bytes = 64 * 1024;
  c.max_cycles = 10'000'000;
  return c;
}

TEST(BlockOps, CachedBlockCrossesLines) {
  Machine m(tiny());
  m.run([&](Core& c) {
    uint8_t out[100];
    uint8_t data[100];
    for (int i = 0; i < 100; ++i) data[i] = static_cast<uint8_t>(i * 3);
    // Deliberately misaligned start, spanning four 32 B lines.
    const Addr a = kSdramBase + 23;
    c.write_block(a, data, 100, MemClass::kSharedData);
    c.read_block(a, out, 100, MemClass::kSharedData);
    for (int i = 0; i < 100; ++i) {
      ASSERT_EQ(out[i], data[i]) << "offset " << i;
    }
  });
  EXPECT_GE(m.stats(0).dcache_misses, 4u);
}

TEST(BlockOps, UncachedBlockWordChunking) {
  MachineConfig cfg = tiny();
  cfg.cache_shared = false;
  Machine m(cfg);
  m.run([&](Core& c) {
    uint8_t data[10] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    const Addr a = kSdramBase + 6;  // unaligned: 2 + 4 + 4 byte chunks
    c.write_block(a, data, 10, MemClass::kSharedData);
    c.spin_until([&] {
      uint8_t probe = 0;
      c.read_block(a + 9, &probe, 1, MemClass::kSharedData);
      return probe == 10;
    });
    uint8_t out[10] = {};
    c.read_block(a, out, 10, MemClass::kSharedData);
    for (int i = 0; i < 10; ++i) ASSERT_EQ(out[i], data[i]);
  });
}

TEST(BlockOps, LocalMemoryBlockCostScalesPerWord) {
  Machine m(tiny());
  uint64_t t_small = 0, t_big = 0;
  m.run([&](Core& c) {
    const Addr a = m.lm_base(0) + 128;
    uint8_t buf[256] = {};
    const uint64_t t0 = c.now();
    c.write_block(a, buf, 4, MemClass::kLocal);
    const uint64_t t1 = c.now();
    c.write_block(a, buf, 256, MemClass::kLocal);
    const uint64_t t2 = c.now();
    t_small = t1 - t0;
    t_big = t2 - t1;
  });
  EXPECT_EQ(t_small, 1u);   // one word
  EXPECT_EQ(t_big, 64u);    // 64 words, single-cycle each
}

TEST(BlockOps, ByteAccessors) {
  Machine m(tiny());
  m.run([&](Core& c) {
    const Addr a = m.lm_base(0) + 17;  // odd address: bytes are fine
    c.store_u8(a, 0xcd, MemClass::kLocal);
    EXPECT_EQ(c.load_u8(a, MemClass::kLocal), 0xcd);
  });
}

TEST(BlockOps, DmaRoundTrip) {
  MachineConfig cfg = tiny();
  cfg.cache_shared = false;
  Machine m(cfg);
  m.run([&](Core& c) {
    uint8_t data[200];
    for (int i = 0; i < 200; ++i) data[i] = static_cast<uint8_t>(255 - i);
    const uint64_t arrival =
        c.dma_write(kSdramBase + 512, data, 200, MemClass::kSharedData);
    c.wait_until(arrival, Core::StallBucket::kWrite);
    uint8_t out[200] = {};
    c.dma_read(kSdramBase + 512, out, 200, MemClass::kSharedData);
    for (int i = 0; i < 200; ++i) ASSERT_EQ(out[i], data[i]);
  });
  // DMA is far cheaper than word-by-word uncached traffic.
  const auto& t = m.config().timing;
  EXPECT_LT(m.stats(0).stall_write,
            200 / 4 * static_cast<uint64_t>(t.sdram_write_cost));
}

}  // namespace
}  // namespace pmc::sim
