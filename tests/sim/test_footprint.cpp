// Footprint commutativity: the independence relation under the
// happens-before partial-order reduction (DESIGN.md §8).
#include "sim/footprint.h"

#include <gtest/gtest.h>

namespace pmc::sim {
namespace {

Footprint fp(uint64_t addr, uint32_t len, AccessKind kind, bool sync = false) {
  Footprint f;
  f.add(addr, len, kind, sync);
  return f;
}

TEST(Footprint, ReadsOfTheSameLocationCommute) {
  EXPECT_FALSE(conflicts(fp(0x100, 4, AccessKind::kRead),
                         fp(0x100, 4, AccessKind::kRead)));
}

TEST(Footprint, ReadWriteAndWriteWriteOverlapsConflict) {
  EXPECT_TRUE(conflicts(fp(0x100, 4, AccessKind::kRead),
                        fp(0x100, 4, AccessKind::kWrite)));
  EXPECT_TRUE(conflicts(fp(0x100, 4, AccessKind::kWrite),
                        fp(0x100, 4, AccessKind::kWrite)));
  EXPECT_TRUE(conflicts(fp(0x100, 4, AccessKind::kAtomic),
                        fp(0x100, 4, AccessKind::kRead)));
  // Partial overlap counts: [0x100,0x140) vs [0x13c,0x140).
  EXPECT_TRUE(conflicts(fp(0x100, 64, AccessKind::kWrite),
                        fp(0x13c, 4, AccessKind::kRead)));
}

TEST(Footprint, DisjointRangesCommute) {
  EXPECT_FALSE(conflicts(fp(0x100, 4, AccessKind::kWrite),
                         fp(0x104, 4, AccessKind::kWrite)));
  EXPECT_FALSE(conflicts(fp(0x100, 4, AccessKind::kAtomic, true),
                         fp(0x104, 4, AccessKind::kAtomic, true)));
}

TEST(Footprint, CommonSyncWordConflictsEvenReadRead) {
  // Lock/barrier words order the computation: two polls of the same sync
  // word are never treated as independent (ISSUE 4 tentpole spec).
  EXPECT_TRUE(conflicts(fp(0x200, 4, AccessKind::kRead, true),
                        fp(0x200, 4, AccessKind::kRead, true)));
  // A sync read against a plain read of the same word still commutes.
  EXPECT_FALSE(conflicts(fp(0x200, 4, AccessKind::kRead, true),
                         fp(0x200, 4, AccessKind::kRead, false)));
}

TEST(Footprint, EmptyCommutesWithEverythingIncludingWildcard) {
  const Footprint empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(conflicts(empty, fp(0x100, 4, AccessKind::kWrite)));
  EXPECT_FALSE(conflicts(empty, Footprint::wildcard()));
}

TEST(Footprint, WildcardConflictsWithEveryNonEmptyFootprint) {
  EXPECT_TRUE(Footprint::wildcard().is_wildcard());
  EXPECT_FALSE(Footprint::wildcard().empty());
  EXPECT_TRUE(conflicts(Footprint::wildcard(),
                        fp(0x100, 4, AccessKind::kRead)));
  EXPECT_TRUE(conflicts(Footprint::wildcard(), Footprint::wildcard()));
}

TEST(Footprint, AdjacentSameKindAccessesCoalesce) {
  Footprint f;
  f.add(0x100, 4, AccessKind::kWrite, false);
  f.add(0x104, 4, AccessKind::kWrite, false);  // extends the run
  f.add(0x100, 4, AccessKind::kWrite, false);  // duplicate, absorbed
  ASSERT_EQ(f.accesses().size(), 1u);
  EXPECT_EQ(f.accesses()[0].addr, 0x100u);
  EXPECT_EQ(f.accesses()[0].len, 8u);
  f.add(0x104, 4, AccessKind::kRead, false);  // different kind: new record
  EXPECT_EQ(f.accesses().size(), 2u);
}

TEST(Footprint, ClearResetsWildcardAndAccesses) {
  Footprint f;
  f.add(0x100, 4, AccessKind::kWrite, false);
  f.add_wildcard();
  EXPECT_TRUE(f.is_wildcard());
  f.clear();
  EXPECT_TRUE(f.empty());
  EXPECT_FALSE(f.is_wildcard());
}

}  // namespace
}  // namespace pmc::sim
