// MachineConfig description parser (DESIGN.md §12): defaults, every
// section, suffixes, presets, derived mesh widths, and — most importantly —
// the error paths: a silently-ignored typo in a sweep config would
// invalidate the whole experiment, so every malformed line must fail
// loudly, naming the origin and line.
#include "sim/machine.h"

#include <gtest/gtest.h>

#include <string>

#include "util/check.h"

namespace pmc::sim {
namespace {

/// Error-message oracle: parse must throw and the message must contain
/// every listed fragment (origin:line and the offending token).
void expect_parse_error(const std::string& text,
                        std::initializer_list<const char*> fragments) {
  try {
    MachineConfig::from_string(text, "test.cfg");
    FAIL() << "expected CheckFailure for:\n" << text;
  } catch (const util::CheckFailure& e) {
    const std::string msg = e.what();
    for (const char* f : fragments) {
      EXPECT_NE(msg.find(f), std::string::npos)
          << "message \"" << msg << "\" lacks \"" << f << "\"";
    }
  }
}

TEST(MachineConfigParse, EmptyTextIsTheMl605Preset) {
  const MachineConfig got = MachineConfig::from_string("");
  const MachineConfig want = MachineConfig::ml605();
  EXPECT_EQ(got.num_cores, want.num_cores);
  EXPECT_EQ(got.mesh_width, want.mesh_width);
  EXPECT_EQ(got.lm_bytes, want.lm_bytes);
  EXPECT_EQ(got.sdram_bytes, want.sdram_bytes);
  EXPECT_EQ(got.timing.noc_per_word, want.timing.noc_per_word);
  EXPECT_EQ(got.noc_model, NocModel::kFlat);
  EXPECT_EQ(got.noc_buffer_words, 4u);
}

TEST(MachineConfigParse, EverySectionAndSuffix) {
  const MachineConfig c = MachineConfig::from_string(R"(
# full grammar exercise
[machine]
preset = ml605
cores = 64            ; comments in both styles
lm_bytes = 64k
sdram_bytes = 8m
max_cycles = 123456789
cache_shared = on

[cache]
size_bytes = 8k
line_bytes = 32
ways = 2

[timing]
noc_per_word = 4
sdram_read = 30
atomic_extra = 9

[noc]
model = mesh
buffer_words = 2

[workload]
imiss_per_mille = 5
priv_miss_per_mille = 7
)");
  EXPECT_EQ(c.num_cores, 64);
  EXPECT_EQ(c.mesh_width, 8);  // derived: not stated
  EXPECT_EQ(c.lm_bytes, 64u * 1024);
  EXPECT_EQ(c.sdram_bytes, 8u * 1024 * 1024);
  EXPECT_EQ(c.max_cycles, 123456789u);
  EXPECT_TRUE(c.cache_shared);
  EXPECT_EQ(c.dcache.size_bytes, 8u * 1024);
  EXPECT_EQ(c.dcache.line_bytes, 32u);
  EXPECT_EQ(c.dcache.ways, 2u);
  EXPECT_EQ(c.timing.noc_per_word, 4u);
  EXPECT_EQ(c.timing.sdram_read, 30u);
  EXPECT_EQ(c.timing.atomic_extra, 9u);
  EXPECT_EQ(c.noc_model, NocModel::kMesh);
  EXPECT_EQ(c.noc_buffer_words, 2u);
  EXPECT_EQ(c.profile.imiss_per_mille, 5u);
  EXPECT_EQ(c.profile.priv_miss_per_mille, 7u);
}

TEST(MachineConfigParse, ClusterSectionSetsAndDisablesTheSram) {
  const MachineConfig grown = MachineConfig::from_string(R"(
[cluster]
bytes = 256k
)");
  EXPECT_EQ(grown.cluster_bytes, 256u * 1024);
  // bytes = 0 disables the cluster SRAM entirely — the configuration the
  // shared-L1 back-end must reject with a named error.
  const MachineConfig off = MachineConfig::from_string(R"(
[cluster]
bytes = 0
)");
  EXPECT_EQ(off.cluster_bytes, 0u);
}

TEST(MachineConfigParse, ExplicitMeshWidthWins) {
  const MachineConfig c = MachineConfig::from_string(
      "[machine]\ncores = 256\nmesh_width = 16\n");
  EXPECT_EQ(c.mesh_width, 16);
}

TEST(MachineConfigParse, DeriveMeshWidthNeverRagged) {
  for (int cores = 1; cores <= 96; ++cores) {
    const int w = MachineConfig::derive_mesh_width(cores);
    EXPECT_GE(w, 1);
    EXPECT_LE(w, 8);
    EXPECT_EQ(cores % w, 0) << cores << " tiles, width " << w;
  }
  EXPECT_EQ(MachineConfig::derive_mesh_width(64), 8);
  EXPECT_EQ(MachineConfig::derive_mesh_width(12), 6);
  EXPECT_EQ(MachineConfig::derive_mesh_width(7), 7);   // prime ≤ 8: one row
  EXPECT_EQ(MachineConfig::derive_mesh_width(13), 1);  // prime > 8: a column
}

TEST(MachineConfigParse, UnknownKeyNamesOriginAndLine) {
  expect_parse_error("[machine]\nbogus_key = 3\n",
                     {"test.cfg:2", "unknown key 'bogus_key'", "[machine]"});
}

TEST(MachineConfigParse, UnknownSectionNamesLine) {
  expect_parse_error("[machine]\ncores = 4\n[wat]\n",
                     {"test.cfg:3", "unknown section [wat]"});
}

TEST(MachineConfigParse, BadValueNamesKeyAndLine) {
  expect_parse_error("[machine]\ncores = eight\n",
                     {"test.cfg:2", "bad value 'eight'", "cores"});
  expect_parse_error("[machine]\ncores = -4\n",
                     {"test.cfg:2", "bad value '-4'"});
  expect_parse_error("[noc]\nmodel = torus\n",
                     {"test.cfg:2", "bad value 'torus'", "flat or mesh"});
  expect_parse_error("[machine]\ncache_shared = maybe\n",
                     {"test.cfg:2", "bad value 'maybe'"});
}

TEST(MachineConfigParse, KeyOutsideSectionIsAnError) {
  expect_parse_error("cores = 4\n", {"test.cfg:1", "before any section"});
}

TEST(MachineConfigParse, MissingEqualsIsAnError) {
  expect_parse_error("[machine]\ncores 4\n",
                     {"test.cfg:2", "expected 'key = value'"});
}

TEST(MachineConfigParse, PresetMustComeFirst) {
  expect_parse_error("[machine]\ncores = 4\npreset = ml605\n",
                     {"test.cfg:3", "preset must be the first setting"});
  expect_parse_error("[machine]\npreset = pdp11\n",
                     {"test.cfg:2", "unknown preset 'pdp11'"});
}

TEST(MachineConfigParse, InvalidShapeNamesOrigin) {
  // Shape errors surface through validate() but still carry the origin.
  expect_parse_error("[machine]\ncores = 12\nmesh_width = 8\n",
                     {"test.cfg", "ragged mesh"});
  expect_parse_error("[machine]\ncores = 0\n", {"test.cfg"});
}

TEST(MachineConfigParse, FromFileErrorsNameThePath) {
  try {
    MachineConfig::from_file("/nonexistent/nope.cfg");
    FAIL() << "expected CheckFailure";
  } catch (const util::CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/nope.cfg"),
              std::string::npos);
  }
}

TEST(MachineConfigParse, ParsedConfigBuildsAMachine) {
  const MachineConfig c = MachineConfig::from_string(
      "[machine]\ncores = 6\nlm_bytes = 4k\nsdram_bytes = 64k\n"
      "[noc]\nmodel = mesh\n");
  Machine m(c);
  EXPECT_EQ(m.num_cores(), 6);
  EXPECT_EQ(m.noc().model(), NocModel::kMesh);
}

}  // namespace
}  // namespace pmc::sim
