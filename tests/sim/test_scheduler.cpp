// Deterministic min-time scheduler tests.
#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.h"

namespace pmc::sim {
namespace {

TEST(Scheduler, SingleCoreRunsToCompletion) {
  Scheduler s(1);
  int steps = 0;
  s.run([&](int core) {
    EXPECT_EQ(core, 0);
    for (int i = 0; i < 10; ++i) s.advance(0, 5);
    steps = 10;
  });
  EXPECT_EQ(steps, 10);
}

TEST(Scheduler, InterleavesByMinimumTime) {
  // Core 0 advances in steps of 10, core 1 in steps of 3: the recorded
  // global order must be sorted by (time-before-step, id).
  Scheduler s(2);
  std::vector<std::pair<uint64_t, int>> order;
  s.run([&](int core) {
    const uint64_t step = core == 0 ? 10 : 3;
    for (int i = 0; i < 6; ++i) {
      order.emplace_back(s.now(core), core);
      s.advance(core, step);
    }
  });
  ASSERT_EQ(order.size(), 12u);
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(order[i - 1], order[i]) << "at step " << i;
  }
}

TEST(Scheduler, TieBreaksByLowerId) {
  Scheduler s(3);
  std::vector<int> first_at_zero;
  s.run([&](int core) {
    first_at_zero.push_back(core);
    s.advance(core, 1);
  });
  ASSERT_EQ(first_at_zero.size(), 3u);
  EXPECT_EQ(first_at_zero[0], 0);
  EXPECT_EQ(first_at_zero[1], 1);
  EXPECT_EQ(first_at_zero[2], 2);
}

TEST(Scheduler, DeterministicAcrossRuns) {
  auto record = [] {
    Scheduler s(4);
    std::vector<int> order;
    s.run([&](int core) {
      for (int i = 0; i < 20; ++i) {
        order.push_back(core);
        s.advance(core, static_cast<uint64_t>((core * 7 + i * 3) % 11 + 1));
      }
    });
    return order;
  };
  const auto a = record();
  const auto b = record();
  EXPECT_EQ(a, b);
}

TEST(Scheduler, WatchdogThrows) {
  Scheduler s(1, /*max_cycles=*/1000);
  EXPECT_THROW(s.run([&](int core) {
                 for (;;) s.advance(core, 100);
               }),
               util::CheckFailure);
}

TEST(Scheduler, ExceptionInOneCorePropagates) {
  Scheduler s(2, /*max_cycles=*/100'000);
  EXPECT_THROW(s.run([&](int core) {
                 if (core == 0) throw std::runtime_error("boom");
                 // Core 1 spins until the watchdog fires.
                 for (;;) s.advance(core, 1000);
               }),
               std::runtime_error);
  EXPECT_TRUE(s.failed());
}

TEST(Scheduler, ManyCoresFinishIndependently) {
  Scheduler s(16);
  std::vector<uint64_t> final_time(16);
  s.run([&](int core) {
    for (int i = 0; i <= core; ++i) s.advance(core, 2);
    final_time[core] = s.now(core);
  });
  for (int c = 0; c < 16; ++c) {
    EXPECT_EQ(final_time[c], static_cast<uint64_t>(2 * (c + 1)));
  }
}

}  // namespace
}  // namespace pmc::sim
