// Deterministic min-time scheduler tests.
#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "util/check.h"

namespace pmc::sim {
namespace {

TEST(Scheduler, SingleCoreRunsToCompletion) {
  Scheduler s(1);
  int steps = 0;
  s.run([&](int core) {
    EXPECT_EQ(core, 0);
    for (int i = 0; i < 10; ++i) s.advance(0, 5);
    steps = 10;
  });
  EXPECT_EQ(steps, 10);
}

TEST(Scheduler, InterleavesByMinimumTime) {
  // Core 0 advances in steps of 10, core 1 in steps of 3: the recorded
  // global order must be sorted by (time-before-step, id).
  Scheduler s(2);
  std::vector<std::pair<uint64_t, int>> order;
  s.run([&](int core) {
    const uint64_t step = core == 0 ? 10 : 3;
    for (int i = 0; i < 6; ++i) {
      order.emplace_back(s.now(core), core);
      s.advance(core, step);
    }
  });
  ASSERT_EQ(order.size(), 12u);
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(order[i - 1], order[i]) << "at step " << i;
  }
}

TEST(Scheduler, TieBreaksByLowerId) {
  Scheduler s(3);
  std::vector<int> first_at_zero;
  s.run([&](int core) {
    first_at_zero.push_back(core);
    s.advance(core, 1);
  });
  ASSERT_EQ(first_at_zero.size(), 3u);
  EXPECT_EQ(first_at_zero[0], 0);
  EXPECT_EQ(first_at_zero[1], 1);
  EXPECT_EQ(first_at_zero[2], 2);
}

TEST(Scheduler, DeterministicAcrossRuns) {
  auto record = [] {
    Scheduler s(4);
    std::vector<int> order;
    s.run([&](int core) {
      for (int i = 0; i < 20; ++i) {
        order.push_back(core);
        s.advance(core, static_cast<uint64_t>((core * 7 + i * 3) % 11 + 1));
      }
    });
    return order;
  };
  const auto a = record();
  const auto b = record();
  EXPECT_EQ(a, b);
}

TEST(Scheduler, WatchdogThrows) {
  Scheduler s(1, /*max_cycles=*/1000);
  EXPECT_THROW(s.run([&](int core) {
                 for (;;) s.advance(core, 100);
               }),
               util::CheckFailure);
}

TEST(Scheduler, ExceptionInOneCorePropagates) {
  Scheduler s(2, /*max_cycles=*/100'000);
  EXPECT_THROW(s.run([&](int core) {
                 if (core == 0) throw std::runtime_error("boom");
                 // Core 1 spins until the watchdog fires.
                 for (;;) s.advance(core, 1000);
               }),
               std::runtime_error);
  EXPECT_TRUE(s.failed());
}

// ---------------------------------------------------------------------------
// SchedulePolicy hook
// ---------------------------------------------------------------------------

/// Records every decision; picks a scripted choice or the default.
class RecordingPolicy : public SchedulePolicy {
 public:
  explicit RecordingPolicy(std::vector<std::pair<uint64_t, int>> overrides = {})
      : overrides_(std::move(overrides)) {}

  int pick(const YieldPoint& yp,
           const std::vector<ScheduleCandidate>& cands) override {
    points.push_back(yp);
    cand_counts.push_back(cands.size());
    dispatch_times.push_back(cands[0].time);  // min-time candidate
    for (const auto& [step, choice] : overrides_) {
      if (step == yp.step && choice < static_cast<int>(cands.size())) {
        dispatch_times.back() = cands[static_cast<size_t>(choice)].time;
        return choice;
      }
    }
    return 0;
  }

  std::vector<YieldPoint> points;
  std::vector<size_t> cand_counts;
  std::vector<uint64_t> dispatch_times;  // pre-warp time of the chosen core

 private:
  std::vector<std::pair<uint64_t, int>> overrides_;
};

namespace workload {
/// A fixed 3-core workload; records (core, time-at-step) "trace bytes".
std::vector<uint8_t> run(Scheduler& s, std::vector<uint64_t>* final_clocks) {
  std::vector<uint8_t> trace;
  s.run([&](int core) {
    for (int i = 0; i < 12; ++i) {
      trace.push_back(static_cast<uint8_t>(core));
      for (int b = 0; b < 8; ++b) {
        trace.push_back(static_cast<uint8_t>(s.now(core) >> (8 * b)));
      }
      if (i % 3 == core % 3) s.note_effect(core);
      s.advance(core, static_cast<uint64_t>((core * 5 + i * 7) % 9 + 1));
    }
  });
  if (final_clocks != nullptr) {
    final_clocks->clear();
    for (int c = 0; c < s.num_cores(); ++c) final_clocks->push_back(s.now(c));
  }
  return trace;
}
}  // namespace workload

TEST(Scheduler, BitDeterministicAcrossRuns) {
  // Regression guard for the SchedulePolicy hook: two runs of the same
  // program must produce identical per-core final clocks and identical
  // trace bytes — scheduling depends only on simulated clocks, never on
  // host thread timing.
  Scheduler s1(3), s2(3);
  std::vector<uint64_t> clocks1, clocks2;
  const auto trace1 = workload::run(s1, &clocks1);
  const auto trace2 = workload::run(s2, &clocks2);
  EXPECT_EQ(clocks1, clocks2);
  EXPECT_EQ(trace1, trace2);
}

TEST(Scheduler, DefaultPolicyPreservesDefaultScheduleExactly) {
  Scheduler plain(3), hooked(3);
  RecordingPolicy policy;  // always returns 0: the min-time default
  hooked.set_policy(&policy);
  std::vector<uint64_t> clocks_plain, clocks_hooked;
  const auto trace_plain = workload::run(plain, &clocks_plain);
  const auto trace_hooked = workload::run(hooked, &clocks_hooked);
  EXPECT_EQ(trace_plain, trace_hooked);
  EXPECT_EQ(clocks_plain, clocks_hooked);
  EXPECT_GT(policy.points.size(), 0u);
  EXPECT_EQ(hooked.decisions(), policy.points.size());
}

TEST(Scheduler, PolicySeesSortedCandidatesAndSequentialSteps) {
  Scheduler s(3);
  RecordingPolicy policy;
  s.set_policy(&policy);
  workload::run(s, nullptr);
  ASSERT_FALSE(policy.points.empty());
  EXPECT_EQ(policy.points.front().step, 0u);
  EXPECT_EQ(policy.points.front().yielding, -1);  // initial dispatch
  for (size_t i = 0; i < policy.points.size(); ++i) {
    EXPECT_EQ(policy.points[i].step, i);
  }
  // All three cores runnable at the start; candidates shrink as cores end.
  EXPECT_EQ(policy.cand_counts.front(), 3u);
  EXPECT_EQ(policy.cand_counts.back(), 1u);
}

TEST(Scheduler, ObservabilityTracksNoteEffect) {
  Scheduler s(1);
  RecordingPolicy policy;
  s.set_policy(&policy);
  s.run([&](int core) {
    s.advance(core, 1);        // decision 1: nothing observable
    s.note_effect(core);
    s.advance(core, 1);        // decision 2: effect since last yield
    s.advance(core, 1);        // decision 3: flag consumed, pure again
  });
  ASSERT_GE(policy.points.size(), 4u);
  EXPECT_FALSE(policy.points[1].observable);
  EXPECT_TRUE(policy.points[2].observable);
  EXPECT_FALSE(policy.points[3].observable);
}

TEST(Scheduler, OverrideChangesOrderDeterministically) {
  RecordingPolicy a({{1, 1}, {4, 1}});
  RecordingPolicy b({{1, 1}, {4, 1}});
  Scheduler s1(3), s2(3), plain(3);
  s1.set_policy(&a);
  s2.set_policy(&b);
  const auto t1 = workload::run(s1, nullptr);
  const auto t2 = workload::run(s2, nullptr);
  const auto t0 = workload::run(plain, nullptr);
  EXPECT_EQ(t1, t2) << "overridden schedules must replay bit-identically";
  EXPECT_NE(t1, t0) << "the override must actually change the interleaving";
}

TEST(Scheduler, FrontierKeepsDispatchTimesMonotonic) {
  // Aggressively preempt: always pick the *last* (max-time) candidate. The
  // frontier warp must keep dispatch times nondecreasing, or bypassed cores
  // could generate memory events in the past of already-executed reads.
  class MaxTimePolicy : public SchedulePolicy {
   public:
    int pick(const YieldPoint&,
             const std::vector<ScheduleCandidate>& cands) override {
      chosen_times.push_back(cands.back().time);
      return static_cast<int>(cands.size()) - 1;
    }
    std::vector<uint64_t> chosen_times;
  };
  MaxTimePolicy policy;
  Scheduler s(3);
  s.set_policy(&policy);
  std::vector<std::pair<uint64_t, int>> dispatched;
  s.run([&](int core) {
    for (int i = 0; i < 10; ++i) {
      dispatched.emplace_back(s.now(core), core);
      s.advance(core, static_cast<uint64_t>(core + 1));
    }
  });
  // now() at the top of each resumption is the (post-warp) dispatch time.
  for (size_t i = 1; i < dispatched.size(); ++i) {
    EXPECT_GE(dispatched[i].first, dispatched[i - 1].first) << "at " << i;
  }
}

TEST(Scheduler, ManyCoresFinishIndependently) {
  Scheduler s(16);
  std::vector<uint64_t> final_time(16);
  s.run([&](int core) {
    for (int i = 0; i <= core; ++i) s.advance(core, 2);
    final_time[core] = s.now(core);
  });
  for (int c = 0; c < 16; ++c) {
    EXPECT_EQ(final_time[c], static_cast<uint64_t>(2 * (c + 1)));
  }
}

}  // namespace
}  // namespace pmc::sim
