// Memory module: storage, in-flight writes, arrival ordering, atomics.
#include "sim/mem_module.h"

#include <gtest/gtest.h>

#include <utility>

#include "util/check.h"

namespace pmc::sim {
namespace {

TEST(MemModule, ReadBackWrites) {
  MemModule m("m", 0x1000, 256);
  const uint32_t v = 0xdeadbeef;
  m.write(0, 0x1010, &v, 4);
  uint32_t out = 0;
  m.read(0, 0x1010, &out, 4);
  EXPECT_EQ(out, v);
}

TEST(MemModule, PendingWriteInvisibleBeforeArrival) {
  MemModule m("m", 0, 64);
  const uint32_t v = 7;
  m.post_write(/*arrival=*/100, 0, &v, 4);
  uint32_t out = 1;
  m.read(99, 0, &out, 4);
  EXPECT_EQ(out, 0u);  // not yet arrived
  m.read(100, 0, &out, 4);
  EXPECT_EQ(out, 7u);
}

TEST(MemModule, PendingWritesApplyInArrivalOrder) {
  MemModule m("m", 0, 64);
  const uint32_t a = 1, b = 2;
  // Posted in one order, arriving in the other — the Fig. 1 mechanism.
  m.post_write(200, 0, &a, 4);
  m.post_write(150, 0, &b, 4);
  uint32_t out = 0;
  m.read(175, 0, &out, 4);
  EXPECT_EQ(out, 2u);
  m.read(250, 0, &out, 4);
  EXPECT_EQ(out, 1u);
}

TEST(MemModule, SameArrivalOrderedBySequence) {
  MemModule m("m", 0, 64);
  const uint32_t a = 1, b = 2;
  m.post_write(100, 0, &a, 4);
  m.post_write(100, 0, &b, 4);
  uint32_t out = 0;
  m.read(100, 0, &out, 4);
  EXPECT_EQ(out, 2u);  // later post wins the tie
}

TEST(MemModule, LocalWriteAppliesPendingFirst) {
  MemModule m("m", 0, 64);
  const uint32_t remote = 9, local = 5;
  m.post_write(10, 0, &remote, 4);
  m.write(20, 0, &local, 4);  // after the arrival: local value stands
  uint32_t out = 0;
  m.read(20, 0, &out, 4);
  EXPECT_EQ(out, 5u);
}

TEST(MemModule, LateArrivalOverwritesLocalWrite) {
  MemModule m("m", 0, 64);
  const uint32_t remote = 9, local = 5;
  m.post_write(50, 0, &remote, 4);
  m.write(20, 0, &local, 4);
  uint32_t out = 0;
  m.read(60, 0, &out, 4);
  EXPECT_EQ(out, 9u);  // in-flight write lands later: it wins
}

TEST(MemModule, AtomicSwapAndAdd) {
  MemModule m("m", 0, 64);
  EXPECT_EQ(m.atomic_swap_u32(0, 0, 11), 0u);
  EXPECT_EQ(m.atomic_swap_u32(1, 0, 22), 11u);
  EXPECT_EQ(m.atomic_add_u32(2, 0, 5), 22u);
  uint32_t out = 0;
  m.read(3, 0, &out, 4);
  EXPECT_EQ(out, 27u);
}

TEST(MemModule, PortReservationSerializes) {
  MemModule m("m", 0, 64);
  EXPECT_EQ(m.reserve_port(100, 8), 100u);
  EXPECT_EQ(m.reserve_port(100, 8), 108u);  // port busy until 108
  EXPECT_EQ(m.reserve_port(200, 8), 200u);  // idle gap
}

TEST(MemModule, OutOfRangeAccessIsChecked) {
  MemModule m("m", 0x100, 16);
  uint32_t v = 0;
  EXPECT_THROW(m.read(0, 0x0fc, &v, 4), util::CheckFailure);
  EXPECT_THROW(m.read(0, 0x10e, &v, 4), util::CheckFailure);
  EXPECT_FALSE(m.contains(0x10e, 4));
  EXPECT_TRUE(m.contains(0x10c, 4));
}

TEST(MemModule, ZeroLengthWriteDirtiesNoPage) {
  // A zero-byte write touches no storage, so it must not enter the dirty
  // page set — it used to mark the page under its address, inflating every
  // later snapshot (and diverging footprints for no-op transfers).
  MemModule m("m", 0, 1024);
  const uint32_t v = 7;
  m.write(0, 512, &v, 0);
  m.post_write(10, 256, &v, 0);
  m.drain_all();
  EXPECT_TRUE(m.snapshot().pages.empty());
  m.write(20, 512, &v, 4);  // a real write still dirties its page
  EXPECT_EQ(m.snapshot().pages.size(), 1u);
}

TEST(MemModule, PortStatsAccountingIdentity) {
  // wait_cycles is exactly Σ (start − earliest) and busy_cycles exactly
  // Σ occupancy — the identity the merged metrics exports reconcile
  // against (DESIGN.md §12).
  MemModule m("m", 0, 64);
  const std::pair<uint64_t, uint64_t> reqs[] = {
      {100, 8}, {100, 8}, {110, 4}, {200, 16}, {201, 1}};
  uint64_t wait_sum = 0, busy_sum = 0;
  for (const auto& [earliest, occ] : reqs) {
    const uint64_t start = m.reserve_port(earliest, occ);
    EXPECT_GE(start, earliest);
    wait_sum += start - earliest;
    busy_sum += occ;
  }
  const MemModule::PortStats& p = m.port_stats();
  EXPECT_EQ(p.reservations, 5u);
  EXPECT_EQ(p.wait_cycles, wait_sum);
  EXPECT_EQ(p.busy_cycles, busy_sum);
  EXPECT_EQ(p.wait_hist.count, 5u);
  EXPECT_GT(wait_sum, 0u);  // the back-to-back pair really queued
}

TEST(MemModule, PortStatsSurviveSnapshotRestore) {
  MemModule m("m", 0, 64);
  m.reserve_port(100, 8);
  m.reserve_port(100, 8);
  const auto snap = m.snapshot();
  m.reserve_port(108, 8);  // branch traffic
  m.restore(snap);
  EXPECT_EQ(m.port_stats().reservations, 2u);
  EXPECT_EQ(m.port_stats().wait_cycles, 8u);
  EXPECT_EQ(m.port_stats().busy_cycles, 16u);
  // And the port clock itself rolled back with the stats.
  EXPECT_EQ(m.reserve_port(100, 1), 116u);
}

TEST(MemModule, DrainAllAndHash) {
  MemModule a("a", 0, 64), b("b", 0, 64);
  const uint32_t v = 3;
  a.post_write(1000, 0, &v, 4);
  b.post_write(1000, 0, &v, 4);
  a.drain_all();
  b.drain_all();
  EXPECT_EQ(a.pending_writes(), 0u);
  EXPECT_EQ(a.content_hash(), b.content_hash());
}

}  // namespace
}  // namespace pmc::sim
