// Memory module: storage, in-flight writes, arrival ordering, atomics.
#include "sim/mem_module.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pmc::sim {
namespace {

TEST(MemModule, ReadBackWrites) {
  MemModule m("m", 0x1000, 256);
  const uint32_t v = 0xdeadbeef;
  m.write(0, 0x1010, &v, 4);
  uint32_t out = 0;
  m.read(0, 0x1010, &out, 4);
  EXPECT_EQ(out, v);
}

TEST(MemModule, PendingWriteInvisibleBeforeArrival) {
  MemModule m("m", 0, 64);
  const uint32_t v = 7;
  m.post_write(/*arrival=*/100, 0, &v, 4);
  uint32_t out = 1;
  m.read(99, 0, &out, 4);
  EXPECT_EQ(out, 0u);  // not yet arrived
  m.read(100, 0, &out, 4);
  EXPECT_EQ(out, 7u);
}

TEST(MemModule, PendingWritesApplyInArrivalOrder) {
  MemModule m("m", 0, 64);
  const uint32_t a = 1, b = 2;
  // Posted in one order, arriving in the other — the Fig. 1 mechanism.
  m.post_write(200, 0, &a, 4);
  m.post_write(150, 0, &b, 4);
  uint32_t out = 0;
  m.read(175, 0, &out, 4);
  EXPECT_EQ(out, 2u);
  m.read(250, 0, &out, 4);
  EXPECT_EQ(out, 1u);
}

TEST(MemModule, SameArrivalOrderedBySequence) {
  MemModule m("m", 0, 64);
  const uint32_t a = 1, b = 2;
  m.post_write(100, 0, &a, 4);
  m.post_write(100, 0, &b, 4);
  uint32_t out = 0;
  m.read(100, 0, &out, 4);
  EXPECT_EQ(out, 2u);  // later post wins the tie
}

TEST(MemModule, LocalWriteAppliesPendingFirst) {
  MemModule m("m", 0, 64);
  const uint32_t remote = 9, local = 5;
  m.post_write(10, 0, &remote, 4);
  m.write(20, 0, &local, 4);  // after the arrival: local value stands
  uint32_t out = 0;
  m.read(20, 0, &out, 4);
  EXPECT_EQ(out, 5u);
}

TEST(MemModule, LateArrivalOverwritesLocalWrite) {
  MemModule m("m", 0, 64);
  const uint32_t remote = 9, local = 5;
  m.post_write(50, 0, &remote, 4);
  m.write(20, 0, &local, 4);
  uint32_t out = 0;
  m.read(60, 0, &out, 4);
  EXPECT_EQ(out, 9u);  // in-flight write lands later: it wins
}

TEST(MemModule, AtomicSwapAndAdd) {
  MemModule m("m", 0, 64);
  EXPECT_EQ(m.atomic_swap_u32(0, 0, 11), 0u);
  EXPECT_EQ(m.atomic_swap_u32(1, 0, 22), 11u);
  EXPECT_EQ(m.atomic_add_u32(2, 0, 5), 22u);
  uint32_t out = 0;
  m.read(3, 0, &out, 4);
  EXPECT_EQ(out, 27u);
}

TEST(MemModule, PortReservationSerializes) {
  MemModule m("m", 0, 64);
  EXPECT_EQ(m.reserve_port(100, 8), 100u);
  EXPECT_EQ(m.reserve_port(100, 8), 108u);  // port busy until 108
  EXPECT_EQ(m.reserve_port(200, 8), 200u);  // idle gap
}

TEST(MemModule, OutOfRangeAccessIsChecked) {
  MemModule m("m", 0x100, 16);
  uint32_t v = 0;
  EXPECT_THROW(m.read(0, 0x0fc, &v, 4), util::CheckFailure);
  EXPECT_THROW(m.read(0, 0x10e, &v, 4), util::CheckFailure);
  EXPECT_FALSE(m.contains(0x10e, 4));
  EXPECT_TRUE(m.contains(0x10c, 4));
}

TEST(MemModule, DrainAllAndHash) {
  MemModule a("a", 0, 64), b("b", 0, 64);
  const uint32_t v = 3;
  a.post_write(1000, 0, &v, 4);
  b.post_write(1000, 0, &v, 4);
  a.drain_all();
  b.drain_all();
  EXPECT_EQ(a.pending_writes(), 0u);
  EXPECT_EQ(a.content_hash(), b.content_hash());
}

}  // namespace
}  // namespace pmc::sim
