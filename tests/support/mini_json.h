// Minimal strict JSON validity checker for the observability suites: just
// enough grammar (objects, arrays, strings with escapes, numbers, literals)
// to prove an exported document parses, with none of a real parser's value
// model. Test-only; production code never round-trips JSON.
#pragma once

#include <cctype>
#include <string_view>

namespace pmc::test_support {

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : s_(text) {}

  /// True iff the whole input is exactly one valid JSON value.
  bool valid() {
    ws();
    if (!value()) return false;
    ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return lit("true");
      case 'f': return lit("false");
      case 'n': return lit("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    ws();
    if (peek('}')) { ++pos_; return true; }
    while (true) {
      ws();
      if (!string()) return false;
      ws();
      if (!expect(':')) return false;
      ws();
      if (!value()) return false;
      ws();
      if (peek(',')) { ++pos_; continue; }
      return expect('}');
    }
  }

  bool array() {
    ++pos_;  // '['
    ws();
    if (peek(']')) { ++pos_; return true; }
    while (true) {
      ws();
      if (!value()) return false;
      ws();
      if (peek(',')) { ++pos_; continue; }
      return expect(']');
    }
  }

  bool string() {
    if (!expect('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    return expect('"');
  }

  bool number() {
    const size_t start = pos_;
    if (peek('-')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool lit(std::string_view what) {
    if (s_.substr(pos_, what.size()) != what) return false;
    pos_ += what.size();
    return true;
  }

  void ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool peek(char c) const { return pos_ < s_.size() && s_[pos_] == c; }

  bool expect(char c) {
    if (!peek(c)) return false;
    ++pos_;
    return true;
  }

  std::string_view s_;
  size_t pos_ = 0;
};

inline bool json_valid(std::string_view text) {
  return JsonChecker(text).valid();
}

}  // namespace pmc::test_support
