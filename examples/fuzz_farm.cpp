// fuzz_farm: the long-running coverage-guided fuzzing farm (DESIGN.md §14).
//
// Drains a (seed, back-end) work queue against the persistent hb-class
// corpus: every exec model-checks one generated program on one back-end
// through the CheckSession differential oracle, new hb-classes promote the
// program into the corpus, and energy-weighted mutation breeds the next
// generation from the most productive parents. Stop any time; --resume
// continues from the saved corpus with the coverage-growth curve intact.
//
//   fuzz_farm --corpus=corpus --time=30 --jobs=2 --backend=all
//   fuzz_farm --corpus=corpus --time=10 --resume       # keeps growing
//   fuzz_farm --max-execs=120 --seed=7 --jobs=1        # deterministic run
//   fuzz_farm --no-mutate --max-execs=120 --seed=7     # blind baseline
//   fuzz_farm --seed-bug --corpus=soak --time=30       # self-test soak
//   fuzz_farm --crash=corpus/crash_0.json              # replay a mutant repro
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_common.h"
#include "explore/check.h"
#include "explore/litmus_driver.h"
#include "fuzz/farm.h"
#include "fuzz/seed_plan.h"
#include "runtime/backends/registry.h"
#include "util/check.h"

using namespace pmc;
using bench::flag_int;
using bench::flag_set;
using bench::flag_str;

namespace {

std::vector<rt::Target> parse_backends(const char* arg) {
  if (arg == nullptr || std::strcmp(arg, "all") == 0) {
    return rt::sim_targets();
  }
  const auto target = rt::target_from_string(arg);
  if (!target || !rt::is_sim(*target)) {
    std::fprintf(stderr, "unknown back-end '%s' (want %s|all)\n", arg,
                 rt::backend_names().c_str());
    std::exit(2);
  }
  return {*target};
}

/// --crash=FILE: replay a persisted mutant failure (the repro line the farm
/// prints for programs no seed regenerates). Exit 0 when the failure still
/// reproduces — the crash file exists because the run *should* fail.
int run_crash(const char* path, const explore::SessionOptions& sopts) {
  const fuzz::CrashReport crash = fuzz::load_crash(path);
  rt::FaultInjection faults;
  for (const std::string& name : crash.faults) faults.enable(name);
  const explore::GenProgramTarget target(crash.program, crash.target, faults);
  const explore::CheckSession session(sopts);
  bool applied = false;
  const explore::RunOutcome out =
      session.replay(target, crash.schedule, &applied);
  std::printf("%s, schedule \"%s\":\n%s", target.name().c_str(),
              explore::to_string(crash.schedule).c_str(),
              explore::to_string(crash.program).c_str());
  if (!applied) {
    std::fprintf(stderr, "schedule never fully applied — stale crash file?\n");
    return 2;
  }
  std::printf("verdict: %s\n", out.ok ? "model-valid (did NOT reproduce)"
                                      : out.message.c_str());
  std::printf("recorded: %s\n", crash.message.c_str());
  return out.ok ? 1 : 0;
}

int run_main(int argc, char** argv) {
  explore::SessionOptions sopts = fuzz::default_farm_session();
  sopts.explore.preemption_bound = static_cast<int>(
      flag_int(argc, argv, "preemptions", sopts.explore.preemption_bound));
  sopts.explore.horizon = static_cast<uint64_t>(flag_int(
      argc, argv, "horizon", static_cast<int64_t>(sopts.explore.horizon)));
  sopts.explore.max_schedules = static_cast<uint64_t>(
      flag_int(argc, argv, "max-schedules",
               static_cast<int64_t>(sopts.explore.max_schedules)));
  if (const char* d = flag_str(argc, argv, "dpor", nullptr)) {
    const auto mode = explore::dpor_mode_from_string(d);
    if (!mode) {
      std::fprintf(stderr,
                   "unknown --dpor mode '%s' (want off|footprint|sleepset)\n",
                   d);
      return 2;
    }
    sopts.explore.dpor = *mode;
  }

  if (const char* crash = flag_str(argc, argv, "crash", nullptr)) {
    return run_crash(crash, sopts);
  }

  fuzz::FarmOptions fopts;
  fopts.session = sopts;
  if (const char* dir = flag_str(argc, argv, "corpus", nullptr)) {
    fopts.corpus_dir = dir;
  }
  fopts.seconds = static_cast<double>(flag_int(argc, argv, "time", 0));
  fopts.max_execs =
      static_cast<uint64_t>(flag_int(argc, argv, "max-execs", 0));
  fopts.jobs = static_cast<int>(flag_int(argc, argv, "jobs", 1));
  fopts.backends = parse_backends(flag_str(argc, argv, "backend", nullptr));
  fopts.seed = static_cast<uint64_t>(flag_int(argc, argv, "seed", 0));
  fopts.mutate = !flag_set(argc, argv, "no-mutate");
  fopts.resume = flag_set(argc, argv, "resume");
  // --seeds=N beats PMC_FUZZ_SEEDS beats the default width (seed_plan.h).
  const fuzz::SeedPlan plan =
      fuzz::SeedPlan::resolve(8, flag_int(argc, argv, "seeds", -1));
  fopts.initial_seeds = plan.count;
  fopts.seed_base = plan.base;
  if (flag_set(argc, argv, "seed-bug")) {
    fopts.faults = explore::all_seeded_faults();
  }
  if (!flag_set(argc, argv, "quiet")) {
    fopts.progress = [](const std::string& line) {
      std::printf("%s\n", line.c_str());
      std::fflush(stdout);
    };
  }
  if (fopts.seconds <= 0 && fopts.max_execs == 0) {
    std::fprintf(stderr,
                 "usage: fuzz_farm --time=S | --max-execs=N  [--corpus=DIR "
                 "--jobs=N --backend=%s|all --seed=N --seeds=N --resume "
                 "--no-mutate --seed-bug --json[=PATH] --quiet]\n"
                 "       fuzz_farm --crash=FILE   # replay a crash file\n",
                 rt::backend_names().c_str());
    return 2;
  }
  {
    // Machine-requirement gate (DESIGN.md §13): the farm runs on the default
    // exploration machine, so reject a back-end it cannot host up front.
    const sim::MachineConfig gate;
    for (const rt::Target t : fopts.backends) {
      const std::string err =
          rt::check_machine(rt::descriptor(rt::backend_kind(t)), gate);
      if (!err.empty()) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 2;
      }
    }
  }

  std::printf("fuzz farm: %s, %d job(s), %zu back-end(s), seed %llu, "
              "initial seeds %llu+%llu (%s)%s%s\n",
              fopts.mutate ? "coverage-guided mutation" : "blind seeding",
              fopts.jobs, fopts.backends.size(),
              static_cast<unsigned long long>(fopts.seed),
              static_cast<unsigned long long>(fopts.seed_base),
              static_cast<unsigned long long>(fopts.initial_seeds),
              to_string(plan.source),
              fopts.faults.any() ? ", seeded faults injected" : "",
              fopts.resume ? ", resuming" : "");

  fuzz::Farm farm(fopts);
  const fuzz::FarmResult res = farm.run();

  std::printf("\n%llu exec(s) in %.1fs (%.1f/s), %llu schedule(s), "
              "%llu dpor-pruned\n"
              "hb-classes: +%llu new this run, %llu total across %zu "
              "back-end(s); corpus %llu entr%s\n",
              static_cast<unsigned long long>(res.execs), res.seconds,
              res.seconds > 0 ? static_cast<double>(res.execs) / res.seconds
                              : 0.0,
              static_cast<unsigned long long>(res.schedules),
              static_cast<unsigned long long>(res.dpor_pruned),
              static_cast<unsigned long long>(res.new_classes),
              static_cast<unsigned long long>(res.total_classes),
              farm.corpus().classes().size(),
              static_cast<unsigned long long>(res.corpus_size),
              res.corpus_size == 1 ? "y" : "ies");
  for (const fuzz::FarmFailure& f : res.failures) {
    std::printf("!! %s: schedule \"%s\": %s\n   %s\n   minimized program:\n%s",
                rt::to_string(f.target),
                explore::to_string(f.schedule).c_str(), f.message.c_str(),
                f.repro.c_str(), explore::to_string(f.program).c_str());
  }

  bench::JsonReport json("fuzz");
  json.add("execs", res.execs);
  json.add("seconds", res.seconds);
  json.add("new_classes", res.new_classes);
  json.add("total_classes", res.total_classes);
  json.add("corpus_entries", res.corpus_size);
  json.add("schedules", res.schedules);
  json.add("failures", static_cast<uint64_t>(res.failures.size()));
  json.add("mutate", static_cast<uint64_t>(fopts.mutate ? 1 : 0));
  if (!res.growth.empty()) {
    json.add("growth_samples", static_cast<uint64_t>(res.growth.size()));
    json.add("growth_final_execs", res.growth.back().first);
    json.add("growth_final_classes", res.growth.back().second);
  }
  if (!json.maybe_write(argc, argv)) return 1;

  if (fopts.faults.any()) {
    // Self-test soak: injected protocol faults MUST surface as minimized,
    // replayable failures through the farm path.
    if (res.failures.empty()) {
      std::printf("!! seeded faults were injected but the farm found none\n");
      return 1;
    }
    std::printf("\nseeded faults found and minimized: %zu distinct "
                "failure(s).\n",
                res.failures.size());
    return 0;
  }
  if (!res.failures.empty()) return 1;
  std::printf("\nno oracle violations; coverage curve has %zu point(s).\n",
              res.growth.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A named contract violation (bad corpus file, impossible back-end
  // selection) is a clean usage error: print it and exit 2 for CI to grep.
  try {
    return run_main(argc, argv);
  } catch (const util::CheckFailure& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
