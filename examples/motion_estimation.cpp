// The Fig. 10 scratch-pad case study as a standalone program: motion
// estimation with ScopeRO/ScopeX RAII annotations on the SPM back-end,
// with the SWCC and no-CC timings for comparison.
#include <cstdio>

#include "apps/motion_est.h"
#include "util/table.h"

using namespace pmc;
using namespace pmc::apps;

int main() {
  MotionConfig cfg;
  cfg.blocks_x = 4;
  cfg.blocks_y = 4;
  cfg.block = 8;
  cfg.search = 8;

  util::Table table;
  table.add_row({"back-end", "makespan (cycles)", "vectors correct"});
  uint64_t spm_cycles = 0, swcc_cycles = 0;
  for (rt::Target target :
       {rt::Target::kSPM, rt::Target::kSWCC, rt::Target::kNoCC}) {
    MotionEst app(cfg);
    ProgramOptions opts;
    opts.target = target;
    opts.cores = 8;
    opts.machine.lm_bytes = 128 * 1024;
    opts.machine.max_cycles = UINT64_C(8'000'000'000);
    opts.validate = false;
    app.tune(opts);
    rt::Program prog(opts);
    app.build(prog);
    prog.run([&](rt::Env& env) { app.body(env); });
    uint64_t makespan = 0;
    for (int c = 0; c < opts.cores; ++c) {
      makespan =
          std::max(makespan, prog.machine()->stats(c).cycles_total);
    }
    bool correct = true;
    const auto found = app.found(prog);
    for (size_t i = 0; i < found.size(); ++i) {
      correct &= found[i].dx == app.expected()[i].dx &&
                 found[i].dy == app.expected()[i].dy;
    }
    if (target == rt::Target::kSPM) spm_cycles = makespan;
    if (target == rt::Target::kSWCC) swcc_cycles = makespan;
    char c[32];
    std::snprintf(c, sizeof c, "%llu",
                  static_cast<unsigned long long>(makespan));
    table.add_row({rt::to_string(target), c, correct ? "yes" : "NO"});
  }
  std::printf("motion estimation, %dx%d blocks of %d px, search +-%d:\n\n%s\n",
              cfg.blocks_x, cfg.blocks_y, cfg.block, cfg.search,
              table.render().c_str());
  std::printf("SPM speedup over SWCC: %.2fx (the paper's 'significant "
              "performance increase', Section VI-C)\n",
              static_cast<double>(swcc_cycles) /
                  static_cast<double>(spm_cycles));
  return 0;
}
