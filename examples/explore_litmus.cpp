// explore_litmus: the one explorer front-end — model-check litmus tests,
// generated fuzz programs, and apps-layer kernels across interleavings.
//
// Every mode drives a CheckTarget through the CheckSession facade
// (DESIGN.md §9): the session owns bounds, DPOR mode, engine selection
// (--jobs), and failure minimization, so reports are deterministic at any
// job count. Clean modes must find zero failures; --seed-bug injects the
// per-back-end "missing flush" fault that only reordered schedules expose,
// and the session must find, minimize, and replay it.
//
//   explore_litmus --backend=swcc --preemptions=2 --horizon=24 --jobs=4
//   explore_litmus --dpor=sleepset --seed-bug --backend=all
//   explore_litmus --backend=dsm --test=fig4_exclusive --replay=3:1,4:1
//   explore_litmus --app=mfifo --backend=all --dpor=sleepset
//   explore_litmus --app=all --seed-bug --dpor=sleepset
//   explore_litmus --engine-state=replay --backend=swcc  # stateless cross-check
//   explore_litmus --fuzz=8 --jobs=2 --json
//   explore_litmus --fuzz-seed=3 --backend=swcc --replay=2:1
//   explore_litmus --progress --backend=swcc   # live schedules/s + ETA line
//   explore_litmus --seed-bug --backend=dsm --trace-out=fault.json
//   explore_litmus --backend=dsm --test=fig4_exclusive --replay=3:1
//       --trace-out=run.json           # cycle trace for ui.perfetto.dev
//   explore_litmus --outcomes          # model-level reachable-outcome table
//   explore_litmus --dot               # Fig. 5 execution graph as Graphviz
//   explore_litmus --config=bench/configs/mesh64.cfg --backend=swcc
//       --preemptions=1                # explore on a described machine
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>

#include "bench/bench_common.h"
#include "explore/check.h"
#include "explore/diff_check.h"
#include "explore/litmus_driver.h"
#include "fuzz/seed_plan.h"
#include "model/execution.h"
#include "model/litmus_library.h"
#include "obs/trace.h"
#include "runtime/backends/registry.h"
#include "util/check.h"
#include "util/table.h"

using namespace pmc;
using bench::flag_int;
using bench::flag_set;
using bench::flag_str;

namespace {

std::vector<rt::Target> parse_backends(const char* arg) {
  if (arg == nullptr || std::strcmp(arg, "all") == 0) {
    return rt::sim_targets();
  }
  const auto target = rt::target_from_string(arg);
  if (!target || !rt::is_sim(*target)) {
    std::fprintf(stderr, "unknown back-end '%s' (want %s|all)\n", arg,
                 rt::backend_names().c_str());
    std::exit(2);
  }
  return {*target};
}

std::vector<explore::AppKind> parse_apps(const char* arg) {
  if (std::strcmp(arg, "all") == 0) return explore::all_app_kinds();
  const auto kind = explore::app_kind_from_string(arg);
  if (!kind) {
    std::fprintf(stderr, "unknown app '%s' (want mfifo|taskcounter|all)\n",
                 arg);
    std::exit(2);
  }
  return {*kind};
}

/// --dpor[=off|footprint|sleepset]; the bare flag means sleepset (the full
/// reduction — DESIGN.md §8).
explore::DporMode parse_dpor(int argc, char** argv) {
  if (const char* d = flag_str(argc, argv, "dpor", nullptr)) {
    const auto mode = explore::dpor_mode_from_string(d);
    if (!mode) {
      std::fprintf(stderr, "unknown --dpor mode '%s' "
                   "(want off|footprint|sleepset)\n", d);
      std::exit(2);
    }
    return *mode;
  }
  return flag_set(argc, argv, "dpor") ? explore::DporMode::kSleepSet
                                      : explore::DporMode::kOff;
}

/// --engine-state=replay|snapshot selects how schedules execute: full
/// re-execution from a fresh program (replay) or forking from machine
/// snapshots (snapshot, the default — DESIGN.md §10). Reports are
/// byte-identical either way; only the wall clock differs.
explore::EngineState parse_engine_state(int argc, char** argv) {
  const char* arg = flag_str(argc, argv, "engine-state", nullptr);
  if (arg == nullptr) return explore::SessionOptions{}.engine_state;
  const auto state = explore::engine_state_from_string(arg);
  if (!state) {
    std::fprintf(stderr, "unknown --engine-state '%s' (want replay|snapshot)\n",
                 arg);
    std::exit(2);
  }
  return *state;
}

/// Shape for --fuzz/--fuzz-seed: canonical per-seed shape, with optional
/// explicit overrides (the knobs repro lines print).
explore::ProgramShape fuzz_shape(uint64_t seed, int argc, char** argv) {
  explore::ProgramShape shape = explore::shape_for_seed(seed);
  if (const int64_t v = flag_int(argc, argv, "fuzz-cores", 0)) {
    shape.cores = static_cast<int>(v);
  }
  if (const int64_t v = flag_int(argc, argv, "fuzz-objects", 0)) {
    shape.objects = static_cast<int>(v);
  }
  if (const int64_t v = flag_int(argc, argv, "fuzz-steps", 0)) {
    shape.steps = static_cast<int>(v);
  }
  return shape;
}

/// Writes the recorder's buffer as a Chrome trace-event JSON file; load it
/// at https://ui.perfetto.dev.
bool write_trace(const obs::TraceRecorder& rec, const char* path) {
  const std::string doc = obs::chrome_trace_json(rec);
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write trace file %s\n", path);
    return false;
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  std::printf("trace: %zu event(s)%s -> %s (load at https://ui.perfetto.dev)\n",
              rec.size(),
              rec.dropped() != 0
                  ? (" (+" + std::to_string(rec.dropped()) + " dropped)").c_str()
                  : "",
              path);
  return true;
}

int run_replay(const explore::CheckSession& session,
               const explore::CheckTarget& target, const char* backend,
               const char* decisions, const char* trace_out) {
  explore::DecisionString ds;
  try {
    ds = explore::parse_decision_string(decisions);
  } catch (const util::CheckFailure& e) {
    std::fprintf(stderr, "bad --replay string: %s\n", e.what());
    return 2;
  }
  bool applied = false;
  obs::TraceRecorder rec;
  const auto out = trace_out != nullptr
                       ? session.replay_traced(target, ds, &rec, &applied)
                       : session.replay(target, ds, &applied);
  if (!applied) {
    std::fprintf(stderr,
                 "schedule \"%s\" does not match this program: some "
                 "override(s) never applied — wrong --test/--backend, or the "
                 "string is stale\n",
                 explore::to_string(ds).c_str());
    return 2;
  }
  if (trace_out != nullptr && !write_trace(rec, trace_out)) return 2;
  std::printf("%s on %s, schedule \"%s\": %s\n", target.name().c_str(),
              backend, explore::to_string(ds).c_str(),
              out.ok ? "model-valid" : out.message.c_str());
  return out.ok ? 0 : 1;
}

int run_seed_bug(rt::Target target, const explore::CheckSession& session,
                 bench::JsonReport& json, const char* trace_out) {
  if (!explore::has_seeded_fault(target)) {
    std::printf("%-6s no seedable protocol fault (no-CC has no coherence "
                "actions to omit) — skipped\n",
                rt::to_string(target));
    return 0;
  }
  const explore::LitmusTarget check = explore::seeded_bug_check(target);
  // The fault hides under the default schedule; exploration must expose it.
  if (!session.replay(check, {}).ok) {
    std::printf("%-6s unexpected: fault already visible under the default "
                "schedule\n",
                rt::to_string(target));
    return 1;
  }
  const explore::CheckReport rep = session.check(check);
  if (rep.failing == 0) {
    std::printf("%-6s FAILED to find the seeded fault in %llu schedules\n",
                rt::to_string(target),
                static_cast<unsigned long long>(rep.explored));
    return 1;
  }
  // Confirm the minimized schedule with an explicit replay verdict rather
  // than inferring it from message emptiness.
  const auto confirm = session.replay(check, rep.minimized_schedule);
  std::printf(
      "%-6s seeded fault: %llu of %llu explored schedules failing\n"
      "       canonical failing schedule: \"%s\" (lexicographic minimum)\n"
      "       minimized to:               \"%s\" (%zu preemption(s))\n"
      "       replay: %s\n",
      rt::to_string(target), static_cast<unsigned long long>(rep.failing),
      static_cast<unsigned long long>(rep.explored),
      explore::to_string(rep.first_failing).c_str(),
      explore::to_string(rep.minimized_schedule).c_str(),
      rep.minimized_schedule.size(),
      confirm.ok ? "UNEXPECTEDLY VALID" : confirm.message.c_str());
  const std::string key = std::string("seedbug_") + rt::to_string(target);
  json.add(key + "_failing", rep.failing);
  json.add(key + "_explored", rep.explored);
  if (trace_out != nullptr) {
    // Re-run the minimized failing schedule with the cycle recorder armed:
    // the exported timeline shows the protocol fault the fuzzer found
    // (e.g. the skipped flush) as it unfolds across the cores.
    obs::TraceRecorder rec;
    session.replay_traced(check, rep.minimized_schedule, &rec);
    if (!write_trace(rec, trace_out)) return 1;
  }
  return confirm.ok ? 1 : 0;
}

int run_apps(const std::vector<explore::AppKind>& kinds,
             const std::vector<rt::Target>& backends, bool seed_bug,
             const explore::CheckSession& session, bench::JsonReport& json) {
  const auto& cfg = session.options().explore;
  std::printf("apps-layer model checking: preemptions<=%d, horizon=%llu, "
              "jobs=%d, dpor=%s%s\n\n",
              cfg.preemption_bound,
              static_cast<unsigned long long>(cfg.horizon),
              session.options().jobs, explore::to_string(cfg.dpor),
              seed_bug ? ", seeded faults injected" : "");
  const rt::FaultInjection faults =
      seed_bug ? explore::all_seeded_faults() : rt::FaultInjection{};
  bool any_faultable = false;
  for (const rt::Target t : backends) {
    any_faultable = any_faultable || explore::has_seeded_fault(t);
  }
  if (seed_bug && !any_faultable) {
    // Mirror the litmus seed-bug mode: a selection with nothing to fault
    // (no-CC only) is a clean skip, not a failure to find.
    std::printf("no selected back-end has a seedable protocol fault — "
                "skipped\n");
    return 0;
  }
  util::Table table;
  table.add_row({"app", "back-end", "explored", "pruned", "dpor-pruned",
                 "traces", "failing"});
  int rc = 0;
  for (const explore::AppKind kind : kinds) {
    // In seed-bug mode each app must expose a seeded fault on at least one
    // faultable back-end (which fault a given kernel can observe at these
    // small bounds differs per protocol).
    bool found_for_app = false;
    for (const rt::Target t : backends) {
      const auto target = explore::make_app_target(kind, t, faults);
      const explore::CheckReport rep = session.check(*target);
      table.add_row({explore::to_string(kind), rt::to_string(t),
                     std::to_string(rep.explored) + (rep.truncated ? "+" : ""),
                     std::to_string(rep.pruned),
                     std::to_string(rep.dpor_pruned),
                     std::to_string(rep.distinct_traces),
                     std::to_string(rep.failing)});
      const std::string key = std::string("app_") + explore::to_string(kind) +
                              "_" + rt::to_string(t);
      json.add(key + "_explored", rep.explored);
      json.add(key + "_dpor_pruned", rep.dpor_pruned);
      json.add(key + "_traces", rep.distinct_traces);
      json.add(key + "_failing", rep.failing);
      const bool expect_failure = seed_bug && explore::has_seeded_fault(t);
      if (!expect_failure && rep.failing != 0) {
        rc = 1;
        std::printf("!! %s: schedule \"%s\": %s\n", rep.target.c_str(),
                    explore::to_string(rep.first_failing).c_str(),
                    rep.first_failing_message.c_str());
      }
      if (expect_failure && rep.failing != 0) {
        found_for_app = true;
        std::printf("%s seeded fault: %llu of %llu failing, minimized to "
                    "\"%s\": %s\n",
                    rep.target.c_str(),
                    static_cast<unsigned long long>(rep.failing),
                    static_cast<unsigned long long>(rep.explored),
                    explore::to_string(rep.minimized_schedule).c_str(),
                    rep.minimized_message.c_str());
      }
    }
    if (seed_bug && !found_for_app) {
      std::printf("!! %s: no seeded fault exposed on any back-end\n",
                  explore::to_string(kind));
      rc = 1;
    }
  }
  std::printf("%s", table.render().c_str());
  return rc;
}

int run_fuzz(uint64_t base_seed, uint64_t count, bool seed_bug,
             const std::vector<rt::Target>& backends,
             const explore::SessionOptions& sopts, int argc, char** argv,
             bench::JsonReport& json) {
  const explore::ExploreConfig& cfg = sopts.explore;
  const int jobs = sopts.jobs;
  const rt::FaultInjection faults =
      seed_bug ? explore::all_seeded_faults() : rt::FaultInjection{};
  std::printf("differential fuzzing: %llu program(s) from seed %llu, "
              "preemptions<=%d, horizon=%llu, jobs=%d%s\n\n",
              static_cast<unsigned long long>(count),
              static_cast<unsigned long long>(base_seed), cfg.preemption_bound,
              static_cast<unsigned long long>(cfg.horizon), jobs,
              seed_bug ? ", seeded faults injected" : "");
  util::Table table;
  table.add_row({"seed", "cores", "ops", "explored", "pruned", "traces",
                 "result"});
  uint64_t total_explored = 0;
  uint64_t total_pruned = 0;
  uint64_t failures = 0;
  int rc = 0;
  for (uint64_t s = base_seed; s < base_seed + count; ++s) {
    const explore::GenProgram prog =
        explore::generate_program(fuzz_shape(s, argc, argv));
    const explore::DiffCheck dc(prog, faults);
    const explore::DiffReport rep = dc.check(sopts, backends);
    total_explored += rep.explored;
    total_pruned += rep.pruned;
    table.add_row({std::to_string(s), std::to_string(prog.shape.cores),
                   std::to_string(prog.ops()),
                   std::to_string(rep.explored) + (rep.truncated ? "+" : ""),
                   std::to_string(rep.pruned),
                   std::to_string(rep.distinct_traces),
                   rep.ok ? "ok" : "FAIL"});
    if (!rep.ok) {
      ++failures;
      rc = seed_bug ? rc : 1;
      const explore::DiffFailure& f = *rep.failure;
      std::printf("!! seed %llu on %s: schedule \"%s\": %s\n   %s\n"
                  "   minimized program:\n%s",
                  static_cast<unsigned long long>(s),
                  rt::to_string(f.target),
                  explore::to_string(f.schedule).c_str(), f.message.c_str(),
                  f.repro.c_str(), explore::to_string(f.program).c_str());
    }
  }
  std::printf("%s", table.render().c_str());
  json.add("fuzz_programs", count);
  json.add("fuzz_explored", total_explored);
  json.add("fuzz_pruned", total_pruned);
  json.add("fuzz_failures", failures);
  if (seed_bug && failures == 0) {
    std::printf("\n!! seeded faults were injected but no program failed\n");
    return 1;
  }
  std::printf(seed_bug
                  ? "\nseeded faults found by differential fuzzing on %llu of "
                    "%llu program(s).\n"
                  : "\n%llu of %llu program(s) failing.\n",
              static_cast<unsigned long long>(failures),
              static_cast<unsigned long long>(count));
  return rc;
}

// -- Model-level enumeration (the folded-in litmus_explorer) -----------------

void show_outcomes(const model::LitmusTest& test) {
  std::printf("%-28s", test.name.c_str());
  for (model::IssueMode mode :
       {model::IssueMode::kProgramOrder, model::IssueMode::kWeakIssue}) {
    model::ExploreOptions opts;
    opts.mode = mode;
    opts.weak_window = 4;
    const auto res = model::explore(test, opts);
    std::printf("  %s:",
                mode == model::IssueMode::kProgramOrder ? "in-order" : "weak");
    for (const auto& outcome : res.outcomes) {
      std::printf(" {");
      for (size_t i = 0; i < outcome.size(); ++i) {
        std::printf("%s%llu", i ? "," : "",
                    static_cast<unsigned long long>(outcome[i]));
      }
      std::printf("}");
    }
    if (res.race_observed) std::printf(" [racy]");
  }
  std::printf("\n");
}

int run_outcomes() {
  std::printf("reachable outcomes per litmus test (registers in braces):\n\n");
  for (const auto& test : model::litmus::all_tests()) {
    show_outcomes(test);
  }
  std::printf(
      "\nreading the table:\n"
      " * fig1_mp_plain: {0} reachable — the stale read of the motivating "
      "example;\n"
      " * fig5_mp_annotated: only {42} — annotations forbid the stale "
      "outcome in both modes;\n"
      " * fig5_mp_no_reader_fence: {0} reappears under weak issue — the "
      "fence at Fig. 5 line 11 is essential;\n"
      " * fig5_mp_no_writer_fence: identical to the annotated test — the "
      "line 3 fence is redundant in the model;\n"
      " * sb_locked: (0,0) unreachable — PMC behaves sequentially "
      "consistent for data-race-free programs (Section IV-E).\n"
      "\nrun with --dot for the Fig. 5 dependency graph in Graphviz form.\n");
  return 0;
}

int run_dot() {
  // Rebuild the Fig. 5 execution in its depicted interleaving and dump it.
  // (The legacy litmus_explorer passed a hard-coded OpId for the data
  // read's source, which had drifted from the op numbering and aborted;
  // capturing the writes' ids keeps the graph correct by construction.)
  model::Execution e(2, 2, {0, 0});
  e.acquire(0, 0);
  const model::OpId wx = e.write(0, 0, 42);
  e.fence(0);
  e.release(0, 0);
  e.acquire(0, 1);
  const model::OpId wf = e.write(0, 1, 1);
  e.release(0, 1);
  e.read(1, 1, 1, wf);
  e.fence(1);
  e.acquire(1, 0);
  e.read(1, 0, 42, wx);
  e.release(1, 0);
  std::printf("%s", e.to_dot().c_str());
  return 0;
}

int run_main(int argc, char** argv) {
  if (flag_set(argc, argv, "dot")) return run_dot();
  if (flag_set(argc, argv, "outcomes")) return run_outcomes();

  explore::SessionOptions sopts;
  explore::ExploreConfig& cfg = sopts.explore;
  cfg.preemption_bound =
      static_cast<int>(flag_int(argc, argv, "preemptions", 2));
  cfg.horizon = static_cast<uint64_t>(flag_int(argc, argv, "horizon", 24));
  if (cfg.horizon > explore::kMaxDecisionField) {
    // The replay parser bounds decision steps to kMaxDecisionField; a larger
    // horizon could emit failing schedules this tool then refuses to replay.
    std::fprintf(stderr, "--horizon=%llu exceeds the replayable bound %llu\n",
                 static_cast<unsigned long long>(cfg.horizon),
                 static_cast<unsigned long long>(explore::kMaxDecisionField));
    return 2;
  }
  cfg.max_schedules =
      static_cast<uint64_t>(flag_int(argc, argv, "max-schedules", 50'000));
  cfg.prune_delay = !flag_set(argc, argv, "no-prune");
  cfg.dpor = parse_dpor(argc, argv);
  sopts.jobs = static_cast<int>(flag_int(argc, argv, "jobs", 1));
  sopts.engine_state = parse_engine_state(argc, argv);
  sopts.snapshot_stride = static_cast<uint64_t>(flag_int(
      argc, argv, "snapshot-stride",
      static_cast<int64_t>(sopts.snapshot_stride)));
  sopts.snapshot_pool = static_cast<size_t>(flag_int(
      argc, argv, "snapshot-pool", static_cast<int64_t>(sopts.snapshot_pool)));
  if (flag_set(argc, argv, "progress")) {
    // Telemetry-only live line on stderr: schedules/s plus the worst-case
    // ETA against the --max-schedules bound (the space usually exhausts
    // earlier). The engines call this from worker threads; the shared
    // state is mutex-guarded and restarts the clock whenever the explored
    // counter rewinds (a new exploration began).
    struct ProgressClock {
      std::mutex mu;
      std::chrono::steady_clock::time_point start =
          std::chrono::steady_clock::now();
      uint64_t last = 0;
    };
    auto clk = std::make_shared<ProgressClock>();
    cfg.progress = [clk, bound = cfg.max_schedules](
                       const explore::ProgressUpdate& u) {
      std::lock_guard<std::mutex> lk(clk->mu);
      if (u.explored < clk->last) {
        clk->start = std::chrono::steady_clock::now();
      }
      clk->last = u.explored;
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        clk->start)
              .count();
      const double rate =
          secs > 0 ? static_cast<double>(u.explored) / secs : 0;
      const double eta = rate > 0 && bound > u.explored
                             ? static_cast<double>(bound - u.explored) / rate
                             : 0;
      std::fprintf(stderr,
                   "\r[explore] %llu/%llu schedules  %.0f/s  eta<=%.1fs  "
                   "hb-classes %llu  failing %llu   ",
                   static_cast<unsigned long long>(u.explored),
                   static_cast<unsigned long long>(bound), rate, eta,
                   static_cast<unsigned long long>(u.distinct_traces),
                   static_cast<unsigned long long>(u.failing));
      std::fflush(stderr);
    };
  }
  const int jobs = sopts.jobs;
  const auto backends = parse_backends(flag_str(argc, argv, "backend", nullptr));
  const char* test_filter = flag_str(argc, argv, "test", nullptr);
  const char* replay = flag_str(argc, argv, "replay", nullptr);
  const char* trace_out = flag_str(argc, argv, "trace-out", nullptr);
  const char* app = flag_str(argc, argv, "app", nullptr);
  const int64_t fuzz_count = flag_int(argc, argv, "fuzz", 0);
  const int64_t fuzz_seed = flag_int(argc, argv, "fuzz-seed", -1);
  const char* config_path = flag_str(argc, argv, "config", nullptr);
  std::optional<sim::MachineConfig> config_machine;
  if (config_path != nullptr) {
    try {
      config_machine = sim::MachineConfig::from_file(config_path);
    } catch (const util::CheckFailure& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  // Machine-requirement gate (DESIGN.md §13): reject a selected back-end the
  // machine cannot host *before* any exploration starts — one named error
  // instead of a per-test failure cascade.
  {
    const sim::MachineConfig gate =
        config_machine ? *config_machine : sim::MachineConfig{};
    for (const rt::Target t : backends) {
      const std::string err =
          rt::check_machine(rt::descriptor(rt::backend_kind(t)), gate);
      if (!err.empty()) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 2;
      }
    }
  }

  bench::JsonReport json("explore_litmus");
  json.add("jobs", jobs);
  json.add("dpor", std::string(explore::to_string(cfg.dpor)));
  json.add("engine_state",
           std::string(explore::to_string(sopts.engine_state)));

  // -- Apps-layer mode --------------------------------------------------------
  if (app != nullptr) {
    // App kernels take more decisions per schedule than a litmus test, so
    // the default bounds trade horizon for per-schedule depth; explicit
    // flags win.
    explore::SessionOptions aopts = sopts;
    aopts.explore.preemption_bound =
        static_cast<int>(flag_int(argc, argv, "preemptions", 1));
    aopts.explore.horizon =
        static_cast<uint64_t>(flag_int(argc, argv, "horizon", 14));
    json.add("preemptions", aopts.explore.preemption_bound);
    json.add("horizon", aopts.explore.horizon);
    const explore::CheckSession session(aopts);
    const int rc = run_apps(parse_apps(app), backends,
                            flag_set(argc, argv, "seed-bug"), session, json);
    return json.maybe_write(argc, argv) ? rc : 1;
  }

  // -- Differential fuzzing modes ---------------------------------------------
  if (fuzz_seed >= 0 && replay != nullptr) {
    // Replay one schedule of one generated program on one back-end: the
    // second half of every fuzz repro line.
    if (backends.size() != 1) {
      std::fprintf(stderr, "--fuzz-seed --replay needs --backend=\n");
      return 2;
    }
    const explore::GenProgram prog = explore::generate_program(
        fuzz_shape(static_cast<uint64_t>(fuzz_seed), argc, argv));
    const rt::FaultInjection faults = flag_set(argc, argv, "seed-bug")
                                          ? explore::all_seeded_faults()
                                          : rt::FaultInjection{};
    const explore::GenProgramTarget target(prog, backends[0], faults);
    const explore::CheckSession session(sopts);
    return run_replay(session, target, rt::to_string(backends[0]), replay,
                      trace_out);
  }
  if (fuzz_count > 0 || flag_set(argc, argv, "fuzz") || fuzz_seed >= 0) {
    // Fuzz defaults trade horizon for program count; explicit flags win.
    explore::SessionOptions fopts = sopts;
    fopts.explore.preemption_bound =
        static_cast<int>(flag_int(argc, argv, "preemptions", 1));
    fopts.explore.horizon =
        static_cast<uint64_t>(flag_int(argc, argv, "horizon", 10));
    const uint64_t base =
        fuzz_seed >= 0 ? static_cast<uint64_t>(fuzz_seed) : 0;
    // Seed-width precedence (fuzz/seed_plan.h): --fuzz=N beats
    // PMC_FUZZ_SEEDS beats the default. Bare --fuzz defers to the env var —
    // the CI/nightly widening knob — while --fuzz-seed=N alone stays a
    // single-program run.
    uint64_t count = 1;
    if (fuzz_count > 0 || flag_set(argc, argv, "fuzz")) {
      const fuzz::SeedPlan plan =
          fuzz::SeedPlan::resolve(10, fuzz_count > 0 ? fuzz_count : -1, base);
      count = plan.count;
      json.add("fuzz_seed_source", std::string(to_string(plan.source)));
    }
    json.add("preemptions", fopts.explore.preemption_bound);
    json.add("horizon", fopts.explore.horizon);
    const int rc = run_fuzz(base, count, flag_set(argc, argv, "seed-bug"),
                            backends, fopts, argc, argv, json);
    return json.maybe_write(argc, argv) ? rc : 1;
  }

  // -- Litmus modes -----------------------------------------------------------
  const explore::CheckSession session(sopts);
  json.add("preemptions", cfg.preemption_bound);
  json.add("horizon", cfg.horizon);
  if (flag_set(argc, argv, "seed-bug")) {
    int rc = 0;
    for (rt::Target t : backends) {
      rc |= run_seed_bug(t, session, json, trace_out);
    }
    return json.maybe_write(argc, argv) ? rc : 1;
  }

  auto tests = explore::annotatable_tests();
  if (test_filter != nullptr) {
    std::erase_if(tests, [&](const model::LitmusTest& t) {
      return t.name != test_filter;
    });
    if (tests.empty()) {
      std::fprintf(stderr, "no annotatable litmus test named '%s'\n",
                   test_filter);
      return 2;
    }
  }

  if (replay != nullptr) {
    if (backends.size() != 1 || tests.size() != 1) {
      std::fprintf(stderr, "--replay needs --backend= and --test=\n");
      return 2;
    }
    const explore::LitmusTarget target(tests[0], backends[0], {},
                                       config_machine);
    return run_replay(session, target, rt::to_string(target.target()), replay,
                      trace_out);
  }

  std::printf("schedule exploration: preemptions<=%d, horizon=%llu, "
              "jobs=%d, dpor=%s%s\n\n",
              cfg.preemption_bound,
              static_cast<unsigned long long>(cfg.horizon), jobs,
              explore::to_string(cfg.dpor),
              cfg.prune_delay ? "" : ", pruning off");
  util::Table table;
  table.add_row({"back-end", "test", "explored", "pruned", "dpor-pruned",
                 "traces", "failing"});
  int rc = 0;
  uint64_t failing_total = 0;
  for (rt::Target t : backends) {
    for (const auto& test : tests) {
      const explore::LitmusTarget target(test, t, {}, config_machine);
      const auto rep = session.explore(target);
      table.add_row({rt::to_string(t), test.name,
                     std::to_string(rep.explored) +
                         (rep.truncated ? "+" : ""),
                     std::to_string(rep.pruned),
                     std::to_string(rep.dpor_pruned),
                     std::to_string(rep.distinct_traces),
                     std::to_string(rep.failing)});
      // Per-(back-end, test) outcome set, so CI can assert the numbers
      // themselves rather than just the exit code.
      const std::string key =
          std::string(rt::to_string(t)) + "_" + test.name;
      json.add(key + "_explored", rep.explored);
      json.add(key + "_pruned", rep.pruned);
      json.add(key + "_dpor_pruned", rep.dpor_pruned);
      json.add(key + "_traces", rep.distinct_traces);
      json.add(key + "_failing", rep.failing);
      json.add(key + "_allowed_outcomes",
               static_cast<uint64_t>(target.allowed_outcomes()));
      failing_total += rep.failing;
      if (rep.failing != 0) {
        rc = 1;
        std::printf("!! %s on %s: schedule \"%s\": %s\n", test.name.c_str(),
                    rt::to_string(t),
                    explore::to_string(rep.first_failing).c_str(),
                    rep.first_failing_message.c_str());
      }
    }
  }
  std::printf("%s", table.render().c_str());
  json.add("failing_total", failing_total);
  std::printf(
      "\nevery explored schedule re-runs the program deterministically; a\n"
      "failing schedule is reproducible via --replay=<decision string>.\n");
  return json.maybe_write(argc, argv) ? rc : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // A named contract violation (e.g. a back-end whose machine requirements
  // the selected --config cannot satisfy) is a clean usage error, not an
  // abort: print the message and exit nonzero so CI can grep for it.
  try {
    return run_main(argc, argv);
  } catch (const util::CheckFailure& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
