// explore_litmus: model-check the Table II back-ends across interleavings.
//
// For each annotation-disciplined litmus test, enumerates scheduler
// interleavings (preemption-bounded, see DESIGN.md §6) and validates every
// resulting trace against the Definition 12 oracle plus the model's
// reachable-outcome set. Clean mode must find zero failures; --seed-bug
// injects the per-back-end "missing flush" fault that only reordered
// schedules expose, and the explorer must find, minimize, and replay it.
//
//   explore_litmus --backend=swcc --preemptions=2 --horizon=24
//   explore_litmus --seed-bug --backend=dsm
//   explore_litmus --backend=dsm --test=fig4_exclusive --replay=3:1,4:1
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_common.h"
#include "explore/litmus_driver.h"
#include "util/table.h"

using namespace pmc;
using bench::flag_int;
using bench::flag_set;
using bench::flag_str;

namespace {

std::vector<rt::Target> parse_backends(const char* arg) {
  if (arg == nullptr) return rt::sim_targets();
  const auto target = rt::target_from_string(arg);
  if (!target || !rt::is_sim(*target)) {
    std::fprintf(stderr, "unknown back-end '%s' (want nocc|swcc|dsm|spm)\n",
                 arg);
    std::exit(2);
  }
  return {*target};
}

int run_replay(const explore::LitmusCheck& check, const char* decisions,
               uint64_t horizon) {
  explore::Explorer ex(check.runner());
  const auto ds = explore::parse_decision_string(decisions);
  bool applied = false;
  const auto out = ex.replay(ds, horizon, &applied);
  if (!applied) {
    std::fprintf(stderr,
                 "schedule \"%s\" does not match this program: some "
                 "override(s) never applied — wrong --test/--backend, or the "
                 "string is stale\n",
                 explore::to_string(ds).c_str());
    return 2;
  }
  std::printf("%s on %s, schedule \"%s\": %s\n", check.test().name.c_str(),
              rt::to_string(check.target()),
              explore::to_string(ds).c_str(),
              out.ok ? "model-valid" : out.message.c_str());
  return out.ok ? 0 : 1;
}

int run_seed_bug(rt::Target target, const explore::ExploreConfig& cfg) {
  if (!explore::has_seeded_fault(target)) {
    std::printf("%-6s no seedable protocol fault (no-CC has no coherence "
                "actions to omit) — skipped\n",
                rt::to_string(target));
    return 0;
  }
  explore::LitmusCheck check = explore::seeded_bug_check(target);
  explore::Explorer ex(check.runner());
  // The fault hides under the default schedule; exploration must expose it.
  if (!ex.replay({}, cfg.horizon).ok) {
    std::printf("%-6s unexpected: fault already visible under the default "
                "schedule\n",
                rt::to_string(target));
    return 1;
  }
  const auto rep = ex.explore(cfg);
  if (rep.failing == 0) {
    std::printf("%-6s FAILED to find the seeded fault in %llu schedules\n",
                rt::to_string(target),
                static_cast<unsigned long long>(rep.explored));
    return 1;
  }
  const auto minimal = ex.minimize(rep.first_failing, cfg.horizon);
  const auto confirm = ex.replay(minimal, cfg.horizon);
  std::printf(
      "%-6s seeded fault found after %llu of %llu schedules (%llu failing)\n"
      "       first failing schedule: \"%s\"\n"
      "       minimized to:           \"%s\" (%zu preemption(s))\n"
      "       replay: %s\n",
      rt::to_string(target),
      static_cast<unsigned long long>(rep.schedules_to_first_failure),
      static_cast<unsigned long long>(rep.explored),
      static_cast<unsigned long long>(rep.failing),
      explore::to_string(rep.first_failing).c_str(),
      explore::to_string(minimal).c_str(), minimal.size(),
      confirm.ok ? "UNEXPECTEDLY VALID" : confirm.message.c_str());
  return confirm.ok ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  explore::ExploreConfig cfg;
  cfg.preemption_bound =
      static_cast<int>(flag_int(argc, argv, "preemptions", 2));
  cfg.horizon = static_cast<uint64_t>(flag_int(argc, argv, "horizon", 24));
  cfg.max_schedules =
      static_cast<uint64_t>(flag_int(argc, argv, "max-schedules", 50'000));
  cfg.prune_delay = !flag_set(argc, argv, "no-prune");
  const auto backends = parse_backends(flag_str(argc, argv, "backend", nullptr));
  const char* test_filter = flag_str(argc, argv, "test", nullptr);
  const char* replay = flag_str(argc, argv, "replay", nullptr);

  if (flag_set(argc, argv, "seed-bug")) {
    int rc = 0;
    for (rt::Target t : backends) rc |= run_seed_bug(t, cfg);
    return rc;
  }

  auto tests = explore::annotatable_tests();
  if (test_filter != nullptr) {
    std::erase_if(tests, [&](const model::LitmusTest& t) {
      return t.name != test_filter;
    });
    if (tests.empty()) {
      std::fprintf(stderr, "no annotatable litmus test named '%s'\n",
                   test_filter);
      return 2;
    }
  }

  if (replay != nullptr) {
    if (backends.size() != 1 || tests.size() != 1) {
      std::fprintf(stderr, "--replay needs --backend= and --test=\n");
      return 2;
    }
    return run_replay(explore::LitmusCheck(tests[0], backends[0]), replay,
                      cfg.horizon);
  }

  std::printf("schedule exploration: preemptions<=%d, horizon=%llu%s\n\n",
              cfg.preemption_bound,
              static_cast<unsigned long long>(cfg.horizon),
              cfg.prune_delay ? "" : ", pruning off");
  util::Table table;
  table.add_row({"back-end", "test", "explored", "pruned", "traces",
                 "failing"});
  int rc = 0;
  for (rt::Target t : backends) {
    for (const auto& test : tests) {
      const explore::LitmusCheck check(test, t);
      explore::Explorer ex(check.runner());
      const auto rep = ex.explore(cfg);
      table.add_row({rt::to_string(t), test.name,
                     std::to_string(rep.explored) +
                         (rep.truncated ? "+" : ""),
                     std::to_string(rep.pruned),
                     std::to_string(rep.distinct_traces),
                     std::to_string(rep.failing)});
      if (rep.failing != 0) {
        rc = 1;
        std::printf("!! %s on %s: schedule \"%s\": %s\n", test.name.c_str(),
                    rt::to_string(t),
                    explore::to_string(rep.first_failing).c_str(),
                    rep.first_failing_message.c_str());
      }
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nevery explored schedule re-runs the program deterministically; a\n"
      "failing schedule is reproducible via --replay=<decision string>.\n");
  return rc;
}
