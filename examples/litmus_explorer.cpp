// Litmus explorer: enumerates the reachable outcomes of the paper's example
// programs under the PMC model, in program order and under weak issue
// (compiler/out-of-order reordering), and renders the Fig. 5 dependency
// graph as Graphviz.
//
// Run with --dot to print the Fig. 5 execution graph.
#include <cstdio>
#include <cstring>

#include "model/execution.h"
#include "model/litmus_library.h"

using namespace pmc::model;

namespace {

void show(const LitmusTest& test) {
  std::printf("%-28s", test.name.c_str());
  for (IssueMode mode : {IssueMode::kProgramOrder, IssueMode::kWeakIssue}) {
    ExploreOptions opts;
    opts.mode = mode;
    opts.weak_window = 4;
    const auto res = explore(test, opts);
    std::printf("  %s:", mode == IssueMode::kProgramOrder ? "in-order" : "weak");
    for (const auto& outcome : res.outcomes) {
      std::printf(" {");
      for (size_t i = 0; i < outcome.size(); ++i) {
        std::printf("%s%llu", i ? "," : "",
                    static_cast<unsigned long long>(outcome[i]));
      }
      std::printf("}");
    }
    if (res.race_observed) std::printf(" [racy]");
  }
  std::printf("\n");
}

void fig5_dot() {
  // Rebuild the Fig. 5 execution in its depicted interleaving and dump it.
  Execution e(2, 2, {0, 0});
  e.acquire(0, 0);
  e.write(0, 0, 42);
  e.fence(0);
  e.release(0, 0);
  e.acquire(0, 1);
  const OpId wf = e.write(0, 1, 1);
  e.release(0, 1);
  e.read(1, 1, 1, wf);
  e.fence(1);
  e.acquire(1, 0);
  e.read(1, 0, 42, 1);
  e.release(1, 0);
  std::printf("%s", e.to_dot().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dot") == 0) {
      fig5_dot();
      return 0;
    }
  }
  std::printf("reachable outcomes per litmus test (registers in braces):\n\n");
  for (const auto& test : pmc::model::litmus::all_tests()) {
    show(test);
  }
  std::printf(
      "\nreading the table:\n"
      " * fig1_mp_plain: {0} reachable — the stale read of the motivating "
      "example;\n"
      " * fig5_mp_annotated: only {42} — annotations forbid the stale "
      "outcome in both modes;\n"
      " * fig5_mp_no_reader_fence: {0} reappears under weak issue — the "
      "fence at Fig. 5 line 11 is essential;\n"
      " * fig5_mp_no_writer_fence: identical to the annotated test — the "
      "line 3 fence is redundant in the model;\n"
      " * sb_locked: (0,0) unreachable — PMC behaves sequentially "
      "consistent for data-race-free programs (Section IV-E).\n"
      "\nrun with --dot for the Fig. 5 dependency graph in Graphviz form.\n");
  return 0;
}
