// Streaming over distributed memory (paper §VI-B): a two-stage pipeline
// connected by the Fig. 9 multi-reader FIFO, on the DSM back-end where all
// pointer polling happens in tile-local memory.
//
// Stage A (2 producer cores) generates video "lines"; stage B (2 consumer
// cores) both receive *every* line (broadcast FIFO — e.g. one consumer
// encodes while the other drives a preview display).
#include <cstdio>

#include "apps/mfifo.h"
#include "runtime/program.h"

using namespace pmc;
using namespace pmc::apps;

namespace {
struct Line {
  uint32_t seq;
  uint32_t pixels[15];
};
}  // namespace

int main() {
  rt::ProgramOptions opts;
  opts.target = rt::Target::kDSM;  // also correct on every other back-end
  opts.cores = 4;
  opts.machine.lm_bytes = 256 * 1024;
  opts.machine.max_cycles = UINT64_C(4'000'000'000);
  opts.validate = true;
  rt::Program prog(opts);

  const int kProducers = 2, kConsumers = 2, kLines = 32;
  MFifo fifo(prog, sizeof(Line), /*depth=*/4, /*readers=*/kConsumers);

  uint64_t consumer_sum[kConsumers] = {0, 0};
  prog.run([&](rt::Env& env) {
    if (env.id() < kProducers) {
      for (uint32_t i = 0; i < kLines / kProducers; ++i) {
        Line line;
        line.seq = static_cast<uint32_t>(env.id()) << 16 | i;
        for (uint32_t p = 0; p < 15; ++p) line.pixels[p] = line.seq * 31 + p;
        env.compute(200);  // "capture" the line
        fifo.push(env, &line);
      }
    } else {
      const int me = env.id() - kProducers;
      for (int i = 0; i < kLines; ++i) {
        Line line{};
        fifo.pop(env, me, &line);
        for (uint32_t p = 0; p < 15; ++p) consumer_sum[me] += line.pixels[p];
        env.compute(150);  // "encode" / "display"
      }
    }
  });
  prog.require_valid();

  std::printf("streamed %d lines from %d producers to %d broadcast "
              "consumers over DSM\n",
              kLines, kProducers, kConsumers);
  std::printf("consumer digests: %llu and %llu -> %s\n",
              static_cast<unsigned long long>(consumer_sum[0]),
              static_cast<unsigned long long>(consumer_sum[1]),
              consumer_sum[0] == consumer_sum[1] ? "identical (broadcast OK)"
                                                 : "MISMATCH");
  const auto& s0 = prog.machine()->stats(kProducers);  // first consumer
  std::printf("first consumer: %llu local-memory loads, %llu SDRAM-read "
              "stall cycles (polling stayed local)\n",
              static_cast<unsigned long long>(s0.loads),
              static_cast<unsigned long long>(s0.stall_shared_read));
  return consumer_sum[0] == consumer_sum[1] ? 0 : 1;
}
