// Portability demo: one application, five memory architectures.
//
// The paper's central claim is that a PMC-annotated application maps to any
// memory model "as just a compiler setting". This example runs the same
// motion-estimation workload on host threads, uncached SDRAM, software
// cache coherency, distributed shared memory, and scratch-pad memories —
// and prints the (identical) result checksum next to the (very different)
// cycle counts.
#include <cstdio>

#include "apps/motion_est.h"
#include "util/table.h"

using namespace pmc;
using namespace pmc::apps;

int main() {
  MotionConfig cfg;
  cfg.blocks_x = 4;
  cfg.blocks_y = 2;
  cfg.block = 8;
  cfg.search = 4;

  util::Table table;
  table.add_row({"back-end", "checksum", "makespan (cycles)", "model check"});
  uint64_t reference = 0;
  bool all_equal = true;
  for (rt::Target target : rt::all_targets()) {
    MotionEst app(cfg);
    ProgramOptions opts;
    opts.target = target;
    opts.cores = 4;
    opts.machine.lm_bytes = 128 * 1024;
    opts.machine.max_cycles = UINT64_C(4'000'000'000);
    opts.validate = rt::is_sim(target);
    const AppRunResult r = run_app(app, opts);
    if (reference == 0) reference = r.checksum;
    all_equal &= r.checksum == reference;
    char cks[32];
    std::snprintf(cks, sizeof cks, "%016llx",
                  static_cast<unsigned long long>(r.checksum));
    char cycles[32];
    if (rt::is_sim(target)) {
      std::snprintf(cycles, sizeof cycles, "%llu",
                    static_cast<unsigned long long>(r.makespan));
    } else {
      std::snprintf(cycles, sizeof cycles, "n/a (host)");
    }
    table.add_row({rt::to_string(target), cks, cycles,
                   rt::is_sim(target) ? (r.validated_ok ? "OK" : "VIOLATED")
                                      : "-"});
  }
  std::printf("one annotated application, five memory architectures:\n\n%s\n",
              table.render().c_str());
  std::printf(all_equal ? "all back-ends computed identical results.\n"
                        : "RESULT MISMATCH — this is a bug!\n");
  return all_equal ? 0 : 1;
}
