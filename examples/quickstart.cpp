// Quickstart: the paper's running example (Fig. 6) in ~40 lines of
// application code.
//
// Process 0 publishes a payload and raises a flag; process 1 polls the flag
// and reads the payload. The annotations (entry_x/exit_x, entry_ro/exit_ro,
// fence, flush) make every required ordering explicit, so the same code is
// correct on any back-end — here the software-cache-coherent 4-core machine.
//
// Build & run:   ./examples/quickstart [--target=<name>]
// where <name> is host-sc or any registered back-end (the bad-flag error
// lists them; they come from the registry, not a hand-maintained table).
#include <cstdio>
#include <cstring>

#include "runtime/backends/registry.h"
#include "runtime/program.h"

using namespace pmc;

int main(int argc, char** argv) {
  rt::ProgramOptions opts;
  opts.target = rt::Target::kSWCC;  // change the back-end; nothing else moves
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--target=", 9) == 0) {
      const auto target = rt::target_from_string(argv[i] + 9);
      if (!target) {
        std::fprintf(stderr, "unknown target '%s' (want host-sc|%s)\n",
                     argv[i] + 9, rt::backend_names().c_str());
        return 2;
      }
      opts.target = *target;
    }
  }
  opts.cores = 4;
  opts.validate = true;  // record a trace and check it against the model

  rt::Program prog(opts);
  // kReplicated keeps the same code runnable on the DSM back-end too.
  const rt::ObjId X =
      prog.create_typed<uint32_t>(0, rt::Placement::kReplicated, "X");
  const rt::ObjId flag =
      prog.create_typed<uint32_t>(0, rt::Placement::kReplicated, "flag");

  prog.run([&](rt::Env& env) {
    if (env.id() == 0) {
      // Fig. 6, process 1.
      env.entry_x(X);
      env.st<uint32_t>(X, 0, 42);
      env.fence();
      env.exit_x(X);

      env.entry_x(flag);
      env.st<uint32_t>(flag, 0, 1);
      env.flush(flag);  // best-effort: make the flag visible soon
      env.exit_x(flag);
    } else if (env.id() == 1) {
      // Fig. 6, process 2.
      uint32_t poll = 0;
      do {
        env.entry_ro(flag);
        poll = env.ld<uint32_t>(flag);
        env.exit_ro(flag);
      } while (poll != 1);
      env.fence();  // pins the acquire behind the poll loop (§IV, Fig. 5)

      env.entry_x(X);
      const uint32_t r = env.ld<uint32_t>(X);
      env.exit_x(X);
      std::printf("process 1 read X = %u (must be 42)\n", r);
    }
    // Cores 2 and 3 idle: the annotations cost them nothing.
  });

  prog.require_valid();  // the recorded trace satisfies Definition 12
  std::printf("back-end: %s%s\n", to_string(opts.target),
              rt::is_sim(opts.target)
                  ? ", validated against the PMC model: OK"
                  : " (host reference: no trace to validate)");
  return 0;
}
