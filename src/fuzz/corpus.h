// The fuzzing farm's seed corpus (DESIGN.md §14): every interesting
// GenProgram the farm has run, ranked by the new hb-classes it reached, plus
// the per-back-end global class sets the ranking is measured against.
//
// Persistence contract: save() writes `corpus.json` (index, per-back-end
// class sets, coverage-growth curve) plus one `seed_<id>.json` per entry
// into a directory, and load() reconstructs the exact in-memory state — all
// counters are integers serialized exactly (no doubles), orderings are
// canonical (entries by id, back-ends by name, hashes ascending), so
// save(load(dir)) re-emits byte-identical files. That idempotence is what
// makes stop/--resume lossless, and tests/fuzz/test_corpus.cpp locks it.
// Corrupted files are rejected with util::CheckFailure errors naming
// file:line and the bad field, in the MachineConfig parser's style.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "explore/program_gen.h"
#include "fuzz/json_read.h"

namespace pmc::fuzz {

/// Per-seed bookkeeping, all exact integers. `energy`-relevant fields:
/// classes_discovered (how productive the seed has been) and last_new_exec
/// (how recently), both against the farm-wide exec counter.
struct SeedStats {
  uint64_t execs = 0;                // (program, back-end) checks run
  uint64_t classes_discovered = 0;   // new-to-corpus classes it contributed
  uint64_t schedules_explored = 0;
  uint64_t dpor_pruned = 0;          // basis of the per-seed budget scaling
  uint64_t wall_micros = 0;          // telemetry only; never in decisions
  uint64_t last_new_exec = 0;        // farm exec count at the last discovery

  friend bool operator==(const SeedStats&, const SeedStats&) = default;
};

struct SeedEntry {
  uint64_t id = 0;
  std::string origin;  // "seed:<n>" or "mutant:<parent-id>:<operator>"
  explore::GenProgram program;
  SeedStats stats;
};

/// Canonical JSON for one GenProgram (single line, fixed member order).
std::string program_to_json(const explore::GenProgram& prog);
/// Inverse; throws util::CheckFailure naming origin:line + field on any
/// structural problem, including programs that fail well_formed().
explore::GenProgram program_from_json(const JsonValue& v,
                                      const std::string& origin);

class Corpus {
 public:
  /// Adds an entry (validated well-formed) and returns its id.
  uint64_t add(std::string origin, explore::GenProgram program);

  const std::vector<SeedEntry>& entries() const { return entries_; }
  SeedEntry& entry(uint64_t id);

  /// Folds one exploration's class set for `backend` into the global sets;
  /// returns how many hashes were new to the corpus.
  uint64_t note_classes(const std::string& backend,
                        const std::vector<uint64_t>& hashes);

  /// Σ per-back-end class-set sizes — "distinct hb-classes reached per
  /// back-end", the farm's headline coverage number.
  uint64_t total_classes() const;
  const std::map<std::string, std::set<uint64_t>>& classes() const {
    return classes_;
  }

  uint64_t total_execs() const { return total_execs_; }
  void count_exec() { ++total_execs_; }

  /// Appends an (execs, total_classes) sample when coverage grew; the curve
  /// is cumulative across save/load, so a resumed farm extends it.
  void record_growth();
  const std::vector<std::pair<uint64_t, uint64_t>>& growth() const {
    return growth_;
  }

  /// Next crash-file index (crash_<k>.json); persisted so a resumed farm
  /// never overwrites an earlier repro.
  uint64_t take_crash_index() { return next_crash_++; }

  /// Writes corpus.json + seed_<id>.json into `dir` (created if needed).
  void save(const std::string& dir) const;
  /// Reconstructs a corpus from `dir`; throws util::CheckFailure with
  /// file:line + field on anything malformed.
  static Corpus load(const std::string& dir);

 private:
  std::vector<SeedEntry> entries_;  // sorted by id (ids are dense)
  std::map<std::string, std::set<uint64_t>> classes_;
  std::vector<std::pair<uint64_t, uint64_t>> growth_;
  uint64_t next_id_ = 0;
  uint64_t next_crash_ = 0;
  uint64_t total_execs_ = 0;
};

}  // namespace pmc::fuzz
