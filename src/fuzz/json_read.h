// Minimal JSON reader for the fuzzing-farm corpus files (DESIGN.md §14).
//
// The obs layer deliberately only *emits* JSON; the corpus service is the
// first subsystem in src/ that must read its own files back, so it gets a
// small recursive-descent parser here rather than a dependency. Two design
// points follow the MachineConfig parser (sim/machine_config.cpp):
//
//  * every error is a util::CheckFailure naming `origin:line` plus the
//    offending token or field — a corrupted corpus entry in a CPU-day soak
//    must point at the bad byte, not "parse error";
//  * numbers keep their raw literal text. Corpus hashes are full uint64
//    values that a double round-trip would corrupt, so typed accessors
//    (as_u64, as_int) parse the literal exactly, and re-emission is
//    byte-faithful.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pmc::fuzz {

/// One parsed JSON value. Object member order is preserved (the corpus
/// writer emits keys in a canonical order; preserving it keeps load → save
/// byte-identical). `line` is the 1-based line the value started on, for
/// field-level error messages after parsing succeeded.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string literal;  // kNumber: raw text; kString: decoded bytes
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject
  int line = 0;

  const char* kind_name() const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  // Typed accessors. `origin` and `field` name the file and the
  // dotted field path in the CheckFailure on a kind or range mismatch.
  const JsonValue& get(const std::string& key, const std::string& origin,
                       const std::string& field) const;
  uint64_t as_u64(const std::string& origin, const std::string& field) const;
  int64_t as_int(const std::string& origin, const std::string& field) const;
  bool as_bool(const std::string& origin, const std::string& field) const;
  const std::string& as_string(const std::string& origin,
                               const std::string& field) const;
  const std::vector<JsonValue>& as_array(const std::string& origin,
                                         const std::string& field) const;
  void require_object(const std::string& origin,
                      const std::string& field) const;
};

/// Parses one JSON document. Throws util::CheckFailure ("origin:line: ...")
/// on malformed input, including trailing garbage after the document.
JsonValue json_parse(const std::string& text, const std::string& origin);

/// Reads and parses `path`; the file name is the error origin.
JsonValue json_parse_file(const std::string& path);

}  // namespace pmc::fuzz
