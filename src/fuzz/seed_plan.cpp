#include "fuzz/seed_plan.h"

#include <cstdlib>
#include <numeric>

namespace pmc::fuzz {

namespace {

uint64_t clamp_width(int64_t n) {
  if (n < 1) return 1;
  if (n > 10'000) return 10'000;
  return static_cast<uint64_t>(n);
}

}  // namespace

std::vector<uint64_t> SeedPlan::seeds() const {
  std::vector<uint64_t> out(static_cast<size_t>(count));
  std::iota(out.begin(), out.end(), base);
  return out;
}

SeedPlan SeedPlan::resolve(int def, int64_t flag_count, uint64_t base) {
  SeedPlan plan;
  plan.base = base;
  if (flag_count >= 0) {
    plan.count = clamp_width(flag_count);
    plan.source = Source::kFlag;
    return plan;
  }
  if (const char* env = std::getenv("PMC_FUZZ_SEEDS")) {
    plan.count = clamp_width(std::atoll(env));
    plan.source = Source::kEnv;
    return plan;
  }
  plan.count = clamp_width(def);
  plan.source = Source::kDefault;
  return plan;
}

const char* to_string(SeedPlan::Source source) {
  switch (source) {
    case SeedPlan::Source::kDefault: return "default";
    case SeedPlan::Source::kEnv: return "env";
    case SeedPlan::Source::kFlag: return "flag";
  }
  return "?";
}

std::vector<uint64_t> seed_sweep(int def) {
  return SeedPlan::resolve(def).seeds();
}

}  // namespace pmc::fuzz
