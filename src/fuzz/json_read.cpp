#include "fuzz/json_read.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace pmc::fuzz {

namespace {

struct Parser {
  const std::string& text;
  const std::string& origin;
  size_t pos = 0;
  int line = 1;

  [[noreturn]] void fail(const std::string& msg) const {
    PMC_CHECK_MSG(false, origin << ":" << line << ": " << msg);
    std::abort();  // unreachable; PMC_CHECK_MSG throws
  }

  bool eof() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  char take() {
    const char c = text[pos++];
    if (c == '\n') ++line;
    return c;
  }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        take();
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    if (eof() || peek() != c) {
      fail(std::string("expected '") + c + "', got " +
           (eof() ? std::string("end of input")
                  : "'" + std::string(1, peek()) + "'"));
    }
    take();
  }

  bool consume_keyword(const char* word) {
    const size_t n = std::char_traits<char>::length(word);
    if (text.compare(pos, n, word) != 0) return false;
    pos += n;  // keywords contain no newline
    return true;
  }

  std::string parse_string_body() {
    expect('"');
    std::string out;
    for (;;) {
      if (eof()) fail("unterminated string");
      const char c = take();
      if (c == '"') return out;
      if (c == '\n') fail("raw newline in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) fail("unterminated escape");
      const char e = take();
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          // The corpus writer only emits \u00XX control escapes; decode the
          // BMP code point as its low byte for those and reject the rest —
          // corpus text fields are ASCII identifiers and repro lines.
          unsigned v = 0;
          for (int i = 0; i < 4; ++i) {
            if (eof() || !std::isxdigit(static_cast<unsigned char>(peek()))) {
              fail("bad \\u escape");
            }
            const char h = take();
            v = v * 16 + static_cast<unsigned>(
                             h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
          }
          if (v > 0xff) fail("non-ASCII \\u escape unsupported in corpus files");
          out.push_back(static_cast<char>(v));
          break;
        }
        default:
          fail(std::string("unknown escape '\\") + e + "'");
      }
    }
  }

  JsonValue parse_value(int depth) {
    if (depth > 64) fail("nesting deeper than 64 levels");
    skip_ws();
    if (eof()) fail("expected a value, got end of input");
    JsonValue v;
    v.line = line;
    const char c = peek();
    if (c == '{') {
      take();
      v.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (!eof() && peek() == '}') {
        take();
        return v;
      }
      for (;;) {
        skip_ws();
        if (eof() || peek() != '"') fail("expected a member key string");
        std::string key = parse_string_body();
        skip_ws();
        expect(':');
        JsonValue member = parse_value(depth + 1);
        for (const auto& [k, ignored] : v.members) {
          (void)ignored;
          if (k == key) fail("duplicate key \"" + key + "\"");
        }
        v.members.emplace_back(std::move(key), std::move(member));
        skip_ws();
        if (!eof() && peek() == ',') {
          take();
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      take();
      v.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (!eof() && peek() == ']') {
        take();
        return v;
      }
      for (;;) {
        v.items.push_back(parse_value(depth + 1));
        skip_ws();
        if (!eof() && peek() == ',') {
          take();
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.literal = parse_string_body();
      return v;
    }
    if (c == 't') {
      if (!consume_keyword("true")) fail("bad keyword");
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (c == 'f') {
      if (!consume_keyword("false")) fail("bad keyword");
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
      return v;
    }
    if (c == 'n') {
      if (!consume_keyword("null")) fail("bad keyword");
      v.kind = JsonValue::Kind::kNull;
      return v;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      v.kind = JsonValue::Kind::kNumber;
      const size_t start = pos;
      if (peek() == '-') take();
      while (!eof() && ((peek() >= '0' && peek() <= '9') || peek() == '.' ||
                        peek() == 'e' || peek() == 'E' || peek() == '+' ||
                        peek() == '-')) {
        take();
      }
      v.literal = text.substr(start, pos - start);
      if (v.literal.empty() || v.literal == "-") fail("bad number");
      return v;
    }
    fail(std::string("unexpected character '") + c + "'");
  }
};

[[noreturn]] void field_fail(const std::string& origin, int line,
                             const std::string& field,
                             const std::string& msg) {
  PMC_CHECK_MSG(false,
                origin << ":" << line << ": field \"" << field << "\" " << msg);
  std::abort();  // unreachable
}

}  // namespace

const char* JsonValue::kind_name() const {
  switch (kind) {
    case Kind::kNull: return "null";
    case Kind::kBool: return "bool";
    case Kind::kNumber: return "number";
    case Kind::kString: return "string";
    case Kind::kArray: return "array";
    case Kind::kObject: return "object";
  }
  return "?";
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::get(const std::string& key,
                                const std::string& origin,
                                const std::string& field) const {
  require_object(origin, field.empty() ? key : field);
  const JsonValue* v = find(key);
  if (v == nullptr) {
    field_fail(origin, line, field.empty() ? key : field, "is missing");
  }
  return *v;
}

uint64_t JsonValue::as_u64(const std::string& origin,
                           const std::string& field) const {
  if (kind != Kind::kNumber) {
    field_fail(origin, line, field,
               std::string("must be a number, got ") + kind_name());
  }
  if (!literal.empty() && literal[0] == '-') {
    field_fail(origin, line, field, "must be non-negative, got " + literal);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(literal.c_str(), &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0') {
    field_fail(origin, line, field,
               "is not an exact unsigned integer: " + literal);
  }
  return static_cast<uint64_t>(v);
}

int64_t JsonValue::as_int(const std::string& origin,
                          const std::string& field) const {
  if (kind != Kind::kNumber) {
    field_fail(origin, line, field,
               std::string("must be a number, got ") + kind_name());
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(literal.c_str(), &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0') {
    field_fail(origin, line, field, "is not an exact integer: " + literal);
  }
  return static_cast<int64_t>(v);
}

bool JsonValue::as_bool(const std::string& origin,
                        const std::string& field) const {
  if (kind != Kind::kBool) {
    field_fail(origin, line, field,
               std::string("must be true or false, got ") + kind_name());
  }
  return boolean;
}

const std::string& JsonValue::as_string(const std::string& origin,
                                        const std::string& field) const {
  if (kind != Kind::kString) {
    field_fail(origin, line, field,
               std::string("must be a string, got ") + kind_name());
  }
  return literal;
}

const std::vector<JsonValue>& JsonValue::as_array(
    const std::string& origin, const std::string& field) const {
  if (kind != Kind::kArray) {
    field_fail(origin, line, field,
               std::string("must be an array, got ") + kind_name());
  }
  return items;
}

void JsonValue::require_object(const std::string& origin,
                               const std::string& field) const {
  if (kind != Kind::kObject) {
    field_fail(origin, line, field,
               std::string("must be an object, got ") + kind_name());
  }
}

JsonValue json_parse(const std::string& text, const std::string& origin) {
  Parser p{text, origin};
  JsonValue v = p.parse_value(0);
  p.skip_ws();
  if (!p.eof()) p.fail("trailing content after the document");
  return v;
}

JsonValue json_parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PMC_CHECK_MSG(in.good(), "cannot open " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return json_parse(buf.str(), path);
}

}  // namespace pmc::fuzz
