#include "fuzz/mutate.h"

#include <algorithm>

#include "util/check.h"

namespace pmc::fuzz {

using explore::GenOp;
using explore::GenProgram;
using explore::ProgramShape;

namespace {

size_t barrier_count(const std::vector<GenOp>& ops) {
  size_t n = 0;
  for (const GenOp& op : ops) {
    if (op.kind == GenOp::Kind::kBarrier) ++n;
  }
  return n;
}

/// A fresh random non-barrier op, same distribution family as the
/// generator's per-slot draw.
GenOp random_op(util::Rng& rng, int objects) {
  GenOp op;
  op.obj = static_cast<int>(rng.next_below(static_cast<uint64_t>(objects)));
  const auto r = static_cast<int>(rng.next_below(100));
  if (r < 20) {
    op.kind = GenOp::Kind::kReadOnly;
  } else if (r < 30) {
    op.kind = GenOp::Kind::kNested;
    op.obj2 =
        static_cast<int>(rng.next_below(static_cast<uint64_t>(objects)));
    op.arg = 1 + static_cast<uint32_t>(rng.next_below(9));
    if (op.obj2 == op.obj) {  // no self-nest
      op.kind = GenOp::Kind::kUpdate;
      op.obj2 = 0;
    }
  } else if (r < 45) {
    op.kind = GenOp::Kind::kCompute;
    op.obj = 0;  // dead field: keep ops canonical so they round-trip
    op.arg = static_cast<uint32_t>(rng.next_below(60));
  } else if (r < 50) {
    op.kind = GenOp::Kind::kFence;
    op.obj = 0;  // dead field
  } else {
    op.kind = GenOp::Kind::kUpdate;
    op.arg = 1 + static_cast<uint32_t>(rng.next_below(9));
    if (rng.chance(20, 100)) {
      op.flush = true;
      op.arg2 = 1 + static_cast<uint32_t>(rng.next_below(9));
    }
  }
  return op;
}

/// Position of the k-th barrier in `ops`, or ops.size() when k is past the
/// last one.
size_t barrier_pos(const std::vector<GenOp>& ops, size_t k) {
  size_t seen = 0;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind != GenOp::Kind::kBarrier) continue;
    if (seen == k) return i;
    ++seen;
  }
  return ops.size();
}

bool mutate_drop(GenProgram& prog, util::Rng& rng) {
  if (prog.ops() == 0) return false;
  const int t = static_cast<int>(
      rng.next_below(static_cast<uint64_t>(prog.threads.size())));
  auto& ops = prog.threads[static_cast<size_t>(t)];
  if (ops.empty()) return false;
  const size_t i = rng.next_below(ops.size());
  return prog.drop(t, i);
}

bool mutate_insert_op(GenProgram& prog, util::Rng& rng,
                      const MutationLimits& limits) {
  const int t = static_cast<int>(
      rng.next_below(static_cast<uint64_t>(prog.threads.size())));
  auto& ops = prog.threads[static_cast<size_t>(t)];
  if (ops.size() >= limits.max_ops_per_thread) return false;
  const size_t pos = rng.next_below(ops.size() + 1);
  ops.insert(ops.begin() + static_cast<ptrdiff_t>(pos),
             random_op(rng, prog.shape.objects));
  return true;
}

bool mutate_insert_barrier(GenProgram& prog, util::Rng& rng,
                           const MutationLimits& limits) {
  for (const auto& ops : prog.threads) {
    if (ops.size() >= limits.max_ops_per_thread) return false;
  }
  // Segment k runs from barrier k-1 (exclusive) to barrier k; inserting one
  // new barrier somewhere inside segment k of *every* thread keeps the
  // per-thread barrier counts equal, which is all deadlock freedom needs.
  const size_t segments = barrier_count(prog.threads[0]) + 1;
  const size_t k = rng.next_below(segments);
  for (auto& ops : prog.threads) {
    const size_t lo = k == 0 ? 0 : barrier_pos(ops, k - 1) + 1;
    const size_t hi = barrier_pos(ops, k);
    const size_t pos = lo + rng.next_below(hi - lo + 1);
    ops.insert(ops.begin() + static_cast<ptrdiff_t>(pos),
               GenOp{GenOp::Kind::kBarrier});
  }
  return true;
}

bool mutate_swap(GenProgram& prog, util::Rng& rng) {
  const int t = static_cast<int>(
      rng.next_below(static_cast<uint64_t>(prog.threads.size())));
  auto& ops = prog.threads[static_cast<size_t>(t)];
  if (ops.size() < 2) return false;
  const size_t i = rng.next_below(ops.size() - 1);
  if (ops[i].kind == GenOp::Kind::kBarrier ||
      ops[i + 1].kind == GenOp::Kind::kBarrier) {
    return false;  // never move an op across a barrier
  }
  std::swap(ops[i], ops[i + 1]);
  return true;
}

bool mutate_tweak_arg(GenProgram& prog, util::Rng& rng) {
  const int t = static_cast<int>(
      rng.next_below(static_cast<uint64_t>(prog.threads.size())));
  auto& ops = prog.threads[static_cast<size_t>(t)];
  if (ops.empty()) return false;
  GenOp& op = ops[rng.next_below(ops.size())];
  switch (op.kind) {
    case GenOp::Kind::kUpdate:
      op.arg = 1 + static_cast<uint32_t>(rng.next_below(9));
      op.flush = rng.chance(20, 100);
      op.arg2 = op.flush ? 1 + static_cast<uint32_t>(rng.next_below(9)) : 0;
      return true;
    case GenOp::Kind::kNested:
      op.arg = 1 + static_cast<uint32_t>(rng.next_below(9));
      return true;
    case GenOp::Kind::kCompute:
      op.arg = static_cast<uint32_t>(rng.next_below(60));
      return true;
    default:
      return false;
  }
}

bool mutate_retarget(GenProgram& prog, util::Rng& rng) {
  const int t = static_cast<int>(
      rng.next_below(static_cast<uint64_t>(prog.threads.size())));
  auto& ops = prog.threads[static_cast<size_t>(t)];
  if (ops.empty()) return false;
  GenOp& op = ops[rng.next_below(ops.size())];
  const auto objects = static_cast<uint64_t>(prog.shape.objects);
  switch (op.kind) {
    case GenOp::Kind::kUpdate:
    case GenOp::Kind::kReadOnly:
      op.obj = static_cast<int>(rng.next_below(objects));
      return true;
    case GenOp::Kind::kNested:
      op.obj = static_cast<int>(rng.next_below(objects));
      if (op.obj2 == op.obj) {
        // Keep the no-self-nest invariant the way the generator does:
        // a nested op that would self-nest collapses to a plain update.
        op.kind = GenOp::Kind::kUpdate;
        op.obj2 = 0;
      }
      return true;
    default:
      return false;
  }
}

bool mutate_reshape(GenProgram& prog, util::Rng& rng,
                    const MutationLimits& limits) {
  // Density/dimension shift: jitter the parent's shape, re-seed, and
  // regenerate. This is the one operator that escapes the canonical
  // per-seed distribution entirely (new core counts, new step counts, new
  // op-mix densities), which is where most unseen hb-classes live.
  ProgramShape shape = prog.shape;
  shape.seed = rng.next_u64();
  const auto jitter = [&rng](int v, int lo, int hi, int amt) {
    v += static_cast<int>(rng.next_below(static_cast<uint64_t>(2 * amt + 1))) -
         amt;
    return std::clamp(v, lo, hi);
  };
  shape.cores = jitter(shape.cores, 2, limits.max_cores, 1);
  shape.objects = jitter(shape.objects, 2, limits.max_objects, 1);
  shape.steps = jitter(shape.steps, 2, limits.max_steps, 2);
  shape.flush_pct = jitter(shape.flush_pct, 0, 60, 10);
  shape.barrier_pct = jitter(shape.barrier_pct, 0, 40, 10);
  shape.ro_pct = jitter(shape.ro_pct, 0, 50, 10);
  shape.nested_pct = jitter(shape.nested_pct, 0, 40, 10);
  shape.compute_pct = jitter(shape.compute_pct, 0, 40, 10);
  shape.fence_pct = jitter(shape.fence_pct, 0, 30, 10);
  prog = explore::generate_program(shape);
  return true;
}

}  // namespace

bool well_formed(const GenProgram& prog, std::string* why) {
  const auto bad = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (prog.threads.empty() ||
      static_cast<int>(prog.threads.size()) != prog.shape.cores) {
    return bad("thread count " + std::to_string(prog.threads.size()) +
               " does not match shape.cores " +
               std::to_string(prog.shape.cores));
  }
  if (prog.shape.objects < 1) return bad("shape.objects must be >= 1");
  const size_t barriers = barrier_count(prog.threads[0]);
  for (size_t t = 0; t < prog.threads.size(); ++t) {
    if (barrier_count(prog.threads[t]) != barriers) {
      return bad("thread " + std::to_string(t) + " has " +
                 std::to_string(barrier_count(prog.threads[t])) +
                 " barrier(s), thread 0 has " + std::to_string(barriers) +
                 " — unequal counts deadlock the program");
    }
    for (size_t i = 0; i < prog.threads[t].size(); ++i) {
      const GenOp& op = prog.threads[t][i];
      const auto at = [&] {
        return "op " + std::to_string(i) + " of thread " + std::to_string(t);
      };
      if (op.obj < 0 || op.obj >= prog.shape.objects) {
        return bad(at() + " targets object x" + std::to_string(op.obj) +
                   ", outside [0," + std::to_string(prog.shape.objects) + ")");
      }
      if (op.kind == GenOp::Kind::kNested) {
        if (op.obj2 < 0 || op.obj2 >= prog.shape.objects) {
          return bad(at() + " reads object x" + std::to_string(op.obj2) +
                     ", outside [0," + std::to_string(prog.shape.objects) +
                     ")");
        }
        if (op.obj2 == op.obj) {
          return bad(at() + " self-nests on object x" +
                     std::to_string(op.obj));
        }
      }
      if ((op.kind == GenOp::Kind::kUpdate ||
           op.kind == GenOp::Kind::kNested) &&
          op.arg == 0) {
        return bad(at() + " has a zero addend");
      }
    }
  }
  return true;
}

GenProgram mutate(const GenProgram& parent, util::Rng& rng,
                  const MutationLimits& limits, std::string* what) {
  PMC_CHECK_MSG(well_formed(parent), "mutate() needs a well-formed parent");
  // A weighted draw per attempt; operators that cannot apply (empty thread,
  // size cap) fall through to the next attempt so mutate() always returns a
  // changed program.
  for (int attempt = 0; attempt < 64; ++attempt) {
    GenProgram child = parent;
    const uint64_t r = rng.next_below(100);
    const char* tag = nullptr;
    bool applied = false;
    if (r < 25) {
      tag = "insert-op";
      applied = mutate_insert_op(child, rng, limits);
    } else if (r < 45) {
      tag = "reshape";
      applied = mutate_reshape(child, rng, limits);
    } else if (r < 60) {
      tag = "tweak-arg";
      applied = mutate_tweak_arg(child, rng);
    } else if (r < 75) {
      tag = "retarget-obj";
      applied = mutate_retarget(child, rng);
    } else if (r < 85) {
      tag = "swap-ops";
      applied = mutate_swap(child, rng);
    } else if (r < 90) {
      tag = "insert-barrier";
      applied = mutate_insert_barrier(child, rng, limits);
    } else {
      tag = "drop-op";
      applied = mutate_drop(child, rng);
    }
    if (!applied || child == parent) continue;
    PMC_CHECK_MSG(well_formed(child),
                  "mutation '" << tag << "' broke a program invariant");
    if (what != nullptr) *what = tag;
    return child;
  }
  // Statistically unreachable (insert-op only saturates at the cap); fall
  // back to a reshape, which always applies.
  GenProgram child = parent;
  mutate_reshape(child, rng, limits);
  if (what != nullptr) *what = "reshape";
  return child;
}

}  // namespace pmc::fuzz
