// Deterministic GenProgram mutation for the coverage-guided farm
// (DESIGN.md §14).
//
// Every mutation preserves the three invariants that make a generated
// program a legal differential-oracle input:
//
//  * structure — thread count matches shape.cores, every op's objects lie
//    in [0, shape.objects), nested ops never self-nest;
//  * deadlock freedom — every thread executes the same number of barriers
//    (the real invariant behind the generator's slot alignment; positions
//    between barriers are free), and at most one exclusive section is held
//    at a time because ops are themselves section-balanced;
//  * the oracle — expected_final() is recomputed from the mutated op list,
//    so a mutant keeps its closed form by construction: any edit to the
//    addends edits the oracle with it.
//
// Mutations are pure functions of (parent, Rng state): the farm replays a
// run bit-exactly from its --seed. The operator mix is growth-biased
// (insert/reshape over drop) because reaching *new* hb-classes usually
// means reaching schedule spaces the canonical per-seed shapes cannot
// express — more ops, more objects, more cores.
#pragma once

#include <string>

#include "explore/program_gen.h"
#include "util/rng.h"

namespace pmc::fuzz {

/// Growth bounds for mutants: programs stay small enough that a bounded
/// exploration still covers an interesting fraction of their schedule
/// space. Caps are inclusive.
struct MutationLimits {
  int max_cores = 4;
  int max_objects = 5;
  int max_steps = 8;              // reshape regeneration cap
  size_t max_ops_per_thread = 18;  // insert cap
};

/// True when `prog` satisfies the structural + deadlock-freedom invariants
/// above. On failure, `why` (when non-null) names the first violation —
/// the corpus loader turns it into an origin:line error.
bool well_formed(const explore::GenProgram& prog, std::string* why = nullptr);

/// One mutation of `parent`. `what` (when non-null) receives a short
/// operator tag ("insert-op", "reshape", ...) for telemetry.
explore::GenProgram mutate(const explore::GenProgram& parent, util::Rng& rng,
                           const MutationLimits& limits = {},
                           std::string* what = nullptr);

}  // namespace pmc::fuzz
