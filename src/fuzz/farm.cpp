#include "fuzz/farm.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "explore/diff_check.h"
#include "obs/json.h"
#include "runtime/backends/registry.h"
#include "util/check.h"

namespace pmc::fuzz {

using explore::CheckReport;
using explore::GenProgram;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  PMC_CHECK_MSG(f != nullptr, "cannot open " << path << " for writing");
  const size_t n = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = n == text.size() && std::fclose(f) == 0;
  PMC_CHECK_MSG(ok, "short write to " << path);
}

/// True when the CLI can regenerate `prog` from its seed alone — the
/// precondition for the standard ctest/replay repro line.
bool seed_reproducible(const GenProgram& prog) {
  return prog.shape == explore::shape_for_seed(prog.shape.seed) &&
         prog == explore::generate_program(prog.shape);
}

}  // namespace

explore::SessionOptions default_farm_session() {
  explore::SessionOptions s;
  // Breadth over depth: one preemption and a short horizon keep an exec in
  // the low milliseconds, the schedule cap bounds the worst case, and
  // sleep-set DPOR spends that cap on distinct behaviors only.
  s.explore.preemption_bound = 1;
  s.explore.horizon = 12;
  s.explore.max_schedules = 192;
  s.explore.dpor = explore::DporMode::kSleepSet;
  s.explore.collect_trace_hashes = true;
  s.jobs = 1;
  return s;
}

void write_crash(const std::string& path, const CrashReport& crash) {
  std::string s = "{\n";
  s += "  \"target\": " + obs::json_quote(rt::to_string(crash.target)) + ",\n";
  s += "  \"message\": " + obs::json_quote(crash.message) + ",\n";
  s += "  \"faults\": [";
  for (size_t i = 0; i < crash.faults.size(); ++i) {
    if (i) s += ", ";
    s += obs::json_quote(crash.faults[i]);
  }
  s += "],\n";
  s += "  \"schedule\": " + obs::json_quote(to_string(crash.schedule)) + ",\n";
  s += "  \"program\": " + program_to_json(crash.program) + "\n";
  s += "}\n";
  write_text_file(path, s);
}

CrashReport load_crash(const std::string& path) {
  const JsonValue v = json_parse_file(path);
  v.require_object(path, "crash");
  CrashReport crash;
  const std::string& name =
      v.get("target", path, "target").as_string(path, "target");
  const std::optional<rt::Target> target = rt::target_from_string(name);
  PMC_CHECK_MSG(target.has_value(),
                path << ": field \"target\" names unknown back-end \"" << name
                     << "\" (want " << rt::backend_names() << ")");
  crash.target = *target;
  crash.message = v.get("message", path, "message").as_string(path, "message");
  for (const JsonValue& f :
       v.get("faults", path, "faults").as_array(path, "faults")) {
    crash.faults.push_back(f.as_string(path, "faults[]"));
  }
  crash.schedule = explore::parse_decision_string(
      v.get("schedule", path, "schedule").as_string(path, "schedule"));
  crash.program = program_from_json(v.get("program", path, "program"), path);
  return crash;
}

Farm::Farm(FarmOptions opts) : opts_(std::move(opts)) {
  backends_ = opts_.backends.empty() ? rt::sim_targets() : opts_.backends;
  PMC_CHECK_MSG(!backends_.empty(), "the farm needs at least one back-end");
}

uint64_t Farm::pick_parent(util::Rng& rng) const {
  const auto& entries = corpus_.entries();
  PMC_CHECK_MSG(!entries.empty(), "cannot mutate from an empty corpus");
  // Energy: every entry keeps a base chance, productive parents (classes
  // contributed, directly or via a promoted mutant) are drawn more, and a
  // recent discovery adds a short-lived bonus so the farm exploits a vein
  // while it is producing. All integer weights — the draw is deterministic.
  const uint64_t now = corpus_.total_execs();
  uint64_t total = 0;
  std::vector<uint64_t> weight(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    const SeedStats& st = entries[i].stats;
    uint64_t w = 1 + std::min<uint64_t>(st.classes_discovered, 64);
    if (st.classes_discovered > 0 && now - st.last_new_exec <= 32) w += 16;
    weight[i] = w;
    total += w;
  }
  uint64_t r = rng.next_below(total);
  for (size_t i = 0; i < entries.size(); ++i) {
    if (r < weight[i]) return entries[i].id;
    r -= weight[i];
  }
  return entries.back().id;
}

uint64_t Farm::schedule_budget(uint64_t entry_id) const {
  const uint64_t base = opts_.session.explore.max_schedules;
  const SeedStats* st = nullptr;
  for (const SeedEntry& e : corpus_.entries()) {
    if (e.id == entry_id) {
      st = &e.stats;
      break;
    }
  }
  if (st == nullptr || st->schedules_explored == 0) return base;
  // Spaces the sleep-set pruner collapses well are cheap per distinct
  // behavior, so they earn a deeper cap: base × (1 + 3·reduction), i.e. up
  // to 4× base when nearly everything gets pruned.
  const uint64_t denom = st->schedules_explored + st->dpor_pruned;
  return base + 3 * base * st->dpor_pruned / denom;
}

Farm::Job Farm::next_job(util::Rng& rng) {
  if (!queue_.empty()) {
    Job j = std::move(queue_.front());
    queue_.erase(queue_.begin());
    return j;
  }
  Job j;
  j.target = backends_[backend_rr_++ % backends_.size()];
  if (opts_.mutate) {
    j.entry_id = pick_parent(rng);
    std::string what;
    j.program =
        mutate(corpus_.entry(j.entry_id).program, rng, opts_.limits, &what);
    j.origin = "mutant:" + std::to_string(j.entry_id) + ":" + what;
    j.budget = schedule_budget(j.entry_id);
  } else {
    const uint64_t seed = opts_.seed_base + next_blind_++;
    j.program = explore::generate_program(explore::shape_for_seed(seed));
    j.origin = "seed:" + std::to_string(seed);
    j.budget = opts_.session.explore.max_schedules;
  }
  return j;
}

void Farm::process(const Job& job, const CheckReport& rep,
                   uint64_t wall_micros, FarmResult& result) {
  corpus_.count_exec();
  ++result.execs;
  result.schedules += rep.explored;
  result.dpor_pruned += rep.dpor_pruned;
  const uint64_t fresh =
      corpus_.note_classes(rt::to_string(job.target), rep.trace_hashes);
  result.new_classes += fresh;
  const uint64_t now = corpus_.total_execs();
  if (job.from_corpus) {
    SeedStats& st = corpus_.entry(job.entry_id).stats;
    ++st.execs;
    st.classes_discovered += fresh;
    st.schedules_explored += rep.explored;
    st.dpor_pruned += rep.dpor_pruned;
    st.wall_micros += wall_micros;
    if (fresh > 0) st.last_new_exec = now;
  } else if (fresh > 0) {
    // Promotion: the mutant (or blind fresh seed) reached classes nothing
    // before it had, so it joins the corpus. Only the guided mode follows
    // up with a roster scan — that scan *is* the coverage feedback.
    const uint64_t id = corpus_.add(job.origin, job.program);
    SeedStats& st = corpus_.entry(id).stats;
    st.execs = 1;
    st.classes_discovered = fresh;
    st.schedules_explored = rep.explored;
    st.dpor_pruned = rep.dpor_pruned;
    st.wall_micros = wall_micros;
    st.last_new_exec = now;
    if (opts_.mutate) {
      corpus_.entry(job.entry_id).stats.last_new_exec = now;  // parent credit
      for (const rt::Target t : backends_) {
        if (t == job.target) continue;  // this exec already covered it
        Job scan;
        scan.entry_id = id;
        scan.from_corpus = true;
        scan.program = corpus_.entry(id).program;
        scan.target = t;
        scan.budget = schedule_budget(id);
        queue_.push_back(std::move(scan));
      }
    }
  }
  corpus_.record_growth();
  if (rep.ok) return;

  std::string message =
      rep.minimized_message.empty() ? rep.first_failing_message
                                    : rep.minimized_message;
  const std::pair<std::string, std::string> key(rt::to_string(job.target),
                                                message);
  if (std::find(failure_keys_.begin(), failure_keys_.end(), key) !=
      failure_keys_.end()) {
    return;  // the same verdict on the same back-end, already minimized
  }
  failure_keys_.push_back(key);

  FarmFailure f;
  f.entry_id = job.entry_id;
  f.target = job.target;
  f.message = std::move(message);
  const auto* shrunk = dynamic_cast<const explore::GenProgramTarget*>(
      rep.minimized_target.get());
  f.program = shrunk != nullptr ? shrunk->program() : job.program;
  f.schedule =
      shrunk != nullptr ? rep.minimized_schedule : rep.repro_schedule;
  if (seed_reproducible(job.program)) {
    f.repro = explore::repro_line(job.program.shape, job.target,
                                  rep.repro_schedule, opts_.faults);
  } else if (!opts_.corpus_dir.empty()) {
    // A mutant has no generating seed, so the replayable artifact is the
    // program itself: crash_<k>.json plus the schedule minimized on it.
    std::filesystem::create_directories(opts_.corpus_dir);
    const uint64_t k = corpus_.take_crash_index();
    f.crash_file = (std::filesystem::path(opts_.corpus_dir) /
                    ("crash_" + std::to_string(k) + ".json"))
                       .string();
    CrashReport crash;
    crash.target = job.target;
    crash.program = job.program;
    crash.schedule = rep.repro_schedule;
    crash.message = f.message;
    crash.faults = opts_.faults.names();
    write_crash(f.crash_file, crash);
    f.repro = "repro: fuzz_farm --crash=" + f.crash_file;
  } else {
    f.repro = "repro: (mutant in an in-memory run; pass --corpus=DIR to "
              "persist a replayable crash file)";
  }
  result.failures.push_back(std::move(f));
}

FarmResult Farm::run() {
  PMC_CHECK_MSG(opts_.seconds > 0 || opts_.max_execs > 0,
                "the farm needs a --time or --max-execs budget");
  const auto start = Clock::now();
  if (opts_.resume && !opts_.corpus_dir.empty() &&
      std::filesystem::exists(std::filesystem::path(opts_.corpus_dir) /
                              "corpus.json")) {
    corpus_ = Corpus::load(opts_.corpus_dir);
  }
  if (corpus_.entries().empty()) {
    // Fresh start: the canonical per-seed programs every mode shares. Each
    // new entry is scanned across the whole roster.
    for (uint64_t n = 0; n < opts_.initial_seeds; ++n) {
      const uint64_t seed = opts_.seed_base + n;
      const uint64_t id =
          corpus_.add("seed:" + std::to_string(seed),
                      explore::generate_program(explore::shape_for_seed(seed)));
      for (const rt::Target t : backends_) {
        Job scan;
        scan.entry_id = id;
        scan.from_corpus = true;
        scan.program = corpus_.entry(id).program;
        scan.target = t;
        scan.budget = opts_.session.explore.max_schedules;
        queue_.push_back(std::move(scan));
      }
    }
    next_blind_ = opts_.initial_seeds;
  }
  util::Rng rng(opts_.seed);
  FarmResult result;
  const int jobs = std::max(1, opts_.jobs);
  uint64_t last_progress_execs = 0;
  bool stop = false;
  while (!stop) {
    // One batch-synchronous round: jobs are chosen up front from the
    // pre-round corpus, run concurrently, and merged in job order.
    std::vector<Job> round;
    for (int i = 0; i < jobs; ++i) {
      if (opts_.max_execs != 0 &&
          result.execs + round.size() >= opts_.max_execs) {
        break;
      }
      round.push_back(next_job(rng));
    }
    if (round.empty()) break;
    std::vector<CheckReport> reps(round.size());
    std::vector<uint64_t> micros(round.size());
    const auto worker = [&](size_t i) {
      const auto t0 = Clock::now();
      explore::SessionOptions s = opts_.session;
      s.jobs = 1;
      s.explore.collect_trace_hashes = true;
      s.explore.max_schedules = round[i].budget;
      const explore::CheckSession session(s);
      const explore::GenProgramTarget target(round[i].program,
                                             round[i].target, opts_.faults);
      reps[i] = session.check(target);
      micros[i] = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                t0)
              .count());
    };
    if (round.size() == 1) {
      worker(0);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(round.size());
      for (size_t i = 0; i < round.size(); ++i) {
        pool.emplace_back(worker, i);
      }
      for (std::thread& t : pool) t.join();
    }
    for (size_t i = 0; i < round.size(); ++i) {
      process(round[i], reps[i], micros[i], result);
    }
    if (opts_.progress && result.execs - last_progress_execs >= 20) {
      last_progress_execs = result.execs;
      opts_.progress("[farm] execs=" + std::to_string(result.execs) +
                     " classes=" + std::to_string(corpus_.total_classes()) +
                     " corpus=" + std::to_string(corpus_.entries().size()) +
                     " failures=" + std::to_string(result.failures.size()) +
                     " t=" + std::to_string(seconds_since(start)) + "s");
    }
    if (opts_.max_execs != 0 && result.execs >= opts_.max_execs) stop = true;
    if (opts_.seconds > 0 && seconds_since(start) >= opts_.seconds) {
      stop = true;
    }
  }
  result.total_classes = corpus_.total_classes();
  result.corpus_size = corpus_.entries().size();
  result.growth = corpus_.growth();
  result.seconds = seconds_since(start);
  if (!opts_.corpus_dir.empty()) corpus_.save(opts_.corpus_dir);
  return result;
}

}  // namespace pmc::fuzz
