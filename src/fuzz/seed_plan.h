// One resolver for every seed-width knob of the fuzzing stack.
//
// Before PR 10 the test suites read PMC_FUZZ_SEEDS (program_gen's
// fuzz_seeds) while the CLI read --fuzz=N, with no defined relationship.
// SeedPlan is the single helper both route through, with one documented
// precedence order:
//
//   1. an explicit count from the caller (--fuzz=N, FarmOptions::seeds) —
//      a flag the user typed always wins;
//   2. the PMC_FUZZ_SEEDS environment variable — the CI/nightly widening
//      knob, honored whenever the caller passed no explicit count;
//   3. the caller's default.
//
// Counts are clamped to [1, 10000] wherever they came from, and the seed
// values themselves are base, base+1, ... — the contiguous sweep the ctest
// fuzz label's PRE_TEST discovery enumerates.
#pragma once

#include <cstdint>
#include <vector>

namespace pmc::fuzz {

struct SeedPlan {
  enum class Source { kDefault, kEnv, kFlag };

  uint64_t base = 0;
  uint64_t count = 1;
  Source source = Source::kDefault;

  /// base, base+1, ..., base+count-1.
  std::vector<uint64_t> seeds() const;

  /// Resolves the precedence above. `flag_count` < 0 means "no explicit
  /// count given"; 0 or negative-after-clamp inputs resolve to 1.
  static SeedPlan resolve(int def, int64_t flag_count = -1,
                          uint64_t base = 0);
};

const char* to_string(SeedPlan::Source source);

/// Shorthand for the test suites: the full seed list at default width
/// `def`, widened by PMC_FUZZ_SEEDS (the historical explore::fuzz_seeds).
std::vector<uint64_t> seed_sweep(int def = 10);

}  // namespace pmc::fuzz
