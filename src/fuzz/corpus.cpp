#include "fuzz/corpus.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "fuzz/mutate.h"
#include "obs/json.h"
#include "runtime/backends/registry.h"
#include "util/check.h"

namespace pmc::fuzz {

using explore::GenOp;
using explore::GenProgram;
using explore::ProgramShape;

namespace {

const char* kind_name(GenOp::Kind k) {
  switch (k) {
    case GenOp::Kind::kUpdate: return "update";
    case GenOp::Kind::kReadOnly: return "ro";
    case GenOp::Kind::kNested: return "nested";
    case GenOp::Kind::kCompute: return "compute";
    case GenOp::Kind::kFence: return "fence";
    case GenOp::Kind::kBarrier: return "barrier";
  }
  return "?";
}

void append_op_json(std::string& s, const GenOp& op) {
  s += "{\"kind\":\"";
  s += kind_name(op.kind);
  s += '"';
  switch (op.kind) {
    case GenOp::Kind::kUpdate:
      s += ",\"obj\":" + std::to_string(op.obj);
      s += ",\"arg\":" + std::to_string(op.arg);
      if (op.flush) {
        s += ",\"flush\":true,\"arg2\":" + std::to_string(op.arg2);
      }
      break;
    case GenOp::Kind::kReadOnly:
      s += ",\"obj\":" + std::to_string(op.obj);
      break;
    case GenOp::Kind::kNested:
      s += ",\"obj\":" + std::to_string(op.obj);
      s += ",\"obj2\":" + std::to_string(op.obj2);
      s += ",\"arg\":" + std::to_string(op.arg);
      break;
    case GenOp::Kind::kCompute:
      s += ",\"arg\":" + std::to_string(op.arg);
      break;
    case GenOp::Kind::kFence:
    case GenOp::Kind::kBarrier:
      break;
  }
  s += '}';
}

GenOp op_from_json(const JsonValue& v, const std::string& origin,
                   const std::string& field) {
  v.require_object(origin, field);
  const std::string& kind =
      v.get("kind", origin, field + ".kind").as_string(origin, field + ".kind");
  GenOp op;
  const auto obj_of = [&](const char* key) {
    return static_cast<int>(
        v.get(key, origin, field + "." + key).as_int(origin, field + "." + key));
  };
  const auto arg_of = [&](const char* key) {
    return static_cast<uint32_t>(v.get(key, origin, field + "." + key)
                                     .as_u64(origin, field + "." + key));
  };
  if (kind == "update") {
    op.kind = GenOp::Kind::kUpdate;
    op.obj = obj_of("obj");
    op.arg = arg_of("arg");
    if (const JsonValue* flush = v.find("flush")) {
      op.flush = flush->as_bool(origin, field + ".flush");
      if (op.flush) op.arg2 = arg_of("arg2");
    }
  } else if (kind == "ro") {
    op.kind = GenOp::Kind::kReadOnly;
    op.obj = obj_of("obj");
  } else if (kind == "nested") {
    op.kind = GenOp::Kind::kNested;
    op.obj = obj_of("obj");
    op.obj2 = obj_of("obj2");
    op.arg = arg_of("arg");
  } else if (kind == "compute") {
    op.kind = GenOp::Kind::kCompute;
    op.arg = arg_of("arg");
  } else if (kind == "fence") {
    op.kind = GenOp::Kind::kFence;
  } else if (kind == "barrier") {
    op.kind = GenOp::Kind::kBarrier;
  } else {
    PMC_CHECK_MSG(false, origin << ":" << v.line << ": field \"" << field
                                << ".kind\" names unknown op kind \"" << kind
                                << "\"");
  }
  return op;
}

int shape_int(const JsonValue& shape, const char* key,
              const std::string& origin) {
  const std::string field = std::string("program.shape.") + key;
  return static_cast<int>(
      shape.get(key, origin, field).as_int(origin, field));
}

void write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  PMC_CHECK_MSG(f != nullptr, "cannot open " << path << " for writing");
  const size_t n = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = n == text.size() && std::fclose(f) == 0;
  PMC_CHECK_MSG(ok, "short write to " << path);
}

std::string seed_file_name(uint64_t id) {
  return "seed_" + std::to_string(id) + ".json";
}

std::string entry_to_json(const SeedEntry& e) {
  std::string s = "{\n";
  s += "  \"id\": " + std::to_string(e.id) + ",\n";
  s += "  \"origin\": " + obs::json_quote(e.origin) + ",\n";
  s += "  \"stats\": {\"execs\": " + std::to_string(e.stats.execs) +
       ", \"classes_discovered\": " +
       std::to_string(e.stats.classes_discovered) +
       ", \"schedules_explored\": " +
       std::to_string(e.stats.schedules_explored) +
       ", \"dpor_pruned\": " + std::to_string(e.stats.dpor_pruned) +
       ", \"wall_micros\": " + std::to_string(e.stats.wall_micros) +
       ", \"last_new_exec\": " + std::to_string(e.stats.last_new_exec) +
       "},\n";
  s += "  \"program\": " + program_to_json(e.program) + "\n";
  s += "}\n";
  return s;
}

SeedEntry entry_from_json(const JsonValue& v, const std::string& origin) {
  v.require_object(origin, "entry");
  SeedEntry e;
  e.id = v.get("id", origin, "id").as_u64(origin, "id");
  e.origin = v.get("origin", origin, "origin").as_string(origin, "origin");
  const JsonValue& stats = v.get("stats", origin, "stats");
  stats.require_object(origin, "stats");
  const auto stat = [&](const char* key) {
    const std::string field = std::string("stats.") + key;
    return stats.get(key, origin, field).as_u64(origin, field);
  };
  e.stats.execs = stat("execs");
  e.stats.classes_discovered = stat("classes_discovered");
  e.stats.schedules_explored = stat("schedules_explored");
  e.stats.dpor_pruned = stat("dpor_pruned");
  e.stats.wall_micros = stat("wall_micros");
  e.stats.last_new_exec = stat("last_new_exec");
  e.program = program_from_json(v.get("program", origin, "program"), origin);
  return e;
}

}  // namespace

std::string program_to_json(const GenProgram& prog) {
  const ProgramShape& sh = prog.shape;
  std::string s = "{\"shape\": {\"seed\": " + std::to_string(sh.seed);
  s += ", \"cores\": " + std::to_string(sh.cores);
  s += ", \"objects\": " + std::to_string(sh.objects);
  s += ", \"steps\": " + std::to_string(sh.steps);
  s += ", \"flush_pct\": " + std::to_string(sh.flush_pct);
  s += ", \"barrier_pct\": " + std::to_string(sh.barrier_pct);
  s += ", \"ro_pct\": " + std::to_string(sh.ro_pct);
  s += ", \"nested_pct\": " + std::to_string(sh.nested_pct);
  s += ", \"compute_pct\": " + std::to_string(sh.compute_pct);
  s += ", \"fence_pct\": " + std::to_string(sh.fence_pct);
  s += "}, \"threads\": [";
  for (size_t t = 0; t < prog.threads.size(); ++t) {
    if (t) s += ", ";
    s += '[';
    for (size_t i = 0; i < prog.threads[t].size(); ++i) {
      if (i) s += ", ";
      append_op_json(s, prog.threads[t][i]);
    }
    s += ']';
  }
  s += "]}";
  return s;
}

GenProgram program_from_json(const JsonValue& v, const std::string& origin) {
  v.require_object(origin, "program");
  GenProgram prog;
  const JsonValue& shape = v.get("shape", origin, "program.shape");
  shape.require_object(origin, "program.shape");
  prog.shape.seed = shape.get("seed", origin, "program.shape.seed")
                        .as_u64(origin, "program.shape.seed");
  prog.shape.cores = shape_int(shape, "cores", origin);
  prog.shape.objects = shape_int(shape, "objects", origin);
  prog.shape.steps = shape_int(shape, "steps", origin);
  prog.shape.flush_pct = shape_int(shape, "flush_pct", origin);
  prog.shape.barrier_pct = shape_int(shape, "barrier_pct", origin);
  prog.shape.ro_pct = shape_int(shape, "ro_pct", origin);
  prog.shape.nested_pct = shape_int(shape, "nested_pct", origin);
  prog.shape.compute_pct = shape_int(shape, "compute_pct", origin);
  prog.shape.fence_pct = shape_int(shape, "fence_pct", origin);
  const JsonValue& threads = v.get("threads", origin, "program.threads");
  for (const JsonValue& th : threads.as_array(origin, "program.threads")) {
    std::vector<GenOp> ops;
    const std::string field =
        "program.threads[" + std::to_string(prog.threads.size()) + "]";
    for (const JsonValue& opv : th.as_array(origin, field)) {
      ops.push_back(op_from_json(opv, origin, field));
    }
    prog.threads.push_back(std::move(ops));
  }
  std::string why;
  PMC_CHECK_MSG(well_formed(prog, &why), origin << ":" << v.line
                                                << ": field \"program\" is "
                                                   "not a runnable program: "
                                                << why);
  return prog;
}

uint64_t Corpus::add(std::string origin, GenProgram program) {
  std::string why;
  PMC_CHECK_MSG(well_formed(program, &why),
                "refusing to add a malformed program (" << origin
                                                        << "): " << why);
  SeedEntry e;
  e.id = next_id_++;
  e.origin = std::move(origin);
  e.program = std::move(program);
  entries_.push_back(std::move(e));
  return entries_.back().id;
}

SeedEntry& Corpus::entry(uint64_t id) {
  for (SeedEntry& e : entries_) {
    if (e.id == id) return e;
  }
  PMC_CHECK_MSG(false, "no corpus entry with id " << id);
  std::abort();  // unreachable
}

uint64_t Corpus::note_classes(const std::string& backend,
                              const std::vector<uint64_t>& hashes) {
  std::set<uint64_t>& set = classes_[backend];
  uint64_t fresh = 0;
  for (const uint64_t h : hashes) {
    if (set.insert(h).second) ++fresh;
  }
  return fresh;
}

uint64_t Corpus::total_classes() const {
  uint64_t n = 0;
  for (const auto& [backend, set] : classes_) {
    (void)backend;
    n += set.size();
  }
  return n;
}

void Corpus::record_growth() {
  const uint64_t classes = total_classes();
  if (!growth_.empty() && growth_.back().second == classes) return;
  growth_.emplace_back(total_execs_, classes);
}

void Corpus::save(const std::string& dir) const {
  std::filesystem::create_directories(dir);
  std::string s = "{\n";
  s += "  \"version\": 1,\n";
  s += "  \"next_id\": " + std::to_string(next_id_) + ",\n";
  s += "  \"next_crash\": " + std::to_string(next_crash_) + ",\n";
  s += "  \"total_execs\": " + std::to_string(total_execs_) + ",\n";
  s += "  \"entries\": [";
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(entries_[i].id);
  }
  s += "],\n";
  s += "  \"classes\": {";
  bool first_backend = true;
  for (const auto& [backend, set] : classes_) {  // std::map: sorted by name
    if (!first_backend) s += ",";
    first_backend = false;
    s += "\n    " + obs::json_quote(backend) + ": [";
    bool first_hash = true;
    for (const uint64_t h : set) {  // std::set: ascending
      if (!first_hash) s += ", ";
      first_hash = false;
      s += std::to_string(h);
    }
    s += "]";
  }
  s += classes_.empty() ? "},\n" : "\n  },\n";
  s += "  \"growth\": [";
  for (size_t i = 0; i < growth_.size(); ++i) {
    if (i) s += ", ";
    s += "[" + std::to_string(growth_[i].first) + ", " +
         std::to_string(growth_[i].second) + "]";
  }
  s += "]\n}\n";
  const std::filesystem::path base(dir);
  write_text_file((base / "corpus.json").string(), s);
  for (const SeedEntry& e : entries_) {
    write_text_file((base / seed_file_name(e.id)).string(), entry_to_json(e));
  }
}

Corpus Corpus::load(const std::string& dir) {
  const std::filesystem::path base(dir);
  const std::string index_path = (base / "corpus.json").string();
  const JsonValue index = json_parse_file(index_path);
  index.require_object(index_path, "corpus");
  const uint64_t version =
      index.get("version", index_path, "version").as_u64(index_path, "version");
  PMC_CHECK_MSG(version == 1, index_path << ": field \"version\" is "
                                         << version
                                         << ", this build reads version 1");
  Corpus c;
  c.next_id_ =
      index.get("next_id", index_path, "next_id").as_u64(index_path, "next_id");
  c.next_crash_ = index.get("next_crash", index_path, "next_crash")
                      .as_u64(index_path, "next_crash");
  c.total_execs_ = index.get("total_execs", index_path, "total_execs")
                       .as_u64(index_path, "total_execs");
  const JsonValue& classes = index.get("classes", index_path, "classes");
  classes.require_object(index_path, "classes");
  for (const auto& [backend, arr] : classes.members) {
    PMC_CHECK_MSG(rt::find_backend(backend) != nullptr,
                  index_path << ":" << arr.line << ": field \"classes."
                             << backend
                             << "\" names an unregistered back-end (want "
                             << rt::backend_names() << ")");
    std::set<uint64_t>& set = c.classes_[backend];
    const std::string field = "classes." + backend;
    for (const JsonValue& h : arr.as_array(index_path, field)) {
      set.insert(h.as_u64(index_path, field + "[]"));
    }
  }
  for (const JsonValue& sample :
       index.get("growth", index_path, "growth")
           .as_array(index_path, "growth")) {
    const auto& pair = sample.as_array(index_path, "growth[]");
    PMC_CHECK_MSG(pair.size() == 2,
                  index_path << ":" << sample.line
                             << ": field \"growth[]\" must be an "
                                "[execs, classes] pair");
    c.growth_.emplace_back(pair[0].as_u64(index_path, "growth[].execs"),
                           pair[1].as_u64(index_path, "growth[].classes"));
  }
  for (const JsonValue& idv : index.get("entries", index_path, "entries")
                                  .as_array(index_path, "entries")) {
    const uint64_t id = idv.as_u64(index_path, "entries[]");
    PMC_CHECK_MSG(id < c.next_id_, index_path
                                       << ":" << idv.line
                                       << ": field \"entries[]\" id " << id
                                       << " is >= next_id " << c.next_id_);
    const std::string path = (base / seed_file_name(id)).string();
    SeedEntry e = entry_from_json(json_parse_file(path), path);
    PMC_CHECK_MSG(e.id == id, path << ": field \"id\" is " << e.id
                                   << ", the index lists this file as seed "
                                   << id);
    c.entries_.push_back(std::move(e));
  }
  return c;
}

}  // namespace pmc::fuzz
