// The long-running coverage-guided fuzzing farm (DESIGN.md §14).
//
// The unit of work is one *exec*: one GenProgram model-checked on one
// back-end through the full CheckSession pipeline, with hb-class export on
// (ExploreConfig::collect_trace_hashes). The farm drains a deterministic
// work queue of such jobs against a persistent Corpus:
//
//  * every corpus entry is scanned across the whole back-end roster when it
//    enters the corpus;
//  * with mutation on, further execs come from energy-weighted parent
//    selection — parents that recently contributed new hb-classes are drawn
//    more often — and a mutant is promoted into the corpus (triggering its
//    own roster scan) only when its exec reached classes no earlier exec
//    had. Each exec's schedule budget scales with the parent's observed
//    DPOR reduction ratio: spaces the sleep-set pruner collapses well are
//    cheap to search deeper (the PR 4 scheduler item);
//  * with mutation off (the blind baseline the acceptance test compares
//    against), further execs are fresh canonical shape_for_seed programs —
//    identical initial seeds, identical per-exec budget, no feedback.
//
// Determinism: at jobs=1 the whole run is a pure function of (FarmOptions,
// loaded corpus) except wall-clock stop (use max_execs for bit-exact runs).
// jobs>1 runs batch-synchronous rounds — jobs are *chosen* before the round
// from the pre-round corpus and merged in job order, so the schedule of
// execs stays deterministic and only the deadline cut-off point can move.
//
// Failures funnel through the session's canonicalize → shrink → minimize
// pipeline. A failing program the CLI can regenerate from its seed gets the
// standard repro_line; a mutant (no generating seed) is persisted as
// crash_<k>.json in the corpus directory with a `fuzz_farm --crash=` replay
// line instead.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "explore/check.h"
#include "explore/decision.h"
#include "fuzz/corpus.h"
#include "fuzz/mutate.h"
#include "runtime/program.h"

namespace pmc::fuzz {

/// The per-exec session defaults the farm and its benches share: shallow
/// bounds (one preemption, short horizon, small schedule cap) so an exec is
/// milliseconds and the budget buys breadth, sleep-set DPOR so the cap buys
/// distinct behaviors, and hb-class export on — the farm's entire feedback
/// signal.
explore::SessionOptions default_farm_session();

struct FarmOptions {
  /// Corpus directory; loaded first when `resume`, saved on exit. Empty
  /// runs fully in memory (no crash files, no persistence).
  std::string corpus_dir;
  /// Wall-clock budget in seconds (0 = none). At least one of `seconds` /
  /// `max_execs` must be set.
  double seconds = 0;
  /// Exec budget for *this run* (0 = none); the deterministic knob.
  uint64_t max_execs = 0;
  /// Concurrent farm workers. Each exec's session always runs jobs=1; this
  /// is parallelism across execs.
  int jobs = 1;
  /// Back-end roster; empty means every simulated back-end.
  std::vector<rt::Target> backends;
  /// Farm RNG seed — mutation draws and energy selection.
  uint64_t seed = 0;
  /// Off: the blind-random-seeding baseline.
  bool mutate = true;
  /// How many canonical shape_for_seed programs seed an empty corpus, and
  /// the first seed value (resolve the count through SeedPlan).
  uint64_t initial_seeds = 8;
  uint64_t seed_base = 0;
  /// Seeded protocol faults (self-test soak mode).
  rt::FaultInjection faults;
  /// Load corpus_dir before running (missing directory = fresh start).
  bool resume = false;
  explore::SessionOptions session = default_farm_session();
  MutationLimits limits;
  /// Optional one-line progress sink (the CLI's stdout printer).
  std::function<void(const std::string&)> progress;
};

struct FarmFailure {
  /// Corpus entry the failing exec ran (or the mutant's parent when the
  /// mutant itself was never promoted).
  uint64_t entry_id = 0;
  rt::Target target = rt::Target::kNoCC;
  explore::GenProgram program;           // minimized
  explore::DecisionString schedule;      // minimized against `program`
  std::string message;
  std::string repro;       // one-command reproduction line
  std::string crash_file;  // crash_<k>.json path; empty for seed repros
};

struct FarmResult {
  uint64_t execs = 0;        // execs this run
  uint64_t new_classes = 0;  // hb-classes first reached this run
  uint64_t total_classes = 0;  // corpus-wide, after the run
  uint64_t schedules = 0;
  uint64_t dpor_pruned = 0;
  uint64_t corpus_size = 0;
  double seconds = 0;
  std::vector<FarmFailure> failures;
  /// The corpus's full (execs, total_classes) curve, including history from
  /// resumed runs.
  std::vector<std::pair<uint64_t, uint64_t>> growth;
};

/// A persisted failing execution a future fuzz_farm --crash= run can
/// replay: the exact program plus the minimized-on-it schedule.
struct CrashReport {
  rt::Target target = rt::Target::kNoCC;
  explore::GenProgram program;  // the original (unshrunk) failing program
  explore::DecisionString schedule;
  std::string message;
  std::vector<std::string> faults;  // seeded-fault names to re-inject
};

void write_crash(const std::string& path, const CrashReport& crash);
/// Throws util::CheckFailure with file:line + field on anything malformed.
CrashReport load_crash(const std::string& path);

class Farm {
 public:
  explicit Farm(FarmOptions opts);

  /// Drains the budget; loads/saves the corpus per FarmOptions.
  FarmResult run();

  const Corpus& corpus() const { return corpus_; }

 private:
  struct Job {
    uint64_t entry_id = 0;        // scanned entry, or a mutant's parent
    bool from_corpus = false;     // true: `program` is entry_id's program
    explore::GenProgram program;  // the program this exec runs
    std::string origin;           // promotion origin for non-corpus programs
    rt::Target target = rt::Target::kNoCC;
    uint64_t budget = 0;  // per-exec schedule cap (max_schedules)
  };
  Job next_job(util::Rng& rng);
  uint64_t pick_parent(util::Rng& rng) const;
  uint64_t schedule_budget(uint64_t entry_id) const;
  void process(const Job& job, const explore::CheckReport& rep,
               uint64_t wall_micros, FarmResult& result);

  FarmOptions opts_;
  std::vector<rt::Target> backends_;
  Corpus corpus_;
  std::vector<Job> queue_;  // FIFO of roster-scan jobs (front = next)
  uint64_t backend_rr_ = 0;  // round-robin cursor for single-exec jobs
  uint64_t next_blind_ = 0;  // next fresh canonical seed (blind mode)
  std::vector<std::pair<std::string, std::string>> failure_keys_;
};

}  // namespace pmc::fuzz
