// Locks over the simulated SoC.
//
// Two implementations behind one interface:
//
//  * SpinLockManager — the naive baseline: a lock word in SDRAM hammered
//    with remote test-and-set until free. Every poll is an atomic-unit
//    round trip over the shared bus.
//
//  * DistLockManager — the paper's distributed lock (substitution for
//    ref. [15], see DESIGN.md §2): an MCS-style queue whose tail word lives
//    in SDRAM, while every waiter spins on a grant flag in its *own* local
//    memory; the releaser hands over with a single write into the
//    successor's local memory across the write-only NoC. Uncontended
//    acquire/release is one atomic each; contended handoff costs one NoC
//    packet and zero SDRAM polls.
//
// Memory layout: lock i uses one SDRAM word at sdram_area + i·64 (cache-line
// separated), and — for the distributed lock — two words (grant, next) at
// lm_offset + i·8 in every tile's local memory.
//
// Locks provide mutual exclusion only. Data visibility is deliberately NOT
// their job: the PMC runtime back-ends implement the entry/exit data
// movement of Table II on top.
#pragma once

#include <cstdint>

#include "sim/machine.h"

namespace pmc::sync {

/// Abstract lock manager: a pool of locks identified by dense ids.
class LockManager {
 public:
  virtual ~LockManager() = default;

  /// Creates a new lock (before Machine::run only). Returns its id.
  virtual int create() = 0;
  virtual int num_locks() const = 0;

  virtual void acquire(sim::Core& core, int lock) = 0;
  virtual void release(sim::Core& core, int lock) = 0;

  /// The core that most recently held the lock (for the runtime's
  /// "flush on transfer" decision in Table II), or -1 if never held.
  /// Only meaningful for the current holder, between acquire and release.
  virtual int previous_holder(int lock) const = 0;
  /// The most recent owner of the lock (or -1 if never acquired).
  virtual int last_owner(int lock) const = 0;

  /// Registers all host-side mutable bookkeeping (holder history, handoff
  /// counters) with the machine's snapshot contract (DESIGN.md §10). Call
  /// after the last create() — vector storage must be final.
  virtual void register_state(sim::Machine& m) = 0;
};

/// Naive remote test-and-set lock.
class SpinLockManager final : public LockManager {
 public:
  SpinLockManager(sim::Machine& m, sim::Addr sdram_area, uint32_t area_bytes);

  int create() override;
  int num_locks() const override { return num_locks_; }
  void acquire(sim::Core& core, int lock) override;
  void release(sim::Core& core, int lock) override;
  int previous_holder(int lock) const override { return prev_holder_[lock]; }
  int last_owner(int lock) const override { return last_owner_[lock]; }
  void register_state(sim::Machine& m) override;

 private:
  sim::Addr word(int lock) const;

  sim::Machine& m_;
  sim::Addr area_;
  uint32_t capacity_;
  int num_locks_ = 0;
  std::vector<int> prev_holder_;
  std::vector<int> last_owner_;
  std::vector<int> current_holder_;
};

/// MCS-style distributed lock with local-memory spinning.
class DistLockManager final : public LockManager {
 public:
  /// lm_offset: offset within every tile's local memory reserved for the
  /// per-lock {grant, next} words (8 bytes per lock).
  DistLockManager(sim::Machine& m, sim::Addr sdram_area, uint32_t area_bytes,
                  uint32_t lm_offset, uint32_t lm_bytes);

  int create() override;
  int num_locks() const override { return num_locks_; }
  void acquire(sim::Core& core, int lock) override;
  void release(sim::Core& core, int lock) override;
  int previous_holder(int lock) const override { return prev_holder_[lock]; }
  int last_owner(int lock) const override { return last_owner_[lock]; }
  void register_state(sim::Machine& m) override;

  uint64_t handoffs() const { return handoffs_; }

 private:
  sim::Addr tail_word(int lock) const;
  sim::Addr grant_addr(int core, int lock) const;
  sim::Addr next_addr(int core, int lock) const;

  sim::Machine& m_;
  sim::Addr area_;
  uint32_t capacity_;
  uint32_t lm_offset_;
  uint32_t lm_capacity_;
  int num_locks_ = 0;
  uint64_t handoffs_ = 0;
  std::vector<int> prev_holder_;
  std::vector<int> last_owner_;
  std::vector<int> current_holder_;
};

}  // namespace pmc::sync
