#include "sync/barrier.h"

#include "util/check.h"

namespace pmc::sync {

Barrier::Barrier(sim::Machine& m, sim::Addr count_word, uint32_t lm_flag_offset)
    : m_(m), count_(count_word), lm_flag_offset_(lm_flag_offset) {
  PMC_CHECK(m_.sdram().contains(count_word, 4));
  PMC_CHECK(lm_flag_offset + 4 <= m_.config().lm_bytes);
  epoch_.assign(static_cast<size_t>(m_.num_cores()), 0);
}

void Barrier::wait(sim::Core& core) {
  const int me = core.id();
  const int n = core.num_cores();
  const uint64_t t0 = core.now();
  const uint32_t sense = (++epoch_[me]) & 1;
  const uint32_t arrived = core.atomic_add(count_, 1);
  PMC_CHECK(arrived < static_cast<uint32_t>(n));
  if (arrived == static_cast<uint32_t>(n) - 1) {
    // Last one in: reset the counter, then release everyone through their
    // local memories (fast local spinning for the waiters).
    core.atomic_swap(count_, 0);
    for (int t = 0; t < n; ++t) {
      if (t == me) continue;
      core.remote_write(t, m_.lm_base(t) + lm_flag_offset_, &sense, 4);
    }
    core.store_u32(m_.lm_base(me) + lm_flag_offset_, sense,
                   sim::MemClass::kSync);
    ++rounds_;
  } else {
    const sim::Addr flag = m_.lm_base(me) + lm_flag_offset_;
    // Coarse backoff: barrier waits can span long phases, and the local
    // flag costs nothing to leave unpolled.
    core.spin_until(
        [&] { return core.load_u32(flag, sim::MemClass::kSync) == sense; },
        /*backoff_start=*/8, /*backoff_max=*/4096);
  }
  if (m_.tracing()) {
    // One slice spanning arrival to release (DESIGN.md §11); aux = epoch.
    obs::TraceEvent e;
    e.kind = obs::EventKind::kBarrier;
    e.core = static_cast<int16_t>(me);
    e.aux = static_cast<uint16_t>(epoch_[me]);
    e.t0 = t0;
    e.t1 = core.now();
    m_.trace_recorder()->record(e);
  }
}

void Barrier::register_state(sim::Machine& m) {
  m.register_state(epoch_.data(), epoch_.size() * sizeof(uint32_t));
  m.register_state(&rounds_, sizeof(rounds_));
}

}  // namespace pmc::sync
