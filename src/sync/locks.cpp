#include "sync/locks.h"

#include "util/check.h"

namespace pmc::sync {

namespace {
constexpr uint32_t kLockStride = 64;  // one SDRAM word per lock, line-separated
constexpr uint32_t kLmPerLock = 8;    // {grant, next} words per lock per tile

/// Records a lock-op slice [t0, core.now()] when tracing (DESIGN.md §11);
/// aux carries the lock id.
void trace_op(sim::Machine& m, sim::Core& core, obs::EventKind kind,
              uint64_t t0, int lock) {
  if (!m.tracing()) return;
  obs::TraceEvent e;
  e.kind = kind;
  e.core = static_cast<int16_t>(core.id());
  e.aux = static_cast<uint16_t>(lock);
  e.t0 = t0;
  e.t1 = core.now();
  m.trace_recorder()->record(e);
}
}  // namespace

// ---------------------------------------------------------------------------
// SpinLockManager
// ---------------------------------------------------------------------------

SpinLockManager::SpinLockManager(sim::Machine& m, sim::Addr sdram_area,
                                 uint32_t area_bytes)
    : m_(m), area_(sdram_area), capacity_(area_bytes / kLockStride) {
  PMC_CHECK(m_.sdram().contains(sdram_area, area_bytes));
}

sim::Addr SpinLockManager::word(int lock) const {
  PMC_CHECK(lock >= 0 && lock < num_locks_);
  return area_ + static_cast<sim::Addr>(lock) * kLockStride;
}

int SpinLockManager::create() {
  PMC_CHECK_MSG(num_locks_ < static_cast<int>(capacity_),
                "lock area exhausted");
  prev_holder_.push_back(-1);
  last_owner_.push_back(-1);
  current_holder_.push_back(-1);
  return num_locks_++;
}

void SpinLockManager::acquire(sim::Core& core, int lock) {
  PMC_CHECK_MSG(current_holder_[lock] != core.id(), "lock is not reentrant");
  const uint64_t t0 = core.now();
  uint32_t backoff = 4;
  // Remote test-and-set until the word was free: every poll is an
  // atomic-unit round trip — the cost the distributed lock avoids.
  while (core.atomic_swap(word(lock), 1) != 0) {
    core.idle(backoff);
    backoff = backoff < 512 ? backoff * 2 : 512;
  }
  prev_holder_[lock] = last_owner_[lock];
  last_owner_[lock] = core.id();
  current_holder_[lock] = core.id();
  trace_op(m_, core, obs::EventKind::kLockAcquire, t0, lock);
}

void SpinLockManager::release(sim::Core& core, int lock) {
  PMC_CHECK_MSG(current_holder_[lock] == core.id(),
                "release by core " << core.id() << " of a lock held by "
                                   << current_holder_[lock]);
  const uint64_t t0 = core.now();
  current_holder_[lock] = -1;
  core.store_u32(word(lock), 0, sim::MemClass::kSync);
  trace_op(m_, core, obs::EventKind::kLockRelease, t0, lock);
}

// ---------------------------------------------------------------------------
// DistLockManager
// ---------------------------------------------------------------------------

DistLockManager::DistLockManager(sim::Machine& m, sim::Addr sdram_area,
                                 uint32_t area_bytes, uint32_t lm_offset,
                                 uint32_t lm_bytes)
    : m_(m),
      area_(sdram_area),
      capacity_(area_bytes / kLockStride),
      lm_offset_(lm_offset),
      lm_capacity_(lm_bytes / kLmPerLock) {
  PMC_CHECK(m_.sdram().contains(sdram_area, area_bytes));
  PMC_CHECK(lm_offset + lm_bytes <= m_.config().lm_bytes);
}

sim::Addr DistLockManager::tail_word(int lock) const {
  PMC_CHECK(lock >= 0 && lock < num_locks_);
  return area_ + static_cast<sim::Addr>(lock) * kLockStride;
}

sim::Addr DistLockManager::grant_addr(int core, int lock) const {
  return m_.lm_base(core) + lm_offset_ +
         static_cast<sim::Addr>(lock) * kLmPerLock;
}

sim::Addr DistLockManager::next_addr(int core, int lock) const {
  return grant_addr(core, lock) + 4;
}

int DistLockManager::create() {
  PMC_CHECK_MSG(num_locks_ < static_cast<int>(capacity_) &&
                    num_locks_ < static_cast<int>(lm_capacity_),
                "lock area exhausted");
  prev_holder_.push_back(-1);
  last_owner_.push_back(-1);
  current_holder_.push_back(-1);
  return num_locks_++;
}

void DistLockManager::acquire(sim::Core& core, int lock) {
  const int me = core.id();
  PMC_CHECK_MSG(current_holder_[lock] != me, "lock is not reentrant");
  const uint64_t t0 = core.now();
  // Swap ourselves in as the queue tail: one atomic, contended or not.
  const uint32_t prev = core.atomic_swap(tail_word(lock), me + 1);
  if (prev != 0) {
    // Link behind the previous tail, then spin on our *local* grant flag —
    // polling never leaves the tile (the asymmetric property of ref. [15]).
    const uint32_t link = static_cast<uint32_t>(me + 1);
    core.remote_write(static_cast<int>(prev) - 1,
                      next_addr(static_cast<int>(prev) - 1, lock), &link, 4);
    const sim::Addr g = grant_addr(me, lock);
    core.spin_until(
        [&] { return core.load_u32(g, sim::MemClass::kSync) == 1; });
    core.store_u32(g, 0, sim::MemClass::kSync);  // consume the grant
  }
  prev_holder_[lock] = last_owner_[lock];
  last_owner_[lock] = me;
  current_holder_[lock] = me;
  trace_op(m_, core, obs::EventKind::kLockAcquire, t0, lock);
}

void DistLockManager::release(sim::Core& core, int lock) {
  const int me = core.id();
  PMC_CHECK_MSG(current_holder_[lock] == me,
                "release by core " << me << " of a lock held by "
                                   << current_holder_[lock]);
  const uint64_t t0 = core.now();
  current_holder_[lock] = -1;
  const sim::Addr n = next_addr(me, lock);
  uint32_t nx = core.load_u32(n, sim::MemClass::kSync);
  if (nx == 0) {
    // Nobody visibly queued: try to close the queue.
    if (core.atomic_cas(tail_word(lock), static_cast<uint32_t>(me + 1), 0) ==
        static_cast<uint32_t>(me + 1)) {
      trace_op(m_, core, obs::EventKind::kLockRelease, t0, lock);
      return;
    }
    // A requester swapped in; its link write is in flight to our local
    // memory. Wait for it locally.
    core.spin_until(
        [&] { return (nx = core.load_u32(n, sim::MemClass::kSync)) != 0; });
  }
  core.store_u32(n, 0, sim::MemClass::kSync);  // reset for our next round
  // Hand over with a single write into the successor's local memory.
  const uint32_t one = 1;
  core.remote_write(static_cast<int>(nx) - 1,
                    grant_addr(static_cast<int>(nx) - 1, lock), &one, 4);
  ++handoffs_;
  trace_op(m_, core, obs::EventKind::kLockRelease, t0, lock);
}

void SpinLockManager::register_state(sim::Machine& m) {
  if (num_locks_ == 0) return;
  m.register_state(prev_holder_.data(), prev_holder_.size() * sizeof(int));
  m.register_state(last_owner_.data(), last_owner_.size() * sizeof(int));
  m.register_state(current_holder_.data(),
                   current_holder_.size() * sizeof(int));
}

void DistLockManager::register_state(sim::Machine& m) {
  m.register_state(&handoffs_, sizeof(handoffs_));
  if (num_locks_ == 0) return;
  m.register_state(prev_holder_.data(), prev_holder_.size() * sizeof(int));
  m.register_state(last_owner_.data(), last_owner_.size() * sizeof(int));
  m.register_state(current_holder_.data(),
                   current_holder_.size() * sizeof(int));
}

}  // namespace pmc::sync
