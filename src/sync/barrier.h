// Sense-reversing barrier: one atomic-unit counter in SDRAM, release by
// broadcast writes into every tile's local sense flag over the NoC, so
// waiters spin locally.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.h"

namespace pmc::sync {

class Barrier {
 public:
  /// count_word: a free SDRAM word (cache-line separated from data).
  /// lm_flag_offset: offset of a free word in every tile's local memory.
  Barrier(sim::Machine& m, sim::Addr count_word, uint32_t lm_flag_offset);

  /// Blocks (in simulated time) until all cores arrived.
  void wait(sim::Core& core);

  uint64_t rounds() const { return rounds_; }

  /// Registers host-side mutable state (per-core epochs, round counter)
  /// with the machine's snapshot contract (DESIGN.md §10).
  void register_state(sim::Machine& m);

 private:
  sim::Machine& m_;
  sim::Addr count_;
  uint32_t lm_flag_offset_;
  std::vector<uint32_t> epoch_;  // per core; only touched by that core
  uint64_t rounds_ = 0;
};

}  // namespace pmc::sync
