// Cycle-accurate event tracing for the simulated SoC (DESIGN.md §11).
//
// A TraceRecorder is a fixed-capacity ring of POD TraceEvents, cheap enough
// to hang off sim::Machine permanently: when no recorder is attached the
// instrumentation points cost one predictable branch, and when one is
// attached but disarmed they cost two. Events carry simulated time only
// (never wall clock), so the same schedule produces byte-identical traces
// on every engine, job count, and host.
//
// Snapshot contract: recorder state deep-copies through snapshot()/restore()
// so the stateful engine (DESIGN.md §10) rolls abandoned-branch events back
// along with the machine — but the buffer is deliberately *excluded* from
// Machine::digest(), because the digest certifies simulator state, and the
// trace is a log of how we got there, not part of "there".
//
// chrome_trace_json() renders the buffer in the Chrome trace-event format
// (https://ui.perfetto.dev loads it directly): one thread track per core
// (scheduler run slices with memory/sync events nested inside), counter
// tracks sampled from sim::CoreStats, and flow arrows connecting every NoC
// send to its delivery.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pmc::obs {

enum class EventKind : uint8_t {
  // Scheduler (src/sim/scheduler.cpp).
  kDispatch,  // core starts running; t0 = its clock after any frontier warp
  kPark,      // core yields (or finishes: aux = 1)
  kWarp,      // frontier warp: core's clock jumped from t0 to t1 (DESIGN §6)
  // Core-local time (src/sim/machine.cpp).
  kCompute,  // aux = instructions
  kIdle,
  kWait,  // wait_until / charge_stall
  // Memory, with address. aux = sim::MemClass for loads/stores.
  kLoad,
  kStore,
  kAtomic,     // aux: 0 = swap, 1 = add, 2 = cas
  kCacheHit,   // addr = line
  kCacheMiss,  // addr = line (instant, at detection)
  kCacheFill,  // addr = line; the SDRAM line fill that services a miss
  kWriteback,  // addr = victim line; arg = SDRAM arrival cycle
  kFlush,      // wbinval/inval over [addr, addr+len); aux = lines touched
  kDmaRead,
  kDmaWrite,
  kNocSend,   // aux = destination core, arg = arrival cycle
  kNocQueue,  // contention instant after a send: aux = destination core,
              // len = link-stall cycles, arg = destination-port wait cycles
  // Sync objects (src/sync). aux = lock id / barrier round.
  kLockAcquire,
  kLockRelease,
  kBarrier,
  // CoreStats sample (counter track). aux = CounterId, arg = value.
  kCounter,
};

/// Display name used for the Perfetto slice (stable; part of the trace
/// byte-equality contract).
const char* event_name(EventKind k);

/// Cumulative per-core CoreStats series sampled onto counter tracks.
enum class CounterId : uint16_t {
  kBusy,
  kStall,
  kIdle,
  kDcacheMisses,
  kNocBytes,
};
inline constexpr int kNumCounters = 5;
const char* counter_name(CounterId id);

/// One event. Value type, 48 bytes, no owned storage: recording is a bounds
/// check plus a struct store.
struct TraceEvent {
  EventKind kind = EventKind::kCompute;
  int16_t core = -1;
  uint16_t aux = 0;
  uint32_t len = 0;
  uint64_t t0 = 0;  // start cycle (this core's clock)
  uint64_t t1 = 0;  // end cycle; t1 == t0 for instants
  uint64_t addr = 0;
  uint64_t arg = 0;

  friend bool operator==(const TraceEvent& a, const TraceEvent& b) {
    return a.kind == b.kind && a.core == b.core && a.aux == b.aux &&
           a.len == b.len && a.t0 == b.t0 && a.t1 == b.t1 &&
           a.addr == b.addr && a.arg == b.arg;
  }
};

class TraceRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 1u << 16;

  explicit TraceRecorder(size_t capacity = kDefaultCapacity);

  /// Armed ⇒ instrumentation points record. A disarmed recorder is the
  /// "attached but off" state bench_explore prices as trace_overhead_pct:
  /// every instrumentation point is guarded by
  /// `trace != nullptr && trace->armed()` before any event is built.
  bool armed() const { return armed_; }
  void arm() { armed_ = true; }
  void disarm() { armed_ = false; }

  /// Appends an event; once full the ring overwrites the oldest event and
  /// counts it in dropped(). Callers check armed() first.
  void record(const TraceEvent& e) {
    if (size_ == ring_.size()) {
      ++dropped_;
    } else {
      ++size_;
    }
    ring_[head_] = e;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  }

  /// Throttle for CoreStats counter sampling: true at most once per
  /// counter_period() cycles per core (and always for a core's first
  /// sample). Advances the core's next-due time when it fires.
  bool counter_due(int core, uint64_t now);

  uint64_t counter_period() const { return counter_period_; }
  void set_counter_period(uint64_t cycles) {
    counter_period_ = cycles == 0 ? 1 : cycles;
  }

  size_t capacity() const { return ring_.size(); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint64_t dropped() const { return dropped_; }

  void clear();

  /// The buffered events, oldest first.
  std::vector<TraceEvent> events() const;

  /// Deep copy of all recorder state (buffer stored compacted, so a
  /// snapshot costs O(size), not O(capacity)).
  struct Snapshot {
    std::vector<TraceEvent> events;
    uint64_t dropped = 0;
    uint64_t counter_period = 256;
    bool armed = true;
    std::vector<uint64_t> next_sample;
  };
  Snapshot snapshot() const;
  void restore(const Snapshot& s);

 private:
  std::vector<TraceEvent> ring_;
  size_t head_ = 0;  // next write slot
  size_t size_ = 0;
  uint64_t dropped_ = 0;
  bool armed_ = true;
  uint64_t counter_period_ = 256;
  std::vector<uint64_t> next_sample_;  // per core, grown on demand
};

/// Renders events as a Chrome trace-event JSON document ("traceEvents"
/// array; ts unit = 1 simulated cycle). Deterministic: byte-identical
/// events produce a byte-identical document.
std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              uint64_t dropped = 0);

inline std::string chrome_trace_json(const TraceRecorder& rec) {
  return chrome_trace_json(rec.events(), rec.dropped());
}

}  // namespace pmc::obs
