#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "obs/json.h"

namespace pmc::obs {

void Histogram::observe(double v) {
  if (count == 0) {
    min = max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  ++count;
  sum += v;
  int b = 0;
  if (v >= 1) {
    b = 1 + static_cast<int>(std::floor(std::log2(v)));
    b = std::min(b, kBuckets - 1);
  }
  ++buckets[b];
}

double Histogram::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank = std::min<uint64_t>(
      count - 1, static_cast<uint64_t>(q * static_cast<double>(count)));
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets[b];
    if (seen > rank) {
      const double hi = b == 0 ? 1.0 : std::ldexp(1.0, b);
      return std::clamp(hi, min, max);
    }
  }
  return max;
}

void Histogram::merge(const Histogram& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  for (int i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
}

uint64_t MetricsRegistry::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

const Histogram* MetricsRegistry::histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [k, v] : other.counters_) counters_[k] += v;
  for (const auto& [k, v] : other.gauges_) gauges_[k] = v;
  for (const auto& [k, v] : other.histograms_) histograms_[k].merge(v);
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [k, v] : counters_) {
    if (!first) out += ",";
    first = false;
    out += json_quote(k) + ":" + json_number(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [k, v] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += json_quote(k) + ":" + json_number(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [k, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += json_quote(k) + ":{\"count\":" + json_number(h.count) +
           ",\"sum\":" + json_number(h.sum) + ",\"min\":" + json_number(h.min) +
           ",\"max\":" + json_number(h.max) + ",\"buckets\":[";
    // Trailing empty buckets are elided; the fixed shape makes the merge
    // exact, not the export verbose.
    int last = Histogram::kBuckets - 1;
    while (last > 0 && h.buckets[last] == 0) --last;
    for (int i = 0; i <= last; ++i) {
      if (i != 0) out += ",";
      out += json_number(h.buckets[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace pmc::obs
