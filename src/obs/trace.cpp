#include "obs/trace.h"

#include <algorithm>
#include <unordered_map>

#include "obs/json.h"
#include "util/check.h"

namespace pmc::obs {

const char* event_name(EventKind k) {
  switch (k) {
    case EventKind::kDispatch: return "dispatch";
    case EventKind::kPark: return "park";
    case EventKind::kWarp: return "warp";
    case EventKind::kCompute: return "compute";
    case EventKind::kIdle: return "idle";
    case EventKind::kWait: return "wait";
    case EventKind::kLoad: return "load";
    case EventKind::kStore: return "store";
    case EventKind::kAtomic: return "atomic";
    case EventKind::kCacheHit: return "cache_hit";
    case EventKind::kCacheMiss: return "cache_miss";
    case EventKind::kCacheFill: return "cache_fill";
    case EventKind::kWriteback: return "writeback";
    case EventKind::kFlush: return "flush";
    case EventKind::kDmaRead: return "dma_read";
    case EventKind::kDmaWrite: return "dma_write";
    case EventKind::kNocSend: return "noc_send";
    case EventKind::kNocQueue: return "noc_queue";
    case EventKind::kLockAcquire: return "lock_acquire";
    case EventKind::kLockRelease: return "lock_release";
    case EventKind::kBarrier: return "barrier";
    case EventKind::kCounter: return "counter";
  }
  return "?";
}

const char* counter_name(CounterId id) {
  switch (id) {
    case CounterId::kBusy: return "busy";
    case CounterId::kStall: return "stall";
    case CounterId::kIdle: return "idle";
    case CounterId::kDcacheMisses: return "dcache_misses";
    case CounterId::kNocBytes: return "noc_bytes";
  }
  return "?";
}

TraceRecorder::TraceRecorder(size_t capacity) {
  PMC_CHECK(capacity > 0);
  ring_.resize(capacity);
}

bool TraceRecorder::counter_due(int core, uint64_t now) {
  const size_t c = static_cast<size_t>(core);
  if (c >= next_sample_.size()) next_sample_.resize(c + 1, 0);
  if (now < next_sample_[c]) return false;
  next_sample_[c] = now + counter_period_;
  return true;
}

void TraceRecorder::clear() {
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
  next_sample_.clear();
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // Oldest event sits just past the write head once the ring has wrapped.
  const size_t start = size_ == ring_.size() ? head_ : 0;
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

TraceRecorder::Snapshot TraceRecorder::snapshot() const {
  Snapshot s;
  s.events = events();
  s.dropped = dropped_;
  s.counter_period = counter_period_;
  s.armed = armed_;
  s.next_sample = next_sample_;
  return s;
}

void TraceRecorder::restore(const Snapshot& s) {
  PMC_CHECK(s.events.size() <= ring_.size());
  std::copy(s.events.begin(), s.events.end(), ring_.begin());
  size_ = s.events.size();
  head_ = size_ == ring_.size() ? 0 : size_;
  dropped_ = s.dropped;
  counter_period_ = s.counter_period;
  armed_ = s.armed;
  next_sample_ = s.next_sample;
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

namespace {

bool has_address(EventKind k) {
  switch (k) {
    case EventKind::kLoad:
    case EventKind::kStore:
    case EventKind::kAtomic:
    case EventKind::kCacheHit:
    case EventKind::kCacheMiss:
    case EventKind::kCacheFill:
    case EventKind::kWriteback:
    case EventKind::kFlush:
    case EventKind::kDmaRead:
    case EventKind::kDmaWrite:
    case EventKind::kNocSend:
    case EventKind::kNocQueue:
      return true;
    default:
      return false;
  }
}

std::string hex_addr(uint64_t addr) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "\"0x%llx\"",
                static_cast<unsigned long long>(addr));
  return buf;
}

void append_slice(std::string& out, const char* name, int16_t core,
                  uint64_t ts, uint64_t dur, const std::string& args) {
  out += "{\"name\":\"";
  out += name;
  out += "\",\"ph\":\"X\",\"pid\":0,\"tid\":";
  out += std::to_string(core);
  out += ",\"ts\":";
  out += std::to_string(ts);
  out += ",\"dur\":";
  out += std::to_string(dur);
  if (!args.empty()) {
    out += ",\"args\":{";
    out += args;
    out += "}";
  }
  out += "},\n";
}

void append_flow(std::string& out, const char* phase, uint64_t id,
                 int16_t core, uint64_t ts) {
  out += "{\"name\":\"noc\",\"cat\":\"noc\",\"ph\":\"";
  out += phase;
  out += "\",\"id\":";
  out += std::to_string(id);
  if (phase[0] == 'f') out += ",\"bp\":\"e\"";
  out += ",\"pid\":0,\"tid\":";
  out += std::to_string(core);
  out += ",\"ts\":";
  out += std::to_string(ts);
  out += "},\n";
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              uint64_t dropped) {
  std::string out;
  out.reserve(events.size() * 96 + 256);
  out += "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"dropped_events\":";
  out += std::to_string(dropped);
  out += "},\n\"traceEvents\":[\n";

  // Thread-name metadata: one track per core, in core order.
  int16_t max_core = -1;
  for (const TraceEvent& e : events) max_core = std::max(max_core, e.core);
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
      "\"args\":{\"name\":\"pmc machine\"}},\n";
  for (int16_t c = 0; c <= max_core; ++c) {
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
    out += std::to_string(c);
    out += ",\"args\":{\"name\":\"core ";
    out += std::to_string(c);
    out += "\"}},\n";
  }

  // Dispatch/park pairs become per-core "run" slices so the scheduler's
  // interleaving reads directly off the timeline. Memory/sync slices nest
  // inside them (same track, contained time range).
  std::unordered_map<int16_t, uint64_t> run_start;
  std::unordered_map<int16_t, uint64_t> last_seen;
  uint64_t flow_id = 0;
  for (const TraceEvent& e : events) {
    last_seen[e.core] = std::max(last_seen[e.core], e.t1);
    switch (e.kind) {
      case EventKind::kDispatch:
        run_start[e.core] = e.t0;
        continue;
      case EventKind::kPark: {
        auto it = run_start.find(e.core);
        if (it != run_start.end()) {
          append_slice(out, "run", e.core, it->second,
                       e.t0 >= it->second ? e.t0 - it->second : 0,
                       e.aux != 0 ? "\"done\":true" : "");
          run_start.erase(it);
        }
        continue;
      }
      case EventKind::kCounter: {
        out += "{\"name\":\"core";
        out += std::to_string(e.core);
        out += "/";
        out += counter_name(static_cast<CounterId>(e.aux));
        out += "\",\"ph\":\"C\",\"pid\":0,\"ts\":";
        out += std::to_string(e.t0);
        out += ",\"args\":{\"value\":";
        out += std::to_string(e.arg);
        out += "}},\n";
        continue;
      }
      default:
        break;
    }

    std::string args;
    if (has_address(e.kind)) {
      args += "\"addr\":" + hex_addr(e.addr);
      args += ",\"len\":" + std::to_string(e.len);
    }
    if (e.aux != 0 || e.kind == EventKind::kNocSend) {
      if (!args.empty()) args += ",";
      args += "\"aux\":" + std::to_string(e.aux);
    }
    const uint64_t dur = e.t1 >= e.t0 ? e.t1 - e.t0 : 0;
    append_slice(out, event_name(e.kind), e.core, e.t0, dur, args);

    if (e.kind == EventKind::kNocSend) {
      // Delivery slice on the destination track plus a flow arrow from the
      // send to it. Arrival (e.arg) is known at send time — the NoC model
      // is deterministic — so the whole arc is emitted here.
      const int16_t dst = static_cast<int16_t>(e.aux);
      append_slice(out, "noc_recv", dst, e.arg, 1,
                   "\"addr\":" + hex_addr(e.addr) +
                       ",\"len\":" + std::to_string(e.len) +
                       ",\"src\":" + std::to_string(e.core));
      append_flow(out, "s", flow_id, e.core, e.t0);
      append_flow(out, "f", flow_id, dst, e.arg);
      ++flow_id;
    }
  }
  // A core still running when the buffer ends gets a run slice to its last
  // recorded activity.
  for (int16_t c = 0; c <= max_core; ++c) {
    auto it = run_start.find(c);
    if (it == run_start.end()) continue;
    const uint64_t end = std::max(last_seen[c], it->second);
    append_slice(out, "run", c, it->second, end - it->second, "");
  }

  // Strip the trailing ",\n" so the array is valid JSON.
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);
  }
  out += "]}\n";
  return out;
}

}  // namespace pmc::obs
