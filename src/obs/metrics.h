// Metrics registry: named counters, gauges, and power-of-two-bucket
// histograms with deterministic JSON export (DESIGN.md §11).
//
// This is the aggregation vocabulary the exploration stack reports through:
// explorer totals (explored/pruned/dpor_pruned), per-worker steal counts,
// snapshot pool hits, shrink rounds, and per-back-end CoreStats sums all
// land in one registry that merges across workers/back-ends and renders as
// one JSON object. Storage is std::map so iteration — and therefore the
// exported document — is key-ordered and reproducible.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace pmc::obs {

/// Fixed-shape histogram: bucket i counts values v with 2^(i-1) <= v < 2^i
/// (bucket 0 counts v < 1). Merging two histograms is bucket-wise addition,
/// so per-worker histograms combine exactly.
struct Histogram {
  static constexpr int kBuckets = 40;

  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  uint64_t buckets[kBuckets] = {};

  void observe(double v);
  void merge(const Histogram& other);
  double mean() const { return count == 0 ? 0 : sum / static_cast<double>(count); }
  /// Approximate quantile (q in [0, 1]) read off the buckets: the selected
  /// bucket's upper bound, clamped to the observed [min, max] — exact when
  /// every observation in that bucket is equal (e.g. an all-zero series).
  double quantile(double q) const;
};

class MetricsRegistry {
 public:
  // Counters: monotonic uint64, merge by addition.
  void inc(const std::string& name, uint64_t by = 1) { counters_[name] += by; }
  uint64_t counter(const std::string& name) const;

  // Gauges: last-write-wins doubles, merge keeps the incoming value.
  void set_gauge(const std::string& name, double v) { gauges_[name] = v; }
  double gauge(const std::string& name) const;

  // Histograms.
  void observe(const std::string& name, double v) { histograms_[name].observe(v); }
  /// Folds an externally-maintained histogram (e.g. a MemModule's port-wait
  /// distribution) into the named one, bucket-wise.
  void merge_histogram(const std::string& name, const Histogram& h) {
    histograms_[name].merge(h);
  }
  const Histogram* histogram(const std::string& name) const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Folds `other` into this registry (counters add, gauges overwrite,
  /// histograms combine bucket-wise).
  void merge(const MetricsRegistry& other);

  /// {"counters":{...},"gauges":{...},"histograms":{...}} with key-sorted
  /// members; deterministic for identical contents.
  std::string to_json() const;

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace pmc::obs
