// Minimal JSON emission helpers shared by the obs writers (trace export,
// metrics registry). Emission only — the observability layer never parses
// JSON — and deterministic: the same input bytes always produce the same
// output bytes, which is what the trace byte-equality suites compare.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace pmc::obs {

/// Escapes and quotes `s` as a JSON string literal.
inline std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

/// Formats a double as a bare JSON number ("%.6g", matching the BENCH_*.json
/// convention in bench/bench_common.h). "%.6g" can produce "inf"/"nan" which
/// is not JSON — callers must not pass non-finite values; 0 is emitted
/// instead to keep the document parseable.
inline std::string json_number(double v) {
  if (!(v == v) || v > 1.7e308 || v < -1.7e308) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

inline std::string json_number(uint64_t v) {
  return std::to_string(v);
}

}  // namespace pmc::obs
