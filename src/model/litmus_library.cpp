#include "model/litmus_library.h"

namespace pmc::model::litmus {

using Op = LitmusOp;

LitmusTest fig1_mp_plain() {
  LitmusTest t;
  t.name = "fig1_mp_plain";
  t.num_locs = 2;
  t.num_regs = 1;
  t.threads = {
      {{Op::store(kX, 42), Op::store(kF, 1)}},
      {{Op::load_until(kF, 1), Op::load(kX, 0)}},
  };
  return t;
}

LitmusTest fig5_mp_annotated() {
  LitmusTest t;
  t.name = "fig5_mp_annotated";
  t.num_locs = 2;
  t.num_regs = 1;
  t.threads = {
      {{Op::acquire(kX), Op::store(kX, 42), Op::fence(), Op::release(kX),
        Op::acquire(kF), Op::store(kF, 1), Op::release(kF)}},
      {{Op::load_until(kF, 1), Op::fence(), Op::acquire(kX), Op::load(kX, 0),
        Op::release(kX)}},
  };
  return t;
}

LitmusTest fig5_mp_no_reader_fence() {
  LitmusTest t = fig5_mp_annotated();
  t.name = "fig5_mp_no_reader_fence";
  auto& ops = t.threads[1].ops;
  ops.erase(ops.begin() + 1);  // drop the fence after the poll loop
  return t;
}

LitmusTest fig5_mp_no_writer_fence() {
  LitmusTest t = fig5_mp_annotated();
  t.name = "fig5_mp_no_writer_fence";
  auto& ops = t.threads[0].ops;
  ops.erase(ops.begin() + 2);  // drop the fence before rel X
  return t;
}

LitmusTest fig4_exclusive() {
  LitmusTest t;
  t.name = "fig4_exclusive";
  t.num_locs = 1;
  t.num_regs = 1;
  t.threads = {
      {{Op::acquire(kX), Op::load(kX, 0), Op::release(kX)}},
      {{Op::acquire(kX), Op::store(kX, 1), Op::store(kX, 2),
        Op::release(kX)}},
  };
  return t;
}

LitmusTest fig4_exclusive_skewed() {
  LitmusTest t;
  t.name = "fig4_exclusive_skewed";
  t.num_locs = 2;
  t.num_regs = 2;
  const LocId delay = 1;  // never written: the delay load reads 0
  // The mid-section delay load separates the writer's two stores so a
  // delayed reader's read can land between them; under a min-time schedule
  // the reader's read still resumes before the first store's effect lands,
  // so the default schedule stays clean. Each preemption bypasses the
  // min-time reader past one writer segment, which keeps the store window
  // reachable within the litmus default preemption bound of 2.
  t.threads = {
      {{Op::acquire(kX), Op::load(kX, 0), Op::release(kX)}},
      {{Op::acquire(kX), Op::store(kX, 1), Op::load(delay, 1),
        Op::store(kX, 2), Op::release(kX)}},
  };
  return t;
}

LitmusTest sb_plain() {
  LitmusTest t;
  t.name = "sb_plain";
  t.num_locs = 3;
  t.num_regs = 2;
  const LocId y = 2;
  t.threads = {
      {{Op::store(kX, 1), Op::load(y, 0)}},
      {{Op::store(y, 1), Op::load(kX, 1)}},
  };
  return t;
}

LitmusTest sb_locked() {
  LitmusTest t;
  t.name = "sb_locked";
  t.num_locs = 3;
  t.num_regs = 2;
  const LocId y = 2;
  t.threads = {
      {{Op::acquire(kX), Op::store(kX, 1), Op::release(kX), Op::fence(),
        Op::acquire(y), Op::load(y, 0), Op::release(y)}},
      {{Op::acquire(y), Op::store(y, 1), Op::release(y), Op::fence(),
        Op::acquire(kX), Op::load(kX, 1), Op::release(kX)}},
  };
  return t;
}

LitmusTest coherence_rr() {
  LitmusTest t;
  t.name = "coherence_rr";
  t.num_locs = 1;
  t.num_regs = 2;
  t.threads = {
      {{Op::store(kX, 1)}},
      {{Op::load(kX, 0), Op::load(kX, 1)}},
  };
  return t;
}

LitmusTest racy_write_write() {
  // P0 writes X *outside* any entry/exit pair, then acquires X and reads it;
  // P1 updates X under the lock. When P1 runs first, both writes reach P0's
  // read but are mutually unordered (w→A is blank in Table I), so |W_o| = 2:
  // the Definition 11 data race.
  LitmusTest t;
  t.name = "racy_write_write";
  t.num_locs = 1;
  t.num_regs = 1;
  t.threads = {
      {{Op::store(kX, 1), Op::acquire(kX), Op::load(kX, 0),
        Op::release(kX)}},
      {{Op::acquire(kX), Op::store(kX, 2), Op::release(kX)}},
  };
  return t;
}

LitmusTest lb_plain() {
  LitmusTest t;
  t.name = "lb_plain";
  t.num_locs = 3;
  t.num_regs = 2;
  const LocId y = 2;
  t.threads = {
      {{Op::load(kX, 0), Op::store(y, 1)}},
      {{Op::load(y, 1), Op::store(kX, 1)}},
  };
  return t;
}

LitmusTest wrc_locked() {
  LitmusTest t;
  t.name = "wrc_locked";
  t.num_locs = 3;
  t.num_regs = 3;
  const LocId y = 2;
  t.threads = {
      {{Op::acquire(kX), Op::store(kX, 1), Op::release(kX)}},
      {{Op::acquire(kX), Op::load(kX, 0), Op::release(kX), Op::fence(),
        Op::acquire(y), Op::store(y, 1), Op::release(y)}},
      {{Op::acquire(y), Op::load(y, 1), Op::release(y), Op::fence(),
        Op::acquire(kX), Op::load(kX, 2), Op::release(kX)}},
  };
  return t;
}

std::vector<LitmusTest> all_tests() {
  return {fig1_mp_plain(),
          fig5_mp_annotated(),
          fig5_mp_no_reader_fence(),
          fig5_mp_no_writer_fence(),
          fig4_exclusive(),
          sb_plain(),
          sb_locked(),
          coherence_rr(),
          racy_write_write(),
          lb_plain(),
          wrc_locked()};
}

}  // namespace pmc::model::litmus
