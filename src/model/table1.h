// The ordering rules of Table I as a standalone predicate.
//
// Shared between NaiveExecution (which applies the table literally by
// scanning all operations) and the litmus engine's weak-issue mode (which
// uses it to decide whether an instruction may be reordered past another).
#pragma once

#include <optional>

#include "model/op.h"

namespace pmc::model {

/// Returns the edge kind Table I adds from an existing operation matching
/// (old_kind, p, old_loc, ·) to a newly issued (new_kind, p, new_loc, ·) of
/// the *same* process, or nullopt when the cell is blank.
///
/// Fences have no location; pass kAnyLoc for them. The ≺S rule (release→
/// acquire) additionally applies across processes — callers handling
/// cross-process edges must special-case it (see NaiveExecution).
inline constexpr LocId kAnyLoc = -1;

std::optional<EdgeKind> table1_edge(OpKind old_kind, LocId old_loc,
                                    OpKind new_kind, LocId new_loc);

}  // namespace pmc::model
