// Operations of the PMC memory model (paper Section IV, Table I).
//
// An operation is issued by a process on a location and may carry a value.
// The *initial* operation of a location behaves like both a write and a
// release (Definition 3), so operations carry a kind bitmask rather than a
// single enumerator.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace pmc::model {

using ProcId = int32_t;
using LocId = int32_t;
using OpId = uint32_t;

/// Sentinel for "no operation".
inline constexpr OpId kNoOp = std::numeric_limits<OpId>::max();
/// The pseudo-process of initial operations; matches every process pattern
/// (the paper's ⋆ process, Definition 3).
inline constexpr ProcId kInitProc = -1;
/// "any process" in pattern matching and view queries.
inline constexpr ProcId kAnyProc = -2;
/// The ⊥ value of initial operations.
inline constexpr uint64_t kBottom = std::numeric_limits<uint64_t>::max();

enum class OpKind : uint8_t {
  kRead = 1u << 0,
  kWrite = 1u << 1,
  kAcquire = 1u << 2,
  kRelease = 1u << 3,
  kFence = 1u << 4,
};

constexpr uint8_t kind_bit(OpKind k) { return static_cast<uint8_t>(k); }

/// The four ordering kinds of the model (Definitions 5–8).
enum class EdgeKind : uint8_t {
  kLocal,    // ≺ℓ  — visible only to the executing process (Def. 6)
  kProgram,  // ≺P  — global, per process, per location (Def. 5)
  kSync,     // ≺S  — global, per location, spans processes (Def. 7)
  kFence,    // ≺F  — global, per process, spans locations (Def. 8)
};

const char* to_string(OpKind k);
const char* to_string(EdgeKind k);

struct Operation {
  OpId id = kNoOp;
  uint8_t kinds = 0;  // bitmask of OpKind
  ProcId proc = kInitProc;
  LocId loc = -1;  // -1 for fences (they span all locations)
  uint64_t value = 0;
  /// For reads: the id of the write this read returned (kNoOp if untracked).
  OpId source = kNoOp;

  bool is(OpKind k) const { return (kinds & kind_bit(k)) != 0; }
  /// Pattern match on (kind, proc): the ⋆ initial process matches everything.
  bool matches_proc(ProcId p) const { return proc == kInitProc || proc == p; }

  std::string describe() const;
};

struct Edge {
  OpId from = kNoOp;
  OpId to = kNoOp;
  EdgeKind kind = EdgeKind::kLocal;
  /// For ≺ℓ edges: the process whose view contains the edge.
  ProcId owner = kInitProc;

  friend bool operator==(const Edge&, const Edge&) = default;
};

}  // namespace pmc::model
