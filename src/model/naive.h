// Literal, unreduced implementation of the Table I transition rules.
//
// Every issue scans *all* previously issued operations and adds every edge
// the table prescribes. It is O(n) per issue and O(n²) in edges — useful
// only as a reference oracle. tests/model/test_naive_equivalence.cpp checks
// that Execution (with its closure-preserving edge reduction) computes the
// same reachability relations on randomized well-formed programs.
//
// Two deliberate deviations, mirrored in Execution (see DESIGN.md §4):
//  * initial operations are exempt from the fence column's ≺ℓ edges (they
//    would otherwise connect every location's init op to every fence);
//  * lock usage must be well-formed (paired acquire/release under mutual
//    exclusion) — the model leaves other usage undefined.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/op.h"

namespace pmc::model {

class NaiveExecution {
 public:
  NaiveExecution(int num_procs, int num_locs,
                 const std::vector<uint64_t>& initial = {});

  OpId read(ProcId p, LocId v, uint64_t value);
  OpId write(ProcId p, LocId v, uint64_t value);
  OpId acquire(ProcId p, LocId v);
  OpId release(ProcId p, LocId v);
  OpId fence(ProcId p);

  size_t num_ops() const { return ops_.size(); }
  size_t num_edges() const { return num_edges_; }
  const Operation& op(OpId id) const { return ops_[id]; }

  bool hb_global(OpId a, OpId b) const;
  bool hb_view(ProcId p, OpId a, OpId b) const;

 private:
  OpId new_op(uint8_t kinds, ProcId p, LocId v, uint64_t value);
  void apply_table(OpId id);
  bool reachable(OpId a, OpId b, ProcId view) const;

  int num_procs_;
  int num_locs_;
  std::vector<Operation> ops_;
  std::vector<std::vector<Edge>> out_;
  size_t num_edges_ = 0;
};

}  // namespace pmc::model
