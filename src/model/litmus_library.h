// A library of named litmus tests drawn from the paper's figures plus the
// classic shapes (message passing, store buffering, coherence).
//
// Locations are conventionally: 0 = X (data), 1 = f (flag), further as noted.
#pragma once

#include "model/litmus.h"

namespace pmc::model::litmus {

inline constexpr LocId kX = 0;
inline constexpr LocId kF = 1;

/// Fig. 1: message passing without any synchronization.
/// P0: X=42; f=1.   P1: while(f!=1); r0=X.
/// PMC allows r0 ∈ {0, 42} — the stale read of the motivating example.
LitmusTest fig1_mp_plain();

/// Fig. 5/6: the properly annotated version.
/// P0: acq X; X=42; fence; rel X; acq f; f=1; rel f.
/// P1: while(f!=1); fence; acq X; r0=X; rel X.
/// PMC guarantees r0 = 42.
LitmusTest fig5_mp_annotated();

/// Fig. 5 without the essential fence (line 11) in the reader.
/// In weak-issue mode the acquire may hoist above the poll loop and r0 = 0
/// becomes reachable; in program-order mode it stays 42.
LitmusTest fig5_mp_no_reader_fence();

/// Fig. 5 without the writer-side fence (line 3), which is redundant in the
/// model (X=42 ≺P rel X already holds): outcomes match fig5_mp_annotated.
LitmusTest fig5_mp_no_writer_fence();

/// Fig. 4: exclusive access.
/// P0: acq X; r0=X; rel X.   P1: acq X; X=1; X=2; rel X.
/// r0 ∈ {0, 2}; the intermediate value 1 is never observable.
LitmusTest fig4_exclusive();

/// fig4_exclusive with the writer skewed behind two plain loads of an
/// otherwise-unused location, so under a min-time schedule the reader's
/// whole section completes before the writer's first store. The outcome set
/// is fig4's ({0, 2} for r0, the delay loads always read 0): the seeded-bug
/// scenario for back-ends whose injected fault races from cycle 0 (shl1's
/// skipped lock), where plain fig4 would expose the bug without any
/// exploration. Not part of all_tests() — it adds nothing to the clean
/// grids that fig4 does not already cover.
LitmusTest fig4_exclusive_skewed();

/// Store buffering with no synchronization: all four outcomes reachable.
/// P0: X=1; r0=Y.   P1: Y=1; r1=X.   (Y is location 2.)
LitmusTest sb_plain();

/// Store buffering with per-object entry/exit pairs and fences:
/// (r0,r1) = (0,0) becomes unreachable — the PC/SC-for-DRF claim (§IV-E).
LitmusTest sb_locked();

/// Read coherence: P0: X=1.  P1: r0=X; r1=X.
/// (r0,r1) = (1,0) is forbidden by read monotonicity (Def. 12).
LitmusTest coherence_rr();

/// A write outside any entry/exit pair racing with a locked writer: the
/// |W_o| > 1 data race of Definition 11 is observable by the reader.
LitmusTest racy_write_write();

/// Load buffering without synchronization: PMC allows both loads to see
/// the other thread's store (no r→w cross-thread constraint).
/// P0: r0=X; Y=1.   P1: r1=Y; X=1.   (Y is location 2.)
LitmusTest lb_plain();

/// Write-to-read causality with entry/exit pairs and fences:
/// P0 writes X; P1 reads X then writes Y; P2 reads Y then X.
/// With full annotation, P2 observing Y=1 implies it observes X=1.
LitmusTest wrc_locked();

/// All tests above, for table-driven suites.
std::vector<LitmusTest> all_tests();

}  // namespace pmc::model::litmus
