// Execution graphs of the PMC memory model (paper Definitions 1–12).
//
// An Execution is the state E = (P, V, O, ≺) of a program at one moment in
// time. Operations are issued one at a time; each issue applies the ordering
// rules of Table I against the already-issued operations and extends the
// partial order. Edges always point from older to newer operations, so the
// graph is a DAG topologically sorted by OpId.
//
// Edge insertion uses a closure-preserving reduction (only non-dominated
// predecessors receive explicit edges); `tests/model/test_naive_equivalence`
// property-checks it against the unreduced NaiveExecution on random programs.
#pragma once

#include <cstdint>
#include <vector>

#include "model/op.h"

namespace pmc::model {

/// The execution graph E = (P, V, O, ≺).
class Execution {
 public:
  /// Creates an initialized execution (Definition 3): every location gets an
  /// initial operation that is both a write and a release, by the ⋆ process,
  /// with value ⊥ (or `initial[v]` when provided).
  Execution(int num_procs, int num_locs,
            const std::vector<uint64_t>& initial = {});

  int num_procs() const { return num_procs_; }
  int num_locs() const { return num_locs_; }
  size_t num_ops() const { return ops_.size(); }
  size_t num_edges() const { return num_edges_; }

  const Operation& op(OpId id) const;
  OpId init_op(LocId v) const;
  const std::vector<Edge>& out_edges(OpId id) const;
  const std::vector<Edge>& in_edges(OpId id) const;

  // -- Issuing operations (Definition 4 state transitions) ------------------

  /// Issues a read returning the value of write `source` (kNoOp to record an
  /// unvalidated value). Checks read monotonicity (Def. 12, second clause)
  /// when the source is known; returns the new op id.
  OpId read(ProcId p, LocId v, uint64_t value, OpId source = kNoOp);
  OpId write(ProcId p, LocId v, uint64_t value);
  OpId acquire(ProcId p, LocId v);
  OpId release(ProcId p, LocId v);
  OpId fence(ProcId p);

  // -- Ordering queries ------------------------------------------------------

  /// a ≺G b: path of globally visible edges only (Definition 9).
  bool hb_global(OpId a, OpId b) const;
  /// a p≺ b: path of global plus p-local edges (Definition 10).
  bool hb_view(ProcId p, OpId a, OpId b) const;
  /// Reflexive version, a p⪯ b.
  bool hb_view_eq(ProcId p, OpId a, OpId b) const {
    return a == b || hb_view(p, a, b);
  }

  // -- Definition 11/12 machinery --------------------------------------------

  /// The last-write set W_o of an issued operation `o` (Definition 11),
  /// evaluated in the view of o's process.
  std::vector<OpId> last_writes(OpId o) const;

  /// The last-write set of a *hypothetical* read that process p would issue
  /// on location v now.
  std::vector<OpId> last_writes_now(ProcId p, LocId v) const;

  /// Legal source writes for a read that p would issue on v now
  /// (Definition 12): writes b with a p⪯ b for some a ∈ W, filtered by read
  /// monotonicity against p's previous read of v.
  std::vector<OpId> legal_sources_now(ProcId p, LocId v) const;

  /// True iff the issued read `o` was a data race (|W_o| > 1, Definition 11).
  bool is_racy_read(OpId o) const { return last_writes(o).size() > 1; }

  /// All pairs of globally unordered writes to v (write/write races).
  std::vector<std::pair<OpId, OpId>> unordered_write_pairs(LocId v) const;

  /// All writes to location v, in issue order (the initial op is first).
  const std::vector<OpId>& writes_to(LocId v) const;

  /// The source of the last read p issued on v (kNoOp if none/untracked).
  OpId last_read_source(ProcId p, LocId v) const;

  /// Graphviz rendering, for documentation and the litmus explorer.
  std::string to_dot() const;

 private:
  struct ProcLocState {
    OpId last_write = kNoOp;    // latest (w, p, v, ·) — starts at the init op
    OpId last_acquire = kNoOp;  // latest (A, p, v, ·)
    OpId last_read = kNoOp;     // latest (r, p, v, ·) — reads chain via ≺ℓ
    OpId last_sync = kNoOp;     // latest acquire-or-release, for fence edges
    OpId last_read_source = kNoOp;
  };
  struct ProcState {
    OpId last_fence = kNoOp;
    std::vector<LocId> dirty_since_fence;  // locations touched since last fence
  };

  ProcLocState& pls(ProcId p, LocId v);
  const ProcLocState& pls(ProcId p, LocId v) const;
  void touch(ProcId p, LocId v);
  OpId new_op(uint8_t kinds, ProcId p, LocId v, uint64_t value);
  void add_edge(OpId from, OpId to, EdgeKind kind);
  /// BFS from a towards b over edges visible in `view` (kAnyProc = global).
  bool reachable(OpId a, OpId b, ProcId view) const;
  std::vector<OpId> last_writes_impl(ProcId p, const std::vector<OpId>& preds,
                                     LocId v, OpId upper) const;

  int num_procs_;
  int num_locs_;
  std::vector<Operation> ops_;
  std::vector<std::vector<Edge>> out_;
  std::vector<std::vector<Edge>> in_;
  size_t num_edges_ = 0;
  std::vector<OpId> init_;                       // per location
  std::vector<std::vector<OpId>> writes_;        // per location, issue order
  std::vector<std::vector<OpId>> release_frontier_;  // per location
  std::vector<ProcLocState> pls_;                // [p * num_locs + v]
  std::vector<ProcState> ps_;
};

}  // namespace pmc::model
