#include "model/table1.h"

namespace pmc::model {

std::optional<EdgeKind> table1_edge(OpKind old_kind, LocId old_loc,
                                    OpKind new_kind, LocId new_loc) {
  // Location patterns: every row except the fence row matches a single
  // location; a fence as the *new* operation spans all of the process's
  // locations; a fence as the *old* operation matches any new location.
  const bool loc_match = old_kind == OpKind::kFence ||
                         new_kind == OpKind::kFence || old_loc == kAnyLoc ||
                         new_loc == kAnyLoc || old_loc == new_loc;
  if (!loc_match) return std::nullopt;

  switch (old_kind) {
    case OpKind::kRead:
      switch (new_kind) {
        case OpKind::kRead:
        case OpKind::kWrite:
        case OpKind::kRelease:
        case OpKind::kFence:
          return EdgeKind::kLocal;
        default:
          return std::nullopt;  // r→A blank: fences must pin acquires
      }
    case OpKind::kWrite:
      switch (new_kind) {
        case OpKind::kRead:
          return EdgeKind::kLocal;
        case OpKind::kWrite:
        case OpKind::kRelease:
          return EdgeKind::kProgram;
        case OpKind::kFence:
          return EdgeKind::kLocal;
        default:
          return std::nullopt;  // w→A blank
      }
    case OpKind::kAcquire:
      switch (new_kind) {
        case OpKind::kRead:
          return EdgeKind::kLocal;
        case OpKind::kWrite:
        case OpKind::kRelease:
          return EdgeKind::kProgram;
        case OpKind::kFence:
          return EdgeKind::kFence;
        default:
          return std::nullopt;  // A→A blank
      }
    case OpKind::kRelease:
      switch (new_kind) {
        case OpKind::kAcquire:
          return EdgeKind::kSync;  // † also applies across processes
        case OpKind::kFence:
          return EdgeKind::kFence;
        default:
          return std::nullopt;
      }
    case OpKind::kFence:
      switch (new_kind) {
        case OpKind::kWrite:
        case OpKind::kRelease:
        case OpKind::kAcquire:
          return EdgeKind::kFence;
        default:
          return std::nullopt;  // F→r, F→F blank
      }
  }
  return std::nullopt;
}

}  // namespace pmc::model
