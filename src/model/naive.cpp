#include "model/naive.h"

#include "model/table1.h"
#include "util/check.h"

namespace pmc::model {

NaiveExecution::NaiveExecution(int num_procs, int num_locs,
                               const std::vector<uint64_t>& initial)
    : num_procs_(num_procs), num_locs_(num_locs) {
  PMC_CHECK(initial.empty() || initial.size() == static_cast<size_t>(num_locs));
  for (LocId v = 0; v < num_locs_; ++v) {
    const uint64_t val = initial.empty() ? kBottom : initial[v];
    new_op(kind_bit(OpKind::kWrite) | kind_bit(OpKind::kRelease), kInitProc, v,
           val);
  }
}

OpId NaiveExecution::new_op(uint8_t kinds, ProcId p, LocId v, uint64_t value) {
  Operation o;
  o.id = static_cast<OpId>(ops_.size());
  o.kinds = kinds;
  o.proc = p;
  o.loc = v;
  o.value = value;
  ops_.push_back(o);
  out_.emplace_back();
  return o.id;
}

void NaiveExecution::apply_table(OpId id) {
  const Operation& n = ops_[id];
  OpKind nk = OpKind::kRead;
  for (OpKind k : {OpKind::kRead, OpKind::kWrite, OpKind::kAcquire,
                   OpKind::kRelease, OpKind::kFence}) {
    if (n.is(k)) nk = k;
  }
  for (OpId a = 0; a < id; ++a) {
    const Operation& old = ops_[a];
    const bool old_is_init = old.proc == kInitProc;
    // Each kind the old op carries gets its own row (the init op is both a
    // write and a release).
    for (OpKind ok : {OpKind::kRead, OpKind::kWrite, OpKind::kAcquire,
                      OpKind::kRelease, OpKind::kFence}) {
      if (!old.is(ok)) continue;
      // Deviation: init ops are exempt from the fence column.
      if (old_is_init && nk == OpKind::kFence) continue;
      const auto kind = table1_edge(ok, old.loc, nk, n.loc);
      if (!kind) continue;
      // Process patterns: ≺S spans processes; everything else is same-proc
      // (the ⋆ init process matches every process).
      if (*kind != EdgeKind::kSync && !old.matches_proc(n.proc)) continue;
      Edge e;
      e.from = a;
      e.to = id;
      e.kind = *kind;
      if (*kind == EdgeKind::kLocal) {
        e.owner = old_is_init ? n.proc : old.proc;
      }
      out_[a].push_back(e);
      ++num_edges_;
    }
  }
}

OpId NaiveExecution::read(ProcId p, LocId v, uint64_t value) {
  const OpId id = new_op(kind_bit(OpKind::kRead), p, v, value);
  apply_table(id);
  return id;
}

OpId NaiveExecution::write(ProcId p, LocId v, uint64_t value) {
  const OpId id = new_op(kind_bit(OpKind::kWrite), p, v, value);
  apply_table(id);
  return id;
}

OpId NaiveExecution::acquire(ProcId p, LocId v) {
  const OpId id = new_op(kind_bit(OpKind::kAcquire), p, v, 0);
  apply_table(id);
  return id;
}

OpId NaiveExecution::release(ProcId p, LocId v) {
  const OpId id = new_op(kind_bit(OpKind::kRelease), p, v, 0);
  apply_table(id);
  return id;
}

OpId NaiveExecution::fence(ProcId p) {
  const OpId id = new_op(kind_bit(OpKind::kFence), p, /*loc=*/kAnyLoc, 0);
  apply_table(id);
  return id;
}

bool NaiveExecution::reachable(OpId a, OpId b, ProcId view) const {
  if (a >= b) return false;
  std::vector<OpId> stack{a};
  std::vector<char> seen(ops_.size(), 0);
  seen[a] = 1;
  while (!stack.empty()) {
    const OpId cur = stack.back();
    stack.pop_back();
    for (const Edge& e : out_[cur]) {
      if (e.kind == EdgeKind::kLocal && view != e.owner) continue;
      if (e.to == b) return true;
      if (e.to > b || seen[e.to]) continue;
      seen[e.to] = 1;
      stack.push_back(e.to);
    }
  }
  return false;
}

bool NaiveExecution::hb_global(OpId a, OpId b) const {
  return reachable(a, b, kAnyProc);
}

bool NaiveExecution::hb_view(ProcId p, OpId a, OpId b) const {
  return reachable(a, b, p);
}

}  // namespace pmc::model
