// Litmus-test enumeration over the PMC model.
//
// A LitmusTest is a tiny multi-threaded program over model operations. The
// engine explores every interleaving (and, in weak-issue mode, every
// reordering Table I permits) and every legal read value per Definition 12,
// returning the set of reachable final register states.
//
// Weak-issue mode models what the paper's annotations are *for*: a compiler
// or out-of-order processor may issue an instruction early unless Table I
// orders it behind a pending earlier instruction. The classic demonstration
// is Fig. 5: without the fence at line 11, the acquire may hoist above the
// poll loop (read→acquire is blank in Table I) and the stale read appears.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "model/op.h"

namespace pmc::model {

struct LitmusOp {
  enum class Kind : uint8_t { kLoad, kLoadUntil, kStore, kAcquire, kRelease, kFence };
  Kind kind = Kind::kFence;
  LocId loc = -1;
  uint64_t value = 0;  // store value / LoadUntil target
  int reg = -1;        // load destination

  static LitmusOp load(LocId v, int reg) { return {Kind::kLoad, v, 0, reg}; }
  /// Spins until location v reads `target` (models a poll loop).
  static LitmusOp load_until(LocId v, uint64_t target) {
    return {Kind::kLoadUntil, v, target, -1};
  }
  static LitmusOp store(LocId v, uint64_t value) {
    return {Kind::kStore, v, value, -1};
  }
  static LitmusOp acquire(LocId v) { return {Kind::kAcquire, v, 0, -1}; }
  static LitmusOp release(LocId v) { return {Kind::kRelease, v, 0, -1}; }
  static LitmusOp fence() { return {Kind::kFence, -1, 0, -1}; }

  /// The model operation kind this instruction issues.
  OpKind op_kind() const;
};

struct LitmusThread {
  std::vector<LitmusOp> ops;
};

struct LitmusTest {
  std::string name;
  int num_locs = 0;
  int num_regs = 0;
  std::vector<uint64_t> initial;  // empty = all zero
  std::vector<LitmusThread> threads;
};

enum class IssueMode {
  kProgramOrder,  // instructions issue in program order (in-order core)
  kWeakIssue,     // instructions may reorder unless Table I orders them
};

struct ExploreOptions {
  IssueMode mode = IssueMode::kProgramOrder;
  /// Lookahead window for weak-issue reordering.
  int weak_window = 3;
  /// Abort exploration after this many completed paths.
  size_t max_paths = 5'000'000;
};

/// A final register state, indexed by LitmusOp::reg.
using Outcome = std::vector<uint64_t>;

struct ExploreResult {
  std::set<Outcome> outcomes;
  size_t paths = 0;        // completed executions explored
  size_t stuck_paths = 0;  // paths where a poll loop could never succeed
  bool truncated = false;  // max_paths hit
  bool race_observed = false;  // some read had |W_o| > 1 on some path
};

ExploreResult explore(const LitmusTest& test, const ExploreOptions& opts = {});

/// Convenience: is `outcome` among the reachable outcomes of `test`?
bool outcome_allowed(const LitmusTest& test, const Outcome& outcome,
                     const ExploreOptions& opts = {});

}  // namespace pmc::model
