// Trace validation: replaying a recorded operation stream through the model.
//
// The runtime back-ends can record object-granularity PMC operations
// (acquire/read/write/release/fence, with object content hashes as values)
// in global issue order. The TraceValidator rebuilds the execution graph via
// the Table I rules and checks every read against the legal-value set of
// Definition 12 — turning the formal model into an oracle for the simulated
// coherence protocols.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/execution.h"

namespace pmc::model {

struct TraceEvent {
  enum class Kind : uint8_t { kRead, kWrite, kAcquire, kRelease, kFence };
  Kind kind = Kind::kFence;
  ProcId proc = 0;
  LocId loc = -1;  // ignored for fences
  uint64_t value = 0;  // read: observed value; write: stored value

  static TraceEvent read(ProcId p, LocId v, uint64_t value) {
    return {Kind::kRead, p, v, value};
  }
  static TraceEvent write(ProcId p, LocId v, uint64_t value) {
    return {Kind::kWrite, p, v, value};
  }
  static TraceEvent acquire(ProcId p, LocId v) {
    return {Kind::kAcquire, p, v, 0};
  }
  static TraceEvent release(ProcId p, LocId v) {
    return {Kind::kRelease, p, v, 0};
  }
  static TraceEvent fence(ProcId p) { return {Kind::kFence, p, -1, 0}; }
};

struct TraceViolation {
  size_t event_index;
  std::string message;
};

class TraceValidator {
 public:
  struct Options {
    /// Stop building the graph beyond this many operations (quadratic
    /// queries would dominate); the validator reports `saturated`.
    size_t max_ops = 20'000;
    /// Also flag reads whose last-write set has more than one element
    /// (data races, Definition 11).
    bool check_races = true;
  };

  TraceValidator(int num_procs, int num_locs,
                 const std::vector<uint64_t>& initial, const Options& opts);
  TraceValidator(int num_procs, int num_locs,
                 const std::vector<uint64_t>& initial = {})
      : TraceValidator(num_procs, num_locs, initial, Options()) {}

  /// Feed the next event (in global issue order).
  void on_event(const TraceEvent& e);
  void on_events(const std::vector<TraceEvent>& events);

  bool ok() const { return violations_.empty(); }
  bool saturated() const { return saturated_; }
  size_t num_events() const { return num_events_; }
  const std::vector<TraceViolation>& violations() const { return violations_; }
  const Execution& execution() const { return exec_; }
  /// Human-readable first violation (empty when ok()).
  std::string first_violation() const;

 private:
  void flag(const std::string& msg);

  Execution exec_;
  Options opts_;
  size_t num_events_ = 0;
  bool saturated_ = false;
  std::vector<TraceViolation> violations_;
};

}  // namespace pmc::model
