#include "model/trace.h"

#include <sstream>

#include "util/check.h"

namespace pmc::model {

TraceValidator::TraceValidator(int num_procs, int num_locs,
                               const std::vector<uint64_t>& initial,
                               const Options& opts)
    : exec_(num_procs, num_locs, initial), opts_(opts) {}

void TraceValidator::flag(const std::string& msg) {
  violations_.push_back({num_events_, msg});
}

void TraceValidator::on_event(const TraceEvent& e) {
  if (saturated_) {
    ++num_events_;
    return;
  }
  if (exec_.num_ops() >= opts_.max_ops) {
    saturated_ = true;
    ++num_events_;
    return;
  }
  switch (e.kind) {
    case TraceEvent::Kind::kWrite: {
      const OpId id = exec_.write(e.proc, e.loc, e.value);
      if (opts_.check_races) {
        // In a data-race-free trace, all writes to one location are totally
        // ordered (§IV-D); the previous write must be ≺G the new one.
        const auto& ws = exec_.writes_to(e.loc);
        if (ws.size() >= 2) {
          const OpId prev = ws[ws.size() - 2];
          if (!exec_.hb_global(prev, id)) {
            std::ostringstream os;
            os << "write/write race on v" << e.loc << ": "
               << exec_.op(prev).describe() << " unordered with "
               << exec_.op(id).describe();
            flag(os.str());
          }
        }
      }
      break;
    }
    case TraceEvent::Kind::kRead: {
      const auto legal = exec_.legal_sources_now(e.proc, e.loc);
      // Greedy: commit to the newest legal source with the observed value.
      OpId source = kNoOp;
      for (auto it = legal.rbegin(); it != legal.rend(); ++it) {
        if (exec_.op(*it).value == e.value) {
          source = *it;
          break;
        }
      }
      if (source == kNoOp) {
        std::ostringstream os;
        os << "p" << e.proc << " read v" << e.loc << "=" << e.value
           << " which no legal write provides (Def. 12); legal:";
        for (OpId w : legal) os << " " << exec_.op(w).describe();
        flag(os.str());
        // Keep the graph coherent: record the read without a source.
        exec_.read(e.proc, e.loc, e.value, kNoOp);
        break;
      }
      const OpId id = exec_.read(e.proc, e.loc, e.value, source);
      if (opts_.check_races && exec_.last_writes(id).size() > 1) {
        std::ostringstream os;
        os << "data race: |W_o| > 1 for " << exec_.op(id).describe();
        flag(os.str());
      }
      break;
    }
    case TraceEvent::Kind::kAcquire:
      exec_.acquire(e.proc, e.loc);
      break;
    case TraceEvent::Kind::kRelease:
      exec_.release(e.proc, e.loc);
      break;
    case TraceEvent::Kind::kFence:
      exec_.fence(e.proc);
      break;
  }
  ++num_events_;
}

void TraceValidator::on_events(const std::vector<TraceEvent>& events) {
  for (const auto& e : events) on_event(e);
}

std::string TraceValidator::first_violation() const {
  if (violations_.empty()) return "";
  std::ostringstream os;
  os << "event " << violations_.front().event_index << ": "
     << violations_.front().message;
  return os.str();
}

}  // namespace pmc::model
