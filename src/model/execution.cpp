#include "model/execution.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "util/check.h"

namespace pmc::model {

const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::kRead: return "R";
    case OpKind::kWrite: return "W";
    case OpKind::kAcquire: return "acq";
    case OpKind::kRelease: return "rel";
    case OpKind::kFence: return "fence";
  }
  return "?";
}

const char* to_string(EdgeKind k) {
  switch (k) {
    case EdgeKind::kLocal: return "local";
    case EdgeKind::kProgram: return "program";
    case EdgeKind::kSync: return "sync";
    case EdgeKind::kFence: return "fence";
  }
  return "?";
}

std::string Operation::describe() const {
  std::ostringstream os;
  os << "#" << id << " p";
  if (proc == kInitProc) {
    os << "*";
  } else {
    os << proc;
  }
  os << " ";
  bool first = true;
  for (OpKind k : {OpKind::kRead, OpKind::kWrite, OpKind::kAcquire,
                   OpKind::kRelease, OpKind::kFence}) {
    if (is(k)) {
      if (!first) os << "+";
      os << to_string(k);
      first = false;
    }
  }
  if (loc >= 0) os << " v" << loc;
  if (is(OpKind::kWrite) || is(OpKind::kRead)) {
    if (value == kBottom) {
      os << "=⊥";
    } else {
      os << "=" << value;
    }
  }
  return os.str();
}

Execution::Execution(int num_procs, int num_locs,
                     const std::vector<uint64_t>& initial)
    : num_procs_(num_procs), num_locs_(num_locs) {
  PMC_CHECK(num_procs >= 1);
  PMC_CHECK(num_locs >= 0);
  PMC_CHECK(initial.empty() || initial.size() == static_cast<size_t>(num_locs));
  writes_.resize(num_locs_);
  release_frontier_.resize(num_locs_);
  pls_.resize(static_cast<size_t>(num_procs_) * num_locs_);
  ps_.resize(num_procs_);
  init_.reserve(num_locs_);
  for (LocId v = 0; v < num_locs_; ++v) {
    // Definition 3: one initial op per location that is both write and release.
    const uint64_t val = initial.empty() ? kBottom : initial[v];
    const OpId id = new_op(kind_bit(OpKind::kWrite) | kind_bit(OpKind::kRelease),
                           kInitProc, v, val);
    init_.push_back(id);
    writes_[v].push_back(id);
    release_frontier_[v].push_back(id);
    for (ProcId p = 0; p < num_procs_; ++p) pls(p, v).last_write = id;
  }
}

const Operation& Execution::op(OpId id) const {
  PMC_CHECK(id < ops_.size());
  return ops_[id];
}

OpId Execution::init_op(LocId v) const {
  PMC_CHECK(v >= 0 && v < num_locs_);
  return init_[v];
}

const std::vector<Edge>& Execution::out_edges(OpId id) const {
  PMC_CHECK(id < out_.size());
  return out_[id];
}

const std::vector<Edge>& Execution::in_edges(OpId id) const {
  PMC_CHECK(id < in_.size());
  return in_[id];
}

const std::vector<OpId>& Execution::writes_to(LocId v) const {
  PMC_CHECK(v >= 0 && v < num_locs_);
  return writes_[v];
}

OpId Execution::last_read_source(ProcId p, LocId v) const {
  return pls(p, v).last_read_source;
}

Execution::ProcLocState& Execution::pls(ProcId p, LocId v) {
  PMC_CHECK(p >= 0 && p < num_procs_ && v >= 0 && v < num_locs_);
  return pls_[static_cast<size_t>(p) * num_locs_ + v];
}

const Execution::ProcLocState& Execution::pls(ProcId p, LocId v) const {
  PMC_CHECK(p >= 0 && p < num_procs_ && v >= 0 && v < num_locs_);
  return pls_[static_cast<size_t>(p) * num_locs_ + v];
}

void Execution::touch(ProcId p, LocId v) {
  auto& dirty = ps_[p].dirty_since_fence;
  if (std::find(dirty.begin(), dirty.end(), v) == dirty.end()) {
    dirty.push_back(v);
  }
}

OpId Execution::new_op(uint8_t kinds, ProcId p, LocId v, uint64_t value) {
  Operation o;
  o.id = static_cast<OpId>(ops_.size());
  o.kinds = kinds;
  o.proc = p;
  o.loc = v;
  o.value = value;
  ops_.push_back(o);
  out_.emplace_back();
  in_.emplace_back();
  return o.id;
}

void Execution::add_edge(OpId from, OpId to, EdgeKind kind) {
  if (from == kNoOp) return;
  PMC_CHECK(from < to);  // the graph is topologically ordered by id
  Edge e;
  e.from = from;
  e.to = to;
  e.kind = kind;
  if (kind == EdgeKind::kLocal) {
    // Local edges always connect operations of one process; the ⋆ initial
    // process takes the view of the newer endpoint.
    e.owner = ops_[from].proc == kInitProc ? ops_[to].proc : ops_[from].proc;
  }
  out_[from].push_back(e);
  in_[to].push_back(e);
  ++num_edges_;
}

namespace {
/// id comparison where kNoOp counts as "older than everything".
bool newer(OpId a, OpId b) { return a != kNoOp && (b == kNoOp || a > b); }
}  // namespace

OpId Execution::read(ProcId p, LocId v, uint64_t value, OpId source) {
  auto& s = pls(p, v);
  if (source != kNoOp) {
    PMC_CHECK_MSG(op(source).is(OpKind::kWrite) && op(source).loc == v,
                  "read source must be a write to the same location");
    // Definition 12, second clause: successive reads of one process on one
    // location must observe non-decreasing writes.
    if (s.last_read_source != kNoOp) {
      PMC_CHECK_MSG(hb_view_eq(p, s.last_read_source, source),
                    "read monotonicity violated: " << op(source).describe()
                        << " is not ⪰ previous source "
                        << op(s.last_read_source).describe());
    }
  }
  const OpId id = new_op(kind_bit(OpKind::kRead), p, v, value);
  ops_[id].source = source;
  // Table I column r: r→r ≺ℓ, w→r ≺ℓ, A→r ≺ℓ. Older reads/writes/acquires
  // reach the newest one of their kind transitively (r chains via ≺ℓ, w via
  // ≺P, A via A≺P R≺S A), so edges from the newest of each suffice.
  add_edge(s.last_read, id, EdgeKind::kLocal);
  if (newer(s.last_write, s.last_read)) {
    add_edge(s.last_write, id, EdgeKind::kLocal);
  }
  if (newer(s.last_acquire, s.last_read)) {
    add_edge(s.last_acquire, id, EdgeKind::kLocal);
  }
  s.last_read = id;
  if (source != kNoOp) s.last_read_source = source;
  touch(p, v);
  return id;
}

OpId Execution::write(ProcId p, LocId v, uint64_t value) {
  auto& s = pls(p, v);
  const OpId id = new_op(kind_bit(OpKind::kWrite), p, v, value);
  // Table I column w: r→w ≺ℓ, w→w ≺P, A→w ≺P, F→w ≺F.
  // The ≺P edge from the last write is always added: a newer local path (via
  // reads) would not preserve the *globally* visible program order.
  add_edge(s.last_write, id, EdgeKind::kProgram);
  if (newer(s.last_acquire, s.last_write)) {
    add_edge(s.last_acquire, id, EdgeKind::kProgram);
  }
  if (newer(s.last_read, s.last_write)) {
    add_edge(s.last_read, id, EdgeKind::kLocal);
  }
  const OpId f = ps_[p].last_fence;
  if (newer(f, s.last_write) && newer(f, s.last_acquire)) {
    add_edge(f, id, EdgeKind::kFence);
  }
  s.last_write = id;
  writes_[v].push_back(id);
  touch(p, v);
  return id;
}

OpId Execution::release(ProcId p, LocId v) {
  auto& s = pls(p, v);
  const OpId id = new_op(kind_bit(OpKind::kRelease), p, v, 0);
  // Table I column R: r→R ≺ℓ, w→R ≺P, A→R ≺P, F→R ≺F.
  add_edge(s.last_write, id, EdgeKind::kProgram);
  if (newer(s.last_acquire, s.last_write)) {
    add_edge(s.last_acquire, id, EdgeKind::kProgram);
  }
  if (newer(s.last_read, s.last_write)) {
    add_edge(s.last_read, id, EdgeKind::kLocal);
  }
  const OpId f = ps_[p].last_fence;
  if (newer(f, s.last_write) && newer(f, s.last_acquire)) {
    add_edge(f, id, EdgeKind::kFence);
  }
  s.last_sync = id;
  release_frontier_[v].push_back(id);
  touch(p, v);
  return id;
}

OpId Execution::acquire(ProcId p, LocId v) {
  auto& s = pls(p, v);
  const OpId id = new_op(kind_bit(OpKind::kAcquire), p, v, 0);
  // Table I column A: R→A ≺S (releases of *any* process, the † footnote),
  // F→A ≺F. Notably *not* r→A: the paper's Fig. 5 discussion relies on a
  // fence being required to keep an acquire behind a poll loop.
  for (OpId rel : release_frontier_[v]) add_edge(rel, id, EdgeKind::kSync);
  release_frontier_[v].clear();
  const OpId f = ps_[p].last_fence;
  if (f != kNoOp) add_edge(f, id, EdgeKind::kFence);
  s.last_acquire = id;
  s.last_sync = id;
  touch(p, v);
  return id;
}

OpId Execution::fence(ProcId p) {
  const OpId id = new_op(kind_bit(OpKind::kFence), p, /*loc=*/-1, 0);
  // Table I column F: r→F ≺ℓ, w→F ≺ℓ, A→F ≺F, R→F ≺F, across *all*
  // locations the process touched. Edges older than the previous fence are
  // covered by chaining the previous fence (≺F) — a closure-preserving
  // reduction, property-checked against NaiveExecution.
  auto& proc = ps_[p];
  for (LocId v : proc.dirty_since_fence) {
    auto& s = pls(p, v);
    if (s.last_sync != kNoOp && newer(s.last_sync, proc.last_fence)) {
      add_edge(s.last_sync, id, EdgeKind::kFence);
    }
    if (s.last_write != init_[v] && newer(s.last_write, proc.last_fence)) {
      add_edge(s.last_write, id, EdgeKind::kLocal);
    }
    if (newer(s.last_read, s.last_write) &&
        newer(s.last_read, proc.last_fence)) {
      add_edge(s.last_read, id, EdgeKind::kLocal);
    }
  }
  add_edge(proc.last_fence, id, EdgeKind::kFence);
  proc.dirty_since_fence.clear();
  proc.last_fence = id;
  return id;
}

bool Execution::reachable(OpId a, OpId b, ProcId view) const {
  if (a == b) return false;
  if (a > b) return false;  // edges only point up in id order
  // Iterative DFS over ids < b.
  std::vector<OpId> stack{a};
  std::vector<char> seen(ops_.size(), 0);
  seen[a] = 1;
  while (!stack.empty()) {
    const OpId cur = stack.back();
    stack.pop_back();
    for (const Edge& e : out_[cur]) {
      if (e.kind == EdgeKind::kLocal && view != e.owner) continue;
      if (e.to == b) return true;
      if (e.to > b || seen[e.to]) continue;
      seen[e.to] = 1;
      stack.push_back(e.to);
    }
  }
  return false;
}

bool Execution::hb_global(OpId a, OpId b) const {
  PMC_CHECK(a < ops_.size() && b < ops_.size());
  return reachable(a, b, kAnyProc);
}

bool Execution::hb_view(ProcId p, OpId a, OpId b) const {
  PMC_CHECK(a < ops_.size() && b < ops_.size());
  PMC_CHECK(p >= 0 && p < num_procs_);
  return reachable(a, b, p);
}

std::vector<OpId> Execution::last_writes_impl(ProcId p,
                                              const std::vector<OpId>& preds,
                                              LocId v, OpId upper) const {
  // R = { a ∈ (w,·,v,·) | a p⪯ some pred }, i.e. all writes ordered before
  // the (possibly hypothetical) operation whose predecessors are `preds`.
  std::vector<OpId> r_set;
  for (OpId w : writes_[v]) {
    if (w >= upper) break;
    bool before = false;
    for (OpId pr : preds) {
      if (w == pr || reachable(w, pr, p)) {
        before = true;
        break;
      }
    }
    if (before) r_set.push_back(w);
  }
  if (r_set.empty()) return r_set;
  // W = maximal elements of R under the p-view order (Definition 11). Fast
  // path: the newest write usually dominates all others.
  const OpId cand = r_set.back();
  bool cand_dominates = true;
  for (OpId w : r_set) {
    if (w != cand && !reachable(w, cand, p)) {
      cand_dominates = false;
      break;
    }
  }
  if (cand_dominates) return {cand};
  std::vector<OpId> maximal;
  for (OpId w : r_set) {
    bool dominated = false;
    for (OpId w2 : r_set) {
      if (w2 != w && reachable(w, w2, p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) maximal.push_back(w);
  }
  return maximal;
}

std::vector<OpId> Execution::last_writes(OpId o) const {
  const Operation& read_op = op(o);
  PMC_CHECK(read_op.loc >= 0);
  const ProcId p = read_op.proc;
  std::vector<OpId> preds;
  for (const Edge& e : in_[o]) {
    if (e.kind == EdgeKind::kLocal && e.owner != p) continue;
    preds.push_back(e.from);
  }
  return last_writes_impl(p, preds, read_op.loc, o);
}

std::vector<OpId> Execution::last_writes_now(ProcId p, LocId v) const {
  // Predecessors a read issued now would receive per Table I column r.
  const auto& s = pls(p, v);
  std::vector<OpId> preds;
  if (s.last_read != kNoOp) preds.push_back(s.last_read);
  if (s.last_write != kNoOp) preds.push_back(s.last_write);
  if (s.last_acquire != kNoOp) preds.push_back(s.last_acquire);
  return last_writes_impl(p, preds, v, static_cast<OpId>(ops_.size()));
}

std::vector<OpId> Execution::legal_sources_now(ProcId p, LocId v) const {
  const std::vector<OpId> frontier = last_writes_now(p, v);
  const OpId last_src = pls(p, v).last_read_source;
  std::vector<OpId> legal;
  for (OpId b : writes_[v]) {
    // Definition 12: b is readable iff some a ∈ W with a p⪯ b.
    bool after_frontier = false;
    for (OpId a : frontier) {
      if (a == b || reachable(a, b, p)) {
        after_frontier = true;
        break;
      }
    }
    if (!after_frontier) continue;
    // Second clause (read monotonicity): previous source must be p⪯ b.
    if (last_src != kNoOp && b != last_src && !reachable(last_src, b, p)) {
      continue;
    }
    legal.push_back(b);
  }
  return legal;
}

std::vector<std::pair<OpId, OpId>> Execution::unordered_write_pairs(
    LocId v) const {
  std::vector<std::pair<OpId, OpId>> pairs;
  const auto& ws = writes_[v];
  for (size_t i = 0; i < ws.size(); ++i) {
    for (size_t j = i + 1; j < ws.size(); ++j) {
      if (!reachable(ws[i], ws[j], kAnyProc) &&
          !reachable(ws[j], ws[i], kAnyProc)) {
        pairs.emplace_back(ws[i], ws[j]);
      }
    }
  }
  return pairs;
}

std::string Execution::to_dot() const {
  std::ostringstream os;
  os << "digraph pmc {\n  rankdir=TB;\n  node [shape=box,fontname=\"mono\"];\n";
  for (const Operation& o : ops_) {
    os << "  n" << o.id << " [label=\"" << o.describe() << "\"];\n";
  }
  for (const auto& edges : out_) {
    for (const Edge& e : edges) {
      const char* style = "solid";
      const char* color = "black";
      switch (e.kind) {
        case EdgeKind::kLocal: style = "dashed"; color = "gray40"; break;
        case EdgeKind::kProgram: color = "black"; break;
        case EdgeKind::kSync: color = "blue"; break;
        case EdgeKind::kFence: color = "red"; break;
      }
      os << "  n" << e.from << " -> n" << e.to << " [style=" << style
         << ",color=" << color << ",label=\"" << to_string(e.kind) << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace pmc::model
