#include "model/litmus.h"

#include <algorithm>

#include "model/execution.h"
#include "model/table1.h"
#include "util/check.h"

namespace pmc::model {

OpKind LitmusOp::op_kind() const {
  switch (kind) {
    case Kind::kLoad:
    case Kind::kLoadUntil:
      return OpKind::kRead;
    case Kind::kStore:
      return OpKind::kWrite;
    case Kind::kAcquire:
      return OpKind::kAcquire;
    case Kind::kRelease:
      return OpKind::kRelease;
    case Kind::kFence:
      return OpKind::kFence;
  }
  return OpKind::kFence;
}

namespace {

struct ThreadState {
  std::vector<char> issued;  // per instruction index
  size_t frontier = 0;       // first non-issued index
};

struct State {
  Execution exec;
  std::vector<ThreadState> threads;
  std::vector<int> holder;  // per location: thread holding the lock, or -1
  Outcome regs;

  State(const LitmusTest& t)
      : exec(static_cast<int>(t.threads.size()), t.num_locs,
             t.initial.empty() ? std::vector<uint64_t>(t.num_locs, 0)
                               : t.initial),
        holder(t.num_locs, -1),
        regs(t.num_regs, 0) {
    threads.resize(t.threads.size());
    for (size_t i = 0; i < t.threads.size(); ++i) {
      threads[i].issued.assign(t.threads[i].ops.size(), 0);
    }
  }
};

class Explorer {
 public:
  Explorer(const LitmusTest& test, const ExploreOptions& opts)
      : test_(test), opts_(opts) {}

  ExploreResult run() {
    State init(test_);
    dfs(init);
    return std::move(result_);
  }

 private:
  /// Instruction indices of thread t that may issue next. In program-order
  /// mode this is just the frontier; in weak-issue mode any instruction in
  /// the window may hoist unless Table I orders it behind a pending earlier
  /// instruction.
  std::vector<size_t> issuable(const State& st, size_t t) const {
    const auto& ts = st.threads[t];
    const auto& ops = test_.threads[t].ops;
    std::vector<size_t> out;
    if (ts.frontier >= ops.size()) return out;
    if (opts_.mode == IssueMode::kProgramOrder) {
      out.push_back(ts.frontier);
      return out;
    }
    const size_t end =
        std::min(ops.size(), ts.frontier + static_cast<size_t>(opts_.weak_window));
    for (size_t j = ts.frontier; j < end; ++j) {
      if (ts.issued[j]) continue;
      bool blocked = false;
      for (size_t i = ts.frontier; i < j && !blocked; ++i) {
        if (ts.issued[i]) continue;
        blocked = table1_edge(ops[i].op_kind(), ops[i].loc, ops[j].op_kind(),
                              ops[j].loc)
                      .has_value();
      }
      if (!blocked) out.push_back(j);
    }
    return out;
  }

  void mark_issued(State& st, size_t t, size_t j) const {
    auto& ts = st.threads[t];
    ts.issued[j] = 1;
    while (ts.frontier < ts.issued.size() && ts.issued[ts.frontier]) {
      ++ts.frontier;
    }
  }

  void record_read_race(State& st, OpId read_op) {
    if (!result_.race_observed && st.exec.last_writes(read_op).size() > 1) {
      result_.race_observed = true;
    }
  }

  void dfs(State& st) {
    if (result_.truncated) return;
    bool all_done = true;
    bool advanced = false;
    for (size_t t = 0; t < st.threads.size(); ++t) {
      if (st.threads[t].frontier < st.threads[t].issued.size()) {
        all_done = false;
      }
      for (size_t j : issuable(st, t)) {
        const LitmusOp& op = test_.threads[t].ops[j];
        const ProcId p = static_cast<ProcId>(t);
        switch (op.kind) {
          case LitmusOp::Kind::kStore: {
            State next = st;
            next.exec.write(p, op.loc, op.value);
            mark_issued(next, t, j);
            advanced = true;
            dfs(next);
            break;
          }
          case LitmusOp::Kind::kFence: {
            State next = st;
            next.exec.fence(p);
            mark_issued(next, t, j);
            advanced = true;
            dfs(next);
            break;
          }
          case LitmusOp::Kind::kAcquire: {
            if (st.holder[op.loc] != -1) break;  // mutual exclusion
            State next = st;
            next.exec.acquire(p, op.loc);
            next.holder[op.loc] = static_cast<int>(t);
            mark_issued(next, t, j);
            advanced = true;
            dfs(next);
            break;
          }
          case LitmusOp::Kind::kRelease: {
            PMC_CHECK_MSG(st.holder[op.loc] == static_cast<int>(t),
                          "litmus program releases a lock it does not hold");
            State next = st;
            next.exec.release(p, op.loc);
            next.holder[op.loc] = -1;
            mark_issued(next, t, j);
            advanced = true;
            dfs(next);
            break;
          }
          case LitmusOp::Kind::kLoad: {
            for (OpId src : st.exec.legal_sources_now(p, op.loc)) {
              State next = st;
              const uint64_t v = next.exec.op(src).value;
              const OpId read_op = next.exec.read(p, op.loc, v, src);
              record_read_race(next, read_op);
              if (op.reg >= 0) next.regs[op.reg] = v;
              mark_issued(next, t, j);
              advanced = true;
              dfs(next);
            }
            break;
          }
          case LitmusOp::Kind::kLoadUntil: {
            // Only the terminating poll iteration is modeled; failing polls
            // read older values, which cannot restrict the outcomes we only
            // continue from (monotonicity points forward).
            for (OpId src : st.exec.legal_sources_now(p, op.loc)) {
              if (st.exec.op(src).value != op.value) continue;
              State next = st;
              const OpId read_op = next.exec.read(p, op.loc, op.value, src);
              record_read_race(next, read_op);
              mark_issued(next, t, j);
              advanced = true;
              dfs(next);
            }
            break;
          }
        }
        if (result_.truncated) return;
      }
    }
    if (all_done) {
      result_.outcomes.insert(st.regs);
      if (++result_.paths >= opts_.max_paths) result_.truncated = true;
    } else if (!advanced) {
      ++result_.stuck_paths;
    }
  }

  const LitmusTest& test_;
  const ExploreOptions& opts_;
  ExploreResult result_;
};

}  // namespace

ExploreResult explore(const LitmusTest& test, const ExploreOptions& opts) {
  for (const auto& th : test.threads) {
    for (const auto& op : th.ops) {
      PMC_CHECK_MSG(op.kind == LitmusOp::Kind::kFence ||
                        (op.loc >= 0 && op.loc < test.num_locs),
                    "litmus op location out of range in " << test.name);
      PMC_CHECK(op.reg < test.num_regs);
    }
  }
  Explorer e(test, opts);
  return e.run();
}

bool outcome_allowed(const LitmusTest& test, const Outcome& outcome,
                     const ExploreOptions& opts) {
  return explore(test, opts).outcomes.count(outcome) > 0;
}

}  // namespace pmc::model
