// HostSC: the reference back-end on plain host threads.
//
// Annotations map to std::mutex and std::atomic operations; there is no
// timing. It exists so every application has a fast, sequentially consistent
// executable specification to differentially test the simulated back-ends
// against ("for a sequential consistent system, the implementation of the
// annotations is trivial", §V-B).
#pragma once

#include <barrier>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/env.h"

namespace pmc::rt {

class HostSpace {
 public:
  ObjId create(uint32_t size, std::string name, bool immutable = false);
  void init(ObjId id, const void* data, size_t n);
  void read_back(ObjId id, void* out, size_t n);
  int count() const { return static_cast<int>(objs_.size()); }

  struct HostObj {
    std::string name;
    uint32_t size = 0;
    bool immutable = false;
    std::vector<uint32_t> words;  // aligned storage for atomic_ref
    std::mutex mu;
    uint8_t* bytes() { return reinterpret_cast<uint8_t*>(words.data()); }
  };
  HostObj& obj(ObjId id);

 private:
  std::vector<std::unique_ptr<HostObj>> objs_;
};

class HostEnv final : public Env {
 public:
  HostEnv(HostSpace& space, std::barrier<>& bar, int id, int nprocs)
      : space_(space), bar_(bar), id_(id), nprocs_(nprocs) {}

  int id() const override { return id_; }
  int num_procs() const override { return nprocs_; }

  void entry_x(ObjId obj) override;
  void exit_x(ObjId obj) override;
  void entry_ro(ObjId obj) override;
  void exit_ro(ObjId obj) override;
  void fence() override;
  void flush(ObjId obj) override;
  void read(ObjId obj, uint32_t off, void* out, size_t n) override;
  void write(ObjId obj, uint32_t off, const void* data, size_t n) override;
  void compute(uint64_t instructions) override { (void)instructions; }
  void barrier() override { bar_.arrive_and_wait(); }

  void finish() const;

 private:
  struct Open {
    ObjId obj;
    bool exclusive;
    bool locked;
  };
  Open* find(ObjId obj);
  void enter(ObjId obj, bool exclusive);
  void exit(ObjId obj, bool exclusive);

  HostSpace& space_;
  std::barrier<>& bar_;
  int id_;
  int nprocs_;
  std::vector<Open> open_;
};

}  // namespace pmc::rt
