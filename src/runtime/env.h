// The PMC programming interface (paper Section V-A).
//
// Applications are written against this abstract Env: the six annotations
// (entry_x/exit_x, entry_ro/exit_ro, fence, flush) plus reads and writes of
// shared objects, compute, and a barrier. The same application code runs
// unmodified on every back-end — host threads, no-CC, SWCC, DSM, or SPM —
// which is the paper's portability claim as an API contract.
//
// Rules enforced at run time (annotation discipline, §V-A):
//  * every read/write of a shared object happens inside an open section;
//  * writes and flush need the exclusive (entry_x) kind;
//  * sections nest (LIFO), are per-core, and are closed before exit;
//  * flush is only legal inside an entry_x/exit_x pair.
#pragma once

#include <cstdint>
#include <type_traits>

#include "runtime/object.h"

namespace pmc::rt {

class Env {
 public:
  virtual ~Env() = default;

  virtual int id() const = 0;
  virtual int num_procs() const = 0;

  // -- Annotations (paper §V-A) ----------------------------------------------
  virtual void entry_x(ObjId obj) = 0;
  virtual void exit_x(ObjId obj) = 0;
  virtual void entry_ro(ObjId obj) = 0;
  virtual void exit_ro(ObjId obj) = 0;
  virtual void fence() = 0;
  virtual void flush(ObjId obj) = 0;

  // -- Data access within sections -------------------------------------------
  virtual void read(ObjId obj, uint32_t off, void* out, size_t n) = 0;
  virtual void write(ObjId obj, uint32_t off, const void* data, size_t n) = 0;

  // -- Execution --------------------------------------------------------------
  /// Models `instructions` straight-line instructions of private work.
  virtual void compute(uint64_t instructions) = 0;
  virtual void barrier() = 0;

  // -- Typed helpers -----------------------------------------------------------
  template <typename T>
  T ld(ObjId obj, uint32_t off = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    read(obj, off, &v, sizeof v);
    return v;
  }
  template <typename T>
  void st(ObjId obj, uint32_t off, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    write(obj, off, &v, sizeof v);
  }
};

}  // namespace pmc::rt
