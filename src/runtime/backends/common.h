// Shared plumbing for the Table II back-end implementations.
#pragma once

#include <memory>

#include "runtime/backend.h"
#include "util/check.h"

namespace pmc::rt::backends {

class BackendBase : public Backend {
 protected:
  explicit BackendBase(ObjectSpace& objs)
      : objs_(objs), m_(objs.machine()), locks_(objs.locks()) {}

  /// Reads the final payload from the SDRAM master copy (drained).
  void read_final_sdram(ObjId id, void* out, size_t n) {
    const ObjDesc& d = objs_.desc(id);
    PMC_CHECK(n <= d.size);
    m_.peek(d.sdram_addr, out, n);
  }

  ObjectSpace& objs_;
  sim::Machine& m_;
  sync::LockManager& locks_;
};

std::unique_ptr<Backend> make_nocc(ObjectSpace& objs);
std::unique_ptr<Backend> make_swcc(ObjectSpace& objs, const FaultInjection& f);
std::unique_ptr<Backend> make_dsm(ObjectSpace& objs, const FaultInjection& f,
                                  const BackendPolicy& policy);
std::unique_ptr<Backend> make_spm(ObjectSpace& objs, const FaultInjection& f);

/// The byte span of an object that can ever be touched (payload + version
/// word); the alignment padding behind it is never accessed, so cache
/// maintenance and transfers skip it.
inline uint32_t used_span(const ObjDesc& d) { return d.version_off + 4; }

/// Objects whose size exceeds the atomic unit (an aligned 32-bit word on
/// this 32-bit platform) need the lock even for read-only access (§V-A) —
/// unless they are immutable, in which case no torn read is possible.
inline bool needs_ro_lock(const ObjDesc& d) {
  return d.size > 4 && !d.immutable;
}

}  // namespace pmc::rt::backends
