// Shared plumbing for the Table II back-end implementations.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "runtime/backend.h"
#include "util/check.h"

namespace pmc::rt::backends {

class BackendBase : public Backend {
 public:
  /// Pre-sizes the per-core staging buffers to the largest object span and
  /// couples their bytes to machine snapshots: a transfer may be checkpointed
  /// mid-flight, so partially-staged bytes are machine state.
  void register_state(sim::Machine& m) override {
    uint32_t max_span = 0;
    for (ObjId i = 0; i < objs_.count(); ++i) {
      max_span = std::max(max_span, used_span_of(objs_.desc(i)));
    }
    scratch_.assign(static_cast<size_t>(m.num_cores()),
                    std::vector<uint8_t>(max_span, 0));
    registered_ = true;
    if (max_span == 0) return;
    for (auto& b : scratch_) m.register_state(b.data(), b.size());
  }

 protected:
  explicit BackendBase(ObjectSpace& objs)
      : objs_(objs), m_(objs.machine()), locks_(objs.locks()) {}

  /// Reads the final payload from the SDRAM master copy (drained).
  void read_final_sdram(ObjId id, void* out, size_t n) {
    const ObjDesc& d = objs_.desc(id);
    PMC_CHECK(n <= d.size);
    m_.peek(d.sdram_addr, out, n);
  }

  /// Per-core staging buffer for object transfers. A member rather than a
  /// local in enter/flush: a heap-owning local alive across a scheduler
  /// yield would sit on a fiber stack and break Machine::restore's
  /// stack-byte copy (DESIGN.md §10).
  uint8_t* scratch(int core, size_t n) {
    if (scratch_.empty()) {
      scratch_.resize(static_cast<size_t>(m_.num_cores()));
    }
    std::vector<uint8_t>& b = scratch_[static_cast<size_t>(core)];
    if (b.size() < n) {
      // register_state pre-sizes to the maximum span, so in snapshot mode
      // the buffer never moves after its bytes were registered.
      PMC_CHECK_MSG(!registered_, "staging buffer grew after register_state");
      b.resize(n);
    }
    return b.data();
  }

  ObjectSpace& objs_;
  sim::Machine& m_;
  sync::LockManager& locks_;

 private:
  static uint32_t used_span_of(const ObjDesc& d);  // defined below
  std::vector<std::vector<uint8_t>> scratch_;
  bool registered_ = false;
};

std::unique_ptr<Backend> make_nocc(ObjectSpace& objs);
std::unique_ptr<Backend> make_swcc(ObjectSpace& objs, const FaultInjection& f);
std::unique_ptr<Backend> make_dsm(ObjectSpace& objs, const FaultInjection& f,
                                  const BackendPolicy& policy);
std::unique_ptr<Backend> make_spm(ObjectSpace& objs, const FaultInjection& f);
std::unique_ptr<Backend> make_regc(ObjectSpace& objs, const FaultInjection& f,
                                   const BackendPolicy& policy);
std::unique_ptr<Backend> make_shl1(ObjectSpace& objs, const FaultInjection& f);

/// The byte span of an object that can ever be touched (payload + version
/// word); the alignment padding behind it is never accessed, so cache
/// maintenance and transfers skip it.
inline uint32_t used_span(const ObjDesc& d) { return d.version_off + 4; }

/// Objects whose size exceeds the atomic unit (an aligned 32-bit word on
/// this 32-bit platform) need the lock even for read-only access (§V-A) —
/// unless they are immutable, in which case no torn read is possible.
inline bool needs_ro_lock(const ObjDesc& d) {
  return d.size > 4 && !d.immutable;
}

inline uint32_t BackendBase::used_span_of(const ObjDesc& d) {
  return used_span(d);
}

}  // namespace pmc::rt::backends
