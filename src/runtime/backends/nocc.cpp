// The no-CC baseline of §VI-A: shared data is uncached in SDRAM, "no cache
// coherency protocol is required and all cache flushes are nullified".
// Mutual exclusion is still required for entry/exit pairs.
#include "runtime/backends/common.h"

namespace pmc::rt::backends {
namespace {

class NoccBackend final : public BackendBase {
 public:
  explicit NoccBackend(ObjectSpace& objs) : BackendBase(objs) {
    PMC_CHECK_MSG(!m_.config().cache_shared,
                  "the no-CC back-end needs cache_shared = false");
  }

  const char* name() const override { return "nocc"; }

  void enter(sim::Core& core, Section& s) override {
    if (s.exclusive) {
      locks_.acquire(core, s.desc->lock);
    } else if (needs_ro_lock(*s.desc)) {
      locks_.acquire(core, s.desc->lock);
      s.locked = true;
    }
    s.data_addr = s.desc->sdram_addr;  // uncached: the machine routes by mode
    s.cls = sim::MemClass::kSharedData;
  }

  void exit(sim::Core& core, Section& s) override {
    if (s.exclusive) {
      if (s.dirty) {
        // Posted uncached stores need sdram_write_visible cycles to land;
        // waiting here bounds them all (each was posted before `now`).
        core.charge_stall(m_.config().timing.sdram_write_visible,
                          sim::Core::StallBucket::kWrite);
      }
      locks_.release(core, s.desc->lock);
    } else if (s.locked) {
      locks_.release(core, s.desc->lock);
    }
  }

  void flush(sim::Core& core, Section& s) override {
    // Nullified: uncached writes are already on their way to SDRAM.
    (void)core;
    (void)s;
  }

  void read_final(ObjId id, void* out, size_t n) override {
    read_final_sdram(id, out, n);
  }
};

}  // namespace

std::unique_ptr<Backend> make_nocc(ObjectSpace& objs) {
  return std::make_unique<NoccBackend>(objs);
}

}  // namespace pmc::rt::backends
