// Regional Consistency (RegC): the acquire/release granularity is a *region*
// of objects rather than a single object. Objects are grouped id-contiguously
// (policy.regc_objects_per_region per region) and a region is guarded by its
// representative object's lock. While a core holds a region open (a reentrant
// streak of nested sections into the same region), object lines stay in its
// private D-cache; the write-back-and-invalidate of every object the streak
// touched (dirty lines written back, clean lines dropped — a retained clean
// line would go stale the moment another core's streak updates the object)
// is deferred and batched to the streak's last exit, just before the release.
// With one object per region (the default) the lock graph and flush points
// degenerate to exactly SWCC — the differential grids exploit that.
#include <algorithm>
#include <vector>

#include "runtime/backends/common.h"

namespace pmc::rt::backends {
namespace {

class RegcBackend final : public BackendBase {
 public:
  RegcBackend(ObjectSpace& objs, const FaultInjection& faults,
              const BackendPolicy& policy)
      : BackendBase(objs),
        skip_writeback_(faults.enabled("regc_skip_region_writeback")),
        opr_(policy.regc_objects_per_region) {
    PMC_CHECK_MSG(m_.config().cache_shared,
                  "the RegC back-end needs cache_shared = true");
    PMC_CHECK(opr_ >= 1);
  }

  const char* name() const override { return "regc"; }

  void enter(sim::Core& core, Section& s) override {
    ensure_tables();
    const ObjDesc& d = *s.desc;
    if (s.exclusive || needs_ro_lock(d)) {
      // Reentrant region streak: only the 0→1 transition takes the lock, so
      // nested sections into the same region never self-deadlock.
      uint32_t& streak = open_slot(core.id(), region_of(d));
      if (streak == 0) {
        locks_.acquire(core, region_lock(d));
      }
      ++streak;
      touched_slot(core.id(), d.id) = 1;
      if (!s.exclusive) s.locked = true;
    }
    // Cached, like SWCC — but the cache may legitimately hold the object
    // across sections of the same streak; freshness comes from the batched
    // write-back preceding the region release.
    s.data_addr = d.sdram_addr;
    s.cls = sim::MemClass::kSharedData;
  }

  void exit(sim::Core& core, Section& s) override {
    ensure_tables();
    const ObjDesc& d = *s.desc;
    if (s.exclusive || s.locked) {
      uint32_t& streak = open_slot(core.id(), region_of(d));
      PMC_CHECK_MSG(streak > 0, "region exit without a matching entry");
      if (--streak == 0) {
        if (!skip_writeback_) {
          write_back_region(core, region_of(d));
        } else {
          // Injected bug: release without the batched write-back — dirty
          // lines linger in this core's cache and the next acquirer reads
          // stale SDRAM, exactly the hazard RegC's release fence prevents.
          clear_region_touched(core.id(), region_of(d));
        }
        locks_.release(core, region_lock(d));
      }
      return;
    }
    // Lock-free read-only section (word-sized or immutable object): drop the
    // line so the next read refills fresh, as SWCC's exit_ro does.
    const uint64_t arrival = core.cache_wbinval(d.sdram_addr, used_span(d));
    if (arrival != 0) {
      core.wait_until(arrival, sim::Core::StallBucket::kFlush);
    }
  }

  void flush(sim::Core& core, Section& s) override {
    ensure_tables();
    const ObjDesc& d = *s.desc;
    const uint64_t arrival = core.cache_wbinval(d.sdram_addr, used_span(d));
    if (arrival != 0) {
      core.wait_until(arrival, sim::Core::StallBucket::kFlush);
    }
  }

  void read_final(ObjId id, void* out, size_t n) override {
    // Every streak ended (sections nest), so the batched write-backs made
    // SDRAM authoritative.
    read_final_sdram(id, out, n);
  }

  void register_state(sim::Machine& m) override {
    BackendBase::register_state(m);
    ensure_tables();
    if (!open_.empty()) {
      m.register_state(open_.data(), open_.size() * sizeof(uint32_t));
    }
    if (!touched_.empty()) {
      m.register_state(touched_.data(), touched_.size());
    }
  }

 private:
  uint32_t region_of(const ObjDesc& d) const {
    return static_cast<uint32_t>(d.id) / opr_;
  }
  /// The region's lock is its representative (lowest-id) object's lock.
  int region_lock(const ObjDesc& d) const {
    return objs_.desc(static_cast<ObjId>(region_of(d) * opr_)).lock;
  }
  uint32_t& open_slot(int core, uint32_t region) {
    return open_[static_cast<size_t>(core) * num_regions_ + region];
  }
  uint8_t& touched_slot(int core, ObjId id) {
    return touched_[static_cast<size_t>(core) * num_objs_ +
                    static_cast<size_t>(id)];
  }

  /// The tables depend on the final object count, which only exists after
  /// freeze() — lazily sized on first use, never resized after (the object
  /// space is frozen before any core runs, and register_state re-uses the
  /// same call so registered bytes never move).
  void ensure_tables() {
    if (!open_.empty() || objs_.count() == 0) return;
    num_objs_ = static_cast<size_t>(objs_.count());
    num_regions_ = (num_objs_ + opr_ - 1) / opr_;
    open_.assign(static_cast<size_t>(m_.num_cores()) * num_regions_, 0);
    touched_.assign(static_cast<size_t>(m_.num_cores()) * num_objs_, 0);
  }

  void write_back_region(sim::Core& core, uint32_t region) {
    const ObjId lo = static_cast<ObjId>(region * opr_);
    const ObjId hi = static_cast<ObjId>(
        std::min<size_t>(num_objs_, static_cast<size_t>(region + 1) * opr_));
    uint64_t last_arrival = 0;
    for (ObjId id = lo; id < hi; ++id) {
      uint8_t& flag = touched_slot(core.id(), id);
      if (flag == 0) continue;
      flag = 0;
      const ObjDesc& d = objs_.desc(id);
      last_arrival = std::max(
          last_arrival, core.cache_wbinval(d.sdram_addr, used_span(d)));
    }
    if (last_arrival != 0) {
      core.wait_until(last_arrival, sim::Core::StallBucket::kFlush);
    }
  }

  void clear_region_touched(int core, uint32_t region) {
    const ObjId lo = static_cast<ObjId>(region * opr_);
    const ObjId hi = static_cast<ObjId>(
        std::min<size_t>(num_objs_, static_cast<size_t>(region + 1) * opr_));
    for (ObjId id = lo; id < hi; ++id) touched_slot(core, id) = 0;
  }

  bool skip_writeback_;
  uint32_t opr_;             // objects per region (policy knob)
  size_t num_objs_ = 0;      // fixed once tables exist
  size_t num_regions_ = 0;
  std::vector<uint32_t> open_;    // per (core, region): reentrant open streak
  std::vector<uint8_t> touched_;  // per (core, object): in-cache this streak
};

}  // namespace

std::unique_ptr<Backend> make_regc(ObjectSpace& objs, const FaultInjection& f,
                                   const BackendPolicy& policy) {
  return std::make_unique<RegcBackend>(objs, f, policy);
}

}  // namespace pmc::rt::backends
