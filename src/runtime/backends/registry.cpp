#include "runtime/backends/registry.h"

#include "runtime/backends/common.h"
#include "util/check.h"

namespace pmc::rt {

const std::vector<BackendDescriptor>& backend_registry() {
  static const std::vector<BackendDescriptor> kRegistry = [] {
    std::vector<BackendDescriptor> r;
    r.push_back({BackendKind::kNoCC, "nocc",
                 "uncached shared data in SDRAM (the §VI-A baseline)",
                 /*cache_shared=*/false, /*needs_cluster=*/false,
                 /*uses_cluster=*/false,
                 /*faults=*/{},
                 [](ObjectSpace& objs, const FaultInjection&,
                    const BackendPolicy&) {
                   return backends::make_nocc(objs);
                 }});
    r.push_back({BackendKind::kSWCC, "swcc",
                 "software cache coherency: exit writebacks-and-invalidates",
                 /*cache_shared=*/true, /*needs_cluster=*/false,
                 /*uses_cluster=*/false,
                 /*faults=*/{"swcc_skip_exit_writeback"},
                 [](ObjectSpace& objs, const FaultInjection& f,
                    const BackendPolicy&) {
                   return backends::make_swcc(objs, f);
                 }});
    r.push_back({BackendKind::kDSM, "dsm",
                 "replicated objects in local memories, NoC ownership handoff",
                 /*cache_shared=*/false, /*needs_cluster=*/false,
                 /*uses_cluster=*/false,
                 /*faults=*/{"dsm_skip_transfer"},
                 [](ObjectSpace& objs, const FaultInjection& f,
                    const BackendPolicy& p) {
                   return backends::make_dsm(objs, f, p);
                 }});
    r.push_back({BackendKind::kSPM, "spm",
                 "scratch-pad staging: DMA objects in at entry, back at exit",
                 /*cache_shared=*/false, /*needs_cluster=*/false,
                 /*uses_cluster=*/false,
                 /*faults=*/{"spm_skip_copy_back"},
                 [](ObjectSpace& objs, const FaultInjection& f,
                    const BackendPolicy&) {
                   return backends::make_spm(objs, f);
                 }});
    r.push_back({BackendKind::kRegC, "regc",
                 "regional consistency: region-granularity locks, lazy "
                 "per-region write-back",
                 /*cache_shared=*/true, /*needs_cluster=*/false,
                 /*uses_cluster=*/false,
                 /*faults=*/{"regc_skip_region_writeback"},
                 [](ObjectSpace& objs, const FaultInjection& f,
                    const BackendPolicy& p) {
                   return backends::make_regc(objs, f, p);
                 }});
    r.push_back({BackendKind::kShL1, "shl1",
                 "shared-L1 cluster SRAM: objects live in the cluster, "
                 "entry/exit are near-free",
                 /*cache_shared=*/false, /*needs_cluster=*/true,
                 /*uses_cluster=*/true,
                 /*faults=*/{"shl1_skip_lock"},
                 [](ObjectSpace& objs, const FaultInjection& f,
                    const BackendPolicy&) {
                   return backends::make_shl1(objs, f);
                 }});
    // The enum is the registry's index space; keep them in lockstep so
    // descriptor() can subscript.
    for (size_t i = 0; i < r.size(); ++i) {
      PMC_CHECK(static_cast<size_t>(r[i].kind) == i);
    }
    return r;
  }();
  return kRegistry;
}

const BackendDescriptor& descriptor(BackendKind k) {
  const auto& reg = backend_registry();
  const size_t i = static_cast<size_t>(k);
  PMC_CHECK_MSG(i < reg.size(),
                "BackendKind " << i << " is outside the registry (registered: "
                               << backend_names() << ")");
  return reg[i];
}

const BackendDescriptor* find_backend(std::string_view name) {
  for (const BackendDescriptor& d : backend_registry()) {
    if (name == d.name) return &d;
  }
  return nullptr;
}

std::string backend_names(const char* sep) {
  std::string out;
  for (const BackendDescriptor& d : backend_registry()) {
    if (!out.empty()) out += sep;
    out += d.name;
  }
  return out;
}

std::string check_machine(const BackendDescriptor& d,
                          const sim::MachineConfig& cfg) {
  if (d.needs_cluster && cfg.cluster_bytes == 0) {
    return std::string("back-end '") + d.name +
           "' requires cluster SRAM: set [cluster] bytes > 0 in the machine "
           "description";
  }
  return "";
}

bool fault_name_known(std::string_view name) {
  for (const BackendDescriptor& d : backend_registry()) {
    for (const std::string& f : d.faults) {
      if (name == f) return true;
    }
  }
  return false;
}

// -- FaultInjection (declared in backend.h; lives here for registry access) --

void FaultInjection::enable(std::string_view name) {
  PMC_CHECK_MSG(fault_name_known(name),
                "unknown seeded fault '" << std::string(name)
                                         << "' (no back-end registers it)");
  if (!enabled(name)) names_.emplace_back(name);
}

bool FaultInjection::enabled(std::string_view name) const {
  for (const std::string& n : names_) {
    if (name == n) return true;
  }
  return false;
}

}  // namespace pmc::rt
