// Distributed shared memory over the write-only interconnect (Table II,
// third column). Every shared object has a replica at a common offset in
// every tile's local memory; reads and writes always touch the *own* tile's
// replica ("the read and write pointers are only polled from local memory").
//
// exit_x is lazy: modifications stay local. On the next entry_x by another
// core, the previous owner's version "is written to the local memory of the
// acquiring processor" — modeled as a NoC push the acquirer waits on.
// flush(X) broadcasts the object into every other local memory; the call
// returns only after its own packets arrived, which keeps replica updates
// per object in increasing version order even across different senders
// (without this, a slow broadcast could overwrite a newer one and break the
// read monotonicity of Definition 12).
#include <algorithm>
#include <vector>

#include "runtime/backends/common.h"

namespace pmc::rt::backends {
namespace {

class DsmBackend final : public BackendBase {
 public:
  DsmBackend(ObjectSpace& objs, const FaultInjection& faults,
             const BackendPolicy& policy)
      : BackendBase(objs),
        skip_transfer_(faults.enabled("dsm_skip_transfer")),
        policy_(policy) {}

  const char* name() const override { return "dsm"; }
  bool needs_replicas() const override { return true; }

  void enter(sim::Core& core, Section& s) override {
    const ObjDesc& d = *s.desc;
    PMC_CHECK_MSG(d.placement == Placement::kReplicated,
                  d.name << " must be Placement::kReplicated for DSM");
    if (s.exclusive) {
      locks_.acquire(core, d.lock);
      const int prev = locks_.previous_holder(d.lock);
      if (prev != -1 && prev != core.id() && !skip_transfer_) {
        // Ownership transfer: the previous owner's replica is pushed into
        // ours over the NoC; we stall until it arrived.
        const size_t len = used_span(d);
        uint8_t* bytes = scratch(core.id(), len);
        sim::MemModule& src = m_.local_mem(prev);
        src.read(core.now(), objs_.replica_addr(prev, d.id), bytes, len);
        const uint64_t arrival =
            m_.noc().deliver(core.now(), prev, core.id(),
                             m_.local_mem(core.id()), len);
        m_.local_mem(core.id()).post_write(
            arrival, objs_.replica_addr(core.id(), d.id), bytes, len);
        core.wait_until(arrival, sim::Core::StallBucket::kSharedRead);
      }
    } else if (needs_ro_lock(d)) {
      // Lock for atomicity only — the data stays the (possibly stale) local
      // replica; freshness needs exclusive access (slow reads, §IV-D).
      locks_.acquire(core, d.lock);
      s.locked = true;
    }
    s.data_addr = objs_.replica_addr(core.id(), d.id);
    s.cls = sim::MemClass::kSharedData;
  }

  void exit(sim::Core& core, Section& s) override {
    // Lazy release keeps modifications local until the next acquire; the
    // eager policy performs "a flush(X) before giving up the lock" (§V-A).
    if (policy_.dsm_eager_release && s.exclusive && s.dirty) {
      flush(core, s);
    }
    if (s.exclusive || s.locked) {
      locks_.release(core, s.desc->lock);
    }
  }

  void flush(sim::Core& core, Section& s) override {
    const ObjDesc& d = *s.desc;
    // Read our replica (timed), then broadcast it.
    const size_t len = used_span(d);
    uint8_t* bytes = scratch(core.id(), len);
    core.read_block(objs_.replica_addr(core.id(), d.id), bytes, len,
                    sim::MemClass::kSharedData);
    uint64_t last_arrival = 0;
    for (int t = 0; t < m_.num_cores(); ++t) {
      if (t == core.id()) continue;
      const uint64_t arrival =
          core.remote_write(t, objs_.replica_addr(t, d.id), bytes, len);
      last_arrival = std::max(last_arrival, arrival);
    }
    // Wait for our own broadcast: later flushes (under the next lock owner)
    // then provably arrive later at every tile.
    core.wait_until(last_arrival, sim::Core::StallBucket::kWrite);
  }

  void read_final(ObjId id, void* out, size_t n) override {
    // The freshest copy after the run sits in the last owner's replica (or
    // any replica if the object was never acquired exclusively).
    const ObjDesc& d = objs_.desc(id);
    PMC_CHECK(n <= d.size);
    const int owner = locks_.last_owner(d.lock);
    const int tile = owner == -1 ? 0 : owner;
    m_.peek(objs_.replica_addr(tile, id), out, n);
  }

 private:
  bool skip_transfer_;
  BackendPolicy policy_;
};

}  // namespace

std::unique_ptr<Backend> make_dsm(ObjectSpace& objs, const FaultInjection& f,
                                  const BackendPolicy& policy) {
  return std::make_unique<DsmBackend>(objs, f, policy);
}

}  // namespace pmc::rt::backends
