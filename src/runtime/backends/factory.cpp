#include "runtime/backends/common.h"

namespace pmc::rt {

const char* to_string(BackendKind k) {
  switch (k) {
    case BackendKind::kNoCC: return "nocc";
    case BackendKind::kSWCC: return "swcc";
    case BackendKind::kDSM: return "dsm";
    case BackendKind::kSPM: return "spm";
  }
  return "?";
}

std::optional<BackendKind> backend_from_string(std::string_view name) {
  for (BackendKind k : {BackendKind::kNoCC, BackendKind::kSWCC,
                        BackendKind::kDSM, BackendKind::kSPM}) {
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

std::unique_ptr<Backend> make_backend(BackendKind kind, ObjectSpace& objs) {
  return make_backend(kind, objs, FaultInjection{});
}

std::unique_ptr<Backend> make_backend(BackendKind kind, ObjectSpace& objs,
                                      const FaultInjection& faults) {
  return make_backend(kind, objs, faults, BackendPolicy{});
}

std::unique_ptr<Backend> make_backend(BackendKind kind, ObjectSpace& objs,
                                      const FaultInjection& faults,
                                      const BackendPolicy& policy) {
  switch (kind) {
    case BackendKind::kNoCC: return backends::make_nocc(objs);
    case BackendKind::kSWCC: return backends::make_swcc(objs, faults);
    case BackendKind::kDSM: return backends::make_dsm(objs, faults, policy);
    case BackendKind::kSPM: return backends::make_spm(objs, faults);
  }
  PMC_CHECK_MSG(false, "unknown back-end kind");
  return nullptr;
}

}  // namespace pmc::rt
