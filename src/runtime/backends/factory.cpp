#include "runtime/backends/common.h"
#include "runtime/backends/registry.h"

namespace pmc::rt {

const char* to_string(BackendKind k) { return descriptor(k).name; }

std::optional<BackendKind> backend_from_string(std::string_view name) {
  const BackendDescriptor* d = find_backend(name);
  if (d == nullptr) return std::nullopt;
  return d->kind;
}

std::unique_ptr<Backend> make_backend(BackendKind kind, ObjectSpace& objs) {
  return make_backend(kind, objs, FaultInjection{});
}

std::unique_ptr<Backend> make_backend(BackendKind kind, ObjectSpace& objs,
                                      const FaultInjection& faults) {
  return make_backend(kind, objs, faults, BackendPolicy{});
}

std::unique_ptr<Backend> make_backend(BackendKind kind, ObjectSpace& objs,
                                      const FaultInjection& faults,
                                      const BackendPolicy& policy) {
  return descriptor(kind).make(objs, faults, policy);
}

}  // namespace pmc::rt
