// Shared-L1 cluster back-end (MemPool-style): every shared object lives
// permanently at a fixed home slot in the interleaved cluster SRAM, reachable
// from all cores in a few cycles through the cluster interconnect. There is
// nothing to stage, flush, or hand off — entry/exit degenerate to the bare
// lock protocol, and flush(X) is nullified. Stores to the cluster are
// immediate (non-posted), so a clean run needs no visibility wait either;
// the cost model instead prices contention at the cluster's banked port
// (PortStats under the mesh NoC).
#include "runtime/backends/common.h"

namespace pmc::rt::backends {
namespace {

class Shl1Backend final : public BackendBase {
 public:
  Shl1Backend(ObjectSpace& objs, const FaultInjection& faults)
      : BackendBase(objs), skip_lock_(faults.enabled("shl1_skip_lock")) {
    PMC_CHECK_MSG(m_.cluster() != nullptr,
                  "the shl1 back-end requires cluster SRAM: set [cluster] "
                  "bytes > 0 in the machine description");
    PMC_CHECK_MSG(!m_.config().cache_shared,
                  "the shl1 back-end keeps shared data uncached (the cluster "
                  "SRAM is the only copy)");
  }

  const char* name() const override { return "shl1"; }

  void enter(sim::Core& core, Section& s) override {
    const ObjDesc& d = *s.desc;
    PMC_CHECK_MSG(d.cluster_addr != 0,
                  d.name << " has no cluster slot (ObjectSpace was built "
                            "without use_cluster)");
    if (s.exclusive) {
      // Injected bug: the whole acquire is omitted (exit skips the matching
      // release, keeping the lock bookkeeping consistent) — writers race on
      // the cluster copy unserialized.
      if (!skip_lock_) {
        locks_.acquire(core, d.lock);
      }
    } else if (needs_ro_lock(d)) {
      locks_.acquire(core, d.lock);
      s.locked = true;
    }
    s.data_addr = d.cluster_addr;
    s.cls = sim::MemClass::kSharedData;
  }

  void exit(sim::Core& core, Section& s) override {
    if (s.exclusive) {
      if (!skip_lock_) {
        locks_.release(core, s.desc->lock);
      }
    } else if (s.locked) {
      locks_.release(core, s.desc->lock);
    }
  }

  void flush(sim::Core& core, Section& s) override {
    // Nullified: cluster stores are immediate and the cluster is the master.
    (void)core;
    (void)s;
  }

  void read_final(ObjId id, void* out, size_t n) override {
    const ObjDesc& d = objs_.desc(id);
    PMC_CHECK(n <= d.size);
    m_.peek(d.cluster_addr, out, n);
  }

 private:
  bool skip_lock_;
};

}  // namespace

std::unique_ptr<Backend> make_shl1(ObjectSpace& objs,
                                   const FaultInjection& f) {
  return std::make_unique<Shl1Backend>(objs, f);
}

}  // namespace pmc::rt::backends
