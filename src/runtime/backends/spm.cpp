// Scratch-pad memory back-end (Table II, fourth column). The master copy of
// every object lives in SDRAM; entry stages a private copy into the tile's
// scratch-pad region, exit_x copies it back ("The data is copied back to
// SDRAM"), exit_ro discards it. Managed at run time, "because of simplicity
// of the implementation", exactly as the paper chose.
#include <vector>

#include "runtime/backends/common.h"

namespace pmc::rt::backends {
namespace {

class SpmBackend final : public BackendBase {
 public:
  SpmBackend(ObjectSpace& objs, const FaultInjection& faults)
      : BackendBase(objs),
        skip_copy_back_(faults.enabled("spm_skip_copy_back")) {
    PMC_CHECK_MSG(!m_.config().cache_shared,
                  "the SPM back-end keeps shared data uncached in SDRAM");
    cursor_.assign(static_cast<size_t>(m_.num_cores()), objs_.spm_base());
  }

  const char* name() const override { return "spm"; }

  void enter(sim::Core& core, Section& s) override {
    const ObjDesc& d = *s.desc;
    // Stack-allocate scratch space (sections are strictly nested).
    const uint32_t off = cursor_[core.id()];
    PMC_CHECK_MSG(off + d.alloc_bytes <= m_.config().lm_bytes,
                  "scratch-pad exhausted staging " << d.name);
    cursor_[core.id()] = off + d.alloc_bytes;
    s.data_addr = m_.lm_base(core.id()) + off;

    if (s.exclusive) {
      locks_.acquire(core, d.lock);
    } else if (needs_ro_lock(d)) {
      // "the object is locked before copying and unlocked afterwards".
      locks_.acquire(core, d.lock);
      s.locked = true;
    }
    // DMA the master copy into the scratch-pad.
    const size_t len = used_span(d);
    uint8_t* bytes = scratch(core.id(), len);
    core.dma_read(d.sdram_addr, bytes, len, sim::MemClass::kSharedData);
    m_.local_mem(core.id()).write(core.now(), s.data_addr, bytes, len);
    if (s.locked) {
      locks_.release(core, d.lock);
      // The lock protected only the copy; the section itself is read-only.
    }
    s.cls = sim::MemClass::kLocal;
  }

  void exit(sim::Core& core, Section& s) override {
    const ObjDesc& d = *s.desc;
    if (s.exclusive) {
      if (s.dirty && !skip_copy_back_) {
        copy_back(core, s);
      }
      locks_.release(core, d.lock);
    }
    // exit_ro: "Discards the local copy."
    PMC_CHECK(cursor_[core.id()] >= d.alloc_bytes);
    cursor_[core.id()] -= d.alloc_bytes;
    PMC_CHECK_MSG(m_.lm_base(core.id()) + cursor_[core.id()] == s.data_addr,
                  "entry/exit pairs must nest (scratch allocator is a stack)");
  }

  void flush(sim::Core& core, Section& s) override {
    // "Copies the object back to SDRAM."
    copy_back(core, s);
  }

  void read_final(ObjId id, void* out, size_t n) override {
    read_final_sdram(id, out, n);
  }

  void register_state(sim::Machine& m) override {
    BackendBase::register_state(m);
    // The scratch allocator's per-core stack pointers move with the run.
    m.register_state(cursor_.data(), cursor_.size() * sizeof(uint32_t));
  }

 private:
  void copy_back(sim::Core& core, Section& s) {
    const ObjDesc& d = *s.desc;
    const size_t len = used_span(d);
    uint8_t* bytes = scratch(core.id(), len);
    core.read_block(s.data_addr, bytes, len, sim::MemClass::kLocal);
    const uint64_t arrival =
        core.dma_write(d.sdram_addr, bytes, len, sim::MemClass::kSharedData);
    core.wait_until(arrival, sim::Core::StallBucket::kWrite);
  }

  std::vector<uint32_t> cursor_;  // per-core scratch stack pointer
  bool skip_copy_back_;
};

}  // namespace

std::unique_ptr<Backend> make_spm(ObjectSpace& objs,
                                  const FaultInjection& f) {
  return std::make_unique<SpmBackend>(objs, f);
}

}  // namespace pmc::rt::backends
