// The back-end registry (DESIGN.md §13): one BackendDescriptor per Table II
// column, and every enumeration site — factory, CLI parsing and usage
// strings, the explore/check grids, seeded-fault tables, machine-requirement
// checks — iterates this table. Adding a back-end is one registration here
// plus its implementation file; nothing else in the tree names it.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "runtime/backend.h"
#include "sim/machine.h"

namespace pmc::rt {

struct BackendDescriptor {
  BackendKind kind;
  const char* name;     // unique CLI name, also Backend::name()
  const char* summary;  // one-line description for --help output
  /// Machine override applied by Program: shared-data SDRAM accesses go
  /// through the private D-cache (the software-cache-coherent columns).
  bool cache_shared = false;
  /// Machine requirement: interleaved cluster SRAM ([cluster] bytes > 0).
  bool needs_cluster = false;
  /// Shared objects additionally get a fixed home slot in the cluster SRAM
  /// (ObjectSpace allocates it only for back-ends that ask).
  bool uses_cluster = false;
  /// Seeded protocol faults this back-end implements (named-fault table);
  /// empty for back-ends with no coherence action to omit.
  std::vector<std::string> faults;
  std::unique_ptr<Backend> (*make)(ObjectSpace& objs,
                                   const FaultInjection& faults,
                                   const BackendPolicy& policy);
};

/// All registered back-ends, in BackendKind order.
const std::vector<BackendDescriptor>& backend_registry();

/// The descriptor for `k`; throws util::CheckFailure (naming the registered
/// back-ends) for a kind outside the registry.
const BackendDescriptor& descriptor(BackendKind k);

/// Registry lookup by CLI name; nullptr when unknown.
const BackendDescriptor* find_backend(std::string_view name);

/// The registered names joined by `sep` ("nocc|swcc|...") — the one string
/// CLIs embed in usage text and bad-flag errors.
std::string backend_names(const char* sep = "|");

/// "" when `cfg` satisfies `d`'s machine requirements, otherwise a named
/// error ("back-end 'shl1' requires ...") for the caller to raise.
std::string check_machine(const BackendDescriptor& d,
                          const sim::MachineConfig& cfg);

/// True when some registered back-end declares this seeded-fault name.
bool fault_name_known(std::string_view name);

}  // namespace pmc::rt
