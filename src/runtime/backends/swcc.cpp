// Software cache coherency (Table II, second column; resembles BACKER).
//
// Shared data is cached; exit_x writebacks-and-invalidates the object's
// lines, "so the object does not reside in the cache outside of any
// entry/exit pair". The exit additionally waits for its own writebacks to
// land in SDRAM before releasing the lock, so the next acquirer's fills
// observe them — the flush-completion wait a real flush instruction gives.
#include "runtime/backends/common.h"

namespace pmc::rt::backends {
namespace {

class SwccBackend final : public BackendBase {
 public:
  SwccBackend(ObjectSpace& objs, const FaultInjection& faults)
      : BackendBase(objs),
        skip_writeback_(faults.enabled("swcc_skip_exit_writeback")) {
    PMC_CHECK_MSG(m_.config().cache_shared,
                  "the SWCC back-end needs cache_shared = true");
  }

  const char* name() const override { return "swcc"; }

  void enter(sim::Core& core, Section& s) override {
    if (s.exclusive) {
      locks_.acquire(core, s.desc->lock);
    } else if (needs_ro_lock(*s.desc)) {
      locks_.acquire(core, s.desc->lock);
      s.locked = true;
    }
    // Nothing to stage: the protocol invariant says the object is not in
    // our cache (every exit flushed it); reads will miss and fill fresh.
    s.data_addr = s.desc->sdram_addr;
    s.cls = sim::MemClass::kSharedData;
  }

  void exit(sim::Core& core, Section& s) override {
    if (skip_writeback_ && s.exclusive) {
      locks_.release(core, s.desc->lock);  // injected bug: no flush
      return;
    }
    const uint64_t arrival =
        core.cache_wbinval(s.desc->sdram_addr, used_span(*s.desc));
    if (arrival != 0) {
      core.wait_until(arrival, sim::Core::StallBucket::kFlush);
    }
    if (s.exclusive || s.locked) {
      locks_.release(core, s.desc->lock);
    }
  }

  void flush(sim::Core& core, Section& s) override {
    const uint64_t arrival =
        core.cache_wbinval(s.desc->sdram_addr, used_span(*s.desc));
    if (arrival != 0) {
      core.wait_until(arrival, sim::Core::StallBucket::kFlush);
    }
  }

  void read_final(ObjId id, void* out, size_t n) override {
    // The section discipline guarantees every object was flushed at its
    // last exit, so SDRAM is authoritative.
    read_final_sdram(id, out, n);
  }

 private:
  bool skip_writeback_;
};

}  // namespace

std::unique_ptr<Backend> make_swcc(ObjectSpace& objs,
                                   const FaultInjection& f) {
  return std::make_unique<SwccBackend>(objs, f);
}

}  // namespace pmc::rt::backends
