#include "runtime/sim_env.h"

#include "util/check.h"

namespace pmc::rt {

Section* SimEnv::find(ObjId obj) {
  for (int i = 0; i < num_open_; ++i) {
    if (open_[i].obj == obj) return &open_[i];
  }
  return nullptr;
}

void SimEnv::enter(ObjId obj, bool exclusive) {
  PMC_CHECK_MSG(find(obj) == nullptr,
                "core " << id() << " double-enters "
                        << rt_.objs->desc(obj).name);
  PMC_CHECK_MSG(num_open_ < kMaxOpen,
                "core " << id() << " nests more than " << kMaxOpen
                        << " open sections");
  Section s;
  s.obj = obj;
  s.desc = &rt_.objs->desc(obj);
  s.exclusive = exclusive;
  PMC_CHECK_MSG(!(exclusive && s.desc->immutable),
                s.desc->name << " is immutable: entry_x is not allowed");
  rt_.backend->enter(core_, s);
  if (rt_.validate) {
    if (exclusive) {
      rt_.trace.push_back(model::TraceEvent::acquire(id(), obj));
    }
    // The version read through the section's own data path is the staleness
    // witness the validator checks against Definition 12.
    const uint32_t ver =
        core_.load_u32(s.data_addr + s.desc->version_off, s.cls);
    rt_.trace.push_back(model::TraceEvent::read(id(), obj, ver));
  }
  open_[num_open_++] = s;
}

void SimEnv::publish_version(Section& s) {
  if (!rt_.validate) return;
  const uint32_t ver = rt_.objs->next_version(s.obj);
  core_.store_u32(s.data_addr + s.desc->version_off, ver, s.cls);
  rt_.trace.push_back(model::TraceEvent::write(id(), s.obj, ver));
}

void SimEnv::exit(ObjId obj, bool exclusive) {
  PMC_CHECK_MSG(num_open_ > 0 && open_[num_open_ - 1].obj == obj,
                "core " << id() << " exits " << rt_.objs->desc(obj).name
                        << " out of LIFO order");
  Section& s = open_[num_open_ - 1];
  PMC_CHECK_MSG(s.exclusive == exclusive,
                "exit kind does not match entry kind for " << s.desc->name);
  if (s.exclusive && s.dirty) publish_version(s);
  if (rt_.validate && s.exclusive) {
    // Recorded *before* backend->exit physically releases the lock: the
    // release's store is a scheduling point, so a waiter blocked in
    // acquire() can otherwise complete and log its acquire first — the
    // validator then sees acq before rel, builds no sync edge, and flags
    // two properly-locked writes as a race. (Found by the fuzz farm:
    // tests/fuzz/test_farm.cpp, HandoffOrderRegression.)
    rt_.trace.push_back(model::TraceEvent::release(id(), obj));
  }
  rt_.backend->exit(core_, s);
  open_[--num_open_] = Section{};
}

void SimEnv::fence() {
  rt_.backend->fence(core_);
  if (rt_.validate) rt_.trace.push_back(model::TraceEvent::fence(id()));
}

void SimEnv::flush(ObjId obj) {
  Section* s = find(obj);
  PMC_CHECK_MSG(s != nullptr && s->exclusive,
                "flush is only allowed inside an entry_x/exit_x pair (§V-A)");
  if (s->dirty) publish_version(*s);
  rt_.backend->flush(core_, *s);
  s->dirty = false;  // later writes re-dirty for the exit writeback
}

void SimEnv::read(ObjId obj, uint32_t off, void* out, size_t n) {
  Section* s = find(obj);
  PMC_CHECK_MSG(s != nullptr, "core " << id() << " reads "
                                      << rt_.objs->desc(obj).name
                                      << " outside any entry/exit pair");
  PMC_CHECK_MSG(off + n <= s->desc->size, "read past end of " << s->desc->name);
  core_.read_block(s->data_addr + off, out, n, s->cls);
}

void SimEnv::write(ObjId obj, uint32_t off, const void* data, size_t n) {
  Section* s = find(obj);
  PMC_CHECK_MSG(s != nullptr && s->exclusive,
                "core " << id() << " writes " << rt_.objs->desc(obj).name
                        << " without exclusive access");
  PMC_CHECK_MSG(off + n <= s->desc->size,
                "write past end of " << s->desc->name);
  s->dirty = true;
  core_.write_block(s->data_addr + off, data, n, s->cls);
}

void SimEnv::finish() const {
  PMC_CHECK_MSG(num_open_ == 0, "core " << id() << " finished with "
                                        << num_open_ << " open section(s)");
}

}  // namespace pmc::rt
