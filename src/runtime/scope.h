// RAII scoping of entry/exit pairs (paper Fig. 10): "the entry call is
// implemented by the constructor and exit by the destructor", hiding the
// two-address problem of scratch-pad copies behind typed accessors.
#pragma once

#include "runtime/env.h"

namespace pmc::rt {

/// Read-only scope: entry_ro in the constructor, exit_ro in the destructor.
template <typename T>
class ScopeRO {
 public:
  ScopeRO(Env& env, ObjId obj) : env_(env), obj_(obj) { env_.entry_ro(obj_); }
  ~ScopeRO() { env_.exit_ro(obj_); }
  ScopeRO(const ScopeRO&) = delete;
  ScopeRO& operator=(const ScopeRO&) = delete;

  /// Reads the whole object (like Fig. 10's cast operator).
  T get() const { return env_.template ld<T>(obj_, 0); }
  /// Typed element access at a byte offset — routed through the back-end,
  /// so scratch-pad locality is what the simulator prices.
  template <typename U>
  U at(uint32_t byte_off) const {
    return env_.template ld<U>(obj_, byte_off);
  }

 private:
  Env& env_;
  ObjId obj_;
};

/// Exclusive scope: entry_x / exit_x, with write access and flush.
template <typename T>
class ScopeX {
 public:
  ScopeX(Env& env, ObjId obj) : env_(env), obj_(obj) { env_.entry_x(obj_); }
  ~ScopeX() { env_.exit_x(obj_); }
  ScopeX(const ScopeX&) = delete;
  ScopeX& operator=(const ScopeX&) = delete;

  T get() const { return env_.template ld<T>(obj_, 0); }
  void set(const T& v) { env_.st(obj_, 0, v); }
  ScopeX& operator=(const T& v) {  // Fig. 10 line 30: vector_s = ...
    set(v);
    return *this;
  }
  template <typename U>
  U at(uint32_t byte_off) const {
    return env_.template ld<U>(obj_, byte_off);
  }
  template <typename U>
  void put(uint32_t byte_off, const U& v) {
    env_.st(obj_, byte_off, v);
  }
  void flush() { env_.flush(obj_); }

 private:
  Env& env_;
  ObjId obj_;
};

}  // namespace pmc::rt
