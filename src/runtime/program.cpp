#include "runtime/program.h"

#include <thread>

#include "runtime/backends/registry.h"
#include "util/check.h"

namespace pmc::rt {

// The Target enum is "host-sc + the registry, shifted by one"; the sim
// helpers below convert by arithmetic, so keep the two in lockstep.
static_assert(static_cast<int>(Target::kNoCC) ==
              static_cast<int>(BackendKind::kNoCC) + 1);
static_assert(static_cast<int>(Target::kShL1) ==
              static_cast<int>(BackendKind::kShL1) + 1);

const char* to_string(Target t) {
  if (t == Target::kHostSC) return "host-sc";
  return to_string(backend_kind(t));
}

std::optional<Target> target_from_string(std::string_view name) {
  if (name == to_string(Target::kHostSC)) return Target::kHostSC;
  const std::optional<BackendKind> k = backend_from_string(name);
  if (!k) return std::nullopt;
  return static_cast<Target>(static_cast<int>(*k) + 1);
}

bool is_sim(Target t) { return t != Target::kHostSC; }

std::vector<Target> all_targets() {
  std::vector<Target> out{Target::kHostSC};
  for (const Target t : sim_targets()) out.push_back(t);
  return out;
}

std::vector<Target> sim_targets() {
  std::vector<Target> out;
  for (const BackendDescriptor& d : backend_registry()) {
    out.push_back(static_cast<Target>(static_cast<int>(d.kind) + 1));
  }
  return out;
}

BackendKind backend_kind(Target t) {
  PMC_CHECK_MSG(is_sim(t), "host target has no sim back-end");
  return static_cast<BackendKind>(static_cast<int>(t) - 1);
}

Program::Program(const ProgramOptions& opts) : opts_(opts) {
  PMC_CHECK(opts_.cores >= 1);
  if (!is_sim(opts_.target)) {
    host_ = std::make_unique<HostSpace>();
    return;
  }
  sim::MachineConfig mc = opts_.machine;
  if (mc.num_cores != opts_.cores) {
    // The caller's machine config was shaped for a different core count, so
    // re-derive the mesh rather than keep (or clamp to) a stale width —
    // `std::min(8, cores)` here used to build ragged meshes for any
    // non-multiple-of-8 count above 8. A config built for exactly
    // opts_.cores keeps its (validated) width, e.g. an explicit mesh_width
    // from a parsed MachineConfig::from_file description.
    mc.num_cores = opts_.cores;
    mc.mesh_width = sim::MachineConfig::derive_mesh_width(opts_.cores);
  }
  const BackendDescriptor& desc = descriptor(backend_kind(opts_.target));
  mc.cache_shared = desc.cache_shared;
  const std::string mc_err = check_machine(desc, mc);
  PMC_CHECK_MSG(mc_err.empty(), mc_err);
  machine_ = std::make_unique<sim::Machine>(mc);
  if (opts_.fiber_execution && sim::Scheduler::fibers_supported()) {
    machine_->enable_snapshots();
  }
  if (opts_.schedule_policy != nullptr) {
    machine_->set_schedule_policy(opts_.schedule_policy);
  }
  if (opts_.trace != nullptr) {
    machine_->set_trace_recorder(opts_.trace);
  }
  const uint32_t cap = static_cast<uint32_t>(opts_.lock_capacity);
  locks_ = std::make_unique<sync::DistLockManager>(
      *machine_, sim::kSdramBase, cap * 64, /*lm_offset=*/0, cap * 8);
  objs_ = std::make_unique<ObjectSpace>(*machine_, *locks_,
                                        opts_.lock_capacity,
                                        desc.uses_cluster);
  barrier_ = std::make_unique<sync::Barrier>(*machine_,
                                             objs_->barrier_count_word(),
                                             objs_->barrier_flag_offset());
  backend_ = make_backend(backend_kind(opts_.target), *objs_, opts_.faults,
                          opts_.policy);
  rt_.objs = objs_.get();
  rt_.backend = backend_.get();
  rt_.bar = barrier_.get();
  rt_.validate = opts_.validate;
}

Program::~Program() = default;

ObjId Program::create_object(uint32_t size, Placement placement,
                             std::string name, bool immutable) {
  PMC_CHECK_MSG(!ran_, "create_object after run");
  if (host_) return host_->create(size, std::move(name), immutable);
  return objs_->create(size, placement, std::move(name), immutable);
}

void Program::init_object(ObjId id, const void* data, size_t n) {
  PMC_CHECK_MSG(!ran_, "init_object after run");
  if (host_) {
    host_->init(id, data, n);
  } else {
    objs_->init(id, data, n);
  }
}

void Program::run(const std::function<void(Env&)>& body) {
  PMC_CHECK_MSG(!ran_, "a Program runs once");
  ran_ = true;
  if (host_) {
    std::barrier bar(opts_.cores);
    std::vector<std::thread> threads;
    std::exception_ptr error;
    std::mutex error_mu;
    for (int i = 0; i < opts_.cores; ++i) {
      threads.emplace_back([&, i] {
        HostEnv env(*host_, bar, i, opts_.cores);
        try {
          body(env);
          env.finish();
        } catch (...) {
          std::lock_guard<std::mutex> lk(error_mu);
          if (!error) error = std::current_exception();
          // Unblock peers stuck in the barrier.
          bar.arrive_and_drop();
          return;
        }
      });
    }
    for (auto& t : threads) t.join();
    if (error) std::rethrow_exception(error);
    return;
  }
  run_sim(body);
}

void Program::run_sim(const std::function<void(Env&)>& body) {
  objs_->freeze();
  // Held as a member: in snapshot mode restored fibers re-enter the body
  // after this frame (and the caller's `body`) are gone.
  body_ = body;
  if (machine_->snapshots_enabled()) {
    // All host-side mutable state coupled to the run joins the snapshot
    // contract now — storage is final once the layout is frozen, and the
    // root snapshot fires at the first scheduling decision inside run().
    objs_->register_state();
    locks_->register_state(*machine_);
    barrier_->register_state(*machine_);
    backend_->register_state(*machine_);
  }
  machine_->run([this](sim::Core& core) {
    SimEnv env(rt_, core);
    body_(env);
    env.finish();
  });
  revalidate();
}

void Program::revalidate() {
  if (!opts_.validate) return;
  validator_ = std::make_unique<model::TraceValidator>(
      opts_.cores, objs_->count(),
      std::vector<uint64_t>(static_cast<size_t>(objs_->count()), 0));
  validator_->on_events(rt_.trace);
}

void Program::enable_snapshots() {
  PMC_CHECK_MSG(machine_ != nullptr,
                "snapshot mode requires a simulated target");
  machine_->enable_snapshots();
}

void Program::set_checkpoint_hook(sim::CheckpointHook* hook) {
  PMC_CHECK(machine_ != nullptr);
  machine_->set_checkpoint_hook(hook);
}

void Program::set_schedule_policy(sim::SchedulePolicy* policy) {
  PMC_CHECK(machine_ != nullptr);
  machine_->set_schedule_policy(policy);
}

Program::Snapshot Program::snapshot() const {
  PMC_CHECK(machine_ != nullptr);
  Snapshot s;
  s.m = machine_->snapshot();
  s.trace = rt_.trace;
  return s;
}

void Program::restore(const Snapshot& s) {
  PMC_CHECK(machine_ != nullptr);
  machine_->restore(s.m);
  rt_.trace = s.trace;
}

void Program::resume() {
  PMC_CHECK(machine_ != nullptr);
  machine_->resume();
  revalidate();
}

void Program::read_object(ObjId id, void* out, size_t n) {
  PMC_CHECK_MSG(ran_, "read_object before run");
  if (host_) {
    host_->read_back(id, out, n);
  } else {
    backend_->read_final(id, out, n);
  }
}

sim::CoreStats Program::stats_sum() const {
  PMC_CHECK(machine_ != nullptr);
  return machine_->stats_sum();
}

void Program::require_valid() const {
  if (!is_sim(opts_.target)) return;
  PMC_CHECK_MSG(opts_.validate, "run was not validated");
  PMC_CHECK_MSG(validator_ != nullptr, "require_valid before run");
  PMC_CHECK_MSG(validator_->ok(),
                to_string(opts_.target)
                    << " back-end violated the memory model: "
                    << validator_->first_violation());
}

}  // namespace pmc::rt
