// Shared objects and their placement (paper Section V).
//
// Every shared object is cache-line aligned, never overlaps another object,
// and owns a lock ("a mutex that is related to the object", Table II).
// A hidden version word is appended behind the application payload: the
// runtime bumps it on every exit_x/flush *through the same data path as the
// payload*, so it travels with the object through every protocol (cache
// flush, DSM handoff, SPM copy) and staleness of data equals staleness of
// version. The trace validator checks read versions against Definition 12.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.h"
#include "sync/locks.h"

namespace pmc::rt {

using ObjId = int32_t;

enum class Placement : uint8_t {
  kSdram,       // master copy in SDRAM only (SWCC / no-CC / SPM)
  kReplicated,  // additionally one replica slot in every tile's local memory
                // at a common offset (required by the DSM back-end)
};

struct ObjDesc {
  ObjId id = -1;
  std::string name;
  uint32_t size = 0;          // application payload bytes
  uint32_t version_off = 0;   // offset of the hidden version word
  uint32_t alloc_bytes = 0;   // aligned total footprint
  Placement placement = Placement::kSdram;
  /// Immutable objects (no writer can ever exist — entry_x is rejected)
  /// skip the read-only lock of Table II: torn reads are impossible, and
  /// concurrent readers need not serialize.
  bool immutable = false;
  sim::Addr sdram_addr = 0;
  uint32_t lm_offset = 0;     // valid iff placement == kReplicated
  /// Fixed home slot in the interleaved cluster SRAM; 0 unless the
  /// ObjectSpace was built with use_cluster (the shl1 back-end).
  sim::Addr cluster_addr = 0;
  int lock = -1;
};

/// Allocates shared objects and carves up the per-tile local memories:
///   [0, sync_end)           lock grant/next words + barrier flag
///   [sync_end, replica_end) DSM replica slots (common offsets)
///   [replica_end, lm_size)  SPM scratch area
class ObjectSpace {
 public:
  /// lock_capacity bounds the number of objects (one lock each).
  /// use_cluster additionally gives every object a home slot in the cluster
  /// SRAM — only back-ends whose descriptor sets uses_cluster ask for it, so
  /// the (small) cluster is never charged for back-ends that ignore it.
  ObjectSpace(sim::Machine& m, sync::LockManager& locks, int lock_capacity,
              bool use_cluster = false);

  ObjId create(uint32_t size, Placement placement, std::string name = "",
               bool immutable = false);
  /// Seals the layout; must be called (once) before Machine::run.
  void freeze();
  bool frozen() const { return frozen_; }

  int count() const { return static_cast<int>(objs_.size()); }
  const ObjDesc& desc(ObjId id) const;
  sim::Machine& machine() { return m_; }
  sync::LockManager& locks() { return locks_; }

  /// Host-side initialization (before run): writes payload bytes to the
  /// SDRAM master and, for replicated objects, to every tile's replica.
  void init(ObjId id, const void* data, size_t n);

  /// Replica address of `id` in `tile`'s local memory.
  sim::Addr replica_addr(int tile, ObjId id) const;
  /// Barrier bookkeeping words.
  sim::Addr barrier_count_word() const { return barrier_word_; }
  uint32_t barrier_flag_offset() const { return barrier_flag_off_; }
  /// SPM scratch region within each tile's local memory.
  uint32_t spm_base() const;
  uint32_t spm_bytes() const;

  /// Monotonic per-object version counter (host side, single-runner safe).
  uint32_t next_version(ObjId id) { return ++versions_[id]; }

  /// Registers the host-side version counters with the machine's snapshot
  /// contract (DESIGN.md §10). Call after freeze() — the storage is final.
  void register_state() {
    if (!versions_.empty()) {
      m_.register_state(versions_.data(),
                        versions_.size() * sizeof(uint32_t));
    }
  }

 private:
  sim::Machine& m_;
  sync::LockManager& locks_;
  std::vector<ObjDesc> objs_;
  std::vector<uint32_t> versions_;
  sim::Addr sdram_cursor_;
  sim::Addr barrier_word_;
  uint32_t lm_sync_end_;
  uint32_t barrier_flag_off_;
  uint32_t lm_cursor_;  // replica allocation within local memories
  sim::Addr cluster_cursor_;
  bool use_cluster_;
  bool frozen_ = false;
};

}  // namespace pmc::rt
