// Back-end interface: the Table II mapping from annotations to platform
// actions. One implementation per column (plus the no-CC baseline of §VI-A).
//
// A Section is the per-core state of one open entry/exit pair. The back-end
// fills in where the object's bytes live for the duration of the section
// (data_addr / mem class); the Env routes all reads and writes through it.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/object.h"

namespace pmc::rt {

struct Section {
  ObjId obj = -1;
  const ObjDesc* desc = nullptr;
  bool exclusive = false;
  bool dirty = false;
  bool locked = false;         // entry_ro of a large object took the lock
  sim::Addr data_addr = 0;     // where reads/writes go during this section
  sim::MemClass cls = sim::MemClass::kSharedData;
};

class Backend {
 public:
  virtual ~Backend() = default;
  virtual const char* name() const = 0;
  /// DSM needs every shared object replicated in the local memories.
  virtual bool needs_replicas() const { return false; }

  /// entry_x / entry_ro (by s.exclusive): lock + data staging per Table II.
  /// Must set s.data_addr and s.cls.
  virtual void enter(sim::Core& core, Section& s) = 0;
  /// exit_x / exit_ro: write-back / flush / unlock per Table II.
  virtual void exit(sim::Core& core, Section& s) = 0;
  /// flush(X) inside an exclusive section: best-effort global visibility.
  virtual void flush(sim::Core& core, Section& s) = 0;
  /// The MicroBlaze is in-order, so fences emit nothing (Table II row 2);
  /// kept virtual for out-of-order core models.
  virtual void fence(sim::Core& core) { (void)core; }

  /// Host-side readback of an object's final payload after the run.
  virtual void read_final(ObjId id, void* out, size_t n) = 0;

  /// Registers the back-end's mutable host-side state (staging buffers,
  /// per-core cursors) with the machine's snapshot contract (DESIGN.md §10).
  /// Called after ObjectSpace::freeze and before the run, snapshot mode only.
  virtual void register_state(sim::Machine& m) { (void)m; }
};

/// One value per registered back-end. The registry
/// (runtime/backends/registry.h) is the single source of truth for names,
/// factories, machine requirements, and seeded faults; this enum only gives
/// them stable compact ids.
enum class BackendKind : uint8_t { kNoCC, kSWCC, kDSM, kSPM, kRegC, kShL1 };

/// The registered CLI name ("nocc", "swcc", ...). Throws util::CheckFailure
/// naming the registered back-ends for a kind outside the registry.
const char* to_string(BackendKind k);
/// Inverse of to_string (exact match against the registry), or std::nullopt
/// for anything else — CLIs report their own errors (via
/// backend_names() so the message can never drift from the registry).
std::optional<BackendKind> backend_from_string(std::string_view name);

/// Deliberate protocol bugs for failure-injection tests, as a named-fault
/// table: each back-end registers the fault names it implements
/// (BackendDescriptor::faults), a back-end only reads its own names, and
/// every seeded fault must be caught by the Definition 12 trace validator
/// or the model outcome oracle (tests/runtime/..., explore --seed-bug).
class FaultInjection {
 public:
  FaultInjection() = default;
  /// A single named fault; the name must be registered by some back-end.
  static FaultInjection one(std::string_view name) {
    FaultInjection f;
    f.enable(name);
    return f;
  }
  /// Enables a named fault. Unknown names are hard errors — a typo'd fault
  /// would silently test nothing.
  void enable(std::string_view name);
  bool enabled(std::string_view name) const;
  bool any() const { return !names_.empty(); }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
};

/// Legitimate implementation choices the paper discusses (§V-A):
/// exit_x may be lazy ("keeps all modifications to X local, until another
/// process does an acquire of X") or eager ("would do a flush(X) before
/// giving up the lock"). Only the DSM back-end distinguishes the two —
/// SWCC's exit writeback is inherently eager, and SPM must always copy back.
struct BackendPolicy {
  bool dsm_eager_release = false;
  /// Regional Consistency: how many consecutive object ids share one region
  /// (region = id / regc_objects_per_region). 1 keeps per-object locking.
  uint32_t regc_objects_per_region = 1;
};

/// Creates a back-end bound to `objs`. Checks that the machine configuration
/// matches (e.g. SWCC requires cache_shared, no-CC requires uncached).
std::unique_ptr<Backend> make_backend(BackendKind kind, ObjectSpace& objs);
std::unique_ptr<Backend> make_backend(BackendKind kind, ObjectSpace& objs,
                                      const FaultInjection& faults);
std::unique_ptr<Backend> make_backend(BackendKind kind, ObjectSpace& objs,
                                      const FaultInjection& faults,
                                      const BackendPolicy& policy);

}  // namespace pmc::rt
