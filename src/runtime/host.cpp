#include "runtime/host.h"

#include <atomic>
#include <cstring>

#include "util/check.h"

namespace pmc::rt {

ObjId HostSpace::create(uint32_t size, std::string name, bool immutable) {
  PMC_CHECK(size > 0);
  auto o = std::make_unique<HostObj>();
  o->name = name.empty() ? "obj" + std::to_string(objs_.size()) : std::move(name);
  o->size = size;
  o->immutable = immutable;
  o->words.assign((size + 3) / 4, 0);
  objs_.push_back(std::move(o));
  return static_cast<ObjId>(objs_.size() - 1);
}

HostSpace::HostObj& HostSpace::obj(ObjId id) {
  PMC_CHECK(id >= 0 && static_cast<size_t>(id) < objs_.size());
  return *objs_[id];
}

void HostSpace::init(ObjId id, const void* data, size_t n) {
  HostObj& o = obj(id);
  PMC_CHECK(n <= o.size);
  std::memcpy(o.bytes(), data, n);
}

void HostSpace::read_back(ObjId id, void* out, size_t n) {
  HostObj& o = obj(id);
  PMC_CHECK(n <= o.size);
  std::memcpy(out, o.bytes(), n);
}

HostEnv::Open* HostEnv::find(ObjId obj) {
  for (auto& s : open_) {
    if (s.obj == obj) return &s;
  }
  return nullptr;
}

void HostEnv::enter(ObjId obj, bool exclusive) {
  PMC_CHECK_MSG(find(obj) == nullptr, "double enter of object " << obj);
  auto& o = space_.obj(obj);
  PMC_CHECK_MSG(!(exclusive && o.immutable),
                o.name << " is immutable: entry_x is not allowed");
  bool locked = false;
  if (exclusive || (o.size > 4 && !o.immutable)) {
    o.mu.lock();
    locked = true;
  }
  open_.push_back({obj, exclusive, locked});
}

void HostEnv::exit(ObjId obj, bool exclusive) {
  PMC_CHECK_MSG(!open_.empty() && open_.back().obj == obj,
                "exit out of LIFO order for object " << obj);
  PMC_CHECK(open_.back().exclusive == exclusive);
  if (open_.back().locked) space_.obj(obj).mu.unlock();
  open_.pop_back();
}

void HostEnv::entry_x(ObjId obj) { enter(obj, true); }
void HostEnv::exit_x(ObjId obj) { exit(obj, true); }
void HostEnv::entry_ro(ObjId obj) { enter(obj, false); }
void HostEnv::exit_ro(ObjId obj) { exit(obj, false); }

void HostEnv::fence() { std::atomic_thread_fence(std::memory_order_seq_cst); }

void HostEnv::flush(ObjId obj) {
  Open* s = find(obj);
  PMC_CHECK_MSG(s != nullptr && s->exclusive,
                "flush outside an entry_x/exit_x pair");
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

void HostEnv::read(ObjId obj, uint32_t off, void* out, size_t n) {
  Open* s = find(obj);
  PMC_CHECK_MSG(s != nullptr, "read outside any entry/exit pair");
  auto& o = space_.obj(obj);
  PMC_CHECK(off + n <= o.size);
  if (s->locked || o.immutable) {
    std::memcpy(out, o.bytes() + off, n);
    return;
  }
  // Unlocked read-only access to a word-sized object: atomic, like the
  // platform's word-atomicity assumption.
  PMC_CHECK_MSG(off == 0 && (n == 4 || n == 1),
                "unlocked access must be one aligned word");
  if (n == 4) {
    const uint32_t v =
        std::atomic_ref<uint32_t>(o.words[0]).load(std::memory_order_seq_cst);
    std::memcpy(out, &v, 4);
  } else {
    const uint8_t v = std::atomic_ref<uint8_t>(*o.bytes())
                          .load(std::memory_order_seq_cst);
    std::memcpy(out, &v, 1);
  }
}

void HostEnv::write(ObjId obj, uint32_t off, const void* data, size_t n) {
  Open* s = find(obj);
  PMC_CHECK_MSG(s != nullptr && s->exclusive,
                "write without exclusive access");
  auto& o = space_.obj(obj);
  PMC_CHECK(off + n <= o.size);
  if (o.size <= 4 && off == 0 && n == o.size && (n == 4 || n == 1)) {
    // Word objects may be polled by unlocked readers: store atomically.
    if (n == 4) {
      uint32_t v;
      std::memcpy(&v, data, 4);
      std::atomic_ref<uint32_t>(o.words[0]).store(v,
                                                  std::memory_order_seq_cst);
    } else {
      uint8_t v;
      std::memcpy(&v, data, 1);
      std::atomic_ref<uint8_t>(*o.bytes()).store(v,
                                                 std::memory_order_seq_cst);
    }
    return;
  }
  std::memcpy(o.bytes() + off, data, n);
}

void HostEnv::finish() const {
  PMC_CHECK_MSG(open_.empty(),
                "thread " << id_ << " finished with open sections");
}

}  // namespace pmc::rt
