#include "runtime/object.h"

#include "util/check.h"

namespace pmc::rt {

namespace {
constexpr uint32_t kAlign = 64;  // ≥ cache line; objects never share lines
constexpr uint32_t kLockSdramStride = 64;
constexpr uint32_t kLockLmStride = 8;

uint32_t align_up(uint32_t v, uint32_t a) { return (v + a - 1) / a * a; }
}  // namespace

ObjectSpace::ObjectSpace(sim::Machine& m, sync::LockManager& locks,
                         int lock_capacity, bool use_cluster)
    : m_(m), locks_(locks), cluster_cursor_(sim::kClusterBase),
      use_cluster_(use_cluster) {
  PMC_CHECK(lock_capacity >= 1);
  PMC_CHECK_MSG(!use_cluster_ || m_.cluster() != nullptr,
                "cluster object slots need [cluster] bytes > 0");
  const uint32_t lock_area =
      static_cast<uint32_t>(lock_capacity) * kLockSdramStride;
  barrier_word_ = sim::kSdramBase + lock_area;
  sdram_cursor_ = barrier_word_ + kAlign;
  lm_sync_end_ = static_cast<uint32_t>(lock_capacity) * kLockLmStride;
  barrier_flag_off_ = lm_sync_end_;
  lm_cursor_ = align_up(lm_sync_end_ + 4, kAlign);
  PMC_CHECK_MSG(lm_cursor_ < m_.config().lm_bytes,
                "lock capacity exceeds local memory");
}

ObjId ObjectSpace::create(uint32_t size, Placement placement,
                          std::string name, bool immutable) {
  PMC_CHECK_MSG(!frozen_, "create() after freeze()");
  PMC_CHECK(size > 0);
  ObjDesc d;
  d.id = static_cast<ObjId>(objs_.size());
  d.name = name.empty() ? "obj" + std::to_string(d.id) : std::move(name);
  d.size = size;
  d.version_off = align_up(size, 4);
  d.alloc_bytes = align_up(d.version_off + 4, kAlign);
  d.placement = placement;
  d.immutable = immutable;
  d.lock = locks_.create();
  d.sdram_addr = sdram_cursor_;
  PMC_CHECK_MSG(m_.sdram().contains(sdram_cursor_, d.alloc_bytes),
                "SDRAM exhausted creating " << d.name);
  sdram_cursor_ += d.alloc_bytes;
  if (use_cluster_) {
    d.cluster_addr = cluster_cursor_;
    PMC_CHECK_MSG(m_.cluster()->contains(cluster_cursor_, d.alloc_bytes),
                  "cluster SRAM exhausted creating "
                      << d.name << " ([cluster] bytes is the budget)");
    cluster_cursor_ += d.alloc_bytes;
  }
  if (placement == Placement::kReplicated) {
    d.lm_offset = lm_cursor_;
    lm_cursor_ += d.alloc_bytes;
    PMC_CHECK_MSG(lm_cursor_ <= m_.config().lm_bytes,
                  "local memories exhausted creating " << d.name
                      << " (the paper hits the same wall with SPLASH-2 "
                         "on the DSM configuration)");
  }
  objs_.push_back(std::move(d));
  versions_.push_back(0);
  return objs_.back().id;
}

void ObjectSpace::freeze() {
  PMC_CHECK(!frozen_);
  frozen_ = true;
  PMC_CHECK_MSG(spm_base() + kAlign <= m_.config().lm_bytes,
                "no scratch-pad space left after replicas");
}

const ObjDesc& ObjectSpace::desc(ObjId id) const {
  PMC_CHECK(id >= 0 && static_cast<size_t>(id) < objs_.size());
  return objs_[id];
}

void ObjectSpace::init(ObjId id, const void* data, size_t n) {
  const ObjDesc& d = desc(id);
  PMC_CHECK(n <= d.size);
  m_.poke(d.sdram_addr, data, n);
  if (use_cluster_) {
    m_.poke(d.cluster_addr, data, n);
  }
  if (d.placement == Placement::kReplicated) {
    for (int t = 0; t < m_.num_cores(); ++t) {
      m_.poke(replica_addr(t, id), data, n);
    }
  }
}

sim::Addr ObjectSpace::replica_addr(int tile, ObjId id) const {
  const ObjDesc& d = desc(id);
  PMC_CHECK_MSG(d.placement == Placement::kReplicated,
                d.name << " has no local-memory replicas");
  return m_.lm_base(tile) + d.lm_offset;
}

uint32_t ObjectSpace::spm_base() const { return align_up(lm_cursor_, kAlign); }

uint32_t ObjectSpace::spm_bytes() const {
  return m_.config().lm_bytes - spm_base();
}

}  // namespace pmc::rt
