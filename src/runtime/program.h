// Program: the top-level assembly a PMC application runs in.
//
// Owns the machine (for simulated targets), the distributed locks, the
// object space, the barrier, the back-end, and — when validation is on —
// the recorded trace and its Definition 12 check. The same Program API
// drives the host target plus every registered back-end, so "porting to
// hardware with another memory model becomes just a compiler setting" is
// here literally one enum.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "model/trace.h"
#include "runtime/backend.h"
#include "runtime/env.h"
#include "runtime/host.h"
#include "runtime/sim_env.h"

namespace pmc::rt {

/// kHostSC plus one entry per registered back-end, in registry order
/// (Target value = BackendKind value + 1; static_asserted in program.cpp).
enum class Target : uint8_t { kHostSC, kNoCC, kSWCC, kDSM, kSPM, kRegC,
                              kShL1 };

const char* to_string(Target t);
/// Inverse of to_string ("host-sc" or any registered back-end name), or
/// std::nullopt for anything else. Simulated names go through
/// backend_from_string so the two stay in lockstep.
std::optional<Target> target_from_string(std::string_view name);
bool is_sim(Target t);
/// Host target plus every registered back-end, for parameterized suites.
std::vector<Target> all_targets();
std::vector<Target> sim_targets();
/// The back-end a simulated target runs (throws for kHostSC).
BackendKind backend_kind(Target t);

struct ProgramOptions {
  Target target = Target::kSWCC;
  int cores = 4;
  /// Base machine configuration for simulated targets; num_cores and
  /// cache_shared are overridden to match `cores` and `target`.
  sim::MachineConfig machine = sim::MachineConfig::ml605(4);
  /// Record a model trace and validate it after run() (sim targets only).
  bool validate = true;
  /// Maximum number of shared objects (= locks).
  int lock_capacity = 2048;
  /// Deliberate protocol bugs (failure-injection tests).
  FaultInjection faults;
  /// Implementation choices (lazy vs eager release, §V-A).
  BackendPolicy policy;
  /// Scheduling-decision override for schedule exploration (sim targets
  /// only; not owned, must outlive run()). nullptr keeps the default
  /// bit-deterministic min-time schedule.
  sim::SchedulePolicy* schedule_policy = nullptr;
  /// Cycle-accurate event recorder (sim targets only; not owned, must
  /// outlive run()). nullptr leaves tracing detached — the zero-overhead
  /// default. See src/obs/trace.h and DESIGN.md §11.
  obs::TraceRecorder* trace = nullptr;
  /// Run cores as fibers on one host thread (when supported) instead of one
  /// host thread per core. Identical schedules and results; at hundreds of
  /// cores the handoffs are ~100× cheaper, which is what makes the scaled
  /// bench configs (bench/configs/*.cfg) tractable. Ignored off-sim.
  bool fiber_execution = false;
};

class Program {
 public:
  explicit Program(const ProgramOptions& opts);
  ~Program();
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;

  Target target() const { return opts_.target; }
  int cores() const { return opts_.cores; }

  ObjId create_object(uint32_t size, Placement placement = Placement::kSdram,
                      std::string name = "", bool immutable = false);
  /// Immutable shared data (no writers, readers never lock or serialize).
  ObjId create_const_object(uint32_t size,
                            Placement placement = Placement::kSdram,
                            std::string name = "") {
    return create_object(size, placement, std::move(name), true);
  }
  void init_object(ObjId id, const void* data, size_t n);
  template <typename T>
  ObjId create_typed(const T& initial, Placement placement = Placement::kSdram,
                     std::string name = "") {
    const ObjId id = create_object(sizeof(T), placement, std::move(name));
    init_object(id, &initial, sizeof(T));
    return id;
  }

  /// Runs body(env) on every core/thread.
  void run(const std::function<void(Env&)>& body);

  // -- Stateful exploration (snapshot engine, DESIGN.md §10) -----------------

  /// Switches the machine to checkpointable (fiber) execution. Must precede
  /// start(); sim targets only, requires sim::Scheduler::fibers_supported().
  void enable_snapshots();
  /// Checkpoint callback, forwarded to the scheduler.
  void set_checkpoint_hook(sim::CheckpointHook* hook);
  /// Swaps the scheduling policy between restore()/resume() cycles.
  void set_schedule_policy(sim::SchedulePolicy* policy);

  /// Deep copy of one mid-run (or completed) program state: the whole
  /// machine plus the runtime-held model trace.
  struct Snapshot {
    sim::Machine::Snapshot m;
    std::vector<model::TraceEvent> trace;
  };
  Snapshot snapshot() const;
  void restore(const Snapshot& s);
  /// Continues a restored machine to completion (rethrows the body's
  /// exception like run()), then revalidates the trace.
  void resume();

  /// Reads an object's final payload after run().
  void read_object(ObjId id, void* out, size_t n);
  template <typename T>
  T result(ObjId id) {
    T v;
    read_object(id, &v, sizeof v);
    return v;
  }

  /// nullptr for the host target.
  sim::Machine* machine() { return machine_.get(); }
  sim::CoreStats stats_sum() const;
  /// nullptr unless a validated sim run completed.
  const model::TraceValidator* validator() const { return validator_.get(); }
  /// The recorded model trace (empty unless a validated sim run completed).
  const std::vector<model::TraceEvent>& trace() const { return rt_.trace; }
  /// Throws CheckFailure describing the first Definition 12 violation.
  void require_valid() const;

 private:
  ProgramOptions opts_;
  // Simulated targets:
  std::unique_ptr<sim::Machine> machine_;
  std::unique_ptr<sync::DistLockManager> locks_;
  std::unique_ptr<ObjectSpace> objs_;
  std::unique_ptr<sync::Barrier> barrier_;
  std::unique_ptr<Backend> backend_;
  SimRuntime rt_;
  std::unique_ptr<model::TraceValidator> validator_;
  // Host target:
  std::unique_ptr<HostSpace> host_;
  std::function<void(Env&)> body_;  // persists for restored-fiber re-entry
  bool ran_ = false;

  void run_sim(const std::function<void(Env&)>& body);
  void revalidate();
};

}  // namespace pmc::rt
