// Env implementation over the simulated SoC.
#pragma once

#include <array>
#include <vector>

#include "model/trace.h"
#include "runtime/backend.h"
#include "runtime/env.h"
#include "sync/barrier.h"

namespace pmc::rt {

/// Shared, single-runner-safe state of one simulated program run.
struct SimRuntime {
  ObjectSpace* objs = nullptr;
  Backend* backend = nullptr;
  sync::Barrier* bar = nullptr;
  /// When set, every annotation maintains the hidden object version and
  /// records a model::TraceEvent; the Program validates the stream against
  /// Definition 12 after the run. Adds version-word traffic, so Fig. 8
  /// timing runs keep it off.
  bool validate = false;
  std::vector<model::TraceEvent> trace;
};

class SimEnv final : public Env {
 public:
  /// Deepest open-section nesting one core may hold. A fixed bound, not a
  /// growable stack: SimEnv lives on a (possibly fiber) stack, and a
  /// heap-owning member would break Machine::restore's stack-byte copy
  /// (DESIGN.md §10). Workload bodies that mirror the open-section stack in
  /// their own locals can size them with this same bound.
  static constexpr int kMaxOpen = 8;

  SimEnv(SimRuntime& rt, sim::Core& core) : rt_(rt), core_(core) {}

  int id() const override { return core_.id(); }
  int num_procs() const override { return core_.num_cores(); }

  void entry_x(ObjId obj) override { enter(obj, /*exclusive=*/true); }
  void exit_x(ObjId obj) override { exit(obj, /*exclusive=*/true); }
  void entry_ro(ObjId obj) override { enter(obj, /*exclusive=*/false); }
  void exit_ro(ObjId obj) override { exit(obj, /*exclusive=*/false); }
  void fence() override;
  void flush(ObjId obj) override;

  void read(ObjId obj, uint32_t off, void* out, size_t n) override;
  void write(ObjId obj, uint32_t off, const void* data, size_t n) override;

  void compute(uint64_t instructions) override { core_.compute(instructions); }
  void barrier() override { rt_.bar->wait(core_); }

  /// End-of-run discipline check: every section closed.
  void finish() const;

  sim::Core& core() { return core_; }

 private:
  void enter(ObjId obj, bool exclusive);
  void exit(ObjId obj, bool exclusive);
  Section* find(ObjId obj);
  /// Bumps the hidden version through the section's data path and records
  /// the Write event (validation mode only; no-op otherwise).
  void publish_version(Section& s);

  SimRuntime& rt_;
  sim::Core& core_;
  /// LIFO stack of open sections (see kMaxOpen for why it is a fixed inline
  /// array; Section itself is trivially copyable).
  std::array<Section, kMaxOpen> open_{};
  int num_open_ = 0;
};

}  // namespace pmc::rt
