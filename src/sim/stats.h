// Per-core event and stall counters (the paper's micro-architectural event
// measurement support, §V-B), aggregated for the Fig. 8 breakdown.
#pragma once

#include <cstdint>

namespace pmc::sim {

struct CoreStats {
  // Time decomposition: cycles_total == busy + sum of stalls + idle.
  uint64_t cycles_total = 0;
  uint64_t busy = 0;               // executing instructions ("utilization")
  uint64_t stall_ifetch = 0;       // instruction cache misses
  uint64_t stall_private_read = 0; // private data cache misses
  uint64_t stall_shared_read = 0;  // shared data reads (miss or uncached)
  uint64_t stall_sync_read = 0;    // lock/barrier word reads
  uint64_t stall_write = 0;        // store buffer / posted write drain
  uint64_t stall_flush = 0;        // cache maintenance (flush overhead row)
  uint64_t idle = 0;               // explicit sleep/backoff

  // Event counts.
  uint64_t instructions = 0;
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t dcache_hits = 0;
  uint64_t dcache_misses = 0;
  uint64_t writebacks = 0;
  uint64_t lines_flushed = 0;
  uint64_t remote_writes = 0;
  uint64_t noc_bytes_sent = 0;
  uint64_t atomics = 0;

  uint64_t stall_total() const {
    return stall_ifetch + stall_private_read + stall_shared_read +
           stall_sync_read + stall_write + stall_flush;
  }

  CoreStats& operator+=(const CoreStats& o) {
    cycles_total += o.cycles_total;
    busy += o.busy;
    stall_ifetch += o.stall_ifetch;
    stall_private_read += o.stall_private_read;
    stall_shared_read += o.stall_shared_read;
    stall_sync_read += o.stall_sync_read;
    stall_write += o.stall_write;
    stall_flush += o.stall_flush;
    idle += o.idle;
    instructions += o.instructions;
    loads += o.loads;
    stores += o.stores;
    dcache_hits += o.dcache_hits;
    dcache_misses += o.dcache_misses;
    writebacks += o.writebacks;
    lines_flushed += o.lines_flushed;
    remote_writes += o.remote_writes;
    noc_bytes_sent += o.noc_bytes_sent;
    atomics += o.atomics;
    return *this;
  }
};

}  // namespace pmc::sim
