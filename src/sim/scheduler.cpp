#include "sim/scheduler.h"

#include <algorithm>
#include <thread>

#include "util/check.h"

namespace pmc::sim {

Scheduler::Scheduler(int num_cores, uint64_t max_cycles)
    : max_cycles_(max_cycles) {
  PMC_CHECK(num_cores >= 1);
  slots_.resize(static_cast<size_t>(num_cores));
}

int Scheduler::pick_next_locked() const {
  int best = -1;
  for (int i = 0; i < num_cores(); ++i) {
    if (slots_[i].done) continue;
    if (best == -1 || slots_[i].time < slots_[best].time) best = i;
  }
  return best;
}

int Scheduler::consult_policy_locked(int yielding) {
  std::vector<ScheduleCandidate> cands;
  cands.reserve(slots_.size());
  for (int i = 0; i < num_cores(); ++i) {
    if (!slots_[i].done) cands.push_back({i, slots_[i].time});
  }
  if (cands.empty()) return -1;
  std::sort(cands.begin(), cands.end(),
            [](const ScheduleCandidate& a, const ScheduleCandidate& b) {
              return a.time != b.time ? a.time < b.time : a.core < b.core;
            });
  YieldPoint yp;
  yp.step = step_++;
  yp.yielding = yielding;
  if (yielding >= 0) {
    yp.observable = slots_[yielding].observable;
    slots_[yielding].observable = false;
    yp.footprint = std::move(slots_[yielding].fp);
    slots_[yielding].fp.clear();
  }
  const int choice = policy_->pick(yp, cands);
  PMC_CHECK_MSG(choice >= 0 && choice < static_cast<int>(cands.size()),
                "schedule policy returned candidate index "
                    << choice << " of " << cands.size() << " at step "
                    << yp.step);
  Slot& chosen = slots_[cands[static_cast<size_t>(choice)].core];
  // Bypassed cores were effectively stalled: the dispatched core may never
  // start a segment before the frontier, or its memory events could carry
  // timestamps older than reads that already executed.
  chosen.time = std::max(chosen.time, frontier_);
  frontier_ = chosen.time;
  return cands[static_cast<size_t>(choice)].core;
}

void Scheduler::advance(int core, uint64_t delta) {
  std::unique_lock<std::mutex> lk(mu_);
  PMC_CHECK_MSG(current_ == core, "advance() from a core that is not running");
  Slot& me = slots_[core];
  me.time += delta;
  PMC_CHECK_MSG(me.time < max_cycles_,
                "simulation watchdog: core " << core << " passed "
                    << max_cycles_ << " cycles (deadlock?)");
  const int next =
      policy_ != nullptr ? consult_policy_locked(core) : pick_next_locked();
  if (next == core || next == -1) return;
  current_ = next;
  slots_[next].cv.notify_one();
  me.cv.wait(lk, [&] { return current_ == core; });
}

void Scheduler::thread_main(int core, const std::function<void(int)>& body) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    slots_[core].cv.wait(lk, [&] { return current_ == core; });
  }
  try {
    body(core);
  } catch (...) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!error_) error_ = std::current_exception();
  }
  std::lock_guard<std::mutex> lk(mu_);
  slots_[core].done = true;
  const int next =
      policy_ != nullptr ? consult_policy_locked(core) : pick_next_locked();
  if (next != -1) {
    current_ = next;
    slots_[next].cv.notify_one();
  }
}

void Scheduler::run(const std::function<void(int)>& body) {
  for (auto& s : slots_) {
    s.time = 0;
    s.done = false;
    s.observable = false;
    s.fp.clear();
  }
  error_ = nullptr;
  step_ = 0;
  frontier_ = 0;
  // Lowest id runs first among the all-zero clocks — unless a policy
  // overrides this very first decision too.
  current_ = 0;
  if (policy_ != nullptr) {
    std::lock_guard<std::mutex> lk(mu_);
    current_ = consult_policy_locked(/*yielding=*/-1);
    PMC_CHECK(current_ != -1);
  }
  std::vector<std::thread> threads;
  threads.reserve(slots_.size());
  for (int i = 0; i < num_cores(); ++i) {
    threads.emplace_back([this, i, &body] { thread_main(i, body); });
  }
  // Threads self-schedule: the chosen core sees current_ == id and starts.
  for (auto& t : threads) t.join();
  if (error_) std::rethrow_exception(error_);
}

}  // namespace pmc::sim
