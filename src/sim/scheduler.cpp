#include "sim/scheduler.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "util/check.h"

// Fiber mode needs working swapcontext. Thread/AddressSanitizer instrument
// stack switches poorly (false positives and shadow-stack corruption), so
// both builds fall back to thread mode and stateless exploration.
#if defined(__linux__)
#define PMC_FIBERS_AVAILABLE 1
#endif
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#undef PMC_FIBERS_AVAILABLE
#endif
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#undef PMC_FIBERS_AVAILABLE
#endif
#endif

namespace pmc::sim {

namespace {

/// 256 KiB per core: simulated bodies are shallow (app kernel -> runtime ->
/// machine -> scheduler), but validator/backend frames plus libc leave
/// headroom. Snapshots copy only the used slice, so the size is cheap.
constexpr size_t kFiberStackBytes = 256 * 1024;

/// x86_64 System V leaks up to 128 bytes of live data below the stack
/// pointer (the red zone); the saved slice starts below it.
constexpr size_t kStackSliceMargin = 128;

/// A fiber's first entry has no argument channel (makecontext varargs casts
/// trip -Wcast-function-type), so the entry trampoline finds its scheduler
/// here. Safe across concurrent Machines: every fiber of a scheduler runs on
/// the host thread that called run()/resume().
thread_local Scheduler* tl_fiber_sched = nullptr;

/// Stack pointer of a saved context, for used-slice snapshotting; 0 means
/// unknown (whole stack is copied instead).
uintptr_t saved_sp(const FiberContext& ctx) {
#if defined(PMC_FIBERS_AVAILABLE) && defined(__x86_64__)
  return static_cast<uintptr_t>(ctx.uc_mcontext.gregs[REG_RSP]);
#elif defined(PMC_FIBERS_AVAILABLE) && defined(__aarch64__)
  return static_cast<uintptr_t>(ctx.uc_mcontext.sp);
#else
  (void)ctx;
  return 0;
#endif
}

}  // namespace

Scheduler::Scheduler(int num_cores, uint64_t max_cycles)
    : max_cycles_(max_cycles) {
  PMC_CHECK(num_cores >= 1);
  slots_.resize(static_cast<size_t>(num_cores));
}

bool Scheduler::fibers_supported() {
#if defined(PMC_FIBERS_AVAILABLE)
  return true;
#else
  return false;
#endif
}

void Scheduler::set_fiber_mode(bool on) {
  PMC_CHECK_MSG(!on || fibers_supported(),
                "fiber mode is unsupported on this platform/build");
  fiber_mode_ = on;
}

void Scheduler::trace_switch(int from, int to, bool from_done) {
  obs::TraceEvent e;
  if (from >= 0) {
    e.kind = obs::EventKind::kPark;
    e.core = static_cast<int16_t>(from);
    e.aux = from_done ? 1 : 0;
    e.t0 = e.t1 = slots_[from].time;
    trace_->record(e);
  }
  if (to >= 0 && to != from) {
    e.kind = obs::EventKind::kDispatch;
    e.core = static_cast<int16_t>(to);
    e.aux = 0;
    e.t0 = e.t1 = slots_[to].time;
    trace_->record(e);
  }
}

int Scheduler::pick_next_locked() const {
  int best = -1;
  for (int i = 0; i < num_cores(); ++i) {
    if (slots_[i].done) continue;
    if (best == -1 || slots_[i].time < slots_[best].time) best = i;
  }
  return best;
}

int Scheduler::consult_policy_locked(int yielding) {
  std::vector<ScheduleCandidate> cands;
  cands.reserve(slots_.size());
  for (int i = 0; i < num_cores(); ++i) {
    if (!slots_[i].done) cands.push_back({i, slots_[i].time});
  }
  if (cands.empty()) return -1;
  std::sort(cands.begin(), cands.end(),
            [](const ScheduleCandidate& a, const ScheduleCandidate& b) {
              return a.time != b.time ? a.time < b.time : a.core < b.core;
            });
  YieldPoint yp;
  yp.step = step_++;
  yp.yielding = yielding;
  if (yielding >= 0) {
    yp.observable = slots_[yielding].observable;
    slots_[yielding].observable = false;
    yp.footprint = std::move(slots_[yielding].fp);
    slots_[yielding].fp.clear();
  }
  const int choice = policy_->pick(yp, cands);
  PMC_CHECK_MSG(choice >= 0 && choice < static_cast<int>(cands.size()),
                "schedule policy returned candidate index "
                    << choice << " of " << cands.size() << " at step "
                    << yp.step);
  const int chosen_core = cands[static_cast<size_t>(choice)].core;
  Slot& chosen = slots_[chosen_core];
  // Bypassed cores were effectively stalled: the dispatched core may never
  // start a segment before the frontier, or its memory events could carry
  // timestamps older than reads that already executed. Warped cycles reach
  // now() without a machine charge, so they are tallied per slot and folded
  // into CoreStats::idle at run end (see warped()).
  if (frontier_ > chosen.time) {
    chosen.warped += frontier_ - chosen.time;
    if (tracing()) {
      obs::TraceEvent e;
      e.kind = obs::EventKind::kWarp;
      e.core = static_cast<int16_t>(chosen_core);
      e.t0 = chosen.time;
      e.t1 = frontier_;
      trace_->record(e);
    }
    chosen.time = frontier_;
  }
  frontier_ = chosen.time;
  return chosen_core;
}

void Scheduler::advance(int core, uint64_t delta) {
  if (fiber_mode_) {
    advance_fiber(core, delta);
    return;
  }
  std::unique_lock<std::mutex> lk(mu_);
  PMC_CHECK_MSG(current_ == core, "advance() from a core that is not running");
  Slot& me = slots_[core];
  me.time += delta;
  PMC_CHECK_MSG(me.time < max_cycles_,
                "simulation watchdog: core " << core << " passed "
                    << max_cycles_ << " cycles (deadlock?)");
  const int next =
      policy_ != nullptr ? consult_policy_locked(core) : pick_next_locked();
  if (next == core || next == -1) return;
  if (tracing()) trace_switch(core, next, /*from_done=*/false);
  current_ = next;
  slots_[next].cv.notify_one();
  me.cv.wait(lk, [&] { return current_ == core; });
}

void Scheduler::thread_main(int core, const std::function<void(int)>& body) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    slots_[core].cv.wait(lk, [&] { return current_ == core; });
  }
  try {
    body(core);
  } catch (...) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!error_) error_ = std::current_exception();
  }
  std::lock_guard<std::mutex> lk(mu_);
  slots_[core].done = true;
  const int next =
      policy_ != nullptr ? consult_policy_locked(core) : pick_next_locked();
  if (tracing()) trace_switch(core, next, /*from_done=*/true);
  if (next != -1) {
    current_ = next;
    slots_[next].cv.notify_one();
  }
}

void Scheduler::run(const std::function<void(int)>& body) {
  if (fiber_mode_) {
    body_ = body;
    run_fibers();
    return;
  }
  for (auto& s : slots_) {
    s.time = 0;
    s.warped = 0;
    s.done = false;
    s.observable = false;
    s.fp.clear();
  }
  error_ = nullptr;
  step_ = 0;
  frontier_ = 0;
  // Lowest id runs first among the all-zero clocks — unless a policy
  // overrides this very first decision too.
  current_ = 0;
  if (policy_ != nullptr) {
    std::lock_guard<std::mutex> lk(mu_);
    current_ = consult_policy_locked(/*yielding=*/-1);
    PMC_CHECK(current_ != -1);
  }
  if (tracing()) trace_switch(-1, current_, false);
  std::vector<std::thread> threads;
  threads.reserve(slots_.size());
  for (int i = 0; i < num_cores(); ++i) {
    threads.emplace_back([this, i, &body] { thread_main(i, body); });
  }
  // Threads self-schedule: the chosen core sees current_ == id and starts.
  for (auto& t : threads) t.join();
  if (error_) std::rethrow_exception(error_);
}

// ---------------------------------------------------------------------------
// Fiber mode (DESIGN.md §10)
// ---------------------------------------------------------------------------

bool Scheduler::all_done() const {
  for (const Slot& s : slots_) {
    if (!s.done) return false;
  }
  return true;
}

void Scheduler::fiber_entry() {
  Scheduler* sched = tl_fiber_sched;
  // A fiber is only ever entered when it is the current core, so its own id
  // is exactly current_ at first dispatch.
  sched->fiber_main(sched->current_);
}

void Scheduler::init_fibers() {
#if defined(PMC_FIBERS_AVAILABLE)
  if (fibers_.empty()) {
    fibers_.resize(slots_.size());
    for (Fiber& f : fibers_) {
      f.stack = std::make_unique<uint8_t[]>(kFiberStackBytes);
    }
  }
  for (Fiber& f : fibers_) {
    PMC_CHECK(getcontext(&f.ctx) == 0);
    f.ctx.uc_stack.ss_sp = f.stack.get();
    f.ctx.uc_stack.ss_size = kFiberStackBytes;
    f.ctx.uc_link = nullptr;  // fibers exit by explicit handoff, never return
    makecontext(&f.ctx, &Scheduler::fiber_entry, 0);
  }
#endif
}

void Scheduler::maybe_checkpoint_yield(int core) {
#if defined(PMC_FIBERS_AVAILABLE)
  if (hook_ == nullptr) return;
  int runnable = 0;
  for (const Slot& s : slots_) runnable += s.done ? 0 : 1;
  if (!hook_->wants_checkpoint(step_, runnable)) return;
  resume_core_ = core;
  swapcontext(&fibers_[static_cast<size_t>(core)].ctx, &main_ctx_);
  // Restored snapshots re-enter here — after the wants_checkpoint() test —
  // so the checkpoint that produced them is never re-offered.
  resume_core_ = -1;
#else
  (void)core;
#endif
}

void Scheduler::advance_fiber(int core, uint64_t delta) {
#if defined(PMC_FIBERS_AVAILABLE)
  PMC_CHECK_MSG(current_ == core, "advance() from a core that is not running");
  Slot& me = slots_[core];
  me.time += delta;
  PMC_CHECK_MSG(me.time < max_cycles_,
                "simulation watchdog: core " << core << " passed "
                    << max_cycles_ << " cycles (deadlock?)");
  maybe_checkpoint_yield(core);
  const int next =
      policy_ != nullptr ? consult_policy_locked(core) : pick_next_locked();
  if (next == core || next == -1) return;
  if (tracing()) trace_switch(core, next, /*from_done=*/false);
  current_ = next;
  swapcontext(&fibers_[static_cast<size_t>(core)].ctx,
              &fibers_[static_cast<size_t>(next)].ctx);
#else
  (void)core;
  (void)delta;
#endif
}

void Scheduler::fiber_main(int core) {
#if defined(PMC_FIBERS_AVAILABLE)
  try {
    body_(core);
  } catch (...) {
    if (!error_) error_ = std::current_exception();
  }
  slots_[core].done = true;
  // A core's completion is a decision point exactly as in thread mode; it is
  // also a checkpointable one (children of an explored schedule may branch
  // here). Unlike thread mode the consult is guarded: a policy throw must
  // not escape a fiber with no frame to unwind into.
  maybe_checkpoint_yield(core);
  int next = -1;
  if (policy_ != nullptr) {
    try {
      next = consult_policy_locked(core);
    } catch (...) {
      if (!error_) error_ = std::current_exception();
      next = pick_next_locked();
    }
  } else {
    next = pick_next_locked();
  }
  if (tracing()) trace_switch(core, next, /*from_done=*/true);
  if (next == -1) {
    swapcontext(&fibers_[static_cast<size_t>(core)].ctx, &main_ctx_);
  } else {
    current_ = next;
    swapcontext(&fibers_[static_cast<size_t>(core)].ctx,
                &fibers_[static_cast<size_t>(next)].ctx);
  }
  // Unreachable: a done fiber is never re-dispatched, and restore()
  // overwrites its context wholesale.
#else
  (void)core;
#endif
}

void Scheduler::drive() {
#if defined(PMC_FIBERS_AVAILABLE)
  for (;;) {
    swapcontext(&main_ctx_, &fibers_[static_cast<size_t>(current_)].ctx);
    if (all_done()) break;
    // A live fiber parked for a checkpoint: snapshot on this (main) context,
    // then hand control straight back to it.
    hook_->on_checkpoint(step_);
  }
  if (error_) std::rethrow_exception(error_);
#endif
}

void Scheduler::run_fibers() {
#if defined(PMC_FIBERS_AVAILABLE)
  for (auto& s : slots_) {
    s.time = 0;
    s.warped = 0;
    s.done = false;
    s.observable = false;
    s.fp.clear();
  }
  error_ = nullptr;
  step_ = 0;
  frontier_ = 0;
  resume_core_ = -1;
  init_fibers();
  tl_fiber_sched = this;
  // The pre-dispatch checkpoint (the root of a stateful search) runs on the
  // main context directly; there is no fiber to park yet.
  if (hook_ != nullptr && hook_->wants_checkpoint(0, num_cores())) {
    hook_->on_checkpoint(0);
  }
  current_ = 0;
  if (policy_ != nullptr) {
    current_ = consult_policy_locked(/*yielding=*/-1);
    PMC_CHECK(current_ != -1);
  }
  if (tracing()) trace_switch(-1, current_, false);
  drive();
#else
  PMC_CHECK_MSG(false, "fiber mode is unsupported on this platform/build");
#endif
}

void Scheduler::resume() {
#if defined(PMC_FIBERS_AVAILABLE)
  PMC_CHECK_MSG(fiber_mode_ && !fibers_.empty(),
                "resume() needs a prior fiber-mode run()");
  tl_fiber_sched = this;
  if (resume_core_ == -1) {
    // Pre-dispatch snapshot: redo the initial consult (the hook is not
    // re-offered — the restored pool already holds this checkpoint). The
    // restored recorder predates the original initial-dispatch event, so
    // re-recording it here reproduces the original buffer exactly.
    current_ = 0;
    if (policy_ != nullptr) {
      current_ = consult_policy_locked(/*yielding=*/-1);
      PMC_CHECK(current_ != -1);
    }
    if (tracing()) trace_switch(-1, current_, false);
  }
  drive();
#else
  PMC_CHECK_MSG(false, "fiber mode is unsupported on this platform/build");
#endif
}

Scheduler::Snapshot Scheduler::snapshot() const {
  PMC_CHECK_MSG(fiber_mode_ && !fibers_.empty(),
                "snapshot() needs a fiber-mode run");
  Snapshot s;
  s.slots.reserve(slots_.size());
  for (const Slot& sl : slots_) {
    s.slots.push_back({sl.time, sl.warped, sl.done, sl.observable, sl.fp});
  }
  s.step = step_;
  s.frontier = frontier_;
  s.current = current_;
  s.resume_core = resume_core_;
  s.error = error_;
  s.fibers.reserve(fibers_.size());
  for (const Fiber& f : fibers_) {
    Snapshot::FiberImage img;
    img.ctx = f.ctx;
    const uintptr_t base = reinterpret_cast<uintptr_t>(f.stack.get());
    const uintptr_t top = base + kFiberStackBytes;
    uintptr_t sp = saved_sp(f.ctx);
    if (sp <= base + kStackSliceMargin || sp > top) {
      sp = base;  // unknown/degenerate SP: keep the whole stack (always safe)
    } else {
      sp -= kStackSliceMargin;
    }
    img.stack_off = static_cast<size_t>(sp - base);
    img.stack.assign(f.stack.get() + img.stack_off,
                     f.stack.get() + kFiberStackBytes);
    s.fibers.push_back(std::move(img));
  }
  return s;
}

void Scheduler::restore(const Snapshot& s) {
  PMC_CHECK_MSG(fiber_mode_ && !fibers_.empty() &&
                    s.slots.size() == slots_.size() &&
                    s.fibers.size() == fibers_.size(),
                "snapshot does not fit this scheduler");
  for (size_t i = 0; i < slots_.size(); ++i) {
    Slot& sl = slots_[i];
    sl.time = s.slots[i].time;
    sl.warped = s.slots[i].warped;
    sl.done = s.slots[i].done;
    sl.observable = s.slots[i].observable;
    sl.fp = s.slots[i].fp;
  }
  step_ = s.step;
  frontier_ = s.frontier;
  current_ = s.current;
  resume_core_ = s.resume_core;
  error_ = s.error;
  for (size_t i = 0; i < fibers_.size(); ++i) {
    Fiber& f = fibers_[i];
    // Same-object restore keeps the glibc uc_mcontext.fpregs self-pointer
    // (into this very ucontext_t) and the uc_stack base valid.
    f.ctx = s.fibers[i].ctx;
    std::memcpy(f.stack.get() + s.fibers[i].stack_off, s.fibers[i].stack.data(),
                s.fibers[i].stack.size());
  }
}

}  // namespace pmc::sim
