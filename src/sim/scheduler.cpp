#include "sim/scheduler.h"

#include <thread>
#include <vector>

#include "util/check.h"

namespace pmc::sim {

Scheduler::Scheduler(int num_cores, uint64_t max_cycles)
    : max_cycles_(max_cycles) {
  PMC_CHECK(num_cores >= 1);
  slots_.resize(static_cast<size_t>(num_cores));
}

int Scheduler::pick_next_locked() const {
  int best = -1;
  for (int i = 0; i < num_cores(); ++i) {
    if (slots_[i].done) continue;
    if (best == -1 || slots_[i].time < slots_[best].time) best = i;
  }
  return best;
}

void Scheduler::advance(int core, uint64_t delta) {
  std::unique_lock<std::mutex> lk(mu_);
  PMC_CHECK_MSG(current_ == core, "advance() from a core that is not running");
  Slot& me = slots_[core];
  me.time += delta;
  PMC_CHECK_MSG(me.time < max_cycles_,
                "simulation watchdog: core " << core << " passed "
                    << max_cycles_ << " cycles (deadlock?)");
  const int next = pick_next_locked();
  if (next == core || next == -1) return;
  current_ = next;
  slots_[next].cv.notify_one();
  me.cv.wait(lk, [&] { return current_ == core; });
}

void Scheduler::thread_main(int core, const std::function<void(int)>& body) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    slots_[core].cv.wait(lk, [&] { return current_ == core; });
  }
  try {
    body(core);
  } catch (...) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!error_) error_ = std::current_exception();
  }
  std::lock_guard<std::mutex> lk(mu_);
  slots_[core].done = true;
  const int next = pick_next_locked();
  if (next != -1) {
    current_ = next;
    slots_[next].cv.notify_one();
  }
}

void Scheduler::run(const std::function<void(int)>& body) {
  for (auto& s : slots_) {
    s.time = 0;
    s.done = false;
  }
  error_ = nullptr;
  // Lowest id runs first among the all-zero clocks.
  current_ = 0;
  std::vector<std::thread> threads;
  threads.reserve(slots_.size());
  for (int i = 0; i < num_cores(); ++i) {
    threads.emplace_back([this, i, &body] { thread_main(i, body); });
  }
  // Threads self-schedule: core 0 sees current_ == 0 and starts.
  for (auto& t : threads) t.join();
  if (error_) std::rethrow_exception(error_);
}

}  // namespace pmc::sim
