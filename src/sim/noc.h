// Write-only network-on-chip (paper Fig. 7).
//
// Tiles are arranged in a mesh; a packet from tile s to tile d takes
// base + per_hop·manhattan(s,d) cycles of head latency plus per-word
// serialization, and the destination's write port serializes incoming
// packets. Per (source, destination) channel ordering is FIFO — the paper's
// "no interconnect reorders operations of one processor" — but packets from
// one source to *different* destinations may complete out of order, which
// is exactly the Fig. 1 failure mode.
//
// Two pricing models share that contract (DESIGN.md §12): the flat model
// charges the formula above with no cross-channel coupling, while the mesh
// model routes the packet X-then-Y and arbitrates every directed link on the
// way, with finite per-hop buffering feeding stalls back upstream — the
// contention a real fabric has, visible only at scaled core counts.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "sim/mem_module.h"
#include "sim/timing.h"

namespace pmc::sim {

/// How the NoC prices a packet's traversal (DESIGN.md §12).
enum class NocModel : uint8_t {
  kFlat,  ///< hop-count head latency, per-channel FIFO only (the original)
  kMesh,  ///< per-directed-link X-Y arbitration with finite hop buffers
};

class Noc {
 public:
  Noc(int num_tiles, int mesh_width, const TimingConfig& timing,
      NocModel model = NocModel::kFlat, uint32_t buffer_words = 4);

  int num_tiles() const { return num_tiles_; }
  NocModel model() const { return model_; }
  uint32_t hops(int from, int to) const;

  /// Per-packet contention breakdown, reported to the caller so it can be
  /// traced (kNocQueue) and attributed. Always zero under the flat model's
  /// uncontended link path; port_wait can be nonzero under either model.
  struct Delivery {
    uint64_t arrival = 0;
    uint64_t link_stall = 0;  ///< cycles the head waited for busy links
    uint64_t port_wait = 0;   ///< cycles queued at the destination port
  };

  /// Computes the arrival time of an n-byte write from tile `src` entering
  /// the NoC at `now`, destined for `dst_mod` (the local memory of tile
  /// `dst`). Maintains per-channel FIFO order and destination port
  /// occupancy. The caller posts the payload at the returned arrival time.
  uint64_t deliver(uint64_t now, int src, int dst, MemModule& dst_mod,
                   size_t bytes, Delivery* info = nullptr);

  uint64_t packets_sent() const { return packets_; }
  uint64_t bytes_sent() const { return bytes_; }
  /// Mesh-model contention counters (always zero under kFlat).
  uint64_t link_stall_cycles() const { return link_stall_cycles_; }
  uint64_t stalled_packets() const { return stalled_packets_; }
  const obs::Histogram& link_stall_hist() const { return link_stall_hist_; }

  /// Deep copy of interconnect state. The clock maps are stored sparsely —
  /// (index, value) for every channel/link some packet ever used — so a
  /// snapshot costs O(traffic), not O(tiles²): the dense per-channel map
  /// alone is 512 KiB at 256 tiles, times the snapshot engine's LRU pool.
  struct Snapshot {
    std::vector<std::pair<uint32_t, uint64_t>> channels;  // touched (src,dst)
    std::vector<std::pair<uint32_t, uint64_t>> links;     // touched links
    uint64_t packets = 0;
    uint64_t bytes = 0;
    uint64_t link_stall_cycles = 0;
    uint64_t stalled_packets = 0;
    obs::Histogram link_stall_hist;
  };
  Snapshot snapshot() const;
  /// Restores from *any* later state: channels/links touched since the
  /// snapshot (even on another explored branch) reset to cold first, then
  /// the saved clocks apply — the MemModule dirty-page pattern.
  void restore(const Snapshot& s);

 private:
  int index(int src, int dst) const { return src * num_tiles_ + dst; }
  /// Clock accessors funnel every mutation through the touched lists so
  /// snapshots know which entries moved.
  uint64_t& channel_clock(int idx);
  uint64_t& link_clock(int idx);
  /// Next tile on the X-then-Y route (deterministic, minimal).
  int next_hop(int from, int to) const;
  /// Directed link `from`→`to` for adjacent tiles: 4 outgoing per tile.
  int link_index(int from, int to) const;

  int num_tiles_;
  int mesh_width_;
  TimingConfig timing_;
  NocModel model_;
  uint32_t buffer_words_;

  // Dense live clocks plus touched-entry lists (snapshot sparsity).
  std::vector<uint64_t> channel_last_arrival_;  // per (src, dst)
  std::vector<uint8_t> channel_touched_;
  std::vector<uint32_t> channel_touched_list_;
  std::vector<uint64_t> link_free_;  // per directed link: busy-until clock
  std::vector<uint8_t> link_touched_;
  std::vector<uint32_t> link_touched_list_;

  uint64_t packets_ = 0;
  uint64_t bytes_ = 0;
  uint64_t link_stall_cycles_ = 0;
  uint64_t stalled_packets_ = 0;
  obs::Histogram link_stall_hist_;  // per-packet link stall (mesh model)
};

}  // namespace pmc::sim
