// Write-only network-on-chip (paper Fig. 7).
//
// Tiles are arranged in a mesh; a packet from tile s to tile d takes
// base + per_hop·manhattan(s,d) cycles of head latency plus per-word
// serialization, and the destination's write port serializes incoming
// packets. Per (source, destination) channel ordering is FIFO — the paper's
// "no interconnect reorders operations of one processor" — but packets from
// one source to *different* destinations may complete out of order, which
// is exactly the Fig. 1 failure mode.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/mem_module.h"
#include "sim/timing.h"

namespace pmc::sim {

class Noc {
 public:
  Noc(int num_tiles, int mesh_width, const TimingConfig& timing);

  int num_tiles() const { return num_tiles_; }
  uint32_t hops(int from, int to) const;

  /// Computes the arrival time of an n-byte write from tile `src` entering
  /// the NoC at `now`, destined for `dst_mod` (the local memory of tile
  /// `dst`). Maintains per-channel FIFO order and destination port
  /// occupancy. The caller posts the payload at the returned arrival time.
  uint64_t deliver(uint64_t now, int src, int dst, MemModule& dst_mod,
                   size_t bytes);

  uint64_t packets_sent() const { return packets_; }
  uint64_t bytes_sent() const { return bytes_; }

  /// Deep copy of interconnect state: per-channel FIFO clocks + counters.
  struct Snapshot {
    std::vector<uint64_t> channel_last_arrival;
    uint64_t packets = 0;
    uint64_t bytes = 0;
  };
  Snapshot snapshot() const { return {channel_last_arrival_, packets_, bytes_}; }
  void restore(const Snapshot& s) {
    channel_last_arrival_ = s.channel_last_arrival;
    packets_ = s.packets;
    bytes_ = s.bytes;
  }

 private:
  int index(int src, int dst) const { return src * num_tiles_ + dst; }

  int num_tiles_;
  int mesh_width_;
  TimingConfig timing_;
  std::vector<uint64_t> channel_last_arrival_;  // per (src, dst)
  uint64_t packets_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace pmc::sim
