#include "sim/cache.h"

#include <cstring>

#include "util/check.h"

namespace pmc::sim {

namespace {
bool is_pow2(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  PMC_CHECK(is_pow2(cfg_.line_bytes) && cfg_.line_bytes >= 4);
  PMC_CHECK(cfg_.ways >= 1);
  PMC_CHECK(cfg_.size_bytes % (cfg_.line_bytes * cfg_.ways) == 0);
  num_sets_ = cfg_.size_bytes / (cfg_.line_bytes * cfg_.ways);
  PMC_CHECK(is_pow2(num_sets_));
  lines_.resize(static_cast<size_t>(num_sets_) * cfg_.ways);
  data_.resize(static_cast<size_t>(num_sets_) * cfg_.ways * cfg_.line_bytes);
}

uint32_t Cache::set_of(Addr line_addr) const {
  return (line_addr / cfg_.line_bytes) & (num_sets_ - 1);
}

Cache::Line* Cache::find(Addr line_addr) {
  const uint32_t set = set_of(line_addr);
  for (uint32_t w = 0; w < cfg_.ways; ++w) {
    Line& l = lines_[static_cast<size_t>(set) * cfg_.ways + w];
    if (l.valid && l.tag == line_addr) return &l;
  }
  return nullptr;
}

const Cache::Line* Cache::find(Addr line_addr) const {
  return const_cast<Cache*>(this)->find(line_addr);
}

uint8_t* Cache::data_of(const Line* l) {
  const size_t idx = static_cast<size_t>(l - lines_.data());
  return data_.data() + idx * cfg_.line_bytes;
}

uint8_t* Cache::lookup(Addr line_addr) {
  Line* l = find(line_addr);
  if (!l) return nullptr;
  l->lru = ++tick_;
  return data_of(l);
}

const uint8_t* Cache::peek(Addr line_addr) const {
  const Line* l = find(line_addr);
  return l ? const_cast<Cache*>(this)->data_of(l) : nullptr;
}

bool Cache::dirty(Addr line_addr) const {
  const Line* l = find(line_addr);
  return l != nullptr && l->is_dirty;
}

void Cache::mark_dirty(Addr line_addr) {
  Line* l = find(line_addr);
  PMC_CHECK_MSG(l != nullptr, "mark_dirty on absent line");
  l->is_dirty = true;
}

uint8_t* Cache::install(Addr line_addr, Victim* victim) {
  PMC_CHECK(line_addr % cfg_.line_bytes == 0);
  PMC_CHECK_MSG(find(line_addr) == nullptr, "install of present line");
  const uint32_t set = set_of(line_addr);
  Line* best = nullptr;
  for (uint32_t w = 0; w < cfg_.ways; ++w) {
    Line& l = lines_[static_cast<size_t>(set) * cfg_.ways + w];
    if (!l.valid) {
      best = &l;
      break;
    }
    if (!best || l.lru < best->lru) best = &l;
  }
  if (best->valid && best->is_dirty) {
    victim->dirty = true;
    victim->addr = best->tag;
    victim->data.assign(data_of(best), data_of(best) + cfg_.line_bytes);
  }
  best->tag = line_addr;
  best->valid = true;
  best->is_dirty = false;
  best->lru = ++tick_;
  ever_used_ = true;
  return data_of(best);
}

bool Cache::wbinval_line(Addr line_addr, std::vector<uint8_t>* dirty_out) {
  Line* l = find(line_addr);
  if (!l) return false;
  if (l->is_dirty) {
    dirty_out->assign(data_of(l), data_of(l) + cfg_.line_bytes);
  } else {
    dirty_out->clear();
  }
  l->valid = false;
  l->is_dirty = false;
  return true;
}

bool Cache::inval_line(Addr line_addr) {
  Line* l = find(line_addr);
  if (!l) return false;
  l->valid = false;
  l->is_dirty = false;  // dirty data is lost — deliberately
  return true;
}

size_t Cache::valid_lines() const {
  size_t n = 0;
  for (const Line& l : lines_) n += l.valid;
  return n;
}

size_t Cache::dirty_lines() const {
  size_t n = 0;
  for (const Line& l : lines_) n += l.valid && l.is_dirty;
  return n;
}

Cache::Snapshot Cache::snapshot() const {
  Snapshot s;
  s.tick = tick_;
  for (size_t i = 0; i < lines_.size(); ++i) {
    const Line& l = lines_[i];
    if (!l.valid) continue;
    s.line_idx.push_back(static_cast<uint32_t>(i));
    s.lines.push_back({l.tag, l.is_dirty, l.lru});
    const uint8_t* d = data_.data() + i * cfg_.line_bytes;
    s.bytes.insert(s.bytes.end(), d, d + cfg_.line_bytes);
  }
  return s;
}

void Cache::restore(const Snapshot& s) {
  tick_ = s.tick;
  for (Line& l : lines_) {
    l.valid = false;
    l.is_dirty = false;
  }
  for (size_t i = 0; i < s.line_idx.size(); ++i) {
    Line& l = lines_[s.line_idx[i]];
    l.tag = s.lines[i].tag;
    l.valid = true;
    l.is_dirty = s.lines[i].is_dirty;
    l.lru = s.lines[i].lru;
    std::memcpy(data_.data() + static_cast<size_t>(s.line_idx[i]) *
                                   cfg_.line_bytes,
                s.bytes.data() + i * cfg_.line_bytes, cfg_.line_bytes);
  }
}

}  // namespace pmc::sim
