// Deterministic many-core scheduler.
//
// Each simulated core runs application code natively on its own host thread,
// but exactly one core executes at any moment: the one with the smallest
// (local_time, core_id). Every simulator call advances the caller's local
// clock and is a potential handoff point. Consequences:
//
//  * all memory-system events are generated in nondecreasing global time
//    order, so pending-write queues may be drained lazily at read time;
//  * the simulation is bit-deterministic — scheduling depends only on
//    simulated clocks, never on host thread timing;
//  * no locks are needed around machine state (single runner), and the
//    mutex/condvar handoff provides the host-level happens-before.
//
// A SchedulePolicy (DESIGN.md §6) may override the pick at every decision
// point. To keep the simulation timing-consistent when a non-minimal core is
// chosen, the dispatched core's clock is warped forward to the scheduler
// frontier (the latest dispatch time so far): a bypassed core behaves as if
// it had been stalled by an external interrupt, and no core ever generates a
// memory event with a timestamp older than an event already executed. Under
// the default min-time pick the warp is provably a no-op, so installing no
// policy (or one that always returns 0) preserves today's bit-deterministic
// behavior exactly.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#if defined(__linux__)
#include <ucontext.h>
#endif

#include "obs/trace.h"
#include "sim/footprint.h"

namespace pmc::sim {

#if defined(__linux__)
using FiberContext = ::ucontext_t;
#else
struct FiberContext {};  // fiber mode unsupported off Linux; never entered
#endif

/// One runnable core at a decision point.
struct ScheduleCandidate {
  int core = -1;
  uint64_t time = 0;
};

/// Context of one scheduling decision.
struct YieldPoint {
  /// Global decision index, starting at 0 with the initial dispatch.
  /// Deterministic across runs of the same program, which makes it the
  /// coordinate system of replayable decision strings (src/explore/).
  uint64_t step = 0;
  /// Core whose advance (or completion) triggered this decision; -1 for the
  /// initial dispatch before any core ran.
  int yielding = -1;
  /// True when the yielding core touched the memory system (load, store,
  /// atomic, NoC, DMA, cache maintenance) since its previous yield. False
  /// means the segment that just ended was pure delay (compute/idle), which
  /// schedule explorers use to prune equivalent interleavings.
  bool observable = false;
  /// Shared-memory footprint of the segment that just ended (empty for the
  /// initial dispatch and for pure-delay segments). Schedule explorers use
  /// footprint commutativity for happens-before partial-order reduction
  /// (DESIGN.md §8). Populated only when the policy opts in via
  /// SchedulePolicy::wants_footprints(); then `observable ==
  /// !footprint.empty()` by construction.
  Footprint footprint;
};

/// Overrides the scheduler's pick at each decision point. pick() is called
/// with the scheduler lock held and must not call back into the Scheduler;
/// `cands` is sorted by (time, core_id), so index 0 is the min-time default.
/// Returning 0 everywhere reproduces the default schedule bit-for-bit.
class SchedulePolicy {
 public:
  virtual ~SchedulePolicy() = default;
  virtual int pick(const YieldPoint& yp,
                   const std::vector<ScheduleCandidate>& cands) = 0;
  /// Opt-in to per-segment footprint accumulation (YieldPoint::footprint).
  /// Off by default: recording costs heap traffic on every memory access,
  /// and only partial-order-reduction consumers read it (DESIGN.md §8).
  virtual bool wants_footprints() const { return false; }
};

/// Checkpoint callback for fiber-mode runs (DESIGN.md §10). Before each
/// scheduling decision the scheduler asks wants_checkpoint(); when it returns
/// true the running fiber parks and on_checkpoint() runs on the host (main)
/// context, where Machine::snapshot() is safe to call — no simulated core is
/// mid-call on its own stack frame below the yield. Both callbacks must not
/// mutate simulator state, or byte-equality with checkpoint-free runs breaks.
class CheckpointHook {
 public:
  virtual ~CheckpointHook() = default;
  /// Called on the running fiber just before decision `step` (cheap).
  virtual bool wants_checkpoint(uint64_t step, int runnable_cores) = 0;
  /// Called on the main context; `step` is the decision about to be taken.
  virtual void on_checkpoint(uint64_t step) = 0;
};

class Scheduler {
 public:
  /// max_cycles: watchdog — a core advancing past this throws (deadlocked
  /// polls in buggy programs would otherwise spin forever).
  explicit Scheduler(int num_cores, uint64_t max_cycles = UINT64_C(1) << 40);

  int num_cores() const { return static_cast<int>(slots_.size()); }

  /// Installs a decision-point override (nullptr restores the default
  /// min-time pick). Must be called before run(); not owned.
  void set_policy(SchedulePolicy* policy) {
    policy_ = policy;
    record_fp_ = policy != nullptr && policy->wants_footprints();
  }

  /// Attaches an event recorder (nullptr detaches; not owned). Dispatch,
  /// park, and frontier-warp events are recorded while armed (DESIGN.md
  /// §11). Detached costs one predictable branch per handoff; events carry
  /// simulated time only, so identical schedules record identical events.
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }
  obs::TraceRecorder* trace() const { return trace_; }

  /// Cycles `core`'s clock was warped forward by dispatches past the
  /// frontier (zero under the default min-time pick). Warped time reaches
  /// `now()` without passing through any machine charge, so the stats layer
  /// folds it into CoreStats::idle at run end to keep the §V-B
  /// time-decomposition identity exact.
  uint64_t warped(int core) const { return slots_[core].warped; }

  /// Runs body(core_id) on one host thread per core under min-time
  /// scheduling; returns when all cores finish. Rethrows the first exception
  /// any core raised. In fiber mode (set_fiber_mode) every core is a ucontext
  /// fiber on the calling thread instead, with identical decision semantics.
  void run(const std::function<void(int)>& body);

  /// True when this build/platform can run cores as ucontext fibers (Linux,
  /// no Thread/AddressSanitizer — swapcontext confuses both). Callers fall
  /// back to thread mode (and stateless exploration) when false.
  static bool fibers_supported();

  /// Selects fiber execution for subsequent run()s. Required for snapshot /
  /// restore / resume; must be set before the first run().
  void set_fiber_mode(bool on);
  bool fiber_mode() const { return fiber_mode_; }

  /// Installs the checkpoint callback (nullptr disables). Fiber mode only;
  /// not owned. May be swapped between run()/resume() calls.
  void set_checkpoint_hook(CheckpointHook* hook) { hook_ = hook; }

  /// Deep copy of all scheduler-owned mutable state, including each fiber's
  /// machine context and the used slice of its stack. Restorable only into
  /// the *same* Scheduler (fiber stacks and the glibc ucontext FPU-state
  /// self-pointer are address-dependent). Callable from
  /// CheckpointHook::on_checkpoint, i.e. from the main context.
  struct Snapshot {
    struct SlotState {
      uint64_t time = 0;
      uint64_t warped = 0;
      bool done = false;
      bool observable = false;
      Footprint fp;
    };
    struct FiberImage {
      FiberContext ctx{};
      size_t stack_off = 0;        // offset of the saved slice in the stack
      std::vector<uint8_t> stack;  // [stack_off, stack_off + stack.size())
    };
    std::vector<SlotState> slots;
    std::vector<FiberImage> fibers;
    uint64_t step = 0;
    uint64_t frontier = 0;
    int current = 0;
    int resume_core = -1;  // fiber parked at the checkpoint; -1 = pre-dispatch
    std::exception_ptr error;
  };
  Snapshot snapshot() const;
  void restore(const Snapshot& s);

  /// Continues a restored run to completion (fiber mode only): re-enters the
  /// checkpointed fiber — or redoes the initial dispatch for a pre-dispatch
  /// snapshot — and drives until every core is done. Rethrows like run().
  /// The checkpoint that produced the snapshot is not re-offered to the hook.
  void resume();

  /// Local clock of `core`. Only meaningful from that core's own thread.
  uint64_t now(int core) const { return slots_[core].time; }

  /// Marks that `core` performed (or is mid-way through) a memory-system
  /// effect on `[addr, addr+len)` since its last advance (cheap no-op
  /// without a policy). `sync` tags lock/barrier words. Called by the
  /// machine layer from the running core's own thread; accumulated into the
  /// current segment's footprint and reported at the next yield.
  void note_access(int core, uint64_t addr, uint32_t len, AccessKind kind,
                   bool sync = false) {
    if (policy_ != nullptr) {
      slots_[core].observable = true;
      if (record_fp_) slots_[core].fp.add(addr, len, kind, sync);
    }
  }

  /// Escape hatch for effects with no addressable range: the segment stays
  /// observable and its footprint conflicts with everything (never enables
  /// pruning). No machine path uses it today — every current effect has a
  /// range and calls note_access — but new shared-state paths that cannot
  /// name one must call this rather than stay invisible to exploration.
  void note_effect(int core) {
    if (policy_ != nullptr) {
      slots_[core].observable = true;
      if (record_fp_) slots_[core].fp.add_wildcard();
    }
  }

  /// Number of scheduling decisions taken so far (policy runs only).
  uint64_t decisions() const { return step_; }

  /// Advances the calling core's clock and yields if it is no longer the
  /// minimum. Must only be called by the currently running core.
  void advance(int core, uint64_t delta);

  /// True once run() completed and some core threw.
  bool failed() const { return error_ != nullptr; }

 private:
  struct Slot {
    uint64_t time = 0;
    uint64_t warped = 0;      // cumulative frontier-warp cycles (see warped())
    bool done = false;
    bool observable = false;  // effect since last yield (policy runs only)
    Footprint fp;             // footprint since last yield (policy runs only)
    std::condition_variable cv;
  };

  struct Fiber {
    FiberContext ctx{};
    std::unique_ptr<uint8_t[]> stack;
  };

  /// True when dispatch/park/warp events should be recorded.
  bool tracing() const { return trace_ != nullptr && trace_->armed(); }
  /// Records the `from` → `to` handoff (to == -1: park only; aux flags a
  /// finished core). Caller checks tracing().
  void trace_switch(int from, int to, bool from_done);

  int pick_next_locked() const;
  /// Consults the policy, warps the chosen core's clock to the frontier and
  /// advances the frontier; returns the chosen core or -1 when all done.
  /// (In fiber mode there is no lock — one host thread runs everything.)
  int consult_policy_locked(int yielding);
  void thread_main(int core, const std::function<void(int)>& body);

  // Fiber-mode internals. Control flow mirrors thread mode exactly: the
  // decision is consulted *on* the yielding fiber and handoffs are direct
  // fiber-to-fiber swaps; the main context is entered only for checkpoints
  // and at run end, so checkpointing cannot perturb decision order.
  void run_fibers();
  void init_fibers();
  void drive();
  void advance_fiber(int core, uint64_t delta);
  void maybe_checkpoint_yield(int core);
  void fiber_main(int core);
  bool all_done() const;
  static void fiber_entry();  // makecontext target; dispatches via a TLS ptr

  mutable std::mutex mu_;
  std::deque<Slot> slots_;
  int current_ = 0;
  uint64_t max_cycles_;
  std::exception_ptr error_;
  SchedulePolicy* policy_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;  // not owned; nullptr = detached
  bool record_fp_ = false;  // policy_->wants_footprints(), cached
  uint64_t step_ = 0;      // decision counter (policy runs only)
  uint64_t frontier_ = 0;  // latest dispatch time (policy runs only)

  bool fiber_mode_ = false;
  std::vector<Fiber> fibers_;  // allocated on the first fiber-mode run()
  FiberContext main_ctx_{};
  CheckpointHook* hook_ = nullptr;
  int resume_core_ = -1;  // fiber parked at the live checkpoint, -1 otherwise
  std::function<void(int)> body_;  // persists across restore()/resume()
};

}  // namespace pmc::sim
