// Deterministic many-core scheduler.
//
// Each simulated core runs application code natively on its own host thread,
// but exactly one core executes at any moment: the one with the smallest
// (local_time, core_id). Every simulator call advances the caller's local
// clock and is a potential handoff point. Consequences:
//
//  * all memory-system events are generated in nondecreasing global time
//    order, so pending-write queues may be drained lazily at read time;
//  * the simulation is bit-deterministic — scheduling depends only on
//    simulated clocks, never on host thread timing;
//  * no locks are needed around machine state (single runner), and the
//    mutex/condvar handoff provides the host-level happens-before.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>

namespace pmc::sim {

class Scheduler {
 public:
  /// max_cycles: watchdog — a core advancing past this throws (deadlocked
  /// polls in buggy programs would otherwise spin forever).
  explicit Scheduler(int num_cores, uint64_t max_cycles = UINT64_C(1) << 40);

  int num_cores() const { return static_cast<int>(slots_.size()); }

  /// Runs body(core_id) on one host thread per core under min-time
  /// scheduling; returns when all cores finish. Rethrows the first exception
  /// any core raised.
  void run(const std::function<void(int)>& body);

  /// Local clock of `core`. Only meaningful from that core's own thread.
  uint64_t now(int core) const { return slots_[core].time; }

  /// Advances the calling core's clock and yields if it is no longer the
  /// minimum. Must only be called by the currently running core.
  void advance(int core, uint64_t delta);

  /// True once run() completed and some core threw.
  bool failed() const { return error_ != nullptr; }

 private:
  struct Slot {
    uint64_t time = 0;
    bool done = false;
    std::condition_variable cv;
  };

  int pick_next_locked() const;
  void thread_main(int core, const std::function<void(int)>& body);

  mutable std::mutex mu_;
  std::deque<Slot> slots_;
  int current_ = 0;
  uint64_t max_cycles_;
  std::exception_ptr error_;
};

}  // namespace pmc::sim
