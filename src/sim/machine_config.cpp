// INI-style machine-description parser (DESIGN.md §12): machine shape is
// data, not code. A description has sections [machine] [cache] [timing]
// [noc] [workload]; every key defaults to the ml605 preset (or the preset
// named by the leading `preset =` key), so a file only states what differs.
// Unknown sections/keys and malformed values are hard errors naming the
// origin and 1-based line — a silently-ignored typo in a 256-core sweep
// config would invalidate the whole experiment.
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/machine.h"
#include "util/check.h"

namespace pmc::sim {

namespace {

#define PMC_CFG_FAIL(msg) \
  PMC_CHECK_MSG(false, origin << ":" << line_no << ": " << msg)

std::string trim(const std::string& s) {
  const size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Unsigned integer with an optional k/K (KiB) or m/M (MiB) suffix.
uint64_t parse_u64(const std::string& v, const std::string& key,
                   const std::string& origin, int line_no) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long raw = std::strtoull(v.c_str(), &end, 0);
  uint64_t scale = 1;
  if (end != v.c_str() && *end != '\0') {
    if (*end == 'k' || *end == 'K') {
      scale = 1024;
      ++end;
    } else if (*end == 'm' || *end == 'M') {
      scale = 1024 * 1024;
      ++end;
    }
  }
  if (end == v.c_str() || *end != '\0' || errno == ERANGE ||
      v.find('-') != std::string::npos) {
    PMC_CFG_FAIL("bad value '" << v << "' for " << key
                               << " (expected an unsigned integer, optional "
                                  "k/m suffix)");
  }
  return static_cast<uint64_t>(raw) * scale;
}

bool parse_bool(const std::string& v, const std::string& key,
                const std::string& origin, int line_no) {
  if (v == "true" || v == "on" || v == "1") return true;
  if (v == "false" || v == "off" || v == "0") return false;
  PMC_CFG_FAIL("bad value '" << v << "' for " << key
                             << " (expected true/false/on/off/1/0)");
  return false;
}

}  // namespace

MachineConfig MachineConfig::from_string(const std::string& text,
                                         const std::string& origin) {
  MachineConfig cfg = ml605();
  std::string section;
  bool mesh_width_set = false;
  bool any_key = false;
  int line_no = 0;

  std::istringstream in(text);
  std::string raw;
  while (std::getline(in, raw)) {
    ++line_no;
    // Comments run from '#' or ';' to end of line.
    const size_t cut = raw.find_first_of("#;");
    std::string line = trim(cut == std::string::npos ? raw : raw.substr(0, cut));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') PMC_CFG_FAIL("unterminated section header");
      section = trim(line.substr(1, line.size() - 2));
      if (section != "machine" && section != "cache" && section != "timing" &&
          section != "noc" && section != "workload" && section != "cluster") {
        PMC_CFG_FAIL("unknown section [" << section << "]");
      }
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      PMC_CFG_FAIL("expected 'key = value', got '" << line << "'");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string val = trim(line.substr(eq + 1));
    if (key.empty() || val.empty()) {
      PMC_CFG_FAIL("expected 'key = value', got '" << line << "'");
    }
    if (section.empty()) {
      PMC_CFG_FAIL("key '" << key
                           << "' before any section header (start with "
                              "[machine], [cache], [timing], [noc], "
                              "[cluster], or [workload])");
    }
    const auto u64 = [&] { return parse_u64(val, key, origin, line_no); };
    const auto u32 = [&] { return static_cast<uint32_t>(u64()); };
    const auto onoff = [&] { return parse_bool(val, key, origin, line_no); };
    bool known = true;
    if (section == "machine") {
      if (key == "preset") {
        if (any_key) {
          PMC_CFG_FAIL("preset must be the first setting (it replaces every "
                       "default)");
        }
        if (val == "ml605") {
          cfg = ml605();
        } else if (val == "fig1_twomem") {
          cfg = fig1_twomem();
        } else {
          PMC_CFG_FAIL("unknown preset '" << val
                                          << "' (ml605 or fig1_twomem)");
        }
      } else if (key == "cores") {
        cfg.num_cores = static_cast<int>(u64());
      } else if (key == "mesh_width") {
        cfg.mesh_width = static_cast<int>(u64());
        mesh_width_set = true;
      } else if (key == "lm_bytes") {
        cfg.lm_bytes = u32();
      } else if (key == "sdram_bytes") {
        cfg.sdram_bytes = u32();
      } else if (key == "max_cycles") {
        cfg.max_cycles = u64();
      } else if (key == "cache_shared") {
        cfg.cache_shared = onoff();
      } else {
        known = false;
      }
    } else if (section == "cache") {
      if (key == "size_bytes") {
        cfg.dcache.size_bytes = u32();
      } else if (key == "line_bytes") {
        cfg.dcache.line_bytes = u32();
      } else if (key == "ways") {
        cfg.dcache.ways = u32();
      } else {
        known = false;
      }
    } else if (section == "timing") {
      TimingConfig& t = cfg.timing;
      if (key == "lm_load") {
        t.lm_load = u32();
      } else if (key == "lm_store") {
        t.lm_store = u32();
      } else if (key == "cache_hit") {
        t.cache_hit = u32();
      } else if (key == "sdram_read") {
        t.sdram_read = u32();
      } else if (key == "sdram_write_cost") {
        t.sdram_write_cost = u32();
      } else if (key == "sdram_write_visible") {
        t.sdram_write_visible = u32();
      } else if (key == "sdram_line_fill") {
        t.sdram_line_fill = u32();
      } else if (key == "sdram_line_wb_cost") {
        t.sdram_line_wb_cost = u32();
      } else if (key == "sdram_line_wb_visible") {
        t.sdram_line_wb_visible = u32();
      } else if (key == "noc_base") {
        t.noc_base = u32();
      } else if (key == "noc_per_hop") {
        t.noc_per_hop = u32();
      } else if (key == "noc_per_word") {
        t.noc_per_word = u32();
      } else if (key == "noc_send_cost") {
        t.noc_send_cost = u32();
      } else if (key == "atomic_extra") {
        t.atomic_extra = u32();
      } else if (key == "dma_per_word") {
        t.dma_per_word = u32();
      } else if (key == "cluster_load") {
        t.cluster_load = u32();
      } else if (key == "cluster_store") {
        t.cluster_store = u32();
      } else if (key == "cache_op_per_line") {
        t.cache_op_per_line = u32();
      } else if (key == "imiss_penalty") {
        t.imiss_penalty = u32();
      } else if (key == "priv_miss_penalty") {
        t.priv_miss_penalty = u32();
      } else {
        known = false;
      }
    } else if (section == "noc") {
      if (key == "model") {
        if (val == "flat") {
          cfg.noc_model = NocModel::kFlat;
        } else if (val == "mesh") {
          cfg.noc_model = NocModel::kMesh;
        } else {
          PMC_CFG_FAIL("bad value '" << val
                                     << "' for model (flat or mesh)");
        }
      } else if (key == "buffer_words") {
        cfg.noc_buffer_words = u32();
      } else {
        known = false;
      }
    } else if (section == "cluster") {
      if (key == "bytes") {
        cfg.cluster_bytes = u32();
      } else {
        known = false;
      }
    } else {  // workload
      if (key == "imiss_per_mille") {
        cfg.profile.imiss_per_mille = u32();
      } else if (key == "priv_miss_per_mille") {
        cfg.profile.priv_miss_per_mille = u32();
      } else {
        known = false;
      }
    }
    if (!known) {
      PMC_CFG_FAIL("unknown key '" << key << "' in [" << section << "]");
    }
    any_key = true;
  }

  if (!mesh_width_set && cfg.num_cores >= 1) {
    cfg.mesh_width = derive_mesh_width(cfg.num_cores);
  }
  try {
    cfg.validate();
  } catch (const util::CheckFailure& e) {
    PMC_CHECK_MSG(false, origin << ": " << e.what());
  }
  return cfg;
}

MachineConfig MachineConfig::from_file(const std::string& path) {
  std::ifstream in(path);
  PMC_CHECK_MSG(in.good(), path << ": cannot open machine config");
  std::ostringstream text;
  text << in.rdbuf();
  return from_string(text.str(), path);
}

}  // namespace pmc::sim
