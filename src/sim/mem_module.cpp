#include "sim/mem_module.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"
#include "util/hash.h"

namespace pmc::sim {

MemModule::MemModule(std::string name, Addr base, size_t size)
    : name_(std::move(name)), base_(base), store_(size, 0) {
  PMC_CHECK(size > 0);
  touched_.assign((size + kPageBytes - 1) / kPageBytes, 0);
}

void MemModule::mark_write(Addr a, size_t n) {
  // A zero-length write dirties nothing; without this guard it would still
  // mark the page holding `a`, inflating Snapshot::pages and churning
  // restore() with pages whose bytes never changed.
  if (n == 0) return;
  const uint32_t first = (a - base_) / kPageBytes;
  const uint32_t last = (a - base_ + static_cast<Addr>(n - 1)) / kPageBytes;
  for (uint32_t p = first; p <= last; ++p) {
    if (!touched_[p]) {
      touched_[p] = 1;
      touched_list_.push_back(p);
    }
  }
}

uint8_t* MemModule::at(Addr a, size_t n) {
  PMC_CHECK_MSG(contains(a, n), name_ << ": access [" << a << ", " << a + n
                                      << ") outside [" << base_ << ", "
                                      << base_ + store_.size() << ")");
  return store_.data() + (a - base_);
}

void MemModule::apply_pending(uint64_t t) {
  while (!pending_.empty() && pending_.top().arrival <= t) {
    const Pending& p = pending_.top();
    std::memcpy(at(p.addr, p.data.size()), p.data.data(), p.data.size());
    mark_write(p.addr, p.data.size());
    pending_.pop();
  }
}

void MemModule::read(uint64_t t, Addr a, void* out, size_t n) {
  apply_pending(t);
  std::memcpy(out, at(a, n), n);
}

void MemModule::write(uint64_t t, Addr a, const void* data, size_t n) {
  apply_pending(t);
  std::memcpy(at(a, n), data, n);
  mark_write(a, n);
}

void MemModule::post_write(uint64_t arrival, Addr a, const void* data,
                           size_t n) {
  PMC_CHECK(contains(a, n));
  Pending p;
  p.arrival = arrival;
  p.seq = next_seq_++;
  p.addr = a;
  p.data.assign(static_cast<const uint8_t*>(data),
                static_cast<const uint8_t*>(data) + n);
  pending_.push(std::move(p));
}

uint32_t MemModule::atomic_swap_u32(uint64_t t, Addr a, uint32_t value) {
  apply_pending(t);
  uint32_t old;
  std::memcpy(&old, at(a, 4), 4);
  std::memcpy(at(a, 4), &value, 4);
  mark_write(a, 4);
  return old;
}

uint32_t MemModule::atomic_add_u32(uint64_t t, Addr a, uint32_t delta) {
  apply_pending(t);
  uint32_t old;
  std::memcpy(&old, at(a, 4), 4);
  const uint32_t neu = old + delta;
  std::memcpy(at(a, 4), &neu, 4);
  mark_write(a, 4);
  return old;
}

uint32_t MemModule::atomic_cas_u32(uint64_t t, Addr a, uint32_t expected,
                                   uint32_t desired) {
  apply_pending(t);
  uint32_t old;
  std::memcpy(&old, at(a, 4), 4);
  if (old == expected) {
    std::memcpy(at(a, 4), &desired, 4);
    mark_write(a, 4);
  }
  return old;
}

uint64_t MemModule::reserve_port(uint64_t earliest, uint64_t occupancy) {
  const uint64_t start = std::max(earliest, port_free_);
  port_free_ = start + occupancy;
  ++port_stats_.reservations;
  port_stats_.wait_cycles += start - earliest;
  port_stats_.busy_cycles += occupancy;
  port_stats_.wait_hist.observe(static_cast<double>(start - earliest));
  return start;
}

void MemModule::drain_all() { apply_pending(UINT64_MAX); }

uint64_t MemModule::content_hash() const {
  return util::fnv1a(store_.data(), store_.size());
}

MemModule::Snapshot MemModule::snapshot() const {
  Snapshot s;
  s.pages = touched_list_;
  s.page_bytes.resize(s.pages.size() * kPageBytes);
  for (size_t i = 0; i < s.pages.size(); ++i) {
    const size_t off = static_cast<size_t>(s.pages[i]) * kPageBytes;
    const size_t n = std::min<size_t>(kPageBytes, store_.size() - off);
    std::memcpy(s.page_bytes.data() + i * kPageBytes, store_.data() + off, n);
  }
  s.pending = pending_;
  s.next_seq = next_seq_;
  s.port_free = port_free_;
  s.port_stats = port_stats_;
  return s;
}

void MemModule::restore(const Snapshot& s) {
  // Zero-then-apply: the current dirty set may differ from the snapshot's
  // (other DFS branches ran since), so first return every currently-dirty
  // page to its initial all-zero state, then lay down the saved pages.
  for (const uint32_t p : touched_list_) {
    const size_t off = static_cast<size_t>(p) * kPageBytes;
    std::memset(store_.data() + off,
                0, std::min<size_t>(kPageBytes, store_.size() - off));
    touched_[p] = 0;
  }
  touched_list_.clear();
  for (size_t i = 0; i < s.pages.size(); ++i) {
    const uint32_t p = s.pages[i];
    const size_t off = static_cast<size_t>(p) * kPageBytes;
    const size_t n = std::min<size_t>(kPageBytes, store_.size() - off);
    std::memcpy(store_.data() + off, s.page_bytes.data() + i * kPageBytes, n);
    touched_[p] = 1;
    touched_list_.push_back(p);
  }
  pending_ = s.pending;
  next_seq_ = s.next_seq;
  port_free_ = s.port_free;
  port_stats_ = s.port_stats;
}

}  // namespace pmc::sim
