#include "sim/mem_module.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"
#include "util/hash.h"

namespace pmc::sim {

MemModule::MemModule(std::string name, Addr base, size_t size)
    : name_(std::move(name)), base_(base), store_(size, 0) {
  PMC_CHECK(size > 0);
}

uint8_t* MemModule::at(Addr a, size_t n) {
  PMC_CHECK_MSG(contains(a, n), name_ << ": access [" << a << ", " << a + n
                                      << ") outside [" << base_ << ", "
                                      << base_ + store_.size() << ")");
  return store_.data() + (a - base_);
}

void MemModule::apply_pending(uint64_t t) {
  while (!pending_.empty() && pending_.top().arrival <= t) {
    const Pending& p = pending_.top();
    std::memcpy(at(p.addr, p.data.size()), p.data.data(), p.data.size());
    pending_.pop();
  }
}

void MemModule::read(uint64_t t, Addr a, void* out, size_t n) {
  apply_pending(t);
  std::memcpy(out, at(a, n), n);
}

void MemModule::write(uint64_t t, Addr a, const void* data, size_t n) {
  apply_pending(t);
  std::memcpy(at(a, n), data, n);
}

void MemModule::post_write(uint64_t arrival, Addr a, const void* data,
                           size_t n) {
  PMC_CHECK(contains(a, n));
  Pending p;
  p.arrival = arrival;
  p.seq = next_seq_++;
  p.addr = a;
  p.data.assign(static_cast<const uint8_t*>(data),
                static_cast<const uint8_t*>(data) + n);
  pending_.push(std::move(p));
}

uint32_t MemModule::atomic_swap_u32(uint64_t t, Addr a, uint32_t value) {
  apply_pending(t);
  uint32_t old;
  std::memcpy(&old, at(a, 4), 4);
  std::memcpy(at(a, 4), &value, 4);
  return old;
}

uint32_t MemModule::atomic_add_u32(uint64_t t, Addr a, uint32_t delta) {
  apply_pending(t);
  uint32_t old;
  std::memcpy(&old, at(a, 4), 4);
  const uint32_t neu = old + delta;
  std::memcpy(at(a, 4), &neu, 4);
  return old;
}

uint32_t MemModule::atomic_cas_u32(uint64_t t, Addr a, uint32_t expected,
                                   uint32_t desired) {
  apply_pending(t);
  uint32_t old;
  std::memcpy(&old, at(a, 4), 4);
  if (old == expected) std::memcpy(at(a, 4), &desired, 4);
  return old;
}

uint64_t MemModule::reserve_port(uint64_t earliest, uint64_t occupancy) {
  const uint64_t start = std::max(earliest, port_free_);
  port_free_ = start + occupancy;
  return start;
}

void MemModule::drain_all() { apply_pending(UINT64_MAX); }

uint64_t MemModule::content_hash() const {
  return util::fnv1a(store_.data(), store_.size());
}

}  // namespace pmc::sim
