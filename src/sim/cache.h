// Set-associative write-back data cache holding real bytes.
//
// The cache stores actual line contents, so a missing flush produces a
// genuinely stale read and an invalidate of a dirty line genuinely loses the
// store — coherence-protocol bugs are observable, not merely mis-timed.
// Matching the MicroBlaze cache the paper targets, the only maintenance
// operations are invalidate and writeback+invalidate (no reconcile-in-place).
//
// Cache is pure state; the Machine layers timing and SDRAM traffic on top.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/mem_module.h"

namespace pmc::sim {

struct CacheConfig {
  uint32_t size_bytes = 16 * 1024;
  uint32_t line_bytes = 32;
  uint32_t ways = 2;
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  uint32_t line_bytes() const { return cfg_.line_bytes; }
  uint32_t num_sets() const { return num_sets_; }
  Addr line_base(Addr a) const { return a & ~static_cast<Addr>(cfg_.line_bytes - 1); }

  /// Line data if present (refreshes LRU), else nullptr.
  uint8_t* lookup(Addr line_addr);
  const uint8_t* peek(Addr line_addr) const;  // no LRU update
  bool dirty(Addr line_addr) const;
  void mark_dirty(Addr line_addr);

  struct Victim {
    bool dirty = false;
    Addr addr = 0;
    std::vector<uint8_t> data;
  };
  /// Allocates a slot for an absent line; fills `victim` when a dirty line
  /// had to be evicted. Returns the (uninitialized) line data pointer.
  uint8_t* install(Addr line_addr, Victim* victim);

  /// Writeback+invalidate: returns true if the line was present; when it was
  /// dirty, its bytes are moved into `dirty_out`.
  bool wbinval_line(Addr line_addr, std::vector<uint8_t>* dirty_out);
  /// Invalidate without writeback — dirty data is *discarded* (the MicroBlaze
  /// semantics the paper notes).
  bool inval_line(Addr line_addr);

  size_t valid_lines() const;
  size_t dirty_lines() const;

  /// True once any line was ever installed. Machine snapshots skip caches
  /// that never held a line (non-cached back-ends leave them cold).
  bool ever_used() const { return ever_used_; }

  /// Deep copy of cache state: only valid lines carry bytes (data under an
  /// invalid line is unreadable by construction).
  struct Snapshot {
    uint64_t tick = 0;
    std::vector<uint32_t> line_idx;  // indices into lines_
    struct Line {
      Addr tag = 0;
      bool is_dirty = false;
      uint64_t lru = 0;
    };
    std::vector<Line> lines;     // parallel to line_idx
    std::vector<uint8_t> bytes;  // line_idx.size() * line_bytes
  };
  Snapshot snapshot() const;
  void restore(const Snapshot& s);

 private:
  struct Line {
    Addr tag = 0;  // line-aligned address
    bool valid = false;
    bool is_dirty = false;
    uint64_t lru = 0;
  };

  uint32_t set_of(Addr line_addr) const;
  Line* find(Addr line_addr);
  const Line* find(Addr line_addr) const;
  uint8_t* data_of(const Line* l);

  CacheConfig cfg_;
  uint32_t num_sets_;
  std::vector<Line> lines_;
  std::vector<uint8_t> data_;
  uint64_t tick_ = 0;
  bool ever_used_ = false;
};

}  // namespace pmc::sim
