// Per-segment memory footprints for happens-before partial-order reduction
// (DESIGN.md §8).
//
// A *segment* is the slice of one core's execution between two scheduler
// decision points. Its footprint is the set of shared-memory effects the
// segment performs — address range, read/write/atomic kind, and whether the
// word is a synchronization word (lock, barrier counter, grant flag). Two
// segments are *independent* iff their footprints commute: no write/write or
// read/write overlap on any location and no common sync word. Independent
// segments can be reordered without changing which values any read observes,
// which is what lets the schedule explorer collapse equivalent interleavings
// (Mazurkiewicz-trace equivalence) instead of enumerating them all.
//
// Only *shared* state counts: SDRAM, the tile-local memories (reachable by
// the owner and, via the write-only NoC, by every other tile), and the
// atomic unit. Private D-cache state is not shared — but cached accesses
// still report the *line-aligned* SDRAM range they may fill from or write
// back to, so false sharing under SWCC is a real dependence here too.
#pragma once

#include <cstdint>
#include <vector>

namespace pmc::sim {

enum class AccessKind : uint8_t {
  kRead = 0,
  kWrite = 1,
  kAtomic = 2,  // read-modify-write at the atomic unit; conflicts like a write
};

struct MemAccess {
  uint64_t addr = 0;
  uint32_t len = 0;
  AccessKind kind = AccessKind::kRead;
  /// Lock/barrier word (MemClass::kSync traffic and all atomics). Two
  /// accesses to a common sync word never commute, even read/read: sync
  /// words order the computation, so their interleaving is the schedule.
  bool sync = false;

  friend bool operator==(const MemAccess&, const MemAccess&) = default;
};

/// True when the two accesses do not commute.
inline bool conflicts(const MemAccess& a, const MemAccess& b) {
  const bool overlap =
      a.addr < b.addr + b.len && b.addr < a.addr + a.len;
  if (!overlap) return false;
  if (a.kind != AccessKind::kRead || b.kind != AccessKind::kRead) return true;
  return a.sync && b.sync;  // common sync word: even read/read is ordered
}

/// Accumulated footprint of one segment. `wildcard()` denotes an effect of
/// unknown extent — it conflicts with every non-empty footprint, so callers
/// that lack information stay conservative (never prune on a wildcard).
class Footprint {
 public:
  bool empty() const { return !wildcard_ && accesses_.empty(); }
  bool is_wildcard() const { return wildcard_; }
  const std::vector<MemAccess>& accesses() const { return accesses_; }

  void clear() {
    accesses_.clear();
    wildcard_ = false;
  }

  void add(uint64_t addr, uint32_t len, AccessKind kind, bool sync) {
    if (wildcard_ || len == 0) return;
    // Entry/exit double-marking and word-by-word loops produce duplicate or
    // adjacent records; merging against the last entry keeps footprints tiny
    // without a full interval set.
    if (!accesses_.empty()) {
      MemAccess& last = accesses_.back();
      if (last.kind == kind && last.sync == sync &&
          addr >= last.addr && addr <= last.addr + last.len) {
        const uint64_t end = addr + len;
        if (end > last.addr + last.len) {
          last.len = static_cast<uint32_t>(end - last.addr);
        }
        return;
      }
    }
    accesses_.push_back({addr, len, kind, sync});
  }

  /// Marks the whole segment as touching an unknown location set.
  void add_wildcard() {
    wildcard_ = true;
    accesses_.clear();
  }

  static const Footprint& wildcard() {
    static const Footprint fp = [] {
      Footprint w;
      w.add_wildcard();
      return w;
    }();
    return fp;
  }

  friend bool conflicts(const Footprint& a, const Footprint& b) {
    if (a.empty() || b.empty()) return false;
    if (a.wildcard_ || b.wildcard_) return true;
    for (const MemAccess& x : a.accesses_) {
      for (const MemAccess& y : b.accesses_) {
        if (conflicts(x, y)) return true;
      }
    }
    return false;
  }

 private:
  std::vector<MemAccess> accesses_;
  bool wildcard_ = false;
};

}  // namespace pmc::sim
