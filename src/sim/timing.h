// Timing parameters of the simulated SoC.
//
// The defaults model the paper's platform class: MicroBlaze-style in-order
// cores at ~100 MHz, single-cycle tile-local memories (LMB dual-port RAM),
// a lightweight write-only NoC, and SDRAM behind a non-coherent cache.
// Absolute values are representative, not calibrated — the experiments
// compare *shapes* (see DESIGN.md §2).
#pragma once

#include <cstdint>

namespace pmc::sim {

struct TimingConfig {
  // Tile-local memory (single-cycle dual-port RAM on the LMB).
  uint32_t lm_load = 1;
  uint32_t lm_store = 1;

  // L1 data cache. MicroBlaze reaches its SDRAM cache over XCL, which costs
  // an extra cycle compared to the single-cycle LMB — the asymmetry that
  // makes scratch-pad staging pay off for high-reuse kernels (§VI-C).
  uint32_t cache_hit = 2;

  // SDRAM via the shared bus (uncached word access, round trip).
  uint32_t sdram_read = 24;
  // Posted uncached/writeback store: sender-visible cost per word (store
  // buffer drain), and time until the bytes are visible in SDRAM.
  uint32_t sdram_write_cost = 6;
  uint32_t sdram_write_visible = 12;
  // Cache line fill / writeback.
  uint32_t sdram_line_fill = 34;
  uint32_t sdram_line_wb_cost = 10;
  uint32_t sdram_line_wb_visible = 20;

  // Network-on-chip (write-only remote access, Fig. 7).
  uint32_t noc_base = 4;      // head latency
  uint32_t noc_per_hop = 2;   // per mesh hop
  uint32_t noc_per_word = 1;  // serialization per 32-bit word
  uint32_t noc_send_cost = 2; // sender-side cost to enqueue a packet

  // Interleaved shared-L1 cluster SRAM (MemPool-style): a few cycles through
  // the cluster interconnect, far below SDRAM but above the private LMB.
  uint32_t cluster_load = 2;
  uint32_t cluster_store = 2;

  // Atomic unit at the SDRAM controller (swap/add round trip on top of the
  // uncached read latency).
  uint32_t atomic_extra = 8;

  // Block (DMA-style) SDRAM transfer: one round-trip setup plus a pipelined
  // per-word cost — used for object copies (SPM staging, DSM handoff).
  uint32_t dma_per_word = 2;

  // Cache maintenance (per line, plus writeback posting when dirty).
  uint32_t cache_op_per_line = 1;

  // Statistical background load (see DESIGN.md §2, substitution table).
  uint32_t imiss_penalty = 18;
  uint32_t priv_miss_penalty = 24;
};

/// Expected background misses per 1000 executed instructions; exact rational
/// accounting keeps the simulation deterministic.
struct WorkloadProfile {
  uint32_t imiss_per_mille = 4;      // instruction cache misses
  uint32_t priv_miss_per_mille = 10; // private-data read misses
};

}  // namespace pmc::sim
