#include "sim/machine.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"
#include "util/hash.h"

namespace pmc::sim {

int MachineConfig::derive_mesh_width(int cores) {
  PMC_CHECK_MSG(cores >= 1, "num_cores must be >= 1");
  for (int w = std::min(8, cores); w > 1; --w) {
    if (cores % w == 0) return w;
  }
  return 1;
}

MachineConfig MachineConfig::ml605(int cores) {
  MachineConfig c;
  c.num_cores = cores;
  // Derived, never assumed: `cores >= 8 ? 8 : cores` silently built ragged
  // meshes (12 cores → an 8-wide grid with a 4-tile last row) whose
  // out-of-grid coordinates made hop counts nonsense.
  c.mesh_width = derive_mesh_width(cores);
  return c;
}

void MachineConfig::validate() const {
  PMC_CHECK_MSG(num_cores >= 1, "num_cores must be >= 1");
  PMC_CHECK_MSG(mesh_width >= 1, "mesh_width must be >= 1");
  PMC_CHECK_MSG(num_cores % mesh_width == 0,
                "ragged mesh: " << num_cores << " cores cannot fill rows of "
                                << mesh_width
                                << " (pick a width dividing the core count)");
  PMC_CHECK_MSG(lm_bytes > 0 && lm_bytes <= kLmStride,
                "lm_bytes must be in (0, " << kLmStride << "]");
  // The cluster SRAM window starts where tile slots would otherwise
  // continue, so an enabled cluster lowers the tile ceiling.
  const Addr tile_limit = cluster_bytes > 0 ? kClusterBase : kSdramBase;
  const int max_tiles = static_cast<int>((tile_limit - kLmBase) / kLmStride);
  PMC_CHECK_MSG(num_cores <= max_tiles,
                "too many tiles for the address map (max " << max_tiles
                                                           << ")");
  PMC_CHECK_MSG(cluster_bytes <= kSdramBase - kClusterBase,
                "cluster_bytes must be <= " << (kSdramBase - kClusterBase));
  PMC_CHECK_MSG(sdram_bytes > 0, "sdram_bytes must be > 0");
  PMC_CHECK_MSG(dcache.line_bytes >= 4 &&
                    (dcache.line_bytes & (dcache.line_bytes - 1)) == 0,
                "cache line_bytes must be a power of two >= 4");
  PMC_CHECK_MSG(dcache.ways >= 1 &&
                    dcache.size_bytes % (dcache.line_bytes * dcache.ways) == 0,
                "cache size_bytes must be a multiple of line_bytes * ways");
  PMC_CHECK_MSG(noc_buffer_words >= 1, "noc buffer_words must be >= 1");
}

MachineConfig MachineConfig::fig1_twomem() {
  MachineConfig c;
  c.num_cores = 2;
  c.mesh_width = 2;
  // "latency: 10" for the memory holding X vs "latency: 1" for the flag:
  // SDRAM writes become visible slowly, NoC writes quickly.
  c.timing.sdram_write_visible = 40;
  c.timing.noc_base = 2;
  c.timing.noc_per_hop = 1;
  c.cache_shared = false;
  return c;
}

Machine::Machine(const MachineConfig& cfg)
    // The comma operator runs the shape checks before any member is built —
    // a bad config fails with validate()'s message, not a member's.
    : cfg_((cfg.validate(), cfg)),
      sched_(cfg.num_cores, cfg.max_cycles),
      sdram_("sdram", kSdramBase, cfg.sdram_bytes),
      noc_(cfg.num_cores, cfg.mesh_width, cfg.timing, cfg.noc_model,
           cfg.noc_buffer_words) {
  if (cfg_.cluster_bytes > 0) {
    cluster_ = std::make_unique<MemModule>("cluster", kClusterBase,
                                           cfg_.cluster_bytes);
  }
  lms_.reserve(cfg_.num_cores);
  cores_.reserve(cfg_.num_cores);
  for (int t = 0; t < cfg_.num_cores; ++t) {
    lms_.push_back(std::make_unique<MemModule>(
        "lm" + std::to_string(t), kLmBase + static_cast<Addr>(t) * kLmStride,
        cfg_.lm_bytes));
    cores_.push_back(std::make_unique<CoreState>(cfg_.dcache));
  }
  stats_.resize(cfg_.num_cores);
}

Addr Machine::lm_base(int tile) const {
  PMC_CHECK(tile >= 0 && tile < cfg_.num_cores);
  return kLmBase + static_cast<Addr>(tile) * kLmStride;
}

int Machine::tile_of(Addr a) const {
  if (a < kLmBase || a >= kLmBase + static_cast<Addr>(cfg_.num_cores) * kLmStride) {
    return -1;
  }
  const int tile = static_cast<int>((a - kLmBase) / kLmStride);
  return a - lm_base(tile) < cfg_.lm_bytes ? tile : -1;
}

MemModule& Machine::module_for(Addr a, size_t n) {
  if (sdram_.contains(a, n)) return sdram_;
  if (cluster_ != nullptr && cluster_->contains(a, n)) return *cluster_;
  const int tile = tile_of(a);
  PMC_CHECK_MSG(tile >= 0 && lms_[tile]->contains(a, n),
                "unmapped address " << a << " (+" << n << ")");
  return *lms_[tile];
}

void Machine::poke(Addr a, const void* data, size_t n) {
  PMC_CHECK_MSG(!ran_, "poke() after run()");
  module_for(a, n).write(0, a, data, n);
}

void Machine::peek(Addr a, void* out, size_t n) {
  module_for(a, n).read(UINT64_MAX, a, out, n);
}

void Machine::run(const std::function<void(Core&)>& body) {
  PMC_CHECK_MSG(!ran_, "a Machine instance runs once");
  ran_ = true;
  // Held as a member: in snapshot mode restored fibers re-enter the body
  // long after this frame has returned.
  body_ = body;
  sched_.run([this](int id) {
    Core core(*this, id);
    body_(core);
    // Frontier warps (DESIGN.md §6) advance a core's clock without passing
    // through any charge; folding them into idle here keeps the §V-B
    // decomposition identity cycles_total == busy + stall_total() + idle
    // exact under schedule policies (a no-op for default scheduling).
    stats_[id].idle += sched_.warped(id);
    stats_[id].cycles_total = sched_.now(id);
  });
}

void Machine::register_state(void* p, size_t n) {
  PMC_CHECK(p != nullptr && n > 0);
  regions_.push_back({p, n});
}

Machine::Snapshot Machine::snapshot() const {
  Snapshot s;
  s.sched = sched_.snapshot();
  s.caches.reserve(cores_.size());
  s.core_acc.reserve(cores_.size());
  for (const auto& c : cores_) {
    // Cold caches (non-cached back-ends never install a line) snapshot as
    // empty and restore as a no-op.
    s.caches.push_back(c->dcache.ever_used() ? c->dcache.snapshot()
                                             : Cache::Snapshot{});
    s.core_acc.push_back({c->imiss_acc, c->priv_acc});
  }
  s.stats = stats_;
  s.sdram = sdram_.snapshot();
  s.lms.reserve(lms_.size());
  for (const auto& lm : lms_) s.lms.push_back(lm->snapshot());
  if (cluster_ != nullptr) s.cluster = cluster_->snapshot();
  s.noc = noc_.snapshot();
  s.regions.reserve(regions_.size());
  for (const auto& [p, n] : regions_) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    s.regions.emplace_back(b, b + n);
  }
  // Recorder contents travel with the machine so restore() rolls abandoned-
  // branch events back (attach the recorder before the first snapshot).
  if (trace_ != nullptr) s.trace = trace_->snapshot();
  return s;
}

void Machine::restore(const Snapshot& s) {
  PMC_CHECK_MSG(s.regions.size() == regions_.size(),
                "snapshot predates register_state() calls ("
                    << s.regions.size() << " regions captured, "
                    << regions_.size() << " registered)");
  sched_.restore(s.sched);
  for (size_t i = 0; i < cores_.size(); ++i) {
    CoreState& c = *cores_[i];
    if (c.dcache.ever_used()) c.dcache.restore(s.caches[i]);
    c.imiss_acc = s.core_acc[i].first;
    c.priv_acc = s.core_acc[i].second;
  }
  stats_ = s.stats;
  sdram_.restore(s.sdram);
  for (size_t i = 0; i < lms_.size(); ++i) lms_[i]->restore(s.lms[i]);
  if (cluster_ != nullptr) cluster_->restore(s.cluster);
  noc_.restore(s.noc);
  for (size_t i = 0; i < regions_.size(); ++i) {
    PMC_CHECK(s.regions[i].size() == regions_[i].second);
    std::memcpy(regions_[i].first, s.regions[i].data(), s.regions[i].size());
  }
  if (trace_ != nullptr) trace_->restore(s.trace);
}

uint64_t Machine::digest(const Snapshot& s) {
  uint64_t h = util::kFnvOffset;
  const auto mix = [&h](uint64_t v) { h = util::hash_combine(h, v); };
  const auto mix_bytes = [&h](const void* p, size_t n) {
    h = util::hash_combine(h,
                           util::fnv1a(static_cast<const uint8_t*>(p), n));
  };
  mix(s.sched.step);
  mix(s.sched.frontier);
  mix(static_cast<uint64_t>(s.sched.current));
  mix(static_cast<uint64_t>(s.sched.resume_core + 1));
  // The trace buffer is deliberately NOT digested: the digest certifies
  // simulator state, and the trace is a log of how we got there (DESIGN.md
  // §11) — tracing on/off must not change snapshot-idempotence checks.
  for (const auto& sl : s.sched.slots) {
    mix(sl.time);
    mix(sl.warped);
    mix(sl.done);
    mix(sl.observable);
    mix(sl.fp.is_wildcard());
    for (const auto& a : sl.fp.accesses()) {
      mix(a.addr);
      mix(a.len);
      mix(static_cast<uint64_t>(a.kind));
      mix(a.sync);
    }
  }
  for (const auto& f : s.sched.fibers) {
    // The saved ucontext holds host pointers (fpregs, uc_link); the register
    // file that matters is implied by the stack slice + resume offsets.
    mix(f.stack_off);
    mix_bytes(f.stack.data(), f.stack.size());
  }
  for (const auto& c : s.caches) {
    mix(c.tick);
    mix_bytes(c.line_idx.data(), c.line_idx.size() * sizeof(uint32_t));
    for (const auto& l : c.lines) {
      mix(l.tag);
      mix(l.is_dirty);
      mix(l.lru);
    }
    mix_bytes(c.bytes.data(), c.bytes.size());
  }
  for (const auto& [im, pv] : s.core_acc) {
    mix(im);
    mix(pv);
  }
  // CoreStats is all-uint64_t (no padding), so raw bytes are deterministic.
  mix_bytes(s.stats.data(), s.stats.size() * sizeof(CoreStats));
  const auto mix_mem = [&](const MemModule::Snapshot& m) {
    mix_bytes(m.pages.data(), m.pages.size() * sizeof(uint32_t));
    mix_bytes(m.page_bytes.data(), m.page_bytes.size());
    mix(m.next_seq);
    mix(m.port_free);
    // Histograms are observational aggregates of the counters below, so the
    // counters suffice to certify port state.
    mix(m.port_stats.reservations);
    mix(m.port_stats.wait_cycles);
    mix(m.port_stats.busy_cycles);
    auto q = m.pending;  // priority_queue: drain a copy in deterministic order
    while (!q.empty()) {
      const auto& p = q.top();
      mix(p.arrival);
      mix(p.seq);
      mix(p.addr);
      mix_bytes(p.data.data(), p.data.size());
      q.pop();
    }
  };
  mix_mem(s.sdram);
  for (const auto& m : s.lms) mix_mem(m);
  mix_mem(s.cluster);  // default-constructed (stable) without a cluster
  // Clock maps mix sorted by index with zero-valued entries elided, so the
  // digest depends only on the clocks' content — a dense map padded with
  // explicit zeros and the sparse touched-entry map hash identically.
  const auto mix_clock_map =
      [&](std::vector<std::pair<uint32_t, uint64_t>> map) {
        std::sort(map.begin(), map.end());
        for (const auto& [i, v] : map) {
          if (v == 0) continue;
          mix(i);
          mix(v);
        }
      };
  mix_clock_map(s.noc.channels);
  mix_clock_map(s.noc.links);
  mix(s.noc.packets);
  mix(s.noc.bytes);
  mix(s.noc.link_stall_cycles);
  mix(s.noc.stalled_packets);
  for (const auto& r : s.regions) mix_bytes(r.data(), r.size());
  return h;
}

void Machine::export_metrics(obs::MetricsRegistry& reg) const {
  reg.inc("noc.packets", noc_.packets_sent());
  reg.inc("noc.bytes", noc_.bytes_sent());
  reg.inc("noc.link_stall_cycles", noc_.link_stall_cycles());
  reg.inc("noc.stalled_packets", noc_.stalled_packets());
  reg.merge_histogram("noc.link_stall", noc_.link_stall_hist());
  const auto port = [&](const MemModule& m) {
    const MemModule::PortStats& p = m.port_stats();
    reg.inc("port.reservations", p.reservations);
    reg.inc("port.wait_cycles", p.wait_cycles);
    reg.inc("port.busy_cycles", p.busy_cycles);
    reg.merge_histogram("port.wait", p.wait_hist);
  };
  port(sdram_);
  reg.merge_histogram("port.sdram.wait", sdram_.port_stats().wait_hist);
  for (const auto& lm : lms_) port(*lm);
  if (cluster_ != nullptr) {
    port(*cluster_);
    reg.merge_histogram("port.cluster.wait", cluster_->port_stats().wait_hist);
  }
}

CoreStats Machine::stats_sum() const {
  CoreStats sum;
  for (const auto& s : stats_) sum += s;
  return sum;
}

uint64_t Machine::state_hash() {
  sdram_.drain_all();
  uint64_t h = util::kFnvOffset;
  h = util::hash_combine(h, sdram_.content_hash());
  for (int t = 0; t < cfg_.num_cores; ++t) {
    lms_[t]->drain_all();
    h = util::hash_combine(h, lms_[t]->content_hash());
    h = util::hash_combine(h, stats_[t].cycles_total);
  }
  if (cluster_ != nullptr) {
    cluster_->drain_all();
    h = util::hash_combine(h, cluster_->content_hash());
  }
  return h;
}

// ---------------------------------------------------------------------------
// Core facade
// ---------------------------------------------------------------------------

int Core::num_cores() const { return m_.cfg_.num_cores; }
uint64_t Core::now() const { return m_.sched_.now(id_); }
const MachineConfig& Core::config() const { return m_.cfg_; }
CoreStats& Core::stats() { return m_.stats_[id_]; }

void Core::charge(uint64_t busy, uint64_t stall,
                  uint64_t CoreStats::*bucket) {
  auto& s = m_.stats_[id_];
  s.busy += busy;
  if (stall != 0) s.*bucket += stall;
  m_.sched_.advance(id_, busy + stall);
}

void Core::trace(obs::EventKind kind, uint64_t t0, Addr addr, uint32_t len,
                 uint16_t aux, uint64_t arg) {
  obs::TraceEvent e;
  e.kind = kind;
  e.core = static_cast<int16_t>(id_);
  e.aux = aux;
  e.len = len;
  e.t0 = t0;
  e.t1 = now();
  e.addr = addr;
  e.arg = arg;
  m_.trace_->record(e);
  // Counter tracks piggyback on event boundaries: events are dense on every
  // active core, and a pure-idle core has nothing new to sample anyway.
  if (m_.trace_->counter_due(id_, e.t1)) sample_counters();
}

void Core::sample_counters() {
  const auto& s = m_.stats_[id_];
  const uint64_t t = now();
  const auto rec = [&](obs::CounterId cid, uint64_t v) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kCounter;
    e.core = static_cast<int16_t>(id_);
    e.aux = static_cast<uint16_t>(cid);
    e.t0 = e.t1 = t;
    e.arg = v;
    m_.trace_->record(e);
  };
  rec(obs::CounterId::kBusy, s.busy);
  rec(obs::CounterId::kStall, s.stall_total());
  rec(obs::CounterId::kIdle, s.idle);
  rec(obs::CounterId::kDcacheMisses, s.dcache_misses);
  rec(obs::CounterId::kNocBytes, s.noc_bytes_sent);
}

uint64_t Core::sdram_port_wait(uint64_t occupancy) {
  if (m_.cfg_.noc_model != NocModel::kMesh) return 0;
  return m_.sdram_.reserve_port(now(), occupancy) - now();
}

uint64_t CoreStats::*Core::read_bucket(MemClass c) const {
  return c == MemClass::kSync ? &CoreStats::stall_sync_read
                              : &CoreStats::stall_shared_read;
}

void Core::compute(uint64_t instructions) {
  if (instructions == 0) return;
  const uint64_t trace_t0 = now();
  auto& s = m_.stats_[id_];
  auto& cs = *m_.cores_[id_];
  const auto& t = m_.cfg_.timing;
  s.instructions += instructions;
  // Deterministic expected-value accounting of the background load.
  cs.imiss_acc += instructions * m_.cfg_.profile.imiss_per_mille;
  cs.priv_acc += instructions * m_.cfg_.profile.priv_miss_per_mille;
  const uint64_t imiss = cs.imiss_acc / 1000;
  const uint64_t pmiss = cs.priv_acc / 1000;
  cs.imiss_acc %= 1000;
  cs.priv_acc %= 1000;
  s.busy += instructions;
  s.stall_ifetch += imiss * t.imiss_penalty;
  s.stall_private_read += pmiss * t.priv_miss_penalty;
  m_.sched_.advance(id_, instructions + imiss * t.imiss_penalty +
                             pmiss * t.priv_miss_penalty);
  if (m_.tracing()) {
    trace(obs::EventKind::kCompute, trace_t0, 0, 0, 0, instructions);
  }
}

void Core::idle(uint64_t cycles) {
  const uint64_t trace_t0 = now();
  m_.stats_[id_].idle += cycles;
  m_.sched_.advance(id_, cycles);
  if (m_.tracing()) trace(obs::EventKind::kIdle, trace_t0);
}

void Core::cached_access(Addr a, void* rd_out, const void* wr_data, size_t n) {
  auto& s = m_.stats_[id_];
  auto& cs = *m_.cores_[id_];
  auto& cache = cs.dcache;
  const auto& t = m_.cfg_.timing;
  const uint32_t lb = cache.line_bytes();
  size_t done = 0;
  while (done < n) {
    const Addr addr = a + static_cast<Addr>(done);
    const Addr line = cache.line_base(addr);
    const size_t in_line = std::min<size_t>(n - done, line + lb - addr);
    uint8_t* data = cache.lookup(line);
    if (data != nullptr) {
      s.dcache_hits++;
      const uint64_t trace_t0 = now();
      charge(t.cache_hit, 0, &CoreStats::stall_shared_read);
      if (m_.tracing()) trace(obs::EventKind::kCacheHit, trace_t0, line, lb);
    } else {
      s.dcache_misses++;
      const uint64_t trace_t0 = now();
      if (m_.tracing()) trace(obs::EventKind::kCacheMiss, trace_t0, line, lb);
      // Per-core scratch, not a local: heap-owning objects may not live on a
      // fiber stack across the charge() yields below (see CoreState).
      Cache::Victim& victim = cs.victim_scratch;
      victim.dirty = false;
      data = cache.install(line, &victim);
      uint64_t pre_stall = 0;
      if (victim.dirty) {
        // Post the writeback; the fill waits for the bus slot. The victim
        // line is a *different* SDRAM range than the access — footprint it,
        // or exploration would treat the eviction as invisible.
        const uint64_t start =
            m_.sdram_.reserve_port(now(), lb / 4);
        m_.sdram_.post_write(start + t.sdram_line_wb_visible, victim.addr,
                             victim.data.data(), victim.data.size());
        m_.sched_.note_access(id_, victim.addr,
                              static_cast<uint32_t>(victim.data.size()),
                              AccessKind::kWrite, /*sync=*/false);
        s.writebacks++;
        pre_stall += t.sdram_line_wb_cost;
        if (m_.tracing()) {
          trace(obs::EventKind::kWriteback, now(), victim.addr,
                static_cast<uint32_t>(victim.data.size()), 0,
                start + t.sdram_line_wb_visible);
        }
      }
      // The fill samples SDRAM when the request reaches it (half the fill
      // latency); the rest is the response flight. In-flight writes arriving
      // later than the sample point are genuinely missed.
      const uint64_t fill_req = std::max<uint64_t>(t.sdram_line_fill / 2, 1);
      auto bucket = wr_data != nullptr ? &CoreStats::stall_write
                                       : &CoreStats::stall_shared_read;
      const uint64_t fill_t0 = now();
      charge(1, pre_stall + fill_req - 1, bucket);
      m_.sched_.note_access(id_, line, lb, AccessKind::kRead, /*sync=*/false);
      m_.sdram_.read(now(), line, data, lb);
      charge(0, t.sdram_line_fill - fill_req, bucket);
      if (m_.tracing()) trace(obs::EventKind::kCacheFill, fill_t0, line, lb);
    }
    const size_t off = addr - line;
    if (wr_data != nullptr) {
      std::memcpy(data + off, static_cast<const uint8_t*>(wr_data) + done,
                  in_line);
      cache.mark_dirty(line);
    } else {
      std::memcpy(static_cast<uint8_t*>(rd_out) + done, data + off, in_line);
    }
    done += in_line;
  }
}

void Core::uncached_access(Addr a, void* rd_out, const void* wr_data, size_t n,
                           MemClass c) {
  const auto& t = m_.cfg_.timing;
  // Uncached SDRAM traffic moves word by word over the shared bus.
  const bool sync = c == MemClass::kSync;
  size_t done = 0;
  while (done < n) {
    const size_t chunk = std::min<size_t>(4 - ((a + done) % 4), n - done);
    const Addr chunk_addr = a + static_cast<Addr>(done);
    if (wr_data != nullptr) {
      // Mesh model only: posted uncached stores drain through the shared
      // SDRAM port one word at a time, so contenders queue (a no-op wait
      // under kFlat, preserving its timing exactly).
      charge(1, sdram_port_wait(1) + t.sdram_write_cost - 1,
             &CoreStats::stall_write);
      m_.sched_.note_access(id_, chunk_addr, static_cast<uint32_t>(chunk),
                            AccessKind::kWrite, sync);
      m_.sdram_.post_write(now() + t.sdram_write_visible, chunk_addr,
                           static_cast<const uint8_t*>(wr_data) + done, chunk);
    } else {
      // Sample at request arrival (half the round trip), not at completion.
      const uint64_t req = std::max<uint64_t>(t.sdram_read / 2, 1);
      charge(1, req - 1, read_bucket(c));
      m_.sched_.note_access(id_, chunk_addr, static_cast<uint32_t>(chunk),
                            AccessKind::kRead, sync);
      m_.sdram_.read(now(), chunk_addr,
                     static_cast<uint8_t*>(rd_out) + done, chunk);
      charge(0, t.sdram_read - req, read_bucket(c));
    }
    done += chunk;
  }
}

void Core::cluster_access(Addr a, void* rd_out, const void* wr_data, size_t n,
                          MemClass c) {
  const auto& t = m_.cfg_.timing;
  MemModule& cl = *m_.cluster_;
  const bool sync = c == MemClass::kSync;
  // Word-interleaved banks behind a logarithmic interconnect: word-at-a-time
  // like the uncached SDRAM path, but a few cycles each and effects are
  // immediate (the interconnect is the only distance — there is no posted
  // store buffer between the core and the SRAM).
  size_t done = 0;
  while (done < n) {
    const size_t chunk = std::min<size_t>(4 - ((a + done) % 4), n - done);
    const Addr chunk_addr = a + static_cast<Addr>(done);
    // Mesh model only: contenders for the same bank group queue one cycle of
    // service each (a no-op under kFlat, keeping fixed costs bit-identical).
    uint64_t wait = 0;
    if (m_.cfg_.noc_model == NocModel::kMesh) {
      wait = cl.reserve_port(now(), 1) - now();
    }
    if (wr_data != nullptr) {
      charge(1, wait + t.cluster_store - 1, &CoreStats::stall_write);
      m_.sched_.note_access(id_, chunk_addr, static_cast<uint32_t>(chunk),
                            AccessKind::kWrite, sync);
      cl.write(now(), chunk_addr,
               static_cast<const uint8_t*>(wr_data) + done, chunk);
    } else {
      charge(1, wait + t.cluster_load - 1, read_bucket(c));
      m_.sched_.note_access(id_, chunk_addr, static_cast<uint32_t>(chunk),
                            AccessKind::kRead, sync);
      cl.read(now(), chunk_addr, static_cast<uint8_t*>(rd_out) + done, chunk);
    }
    done += chunk;
  }
}

void Core::access(Addr a, void* rd_out, const void* wr_data, size_t n,
                  MemClass c) {
  PMC_CHECK(n > 0);
  const AccessKind kind =
      wr_data != nullptr ? AccessKind::kWrite : AccessKind::kRead;
  const bool sync = c == MemClass::kSync;
  const int tile = m_.tile_of(a);
  const bool in_cluster =
      m_.cluster_ != nullptr && m_.cluster_->contains(a, n);
  // Cluster SRAM is shared L1: by construction it needs no SDRAM-cache copy,
  // so it stays uncached even in cache_shared machines.
  const bool cached = tile < 0 && !in_cluster &&
                      c == MemClass::kSharedData && m_.cfg_.cache_shared;
  // Cached traffic moves line-at-a-time through SDRAM (fills read and
  // writebacks write whole lines), so its footprint is line-aligned: false
  // sharing is a real dependence under SWCC.
  uint64_t fp_addr = a;
  uint32_t fp_len = static_cast<uint32_t>(n);
  if (cached) {
    const auto& cache = m_.cores_[id_]->dcache;
    const uint32_t lb = cache.line_bytes();
    fp_addr = cache.line_base(a);
    fp_len = static_cast<uint32_t>(
        cache.line_base(a + static_cast<Addr>(n) - 1) + lb - fp_addr);
  }
  // Memory effects happen between this call's clock advances (e.g. a posted
  // write is enqueued after its cost was charged), so record the footprint
  // both entering and leaving: the enclosing advances — and the next advance
  // after the trailing effect — must not be treated as independent of this
  // access by schedule exploration. Chunked paths additionally note each
  // module touch so mid-access segments carry their own effects.
  m_.sched_.note_access(id_, fp_addr, fp_len, kind, sync);
  const uint64_t trace_t0 = now();
  const obs::EventKind trace_kind =
      wr_data != nullptr ? obs::EventKind::kStore : obs::EventKind::kLoad;
  auto& s = m_.stats_[id_];
  if (wr_data != nullptr) {
    s.stores++;
  } else {
    s.loads++;
  }
  if (tile >= 0) {
    PMC_CHECK_MSG(tile == id_,
                  "core " << id_ << " cannot read/write tile " << tile
                          << "'s local memory directly: the interconnect is "
                             "write-only (use remote_write)");
    const auto& t = m_.cfg_.timing;
    MemModule& lm = *m_.lms_[tile];
    const uint64_t words = (n + 3) / 4;  // single-cycle per word on the LMB
    if (wr_data != nullptr) {
      charge(words * t.lm_store, 0, &CoreStats::stall_write);
      lm.write(now(), a, wr_data, n);
    } else {
      charge(words * t.lm_load, 0, read_bucket(c));
      lm.read(now(), a, rd_out, n);
    }
    m_.sched_.note_access(id_, fp_addr, fp_len, kind, sync);
    if (m_.tracing()) {
      trace(trace_kind, trace_t0, a, static_cast<uint32_t>(n),
            static_cast<uint16_t>(c));
    }
    return;
  }
  if (in_cluster) {
    cluster_access(a, rd_out, wr_data, n, c);
    m_.sched_.note_access(id_, fp_addr, fp_len, kind, sync);
    if (m_.tracing()) {
      trace(trace_kind, trace_t0, a, static_cast<uint32_t>(n),
            static_cast<uint16_t>(c));
    }
    return;
  }
  PMC_CHECK_MSG(m_.sdram_.contains(a, n), "unmapped address " << a);
  if (cached) {
    cached_access(a, rd_out, wr_data, n);
  } else {
    uncached_access(a, rd_out, wr_data, n, c);
  }
  m_.sched_.note_access(id_, fp_addr, fp_len, kind, sync);
  if (m_.tracing()) {
    trace(trace_kind, trace_t0, a, static_cast<uint32_t>(n),
          static_cast<uint16_t>(c));
  }
}

uint8_t Core::load_u8(Addr a, MemClass c) {
  uint8_t v;
  access(a, &v, nullptr, 1, c);
  return v;
}

uint32_t Core::load_u32(Addr a, MemClass c) {
  PMC_CHECK_MSG(a % 4 == 0, "misaligned u32 load");
  uint32_t v;
  access(a, &v, nullptr, 4, c);
  return v;
}

void Core::store_u8(Addr a, uint8_t v, MemClass c) {
  access(a, nullptr, &v, 1, c);
}

void Core::store_u32(Addr a, uint32_t v, MemClass c) {
  PMC_CHECK_MSG(a % 4 == 0, "misaligned u32 store");
  access(a, nullptr, &v, 4, c);
}

void Core::read_block(Addr a, void* out, size_t n, MemClass c) {
  access(a, out, nullptr, n, c);
}

void Core::write_block(Addr a, const void* data, size_t n, MemClass c) {
  access(a, nullptr, data, n, c);
}

uint64_t Core::remote_write(int dst_tile, Addr dst_addr, const void* data,
                            size_t n) {
  m_.sched_.note_access(id_, dst_addr, static_cast<uint32_t>(n),
                        AccessKind::kWrite, /*sync=*/false);
  PMC_CHECK(dst_tile >= 0 && dst_tile < m_.cfg_.num_cores);
  PMC_CHECK_MSG(dst_tile != id_, "remote_write to own tile: use store");
  MemModule& dst = *m_.lms_[dst_tile];
  PMC_CHECK(dst.contains(dst_addr, n));
  auto& s = m_.stats_[id_];
  const auto& t = m_.cfg_.timing;
  const uint64_t trace_t0 = now();
  // Sender enqueues the packet into its network interface and proceeds.
  charge(1, t.noc_send_cost, &CoreStats::stall_write);
  sim::Noc::Delivery dv;
  const uint64_t arrival = m_.noc_.deliver(now(), id_, dst_tile, dst, n, &dv);
  dst.post_write(arrival, dst_addr, data, n);
  s.remote_writes++;
  s.noc_bytes_sent += n;
  m_.sched_.note_access(id_, dst_addr, static_cast<uint32_t>(n),
                        AccessKind::kWrite, /*sync=*/false);
  if (m_.tracing()) {
    // The deterministic NoC model reveals the arrival at send time, so one
    // event carries the whole flow arc (the exporter adds the arrow).
    trace(obs::EventKind::kNocSend, trace_t0, dst_addr,
          static_cast<uint32_t>(n), static_cast<uint16_t>(dst_tile), arrival);
    if (dv.link_stall + dv.port_wait != 0) {
      // Contention is an instant companion event: len carries the link
      // stall, arg the destination-port wait (both in cycles).
      trace(obs::EventKind::kNocQueue, now(), dst_addr,
            static_cast<uint32_t>(dv.link_stall),
            static_cast<uint16_t>(dst_tile), dv.port_wait);
    }
  }
  return arrival;
}

void Core::dma_read(Addr src, void* out, size_t n, MemClass c) {
  PMC_CHECK(n > 0);
  const bool sync = c == MemClass::kSync;
  m_.sched_.note_access(id_, src, static_cast<uint32_t>(n), AccessKind::kRead,
                        sync);
  PMC_CHECK_MSG(m_.sdram_.contains(src, n), "dma_read is SDRAM-only");
  const auto& t = m_.cfg_.timing;
  const uint64_t words = (n + 3) / 4;
  // Setup round trip, sample at request arrival, then pipelined streaming.
  const uint64_t req = std::max<uint64_t>(t.sdram_read / 2, 1);
  const uint64_t trace_t0 = now();
  charge(1, req - 1, read_bucket(c));
  m_.sched_.note_access(id_, src, static_cast<uint32_t>(n), AccessKind::kRead,
                        sync);
  m_.sdram_.read(now(), src, out, n);
  charge(0, t.sdram_read - req + words * t.dma_per_word, read_bucket(c));
  m_.stats_[id_].loads++;
  m_.sched_.note_access(id_, src, static_cast<uint32_t>(n), AccessKind::kRead,
                        sync);
  if (m_.tracing()) {
    trace(obs::EventKind::kDmaRead, trace_t0, src, static_cast<uint32_t>(n),
          static_cast<uint16_t>(c));
  }
}

uint64_t Core::dma_write(Addr dst, const void* data, size_t n, MemClass c) {
  PMC_CHECK(n > 0);
  const bool sync = c == MemClass::kSync;
  m_.sched_.note_access(id_, dst, static_cast<uint32_t>(n), AccessKind::kWrite,
                        sync);
  PMC_CHECK_MSG(m_.sdram_.contains(dst, n), "dma_write is SDRAM-only");
  const auto& t = m_.cfg_.timing;
  const uint64_t words = (n + 3) / 4;
  const uint64_t trace_t0 = now();
  charge(1, t.sdram_write_cost - 1 + words * t.dma_per_word,
         &CoreStats::stall_write);
  const uint64_t start = m_.sdram_.reserve_port(now(), words);
  const uint64_t arrival = start + t.sdram_write_visible;
  m_.sched_.note_access(id_, dst, static_cast<uint32_t>(n), AccessKind::kWrite,
                        sync);
  m_.sdram_.post_write(arrival, dst, data, n);
  m_.stats_[id_].stores++;
  if (m_.tracing()) {
    trace(obs::EventKind::kDmaWrite, trace_t0, dst, static_cast<uint32_t>(n),
          static_cast<uint16_t>(c), arrival);
  }
  return arrival;
}

void Core::charge_stall(uint64_t cycles, StallBucket bucket) {
  const uint64_t trace_t0 = now();
  switch (bucket) {
    case StallBucket::kSharedRead:
      charge(0, cycles, &CoreStats::stall_shared_read);
      break;
    case StallBucket::kSyncRead:
      charge(0, cycles, &CoreStats::stall_sync_read);
      break;
    case StallBucket::kWrite:
      charge(0, cycles, &CoreStats::stall_write);
      break;
    case StallBucket::kFlush:
      charge(0, cycles, &CoreStats::stall_flush);
      break;
  }
  if (cycles != 0 && m_.tracing()) {
    trace(obs::EventKind::kWait, trace_t0, 0, 0,
          static_cast<uint16_t>(bucket));
  }
}

uint64_t Core::cache_wbinval(Addr a, size_t n) {
  auto& s = m_.stats_[id_];
  auto& cache = m_.cores_[id_]->dcache;
  const auto& t = m_.cfg_.timing;
  const uint32_t lb = cache.line_bytes();
  // Footprint the whole line-aligned range as a write: which lines actually
  // write back depends on private cache state, so the conservative extent
  // keeps exploration sound without leaking cache internals.
  const Addr fp_base = cache.line_base(a);
  const uint32_t fp_len = static_cast<uint32_t>(
      cache.line_base(a + static_cast<Addr>(n) - 1) + lb - fp_base);
  m_.sched_.note_access(id_, fp_base, fp_len, AccessKind::kWrite,
                        /*sync=*/false);
  const uint64_t trace_t0 = now();
  uint16_t traced_lines = 0;
  // Per-core scratch: a vector local would sit on the fiber stack across the
  // charge() yields in the loop (see CoreState::wb_scratch).
  std::vector<uint8_t>& dirty = m_.cores_[id_]->wb_scratch;
  uint64_t last_arrival = 0;
  for (Addr line = cache.line_base(a); line < a + n; line += lb) {
    uint64_t stall = t.cache_op_per_line;
    if (cache.wbinval_line(line, &dirty)) {
      s.lines_flushed++;
      ++traced_lines;
      if (!dirty.empty()) {
        const uint64_t start = m_.sdram_.reserve_port(now(), lb / 4);
        const uint64_t arrival = start + t.sdram_line_wb_visible;
        m_.sched_.note_access(id_, line, lb, AccessKind::kWrite,
                              /*sync=*/false);
        m_.sdram_.post_write(arrival, line, dirty.data(), dirty.size());
        last_arrival = std::max(last_arrival, arrival);
        s.writebacks++;
        stall += t.sdram_line_wb_cost;
        if (m_.tracing()) {
          trace(obs::EventKind::kWriteback, now(), line, lb, 0, arrival);
        }
      }
    }
    charge(0, stall, &CoreStats::stall_flush);
  }
  m_.sched_.note_access(id_, fp_base, fp_len, AccessKind::kWrite,
                        /*sync=*/false);
  if (m_.tracing()) {
    trace(obs::EventKind::kFlush, trace_t0, fp_base, fp_len, traced_lines);
  }
  return last_arrival;
}

void Core::wait_until(uint64_t t, StallBucket bucket) {
  const uint64_t t_now = now();
  if (t > t_now) charge_stall(t - t_now, bucket);
}

void Core::cache_inval(Addr a, size_t n) {
  auto& s = m_.stats_[id_];
  auto& cache = m_.cores_[id_]->dcache;
  const auto& t = m_.cfg_.timing;
  const uint32_t lb = cache.line_bytes();
  // Invalidation touches only the private cache; the later fill performs
  // the shared-memory read. Footprint it as a read of the range so the
  // segment stays observable (as before) and conservatively ordered against
  // writers, without claiming a write it never does.
  const Addr fp_base = cache.line_base(a);
  const uint32_t fp_len = static_cast<uint32_t>(
      cache.line_base(a + static_cast<Addr>(n) - 1) + lb - fp_base);
  m_.sched_.note_access(id_, fp_base, fp_len, AccessKind::kRead,
                        /*sync=*/false);
  const uint64_t trace_t0 = now();
  uint16_t traced_lines = 0;
  for (Addr line = cache.line_base(a); line < a + n; line += lb) {
    if (cache.inval_line(line)) {
      s.lines_flushed++;
      ++traced_lines;
    }
    charge(0, t.cache_op_per_line, &CoreStats::stall_flush);
  }
  if (m_.tracing()) {
    trace(obs::EventKind::kFlush, trace_t0, fp_base, fp_len, traced_lines);
  }
}

uint32_t Core::atomic_swap(Addr a, uint32_t value) {
  m_.sched_.note_access(id_, a, 4, AccessKind::kAtomic, /*sync=*/true);
  PMC_CHECK(a % 4 == 0);
  PMC_CHECK_MSG(m_.sdram_.contains(a, 4), "atomics live on the SDRAM port");
  const auto& t = m_.cfg_.timing;
  const uint64_t total = t.sdram_read + t.atomic_extra;
  const uint64_t req = std::max<uint64_t>(total / 2, 1);
  const uint64_t trace_t0 = now();
  // Mesh model only: the atomic unit serializes contenders on the shared
  // SDRAM port (atomic_extra cycles of service each); kFlat keeps the
  // original fixed-cost path.
  charge(1, sdram_port_wait(t.atomic_extra) + req - 1,
         &CoreStats::stall_sync_read);
  m_.stats_[id_].atomics++;
  const uint32_t old = m_.sdram_.atomic_swap_u32(now(), a, value);
  m_.sched_.note_access(id_, a, 4, AccessKind::kAtomic, /*sync=*/true);
  charge(0, total - req, &CoreStats::stall_sync_read);
  if (m_.tracing()) trace(obs::EventKind::kAtomic, trace_t0, a, 4, 0);
  return old;
}

uint32_t Core::atomic_add(Addr a, uint32_t delta) {
  m_.sched_.note_access(id_, a, 4, AccessKind::kAtomic, /*sync=*/true);
  PMC_CHECK(a % 4 == 0);
  PMC_CHECK_MSG(m_.sdram_.contains(a, 4), "atomics live on the SDRAM port");
  const auto& t = m_.cfg_.timing;
  const uint64_t total = t.sdram_read + t.atomic_extra;
  const uint64_t req = std::max<uint64_t>(total / 2, 1);
  const uint64_t trace_t0 = now();
  // Mesh model only: the atomic unit serializes contenders on the shared
  // SDRAM port (atomic_extra cycles of service each); kFlat keeps the
  // original fixed-cost path.
  charge(1, sdram_port_wait(t.atomic_extra) + req - 1,
         &CoreStats::stall_sync_read);
  m_.stats_[id_].atomics++;
  const uint32_t old = m_.sdram_.atomic_add_u32(now(), a, delta);
  m_.sched_.note_access(id_, a, 4, AccessKind::kAtomic, /*sync=*/true);
  charge(0, total - req, &CoreStats::stall_sync_read);
  if (m_.tracing()) trace(obs::EventKind::kAtomic, trace_t0, a, 4, 1);
  return old;
}

uint32_t Core::atomic_cas(Addr a, uint32_t expected, uint32_t desired) {
  m_.sched_.note_access(id_, a, 4, AccessKind::kAtomic, /*sync=*/true);
  PMC_CHECK(a % 4 == 0);
  PMC_CHECK_MSG(m_.sdram_.contains(a, 4), "atomics live on the SDRAM port");
  const auto& t = m_.cfg_.timing;
  const uint64_t total = t.sdram_read + t.atomic_extra;
  const uint64_t req = std::max<uint64_t>(total / 2, 1);
  const uint64_t trace_t0 = now();
  // Mesh model only: the atomic unit serializes contenders on the shared
  // SDRAM port (atomic_extra cycles of service each); kFlat keeps the
  // original fixed-cost path.
  charge(1, sdram_port_wait(t.atomic_extra) + req - 1,
         &CoreStats::stall_sync_read);
  m_.stats_[id_].atomics++;
  const uint32_t old = m_.sdram_.atomic_cas_u32(now(), a, expected, desired);
  m_.sched_.note_access(id_, a, 4, AccessKind::kAtomic, /*sync=*/true);
  charge(0, total - req, &CoreStats::stall_sync_read);
  if (m_.tracing()) trace(obs::EventKind::kAtomic, trace_t0, a, 4, 2);
  return old;
}

}  // namespace pmc::sim
