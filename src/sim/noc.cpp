#include "sim/noc.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"

namespace pmc::sim {

Noc::Noc(int num_tiles, int mesh_width, const TimingConfig& timing,
         NocModel model, uint32_t buffer_words)
    : num_tiles_(num_tiles),
      mesh_width_(mesh_width),
      timing_(timing),
      model_(model),
      buffer_words_(buffer_words) {
  PMC_CHECK(num_tiles >= 1);
  PMC_CHECK(mesh_width >= 1);
  PMC_CHECK_MSG(num_tiles % mesh_width == 0,
                "ragged mesh: " << num_tiles << " tiles cannot fill rows of "
                                << mesh_width
                                << " (pick a width dividing the tile count)");
  PMC_CHECK(buffer_words >= 1);
  const size_t channels = static_cast<size_t>(num_tiles_) * num_tiles_;
  channel_last_arrival_.assign(channels, 0);
  channel_touched_.assign(channels, 0);
  const size_t links = static_cast<size_t>(num_tiles_) * 4;
  link_free_.assign(links, 0);
  link_touched_.assign(links, 0);
}

uint32_t Noc::hops(int from, int to) const {
  PMC_CHECK(from >= 0 && from < num_tiles_ && to >= 0 && to < num_tiles_);
  const int fx = from % mesh_width_, fy = from / mesh_width_;
  const int tx = to % mesh_width_, ty = to / mesh_width_;
  return static_cast<uint32_t>(std::abs(fx - tx) + std::abs(fy - ty));
}

int Noc::next_hop(int from, int to) const {
  const int fx = from % mesh_width_;
  const int tx = to % mesh_width_;
  if (fx != tx) return from + (tx > fx ? 1 : -1);
  return from + (to > from ? mesh_width_ : -mesh_width_);
}

int Noc::link_index(int from, int to) const {
  // 4 outgoing directions per tile: 0 = +x, 1 = -x, 2 = +y, 3 = -y.
  const int d = to - from;
  int dir;
  if (d == 1) {
    dir = 0;
  } else if (d == -1) {
    dir = 1;
  } else if (d == mesh_width_) {
    dir = 2;
  } else {
    dir = 3;
  }
  return from * 4 + dir;
}

uint64_t& Noc::channel_clock(int idx) {
  if (channel_touched_[idx] == 0) {
    channel_touched_[idx] = 1;
    channel_touched_list_.push_back(static_cast<uint32_t>(idx));
  }
  return channel_last_arrival_[idx];
}

uint64_t& Noc::link_clock(int idx) {
  if (link_touched_[idx] == 0) {
    link_touched_[idx] = 1;
    link_touched_list_.push_back(static_cast<uint32_t>(idx));
  }
  return link_free_[idx];
}

uint64_t Noc::deliver(uint64_t now, int src, int dst, MemModule& dst_mod,
                      size_t bytes, Delivery* info) {
  PMC_CHECK(bytes > 0);
  const uint64_t words = (bytes + 3) / 4;
  const uint64_t serial = timing_.noc_per_word * words;
  uint64_t head;
  uint64_t link_stall = 0;
  if (model_ == NocModel::kFlat) {
    head = now + timing_.noc_base +
           static_cast<uint64_t>(timing_.noc_per_hop) * hops(src, dst) +
           serial;
  } else {
    // Wormhole-style X-Y route: the head claims each directed link in turn.
    // A busy link stalls the head; a stall longer than the next hop's input
    // buffer can absorb backs the tail up into the upstream link, keeping it
    // busy for other traffic (finite-buffer backpressure).
    uint64_t t = now + timing_.noc_base;
    const uint64_t buffer_cycles =
        static_cast<uint64_t>(buffer_words_) * timing_.noc_per_word;
    int cur = src;
    int upstream = -1;
    while (cur != dst) {
      const int next = next_hop(cur, dst);
      const int li = link_index(cur, next);
      uint64_t& free_at = link_clock(li);
      const uint64_t start = std::max(t, free_at);
      const uint64_t wait = start - t;
      if (wait > buffer_cycles && upstream >= 0) {
        uint64_t& up = link_clock(upstream);
        up = std::max(up, start - buffer_cycles);
      }
      link_stall += wait;
      // The link stays claimed while the body streams through.
      free_at = start + std::max<uint64_t>(serial, 1);
      t = start + timing_.noc_per_hop;
      upstream = li;
      cur = next;
    }
    head = t + serial;  // tail drains into the destination interface
  }
  // FIFO per channel: a later packet on the same (src, dst) pair never
  // overtakes an earlier one.
  uint64_t& last = channel_clock(index(src, dst));
  uint64_t arrival = std::max(head, last + 1);
  // Destination write port serializes incoming packets.
  const uint64_t port_start = dst_mod.reserve_port(arrival, words);
  const uint64_t port_wait = port_start - arrival;
  arrival = port_start + words;
  last = arrival;
  ++packets_;
  bytes_ += bytes;
  if (model_ == NocModel::kMesh) {
    link_stall_hist_.observe(static_cast<double>(link_stall));
    if (link_stall != 0) {
      link_stall_cycles_ += link_stall;
      ++stalled_packets_;
    }
  }
  if (info != nullptr) {
    info->arrival = arrival;
    info->link_stall = link_stall;
    info->port_wait = port_wait;
  }
  return arrival;
}

Noc::Snapshot Noc::snapshot() const {
  Snapshot s;
  s.channels.reserve(channel_touched_list_.size());
  for (uint32_t i : channel_touched_list_) {
    s.channels.emplace_back(i, channel_last_arrival_[i]);
  }
  s.links.reserve(link_touched_list_.size());
  for (uint32_t i : link_touched_list_) {
    s.links.emplace_back(i, link_free_[i]);
  }
  s.packets = packets_;
  s.bytes = bytes_;
  s.link_stall_cycles = link_stall_cycles_;
  s.stalled_packets = stalled_packets_;
  s.link_stall_hist = link_stall_hist_;
  return s;
}

void Noc::restore(const Snapshot& s) {
  for (uint32_t i : channel_touched_list_) {
    channel_last_arrival_[i] = 0;
    channel_touched_[i] = 0;
  }
  channel_touched_list_.clear();
  for (const auto& [i, v] : s.channels) {
    channel_last_arrival_[i] = v;
    channel_touched_[i] = 1;
    channel_touched_list_.push_back(i);
  }
  for (uint32_t i : link_touched_list_) {
    link_free_[i] = 0;
    link_touched_[i] = 0;
  }
  link_touched_list_.clear();
  for (const auto& [i, v] : s.links) {
    link_free_[i] = v;
    link_touched_[i] = 1;
    link_touched_list_.push_back(i);
  }
  packets_ = s.packets;
  bytes_ = s.bytes;
  link_stall_cycles_ = s.link_stall_cycles;
  stalled_packets_ = s.stalled_packets;
  link_stall_hist_ = s.link_stall_hist;
}

}  // namespace pmc::sim
