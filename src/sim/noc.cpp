#include "sim/noc.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"

namespace pmc::sim {

Noc::Noc(int num_tiles, int mesh_width, const TimingConfig& timing)
    : num_tiles_(num_tiles), mesh_width_(mesh_width), timing_(timing) {
  PMC_CHECK(num_tiles >= 1);
  PMC_CHECK(mesh_width >= 1);
  channel_last_arrival_.assign(
      static_cast<size_t>(num_tiles_) * num_tiles_, 0);
}

uint32_t Noc::hops(int from, int to) const {
  PMC_CHECK(from >= 0 && from < num_tiles_ && to >= 0 && to < num_tiles_);
  const int fx = from % mesh_width_, fy = from / mesh_width_;
  const int tx = to % mesh_width_, ty = to / mesh_width_;
  return static_cast<uint32_t>(std::abs(fx - tx) + std::abs(fy - ty));
}

uint64_t Noc::deliver(uint64_t now, int src, int dst, MemModule& dst_mod,
                      size_t bytes) {
  PMC_CHECK(bytes > 0);
  const uint64_t words = (bytes + 3) / 4;
  const uint64_t flight = timing_.noc_base +
                          static_cast<uint64_t>(timing_.noc_per_hop) *
                              hops(src, dst) +
                          timing_.noc_per_word * words;
  uint64_t arrival = now + flight;
  // FIFO per channel: a later packet on the same (src, dst) pair never
  // overtakes an earlier one.
  uint64_t& last = channel_last_arrival_[index(src, dst)];
  arrival = std::max(arrival, last + 1);
  // Destination write port serializes incoming packets.
  arrival = dst_mod.reserve_port(arrival, words) + words;
  last = arrival;
  ++packets_;
  bytes_ += bytes;
  return arrival;
}

}  // namespace pmc::sim
