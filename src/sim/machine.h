// The simulated many-core SoC (paper Fig. 7): tiles of {in-order core,
// single-cycle local memory, private write-back D-cache}, a write-only NoC
// between tiles, and SDRAM with an atomic unit behind a shared bus.
//
// Application code runs natively inside Machine::run(), calling the Core
// facade for every simulated memory operation; the deterministic Scheduler
// interleaves cores by simulated time. See DESIGN.md §2 for what this
// substitutes for the paper's FPGA platform.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/cache.h"
#include "sim/mem_module.h"
#include "sim/noc.h"
#include "sim/scheduler.h"
#include "sim/stats.h"
#include "sim/timing.h"

namespace pmc::sim {

/// Address map: tile-local memories, then the shared-L1 cluster SRAM
/// (when configured), then SDRAM.
inline constexpr Addr kLmBase = 0x1000'0000;
inline constexpr Addr kLmStride = 0x0010'0000;  // 1 MiB per tile slot
inline constexpr Addr kClusterBase = 0x3000'0000;
inline constexpr Addr kSdramBase = 0x4000'0000;

/// Classification of explicit accesses for stall attribution (Fig. 8).
enum class MemClass : uint8_t {
  kSharedData,  // application shared objects
  kSync,        // lock words, barrier counters
  kLocal,       // own local memory / scratch-pad data
};

struct MachineConfig {
  int num_cores = 32;
  int mesh_width = 8;
  uint32_t lm_bytes = 256 * 1024;
  uint32_t sdram_bytes = 8 * 1024 * 1024;
  CacheConfig dcache;
  TimingConfig timing;
  WorkloadProfile profile;
  uint64_t max_cycles = UINT64_C(1) << 40;
  /// SWCC mode caches kSharedData SDRAM accesses; no-CC mode bypasses the
  /// cache for them (the Fig. 8 baseline). kSync is always uncached.
  bool cache_shared = true;
  /// NoC pricing model (DESIGN.md §12). kFlat reproduces the original
  /// hop-count formula bit-for-bit; kMesh adds per-directed-link arbitration
  /// with finite hop buffers, and routes SDRAM atomics and uncached posted
  /// writes through the shared port's queue.
  NocModel noc_model = NocModel::kFlat;
  /// Per-hop input buffer depth (words) under kMesh: stalls longer than the
  /// buffer can absorb back up into the upstream link.
  uint32_t noc_buffer_words = 4;
  /// Interleaved shared-L1 cluster SRAM at kClusterBase (MemPool-style,
  /// DESIGN.md §13). 0 disables the module entirely; back-ends that require
  /// it (shl1) fail with a named error on such machines.
  uint32_t cluster_bytes = 128 * 1024;

  /// The 32-core ML605-like preset used throughout the experiments.
  static MachineConfig ml605(int cores = 32);
  /// The Fig. 1 two-memory configuration: 2 cores, SDRAM much slower than
  /// the NoC path, so the data write can lose the race against the flag.
  static MachineConfig fig1_twomem();

  /// Largest mesh width ≤ 8 that divides `cores` exactly — never a ragged
  /// last row (prime counts degrade to a 1-wide column).
  static int derive_mesh_width(int cores);

  /// Parses an INI-style machine description (DESIGN.md §12 has the
  /// grammar): sections [machine] [cache] [timing] [noc] [workload], with
  /// the ml605 preset (or `preset = ...` as the first key) supplying every
  /// default. Unknown sections/keys and malformed values throw
  /// util::CheckFailure naming `origin` and the 1-based line. The result is
  /// validate()d; mesh_width is derived from the core count unless set.
  static MachineConfig from_string(const std::string& text,
                                   const std::string& origin = "<config>");
  /// from_string over the file's contents; errors name the path.
  static MachineConfig from_file(const std::string& path);

  /// Shape checks (core count vs mesh width, address-map capacity, cache
  /// geometry). Machine's constructor enforces this; throws CheckFailure.
  void validate() const;
};

class Machine;

/// Per-core facade handed to application code. Every method charges
/// simulated time; many are handoff points.
class Core {
 public:
  Core(Machine& m, int id) : m_(m), id_(id) {}

  int id() const { return id_; }
  int num_cores() const;
  uint64_t now() const;
  Machine& machine() { return m_; }
  const MachineConfig& config() const;
  CoreStats& stats();

  /// Executes `instructions` straight-line instructions: busy time plus the
  /// statistical instruction-fetch and private-data stall model.
  void compute(uint64_t instructions);
  /// Advances time without executing (backoff/sleep).
  void idle(uint64_t cycles);

  // -- Data access (routed by address) --------------------------------------
  uint8_t load_u8(Addr a, MemClass c);
  uint32_t load_u32(Addr a, MemClass c);
  void store_u8(Addr a, uint8_t v, MemClass c);
  void store_u32(Addr a, uint32_t v, MemClass c);
  void read_block(Addr a, void* out, size_t n, MemClass c);
  void write_block(Addr a, const void* data, size_t n, MemClass c);

  /// Writes into another tile's local memory over the write-only NoC;
  /// returns the packet's arrival time. Reading another tile's memory is
  /// impossible (checked).
  uint64_t remote_write(int dst_tile, Addr dst_addr, const void* data,
                        size_t n);

  /// Pipelined block transfer from/to SDRAM (DMA-style: one setup round trip
  /// plus dma_per_word per word) — the cost model for object staging.
  void dma_read(Addr src, void* out, size_t n, MemClass c);
  /// Returns the time the written bytes become visible in SDRAM.
  uint64_t dma_write(Addr dst, const void* data, size_t n, MemClass c);

  /// Explicitly charges stall cycles to a Fig. 8 bucket (used by the runtime
  /// back-ends for protocol waits like DSM object handoff).
  enum class StallBucket : uint8_t { kSharedRead, kSyncRead, kWrite, kFlush };
  void charge_stall(uint64_t cycles, StallBucket bucket);
  /// Stalls until simulated time t (no-op if already past).
  void wait_until(uint64_t t, StallBucket bucket);

  // -- Cache maintenance (own D-cache, SDRAM range) --------------------------
  /// Writeback+invalidate; returns the latest SDRAM arrival time of the
  /// posted writebacks (0 when nothing was dirty).
  uint64_t cache_wbinval(Addr a, size_t n);
  void cache_inval(Addr a, size_t n);

  // -- Atomic unit at the SDRAM controller ----------------------------------
  uint32_t atomic_swap(Addr a, uint32_t value);
  uint32_t atomic_add(Addr a, uint32_t delta);
  uint32_t atomic_cas(Addr a, uint32_t expected, uint32_t desired);

  /// Polls until pred() returns true. pred must itself perform costed
  /// simulated loads; exponential idle backoff bounds host overhead while
  /// staying deterministic.
  template <typename Pred>
  void spin_until(Pred&& pred, uint32_t backoff_start = 2,
                  uint32_t backoff_max = 64) {
    uint32_t backoff = backoff_start;
    while (!pred()) {
      idle(backoff);
      backoff = backoff < backoff_max ? backoff * 2 : backoff_max;
    }
  }

 private:
  friend class Machine;
  void charge(uint64_t busy, uint64_t stall, uint64_t CoreStats::*bucket);
  /// Records one event ending at now() (caller checks Machine::tracing()),
  /// then samples the CoreStats counter tracks if a sample is due.
  void trace(obs::EventKind kind, uint64_t t0, Addr addr = 0, uint32_t len = 0,
             uint16_t aux = 0, uint64_t arg = 0);
  void sample_counters();
  /// Under the mesh contention model: cycles queued to claim the shared
  /// SDRAM port for `occupancy` cycles of service. Always 0 under kFlat,
  /// which keeps the original fixed-cost paths bit-identical.
  uint64_t sdram_port_wait(uint64_t occupancy);
  uint64_t CoreStats::*read_bucket(MemClass c) const;
  void cached_access(Addr a, void* rd_out, const void* wr_data, size_t n);
  void uncached_access(Addr a, void* rd_out, const void* wr_data, size_t n,
                       MemClass c);
  void cluster_access(Addr a, void* rd_out, const void* wr_data, size_t n,
                      MemClass c);
  void access(Addr a, void* rd_out, const void* wr_data, size_t n, MemClass c);

  Machine& m_;
  int id_;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& cfg);

  const MachineConfig& config() const { return cfg_; }
  int num_cores() const { return cfg_.num_cores; }

  /// Runs body(core) on every core. A Machine instance runs once —
  /// except in snapshot mode, where restore() + resume() re-run suffixes.
  void run(const std::function<void(Core&)>& body);

  /// Installs a scheduling-decision override (see sim/scheduler.h); must be
  /// called before run() (in snapshot mode: may be swapped between
  /// restore()/resume() cycles). Used by the schedule-exploration engine
  /// (src/explore/) to model-check interleavings. Not owned.
  void set_schedule_policy(SchedulePolicy* policy) {
    sched_.set_policy(policy);
  }

  /// Attaches an event recorder (DESIGN.md §11); nullptr detaches. Not
  /// owned. While attached and armed, every memory/compute/NoC path records
  /// cycle-stamped events; detached, each instrumentation point is one
  /// predictable branch. Recorder contents deep-copy through snapshot()/
  /// restore() (abandoned branches roll back) but are excluded from
  /// digest().
  void set_trace_recorder(obs::TraceRecorder* trace) {
    trace_ = trace;
    sched_.set_trace(trace);
  }
  obs::TraceRecorder* trace_recorder() const { return trace_; }
  /// True when events should be recorded (attached and armed).
  bool tracing() const { return trace_ != nullptr && trace_->armed(); }

  // -- Checkpointing (DESIGN.md §10) ----------------------------------------

  /// Switches the scheduler to fiber execution so snapshot()/restore()/
  /// resume() work. Must be called before run(); requires
  /// Scheduler::fibers_supported().
  void enable_snapshots() { sched_.set_fiber_mode(true); }
  bool snapshots_enabled() const { return sched_.fiber_mode(); }

  /// Checkpoint callback, forwarded to the scheduler (fiber mode only).
  void set_checkpoint_hook(CheckpointHook* hook) {
    sched_.set_checkpoint_hook(hook);
  }

  /// Declares `n` bytes at `p` as machine-coupled mutable state (runtime
  /// back-end metadata, lock bookkeeping, oracle buffers): snapshots copy
  /// the bytes, restore() writes them back. All registrations must precede
  /// the first snapshot; `p` must stay valid and fixed for the Machine's
  /// lifetime.
  void register_state(void* p, size_t n);

  /// Deep copy of every piece of mutable simulator state. Restorable only
  /// into the same Machine instance (fiber stacks are address-dependent).
  struct Snapshot {
    Scheduler::Snapshot sched;
    std::vector<Cache::Snapshot> caches;                  // per core
    std::vector<std::pair<uint64_t, uint64_t>> core_acc;  // imiss, priv
    std::vector<CoreStats> stats;
    MemModule::Snapshot sdram;
    std::vector<MemModule::Snapshot> lms;
    MemModule::Snapshot cluster;  // default-constructed when not configured
    Noc::Snapshot noc;
    std::vector<std::vector<uint8_t>> regions;  // registered-state bytes
    obs::TraceRecorder::Snapshot trace;  // only when a recorder is attached
  };
  Snapshot snapshot() const;
  void restore(const Snapshot& s);
  /// Continues a restored (mid-run) machine to completion; rethrows like
  /// run(). The body passed to the original run() is reused.
  void resume() { sched_.resume(); }

  /// Order-insensitive fingerprint of a snapshot's deterministic content
  /// (stack bytes, memory pages, stats, clocks; not host pointers), for
  /// snapshot-idempotence checks.
  static uint64_t digest(const Snapshot& s);

  MemModule& sdram() { return sdram_; }
  MemModule& local_mem(int tile) { return *lms_[tile]; }
  /// The shared-L1 cluster SRAM, or nullptr when cluster_bytes == 0.
  MemModule* cluster() { return cluster_.get(); }
  Noc& noc() { return noc_; }
  /// Folds interconnect/port contention telemetry into `reg` (DESIGN.md
  /// §12): noc.* counters plus the link-stall histogram, and port wait
  /// histograms — "port.wait" merged across every module, "port.sdram.wait"
  /// for the shared SDRAM port alone.
  void export_metrics(obs::MetricsRegistry& reg) const;
  Addr lm_base(int tile) const;
  /// Which tile's local memory contains `a`, or -1.
  int tile_of(Addr a) const;

  const CoreStats& stats(int core) const { return stats_[core]; }
  CoreStats stats_sum() const;
  /// Drains in-flight writes and fingerprints all memory + clocks
  /// (determinism checks). Only valid after run().
  uint64_t state_hash();

  /// Host-side backdoor for initializing memory before run() (no timing).
  void poke(Addr a, const void* data, size_t n);
  void peek(Addr a, void* out, size_t n);

 private:
  friend class Core;
  struct CoreState {
    Cache dcache;
    uint64_t imiss_acc = 0;
    uint64_t priv_acc = 0;
    // Heap-owning scratch for Core methods. Locals like these may not live
    // on the (fiber) stack across a scheduler yield: restore() memcpys stack
    // bytes, which would resurrect stale heap pointers. Content is dead at
    // every yield, so the buffers themselves need no snapshotting.
    Cache::Victim victim_scratch;
    std::vector<uint8_t> wb_scratch;
    explicit CoreState(const CacheConfig& c) : dcache(c) {}
  };
  MemModule& module_for(Addr a, size_t n);

  MachineConfig cfg_;
  Scheduler sched_;
  obs::TraceRecorder* trace_ = nullptr;  // not owned; nullptr = detached
  std::vector<std::unique_ptr<MemModule>> lms_;
  MemModule sdram_;
  std::unique_ptr<MemModule> cluster_;  // nullptr when cluster_bytes == 0
  Noc noc_;
  std::vector<CoreStats> stats_;
  std::vector<std::unique_ptr<CoreState>> cores_;
  std::vector<std::pair<void*, size_t>> regions_;
  std::function<void(Core&)> body_;  // persists for restored-fiber re-entry
  bool ran_ = false;
};

}  // namespace pmc::sim
