// A memory module: byte storage plus a queue of in-flight writes.
//
// Writes posted over an interconnect carry an arrival time; a read at time t
// first applies every pending write with arrival ≤ t (in (arrival, seq)
// order). Because the scheduler only runs the minimum-time core, all posts
// are made before any read that could observe them — so lazy draining is
// exact. In-flight writes are what make the Fig. 1 reordering observable:
// two writes to modules with different latencies become visible out of
// issue order.
#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace pmc::sim {

using Addr = uint32_t;

class MemModule {
 public:
  MemModule(std::string name, Addr base, size_t size);

  const std::string& name() const { return name_; }
  Addr base() const { return base_; }
  size_t size() const { return store_.size(); }
  bool contains(Addr a, size_t n) const {
    return a >= base_ && a + n <= base_ + store_.size();
  }

  /// Immediate read at time t (local bus or arrived request).
  void read(uint64_t t, Addr a, void* out, size_t n);
  /// Immediate write at time t (local bus): earlier in-flight writes are
  /// applied first so a same-address race resolves by arrival order.
  void write(uint64_t t, Addr a, const void* data, size_t n);
  /// A write arriving over an interconnect at time `arrival`.
  void post_write(uint64_t arrival, Addr a, const void* data, size_t n);

  /// Atomic read-modify-write at time t (the hardware atomic unit port).
  uint32_t atomic_swap_u32(uint64_t t, Addr a, uint32_t value);
  uint32_t atomic_add_u32(uint64_t t, Addr a, uint32_t delta);
  /// Compare-and-swap; returns the old value (success iff old == expected).
  uint32_t atomic_cas_u32(uint64_t t, Addr a, uint32_t expected,
                          uint32_t desired);

  /// Port serialization for incoming interconnect traffic: returns the
  /// earliest start ≥ `earliest` and occupies the port for `occupancy`.
  uint64_t reserve_port(uint64_t earliest, uint64_t occupancy);

  /// Queueing telemetry for the write port, maintained by reserve_port()
  /// (DESIGN.md §12). Accounting identity: wait_cycles is the exact sum of
  /// per-reservation (start − earliest) and busy_cycles the sum of
  /// occupancies, so merged exports reconcile against the counters.
  struct PortStats {
    uint64_t reservations = 0;
    uint64_t wait_cycles = 0;
    uint64_t busy_cycles = 0;
    obs::Histogram wait_hist;  ///< distribution of per-reservation waits
  };
  const PortStats& port_stats() const { return port_stats_; }

  size_t pending_writes() const { return pending_.size(); }
  /// Applies every pending write (end of simulation), regardless of time.
  void drain_all();
  /// FNV-1a hash of the entire storage (determinism checks).
  uint64_t content_hash() const;

  /// Checkpoint granule for snapshot(): contents are saved per 256-byte
  /// page, and only pages some write ever dirtied — the store starts
  /// all-zero, so untouched pages need no bytes.
  static constexpr uint32_t kPageBytes = 256;

 private:
  struct Pending {
    uint64_t arrival;
    uint64_t seq;
    Addr addr;
    std::vector<uint8_t> data;
    bool operator>(const Pending& o) const {
      return arrival != o.arrival ? arrival > o.arrival : seq > o.seq;
    }
  };
  using PendingQueue =
      std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>;

 public:
  /// Deep copy of module state: dirtied page contents, the in-flight write
  /// queue, and port/sequence clocks (DESIGN.md §10).
  struct Snapshot {
    std::vector<uint32_t> pages;      // dirtied page indices, first-touch order
    std::vector<uint8_t> page_bytes;  // pages.size() * kPageBytes, same order
    PendingQueue pending;
    uint64_t next_seq = 0;
    uint64_t port_free = 0;
    PortStats port_stats;
  };
  Snapshot snapshot() const;
  /// Restores to the snapshot from *any* later state of this module: pages
  /// dirtied since (even on another explored branch) are re-zeroed first,
  /// then the saved pages are applied.
  void restore(const Snapshot& s);

 private:
  void apply_pending(uint64_t t);
  uint8_t* at(Addr a, size_t n);
  /// Marks [a, a+n) dirty for snapshotting. Every mutation funnels through
  /// here — including lazily-applied posted writes at their apply time.
  void mark_write(Addr a, size_t n);

  std::string name_;
  Addr base_;
  std::vector<uint8_t> store_;
  PendingQueue pending_;
  uint64_t next_seq_ = 0;
  uint64_t port_free_ = 0;
  PortStats port_stats_;
  std::vector<uint8_t> touched_;        // one flag per page
  std::vector<uint32_t> touched_list_;  // set pages, first-touch order
};

}  // namespace pmc::sim
