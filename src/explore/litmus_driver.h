// The litmus workload of the checking stack: which model-level tests can
// run on the §V-A runtime at all, and the seeded protocol faults the
// self-test modes inject. The target that actually executes a litmus test
// under the dual oracle is LitmusTarget (explore/check.h); this header is
// the thin litmus-specific layer on top of it (DESIGN.md §6/§9).
//
// Only annotation-disciplined tests can run on the runtime (every store
// inside an exclusive section of its location, poll loops outside sections);
// annotatable() filters the library. Poll loads map to entry_ro/exit_ro of a
// word-sized object, which takes no lock — a plain read, as in the model.
#pragma once

#include <vector>

#include "explore/check.h"
#include "model/litmus.h"
#include "runtime/program.h"

namespace pmc::explore {

/// True when `test` obeys the §V-A annotation discipline the back-ends
/// require: stores only inside a properly nested (LIFO) exclusive section of
/// their location, releases matching the innermost open section, and poll
/// loops (load_until) outside any section of their location.
bool annotatable(const model::LitmusTest& test);

/// The annotatable subset of model::litmus::all_tests().
std::vector<model::LitmusTest> annotatable_tests();

/// True when `target`'s registry descriptor declares a seeded fault (every
/// back-end with a coherence action to omit; the no-CC baseline has none).
bool has_seeded_fault(rt::Target target);
/// The back-end's first registered seeded fault — e.g. SWCC forgetting the
/// exit writeback, DSM the ownership transfer, SPM the scratch-pad
/// copy-back, RegC the batched region write-back, shl1 the lock itself.
rt::FaultInjection seeded_fault(rt::Target target);
/// Every registered back-end's seedable faults at once (each back-end reads
/// only its own names) — what the fuzzer's self-test mode injects.
rt::FaultInjection all_seeded_faults();

/// The seeded-bug scenario: fig4_exclusive (a reader and a writer racing for
/// the same lock) with seeded_fault(target) injected. Under the default
/// min-time schedule the fault stays invisible (for shl1's skipped lock the
/// skewed fig4 variant provides that cover); only a reordered schedule
/// exposes the stale read or racing store — which the session must find.
LitmusTarget seeded_bug_check(rt::Target target);

}  // namespace pmc::explore
