// Runs model-level litmus tests as annotated Env programs on the Table II
// back-ends, one scheduler interleaving at a time, with a two-part oracle:
//
//  1. the recorded object-granularity trace must satisfy the Definition 12
//     validator (the formal model as a per-schedule checker), and
//  2. the final litmus registers must be inside the set of outcomes the
//     model itself reaches for the test in program-order issue mode (the
//     litmus enumerator as an end-to-end oracle).
//
// Together with the Explorer this turns the single-trace validation of
// tests/runtime/ into a model checker over interleavings (DESIGN.md §6).
//
// Only annotation-disciplined tests can run on the runtime (every store
// inside an exclusive section of its location, poll loops outside sections);
// annotatable() filters the library. Poll loads map to entry_ro/exit_ro of a
// word-sized object, which takes no lock — a plain read, as in the model.
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "explore/explorer.h"
#include "model/litmus.h"
#include "runtime/program.h"

namespace pmc::explore {

/// True when `test` obeys the §V-A annotation discipline the back-ends
/// require: stores only inside a properly nested (LIFO) exclusive section of
/// their location, releases matching the innermost open section, and poll
/// loops (load_until) outside any section of their location.
bool annotatable(const model::LitmusTest& test);

/// The annotatable subset of model::litmus::all_tests().
std::vector<model::LitmusTest> annotatable_tests();

/// One (litmus test, back-end) model-checking target. Computes the allowed
/// outcome set once; run() executes a single schedule on a fresh Program.
class LitmusCheck {
 public:
  LitmusCheck(model::LitmusTest test, rt::Target target,
              rt::FaultInjection faults = {});

  const model::LitmusTest& test() const { return test_; }
  rt::Target target() const { return target_; }
  size_t allowed_outcomes() const { return allowed_.size(); }
  /// DSM runs with eager release iff the test polls: a lazy-release replica
  /// is never refreshed without an acquire, so an unsynchronized poll loop
  /// would spin forever (the "slow reads" the paper permits, §IV-D).
  bool dsm_eager() const { return has_poll_; }

  /// Executes one schedule; exceptions (watchdog, discipline violations)
  /// are reported as failing outcomes, not propagated.
  RunOutcome run(ReplayPolicy& policy) const;

  /// Adapter for Explorer.
  ScheduleRunner runner() const {
    return [this](ReplayPolicy& p) { return run(p); };
  }

 private:
  model::LitmusTest test_;
  rt::Target target_;
  rt::FaultInjection faults_;
  bool has_poll_ = false;
  std::set<model::Outcome> allowed_;
};

/// True when `target` has a seedable protocol fault (all back-ends with
/// coherence actions to omit; the no-CC baseline has none).
bool has_seeded_fault(rt::Target target);
/// The per-back-end "missing flush" fault: SWCC forgets the exit writeback,
/// DSM the ownership transfer, SPM the scratch-pad copy-back.
rt::FaultInjection seeded_fault(rt::Target target);
/// Every back-end's seedable fault at once (each back-end reads only its own
/// flag) — what the fuzzer's self-test mode injects.
rt::FaultInjection all_seeded_faults();

/// The seeded-bug scenario: fig4_exclusive (a reader and a writer racing for
/// the same lock) with seeded_fault(target) injected. Under the default
/// min-time schedule the reader wins the lock first and the missing flush is
/// never observed; only a reordered schedule (writer first) exposes the
/// stale read — which the explorer must find.
LitmusCheck seeded_bug_check(rt::Target target);

}  // namespace pmc::explore
