#include "explore/litmus_driver.h"

#include <algorithm>
#include <exception>

#include "model/litmus_library.h"
#include "util/check.h"
#include "util/hash.h"

namespace pmc::explore {

namespace {

bool contains_poll(const model::LitmusTest& test) {
  for (const auto& th : test.threads) {
    for (const auto& op : th.ops) {
      if (op.kind == model::LitmusOp::Kind::kLoadUntil) return true;
    }
  }
  return false;
}

}  // namespace

bool annotatable(const model::LitmusTest& test) {
  using Kind = model::LitmusOp::Kind;
  for (const auto& th : test.threads) {
    std::vector<model::LocId> open;  // LIFO stack of exclusive sections
    auto is_open = [&](model::LocId v) {
      return std::find(open.begin(), open.end(), v) != open.end();
    };
    for (const auto& op : th.ops) {
      switch (op.kind) {
        case Kind::kAcquire:
          if (is_open(op.loc)) return false;  // double entry
          open.push_back(op.loc);
          break;
        case Kind::kRelease:
          if (open.empty() || open.back() != op.loc) return false;  // LIFO
          open.pop_back();
          break;
        case Kind::kStore:
          if (!is_open(op.loc)) return false;  // naked write
          break;
        case Kind::kLoadUntil:
          if (is_open(op.loc)) return false;  // would poll a held section
          break;
        case Kind::kLoad:
        case Kind::kFence:
          break;  // loads outside sections are wrapped in entry_ro/exit_ro
      }
    }
    if (!open.empty()) return false;  // section left open
  }
  return true;
}

std::vector<model::LitmusTest> annotatable_tests() {
  std::vector<model::LitmusTest> out;
  for (auto& t : model::litmus::all_tests()) {
    if (annotatable(t)) out.push_back(std::move(t));
  }
  return out;
}

LitmusCheck::LitmusCheck(model::LitmusTest test, rt::Target target,
                         rt::FaultInjection faults)
    : test_(std::move(test)), target_(target), faults_(faults) {
  PMC_CHECK_MSG(annotatable(test_),
                test_.name << " is not annotation-disciplined; the back-ends "
                              "only define behavior for §V-A programs");
  PMC_CHECK_MSG(rt::is_sim(target_), "exploration drives simulated targets");
  has_poll_ = contains_poll(test_);
  // The in-order simulated cores issue in program order, so the
  // program-order enumeration is the exact end-to-end oracle.
  allowed_ = model::explore(test_).outcomes;
  PMC_CHECK_MSG(!allowed_.empty(), test_.name << " has no completed path");
}

RunOutcome LitmusCheck::run(ReplayPolicy& policy) const {
  using Kind = model::LitmusOp::Kind;
  RunOutcome out;
  try {
    rt::ProgramOptions opts;
    opts.target = target_;
    opts.cores = static_cast<int>(test_.threads.size());
    opts.machine = sim::MachineConfig::ml605(opts.cores);
    opts.machine.lm_bytes = 32 * 1024;
    opts.machine.sdram_bytes = 256 * 1024;
    opts.machine.max_cycles = UINT64_C(50'000'000);
    opts.lock_capacity = 16;
    opts.validate = true;
    opts.faults = faults_;
    opts.policy.dsm_eager_release = has_poll_;
    opts.schedule_policy = &policy;
    rt::Program prog(opts);

    std::vector<rt::ObjId> objs;
    for (int v = 0; v < test_.num_locs; ++v) {
      const uint32_t init =
          v < static_cast<int>(test_.initial.size())
              ? static_cast<uint32_t>(test_.initial[static_cast<size_t>(v)])
              : 0;
      objs.push_back(prog.create_typed<uint32_t>(
          init, rt::Placement::kReplicated, "v" + std::to_string(v)));
    }
    std::vector<uint64_t> regs(static_cast<size_t>(test_.num_regs), 0);

    prog.run([&](rt::Env& env) {
      const auto& ops =
          test_.threads[static_cast<size_t>(env.id())].ops;
      std::vector<model::LocId> open;
      auto is_open = [&](model::LocId v) {
        return std::find(open.begin(), open.end(), v) != open.end();
      };
      for (const auto& op : ops) {
        const rt::ObjId obj =
            op.loc >= 0 ? objs[static_cast<size_t>(op.loc)] : -1;
        switch (op.kind) {
          case Kind::kAcquire:
            env.entry_x(obj);
            open.push_back(op.loc);
            break;
          case Kind::kRelease:
            env.exit_x(obj);
            open.pop_back();
            break;
          case Kind::kStore:
            env.st<uint32_t>(obj, 0, static_cast<uint32_t>(op.value));
            break;
          case Kind::kLoad: {
            uint32_t v;
            if (is_open(op.loc)) {
              v = env.ld<uint32_t>(obj);
            } else {
              env.entry_ro(obj);
              v = env.ld<uint32_t>(obj);
              env.exit_ro(obj);
            }
            if (op.reg >= 0) regs[static_cast<size_t>(op.reg)] = v;
            break;
          }
          case Kind::kLoadUntil: {
            uint32_t v;
            do {
              env.entry_ro(obj);
              v = env.ld<uint32_t>(obj);
              env.exit_ro(obj);
            } while (v != static_cast<uint32_t>(op.value));
            break;
          }
          case Kind::kFence:
            env.fence();
            break;
        }
      }
    });

    uint64_t h = util::kFnvOffset;
    for (const model::TraceEvent& e : prog.trace()) {
      h = util::hash_combine(h, static_cast<uint64_t>(e.kind));
      h = util::hash_combine(h, static_cast<uint64_t>(e.proc));
      h = util::hash_combine(h, static_cast<uint64_t>(e.loc));
      h = util::hash_combine(h, e.value);
    }
    for (const uint64_t r : regs) h = util::hash_combine(h, r);
    out.trace_hash = h;

    if (!prog.validator()->ok()) {
      out.ok = false;
      out.message = "Definition 12 violation: " +
                    prog.validator()->first_violation();
      return out;
    }
    if (allowed_.find(regs) == allowed_.end()) {
      out.ok = false;
      out.message = "outcome {";
      for (size_t i = 0; i < regs.size(); ++i) {
        if (i) out.message += ',';
        out.message += std::to_string(regs[i]);
      }
      out.message += "} is not reachable in the model";
      return out;
    }
  } catch (const std::exception& e) {
    out.ok = false;
    out.message = e.what();
  }
  return out;
}

bool has_seeded_fault(rt::Target target) {
  return target == rt::Target::kSWCC || target == rt::Target::kDSM ||
         target == rt::Target::kSPM;
}

rt::FaultInjection seeded_fault(rt::Target target) {
  rt::FaultInjection f;
  switch (target) {
    case rt::Target::kSWCC: f.swcc_skip_exit_writeback = true; break;
    case rt::Target::kDSM: f.dsm_skip_transfer = true; break;
    case rt::Target::kSPM: f.spm_skip_copy_back = true; break;
    default:
      PMC_CHECK_MSG(false, rt::to_string(target)
                               << " has no seedable protocol fault");
  }
  return f;
}

rt::FaultInjection all_seeded_faults() {
  rt::FaultInjection f;
  f.swcc_skip_exit_writeback = true;
  f.dsm_skip_transfer = true;
  f.spm_skip_copy_back = true;
  return f;
}

LitmusCheck seeded_bug_check(rt::Target target) {
  return LitmusCheck(model::litmus::fig4_exclusive(), target,
                     seeded_fault(target));
}

}  // namespace pmc::explore
