#include "explore/litmus_driver.h"

#include <algorithm>

#include "model/litmus_library.h"
#include "util/check.h"

namespace pmc::explore {

bool annotatable(const model::LitmusTest& test) {
  using Kind = model::LitmusOp::Kind;
  for (const auto& th : test.threads) {
    std::vector<model::LocId> open;  // LIFO stack of exclusive sections
    auto is_open = [&](model::LocId v) {
      return std::find(open.begin(), open.end(), v) != open.end();
    };
    for (const auto& op : th.ops) {
      switch (op.kind) {
        case Kind::kAcquire:
          if (is_open(op.loc)) return false;  // double entry
          open.push_back(op.loc);
          break;
        case Kind::kRelease:
          if (open.empty() || open.back() != op.loc) return false;  // LIFO
          open.pop_back();
          break;
        case Kind::kStore:
          if (!is_open(op.loc)) return false;  // naked write
          break;
        case Kind::kLoadUntil:
          if (is_open(op.loc)) return false;  // would poll a held section
          break;
        case Kind::kLoad:
        case Kind::kFence:
          break;  // loads outside sections are wrapped in entry_ro/exit_ro
      }
    }
    if (!open.empty()) return false;  // section left open
  }
  return true;
}

std::vector<model::LitmusTest> annotatable_tests() {
  std::vector<model::LitmusTest> out;
  for (auto& t : model::litmus::all_tests()) {
    if (annotatable(t)) out.push_back(std::move(t));
  }
  return out;
}

bool has_seeded_fault(rt::Target target) {
  return target == rt::Target::kSWCC || target == rt::Target::kDSM ||
         target == rt::Target::kSPM;
}

rt::FaultInjection seeded_fault(rt::Target target) {
  rt::FaultInjection f;
  switch (target) {
    case rt::Target::kSWCC: f.swcc_skip_exit_writeback = true; break;
    case rt::Target::kDSM: f.dsm_skip_transfer = true; break;
    case rt::Target::kSPM: f.spm_skip_copy_back = true; break;
    default:
      PMC_CHECK_MSG(false, rt::to_string(target)
                               << " has no seedable protocol fault");
  }
  return f;
}

rt::FaultInjection all_seeded_faults() {
  rt::FaultInjection f;
  f.swcc_skip_exit_writeback = true;
  f.dsm_skip_transfer = true;
  f.spm_skip_copy_back = true;
  return f;
}

LitmusTarget seeded_bug_check(rt::Target target) {
  return LitmusTarget(model::litmus::fig4_exclusive(), target,
                      seeded_fault(target));
}

}  // namespace pmc::explore
