#include "explore/litmus_driver.h"

#include <algorithm>

#include "model/litmus_library.h"
#include "runtime/backends/registry.h"
#include "util/check.h"

namespace pmc::explore {

bool annotatable(const model::LitmusTest& test) {
  using Kind = model::LitmusOp::Kind;
  for (const auto& th : test.threads) {
    std::vector<model::LocId> open;  // LIFO stack of exclusive sections
    auto is_open = [&](model::LocId v) {
      return std::find(open.begin(), open.end(), v) != open.end();
    };
    for (const auto& op : th.ops) {
      switch (op.kind) {
        case Kind::kAcquire:
          if (is_open(op.loc)) return false;  // double entry
          open.push_back(op.loc);
          break;
        case Kind::kRelease:
          if (open.empty() || open.back() != op.loc) return false;  // LIFO
          open.pop_back();
          break;
        case Kind::kStore:
          if (!is_open(op.loc)) return false;  // naked write
          break;
        case Kind::kLoadUntil:
          if (is_open(op.loc)) return false;  // would poll a held section
          break;
        case Kind::kLoad:
        case Kind::kFence:
          break;  // loads outside sections are wrapped in entry_ro/exit_ro
      }
    }
    if (!open.empty()) return false;  // section left open
  }
  return true;
}

std::vector<model::LitmusTest> annotatable_tests() {
  std::vector<model::LitmusTest> out;
  for (auto& t : model::litmus::all_tests()) {
    if (annotatable(t)) out.push_back(std::move(t));
  }
  return out;
}

bool has_seeded_fault(rt::Target target) {
  return rt::is_sim(target) &&
         !rt::descriptor(rt::backend_kind(target)).faults.empty();
}

rt::FaultInjection seeded_fault(rt::Target target) {
  const rt::BackendDescriptor& d = rt::descriptor(rt::backend_kind(target));
  PMC_CHECK_MSG(!d.faults.empty(),
                rt::to_string(target) << " has no seedable protocol fault");
  return rt::FaultInjection::one(d.faults.front());
}

rt::FaultInjection all_seeded_faults() {
  rt::FaultInjection f;
  for (const rt::BackendDescriptor& d : rt::backend_registry()) {
    for (const std::string& name : d.faults) f.enable(name);
  }
  return f;
}

LitmusTarget seeded_bug_check(rt::Target target) {
  const rt::FaultInjection f = seeded_fault(target);
  // shl1's skipped lock unserializes fig4's sections from cycle 0, so the
  // plain test would expose the bug under the default schedule; the skewed
  // variant delays the writer behind two plain loads, and only an explored
  // preemption moves the reader's load between the two stores.
  const model::LitmusTest test = f.enabled("shl1_skip_lock")
                                     ? model::litmus::fig4_exclusive_skewed()
                                     : model::litmus::fig4_exclusive();
  return LitmusTarget(test, target, f);
}

}  // namespace pmc::explore
