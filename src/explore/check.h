// One front door for model checking heterogeneous workloads (DESIGN.md §9).
//
// A CheckTarget is anything the explorer can model-check: it builds a fresh
// rt::Program (or raw machine) for one back-end, runs it under a
// ReplayPolicy, and judges the run with its own oracle. LitmusTarget drives
// the annotatable litmus subset, GenProgramTarget one generated fuzz
// program, MFifoTarget / TaskCounterTarget the apps-layer kernels at small
// shapes, and FnTarget wraps an ad-hoc runner. Targets that can shrink
// themselves (drop an op, keep the bug) expose shrink candidates, which is
// what turns "minimize the program, then the schedule" into a generic
// session step instead of DiffCheck-private code.
//
// A CheckSession owns the knobs every caller used to wire by hand — the
// ExploreConfig bounds, DPOR mode, engine selection (sequential vs --jobs
// parallel workers) — and produces one canonical CheckReport per target:
// totals, the lexicographically least failing schedule, the shrunk target,
// and the minimized schedule on it. Every field of a CheckReport is a pure
// function of (target, SessionOptions); engine and job count never leak in
// (absent truncation), so reports are byte-identical across engines and job
// counts — the determinism contract tests/explore/ locks.
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "explore/explorer.h"
#include "explore/program_gen.h"
#include "model/litmus.h"
#include "model/trace.h"
#include "obs/trace.h"
#include "runtime/program.h"

namespace pmc::explore {

/// Order-insensitive fingerprint of a recorded model trace: the hash of its
/// happens-before quotient rather than of the raw interleaved event order.
/// Each event hashes its content chained with its direct predecessors in the
/// dependence relation (program order; reads after the last write of their
/// location; writes after that location's last write and every read since;
/// acquire/release after the location's last acquire/release), and the
/// per-event hashes fold commutatively. Two schedules that differ only by
/// commuting independent events — exactly what DPOR prunes — therefore hash
/// identically, which makes `distinct_traces` a true behavior count.
/// Consecutive identical stale reads of one location by one processor (poll
/// loops spinning on an unchanged version) collapse to one event, so the
/// iteration count of a spin loop — pure timing — does not split classes.
uint64_t hb_trace_hash(const std::vector<model::TraceEvent>& trace);

/// The stateful decomposition of one CheckTarget run (DESIGN.md §10): the
/// snapshot engine builds the Program once, runs `body` under checkpointing
/// fibers, and re-judges after every restore/resume — so the three phases
/// that a classic run() interleaves must come apart cleanly.
///
/// Fiber-safety contract: `body` executes on checkpointable fiber stacks
/// whose bytes are memcpy'd on snapshot/restore, so it must keep only
/// trivially-copyable locals alive across runtime calls and reach all
/// run-mutable buffers through the heap-held state that make_spec()
/// allocated (never through captured run()-frame locals — those frames are
/// gone by the first resume). `setup` must register every such buffer the
/// body mutates with the machine's snapshot contract when snapshots are
/// enabled, or restored runs would resume against torn oracle state.
struct StatefulSpec {
  /// Program configuration; `schedule_policy` is filled in per run.
  rt::ProgramOptions opts;
  /// Creates the shared objects / app structures and registers run-mutable
  /// host-side buffers. Called once per Program, before run.
  std::function<void(rt::Program&)> setup;
  /// The per-core workload; same contract as Program::run's body.
  std::function<void(rt::Env&)> body;
  /// Judges one completed run (trace hash + oracle verdict). Called after
  /// every completed run or resume; must be repeatable.
  std::function<void(rt::Program&, RunOutcome&)> judge;
};

/// Executes one schedule of `spec` the stateless way: fresh Program, full
/// run, judge — converting exceptions into failing outcomes. This is the
/// replay engine's (and every stateful_capable target's run()'s) execution
/// path, so both engines run literally the same code and differ only in how
/// the machine state at a decision point is reproduced.
RunOutcome run_spec_once(const StatefulSpec& spec, ReplayPolicy& policy);

/// One checkable unit: builds a fresh program for its back-end on every
/// run() call and judges the run with its own oracle. run() must be safe to
/// invoke concurrently from several threads (share nothing mutable — build
/// the whole world afresh per call) and must report oracle violations and
/// exceptions as failing RunOutcomes, never propagate them.
class CheckTarget {
 public:
  virtual ~CheckTarget() = default;

  /// Stable display name, e.g. "fig4_exclusive@dsm" or "mfifo(d2,r2,i2)@swcc".
  virtual std::string name() const = 0;

  /// Executes one schedule; the ReplayPolicy is the only scheduling input.
  virtual RunOutcome run(ReplayPolicy& policy) const = 0;

  /// Explorer adapter. Borrows `this`: the target must outlive the runner.
  ScheduleRunner runner() const {
    return [this](ReplayPolicy& p) { return run(p); };
  }

  // -- Stateful exploration (optional) ---------------------------------------
  /// True when make_spec() is implemented, i.e. the target's run decomposes
  /// into the StatefulSpec phases and its body honors the fiber-safety
  /// contract. The snapshot engine silently falls back to replay otherwise.
  virtual bool stateful_capable() const { return false; }
  /// The stateful decomposition of run(); only valid when stateful_capable().
  /// Every call allocates fresh oracle state, so concurrent executors built
  /// from separate specs share nothing mutable.
  virtual StatefulSpec make_spec() const;

  // -- Failure minimization (optional) ---------------------------------------
  /// Number of single-step reductions of this target (0: not shrinkable).
  virtual size_t shrink_count() const { return 0; }
  /// The `i`-th reduction candidate (i < shrink_count()), or nullptr when the
  /// reduction is structurally impossible. The candidate is a full target:
  /// the session re-explores it to decide whether the bug survived.
  virtual std::unique_ptr<CheckTarget> shrink(size_t i) const {
    (void)i;
    return nullptr;
  }
  /// Human-readable listing of the target's program (failure reports of
  /// minimized targets); empty when there is nothing useful to print.
  virtual std::string describe() const { return {}; }
};

/// Ad-hoc target wrapping a ScheduleRunner (raw-machine test programs).
class FnTarget final : public CheckTarget {
 public:
  FnTarget(std::string name, ScheduleRunner fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}
  std::string name() const override { return name_; }
  RunOutcome run(ReplayPolicy& policy) const override { return fn_(policy); }

 private:
  std::string name_;
  ScheduleRunner fn_;
};

/// One (litmus test, back-end) target. Computes the model's reachable
/// outcome set once; run() executes a single schedule on a fresh Program
/// under the dual oracle (Definition 12 validator + outcome membership).
class LitmusTarget final : public CheckTarget {
 public:
  /// `machine`, when set, replaces the default exploration machine shape
  /// (timing, cache, NoC contention model — e.g. a MachineConfig::from_file
  /// description); the core count still follows the test. Unset keeps the
  /// compact ml605-derived shape whose reports are the byte-equality
  /// baseline.
  LitmusTarget(model::LitmusTest test, rt::Target target,
               rt::FaultInjection faults = {},
               std::optional<sim::MachineConfig> machine = std::nullopt);

  const model::LitmusTest& test() const { return test_; }
  rt::Target target() const { return target_; }
  size_t allowed_outcomes() const { return allowed_.size(); }
  /// DSM runs with eager release iff the test polls: a lazy-release replica
  /// is never refreshed without an acquire, so an unsynchronized poll loop
  /// would spin forever (the "slow reads" the paper permits, §IV-D).
  bool dsm_eager() const { return has_poll_; }

  std::string name() const override;
  RunOutcome run(ReplayPolicy& policy) const override;
  bool stateful_capable() const override { return true; }
  StatefulSpec make_spec() const override;

 private:
  model::LitmusTest test_;
  rt::Target target_;
  rt::FaultInjection faults_;
  std::optional<sim::MachineConfig> machine_;
  bool has_poll_ = false;
  std::set<model::Outcome> allowed_;
};

/// One (generated fuzz program, back-end) target under the dual oracle
/// (Definition 12 validator + closed-form final state). Shrinkable: each
/// candidate drops one op (dropping a barrier drops it from every thread).
class GenProgramTarget final : public CheckTarget {
 public:
  GenProgramTarget(GenProgram prog, rt::Target target,
                   rt::FaultInjection faults = {});

  const GenProgram& program() const { return prog_; }
  rt::Target target() const { return target_; }

  std::string name() const override;
  RunOutcome run(ReplayPolicy& policy) const override;
  bool stateful_capable() const override { return true; }
  StatefulSpec make_spec() const override;
  size_t shrink_count() const override;
  std::unique_ptr<CheckTarget> shrink(size_t i) const override;
  std::string describe() const override { return to_string(prog_); }

 private:
  GenProgram prog_;
  rt::Target target_;
  rt::FaultInjection faults_;
};

// -- Apps-layer targets (ROADMAP "Apps-layer model checking") ----------------

/// Small explorable shape of the Fig. 9 FIFO: one writer pushing `items`
/// tagged elements through a depth-`depth` buffer to `readers` readers.
struct MFifoShape {
  uint32_t depth = 2;
  int readers = 2;
  uint32_t items = 2;
};

/// apps::MFifo under the broadcast-delivery oracle: every reader must
/// receive every element, in push order, on every explored schedule (plus
/// the Definition 12 validator). Polls both pointer kinds, so DSM runs with
/// eager release like every polling litmus test.
class MFifoTarget final : public CheckTarget {
 public:
  explicit MFifoTarget(rt::Target target, MFifoShape shape = {},
                       rt::FaultInjection faults = {});
  std::string name() const override;
  RunOutcome run(ReplayPolicy& policy) const override;
  bool stateful_capable() const override { return true; }
  StatefulSpec make_spec() const override;

 private:
  rt::Target target_;
  MFifoShape shape_;
  rt::FaultInjection faults_;
};

/// Small explorable shape of the dynamic work-distribution counter:
/// `cores` workers grabbing chunks of `chunk` items from `total`.
struct TaskCounterShape {
  int cores = 2;
  uint32_t total = 3;
  uint32_t chunk = 1;
};

/// apps::TaskCounter under the exact-chunk-partition oracle: the chunks all
/// cores grab must tile [0, total) exactly — no gap, no overlap, no chunk
/// larger than `chunk` — on every explored schedule (plus the validator).
class TaskCounterTarget final : public CheckTarget {
 public:
  explicit TaskCounterTarget(rt::Target target, TaskCounterShape shape = {},
                             rt::FaultInjection faults = {});
  std::string name() const override;
  RunOutcome run(ReplayPolicy& policy) const override;
  bool stateful_capable() const override { return true; }
  StatefulSpec make_spec() const override;

 private:
  rt::Target target_;
  TaskCounterShape shape_;
  rt::FaultInjection faults_;
};

enum class AppKind { kMFifo, kTaskCounter };
const char* to_string(AppKind kind);
/// "mfifo" | "taskcounter"; nullopt on anything else.
std::optional<AppKind> app_kind_from_string(std::string_view text);
std::vector<AppKind> all_app_kinds();
/// The canonical small-shape app target the CLI, bench, and CI drive.
std::unique_ptr<CheckTarget> make_app_target(AppKind kind, rt::Target target,
                                             rt::FaultInjection faults = {});

// -- The session facade ------------------------------------------------------

/// Which exploration engine executes the session's bounded space. The
/// space is a fixed tree either way, so every CheckReport field is engine-
/// and job-count-invariant (absent truncation); kAuto picks the sequential
/// engine for jobs <= 1 and the work-stealing parallel one otherwise.
enum class Engine { kAuto, kSequential, kParallel };

/// How the machine state at each explored decision point is reproduced.
/// kReplay re-executes the whole decision prefix from a fresh Program
/// (stateless, CHESS-style); kSnapshot checkpoints the live machine at
/// branch points and forks restored continuations (stateful, DESIGN.md
/// §10). The schedule tree — and therefore every CheckReport field — is
/// identical either way; kSnapshot only changes how fast a schedule runs.
/// kSnapshot silently falls back to replay for targets that are not
/// stateful_capable() or on builds without fiber support.
enum class EngineState { kReplay, kSnapshot };

const char* to_string(EngineState s);
/// "replay" | "snapshot"; nullopt on anything else.
std::optional<EngineState> engine_state_from_string(std::string_view text);

struct SessionOptions {
  ExploreConfig explore;
  int jobs = 1;
  Engine engine = Engine::kAuto;
  EngineState engine_state = EngineState::kSnapshot;
  /// Snapshot engine: checkpoint every `snapshot_stride`-th decision step
  /// below the horizon, keeping at most `snapshot_pool` non-root snapshots
  /// (LRU-evicted; the root snapshot is pinned — restoring it replaces the
  /// stateless engine's from-scratch re-execution). Stride 8 is the
  /// measured sweet spot on the litmus suite: snapshots are ~10× the cost
  /// of resuming one, so checkpointing every decision step spends more on
  /// captures than the restored prefixes save.
  uint64_t snapshot_stride = 8;
  size_t snapshot_pool = 128;
};

/// Wall-clock and engine observability of one check() call. Everything in
/// here is telemetry: timing-, engine-, and job-count-dependent, and
/// therefore excluded from CheckReport::to_text (which stays byte-identical
/// across engines). to_json() carries it for dashboards and bench harnesses.
struct SessionTelemetry {
  double explore_seconds = 0;
  double schedules_per_sec = 0;
  /// Accepted single-step target reductions during shrinking.
  uint64_t shrink_rounds = 0;
  // Snapshot-engine counters (ExploreReport passthrough).
  uint64_t snapshots_taken = 0;
  uint64_t snapshot_hits = 0;
  uint64_t snapshot_misses = 0;
  /// Successful steals per worker (parallel engine; empty otherwise).
  std::vector<uint64_t> worker_steals;
  /// hb-class discovery curve (only when explore.sample_hb_curve).
  std::vector<uint64_t> hb_curve;
};

/// Canonical result of CheckSession::check. Deliberately excludes the
/// wall-clock-ish schedules_to_first_failure (use CheckSession::explore for
/// it): every field except `telemetry` is deterministic for
/// (target, options).
struct CheckReport {
  std::string target;
  uint64_t explored = 0;
  uint64_t pruned = 0;
  uint64_t dpor_pruned = 0;
  uint64_t distinct_traces = 0;
  uint64_t failing = 0;
  uint64_t max_decision_points = 0;
  bool truncated = false;
  bool ok = true;

  /// Lexicographically least failing schedule of the original target and
  /// its verdict (meaningful iff failing > 0).
  DecisionString first_failing;
  std::string first_failing_message;
  /// first_failing minimized against the *original* target — the only
  /// schedule a caller can replay without the shrunk target in hand, so
  /// this is what repro lines must print.
  DecisionString repro_schedule;
  /// The greedily shrunk target (nullptr when the target is not shrinkable,
  /// nothing was droppable, or the run truncated), its listing, and the
  /// failing schedule minimized against it.
  std::shared_ptr<const CheckTarget> minimized_target;
  std::string minimized_listing;
  DecisionString minimized_schedule;
  std::string minimized_message;

  /// Every distinct hb-class hash of the explored space, sorted ascending
  /// (only when SessionOptions::explore.collect_trace_hashes). Deterministic
  /// for (target, options) like the other non-telemetry fields — the fixed
  /// schedule tree visits the same classes on every engine and job count —
  /// but excluded from to_text(), whose byte layout predates the field.
  std::vector<uint64_t> trace_hashes;

  /// Session observability; the only non-deterministic field.
  SessionTelemetry telemetry;

  /// Canonical multi-line rendering; byte-identical across engines and job
  /// counts (absent truncation) — what the determinism suites compare.
  /// Excludes `telemetry` entirely.
  std::string to_text() const;
  /// One-line JSON rendering of the deterministic fields plus a
  /// "telemetry" block, built on the obs::MetricsRegistry export.
  std::string to_json() const;
};

/// Owns engine selection, bounds, DPOR mode, and failure minimization —
/// the one front door to the exploration stack. Cheap to construct; check()
/// borrows the target only for the duration of the call.
class CheckSession {
 public:
  explicit CheckSession(SessionOptions opts);
  CheckSession(const ExploreConfig& cfg, int jobs = 1)
      : CheckSession(SessionOptions{cfg, jobs, Engine::kAuto}) {}

  const SessionOptions& options() const { return opts_; }
  /// True when this session runs the parallel work-stealing engine.
  bool parallel_engine() const;
  /// True when this session drives `target` through the snapshot engine
  /// (engine_state == kSnapshot, target is stateful_capable, and the build
  /// supports fibers); false means the stateless replay path.
  bool stateful(const CheckTarget& target) const;

  /// The full pipeline: explore the bounded space; on failure canonicalize
  /// (lexicographic minimum), shrink the target program-then-schedule where
  /// it supports shrinking (skipped when truncated — which schedules a
  /// truncated run covers is timing-dependent, so re-exploration-based
  /// shrinking would be neither deterministic nor sound), and minimize.
  CheckReport check(const CheckTarget& target) const;

  // -- Building blocks (the only sanctioned route to the engines) ------------
  ExploreReport explore(const CheckTarget& target) const;
  ExploreReport explore(const ScheduleRunner& runner) const;
  RunOutcome replay(const CheckTarget& target, const DecisionString& schedule,
                    bool* fully_applied = nullptr) const;
  /// Replays one schedule with a cycle recorder attached to the machine
  /// (always the stateless path: tracing wants one uninterrupted
  /// execution). Needs the target's make_spec() to reach ProgramOptions, so
  /// targets that are not stateful_capable() run untraced — the verdict is
  /// still correct, the recorder just stays empty. The recorded events are
  /// a pure function of (target, schedule): byte-identical across engines
  /// and job counts, which tests/explore/test_trace_determinism.cpp locks.
  RunOutcome replay_traced(const CheckTarget& target,
                           const DecisionString& schedule,
                           obs::TraceRecorder* recorder,
                           bool* fully_applied = nullptr) const;
  RunOutcome replay(const ScheduleRunner& runner, const DecisionString& schedule,
                    bool* fully_applied = nullptr) const;
  DecisionString minimize(const CheckTarget& target,
                          DecisionString failing) const;
  DecisionString minimize(const ScheduleRunner& runner,
                          DecisionString failing) const;

 private:
  SessionOptions opts_;
};

}  // namespace pmc::explore
