// Stateful schedule execution: fork schedules from machine snapshots
// instead of replaying their decision prefix from scratch (DESIGN.md §10).
//
// A StatefulExecutor owns one persistent Program built from a StatefulSpec.
// The first schedule executes normally under checkpointing fibers; the
// executor's CheckpointHook captures (Program::Snapshot, ReplayPolicy::
// Recording) pairs at decision points into a bounded pool. Every later
// schedule restores the deepest pool entry whose captured decision prefix
// matches its own overrides and resumes from there — the pinned root
// snapshot (step 0, empty prefix) guarantees a usable entry always exists,
// and restoring the root is the stateless engine's "build a fresh program"
// semantics minus the construction cost. Execution inside a schedule is
// unchanged, so run outcomes — and with them every explorer total and every
// CheckReport byte — are identical to the replay engine's.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "explore/check.h"
#include "explore/explorer.h"
#include "explore/replay_policy.h"
#include "runtime/program.h"

namespace pmc::explore {

struct StatefulOptions {
  /// Checkpoint every stride-th decision step below the horizon (step 0,
  /// the root, is always checkpointed). Clamped to >= 1; see
  /// SessionOptions::snapshot_stride for the default's rationale.
  uint64_t checkpoint_stride = 8;
  /// Decision steps at or above the horizon never branch, so they are
  /// never worth checkpointing.
  uint64_t horizon = 24;
  /// Non-root pool entries kept; least-recently-used entries are evicted
  /// past this. 0 keeps only the pinned root — every schedule then re-runs
  /// from step 0 (the eviction-pressure fallback the tests exercise).
  size_t pool_capacity = 128;
};

struct StatefulStats {
  uint64_t snapshots_taken = 0;
  uint64_t pool_hits = 0;    // schedules forked from a mid-run snapshot
  uint64_t pool_misses = 0;  // schedules restarted from the root snapshot
};

/// One worker's stateful schedule runner; a drop-in for the ScheduleRunner
/// a CheckTarget::run-based closure provides. Not thread-safe — parallel
/// exploration builds one executor per worker thread, each with its own
/// Program and pool. Requires sim::Scheduler::fibers_supported().
class StatefulExecutor final : public sim::CheckpointHook {
 public:
  StatefulExecutor(StatefulSpec spec, StatefulOptions opts);
  ~StatefulExecutor() override;

  /// Executes one schedule under `policy`, converting exceptions into
  /// failing outcomes exactly like CheckTarget::run.
  RunOutcome run(ReplayPolicy& policy);

  /// Explorer adapter. Borrows `this`: the executor must outlive it.
  ScheduleRunner runner() {
    return [this](ReplayPolicy& p) { return run(p); };
  }

  const StatefulStats& stats() const { return stats_; }

  // sim::CheckpointHook — called by the scheduler mid-run.
  bool wants_checkpoint(uint64_t step, int runnable_cores) override;
  void on_checkpoint(uint64_t step) override;

 private:
  struct PoolEntry;

  /// True when `e`'s captured prefix equals the overrides of the current
  /// schedule restricted to steps below e->step — the exact condition for
  /// the snapshot to be a state of that schedule's own execution.
  static bool usable(const PoolEntry& e, const DecisionString& overrides);
  /// The deepest usable entry (the pinned root in the worst case).
  PoolEntry& best_entry(const DecisionString& overrides);
  /// True when a usable entry parked at exactly `step` already exists
  /// (refreshes its LRU stamp — an entry proven hot is worth keeping).
  bool have_entry_at(uint64_t step);
  void evict();

  StatefulSpec spec_;
  StatefulOptions opts_;
  std::unique_ptr<rt::Program> prog_;
  std::vector<std::unique_ptr<PoolEntry>> pool_;
  ReplayPolicy* current_policy_ = nullptr;  // only during run()
  uint64_t lru_clock_ = 0;
  StatefulStats stats_;
};

}  // namespace pmc::explore
