#include "explore/diff_check.h"

#include "util/check.h"

namespace pmc::explore {

DiffCheck::DiffCheck(GenProgram prog, rt::FaultInjection faults)
    : prog_(std::move(prog)), faults_(faults) {
  PMC_CHECK_MSG(!prog_.threads.empty() &&
                    static_cast<int>(prog_.threads.size()) == prog_.shape.cores,
                "program thread count must match its shape");
}

std::unique_ptr<CheckTarget> DiffCheck::target(rt::Target t) const {
  return std::make_unique<GenProgramTarget>(prog_, t, faults_);
}

DiffReport DiffCheck::check(const ExploreConfig& cfg, int jobs,
                            const std::vector<rt::Target>& targets) const {
  return check(SessionOptions{cfg, jobs, Engine::kAuto}, targets);
}

DiffReport DiffCheck::check(const SessionOptions& opts,
                            const std::vector<rt::Target>& targets) const {
  const CheckSession session(opts);
  DiffReport rep;
  for (rt::Target t : targets) {
    const GenProgramTarget gt(prog_, t, faults_);
    if (rep.failure.has_value()) {
      // The report carries one failure (the first back-end's); later
      // back-ends still contribute their totals, but their failures are
      // not minimized.
      const ExploreReport r = session.explore(gt);
      rep.explored += r.explored;
      rep.pruned += r.pruned;
      rep.distinct_traces += r.distinct_traces;
      rep.truncated = rep.truncated || r.truncated;
      continue;
    }
    const CheckReport cr = session.check(gt);
    rep.explored += cr.explored;
    rep.pruned += cr.pruned;
    rep.distinct_traces += cr.distinct_traces;
    rep.truncated = rep.truncated || cr.truncated;
    if (cr.ok) continue;

    rep.ok = false;
    DiffFailure f;
    f.target = t;
    f.schedule = cr.minimized_schedule;
    f.message = cr.minimized_message;
    // The repro line's replay string must hold on the *original* program —
    // the only one the CLI can regenerate from the seed — which is exactly
    // the session's repro_schedule.
    f.repro = repro_line(prog_.shape, t, cr.repro_schedule, faults_);
    const auto* shrunk =
        dynamic_cast<const GenProgramTarget*>(cr.minimized_target.get());
    f.program = shrunk != nullptr ? shrunk->program() : prog_;
    rep.failure = std::move(f);
  }
  return rep;
}

std::string repro_line(const ProgramShape& shape, rt::Target target,
                       const DecisionString& schedule,
                       const rt::FaultInjection& faults) {
  // `-R DiffFuzz` matches both the parameterized seed sweep
  // (explore/Seeds/DiffFuzzSeeds.*/N) and the fixed DiffFuzz self-tests.
  // The widened PMC_FUZZ_SEEDS takes effect at ctest's PRE_TEST discovery
  // (tests/CMakeLists.txt), i.e. on the first ctest run after a (re)build —
  // `touch` the test binary to force re-enumeration in an already-run tree.
  // The `replay:` half reproduces the exact schedule either way. The ctest
  // half only holds for the canonical per-seed shape the suites generate;
  // for overridden shapes only the replay command reproduces the program.
  std::string s = "repro: ";
  if (shape == shape_for_seed(shape.seed)) {
    s += "PMC_FUZZ_SEEDS=" + std::to_string(shape.seed + 1) +
         " ctest -R DiffFuzz --output-on-failure ; replay: ";
  } else {
    s += "(non-canonical shape, not in the ctest sweep) ";
  }
  s += "explore_litmus --fuzz-seed=" + std::to_string(shape.seed);
  s += " --fuzz-cores=" + std::to_string(shape.cores);
  s += " --fuzz-objects=" + std::to_string(shape.objects);
  s += " --fuzz-steps=" + std::to_string(shape.steps);
  s += " --backend=" + std::string(rt::to_string(target));
  if (faults.any()) {
    s += " --seed-bug";
  }
  s += " --replay=" + to_string(schedule);
  return s;
}

}  // namespace pmc::explore
