#include "explore/diff_check.h"

#include <algorithm>
#include <exception>

#include "util/check.h"
#include "util/hash.h"

namespace pmc::explore {

namespace {

/// One full run: fresh Program, the generated op streams, dual oracle.
/// Everything is local, so concurrent calls share nothing mutable.
RunOutcome run_program(const GenProgram& prog, const rt::FaultInjection& faults,
                       rt::Target target, sim::SchedulePolicy* policy) {
  RunOutcome out;
  try {
    rt::ProgramOptions opts;
    opts.target = target;
    opts.cores = prog.shape.cores;
    opts.machine = sim::MachineConfig::ml605(opts.cores);
    opts.machine.lm_bytes = 32 * 1024;
    opts.machine.sdram_bytes = 512 * 1024;
    opts.machine.max_cycles = UINT64_C(100'000'000);
    opts.lock_capacity = 64;
    opts.validate = true;
    opts.faults = faults;
    opts.schedule_policy = policy;
    rt::Program p(opts);

    std::vector<rt::ObjId> objs;
    for (int i = 0; i < prog.shape.objects; ++i) {
      objs.push_back(p.create_typed<uint32_t>(GenProgram::initial_value(i),
                                              rt::Placement::kReplicated,
                                              "fuzz" + std::to_string(i)));
    }
    p.run([&](rt::Env& env) { run_ops(prog, env, objs); });

    uint64_t h = util::kFnvOffset;
    for (const model::TraceEvent& e : p.trace()) {
      h = util::hash_combine(h, static_cast<uint64_t>(e.kind));
      h = util::hash_combine(h, static_cast<uint64_t>(e.proc));
      h = util::hash_combine(h, static_cast<uint64_t>(e.loc));
      h = util::hash_combine(h, e.value);
    }
    for (int i = 0; i < prog.shape.objects; ++i) {
      h = util::hash_combine(h, p.result<uint32_t>(objs[static_cast<size_t>(i)]));
    }
    out.trace_hash = h;

    if (p.validator() != nullptr && !p.validator()->ok()) {
      out.ok = false;
      out.message =
          "Definition 12 violation: " + p.validator()->first_violation();
      return out;
    }
    for (int i = 0; i < prog.shape.objects; ++i) {
      const uint32_t got = p.result<uint32_t>(objs[static_cast<size_t>(i)]);
      const uint32_t want = prog.expected_final(i);
      if (got != want) {
        out.ok = false;
        out.message = "final-state divergence on " +
                      std::string(rt::to_string(target)) + ": object x" +
                      std::to_string(i) + " is " + std::to_string(got) +
                      ", every back-end must reach " + std::to_string(want);
        return out;
      }
    }
  } catch (const std::exception& e) {
    out.ok = false;
    out.message = e.what();
  }
  return out;
}

}  // namespace

DiffCheck::DiffCheck(GenProgram prog, rt::FaultInjection faults)
    : prog_(std::move(prog)), faults_(faults) {
  PMC_CHECK_MSG(!prog_.threads.empty() &&
                    static_cast<int>(prog_.threads.size()) == prog_.shape.cores,
                "program thread count must match its shape");
}

RunOutcome DiffCheck::run_once(rt::Target t, ReplayPolicy& policy) const {
  return run_program(prog_, faults_, t, &policy);
}

ScheduleRunner DiffCheck::runner(rt::Target t) const {
  // Captured by value so the runner outlives this DiffCheck.
  return [prog = prog_, faults = faults_, t](ReplayPolicy& policy) {
    return run_program(prog, faults, t, &policy);
  };
}

DiffReport DiffCheck::check(const ExploreConfig& cfg, int jobs,
                            const std::vector<rt::Target>& targets) const {
  DiffReport rep;
  for (rt::Target t : targets) {
    PMC_CHECK_MSG(rt::is_sim(t), "exploration drives simulated targets");
    ParallelExplorer ex(runner(t), jobs);
    const ExploreReport r = ex.explore(cfg);
    rep.explored += r.explored;
    rep.pruned += r.pruned;
    rep.distinct_traces += r.distinct_traces;
    rep.truncated = rep.truncated || r.truncated;
    if (r.failing == 0 || rep.failure.has_value()) continue;

    rep.ok = false;
    DiffFailure f;
    f.target = t;

    // The repro line's replay string must hold on the *original* program —
    // the only one the CLI can regenerate from the seed — so minimize the
    // canonical failing schedule against it before shrinking the program.
    const DecisionString repro_schedule =
        ex.minimize(r.first_failing, cfg.horizon);

    if (r.truncated) {
      // Which schedules a truncated exploration covers depends on worker
      // timing, so re-exploration-based program shrinking would be neither
      // deterministic nor sound (and a re-run might not even rediscover a
      // failure). Report the unshrunk program with the schedule minimized
      // against the failure actually in hand.
      f.schedule = repro_schedule;
      f.message = ex.replay(f.schedule, cfg.horizon).message;
      f.program = prog_;
      f.repro = repro_line(prog_.shape, t, repro_schedule, faults_);
      rep.failure = std::move(f);
      continue;
    }

    GenProgram cur = prog_;
    {
      // Shrink the program: greedily drop any op whose removal keeps some
      // schedule failing. Each candidate is judged by *re-exploring* the
      // reduced program — a dropped op shifts all later decision steps, so
      // replaying the old string would describe a different schedule.
      // (Shrunk programs have no more decision points than the original,
      // so with the original untruncated none of these re-explorations can
      // truncate either.)
      bool changed = true;
      while (changed) {
        changed = false;
        for (size_t th = 0; th < cur.threads.size() && !changed; ++th) {
          for (size_t i = 0; i < cur.threads[th].size() && !changed; ++i) {
            GenProgram cand = cur;
            cand.drop(static_cast<int>(th), i);
            const DiffCheck sub(std::move(cand), faults_);
            ParallelExplorer sub_ex(sub.runner(t), jobs);
            if (sub_ex.explore(cfg).failing > 0) {
              cur = sub.prog_;
              changed = true;
            }
          }
        }
      }
    }

    // Then shrink the schedule, on the (possibly) minimized program.
    const DiffCheck final_check(cur, faults_);
    ParallelExplorer final_ex(final_check.runner(t), jobs);
    const ExploreReport final_rep = final_ex.explore(cfg);
    PMC_CHECK_MSG(final_rep.failing > 0,
                  "minimized program stopped failing — minimizer bug");
    f.schedule = final_ex.minimize(final_rep.first_failing, cfg.horizon);
    f.message = final_ex.replay(f.schedule, cfg.horizon).message;
    f.program = std::move(cur);
    f.repro = repro_line(f.program.shape, t, repro_schedule, faults_);
    rep.failure = std::move(f);
  }
  return rep;
}

std::string repro_line(const ProgramShape& shape, rt::Target target,
                       const DecisionString& schedule,
                       const rt::FaultInjection& faults) {
  // `-R DiffFuzz` matches both the parameterized seed sweep
  // (explore/Seeds/DiffFuzzSeeds.*/N) and the fixed DiffFuzz self-tests.
  // The widened PMC_FUZZ_SEEDS takes effect at ctest's PRE_TEST discovery
  // (tests/CMakeLists.txt), i.e. on the first ctest run after a (re)build —
  // `touch` the test binary to force re-enumeration in an already-run tree.
  // The `replay:` half reproduces the exact schedule either way. The ctest
  // half only holds for the canonical per-seed shape the suites generate;
  // for overridden shapes only the replay command reproduces the program.
  std::string s = "repro: ";
  if (shape == shape_for_seed(shape.seed)) {
    s += "PMC_FUZZ_SEEDS=" + std::to_string(shape.seed + 1) +
         " ctest -R DiffFuzz --output-on-failure ; replay: ";
  } else {
    s += "(non-canonical shape, not in the ctest sweep) ";
  }
  s += "explore_litmus --fuzz-seed=" + std::to_string(shape.seed);
  s += " --fuzz-cores=" + std::to_string(shape.cores);
  s += " --fuzz-objects=" + std::to_string(shape.objects);
  s += " --fuzz-steps=" + std::to_string(shape.steps);
  s += " --backend=" + std::string(rt::to_string(target));
  if (faults.swcc_skip_exit_writeback || faults.dsm_skip_transfer ||
      faults.spm_skip_copy_back) {
    s += " --seed-bug";
  }
  s += " --replay=" + to_string(schedule);
  return s;
}

}  // namespace pmc::explore
