#include "explore/parallel_explorer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_set>

#include "util/check.h"

namespace pmc::explore {

ParallelExplorer::ParallelExplorer(ScheduleRunner runner, int jobs)
    : factory_([runner = std::move(runner)]() { return runner; }),
      jobs_(jobs < 1 ? 1 : jobs) {}

ParallelExplorer::ParallelExplorer(RunnerFactory factory, int jobs)
    : factory_(std::move(factory)), jobs_(jobs < 1 ? 1 : jobs) {}

namespace {

/// One worker's slice of the frontier. Owner pushes/pops at the back (LIFO
/// keeps the search depth-first); thieves pop at the front (FIFO hands them
/// the shallowest — largest — pending subtree). A plain mutex per deque is
/// ample: each queue operation amortizes a full program re-execution.
struct Shard {
  std::mutex mu;
  std::deque<FrontierNode> dq;
};

}  // namespace

ExploreReport ParallelExplorer::explore(const ExploreConfig& cfg) {
  PMC_CHECK(cfg.preemption_bound >= 0);
  const int jobs = jobs_;
  std::deque<Shard> shards(static_cast<size_t>(jobs));

  // Shared counters. `in_flight` counts enqueued-but-unfinished prefixes:
  // a worker increments it for every child *before* retiring the parent, so
  // it can only reach zero once the whole tree has been processed.
  std::atomic<uint64_t> claimed{0};
  std::atomic<uint64_t> explored{0};
  std::atomic<uint64_t> pruned{0};
  std::atomic<uint64_t> dpor_pruned{0};
  std::atomic<uint64_t> failing{0};
  std::atomic<uint64_t> in_flight{1};
  std::atomic<uint64_t> first_fail_at{0};
  std::atomic<uint64_t> max_points{0};
  std::atomic<bool> truncated{false};

  // Canonical failure: lexicographic minimum over everything seen so far.
  std::mutex best_mu;
  DecisionString best;
  std::string best_message;
  bool have_best = false;

  shards[0].dq.push_back({});

  // Out-of-work workers block here instead of spinning over the shards.
  // Pushers notify; the bounded wait covers the (benign) race of a push
  // landing between a failed scan and the wait.
  std::mutex idle_mu;
  std::condition_variable idle_cv;

  std::vector<std::unordered_set<uint64_t>> traces(
      static_cast<size_t>(jobs));
  std::vector<std::vector<DecisionString>> fails(static_cast<size_t>(jobs));
  std::vector<uint64_t> steals(static_cast<size_t>(jobs), 0);

  // Telemetry needing a *live* distinct-trace count (the discovery curve,
  // progress callbacks) funnels every hash through one shared set instead
  // of the per-worker sets merged at the end. One lock per schedule, each
  // amortized by a full program re-execution.
  const bool live_traces = cfg.sample_hb_curve || cfg.progress != nullptr;
  const uint64_t stride = cfg.progress_stride == 0 ? 1 : cfg.progress_stride;
  std::mutex live_mu;
  std::unordered_set<uint64_t> live_set;
  std::vector<uint64_t> curve;  // indexed by log2(explored) sample slot

  auto worker = [&](int self) {
    Shard& own = shards[static_cast<size_t>(self)];
    auto& local_traces = traces[static_cast<size_t>(self)];
    auto& local_fails = fails[static_cast<size_t>(self)];
    const ScheduleRunner runner = factory_();
    while (in_flight.load() != 0) {
      std::optional<FrontierNode> task;
      {
        std::lock_guard<std::mutex> lk(own.mu);
        if (!own.dq.empty()) {
          task = std::move(own.dq.back());
          own.dq.pop_back();
        }
      }
      if (!task) {  // steal the oldest prefix from the next busy worker
        for (int k = 1; k < jobs && !task; ++k) {
          Shard& victim = shards[static_cast<size_t>((self + k) % jobs)];
          std::lock_guard<std::mutex> lk(victim.mu);
          if (!victim.dq.empty()) {
            task = std::move(victim.dq.front());
            victim.dq.pop_front();
            ++steals[static_cast<size_t>(self)];
          }
        }
      }
      if (!task) {
        std::unique_lock<std::mutex> lk(idle_mu);
        if (in_flight.load() == 0) break;
        idle_cv.wait_for(lk, std::chrono::milliseconds(1));
        continue;
      }

      if (claimed.fetch_add(1) >= cfg.max_schedules) {
        truncated.store(true);
        if (in_flight.fetch_sub(1) == 1) idle_cv.notify_all();
        continue;
      }
      ReplayPolicy policy(task->prefix, cfg.horizon,
                          /*record_footprints=*/cfg.dpor != DporMode::kOff);
      const RunOutcome out = runner(policy);
      const uint64_t done = explored.fetch_add(1) + 1;
      if (live_traces) {
        uint64_t distinct = 0;
        {
          std::lock_guard<std::mutex> lk(live_mu);
          live_set.insert(out.trace_hash);
          distinct = live_set.size();
          if (cfg.sample_hb_curve && (done & (done - 1)) == 0) {
            size_t idx = 0;
            for (uint64_t d = done; d >>= 1;) ++idx;
            if (curve.size() <= idx) curve.resize(idx + 1, 0);
            curve[idx] = distinct;
          }
        }
        if (cfg.progress && done % stride == 0) {
          cfg.progress({done, pruned.load(), dpor_pruned.load(),
                        failing.load(), distinct, cfg.max_schedules});
        }
      } else {
        local_traces.insert(out.trace_hash);
      }
      uint64_t prev = max_points.load();
      while (prev < policy.decision_points() &&
             !max_points.compare_exchange_weak(prev, policy.decision_points())) {
      }
      if (!out.ok) {
        if (failing.fetch_add(1) == 0) first_fail_at.store(done);
        if (cfg.collect_failing) local_fails.push_back(task->prefix);
        std::lock_guard<std::mutex> lk(best_mu);
        if (!have_best || lex_less(task->prefix, best)) {
          best = task->prefix;
          best_message = out.message;
          have_best = true;
        }
      }

      // Child enumeration is byte-identical to Explorer::explore — both
      // engines call the same expand_node on the same deterministic run —
      // so the (reduced) tree is the same, only the traversal order differs.
      ExpandStats stats;
      std::vector<FrontierNode> children;
      expand_node(*task, policy, cfg, &children, &stats);
      if (stats.delay_pruned != 0) pruned.fetch_add(stats.delay_pruned);
      if (stats.dpor_pruned != 0) dpor_pruned.fetch_add(stats.dpor_pruned);
      if (!children.empty()) {
        in_flight.fetch_add(children.size());
        {
          std::lock_guard<std::mutex> lk(own.mu);
          for (auto& c : children) own.dq.push_back(std::move(c));
        }
        idle_cv.notify_all();
      }
      if (in_flight.fetch_sub(1) == 1) idle_cv.notify_all();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(jobs));
  for (int w = 0; w < jobs; ++w) threads.emplace_back(worker, w);
  for (auto& t : threads) t.join();

  ExploreReport rep;
  rep.explored = explored.load();
  rep.pruned = pruned.load();
  rep.dpor_pruned = dpor_pruned.load();
  rep.truncated = truncated.load();
  rep.failing = failing.load();
  rep.first_failing = std::move(best);
  rep.first_failing_message = std::move(best_message);
  rep.schedules_to_first_failure = first_fail_at.load();
  rep.max_decision_points = max_points.load();
  if (live_traces) {
    rep.distinct_traces = live_set.size();
    if (cfg.sample_hb_curve) {
      rep.hb_curve = std::move(curve);
      if (rep.explored > 0 && (rep.explored & (rep.explored - 1)) != 0) {
        rep.hb_curve.push_back(rep.distinct_traces);
      }
    }
    if (cfg.progress) {
      cfg.progress({rep.explored, rep.pruned, rep.dpor_pruned, rep.failing,
                    rep.distinct_traces, cfg.max_schedules});
    }
    if (cfg.collect_trace_hashes) {
      rep.trace_hashes.assign(live_set.begin(), live_set.end());
      std::sort(rep.trace_hashes.begin(), rep.trace_hashes.end());
    }
  } else {
    std::unordered_set<uint64_t> merged;
    for (auto& s : traces) merged.insert(s.begin(), s.end());
    rep.distinct_traces = merged.size();
    if (cfg.collect_trace_hashes) {
      // The tree is the same at any job count, so the sorted merge of the
      // per-worker sets equals the sequential engine's export byte for byte.
      rep.trace_hashes.assign(merged.begin(), merged.end());
      std::sort(rep.trace_hashes.begin(), rep.trace_hashes.end());
    }
  }
  rep.worker_steals = std::move(steals);
  for (auto& f : fails) {
    rep.failing_schedules.insert(rep.failing_schedules.end(),
                                 std::make_move_iterator(f.begin()),
                                 std::make_move_iterator(f.end()));
  }
  std::sort(rep.failing_schedules.begin(), rep.failing_schedules.end(),
            lex_less);
  return rep;
}

RunOutcome ParallelExplorer::replay(const DecisionString& schedule,
                                    uint64_t horizon, bool* fully_applied) {
  // Replays only consume the verdict, never the DPOR recording.
  ReplayPolicy policy(schedule, horizon, /*record_footprints=*/false);
  const ScheduleRunner runner = factory_();
  RunOutcome out = runner(policy);
  if (fully_applied != nullptr) {
    *fully_applied = policy.unused_overrides() == 0;
  }
  return out;
}

DecisionString ParallelExplorer::minimize(DecisionString failing,
                                          uint64_t horizon) {
  while (!failing.empty()) {
    // Evaluate every single-override removal of this round concurrently,
    // then accept the lowest index that still fails with all overrides
    // applied — exactly what the sequential first-accept scan converges to.
    const size_t n = failing.size();
    std::vector<uint8_t> still_fails(n, 0);
    std::atomic<size_t> next{0};
    auto eval = [&] {
      // One runner per evaluator thread: stateful runners are not shareable.
      const ScheduleRunner runner = factory_();
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        DecisionString shorter = failing;
        shorter.erase(shorter.begin() + static_cast<ptrdiff_t>(i));
        ReplayPolicy policy(shorter, horizon, /*record_footprints=*/false);
        const RunOutcome out = runner(policy);
        if (!out.ok && policy.unused_overrides() == 0) {
          still_fails[i] = 1;
        }
      }
    };
    std::vector<std::thread> threads;
    const size_t workers = std::min(static_cast<size_t>(jobs_), n);
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) threads.emplace_back(eval);
    for (auto& t : threads) t.join();
    const auto hit = std::find(still_fails.begin(), still_fails.end(), 1);
    if (hit == still_fails.end()) break;
    failing.erase(failing.begin() + (hit - still_fails.begin()));
  }
  return failing;
}

}  // namespace pmc::explore
