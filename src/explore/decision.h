// Compact, replayable encoding of one explored schedule.
//
// A schedule is identified by its deviations from the default min-time
// schedule: a strictly increasing sequence of (decision step, candidate
// index) overrides. The textual form is "step:choice" pairs joined by
// commas — e.g. "12:1,40:2" — and the empty string denotes the default
// schedule. Because the simulation is bit-deterministic given the decision
// string, any failing interleaving reported by the explorer can be
// reproduced exactly from this string alone (DESIGN.md §6).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pmc::explore {

struct Decision {
  uint64_t step = 0;  // global scheduling-decision index (sim::YieldPoint)
  int choice = 0;     // candidate index to dispatch; >= 1 (0 is the default)

  friend auto operator<=>(const Decision&, const Decision&) = default;
};

using DecisionString = std::vector<Decision>;

/// "12:1,40:2"; "" for the default schedule.
std::string to_string(const DecisionString& ds);

/// Strict lexicographic order by (step, choice) pairs; a proper prefix sorts
/// before its extensions. This is the deterministic tie-break the parallel
/// explorer uses to pick a canonical first failure: the lexicographic
/// minimum over a fixed schedule space does not depend on the order in which
/// workers happen to discover failures.
bool lex_less(const DecisionString& a, const DecisionString& b);

/// Upper bound on both fields of a parsed "step:choice" pair. Steps come
/// from horizon-bounded exploration, so CLI front-ends must also reject a
/// horizon above this bound — otherwise the explorer could print a failing
/// schedule its own parser refuses to replay.
inline constexpr uint64_t kMaxDecisionField = 1'000'000;

/// Parses to_string's format. Throws util::CheckFailure on malformed input,
/// 64-bit overflow, non-increasing steps, or a step/choice out of range
/// (choice < 1, or either field > kMaxDecisionField).
DecisionString parse_decision_string(std::string_view text);

}  // namespace pmc::explore
