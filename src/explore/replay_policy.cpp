#include "explore/replay_policy.h"

#include "util/check.h"

namespace pmc::explore {

ReplayPolicy::ReplayPolicy(DecisionString overrides, uint64_t horizon,
                           bool record_footprints)
    : overrides_(std::move(overrides)),
      horizon_(horizon),
      record_limit_(horizon + kFootprintWindow),
      record_(record_footprints) {
  for (size_t i = 1; i < overrides_.size(); ++i) {
    PMC_CHECK_MSG(overrides_[i - 1].step < overrides_[i].step,
                  "replay overrides must have strictly increasing steps");
  }
}

int ReplayPolicy::pick(const sim::YieldPoint& yp,
                       const std::vector<sim::ScheduleCandidate>& cands) {
  PMC_CHECK_MSG(yp.step == steps_, "scheduler decisions arrived out of order");
  steps_ = yp.step + 1;
  if (yp.step < horizon_) {
    cand_count_.push_back(static_cast<int>(cands.size()));
    if (record_) {
      std::vector<int> cores;
      cores.reserve(cands.size());
      for (const sim::ScheduleCandidate& c : cands) cores.push_back(c.core);
      cand_cores_.push_back(std::move(cores));
    }
  }
  if (yp.step < horizon_ + 1) {
    observable_.push_back(yp.observable ? 1 : 0);
  }
  // The yield at step q reports on the segment dispatched at step q-1 (the
  // dispatched core runs exactly until its next advance).
  if (record_ && yp.step >= 1 && yp.step <= record_limit_) {
    seg_fp_.push_back(yp.footprint);
  }
  int choice = 0;
  if (next_ < overrides_.size() && overrides_[next_].step == yp.step) {
    choice = overrides_[next_].choice;
    PMC_CHECK_MSG(
        choice >= 1 && choice < static_cast<int>(cands.size()),
        "replay decision " << overrides_[next_].step << ":" << choice
                           << " does not match this program (only "
                           << cands.size() << " runnable cores at that step)");
    ++next_;
  }
  if (record_ && yp.step < record_limit_) {
    chosen_.push_back(cands[static_cast<size_t>(choice)].core);
  }
  return choice;
}

void ReplayPolicy::seed(const Recording& r) {
  PMC_CHECK_MSG(steps_ == 0, "seed() on a policy that already ran");
  steps_ = r.steps;
  cand_count_ = r.cand_count;
  observable_ = r.observable;
  cand_cores_ = r.cand_cores;
  chosen_ = r.chosen;
  seg_fp_ = r.seg_fp;
  next_ = 0;
  while (next_ < overrides_.size() && overrides_[next_].step < steps_) {
    ++next_;
  }
}

}  // namespace pmc::explore
