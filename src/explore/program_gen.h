// Randomized lock-disciplined program generation (DESIGN.md §7).
//
// Promoted from tests/runtime/test_random_programs.cpp into a library so the
// differential fuzzer, the property tests and the CLI all draw from one
// generator. A generated program is:
//
//  * annotation-disciplined by construction — every store inside an
//    exclusive section of its object, sections LIFO, read-only sections for
//    observations — so it is legal input for every Table II back-end;
//  * deadlock-free — at most one exclusive section is held at a time
//    (read-only sections take no lock), and barriers are slot-aligned
//    across all cores;
//  * *determinate* — every update is a commutative addition whose operand
//    is fixed at generation time, so the final value of each object is the
//    closed form `initial + Σ addends` on every schedule of every back-end.
//    That closed form (expected_final) is what turns "run it everywhere
//    under every interleaving" into a differential oracle: any divergence,
//    on any back-end, under any schedule, is a bug.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/env.h"

namespace pmc::explore {

/// Seedable shape knobs of one generated program. Percentages select the op
/// kind per slot; what remains after ro/nested/compute/fence goes to plain
/// commutative updates. flush_pct applies within updates, barrier_pct per
/// slot boundary (global, so barriers stay aligned).
struct ProgramShape {
  uint64_t seed = 0;
  int cores = 3;
  int objects = 4;
  int steps = 6;  // op slots per core
  int flush_pct = 20;
  int barrier_pct = 10;
  int ro_pct = 20;
  int nested_pct = 10;
  int compute_pct = 15;
  int fence_pct = 5;

  friend bool operator==(const ProgramShape&, const ProgramShape&) = default;
};

struct GenOp {
  enum class Kind : uint8_t {
    kUpdate,    // entry_x; st += arg; [flush; st += arg2;] exit_x
    kReadOnly,  // entry_ro; ld (value discarded: a "slow read"); exit_ro
    kNested,    // entry_x(obj); entry_ro(obj2); ld obj2; st obj += arg; exit both
    kCompute,   // arg cycles of private work (pure-delay segment)
    kFence,
    kBarrier,   // slot-aligned across every core
  };
  Kind kind = Kind::kUpdate;
  int obj = 0;
  int obj2 = 0;       // kNested: the read-only object (!= obj)
  uint32_t arg = 0;   // addend / compute cycles
  uint32_t arg2 = 0;  // kUpdate with flush: addend after the mid-section flush
  bool flush = false;

  friend bool operator==(const GenOp&, const GenOp&) = default;
};

struct GenProgram {
  ProgramShape shape;  // provenance, for repro lines
  std::vector<std::vector<GenOp>> threads;

  size_t ops() const;
  /// Initial value of object `obj` (matches the historical fuzz suite).
  static uint32_t initial_value(int obj) {
    return static_cast<uint32_t>(obj) * 1000u;
  }
  /// Closed-form final value of `obj`: initial plus every addend targeting
  /// it, exact on any schedule and any back-end (all updates commute).
  uint32_t expected_final(int obj) const;
  /// Removes thread `t`'s op `i` (for failure minimization). Dropping a
  /// barrier removes the *matching* barrier from every thread — barriers are
  /// slot-aligned, so the k-th barrier of each thread is the same barrier —
  /// keeping the program deadlock-free. Returns false when out of range.
  bool drop(int t, size_t i);

  friend bool operator==(const GenProgram& a, const GenProgram& b) {
    return a.threads == b.threads;
  }
};

GenProgram generate_program(const ProgramShape& shape);

/// Executes core env.id()'s op stream against `objs` (one ObjId per
/// generated object, creation order). The stream is fixed at generation
/// time, so what a core does is independent of the interleaving.
void run_ops(const GenProgram& prog, rt::Env& env,
             const std::vector<rt::ObjId>& objs);

std::string to_string(const GenOp& op);
/// Multi-line listing ("core 0: x3+=5 ...; barrier; ..."), for failure
/// reports of minimized programs.
std::string to_string(const GenProgram& prog);

/// The canonical shape the fuzz suites and `explore_litmus --fuzz` derive
/// from a bare seed: small core/step counts vary with the seed so the
/// schedule space stays explorable, densities stay at their defaults.
ProgramShape shape_for_seed(uint64_t seed);

}  // namespace pmc::explore
