#include "explore/decision.h"

#include <cstdlib>

#include "util/check.h"

namespace pmc::explore {

std::string to_string(const DecisionString& ds) {
  std::string out;
  for (const Decision& d : ds) {
    if (!out.empty()) out += ',';
    out += std::to_string(d.step);
    out += ':';
    out += std::to_string(d.choice);
  }
  return out;
}

bool lex_less(const DecisionString& a, const DecisionString& b) {
  // Decision's defaulted <=> plus vector's lexicographic compare is exactly
  // the documented order; the named function keeps call sites declarative.
  return a < b;
}

namespace {

uint64_t parse_u64(std::string_view text, size_t* pos) {
  PMC_CHECK_MSG(*pos < text.size() && text[*pos] >= '0' && text[*pos] <= '9',
                "decision string: expected a number at offset " << *pos);
  uint64_t v = 0;
  while (*pos < text.size() && text[*pos] >= '0' && text[*pos] <= '9') {
    const uint64_t digit = static_cast<uint64_t>(text[*pos] - '0');
    // Reject overflow instead of silently wrapping: a wrapped value would
    // parse "successfully" and then replay some unrelated schedule.
    PMC_CHECK_MSG(v <= (UINT64_MAX - digit) / 10,
                  "decision string: number at offset "
                      << *pos << " overflows 64 bits");
    v = v * 10 + digit;
    ++*pos;
  }
  return v;
}

}  // namespace

DecisionString parse_decision_string(std::string_view text) {
  DecisionString ds;
  size_t pos = 0;
  while (pos < text.size()) {
    Decision d;
    const uint64_t step = parse_u64(text, &pos);
    // Decision steps come from horizon-bounded exploration; anything past
    // the shared field bound is a typo or a stale string, not a schedule.
    PMC_CHECK_MSG(step <= kMaxDecisionField,
                  "decision string: step " << step << " out of range");
    d.step = step;
    PMC_CHECK_MSG(pos < text.size() && text[pos] == ':',
                  "decision string: expected ':' at offset " << pos);
    ++pos;
    const uint64_t choice = parse_u64(text, &pos);
    PMC_CHECK_MSG(choice >= 1 && choice <= kMaxDecisionField,
                  "decision string: choice " << choice << " out of range");
    d.choice = static_cast<int>(choice);
    PMC_CHECK_MSG(ds.empty() || ds.back().step < d.step,
                  "decision string: steps must be strictly increasing");
    ds.push_back(d);
    if (pos < text.size()) {
      PMC_CHECK_MSG(text[pos] == ',',
                    "decision string: expected ',' at offset " << pos);
      ++pos;
      PMC_CHECK_MSG(pos < text.size(), "decision string: trailing ','");
    }
  }
  return ds;
}

}  // namespace pmc::explore
