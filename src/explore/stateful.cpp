#include "explore/stateful.h"

#include <exception>
#include <utility>

#include "util/check.h"

namespace pmc::explore {

struct StatefulExecutor::PoolEntry {
  uint64_t step = 0;      // decision step the snapshot is parked at
  DecisionString prefix;  // overrides with .step < step at capture time
  rt::Program::Snapshot snap;
  ReplayPolicy::Recording rec;
  uint64_t lru = 0;
};

StatefulExecutor::StatefulExecutor(StatefulSpec spec, StatefulOptions opts)
    : spec_(std::move(spec)), opts_(opts) {
  PMC_CHECK_MSG(sim::Scheduler::fibers_supported(),
                "stateful execution needs fiber support on this build");
  if (opts_.checkpoint_stride < 1) opts_.checkpoint_stride = 1;
}

StatefulExecutor::~StatefulExecutor() = default;

bool StatefulExecutor::usable(const PoolEntry& e,
                              const DecisionString& overrides) {
  size_t i = 0;
  for (const Decision& d : overrides) {
    if (d.step >= e.step) break;  // overrides are strictly step-increasing
    if (i >= e.prefix.size() || !(e.prefix[i] == d)) return false;
    ++i;
  }
  return i == e.prefix.size();
}

StatefulExecutor::PoolEntry& StatefulExecutor::best_entry(
    const DecisionString& overrides) {
  PoolEntry* best = nullptr;
  for (const auto& e : pool_) {
    if (best != nullptr && e->step <= best->step) continue;
    if (usable(*e, overrides)) best = e.get();
  }
  PMC_CHECK_MSG(best != nullptr, "snapshot pool lost its pinned root entry");
  return *best;
}

bool StatefulExecutor::have_entry_at(uint64_t step) {
  for (const auto& e : pool_) {
    if (e->step == step && usable(*e, current_policy_->overrides())) {
      e->lru = ++lru_clock_;
      return true;
    }
  }
  return false;
}

bool StatefulExecutor::wants_checkpoint(uint64_t step, int runnable_cores) {
  if (current_policy_ == nullptr) return false;
  if (step == 0) return !have_entry_at(0);  // the pinned root, captured once
  if (runnable_cores < 2) return false;     // no branch can start here
  if (step >= opts_.horizon) return false;  // beyond-horizon steps never branch
  if (step % opts_.checkpoint_stride != 0) return false;
  // Re-runs over a shared prefix would re-capture identical state: the
  // execution is bit-deterministic in the sub-step overrides, which is the
  // pool key. Dedup instead (and keep the proven-hot entry resident).
  return !have_entry_at(step);
}

void StatefulExecutor::on_checkpoint(uint64_t step) {
  auto e = std::make_unique<PoolEntry>();
  e->step = step;
  for (const Decision& d : current_policy_->overrides()) {
    if (d.step >= step) break;
    e->prefix.push_back(d);
  }
  e->snap = prog_->snapshot();
  e->rec = current_policy_->export_recording();
  e->lru = ++lru_clock_;
  pool_.push_back(std::move(e));
  ++stats_.snapshots_taken;
  evict();
}

void StatefulExecutor::evict() {
  size_t live = 0;
  for (const auto& e : pool_) live += e->step != 0 ? 1 : 0;
  while (live > opts_.pool_capacity) {
    size_t victim = pool_.size();
    for (size_t i = 0; i < pool_.size(); ++i) {
      if (pool_[i]->step == 0) continue;  // the root is pinned
      if (victim == pool_.size() || pool_[i]->lru < pool_[victim]->lru) {
        victim = i;
      }
    }
    pool_.erase(pool_.begin() + static_cast<ptrdiff_t>(victim));
    --live;
  }
}

RunOutcome StatefulExecutor::run(ReplayPolicy& policy) {
  RunOutcome out;
  current_policy_ = &policy;
  try {
    if (prog_ == nullptr || pool_.empty()) {
      // First schedule — or a prior first schedule died before the root
      // checkpoint (program construction / setup failure): build the world
      // afresh, exactly like the replay engine would.
      prog_.reset();
      rt::ProgramOptions opts = spec_.opts;
      opts.schedule_policy = &policy;
      prog_ = std::make_unique<rt::Program>(opts);
      prog_->enable_snapshots();
      prog_->set_checkpoint_hook(this);
      spec_.setup(*prog_);
      prog_->run(spec_.body);
    } else {
      PoolEntry& e = best_entry(policy.overrides());
      if (e.step == 0) {
        ++stats_.pool_misses;
      } else {
        ++stats_.pool_hits;
      }
      e.lru = ++lru_clock_;
      policy.seed(e.rec);
      prog_->restore(e.snap);
      prog_->set_schedule_policy(&policy);
      prog_->resume();
    }
    spec_.judge(*prog_, out);
  } catch (const std::exception& ex) {
    out.ok = false;
    out.message = ex.what();
  }
  current_policy_ = nullptr;
  return out;
}

}  // namespace pmc::explore
