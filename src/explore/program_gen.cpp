#include "explore/program_gen.h"

#include "util/check.h"
#include "util/rng.h"

namespace pmc::explore {

size_t GenProgram::ops() const {
  size_t n = 0;
  for (const auto& t : threads) n += t.size();
  return n;
}

uint32_t GenProgram::expected_final(int obj) const {
  uint32_t v = initial_value(obj);
  for (const auto& t : threads) {
    for (const GenOp& op : t) {
      if (op.obj != obj) continue;
      if (op.kind == GenOp::Kind::kUpdate) {
        v += op.arg + (op.flush ? op.arg2 : 0);
      } else if (op.kind == GenOp::Kind::kNested) {
        v += op.arg;
      }
    }
  }
  return v;
}

bool GenProgram::drop(int t, size_t i) {
  if (t < 0 || t >= static_cast<int>(threads.size())) return false;
  auto& ops = threads[static_cast<size_t>(t)];
  if (i >= ops.size()) return false;
  if (ops[i].kind != GenOp::Kind::kBarrier) {
    ops.erase(ops.begin() + static_cast<ptrdiff_t>(i));
    return true;
  }
  // The k-th barrier of every thread is the same slot-aligned barrier.
  size_t k = 0;
  for (size_t j = 0; j < i; ++j) {
    if (ops[j].kind == GenOp::Kind::kBarrier) ++k;
  }
  for (auto& th : threads) {
    size_t seen = 0;
    for (size_t j = 0; j < th.size(); ++j) {
      if (th[j].kind != GenOp::Kind::kBarrier) continue;
      if (seen == k) {
        th.erase(th.begin() + static_cast<ptrdiff_t>(j));
        break;
      }
      ++seen;
    }
  }
  return true;
}

GenProgram generate_program(const ProgramShape& shape) {
  PMC_CHECK(shape.cores >= 1 && shape.objects >= 1 && shape.steps >= 0);
  GenProgram prog;
  prog.shape = shape;
  prog.threads.resize(static_cast<size_t>(shape.cores));

  // Barrier slots come from a single generator so every core agrees on
  // them; op streams come from per-core generators (seeded like the
  // historical fuzz suite) so a core's work is fixed up front.
  util::Rng slots(shape.seed * 0x9e3779b97f4a7c15ULL + 0xb5);
  std::vector<util::Rng> rngs;
  for (int c = 0; c < shape.cores; ++c) {
    rngs.emplace_back(shape.seed * 1315423911u + static_cast<uint64_t>(c));
  }

  const auto nobjs = static_cast<uint64_t>(shape.objects);
  for (int s = 0; s < shape.steps; ++s) {
    if (slots.chance(static_cast<uint64_t>(shape.barrier_pct), 100)) {
      for (auto& t : prog.threads) t.push_back({GenOp::Kind::kBarrier});
    }
    for (int c = 0; c < shape.cores; ++c) {
      util::Rng& rng = rngs[static_cast<size_t>(c)];
      GenOp op;
      op.obj = static_cast<int>(rng.next_below(nobjs));
      const auto r = static_cast<int>(rng.next_below(100));
      int edge = shape.ro_pct;
      if (r < edge) {
        op.kind = GenOp::Kind::kReadOnly;
      } else if (r < (edge += shape.nested_pct)) {
        op.kind = GenOp::Kind::kNested;
        op.obj2 = static_cast<int>(rng.next_below(nobjs));
        op.arg = 1 + static_cast<uint32_t>(rng.next_below(9));
        if (op.obj2 == op.obj) {  // no self-nest
          op.kind = GenOp::Kind::kUpdate;
          op.obj2 = 0;
        }
      } else if (r < (edge += shape.compute_pct)) {
        op.kind = GenOp::Kind::kCompute;
        op.obj = 0;  // dead field: keep ops canonical so they round-trip
        op.arg = static_cast<uint32_t>(rng.next_below(60));
      } else if (r < (edge += shape.fence_pct)) {
        op.kind = GenOp::Kind::kFence;
        op.obj = 0;  // dead field
      } else {
        op.kind = GenOp::Kind::kUpdate;
        op.arg = 1 + static_cast<uint32_t>(rng.next_below(9));
        if (rng.chance(static_cast<uint64_t>(shape.flush_pct), 100)) {
          op.flush = true;
          op.arg2 = 1 + static_cast<uint32_t>(rng.next_below(9));
        }
      }
      prog.threads[static_cast<size_t>(c)].push_back(op);
    }
  }
  // Always end on a barrier: the historical suite did, and it keeps the
  // final-state readback trivially past every core's last section.
  for (auto& t : prog.threads) t.push_back({GenOp::Kind::kBarrier});
  return prog;
}

void run_ops(const GenProgram& prog, rt::Env& env,
             const std::vector<rt::ObjId>& objs) {
  PMC_CHECK(objs.size() >= static_cast<size_t>(prog.shape.objects));
  const auto& ops = prog.threads[static_cast<size_t>(env.id())];
  for (const GenOp& op : ops) {
    const rt::ObjId o = objs[static_cast<size_t>(op.obj)];
    switch (op.kind) {
      case GenOp::Kind::kUpdate:
        env.entry_x(o);
        env.st(o, 0, env.ld<uint32_t>(o) + op.arg);
        if (op.flush) {
          env.flush(o);
          env.st(o, 0, env.ld<uint32_t>(o) + op.arg2);
        }
        env.exit_x(o);
        break;
      case GenOp::Kind::kReadOnly:
        env.entry_ro(o);
        env.ld<uint32_t>(o);
        env.exit_ro(o);
        break;
      case GenOp::Kind::kNested: {
        const rt::ObjId o2 = objs[static_cast<size_t>(op.obj2)];
        env.entry_x(o);
        env.entry_ro(o2);
        env.ld<uint32_t>(o2);  // observed, deliberately not folded in
        env.st(o, 0, env.ld<uint32_t>(o) + op.arg);
        env.exit_ro(o2);
        env.exit_x(o);
        break;
      }
      case GenOp::Kind::kCompute:
        env.compute(op.arg);
        break;
      case GenOp::Kind::kFence:
        env.fence();
        break;
      case GenOp::Kind::kBarrier:
        env.barrier();
        break;
    }
  }
}

std::string to_string(const GenOp& op) {
  switch (op.kind) {
    case GenOp::Kind::kUpdate: {
      std::string s = "x" + std::to_string(op.obj) + "+=" +
                      std::to_string(op.arg);
      if (op.flush) {
        s += ";flush;x" + std::to_string(op.obj) + "+=" +
             std::to_string(op.arg2);
      }
      return s;
    }
    case GenOp::Kind::kReadOnly:
      return "ro(x" + std::to_string(op.obj) + ")";
    case GenOp::Kind::kNested:
      return "x" + std::to_string(op.obj) + "+=" + std::to_string(op.arg) +
             "[ro x" + std::to_string(op.obj2) + "]";
    case GenOp::Kind::kCompute:
      return "compute(" + std::to_string(op.arg) + ")";
    case GenOp::Kind::kFence:
      return "fence";
    case GenOp::Kind::kBarrier:
      return "barrier";
  }
  return "?";
}

std::string to_string(const GenProgram& prog) {
  std::string out;
  for (size_t c = 0; c < prog.threads.size(); ++c) {
    out += "core " + std::to_string(c) + ":";
    for (const GenOp& op : prog.threads[c]) out += " " + to_string(op);
    out += "\n";
  }
  return out;
}

ProgramShape shape_for_seed(uint64_t seed) {
  ProgramShape shape;
  shape.seed = seed;
  shape.cores = 2 + static_cast<int>(seed % 2);
  shape.objects = 2 + static_cast<int>(seed % 3);
  shape.steps = 4 + static_cast<int>(seed % 3);
  return shape;
}

}  // namespace pmc::explore
