// Parallel preemption-bounded schedule exploration (DESIGN.md §7).
//
// Stateless exploration is embarrassingly parallel: every schedule is a full
// re-execution from a fresh Machine, so the only shared structure is the
// frontier of decision-string prefixes still to expand. ParallelExplorer
// shards that frontier over worker threads with per-worker work-stealing
// deques (owners pop newest-first, which keeps the search depth-first and
// the frontier small; thieves steal oldest-first, which hands them the
// largest unexplored subtrees).
//
// Determinism: the bounded schedule space is a fixed tree — each schedule's
// children depend only on its own deterministic run (both engines share
// expand_node, including the DPOR reductions; a frontier entry carries its
// sleep set, so a stolen subtree is reduced exactly as its owner would have
// reduced it) — so `explored`, `pruned`, `dpor_pruned`, `failing` and
// `distinct_traces` are identical for every worker count (absent
// truncation). The reported failure is canonicalized to the
// *lexicographically least* failing decision string — the same tie-break
// the sequential engine applies — so reports are byte-identical run-to-run,
// engine-to-engine, and job-count-to-job-count.
#pragma once

#include "explore/explorer.h"

namespace pmc::explore {

class ParallelExplorer {
 public:
  /// `runner` must be safe to invoke concurrently from several threads: each
  /// invocation has to build its whole world (Machine, Program, policy)
  /// afresh and share nothing mutable — which every CheckTarget::run
  /// (LitmusTarget, GenProgramTarget, the apps targets; explore/check.h)
  /// satisfies by construction. `jobs` < 1 is clamped to 1.
  ParallelExplorer(ScheduleRunner runner, int jobs);

  /// Builds one runner per thread that needs one. Stateful runners
  /// (StatefulExecutor, explore/stateful.h) keep a live Program and a
  /// snapshot pool between invocations, so they cannot be shared across
  /// workers: the factory gives every worker thread — and every minimize
  /// round's evaluator — a private instance. The factory itself must be
  /// thread-safe; the runners it returns need not be. A runner may own its
  /// executor (e.g. via a captured shared_ptr) — it is dropped when the
  /// thread finishes.
  using RunnerFactory = std::function<ScheduleRunner()>;
  ParallelExplorer(RunnerFactory factory, int jobs);

  int jobs() const { return jobs_; }

  /// Explores the same bounded space as Explorer::explore, over `jobs`
  /// workers. Report deltas vs the sequential engine:
  ///  * schedules_to_first_failure is the value of the explored counter when
  ///    the temporally first failure was recorded — a wall-clock-ish "time
  ///    to find" that is NOT stable across job counts (the deterministic
  ///    quantities are the totals and the canonical failing string);
  ///  * when truncated, *which* schedules ran depends on worker timing, so
  ///    only explored (== max_schedules) is meaningful, not pruned/failing.
  ExploreReport explore(const ExploreConfig& cfg);

  /// Same contract as Explorer::replay (replay is inherently sequential).
  RunOutcome replay(const DecisionString& schedule, uint64_t horizon,
                    bool* fully_applied = nullptr);

  /// Greedy 1-minimal reduction, with the candidate replays of each round
  /// evaluated in parallel. Accepting the lowest-index reduction that still
  /// fails per round makes the result identical to Explorer::minimize and
  /// independent of the job count.
  DecisionString minimize(DecisionString failing, uint64_t horizon);

 private:
  RunnerFactory factory_;
  int jobs_;
};

}  // namespace pmc::explore
