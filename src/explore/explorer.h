// Preemption-bounded schedule exploration (DESIGN.md §6) with optional
// happens-before dynamic partial-order reduction (DESIGN.md §8).
//
// The Explorer enumerates interleavings of one deterministic simulated
// program by stateless re-execution: each schedule is a decision string, the
// runner re-runs the whole program under a ReplayPolicy, and the recorded
// candidate counts of the parent run (identical prefix ⇒ identical decisions)
// let the Explorer enumerate all child schedules exactly, without snapshots.
// The search is bounded by a preemption budget (max overrides per schedule)
// and a horizon (only the first H decision points may branch), in the style
// of CHESS-like systematic concurrency testing; delay-segment pruning skips
// preemptions of segments that provably performed no memory-system effect.
//
// DPOR collapses the remaining commuting reorderings: a branch (p, c) is
// generated only when the bypassed candidate's pending segment *conflicts*
// with the segment the default pick runs at p (footprint mode), and per-node
// sleep sets additionally stop a commuted pair of alternatives from being
// explored from both sides (sleep-set mode). Both reductions are pure
// functions of the parent's deterministic run, so the reduced space is still
// a fixed tree — totals stay identical at any worker count.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "explore/decision.h"
#include "explore/replay_policy.h"

namespace pmc::explore {

/// Partial-order-reduction level (ExploreConfig::dpor, CLI --dpor=).
enum class DporMode {
  kOff,        // enumerate every bounded schedule (PR 2/3 behavior)
  kFootprint,  // branch only on dependent (footprint-conflicting) candidates
  kSleepSet,   // footprint + per-node sleep sets
};

const char* to_string(DporMode mode);
/// "off" | "footprint" | "sleepset"; nullopt on anything else.
std::optional<DporMode> dpor_mode_from_string(std::string_view text);

/// Live exploration counters handed to ExploreConfig::progress. All values
/// are monotone totals as of the callback; `distinct_traces` is exact for
/// the sequential engine and a lower bound mid-run for the parallel one.
struct ProgressUpdate {
  uint64_t explored = 0;
  uint64_t pruned = 0;
  uint64_t dpor_pruned = 0;
  uint64_t failing = 0;
  uint64_t distinct_traces = 0;
  /// The session's schedule budget (ExploreConfig::max_schedules), so a
  /// consumer can render "explored / bound" without plumbing the config.
  uint64_t max_schedules = 0;
};

struct ExploreConfig {
  /// Maximum overrides per schedule (preemption bound).
  int preemption_bound = 2;
  /// Only the first `horizon` scheduling decisions may branch.
  uint64_t horizon = 24;
  /// Hard cap on executed schedules; hitting it sets `truncated`.
  uint64_t max_schedules = 50'000;
  /// Skip preemptions of pure-delay segments (compute/idle backoff): moving
  /// such a segment across the preempting core's operations cannot change
  /// which values any read observes, only clock skews that the frontier warp
  /// re-applies anyway. A pruned schedule is counted, not run; its deeper
  /// extensions are not enumerated (bounded-search trade-off, DESIGN.md §6).
  bool prune_delay = true;
  /// Happens-before dynamic partial-order reduction (DESIGN.md §8). Off by
  /// default: reduction skips schedules that are Mazurkiewicz-equivalent to
  /// explored ones, so counts shrink while the set of distinct failures
  /// (after minimization) stays the same.
  DporMode dpor = DporMode::kOff;
  /// Collect every failing decision string into the report (sorted
  /// lexicographically). Off by default to bound memory on huge spaces.
  bool collect_failing = false;
  /// Telemetry-only progress callback, invoked every `progress_stride`
  /// completed schedules plus once when the space is exhausted. The
  /// parallel engine calls it from whichever worker crosses the stride, so
  /// the callback must be thread-safe; it never affects the explored tree.
  using ProgressFn = std::function<void(const ProgressUpdate&)>;
  ProgressFn progress;
  uint64_t progress_stride = 64;
  /// Sample the hb-class discovery curve into ExploreReport::hb_curve:
  /// cumulative distinct trace hashes after 1, 2, 4, ... explored
  /// schedules. Costs one shared set insertion per schedule under the
  /// parallel engine, so off by default.
  bool sample_hb_curve = false;
  /// Export the full set of distinct trace hashes into
  /// ExploreReport::trace_hashes (sorted ascending). The schedule tree is a
  /// fixed function of (program, bounds), so the exported set — unlike the
  /// discovery *curve* — is identical across engines and job counts: the
  /// coverage signal the fuzzing farm's corpus keys on (DESIGN.md §14).
  /// Off by default to avoid materializing huge spaces.
  bool collect_trace_hashes = false;
};

/// Verdict of one schedule, produced by the runner.
struct RunOutcome {
  bool ok = true;
  std::string message;      // first violation when !ok
  uint64_t trace_hash = 0;  // fingerprint of the observable behavior
};

/// Runs the program once under `policy` (construct everything fresh, install
/// the policy, run, validate) and reports the verdict.
using ScheduleRunner = std::function<RunOutcome(ReplayPolicy& policy)>;

struct ExploreReport {
  uint64_t explored = 0;  // schedules executed
  uint64_t pruned = 0;    // schedules enumerated but skipped by delay pruning
  /// Schedules skipped because DPOR proved them equivalent to an explored
  /// representative (independent-candidate branches + sleep-set hits).
  uint64_t dpor_pruned = 0;
  bool truncated = false;
  uint64_t distinct_traces = 0;
  uint64_t failing = 0;
  /// The lexicographically least failing decision string seen (meaningful
  /// iff failing > 0). Both the sequential and the parallel engine
  /// canonicalize to the lexicographic minimum, so reports are byte-
  /// identical across engines and job counts (absent truncation).
  DecisionString first_failing;
  std::string first_failing_message;
  /// Schedules executed up to and including the temporally first failing one
  /// (0 when nothing failed) — the "time to find" a seeded bug; `explored`
  /// keeps counting to the end of the bounded space. Stable for the
  /// sequential engine, wall-clock-ish for the parallel one.
  uint64_t schedules_to_first_failure = 0;
  uint64_t max_decision_points = 0;  // longest run observed
  /// Every failing decision string, sorted by lex_less (only when
  /// ExploreConfig::collect_failing; empty otherwise).
  std::vector<DecisionString> failing_schedules;
  /// Snapshot-engine observability (all zero under the replay engine):
  /// checkpoints captured, schedules forked from a mid-run snapshot, and
  /// schedules that fell back to the pinned root snapshot or a fresh run.
  /// Deliberately excluded from CheckReport::to_text — reports stay
  /// byte-identical across engines.
  uint64_t snapshots_taken = 0;
  uint64_t snapshot_hits = 0;
  uint64_t snapshot_misses = 0;
  /// hb-class discovery curve (only when ExploreConfig::sample_hb_curve):
  /// distinct trace hashes seen after 1, 2, 4, ... explored schedules, plus
  /// a final sample. Deterministic for the sequential engine; traversal-
  /// order-dependent (wall-clock-ish) for the parallel one. Telemetry-only,
  /// excluded from CheckReport::to_text like the snapshot counters.
  std::vector<uint64_t> hb_curve;
  /// Every distinct hb-class hash seen, sorted ascending (only when
  /// ExploreConfig::collect_trace_hashes; empty otherwise). Deterministic
  /// across engines, engine states, and job counts (absent truncation) —
  /// the contract tests/explore/test_hb_stability.cpp locks.
  std::vector<uint64_t> trace_hashes;
  /// Successful steals per worker (parallel engine; empty for the
  /// sequential one). Telemetry-only.
  std::vector<uint64_t> worker_steals;
};

/// One sleeping alternative: core `core`'s pending segment (footprint `fp`)
/// was already explored from a commuting sibling branch; do not branch it
/// again until a dependent segment wakes it (or the core runs by default).
struct SleepEntry {
  int core = -1;
  sim::Footprint fp;
};
using SleepSet = std::vector<SleepEntry>;

/// A frontier node of the (possibly reduced) schedule tree: the decision
/// prefix to replay plus the sleep set inherited from its parent. The
/// parallel explorer ships the sleep set with each stolen entry so the
/// reduced tree — and with it every total — stays job-count-invariant.
struct FrontierNode {
  DecisionString prefix;
  SleepSet sleep;
};

struct ExpandStats {
  uint64_t delay_pruned = 0;
  uint64_t dpor_pruned = 0;
};

/// Enumerates the children of `node` from its completed run `policy`.
/// Pure function of (node, the run's recording, cfg): the sequential and
/// parallel engines share it, which is what makes their trees identical.
void expand_node(const FrontierNode& node, const ReplayPolicy& policy,
                 const ExploreConfig& cfg, std::vector<FrontierNode>* children,
                 ExpandStats* stats);

class Explorer {
 public:
  explicit Explorer(ScheduleRunner runner) : runner_(std::move(runner)) {}

  /// Depth-first enumeration of all schedules within the bounds.
  ExploreReport explore(const ExploreConfig& cfg);

  /// Replays one schedule. When `fully_applied` is non-null it reports
  /// whether every override matched a decision step — false means the
  /// string is stale (wrong program/back-end/horizon, or shifted steps) and
  /// the outcome describes some other schedule, not the requested one.
  RunOutcome replay(const DecisionString& schedule, uint64_t horizon,
                    bool* fully_applied = nullptr);

  /// Greedy 1-minimal reduction of a failing schedule: repeatedly drops any
  /// single override whose removal keeps the failure, until none can go.
  /// A candidate reduction only counts as "still failing" when all its
  /// overrides applied — a replay-mismatch abort is not the bug recurring.
  DecisionString minimize(DecisionString failing, uint64_t horizon);

 private:
  ScheduleRunner runner_;
};

}  // namespace pmc::explore
