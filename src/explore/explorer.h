// Preemption-bounded schedule exploration (DESIGN.md §6).
//
// The Explorer enumerates interleavings of one deterministic simulated
// program by stateless re-execution: each schedule is a decision string, the
// runner re-runs the whole program under a ReplayPolicy, and the recorded
// candidate counts of the parent run (identical prefix ⇒ identical decisions)
// let the Explorer enumerate all child schedules exactly, without snapshots.
// The search is bounded by a preemption budget (max overrides per schedule)
// and a horizon (only the first H decision points may branch), in the style
// of CHESS-like systematic concurrency testing; delay-segment pruning skips
// preemptions of segments that provably performed no memory-system effect.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "explore/decision.h"
#include "explore/replay_policy.h"

namespace pmc::explore {

struct ExploreConfig {
  /// Maximum overrides per schedule (preemption bound).
  int preemption_bound = 2;
  /// Only the first `horizon` scheduling decisions may branch.
  uint64_t horizon = 24;
  /// Hard cap on executed schedules; hitting it sets `truncated`.
  uint64_t max_schedules = 50'000;
  /// Skip preemptions of pure-delay segments (compute/idle backoff): moving
  /// such a segment across the preempting core's operations cannot change
  /// which values any read observes, only clock skews that the frontier warp
  /// re-applies anyway. A pruned schedule is counted, not run; its deeper
  /// extensions are not enumerated (bounded-search trade-off, DESIGN.md §6).
  bool prune_delay = true;
};

/// Verdict of one schedule, produced by the runner.
struct RunOutcome {
  bool ok = true;
  std::string message;      // first violation when !ok
  uint64_t trace_hash = 0;  // fingerprint of the observable behavior
};

/// Runs the program once under `policy` (construct everything fresh, install
/// the policy, run, validate) and reports the verdict.
using ScheduleRunner = std::function<RunOutcome(ReplayPolicy& policy)>;

struct ExploreReport {
  uint64_t explored = 0;  // schedules executed
  uint64_t pruned = 0;    // schedules enumerated but skipped by pruning
  bool truncated = false;
  uint64_t distinct_traces = 0;
  uint64_t failing = 0;
  DecisionString first_failing;  // meaningful iff failing > 0
  std::string first_failing_message;
  /// Schedules executed up to and including the first failing one (0 when
  /// nothing failed) — the "time to find" a seeded bug; `explored` keeps
  /// counting to the end of the bounded space.
  uint64_t schedules_to_first_failure = 0;
  uint64_t max_decision_points = 0;  // longest run observed
};

class Explorer {
 public:
  explicit Explorer(ScheduleRunner runner) : runner_(std::move(runner)) {}

  /// Depth-first enumeration of all schedules within the bounds.
  ExploreReport explore(const ExploreConfig& cfg);

  /// Replays one schedule. When `fully_applied` is non-null it reports
  /// whether every override matched a decision step — false means the
  /// string is stale (wrong program/back-end/horizon, or shifted steps) and
  /// the outcome describes some other schedule, not the requested one.
  RunOutcome replay(const DecisionString& schedule, uint64_t horizon,
                    bool* fully_applied = nullptr);

  /// Greedy 1-minimal reduction of a failing schedule: repeatedly drops any
  /// single override whose removal keeps the failure, until none can go.
  /// A candidate reduction only counts as "still failing" when all its
  /// overrides applied — a replay-mismatch abort is not the bug recurring.
  DecisionString minimize(DecisionString failing, uint64_t horizon);

 private:
  ScheduleRunner runner_;
};

}  // namespace pmc::explore
