#include "explore/explorer.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace pmc::explore {

const char* to_string(DporMode mode) {
  switch (mode) {
    case DporMode::kOff: return "off";
    case DporMode::kFootprint: return "footprint";
    case DporMode::kSleepSet: return "sleepset";
  }
  return "?";
}

std::optional<DporMode> dpor_mode_from_string(std::string_view text) {
  if (text == "off") return DporMode::kOff;
  if (text == "footprint") return DporMode::kFootprint;
  if (text == "sleepset") return DporMode::kSleepSet;
  return std::nullopt;
}

namespace {

bool asleep(const SleepSet& sleep, int core) {
  for (const SleepEntry& e : sleep) {
    if (e.core == core) return true;
  }
  return false;
}

/// Footprint of candidate `core`'s pending segment at step `p`: the segment
/// it runs at its first dispatch >= p in this run. The core is not dispatched
/// in between, so its program state — and with it the addresses the segment
/// touches — is the same whether it runs at `p` (the branch) or at its
/// default spot. nullptr when the dispatch or its footprint fell outside the
/// recording window: callers must then assume dependence.
const sim::Footprint* pending_segment(const ReplayPolicy& policy, uint64_t p,
                                      int core) {
  for (uint64_t q = p;; ++q) {
    const int chosen = policy.chosen_core(q);
    if (chosen < 0) return nullptr;  // beyond the recording window
    if (chosen == core) return policy.segment_footprint(q);
  }
}

}  // namespace

void expand_node(const FrontierNode& node, const ReplayPolicy& policy,
                 const ExploreConfig& cfg, std::vector<FrontierNode>* children,
                 ExpandStats* stats) {
  if (static_cast<int>(node.prefix.size()) >= cfg.preemption_bound) return;
  // This run's decisions up to the horizon are shared by every child
  // (identical override prefix ⇒ identical deterministic execution up to
  // the new override), so the recorded candidate counts enumerate the
  // children exactly. Children extend strictly after the last override,
  // which generates every bounded schedule exactly once.
  const uint64_t start = node.prefix.empty() ? 0 : node.prefix.back().step + 1;
  const uint64_t end = std::min(policy.decision_points(), cfg.horizon);
  const bool dpor = cfg.dpor != DporMode::kOff;
  const bool sleepsets = cfg.dpor == DporMode::kSleepSet;
  SleepSet sleep = node.sleep;  // evolves along the node's default path
  for (uint64_t p = start; p < end; ++p) {
    const int alternatives = policy.candidates_at(p) - 1;
    if (alternatives > 0) {
      if (cfg.prune_delay && policy.pure_segment(p)) {
        stats->delay_pruned += static_cast<uint64_t>(alternatives);
      } else {
        const sim::Footprint* def_fp =
            dpor ? policy.segment_footprint(p) : nullptr;
        SleepSet branched;  // alternatives branched earlier at this step
        for (int c = 1; c <= alternatives; ++c) {
          const int cand = policy.candidate_core(p, c);
          if (sleepsets && asleep(sleep, cand)) {
            // This core's pending segment was already explored from a
            // commuting sibling branch; re-branching it here would reach a
            // Mazurkiewicz-equivalent schedule from the other side.
            ++stats->dpor_pruned;
            continue;
          }
          const sim::Footprint* cand_fp =
              dpor ? pending_segment(policy, p, cand) : nullptr;
          if (dpor) {
            const sim::Footprint& cfp =
                cand_fp != nullptr ? *cand_fp : sim::Footprint::wildcard();
            const sim::Footprint& dfp =
                def_fp != nullptr ? *def_fp : sim::Footprint::wildcard();
            // Prune only a reordering of two *effectful* segments whose
            // footprints commute: (p, c) is then equivalent to branching
            // one step later (or, if the candidate commutes all the way to
            // its default dispatch, to not branching at all) — the retained
            // class representative is the branch right before the first
            // dependent segment. When either segment is pure delay that
            // argument does not apply: dispatching the candidate stalls the
            // bypassed default core and the frontier warp shifts every
            // later posted-write arrival, which can flip timing races that
            // footprints cannot see. Pure-delay preemptions are only ever
            // skipped by the explicit prune_delay trade-off.
            if (!cfp.empty() && !dfp.empty() && !conflicts(cfp, dfp)) {
              ++stats->dpor_pruned;
              continue;
            }
          }
          FrontierNode child;
          child.prefix = node.prefix;
          child.prefix.push_back({p, c});
          if (sleepsets) {
            // A pure or unknown pending segment is treated as a wildcard
            // here: the child inherits no sleep entries (its timing-only
            // move could interact with anything) and the candidate itself
            // never goes to sleep — only effectful, known segments carry
            // the commutation argument.
            const bool cand_known =
                cand_fp != nullptr && !cand_fp->empty() &&
                !cand_fp->is_wildcard();
            const sim::Footprint& cfp =
                cand_known ? *cand_fp : sim::Footprint::wildcard();
            // Inherit every sleeping entry that commutes with this move;
            // dependent ones wake. Earlier commuting siblings go to sleep:
            // their reorderings against this branch are covered from their
            // own subtrees.
            for (const SleepEntry& e : sleep) {
              if (!conflicts(e.fp, cfp)) child.sleep.push_back(e);
            }
            for (const SleepEntry& e : branched) {
              if (!conflicts(e.fp, cfp)) child.sleep.push_back(e);
            }
            std::sort(child.sleep.begin(), child.sleep.end(),
                      [](const SleepEntry& a, const SleepEntry& b) {
                        return a.core < b.core;
                      });
            if (cand_known) branched.push_back({cand, *cand_fp});
          }
          children->push_back(std::move(child));
        }
      }
    }
    // Advance the sleep set past the default segment at p: an entry whose
    // core just ran is consumed (its pending segment is behind us), and a
    // dependent segment wakes everything it conflicts with.
    if (sleepsets && !sleep.empty()) {
      const int chosen = policy.chosen_core(p);
      const sim::Footprint* seg = policy.segment_footprint(p);
      const sim::Footprint& sfp =
          seg != nullptr ? *seg : sim::Footprint::wildcard();
      std::erase_if(sleep, [&](const SleepEntry& e) {
        return chosen < 0 || e.core == chosen || conflicts(e.fp, sfp);
      });
    }
  }
}

RunOutcome Explorer::replay(const DecisionString& schedule, uint64_t horizon,
                            bool* fully_applied) {
  // Replays only consume the verdict, never the DPOR recording.
  ReplayPolicy policy(schedule, horizon, /*record_footprints=*/false);
  RunOutcome out = runner_(policy);
  // An override whose choice no longer matches the candidate count aborts
  // the run mid-way (unconsumed as well), so unused_overrides() == 0 is
  // exactly "this outcome belongs to the requested schedule".
  if (fully_applied != nullptr) {
    *fully_applied = policy.unused_overrides() == 0;
  }
  return out;
}

ExploreReport Explorer::explore(const ExploreConfig& cfg) {
  PMC_CHECK(cfg.preemption_bound >= 0);
  ExploreReport rep;
  std::unordered_set<uint64_t> traces;
  std::vector<FrontierNode> stack;
  stack.push_back({});
  bool have_failing = false;
  const uint64_t stride = cfg.progress_stride == 0 ? 1 : cfg.progress_stride;
  while (!stack.empty()) {
    if (rep.explored >= cfg.max_schedules) {
      rep.truncated = true;
      break;
    }
    FrontierNode node = std::move(stack.back());
    stack.pop_back();
    ReplayPolicy policy(node.prefix, cfg.horizon,
                        /*record_footprints=*/cfg.dpor != DporMode::kOff);
    const RunOutcome out = runner_(policy);
    ++rep.explored;
    traces.insert(out.trace_hash);
    // Power-of-two samples make the discovery curve O(log n) regardless of
    // the space size, which is what a saturation plot needs.
    if (cfg.sample_hb_curve && (rep.explored & (rep.explored - 1)) == 0) {
      rep.hb_curve.push_back(traces.size());
    }
    if (cfg.progress && rep.explored % stride == 0) {
      cfg.progress({rep.explored, rep.pruned, rep.dpor_pruned, rep.failing,
                    traces.size(), cfg.max_schedules});
    }
    rep.max_decision_points =
        std::max(rep.max_decision_points, policy.decision_points());
    if (!out.ok) {
      ++rep.failing;
      if (rep.failing == 1) rep.schedules_to_first_failure = rep.explored;
      // Canonicalize to the lexicographic minimum — the same tie-break the
      // parallel engine uses — so both engines report the identical failing
      // schedule for the same space, not a traversal-order accident.
      if (!have_failing || lex_less(node.prefix, rep.first_failing)) {
        rep.first_failing = node.prefix;
        rep.first_failing_message = out.message;
        have_failing = true;
      }
      if (cfg.collect_failing) rep.failing_schedules.push_back(node.prefix);
    }
    ExpandStats stats;
    std::vector<FrontierNode> children;
    expand_node(node, policy, cfg, &children, &stats);
    rep.pruned += stats.delay_pruned;
    rep.dpor_pruned += stats.dpor_pruned;
    for (FrontierNode& child : children) stack.push_back(std::move(child));
  }
  rep.distinct_traces = traces.size();
  if (cfg.collect_trace_hashes) {
    rep.trace_hashes.assign(traces.begin(), traces.end());
    std::sort(rep.trace_hashes.begin(), rep.trace_hashes.end());
  }
  // Close the curve and the progress stream on the final totals.
  if (cfg.sample_hb_curve && rep.explored > 0 &&
      (rep.explored & (rep.explored - 1)) != 0) {
    rep.hb_curve.push_back(traces.size());
  }
  if (cfg.progress) {
    cfg.progress({rep.explored, rep.pruned, rep.dpor_pruned, rep.failing,
                  traces.size(), cfg.max_schedules});
  }
  std::sort(rep.failing_schedules.begin(), rep.failing_schedules.end(),
            lex_less);
  return rep;
}

DecisionString Explorer::minimize(DecisionString failing, uint64_t horizon) {
  bool changed = true;
  while (changed && !failing.empty()) {
    changed = false;
    for (size_t i = 0; i < failing.size(); ++i) {
      DecisionString shorter = failing;
      shorter.erase(shorter.begin() + static_cast<ptrdiff_t>(i));
      // Dropping an override shifts the execution, so a later override can
      // fall off the run (or outgrow the candidate count and abort the
      // replay). Such a reduction did not reproduce the bug — skip it.
      bool applied = false;
      if (!replay(shorter, horizon, &applied).ok && applied) {
        failing = std::move(shorter);
        changed = true;
        break;
      }
    }
  }
  return failing;
}

}  // namespace pmc::explore
