#include "explore/explorer.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace pmc::explore {

RunOutcome Explorer::replay(const DecisionString& schedule, uint64_t horizon,
                            bool* fully_applied) {
  ReplayPolicy policy(schedule, horizon);
  RunOutcome out = runner_(policy);
  // An override whose choice no longer matches the candidate count aborts
  // the run mid-way (unconsumed as well), so unused_overrides() == 0 is
  // exactly "this outcome belongs to the requested schedule".
  if (fully_applied != nullptr) {
    *fully_applied = policy.unused_overrides() == 0;
  }
  return out;
}

ExploreReport Explorer::explore(const ExploreConfig& cfg) {
  PMC_CHECK(cfg.preemption_bound >= 0);
  ExploreReport rep;
  std::unordered_set<uint64_t> traces;
  std::vector<DecisionString> stack;
  stack.push_back({});
  while (!stack.empty()) {
    if (rep.explored >= cfg.max_schedules) {
      rep.truncated = true;
      break;
    }
    DecisionString s = std::move(stack.back());
    stack.pop_back();
    ReplayPolicy policy(s, cfg.horizon);
    const RunOutcome out = runner_(policy);
    ++rep.explored;
    traces.insert(out.trace_hash);
    rep.max_decision_points =
        std::max(rep.max_decision_points, policy.decision_points());
    if (!out.ok) {
      ++rep.failing;
      if (rep.failing == 1) {
        rep.first_failing = s;
        rep.first_failing_message = out.message;
        rep.schedules_to_first_failure = rep.explored;
      }
    }
    if (static_cast<int>(s.size()) >= cfg.preemption_bound) continue;
    // This run's decisions up to the horizon are shared by every child
    // (identical override prefix ⇒ identical deterministic execution up to
    // the new override), so the recorded candidate counts enumerate the
    // children exactly. Children extend strictly after the last override,
    // which generates every bounded schedule exactly once.
    const uint64_t start = s.empty() ? 0 : s.back().step + 1;
    const uint64_t end = std::min(policy.decision_points(), cfg.horizon);
    for (uint64_t p = start; p < end; ++p) {
      const int alternatives = policy.candidates_at(p) - 1;
      if (alternatives <= 0) continue;
      if (cfg.prune_delay && policy.pure_segment(p)) {
        rep.pruned += static_cast<uint64_t>(alternatives);
        continue;
      }
      for (int c = 1; c <= alternatives; ++c) {
        DecisionString child = s;
        child.push_back({p, c});
        stack.push_back(std::move(child));
      }
    }
  }
  rep.distinct_traces = traces.size();
  return rep;
}

DecisionString Explorer::minimize(DecisionString failing, uint64_t horizon) {
  bool changed = true;
  while (changed && !failing.empty()) {
    changed = false;
    for (size_t i = 0; i < failing.size(); ++i) {
      DecisionString shorter = failing;
      shorter.erase(shorter.begin() + static_cast<ptrdiff_t>(i));
      // Dropping an override shifts the execution, so a later override can
      // fall off the run (or outgrow the candidate count and abort the
      // replay). Such a reduction did not reproduce the bug — skip it.
      bool applied = false;
      if (!replay(shorter, horizon, &applied).ok && applied) {
        failing = std::move(shorter);
        changed = true;
        break;
      }
    }
  }
  return failing;
}

}  // namespace pmc::explore
