// SchedulePolicy that replays a decision string and records what it saw.
//
// At every scheduling decision the policy applies the next override if its
// step matches, and otherwise picks the min-time default. While running it
// records, for every decision step up to the horizon, how many candidates
// were runnable (and which cores they were), and — up to a fixed window past
// the horizon — which core was dispatched and the shared-memory footprint of
// the segment that just ended. This is exactly the information the Explorer
// needs to enumerate, delay-prune, and partial-order-reduce the children of
// this schedule (DESIGN.md §6/§8) without re-running it.
#pragma once

#include <cstdint>
#include <vector>

#include "explore/decision.h"
#include "sim/scheduler.h"

namespace pmc::explore {

class ReplayPolicy final : public sim::SchedulePolicy {
 public:
  /// Steps beyond the horizon for which dispatches and segment footprints
  /// are still recorded. A branch candidate's pending segment is the one it
  /// runs at its next default dispatch, which can lie past the horizon; the
  /// window bounds the recording cost, and anything beyond it is reported
  /// as unknown (callers must then assume dependence, never independence).
  static constexpr uint64_t kFootprintWindow = 64;

  /// `horizon` bounds the recorded prefix (and thus which steps can branch).
  /// `record_footprints` enables the DPOR recording (candidate/chosen cores
  /// and per-segment footprints); pass false on non-DPOR hot paths — the
  /// scheduler then skips footprint accumulation entirely and this policy
  /// records only what plain enumeration and delay pruning need.
  ReplayPolicy(DecisionString overrides, uint64_t horizon,
               bool record_footprints = true);

  int pick(const sim::YieldPoint& yp,
           const std::vector<sim::ScheduleCandidate>& cands) override;
  bool wants_footprints() const override { return record_; }

  // -- Post-run observations --------------------------------------------------
  /// Total scheduling decisions the run took.
  uint64_t decision_points() const { return steps_; }
  /// Candidate count at decision step `p` (recorded steps only, p < horizon).
  int candidates_at(uint64_t p) const {
    return p < cand_count_.size() ? cand_count_[p] : 0;
  }
  /// Core id of candidate `c` at decision step `p`, or -1 when unrecorded.
  /// Candidates are (time, core)-sorted, so index 0 is the default pick.
  int candidate_core(uint64_t p, int c) const {
    if (p >= cand_cores_.size()) return -1;
    const auto& cores = cand_cores_[p];
    if (c < 0 || c >= static_cast<int>(cores.size())) return -1;
    return cores[static_cast<size_t>(c)];
  }
  /// Core dispatched at step `p` (after any override), or -1 when beyond the
  /// recording window.
  int chosen_core(uint64_t p) const {
    return p < chosen_.size() ? chosen_[p] : -1;
  }
  /// Footprint of the segment dispatched at step `p` — established by the
  /// yield that ended it. nullptr when unknown (last segment of the run, or
  /// beyond the recording window): callers must treat unknown as dependent.
  const sim::Footprint* segment_footprint(uint64_t p) const {
    return p < seg_fp_.size() ? &seg_fp_[p] : nullptr;
  }
  /// True when the segment dispatched at step `p` performed no memory-system
  /// effect (pure compute/idle delay) — established by the yield that ended
  /// it. Unknown (last segment / beyond horizon) reports false, so callers
  /// never prune on missing information.
  bool pure_segment(uint64_t p) const {
    return p + 1 < observable_.size() && observable_[p + 1] == 0;
  }
  /// Overrides that never matched a decision step (stale replay string).
  size_t unused_overrides() const { return overrides_.size() - next_; }

  // -- Snapshot-engine support (DESIGN.md §10) -------------------------------

  /// Everything pick() has recorded so far. The policy's mutable state lives
  /// *outside* the machine, so checkpointing engines must capture it at the
  /// same decision step as the Machine snapshot and seed() the next policy
  /// with it — otherwise a resumed run loses the candidate/footprint log of
  /// the shared prefix.
  struct Recording {
    uint64_t steps = 0;
    std::vector<int> cand_count;
    std::vector<uint8_t> observable;
    std::vector<std::vector<int>> cand_cores;
    std::vector<int> chosen;
    std::vector<sim::Footprint> seg_fp;
  };
  /// Captured pre-pick: call while decision `steps` has not executed yet
  /// (e.g. from CheckpointHook::on_checkpoint).
  Recording export_recording() const {
    return {steps_, cand_count_, observable_, cand_cores_, chosen_, seg_fp_};
  }
  /// Seeds a fresh policy with a prefix recording before its run resumes
  /// mid-schedule. Overrides with step < recording.steps are skipped — those
  /// decisions already happened inside the restored machine state.
  void seed(const Recording& r);
  const DecisionString& overrides() const { return overrides_; }

 private:
  DecisionString overrides_;
  uint64_t horizon_;
  uint64_t record_limit_;  // horizon + kFootprintWindow
  bool record_;            // DPOR recording on?
  size_t next_ = 0;
  uint64_t steps_ = 0;
  std::vector<int> cand_count_;      // indexed by step, up to horizon
  std::vector<uint8_t> observable_;  // indexed by step, up to horizon + 1
  std::vector<std::vector<int>> cand_cores_;  // indexed by step, up to horizon
  std::vector<int> chosen_;            // indexed by step, up to record_limit_
  std::vector<sim::Footprint> seg_fp_;  // segment dispatched at step p
};

}  // namespace pmc::explore
