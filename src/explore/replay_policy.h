// SchedulePolicy that replays a decision string and records what it saw.
//
// At every scheduling decision the policy applies the next override if its
// step matches, and otherwise picks the min-time default. While running it
// records, for every decision step up to the horizon, how many candidates
// were runnable and whether the segment that just ended touched the memory
// system — exactly the information the Explorer needs to enumerate and
// prune the children of this schedule without re-running it.
#pragma once

#include <cstdint>
#include <vector>

#include "explore/decision.h"
#include "sim/scheduler.h"

namespace pmc::explore {

class ReplayPolicy final : public sim::SchedulePolicy {
 public:
  /// `horizon` bounds the recorded prefix (and thus which steps can branch).
  ReplayPolicy(DecisionString overrides, uint64_t horizon);

  int pick(const sim::YieldPoint& yp,
           const std::vector<sim::ScheduleCandidate>& cands) override;

  // -- Post-run observations --------------------------------------------------
  /// Total scheduling decisions the run took.
  uint64_t decision_points() const { return steps_; }
  /// Candidate count at decision step `p` (recorded steps only, p < horizon).
  int candidates_at(uint64_t p) const {
    return p < cand_count_.size() ? cand_count_[p] : 0;
  }
  /// True when the segment dispatched at step `p` performed no memory-system
  /// effect (pure compute/idle delay) — established by the yield that ended
  /// it. Unknown (last segment / beyond horizon) reports false, so callers
  /// never prune on missing information.
  bool pure_segment(uint64_t p) const {
    return p + 1 < observable_.size() && observable_[p + 1] == 0;
  }
  /// Overrides that never matched a decision step (stale replay string).
  size_t unused_overrides() const { return overrides_.size() - next_; }

 private:
  DecisionString overrides_;
  uint64_t horizon_;
  size_t next_ = 0;
  uint64_t steps_ = 0;
  std::vector<int> cand_count_;      // indexed by step, up to horizon
  std::vector<uint8_t> observable_;  // indexed by step, up to horizon + 1
};

}  // namespace pmc::explore
