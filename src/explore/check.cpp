#include "explore/check.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <unordered_map>

#include "apps/mfifo.h"
#include "apps/task_queue.h"
#include "explore/litmus_driver.h"
#include "explore/parallel_explorer.h"
#include "explore/stateful.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/hash.h"

namespace pmc::explore {

// -- Happens-before trace fingerprint ----------------------------------------

namespace {

/// Dependence chains of one location: the node hash of its last write, a
/// commutative accumulator of the reads since that write (a write must
/// order after every one of them, but the reads commute among themselves),
/// and the last acquire/release (lock order is a total chain per location).
struct LocChain {
  uint64_t last_write = 0;
  uint64_t reads_acc = 0;
  uint64_t last_sync = 0;
};

/// Stutter witness of one processor: the dependence-relevant content of its
/// most recent event when that event was a read. A poll loop spinning on an
/// unchanged version re-issues byte-identical reads; collapsing them makes
/// spin-iteration counts (pure timing) invisible to the quotient.
struct LastRead {
  bool valid = false;
  model::LocId loc = -1;
  uint64_t value = 0;
  uint64_t dep = 0;  // the last_write chain the read observed
};

}  // namespace

uint64_t hb_trace_hash(const std::vector<model::TraceEvent>& trace) {
  using Kind = model::TraceEvent::Kind;
  std::unordered_map<model::ProcId, uint64_t> proc_chain;
  std::unordered_map<model::ProcId, LastRead> last_read;
  std::unordered_map<model::LocId, LocChain> locs;
  uint64_t sum = 0;  // commutative fold: wrapping sum of per-event hashes
  for (const model::TraceEvent& e : trace) {
    LocChain& lc = locs[e.loc];
    LastRead& lr = last_read[e.proc];
    if (e.kind == Kind::kRead && lr.valid && lr.loc == e.loc &&
        lr.value == e.value && lr.dep == lc.last_write) {
      continue;  // stuttering poll read: same location, value, and writer
    }
    uint64_t node = util::kFnvOffset;
    node = util::hash_combine(node, static_cast<uint64_t>(e.kind));
    node = util::hash_combine(node, static_cast<uint64_t>(e.proc));
    node = util::hash_combine(node,
                              static_cast<uint64_t>(static_cast<int64_t>(e.loc)));
    node = util::hash_combine(node, e.value);
    node = util::hash_combine(node, proc_chain[e.proc]);  // program order
    switch (e.kind) {
      case Kind::kRead:
        node = util::hash_combine(node, lc.last_write);
        break;
      case Kind::kWrite:
        node = util::hash_combine(node, lc.last_write);
        node = util::hash_combine(node, lc.reads_acc);
        break;
      case Kind::kAcquire:
      case Kind::kRelease:
        node = util::hash_combine(node, lc.last_sync);
        break;
      case Kind::kFence:
        break;  // program order only
    }
    sum += node;
    proc_chain[e.proc] = node;
    lr.valid = e.kind == Kind::kRead;
    if (lr.valid) {
      lr.loc = e.loc;
      lr.value = e.value;
      lr.dep = lc.last_write;
    }
    switch (e.kind) {
      case Kind::kRead:
        lc.reads_acc += node;
        break;
      case Kind::kWrite:
        lc.last_write = node;
        lc.reads_acc = 0;
        break;
      case Kind::kAcquire:
      case Kind::kRelease:
        lc.last_sync = node;
        break;
      case Kind::kFence:
        break;
    }
  }
  return util::hash_combine(util::kFnvOffset, sum);
}

// -- Stateful decomposition --------------------------------------------------

RunOutcome run_spec_once(const StatefulSpec& spec, ReplayPolicy& policy) {
  RunOutcome out;
  try {
    rt::ProgramOptions opts = spec.opts;
    opts.schedule_policy = &policy;
    rt::Program prog(opts);
    spec.setup(prog);
    prog.run(spec.body);
    spec.judge(prog, out);
  } catch (const std::exception& e) {
    out.ok = false;
    out.message = e.what();
  }
  return out;
}

StatefulSpec CheckTarget::make_spec() const {
  PMC_CHECK_MSG(false, name() << " is not stateful_capable");
  return {};
}

// -- LitmusTarget ------------------------------------------------------------

namespace {

bool contains_poll(const model::LitmusTest& test) {
  for (const auto& th : test.threads) {
    for (const auto& op : th.ops) {
      if (op.kind == model::LitmusOp::Kind::kLoadUntil) return true;
    }
  }
  return false;
}

}  // namespace

LitmusTarget::LitmusTarget(model::LitmusTest test, rt::Target target,
                           rt::FaultInjection faults,
                           std::optional<sim::MachineConfig> machine)
    : test_(std::move(test)),
      target_(target),
      faults_(faults),
      machine_(std::move(machine)) {
  PMC_CHECK_MSG(annotatable(test_),
                test_.name << " is not annotation-disciplined; the back-ends "
                              "only define behavior for §V-A programs");
  PMC_CHECK_MSG(rt::is_sim(target_), "exploration drives simulated targets");
  has_poll_ = contains_poll(test_);
  // The in-order simulated cores issue in program order, so the
  // program-order enumeration is the exact end-to-end oracle.
  allowed_ = model::explore(test_).outcomes;
  PMC_CHECK_MSG(!allowed_.empty(), test_.name << " has no completed path");
}

std::string LitmusTarget::name() const {
  return test_.name + "@" + rt::to_string(target_);
}

RunOutcome LitmusTarget::run(ReplayPolicy& policy) const {
  return run_spec_once(make_spec(), policy);
}

StatefulSpec LitmusTarget::make_spec() const {
  using Kind = model::LitmusOp::Kind;
  StatefulSpec spec;
  spec.opts.target = target_;
  spec.opts.cores = static_cast<int>(test_.threads.size());
  if (machine_.has_value()) {
    // Custom shape (e.g. --config): timing/cache/NoC model come from the
    // description; Program re-derives the core count and mesh for the test.
    spec.opts.machine = *machine_;
  } else {
    spec.opts.machine = sim::MachineConfig::ml605(spec.opts.cores);
    spec.opts.machine.lm_bytes = 32 * 1024;
    spec.opts.machine.sdram_bytes = 256 * 1024;
  }
  spec.opts.machine.max_cycles = UINT64_C(50'000'000);
  spec.opts.lock_capacity = 16;
  spec.opts.validate = true;
  spec.opts.faults = faults_;
  spec.opts.policy.dsm_eager_release = has_poll_;

  // Run-mutable oracle state lives on the heap, shared by the phase
  // lambdas: a run()-frame local would be gone by the first resume.
  struct State {
    std::vector<rt::ObjId> objs;
    std::vector<uint64_t> regs;
  };
  auto st = std::make_shared<State>();

  spec.setup = [this, st](rt::Program& prog) {
    st->objs.clear();  // idempotent: the executor may rebuild the Program
    for (int v = 0; v < test_.num_locs; ++v) {
      const uint32_t init =
          v < static_cast<int>(test_.initial.size())
              ? static_cast<uint32_t>(test_.initial[static_cast<size_t>(v)])
              : 0;
      st->objs.push_back(prog.create_typed<uint32_t>(
          init, rt::Placement::kReplicated, "v" + std::to_string(v)));
    }
    st->regs.assign(static_cast<size_t>(test_.num_regs), 0);
    if (prog.machine()->snapshots_enabled() && !st->regs.empty()) {
      prog.machine()->register_state(st->regs.data(),
                                     st->regs.size() * sizeof(uint64_t));
    }
  };

  spec.body = [this, st](rt::Env& env) {
    const auto& ops = test_.threads[static_cast<size_t>(env.id())].ops;
    // This frame lives on a checkpointable fiber stack: locals alive across
    // runtime calls must be trivially copyable (SimEnv bounds open-section
    // nesting to kMaxOpen before anything could be pushed past it).
    model::LocId open[rt::SimEnv::kMaxOpen];
    int num_open = 0;
    auto is_open = [&](model::LocId v) {
      for (int i = 0; i < num_open; ++i) {
        if (open[i] == v) return true;
      }
      return false;
    };
    for (const auto& op : ops) {
      const rt::ObjId obj =
          op.loc >= 0 ? st->objs[static_cast<size_t>(op.loc)] : -1;
      switch (op.kind) {
        case Kind::kAcquire:
          env.entry_x(obj);
          open[num_open++] = op.loc;
          break;
        case Kind::kRelease:
          env.exit_x(obj);
          --num_open;
          break;
        case Kind::kStore:
          env.st<uint32_t>(obj, 0, static_cast<uint32_t>(op.value));
          break;
        case Kind::kLoad: {
          uint32_t v;
          if (is_open(op.loc)) {
            v = env.ld<uint32_t>(obj);
          } else {
            env.entry_ro(obj);
            v = env.ld<uint32_t>(obj);
            env.exit_ro(obj);
          }
          if (op.reg >= 0) st->regs[static_cast<size_t>(op.reg)] = v;
          break;
        }
        case Kind::kLoadUntil: {
          uint32_t v;
          do {
            env.entry_ro(obj);
            v = env.ld<uint32_t>(obj);
            env.exit_ro(obj);
          } while (v != static_cast<uint32_t>(op.value));
          break;
        }
        case Kind::kFence:
          env.fence();
          break;
      }
    }
  };

  spec.judge = [this, st](rt::Program& prog, RunOutcome& out) {
    uint64_t h = hb_trace_hash(prog.trace());
    for (const uint64_t r : st->regs) h = util::hash_combine(h, r);
    out.trace_hash = h;

    if (!prog.validator()->ok()) {
      out.ok = false;
      out.message = "Definition 12 violation: " +
                    prog.validator()->first_violation();
      return;
    }
    if (allowed_.find(st->regs) == allowed_.end()) {
      out.ok = false;
      out.message = "outcome {";
      for (size_t i = 0; i < st->regs.size(); ++i) {
        if (i) out.message += ',';
        out.message += std::to_string(st->regs[i]);
      }
      out.message += "} is not reachable in the model";
    }
  };
  return spec;
}

// -- GenProgramTarget --------------------------------------------------------

GenProgramTarget::GenProgramTarget(GenProgram prog, rt::Target target,
                                   rt::FaultInjection faults)
    : prog_(std::move(prog)), target_(target), faults_(faults) {
  PMC_CHECK_MSG(!prog_.threads.empty() &&
                    static_cast<int>(prog_.threads.size()) == prog_.shape.cores,
                "program thread count must match its shape");
  PMC_CHECK_MSG(rt::is_sim(target_), "exploration drives simulated targets");
}

std::string GenProgramTarget::name() const {
  return "fuzz-seed-" + std::to_string(prog_.shape.seed) + "@" +
         rt::to_string(target_);
}

RunOutcome GenProgramTarget::run(ReplayPolicy& policy) const {
  return run_spec_once(make_spec(), policy);
}

StatefulSpec GenProgramTarget::make_spec() const {
  StatefulSpec spec;
  spec.opts.target = target_;
  spec.opts.cores = prog_.shape.cores;
  spec.opts.machine = sim::MachineConfig::ml605(spec.opts.cores);
  spec.opts.machine.lm_bytes = 32 * 1024;
  spec.opts.machine.sdram_bytes = 512 * 1024;
  spec.opts.machine.max_cycles = UINT64_C(100'000'000);
  spec.opts.lock_capacity = 64;
  spec.opts.validate = true;
  spec.opts.faults = faults_;

  struct State {
    std::vector<rt::ObjId> objs;
  };
  auto st = std::make_shared<State>();

  spec.setup = [this, st](rt::Program& p) {
    st->objs.clear();  // idempotent: the executor may rebuild the Program
    for (int i = 0; i < prog_.shape.objects; ++i) {
      st->objs.push_back(p.create_typed<uint32_t>(
          GenProgram::initial_value(i), rt::Placement::kReplicated,
          "fuzz" + std::to_string(i)));
    }
    // The objs list is the only host-side state; run_ops never mutates it,
    // so there is nothing to register with the snapshot contract.
  };

  spec.body = [this, st](rt::Env& env) { run_ops(prog_, env, st->objs); };

  spec.judge = [this, st](rt::Program& p, RunOutcome& out) {
    uint64_t h = hb_trace_hash(p.trace());
    for (int i = 0; i < prog_.shape.objects; ++i) {
      h = util::hash_combine(h,
                             p.result<uint32_t>(st->objs[static_cast<size_t>(i)]));
    }
    out.trace_hash = h;

    if (p.validator() != nullptr && !p.validator()->ok()) {
      out.ok = false;
      out.message =
          "Definition 12 violation: " + p.validator()->first_violation();
      return;
    }
    for (int i = 0; i < prog_.shape.objects; ++i) {
      const uint32_t got = p.result<uint32_t>(st->objs[static_cast<size_t>(i)]);
      const uint32_t want = prog_.expected_final(i);
      if (got != want) {
        out.ok = false;
        out.message = "final-state divergence on " +
                      std::string(rt::to_string(target_)) + ": object x" +
                      std::to_string(i) + " is " + std::to_string(got) +
                      ", every back-end must reach " + std::to_string(want);
        return;
      }
    }
  };
  return spec;
}

size_t GenProgramTarget::shrink_count() const { return prog_.ops(); }

std::unique_ptr<CheckTarget> GenProgramTarget::shrink(size_t i) const {
  GenProgram cand = prog_;
  for (size_t th = 0; th < cand.threads.size(); ++th) {
    const size_t len = cand.threads[th].size();
    if (i < len) {
      // Dropping a barrier removes the matching slot-aligned barrier from
      // every thread, so the candidates for thread > 0's instances are
      // byte-identical to thread 0's — structurally duplicate, not worth a
      // re-exploration each.
      if (th > 0 && cand.threads[th][i].kind == GenOp::Kind::kBarrier) {
        return nullptr;
      }
      if (!cand.drop(static_cast<int>(th), i)) return nullptr;
      return std::make_unique<GenProgramTarget>(std::move(cand), target_,
                                                faults_);
    }
    i -= len;
  }
  return nullptr;
}

// -- Apps-layer targets ------------------------------------------------------

namespace {

rt::ProgramOptions app_options(rt::Target target, int cores,
                               const rt::FaultInjection& faults,
                               sim::SchedulePolicy* policy) {
  rt::ProgramOptions opts;
  opts.target = target;
  opts.cores = cores;
  opts.machine = sim::MachineConfig::ml605(cores);
  opts.machine.lm_bytes = 32 * 1024;
  opts.machine.sdram_bytes = 256 * 1024;
  // A seeded protocol fault can starve a poll loop outright (e.g. SPM never
  // copying the counter back); the watchdog converts the hang into a failing
  // outcome the session then minimizes. Clean app runs at these shapes stay
  // well under 100k cycles, so 2M is ample headroom while keeping the
  // deadlocked-schedule case (which simulates every cycle) explorable.
  opts.machine.max_cycles = UINT64_C(2'000'000);
  opts.lock_capacity = 32;
  opts.validate = true;
  opts.faults = faults;
  opts.schedule_policy = policy;
  return opts;
}

}  // namespace

MFifoTarget::MFifoTarget(rt::Target target, MFifoShape shape,
                         rt::FaultInjection faults)
    : target_(target), shape_(shape), faults_(faults) {
  PMC_CHECK_MSG(rt::is_sim(target_), "exploration drives simulated targets");
  PMC_CHECK(shape_.depth >= 1 && shape_.readers >= 1 && shape_.items >= 1);
}

std::string MFifoTarget::name() const {
  return "mfifo(d" + std::to_string(shape_.depth) + ",r" +
         std::to_string(shape_.readers) + ",i" + std::to_string(shape_.items) +
         ")@" + rt::to_string(target_);
}

RunOutcome MFifoTarget::run(ReplayPolicy& policy) const {
  return run_spec_once(make_spec(), policy);
}

StatefulSpec MFifoTarget::make_spec() const {
  StatefulSpec spec;
  spec.opts = app_options(target_, 1 + shape_.readers, faults_,
                          /*policy=*/nullptr);
  // push() and pop() both poll pointers; like every polling litmus test,
  // DSM must release eagerly or the unsynchronized poll spins forever.
  spec.opts.policy.dsm_eager_release = true;

  struct State {
    std::optional<apps::MFifo> fifo;
    // Flat readers × items element log plus per-reader counts: the body
    // mutates these mid-run, so they join the snapshot contract — which
    // requires fixed, registrable storage, not ragged push_back vectors.
    std::vector<uint32_t> got;
    std::vector<uint32_t> counts;
  };
  auto st = std::make_shared<State>();

  spec.setup = [this, st](rt::Program& prog) {
    st->fifo.emplace(prog, /*elem_bytes=*/4, shape_.depth, shape_.readers);
    st->got.assign(static_cast<size_t>(shape_.readers) * shape_.items, 0);
    st->counts.assign(static_cast<size_t>(shape_.readers), 0);
    if (prog.machine()->snapshots_enabled()) {
      prog.machine()->register_state(st->got.data(),
                                     st->got.size() * sizeof(uint32_t));
      prog.machine()->register_state(st->counts.data(),
                                     st->counts.size() * sizeof(uint32_t));
    }
  };

  spec.body = [this, st](rt::Env& env) {
    if (env.id() == 0) {
      for (uint32_t i = 0; i < shape_.items; ++i) {
        const uint32_t v = 100u + i;
        st->fifo->push(env, &v);
      }
    } else {
      const size_t me = static_cast<size_t>(env.id() - 1);
      for (uint32_t i = 0; i < shape_.items; ++i) {
        uint32_t v = 0;
        st->fifo->pop(env, env.id() - 1, &v);
        st->got[me * shape_.items + st->counts[me]++] = v;
      }
    }
  };

  spec.judge = [this, st](rt::Program& prog, RunOutcome& out) {
    uint64_t h = hb_trace_hash(prog.trace());
    for (int r = 0; r < shape_.readers; ++r) {
      const size_t base = static_cast<size_t>(r) * shape_.items;
      for (uint32_t i = 0; i < st->counts[static_cast<size_t>(r)]; ++i) {
        h = util::hash_combine(h, st->got[base + i]);
      }
    }
    out.trace_hash = h;

    if (prog.validator() != nullptr && !prog.validator()->ok()) {
      out.ok = false;
      out.message = "Definition 12 violation: " +
                    prog.validator()->first_violation();
      return;
    }
    // Broadcast delivery: every reader received every element, in push
    // order (a single writer makes the global slot order the push order).
    // A completed run pops exactly `items` elements per reader.
    for (int r = 0; r < shape_.readers; ++r) {
      const size_t base = static_cast<size_t>(r) * shape_.items;
      for (uint32_t i = 0; i < shape_.items; ++i) {
        if (st->got[base + i] != 100u + i) {
          out.ok = false;
          out.message = "broadcast violation on " +
                        std::string(rt::to_string(target_)) + ": reader " +
                        std::to_string(r) + " got " +
                        std::to_string(st->got[base + i]) + " as element " +
                        std::to_string(i) + ", expected " +
                        std::to_string(100u + i);
          return;
        }
      }
    }
  };
  return spec;
}

TaskCounterTarget::TaskCounterTarget(rt::Target target, TaskCounterShape shape,
                                     rt::FaultInjection faults)
    : target_(target), shape_(shape), faults_(faults) {
  PMC_CHECK_MSG(rt::is_sim(target_), "exploration drives simulated targets");
  PMC_CHECK(shape_.cores >= 1 && shape_.total >= 1 && shape_.chunk >= 1);
}

std::string TaskCounterTarget::name() const {
  return "taskcounter(c" + std::to_string(shape_.cores) + ",t" +
         std::to_string(shape_.total) + ",k" + std::to_string(shape_.chunk) +
         ")@" + rt::to_string(target_);
}

RunOutcome TaskCounterTarget::run(ReplayPolicy& policy) const {
  return run_spec_once(make_spec(), policy);
}

StatefulSpec TaskCounterTarget::make_spec() const {
  using Chunk = apps::TaskCounter::Chunk;
  StatefulSpec spec;
  spec.opts = app_options(target_, shape_.cores, faults_, /*policy=*/nullptr);

  // The chunk log joins the snapshot contract (the body fills it mid-run),
  // so it must be fixed-size. A correct execution grabs at most `total`
  // non-empty chunks per core; a fault-injected counter can briefly regress
  // and hand out more, so leave slack — past it the run is reported as a
  // failing outcome rather than silently dropping chunks.
  const uint32_t cap = shape_.total + 16;

  struct State {
    apps::TaskCounter counter;
    std::vector<Chunk> chunks;     // flat cores × cap grab log
    std::vector<uint32_t> counts;  // per-core chunks grabbed
  };
  auto st = std::make_shared<State>();

  spec.setup = [this, st, cap](rt::Program& prog) {
    st->counter.create(prog);
    st->chunks.assign(static_cast<size_t>(shape_.cores) * cap, Chunk{});
    st->counts.assign(static_cast<size_t>(shape_.cores), 0);
    if (prog.machine()->snapshots_enabled()) {
      prog.machine()->register_state(st->chunks.data(),
                                     st->chunks.size() * sizeof(Chunk));
      prog.machine()->register_state(st->counts.data(),
                                     st->counts.size() * sizeof(uint32_t));
    }
  };

  spec.body = [this, st, cap](rt::Env& env) {
    const size_t me = static_cast<size_t>(env.id());
    for (;;) {
      const Chunk c = st->counter.grab(env, shape_.total, shape_.chunk);
      if (c.empty()) break;
      PMC_CHECK_MSG(st->counts[me] < cap,
                    "task counter ran away: core "
                        << env.id() << " grabbed more than " << cap
                        << " chunks of [0," << shape_.total << ")");
      st->chunks[me * cap + st->counts[me]++] = c;
    }
  };

  spec.judge = [this, st, cap](rt::Program& prog, RunOutcome& out) {
    uint64_t h = hb_trace_hash(prog.trace());
    for (int core = 0; core < shape_.cores; ++core) {
      const size_t base = static_cast<size_t>(core) * cap;
      for (uint32_t i = 0; i < st->counts[static_cast<size_t>(core)]; ++i) {
        h = util::hash_combine(h, st->chunks[base + i].begin);
        h = util::hash_combine(h, st->chunks[base + i].end);
      }
    }
    out.trace_hash = h;

    if (prog.validator() != nullptr && !prog.validator()->ok()) {
      out.ok = false;
      out.message = "Definition 12 violation: " +
                    prog.validator()->first_violation();
      return;
    }
    // Exact chunk partition: the grabbed chunks tile [0, total) with no
    // gap, no overlap, and no chunk larger than the grab size.
    std::vector<Chunk> all;
    for (int core = 0; core < shape_.cores; ++core) {
      const size_t base = static_cast<size_t>(core) * cap;
      for (uint32_t i = 0; i < st->counts[static_cast<size_t>(core)]; ++i) {
        all.push_back(st->chunks[base + i]);
      }
    }
    std::sort(all.begin(), all.end(), [](const Chunk& a, const Chunk& b) {
      return a.begin < b.begin || (a.begin == b.begin && a.end < b.end);
    });
    uint32_t next = 0;
    for (const Chunk& c : all) {
      if (c.begin != next || c.end <= c.begin || c.end > shape_.total ||
          c.end - c.begin > shape_.chunk) {
        out.ok = false;
        out.message = "partition violation on " +
                      std::string(rt::to_string(target_)) + ": chunk [" +
                      std::to_string(c.begin) + "," + std::to_string(c.end) +
                      ") does not extend [0," + std::to_string(next) +
                      ") exactly";
        return;
      }
      next = c.end;
    }
    if (next != shape_.total) {
      out.ok = false;
      out.message = "partition violation on " +
                    std::string(rt::to_string(target_)) + ": chunks cover [0," +
                    std::to_string(next) + ") of [0," +
                    std::to_string(shape_.total) + ")";
    }
  };
  return spec;
}

const char* to_string(AppKind kind) {
  switch (kind) {
    case AppKind::kMFifo: return "mfifo";
    case AppKind::kTaskCounter: return "taskcounter";
  }
  return "?";
}

std::optional<AppKind> app_kind_from_string(std::string_view text) {
  if (text == "mfifo") return AppKind::kMFifo;
  if (text == "taskcounter") return AppKind::kTaskCounter;
  return std::nullopt;
}

std::vector<AppKind> all_app_kinds() {
  return {AppKind::kMFifo, AppKind::kTaskCounter};
}

std::unique_ptr<CheckTarget> make_app_target(AppKind kind, rt::Target target,
                                             rt::FaultInjection faults) {
  switch (kind) {
    case AppKind::kMFifo:
      return std::make_unique<MFifoTarget>(target, MFifoShape{}, faults);
    case AppKind::kTaskCounter:
      return std::make_unique<TaskCounterTarget>(target, TaskCounterShape{},
                                                 faults);
  }
  PMC_CHECK_MSG(false, "unknown app kind");
  return nullptr;
}

// -- CheckSession ------------------------------------------------------------

const char* to_string(EngineState s) {
  switch (s) {
    case EngineState::kReplay: return "replay";
    case EngineState::kSnapshot: return "snapshot";
  }
  return "?";
}

std::optional<EngineState> engine_state_from_string(std::string_view text) {
  if (text == "replay") return EngineState::kReplay;
  if (text == "snapshot") return EngineState::kSnapshot;
  return std::nullopt;
}

CheckSession::CheckSession(SessionOptions opts) : opts_(std::move(opts)) {
  PMC_CHECK(opts_.explore.preemption_bound >= 0);
  if (opts_.jobs < 1) opts_.jobs = 1;
}

bool CheckSession::parallel_engine() const {
  switch (opts_.engine) {
    case Engine::kSequential: return false;
    case Engine::kParallel: return true;
    case Engine::kAuto: return opts_.jobs > 1;
  }
  return false;
}

bool CheckSession::stateful(const CheckTarget& target) const {
  return opts_.engine_state == EngineState::kSnapshot &&
         target.stateful_capable() && sim::Scheduler::fibers_supported();
}

namespace {

StatefulOptions stateful_options(const SessionOptions& opts) {
  StatefulOptions s;
  s.checkpoint_stride = opts.snapshot_stride;
  s.horizon = opts.explore.horizon;
  s.pool_capacity = opts.snapshot_pool;
  return s;
}

void merge_stats(ExploreReport& rep, const StatefulStats& stats) {
  rep.snapshots_taken += stats.snapshots_taken;
  rep.snapshot_hits += stats.pool_hits;
  rep.snapshot_misses += stats.pool_misses;
}

}  // namespace

ExploreReport CheckSession::explore(const CheckTarget& target) const {
  if (!stateful(target)) return explore(target.runner());
  const StatefulOptions sopts = stateful_options(opts_);
  if (parallel_engine()) {
    // One executor per worker: each owns a private Program and pool, so the
    // runners share nothing mutable — same contract as stateless runners.
    std::mutex mu;
    std::vector<std::shared_ptr<StatefulExecutor>> execs;
    ParallelExplorer ex(
        [&]() {
          auto e =
              std::make_shared<StatefulExecutor>(target.make_spec(), sopts);
          {
            std::lock_guard<std::mutex> lk(mu);
            execs.push_back(e);
          }
          return ScheduleRunner([e](ReplayPolicy& p) { return e->run(p); });
        },
        opts_.jobs);
    ExploreReport rep = ex.explore(opts_.explore);
    for (const auto& e : execs) merge_stats(rep, e->stats());
    return rep;
  }
  StatefulExecutor exec(target.make_spec(), sopts);
  Explorer ex(exec.runner());
  ExploreReport rep = ex.explore(opts_.explore);
  merge_stats(rep, exec.stats());
  return rep;
}

ExploreReport CheckSession::explore(const ScheduleRunner& runner) const {
  if (parallel_engine()) {
    ParallelExplorer ex(runner, opts_.jobs);
    return ex.explore(opts_.explore);
  }
  Explorer ex(runner);
  return ex.explore(opts_.explore);
}

RunOutcome CheckSession::replay(const CheckTarget& target,
                                const DecisionString& schedule,
                                bool* fully_applied) const {
  if (stateful(target)) {
    // Replay is one run — a fresh executor costs the same as a stateless
    // replay, and repeated replays (minimize) go through minimize() below.
    StatefulExecutor exec(target.make_spec(), stateful_options(opts_));
    Explorer ex(exec.runner());
    return ex.replay(schedule, opts_.explore.horizon, fully_applied);
  }
  return replay(target.runner(), schedule, fully_applied);
}

RunOutcome CheckSession::replay(const ScheduleRunner& runner,
                                const DecisionString& schedule,
                                bool* fully_applied) const {
  // Replay is inherently sequential; both engines share the same contract.
  Explorer ex(runner);
  return ex.replay(schedule, opts_.explore.horizon, fully_applied);
}

RunOutcome CheckSession::replay_traced(const CheckTarget& target,
                                       const DecisionString& schedule,
                                       obs::TraceRecorder* recorder,
                                       bool* fully_applied) const {
  PMC_CHECK(recorder != nullptr);
  // Replays only consume the verdict, never the DPOR recording.
  ReplayPolicy policy(schedule, opts_.explore.horizon,
                      /*record_footprints=*/false);
  RunOutcome out;
  if (target.stateful_capable()) {
    StatefulSpec spec = target.make_spec();
    spec.opts.trace = recorder;
    out = run_spec_once(spec, policy);
  } else {
    // No ProgramOptions to attach the recorder to: run untraced.
    out = target.run(policy);
  }
  if (fully_applied != nullptr) {
    *fully_applied = policy.unused_overrides() == 0;
  }
  return out;
}

DecisionString CheckSession::minimize(const CheckTarget& target,
                                      DecisionString failing) const {
  if (stateful(target)) {
    if (parallel_engine()) {
      ParallelExplorer ex(
          [&target, sopts = stateful_options(opts_)]() {
            auto e =
                std::make_shared<StatefulExecutor>(target.make_spec(), sopts);
            return ScheduleRunner([e](ReplayPolicy& p) { return e->run(p); });
          },
          opts_.jobs);
      return ex.minimize(std::move(failing), opts_.explore.horizon);
    }
    StatefulExecutor exec(target.make_spec(), stateful_options(opts_));
    Explorer ex(exec.runner());
    return ex.minimize(std::move(failing), opts_.explore.horizon);
  }
  return minimize(target.runner(), std::move(failing));
}

DecisionString CheckSession::minimize(const ScheduleRunner& runner,
                                      DecisionString failing) const {
  if (parallel_engine()) {
    // Round-parallel lowest-index-wins: identical result to the sequential
    // greedy scan at any job count.
    ParallelExplorer ex(runner, opts_.jobs);
    return ex.minimize(std::move(failing), opts_.explore.horizon);
  }
  Explorer ex(runner);
  return ex.minimize(std::move(failing), opts_.explore.horizon);
}

CheckReport CheckSession::check(const CheckTarget& target) const {
  CheckReport rep;
  rep.target = target.name();
  const auto t0 = std::chrono::steady_clock::now();
  const ExploreReport r = explore(target);
  rep.telemetry.explore_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  rep.telemetry.schedules_per_sec =
      rep.telemetry.explore_seconds > 0
          ? static_cast<double>(r.explored) / rep.telemetry.explore_seconds
          : 0;
  rep.telemetry.snapshots_taken = r.snapshots_taken;
  rep.telemetry.snapshot_hits = r.snapshot_hits;
  rep.telemetry.snapshot_misses = r.snapshot_misses;
  rep.telemetry.worker_steals = r.worker_steals;
  rep.telemetry.hb_curve = r.hb_curve;
  rep.explored = r.explored;
  rep.pruned = r.pruned;
  rep.dpor_pruned = r.dpor_pruned;
  rep.distinct_traces = r.distinct_traces;
  rep.failing = r.failing;
  rep.max_decision_points = r.max_decision_points;
  rep.truncated = r.truncated;
  rep.trace_hashes = r.trace_hashes;
  rep.ok = r.failing == 0;
  if (rep.ok) return rep;

  rep.first_failing = r.first_failing;
  rep.first_failing_message = r.first_failing_message;
  // Minimize against the original target first: this is the only schedule a
  // caller can replay without the shrunk target in hand (repro lines), and
  // it must be computed before shrinking shifts the decision steps.
  rep.repro_schedule = minimize(target, r.first_failing);

  if (r.truncated || target.shrink_count() == 0) {
    // Which schedules a truncated exploration covers depends on worker
    // timing, so re-exploration-based target shrinking would be neither
    // deterministic nor sound. Minimize the schedule actually in hand.
    rep.minimized_schedule = rep.repro_schedule;
    rep.minimized_message = replay(target, rep.minimized_schedule).message;
    return rep;
  }

  // Shrink the target: greedily accept any single-step reduction that keeps
  // some schedule failing. Each candidate is judged by *re-exploring* the
  // reduced target — a dropped op shifts every later decision step, so
  // replaying the old string would describe a different schedule. (Shrunk
  // targets have no more decision points than the original, so with the
  // original untruncated none of these re-explorations can truncate either.)
  std::shared_ptr<const CheckTarget> owned;
  const CheckTarget* cur = &target;
  ExploreReport cur_rep = r;
  bool changed = true;
  while (changed) {
    changed = false;
    const size_t n = cur->shrink_count();
    for (size_t i = 0; i < n; ++i) {
      std::unique_ptr<CheckTarget> cand = cur->shrink(i);
      if (cand == nullptr) continue;
      const ExploreReport cand_rep = explore(*cand);
      if (cand_rep.failing > 0) {
        owned = std::move(cand);
        cur = owned.get();
        cur_rep = cand_rep;
        changed = true;
        ++rep.telemetry.shrink_rounds;
        break;
      }
    }
  }
  PMC_CHECK_MSG(cur_rep.failing > 0,
                "minimized target stopped failing — minimizer bug");

  if (owned != nullptr) {
    rep.minimized_schedule = minimize(*cur, cur_rep.first_failing);
    rep.minimized_message = replay(*cur, rep.minimized_schedule).message;
    rep.minimized_listing = cur->describe();
    rep.minimized_target = std::move(owned);
  } else {
    // Nothing was droppable: the original target is already 1-minimal, and
    // its minimized schedule is exactly the repro_schedule in hand.
    rep.minimized_schedule = rep.repro_schedule;
    rep.minimized_message = replay(target, rep.minimized_schedule).message;
  }
  return rep;
}

std::string CheckReport::to_text() const {
  std::string s;
  s += "target: " + target + "\n";
  s += "explored: " + std::to_string(explored) +
       " pruned: " + std::to_string(pruned) +
       " dpor_pruned: " + std::to_string(dpor_pruned) +
       " distinct_traces: " + std::to_string(distinct_traces) +
       " max_decision_points: " + std::to_string(max_decision_points) +
       (truncated ? " truncated" : "") + "\n";
  s += "failing: " + std::to_string(failing) + "\n";
  if (failing > 0) {
    s += "first_failing: \"" + explore::to_string(first_failing) +
         "\": " + first_failing_message + "\n";
    s += "repro_schedule: \"" + explore::to_string(repro_schedule) + "\"\n";
    s += "minimized_schedule: \"" + explore::to_string(minimized_schedule) +
         "\": " + minimized_message + "\n";
    if (!minimized_listing.empty()) {
      s += "minimized_target:\n" + minimized_listing;
    }
  }
  return s;
}

std::string CheckReport::to_json() const {
  // The numeric payload goes through the metrics registry: one export path
  // for session counters, bench numbers, and dashboards alike.
  obs::MetricsRegistry m;
  m.inc("explored", explored);
  m.inc("pruned", pruned);
  m.inc("dpor_pruned", dpor_pruned);
  m.inc("distinct_traces", distinct_traces);
  m.inc("failing", failing);
  m.inc("max_decision_points", max_decision_points);
  m.inc("shrink_rounds", telemetry.shrink_rounds);
  m.inc("snapshots_taken", telemetry.snapshots_taken);
  m.inc("snapshot_hits", telemetry.snapshot_hits);
  m.inc("snapshot_misses", telemetry.snapshot_misses);
  for (size_t w = 0; w < telemetry.worker_steals.size(); ++w) {
    m.inc("steals_worker_" + std::to_string(w), telemetry.worker_steals[w]);
  }
  m.set_gauge("explore_seconds", telemetry.explore_seconds);
  m.set_gauge("schedules_per_sec", telemetry.schedules_per_sec);

  std::string s = "{\"target\":" + obs::json_quote(target);
  s += ",\"ok\":";
  s += ok ? "true" : "false";
  s += ",\"truncated\":";
  s += truncated ? "true" : "false";
  if (failing > 0) {
    s += ",\"first_failing\":" +
         obs::json_quote(explore::to_string(first_failing));
    s += ",\"first_failing_message\":" + obs::json_quote(first_failing_message);
    s += ",\"repro_schedule\":" +
         obs::json_quote(explore::to_string(repro_schedule));
    s += ",\"minimized_schedule\":" +
         obs::json_quote(explore::to_string(minimized_schedule));
  }
  s += ",\"hb_curve\":[";
  for (size_t i = 0; i < telemetry.hb_curve.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(telemetry.hb_curve[i]);
  }
  s += "],\"metrics\":" + m.to_json();
  s += "}";
  return s;
}

}  // namespace pmc::explore
