// Cross-back-end differential fuzzing of generated programs (DESIGN.md §7).
//
// One generated lock-disciplined program is model-checked on every Table II
// back-end through the CheckSession pipeline (explore/check.h): the session
// enumerates preemption-bounded schedules of a GenProgramTarget, and every
// single run must satisfy the dual oracle
//
//  1. the Definition 12 trace validator (the formal model per schedule), and
//  2. final-state agreement — every object's final value equals the
//     generator's closed form, which all back-ends share, so any two
//     back-ends disagreeing (on any schedule) is caught as at least one of
//     them diverging from the closed form.
//
// On failure the session shrinks the *program* first (greedy op dropping
// via GenProgramTarget::shrink, re-exploring after each candidate drop),
// then the *decision string*, and DiffCheck renders the one-command repro
// line every fuzz assertion embeds. DiffCheck itself is a thin adapter:
// target construction, engine selection, and minimization all live in the
// session.
#pragma once

#include <optional>
#include <string>

#include "explore/check.h"
#include "explore/program_gen.h"
#include "runtime/program.h"

namespace pmc::explore {

struct DiffFailure {
  rt::Target target = rt::Target::kNoCC;
  GenProgram program;       // 1-minimal: dropping any single op hides the bug
  DecisionString schedule;  // 1-minimal w.r.t. the minimized program
  std::string message;      // oracle verdict of replaying `schedule`
  std::string repro;        // PMC_FUZZ_SEEDS=… ctest -R … + step:choice replay
};

struct DiffReport {
  // Summed over the back-ends (each is deterministic for a fixed program
  // and bounds, so these totals are job-count-independent).
  uint64_t explored = 0;
  uint64_t pruned = 0;
  uint64_t distinct_traces = 0;
  bool truncated = false;
  bool ok = true;
  /// The failure on the first back-end (in sim_targets() order) that has
  /// one; minimized and replayable.
  std::optional<DiffFailure> failure;
};

class DiffCheck {
 public:
  /// `faults` seeds deliberate protocol bugs (each back-end reads only its
  /// own flag), which the fuzzer must then find — the self-test mode.
  explicit DiffCheck(GenProgram prog, rt::FaultInjection faults = {});

  const GenProgram& program() const { return prog_; }

  /// The CheckTarget for one back-end (a fresh GenProgramTarget).
  std::unique_ptr<CheckTarget> target(rt::Target t) const;

  /// Explores each of `targets` (default: every simulated back-end) under
  /// `cfg` with `jobs` workers; on the first failing back-end, minimizes
  /// program then schedule and fills in the repro line. Deterministic for
  /// fixed inputs at any job count.
  DiffReport check(const ExploreConfig& cfg, int jobs = 1,
                   const std::vector<rt::Target>& targets =
                       rt::sim_targets()) const;

  /// Same, but with the full session configuration — callers that pick the
  /// execution engine (SessionOptions::engine_state) land here.
  DiffReport check(const SessionOptions& opts,
                   const std::vector<rt::Target>& targets =
                       rt::sim_targets()) const;

 private:
  GenProgram prog_;
  rt::FaultInjection faults_;
};

/// The exact repro line fuzz assertions must print (ISSUE satellite): how to
/// re-run the failing seed under ctest, and how to replay the failing
/// schedule directly. When `faults` injects anything, the replay command
/// carries --seed-bug so the CLI re-injects it.
std::string repro_line(const ProgramShape& shape, rt::Target target,
                       const DecisionString& schedule,
                       const rt::FaultInjection& faults = {});

}  // namespace pmc::explore
