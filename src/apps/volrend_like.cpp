#include "apps/volrend_like.h"

#include <algorithm>
#include <cstring>

#include "util/hash.h"
#include "util/rng.h"

namespace pmc::apps {

void VolrendLike::tune(ProgramOptions& opts) const {
  opts.machine.profile.imiss_per_mille = 4;
  opts.machine.profile.priv_miss_per_mille = 8;
}

void VolrendLike::build(Program& prog) {
  counter_.create(prog, "vr.ctr");
  const int n = cfg_.volume;
  // Procedural volume: a blobby density field, deterministic in the seed.
  util::Rng rng(cfg_.seed);
  const int cx = n / 2 + static_cast<int>(rng.next_below(3));
  const int cy = n / 2 - static_cast<int>(rng.next_below(3));
  slabs_.clear();
  std::vector<uint8_t> slab(slab_bytes());
  for (int z = 0; z < n; ++z) {
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        const int dx = x - cx, dy = y - cy, dz = z - n / 2;
        const int d2 = dx * dx + dy * dy + dz * dz;
        const int density = 255 - d2 * 255 / (n * n);
        slab[static_cast<size_t>(y) * n + x] =
            static_cast<uint8_t>(density < 0 ? 0 : density);
      }
    }
    const ObjId id = prog.create_const_object(
        slab_bytes(), Placement::kSdram, "slab" + std::to_string(z));
    prog.init_object(id, slab.data(), slab.size());
    slabs_.push_back(id);
  }
  // Transfer function: opacity (low byte) and color (high bytes) per density.
  transfer_ = prog.create_const_object(256 * 4, Placement::kSdram,
                                       "transfer");
  std::vector<uint32_t> tf(256);
  for (int i = 0; i < 256; ++i) {
    const uint32_t opacity = static_cast<uint32_t>(i < 64 ? 0 : (i - 64) / 3);
    const uint32_t color = static_cast<uint32_t>(255 - i / 2);
    tf[static_cast<size_t>(i)] = (color << 8) | opacity;
  }
  prog.init_object(transfer_, tf.data(), tf.size() * 4);

  img_rows_.clear();
  for (int y = 0; y < cfg_.image; ++y) {
    img_rows_.push_back(
        prog.create_object(static_cast<uint32_t>(cfg_.image) * 4,
                           Placement::kSdram, "img" + std::to_string(y)));
  }
}

void VolrendLike::body(Env& env) {
  const int n = cfg_.volume;
  const uint32_t rows = static_cast<uint32_t>(cfg_.image);
  const uint32_t chunk_size = std::max(
      1u, rows / (static_cast<uint32_t>(env.num_procs()) * 6u));
  std::vector<uint32_t> light(static_cast<size_t>(cfg_.image));
  std::vector<uint32_t> trans(static_cast<size_t>(cfg_.image));
  for (;;) {
    const auto chunk = counter_.grab(env, rows, chunk_size);
    if (chunk.empty()) break;
    env.entry_ro(transfer_);
    for (uint32_t y = chunk.begin; y < chunk.end; ++y) {
      const int vy = static_cast<int>(y) * n / cfg_.image;
      std::fill(light.begin(), light.end(), 0);
      std::fill(trans.begin(), trans.end(), 256);  // transmittance, Q8
      // Front-to-back march, one slab section at a time (intra-section
      // reuse across the whole row of rays).
      for (int z = 0; z < n; ++z) {
        env.entry_ro(slabs_[z]);
        for (int x = 0; x < cfg_.image; ++x) {
          if (trans[static_cast<size_t>(x)] == 0) continue;
          const int vx = x * n / cfg_.image;
          const uint8_t density = env.ld<uint8_t>(
              slabs_[z], static_cast<uint32_t>(vy * n + vx));
          const uint32_t entry =
              env.ld<uint32_t>(transfer_, static_cast<uint32_t>(density) * 4);
          const uint32_t opacity = entry & 0xff;
          const uint32_t color = entry >> 8;
          auto& t = trans[static_cast<size_t>(x)];
          light[static_cast<size_t>(x)] += color * opacity * t >> 16;
          t = t * (256 - opacity) >> 8;
          env.compute(cfg_.sample_cost);
        }
        env.exit_ro(slabs_[z]);
      }
      env.entry_x(img_rows_[y]);
      for (int x = 0; x < cfg_.image; ++x) {
        env.st<uint32_t>(img_rows_[y], static_cast<uint32_t>(x) * 4,
                         light[static_cast<size_t>(x)]);
      }
      env.exit_x(img_rows_[y]);
    }
    env.exit_ro(transfer_);
  }
  env.barrier();
}

uint64_t VolrendLike::checksum(Program& prog) {
  uint64_t h = util::kFnvOffset;
  std::vector<uint8_t> row(static_cast<size_t>(cfg_.image) * 4);
  for (const ObjId r : img_rows_) {
    prog.read_object(r, row.data(), row.size());
    h = util::fnv1a(row.data(), row.size(), h);
  }
  return h;
}

}  // namespace pmc::apps
