// RADIOSITY-like kernel (SPLASH-2 substitution, DESIGN.md §2).
//
// Iterative energy redistribution over an irregular patch graph with
// randomized neighbor lists. Two shared-data classes mirror the original's
// mix:
//  * per-patch energy words, gathered across the random graph — single-use,
//    "chaotic" accesses that caching barely helps (the reason §VI-A gives
//    for RADIOSITY's smaller SWCC gain);
//  * a form-factor table consulted on every gather — high-reuse data that
//    caching does help.
// Energy is double-buffered (Jacobi) with barriers between iterations so the
// result is bit-identical across back-ends and core counts.
#pragma once

#include <vector>

#include "apps/app.h"
#include "apps/task_queue.h"

namespace pmc::apps {

struct RadiosityConfig {
  int patches = 160;
  int neighbors = 8;       // out-degree of the random gather graph
  int iterations = 3;
  uint32_t gather_cost = 60;  // instructions per neighbor gather
  uint32_t update_cost = 200; // instructions per patch update
  uint32_t ff_entries = 128; // form-factor table entries (u32 each)
  uint64_t seed = 0x5eed5eedULL;
};

class RadiosityLike final : public App {
 public:
  explicit RadiosityLike(const RadiosityConfig& cfg) : cfg_(cfg) {}

  const char* name() const override { return "radiosity_like"; }
  void tune(ProgramOptions& opts) const override;
  void build(Program& prog) override;
  void body(Env& env) override;
  uint64_t checksum(Program& prog) override;

 private:
  // Topology object layout: reflect (u32 per-mille), then neighbor ids.
  static constexpr uint32_t kReflect = 0;
  static constexpr uint32_t kNeigh = 4;
  uint32_t topo_bytes() const {
    return kNeigh + 4u * static_cast<uint32_t>(cfg_.neighbors);
  }

  RadiosityConfig cfg_;
  std::vector<ObjId> energy_[2];  // per patch, per Jacobi phase (4 B each)
  std::vector<ObjId> topo_;       // per patch, read-only after init
  ObjId ff_table_ = -1;           // shared form-factor table
  std::vector<TaskCounter> counters_;  // one per iteration
};

}  // namespace pmc::apps
