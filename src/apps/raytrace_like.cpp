#include "apps/raytrace_like.h"

#include <algorithm>
#include <cstring>

#include "util/fixed_point.h"
#include "util/hash.h"
#include "util/rng.h"

namespace pmc::apps {

void RaytraceLike::tune(ProgramOptions& opts) const {
  opts.machine.profile.imiss_per_mille = 3;
  opts.machine.profile.priv_miss_per_mille = 6;
}

void RaytraceLike::build(Program& prog) {
  util::Rng rng(cfg_.seed);
  counter_.create(prog, "rt.ctr");
  const uint32_t scene_bytes =
      kSphereBytes * static_cast<uint32_t>(cfg_.spheres);
  scene_ = prog.create_const_object(scene_bytes, Placement::kSdram, "scene");
  std::vector<uint8_t> scene(scene_bytes);
  for (int s = 0; s < cfg_.spheres; ++s) {
    int32_t rec[5];
    rec[0] = static_cast<int32_t>(rng.next_below(cfg_.width));   // cx (px)
    rec[1] = static_cast<int32_t>(rng.next_below(cfg_.height));  // cy
    rec[2] = static_cast<int32_t>(rng.next_in(16, 240));         // z depth
    rec[3] = static_cast<int32_t>(rng.next_in(3, 9));            // radius
    rec[4] = static_cast<int32_t>(rng.next_in(40, 255));         // color
    std::memcpy(scene.data() + s * kSphereBytes, rec, sizeof rec);
  }
  prog.init_object(scene_, scene.data(), scene.size());

  fb_rows_.clear();
  for (int y = 0; y < cfg_.height; ++y) {
    fb_rows_.push_back(prog.create_object(static_cast<uint32_t>(cfg_.width),
                                          Placement::kSdram,
                                          "fb" + std::to_string(y)));
  }
}

void RaytraceLike::body(Env& env) {
  const uint32_t rows = static_cast<uint32_t>(cfg_.height);
  const uint32_t chunk_size = std::max(
      1u, rows / (static_cast<uint32_t>(env.num_procs()) * 6u));
  for (;;) {
    const auto chunk = counter_.grab(env, rows, chunk_size);
    if (chunk.empty()) break;
    env.entry_ro(scene_);  // held across the chunk: intra-section reuse
    for (uint32_t y = chunk.begin; y < chunk.end; ++y) {
      env.entry_x(fb_rows_[y]);
      for (int x = 0; x < cfg_.width; ++x) {
        // Orthographic ray (x, y, +z): nearest sphere by hit depth.
        int32_t best_z = INT32_MAX;
        int32_t best_shade = 0;
        for (int s = 0; s < cfg_.spheres; ++s) {
          const uint32_t base = static_cast<uint32_t>(s) * kSphereBytes;
          const int32_t cx = env.ld<int32_t>(scene_, base + 0);
          const int32_t cy = env.ld<int32_t>(scene_, base + 4);
          const int64_t dx = x - cx;
          const int64_t dy = static_cast<int64_t>(y) - cy;
          const int64_t d2 = dx * dx + dy * dy;
          const int32_t r = env.ld<int32_t>(scene_, base + 12);
          const int64_t r2 = static_cast<int64_t>(r) * r;
          env.compute(cfg_.test_cost);
          if (d2 > r2) continue;
          const int32_t cz = env.ld<int32_t>(scene_, base + 8);
          const int32_t hit_z =
              cz - static_cast<int32_t>(util::isqrt(
                       static_cast<uint64_t>(r2 - d2)));
          if (hit_z >= best_z) continue;
          best_z = hit_z;
          const int32_t color = env.ld<int32_t>(scene_, base + 16);
          // Lambert-ish: brighter near the silhouette center.
          best_shade =
              static_cast<int32_t>(color * (r2 - d2) / (r2 == 0 ? 1 : r2));
        }
        env.compute(cfg_.shade_cost);
        env.st<uint8_t>(fb_rows_[y], static_cast<uint32_t>(x),
                        static_cast<uint8_t>(best_shade & 0xff));
      }
      env.exit_x(fb_rows_[y]);
    }
    env.exit_ro(scene_);
  }
  env.barrier();
}

uint64_t RaytraceLike::checksum(Program& prog) {
  uint64_t h = util::kFnvOffset;
  std::vector<uint8_t> row(static_cast<size_t>(cfg_.width));
  for (const ObjId r : fb_rows_) {
    prog.read_object(r, row.data(), row.size());
    h = util::fnv1a(row.data(), row.size(), h);
  }
  return h;
}

}  // namespace pmc::apps
