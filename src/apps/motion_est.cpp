#include "apps/motion_est.h"

#include <cstring>

#include "runtime/scope.h"
#include "util/hash.h"
#include "util/rng.h"

namespace pmc::apps {

void MotionEst::tune(ProgramOptions& opts) const {
  // Tight SAD loops: small instruction footprint, tiny private data.
  opts.machine.profile.imiss_per_mille = 1;
  opts.machine.profile.priv_miss_per_mille = 2;
}

namespace {
/// Smooth deterministic texture so SAD landscapes have a unique minimum.
uint8_t texel(uint64_t seed, int x, int y) {
  const uint64_t h = pmc::util::hash_combine(
      pmc::util::hash_combine(seed, static_cast<uint64_t>(x / 3)),
      static_cast<uint64_t>(y / 3));
  return static_cast<uint8_t>((h >> 8) ^ (h >> 24));
}
}  // namespace

void MotionEst::build(Program& prog) {
  util::Rng rng(cfg_.seed);
  counter_.create(prog, "me.ctr");
  const int nblocks = cfg_.blocks_x * cfg_.blocks_y;
  const int w = window();
  std::vector<uint8_t> win(window_bytes());
  std::vector<uint8_t> blk(block_bytes());
  windows_.clear();
  blocks_.clear();
  vectors_.clear();
  expected_.clear();
  for (int b = 0; b < nblocks; ++b) {
    // Reference-frame window for this block (its own texture region).
    const int ox = (b % cfg_.blocks_x) * 1000;
    const int oy = (b / cfg_.blocks_x) * 1000;
    for (int y = 0; y < w; ++y) {
      for (int x = 0; x < w; ++x) {
        win[static_cast<size_t>(y) * w + x] = texel(cfg_.seed, ox + x, oy + y);
      }
    }
    // The "current" block is the window content at a known shift.
    Vec v;
    v.dx = static_cast<int32_t>(rng.next_in(-cfg_.search, cfg_.search));
    v.dy = static_cast<int32_t>(rng.next_in(-cfg_.search, cfg_.search));
    const int bx = cfg_.search + v.dx;
    const int by = cfg_.search + v.dy;
    for (int y = 0; y < cfg_.block; ++y) {
      for (int x = 0; x < cfg_.block; ++x) {
        blk[static_cast<size_t>(y) * cfg_.block + x] =
            win[static_cast<size_t>(by + y) * w + (bx + x)];
      }
    }
    expected_.push_back(v);

    const std::string tag = std::to_string(b);
    const ObjId wid = prog.create_const_object(
        window_bytes(), Placement::kReplicated, "win" + tag);
    prog.init_object(wid, win.data(), win.size());
    const ObjId bid = prog.create_const_object(
        block_bytes(), Placement::kReplicated, "blk" + tag);
    prog.init_object(bid, blk.data(), blk.size());
    const ObjId vid = prog.create_typed<Vec>({}, Placement::kReplicated,
                                             "vec" + tag);
    windows_.push_back(wid);
    blocks_.push_back(bid);
    vectors_.push_back(vid);
  }
}

void MotionEst::body(Env& env) {
  const int nblocks = cfg_.blocks_x * cfg_.blocks_y;
  const int w = window();
  for (;;) {
    const auto chunk =
        counter_.grab(env, static_cast<uint32_t>(nblocks), 1);
    if (chunk.empty()) break;
    const uint32_t b = chunk.begin;
    // Fig. 10 worker(): scopes stage the data, the match function reads it
    // many times — on the SPM back-end all of that is local.
    rt::ScopeRO<uint8_t> window_s(env, windows_[b]);
    rt::ScopeRO<uint8_t> mblock_s(env, blocks_[b]);
    rt::ScopeX<Vec> vector_s(env, vectors_[b]);

    int64_t best_sad = INT64_MAX;
    Vec best{};
    for (int dy = -cfg_.search; dy <= cfg_.search; ++dy) {
      for (int dx = -cfg_.search; dx <= cfg_.search; ++dx) {
        const int bx = cfg_.search + dx;
        const int by = cfg_.search + dy;
        int64_t sad = 0;
        for (int y = 0; y < cfg_.block && sad < best_sad; ++y) {
          for (int x = 0; x < cfg_.block; ++x) {
            const int32_t a = window_s.at<uint8_t>(
                static_cast<uint32_t>((by + y) * w + (bx + x)));
            const int32_t c = mblock_s.at<uint8_t>(
                static_cast<uint32_t>(y * cfg_.block + x));
            sad += a > c ? a - c : c - a;
            env.compute(cfg_.sad_cost);
          }
        }
        if (sad < best_sad) {
          best_sad = sad;
          best = {dx, dy};
        }
      }
    }
    vector_s = best;  // Fig. 10 line 30
  }
  env.barrier();
}

std::vector<MotionEst::Vec> MotionEst::found(Program& prog) const {
  std::vector<Vec> out;
  out.reserve(vectors_.size());
  for (const ObjId v : vectors_) {
    Vec vec;
    prog.read_object(v, &vec, sizeof vec);
    out.push_back(vec);
  }
  return out;
}

uint64_t MotionEst::checksum(Program& prog) {
  uint64_t h = util::kFnvOffset;
  for (const Vec& v : found(prog)) {
    h = util::hash_combine(h, static_cast<uint64_t>(static_cast<uint32_t>(v.dx)));
    h = util::hash_combine(h, static_cast<uint64_t>(static_cast<uint32_t>(v.dy)));
  }
  return h;
}

}  // namespace pmc::apps
