#include "apps/radiosity_like.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"
#include "util/hash.h"
#include "util/rng.h"

namespace pmc::apps {

void RadiosityLike::tune(ProgramOptions& opts) const {
  // Irregular control flow and a large private footprint: heavy background
  // load (cf. RADIOSITY's I-stall and private-read bars in Fig. 8).
  opts.machine.profile.imiss_per_mille = 8;
  opts.machine.profile.priv_miss_per_mille = 14;
}

void RadiosityLike::build(Program& prog) {
  util::Rng rng(cfg_.seed);
  counters_.resize(static_cast<size_t>(cfg_.iterations));
  for (int i = 0; i < cfg_.iterations; ++i) {
    counters_[i].create(prog, "rad.ctr" + std::to_string(i));
  }
  // Form-factor table: consulted on every gather, heavily reused.
  ff_table_ = prog.create_const_object(cfg_.ff_entries * 4,
                                       Placement::kSdram, "ff");
  std::vector<uint32_t> ff(cfg_.ff_entries);
  for (uint32_t i = 0; i < cfg_.ff_entries; ++i) {
    ff[i] = static_cast<uint32_t>(rng.next_in(100, 999));  // per-mille weight
  }
  prog.init_object(ff_table_, ff.data(), ff.size() * 4);

  energy_[0].clear();
  energy_[1].clear();
  topo_.clear();
  std::vector<uint8_t> topo(topo_bytes(), 0);
  for (int p = 0; p < cfg_.patches; ++p) {
    const std::string tag = std::to_string(p);
    // Initial energy: deterministic pseudo-random Q16.16 in [1, 17).
    const int32_t e0 = static_cast<int32_t>(
        (rng.next_in(1, 16) << 16) | ((p * 37) % 0x10000));
    energy_[0].push_back(prog.create_typed<int32_t>(
        e0, Placement::kSdram, "ea" + tag));
    energy_[1].push_back(prog.create_typed<int32_t>(
        0, Placement::kSdram, "eb" + tag));
    const uint32_t reflect =
        static_cast<uint32_t>(rng.next_in(300, 900));  // per-mille
    std::memcpy(topo.data() + kReflect, &reflect, 4);
    for (int k = 0; k < cfg_.neighbors; ++k) {
      // Random gather graph — the "chaotic" addressing of §VI-A.
      uint32_t q = static_cast<uint32_t>(rng.next_below(cfg_.patches));
      if (q == static_cast<uint32_t>(p)) q = (q + 1) % cfg_.patches;
      std::memcpy(topo.data() + kNeigh + 4 * k, &q, 4);
    }
    const ObjId t = prog.create_const_object(topo_bytes(), Placement::kSdram,
                                             "topo" + tag);
    prog.init_object(t, topo.data(), topo.size());
    topo_.push_back(t);
  }
}

void RadiosityLike::body(Env& env) {
  for (int it = 0; it < cfg_.iterations; ++it) {
    const auto& src = energy_[it % 2];
    const auto& dst = energy_[(it + 1) % 2];
    const uint32_t chunk_size = std::max(
        2u, static_cast<uint32_t>(cfg_.patches) /
                (static_cast<uint32_t>(env.num_procs()) * 6u));
    for (;;) {
      const auto chunk =
          counters_[static_cast<size_t>(it)].grab(
              env, static_cast<uint32_t>(cfg_.patches), chunk_size);
      if (chunk.empty()) break;
      // The form-factor table is held read-only across the chunk: the
      // high-reuse class that SWCC turns into cache hits.
      env.entry_ro(ff_table_);
      for (uint32_t p = chunk.begin; p < chunk.end; ++p) {
        env.entry_ro(topo_[p]);
        const uint32_t reflect = env.ld<uint32_t>(topo_[p], kReflect);
        uint32_t neigh[64];
        PMC_CHECK(cfg_.neighbors <= 64);
        for (int k = 0; k < cfg_.neighbors; ++k) {
          neigh[k] = env.ld<uint32_t>(topo_[p], kNeigh + 4 * k);
        }
        env.exit_ro(topo_[p]);

        // Gather the previous phase's energies across the random graph —
        // word-sized objects, so these are plain slow reads (no ro-lock).
        int64_t gathered = 0;
        for (int k = 0; k < cfg_.neighbors; ++k) {
          const uint32_t q = neigh[k];
          env.entry_ro(src[q]);
          const int32_t e = env.ld<int32_t>(src[q]);
          env.exit_ro(src[q]);
          // Interpolated form factor: three table lookups per gather — the
          // reusable shared-read class that SWCC turns into cache hits.
          const uint32_t i0 = (p + q) % cfg_.ff_entries;
          const uint32_t ff0 = env.ld<uint32_t>(ff_table_, i0 * 4);
          const uint32_t ff1 = env.ld<uint32_t>(
              ff_table_, ((i0 + 1) % cfg_.ff_entries) * 4);
          const uint32_t ff2 = env.ld<uint32_t>(
              ff_table_, ((i0 + 7) % cfg_.ff_entries) * 4);
          const uint32_t ff = (ff0 * 2 + ff1 + ff2) / 4;
          gathered += static_cast<int64_t>(e) * ff / 1000;
          env.compute(cfg_.gather_cost);
        }

        env.entry_ro(src[p]);
        const int32_t own = env.ld<int32_t>(src[p]);
        env.exit_ro(src[p]);
        // new = 0.7·own + reflect‰ · mean(gathered) · 0.3
        const int64_t mean = gathered / cfg_.neighbors;
        const int32_t neu = static_cast<int32_t>(
            static_cast<int64_t>(own) * 700 / 1000 +
            mean * reflect / 1000 * 300 / 1000);
        env.compute(cfg_.update_cost);
        env.entry_x(dst[p]);
        env.st(dst[p], 0, neu);
        env.exit_x(dst[p]);
      }
      env.exit_ro(ff_table_);
    }
    env.barrier();
  }
}

uint64_t RadiosityLike::checksum(Program& prog) {
  const auto& last = energy_[cfg_.iterations % 2];
  uint64_t h = util::kFnvOffset;
  for (const ObjId p : last) {
    const int32_t e = prog.result<int32_t>(p);
    h = util::hash_combine(h, static_cast<uint64_t>(static_cast<uint32_t>(e)));
  }
  return h;
}

}  // namespace pmc::apps
