// Motion estimation (paper §VI-C, Fig. 10): full-search block matching of
// the current frame's macroblocks inside search windows of the reference
// frame. Blocks and windows are staged through ScopeRO, the result vector
// through ScopeX — the typical scratch-pad workload: both are "read many
// times" per work packet.
//
// The current-frame block is cut from the reference frame at a known offset,
// so the search must recover exactly that motion vector (SAD 0) —
// correctness is self-checking.
#pragma once

#include <vector>

#include "apps/app.h"
#include "apps/task_queue.h"

namespace pmc::apps {

struct MotionConfig {
  int blocks_x = 4;
  int blocks_y = 3;
  int block = 8;        // macroblock edge (pixels)
  int search = 4;       // search range ± pixels
  uint32_t sad_cost = 3;  // instructions per pixel difference
  uint64_t seed = 0x0e57ULL;
};

class MotionEst final : public App {
 public:
  explicit MotionEst(const MotionConfig& cfg) : cfg_(cfg) {}

  const char* name() const override { return "motion_est"; }
  void tune(ProgramOptions& opts) const override;
  void build(Program& prog) override;
  void body(Env& env) override;
  uint64_t checksum(Program& prog) override;

  /// The vector each block must find (the known shift).
  struct Vec {
    int32_t dx = 0, dy = 0;
  };
  const std::vector<Vec>& expected() const { return expected_; }
  std::vector<Vec> found(Program& prog) const;

 private:
  int window() const { return cfg_.block + 2 * cfg_.search; }
  uint32_t window_bytes() const {
    return static_cast<uint32_t>(window() * window());
  }
  uint32_t block_bytes() const {
    return static_cast<uint32_t>(cfg_.block * cfg_.block);
  }

  MotionConfig cfg_;
  std::vector<ObjId> windows_;  // per work packet (Fig. 10 work_t.window)
  std::vector<ObjId> blocks_;   // per work packet (work_t.mblock)
  std::vector<ObjId> vectors_;  // per work packet (work_t.vector)
  std::vector<Vec> expected_;
  TaskCounter counter_;
};

}  // namespace pmc::apps
