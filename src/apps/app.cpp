#include "apps/app.h"

#include <algorithm>

namespace pmc::apps {

AppRunResult run_app(App& app, ProgramOptions opts) {
  app.tune(opts);
  Program prog(opts);
  app.build(prog);
  prog.run([&](Env& env) { app.body(env); });
  AppRunResult r;
  r.checksum = app.checksum(prog);
  if (prog.machine() != nullptr) {
    r.stats = prog.stats_sum();
    for (int c = 0; c < prog.cores(); ++c) {
      r.makespan = std::max(r.makespan, prog.machine()->stats(c).cycles_total);
    }
    if (prog.validator() != nullptr) {
      r.validated_ok = prog.validator()->ok();
    }
    prog.machine()->export_metrics(r.metrics);
  }
  return r;
}

}  // namespace pmc::apps
