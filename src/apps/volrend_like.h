// VOLREND-like kernel (SPLASH-2 substitution, DESIGN.md §2).
//
// Front-to-back parallel-projection volume rendering of a procedural u8
// volume stored as z-slab objects, with a shared transfer-function table —
// read-mostly shared data with slab-granular reuse, the second Fig. 8 app
// class whose shared-read stalls vanish under SWCC.
#pragma once

#include <vector>

#include "apps/app.h"
#include "apps/task_queue.h"

namespace pmc::apps {

struct VolrendConfig {
  int volume = 24;  // cubic edge (voxels)
  int image = 32;   // square output image edge
  
  uint32_t sample_cost = 24;  // instructions per voxel sample
  uint64_t seed = 0xb01dULL;
};

class VolrendLike final : public App {
 public:
  explicit VolrendLike(const VolrendConfig& cfg) : cfg_(cfg) {}

  const char* name() const override { return "volrend_like"; }
  void tune(ProgramOptions& opts) const override;
  void build(Program& prog) override;
  void body(Env& env) override;
  uint64_t checksum(Program& prog) override;

 private:
  uint32_t slab_bytes() const {
    return static_cast<uint32_t>(cfg_.volume * cfg_.volume);
  }

  VolrendConfig cfg_;
  std::vector<ObjId> slabs_;     // one per z plane: volume² voxels
  ObjId transfer_ = -1;          // 256-entry opacity/color table (u32)
  std::vector<ObjId> img_rows_;  // u32 accumulators per pixel
  TaskCounter counter_;
};

}  // namespace pmc::apps
