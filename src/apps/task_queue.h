// Dynamic work distribution: a shared chunk counter behind an entry_x pair.
#pragma once

#include "runtime/env.h"
#include "runtime/program.h"

namespace pmc::apps {

class TaskCounter {
 public:
  TaskCounter() = default;
  void create(rt::Program& prog, std::string name = "task_counter") {
    ctr_ = prog.create_typed<uint32_t>(0, rt::Placement::kReplicated,
                                       std::move(name));
  }

  struct Chunk {
    uint32_t begin = 0;
    uint32_t end = 0;
    bool empty() const { return begin >= end; }
  };

  /// Grabs the next [begin, end) chunk of `total` items, or an empty chunk.
  Chunk grab(rt::Env& env, uint32_t total, uint32_t chunk_size) {
    env.entry_x(ctr_);
    const uint32_t begin = env.ld<uint32_t>(ctr_);
    Chunk c{begin, std::min(total, begin + chunk_size)};
    if (!c.empty()) env.st(ctr_, 0, c.end);
    env.exit_x(ctr_);
    return c;
  }

 private:
  rt::ObjId ctr_ = -1;
};

}  // namespace pmc::apps
