// Common application harness: build objects, run a per-core body, extract a
// deterministic checksum. All kernels use integer/fixed-point arithmetic so
// the checksum must be bit-identical across every back-end — the paper's
// portability claim as an executable property.
#pragma once

#include <cstdint>

#include "obs/metrics.h"
#include "runtime/program.h"

namespace pmc::apps {

using rt::Env;
using rt::ObjId;
using rt::Placement;
using rt::Program;
using rt::ProgramOptions;
using rt::Target;

class App {
 public:
  virtual ~App() = default;
  virtual const char* name() const = 0;
  /// Adjusts machine knobs (workload profile, local memory size, ...).
  virtual void tune(ProgramOptions& opts) const { (void)opts; }
  /// Creates and initializes the shared objects (before run).
  virtual void build(Program& prog) = 0;
  /// Per-core body.
  virtual void body(Env& env) = 0;
  /// Deterministic digest of the results (after run).
  virtual uint64_t checksum(Program& prog) = 0;
};

struct AppRunResult {
  uint64_t checksum = 0;
  sim::CoreStats stats;     // aggregate over cores (zeros for host target)
  uint64_t makespan = 0;    // max per-core cycle count (0 for host)
  bool validated_ok = true; // Definition 12 check (true when not validated)
  /// Machine-level counters and histograms (Machine::export_metrics): NoC
  /// packet/stall totals and port-queue waits. Empty for the host target.
  obs::MetricsRegistry metrics;
};

/// Builds a Program with `opts`, runs the app, digests the results.
AppRunResult run_app(App& app, ProgramOptions opts);

}  // namespace pmc::apps
