// RAYTRACE-like kernel (SPLASH-2 substitution, DESIGN.md §2).
//
// Orthographic rays against a read-mostly sphere scene: every pixel loops
// over the scene object, so shared reads have massive reuse inside each
// read-only section — exactly the access class whose shared-read stalls
// collapse under SWCC in Fig. 8. All math is integer (Q16.16 + isqrt).
#pragma once

#include <vector>

#include "apps/app.h"
#include "apps/task_queue.h"

namespace pmc::apps {

struct RaytraceConfig {
  int width = 48;
  int height = 48;
  int spheres = 24;
  uint32_t test_cost = 40;   // instructions per sphere test
  uint32_t shade_cost = 40;  // instructions per pixel beyond tests
  uint64_t seed = 0x7a37ULL;
};

class RaytraceLike final : public App {
 public:
  explicit RaytraceLike(const RaytraceConfig& cfg) : cfg_(cfg) {}

  const char* name() const override { return "raytrace_like"; }
  void tune(ProgramOptions& opts) const override;
  void build(Program& prog) override;
  void body(Env& env) override;
  uint64_t checksum(Program& prog) override;

 private:
  // Sphere record inside the scene object: cx, cy, z, radius, color (i32).
  static constexpr uint32_t kSphereBytes = 20;

  RaytraceConfig cfg_;
  ObjId scene_ = -1;
  std::vector<ObjId> fb_rows_;
  TaskCounter counter_;
};

}  // namespace pmc::apps
