// Multiple-reader, multiple-writer FIFO — a faithful port of paper Fig. 9.
//
// Every reader receives every element (broadcast semantics). The write
// pointer, the per-reader read pointers, and each buffer slot are separate
// shared objects; with the DSM back-end all pointer polling happens in
// local memory, which is the case study's point. The fences and flushes are
// placed exactly where Fig. 9 puts them; the essential-ordering comments
// cite the figure's edge annotations.
//
// Like the paper ("checks for an int overflow of the pointers have been
// left out"), pointers are assumed not to wrap.
#pragma once

#include <string>
#include <vector>

#include "runtime/env.h"
#include "runtime/program.h"

namespace pmc::apps {

class MFifo {
 public:
  /// Creates the FIFO's shared objects (before Program::run).
  MFifo(rt::Program& prog, uint32_t elem_bytes, uint32_t depth, int readers,
        const std::string& name = "fifo") {
    elem_bytes_ = elem_bytes;
    depth_ = depth;
    readers_ = readers;
    write_ptr_ = prog.create_typed<uint32_t>(0, rt::Placement::kReplicated,
                                             name + ".wp");
    for (int r = 0; r < readers; ++r) {
      read_ptr_.push_back(prog.create_typed<uint32_t>(
          0, rt::Placement::kReplicated, name + ".rp" + std::to_string(r)));
    }
    for (uint32_t i = 0; i < depth; ++i) {
      buf_.push_back(prog.create_object(elem_bytes,
                                        rt::Placement::kReplicated,
                                        name + ".buf" + std::to_string(i)));
    }
  }

  uint32_t depth() const { return depth_; }
  int readers() const { return readers_; }

  /// Fig. 9 push(): blocks (in simulated time) until a slot is free.
  void push(rt::Env& env, const void* data) {
    env.entry_x(write_ptr_);                       // line 7
    const uint32_t wp_raw = env.ld<uint32_t>(write_ptr_);
    const uint32_t wp = wp_raw % depth_;           // line 8
    for (int i = 0; i < readers_; ++i) {           // lines 10–15
      uint32_t rp;
      do {
        env.entry_ro(read_ptr_[i]);
        rp = env.ld<uint32_t>(read_ptr_[i]);
        env.exit_ro(read_ptr_[i]);
        // Wait until all readers got buf[wp]: slot wp_raw%N is reusable once
        // every reader consumed element wp_raw - N.
      } while (static_cast<int64_t>(rp) <=
               static_cast<int64_t>(wp_raw) - static_cast<int64_t>(depth_));
    }
    env.fence();                                   // line 16 (≺F: pins the
    env.entry_x(buf_[wp]);                         // entry behind the polls)
    env.write(buf_[wp], 0, data, elem_bytes_);     // line 18
    env.exit_x(buf_[wp]);                          // line 19 (w ≺P R)
    env.fence();                                   // line 20 (R ≺F F ≺F w)
    env.st<uint32_t>(write_ptr_, 0, wp_raw + 1);   // line 21
    env.flush(write_ptr_);                         // line 22
    env.exit_x(write_ptr_);                        // line 23
  }

  /// Fig. 9 pop() for `reader`: blocks until data is available.
  void pop(rt::Env& env, int reader, void* out) {
    env.entry_ro(read_ptr_[reader]);               // line 27
    const uint32_t rp_raw = env.ld<uint32_t>(read_ptr_[reader]);
    const uint32_t rp = rp_raw % depth_;           // line 28
    env.exit_ro(read_ptr_[reader]);                // line 29
    uint32_t wp;
    do {                                           // lines 30–34
      env.entry_ro(write_ptr_);
      wp = env.ld<uint32_t>(write_ptr_);
      env.exit_ro(write_ptr_);
    } while (wp <= rp_raw);                        // wait until data written
    env.fence();                                   // line 35 (≺F)
    env.entry_x(buf_[rp]);                         // line 36 (≺S: pulls the
    env.read(buf_[rp], 0, out, elem_bytes_);       // writer's version)
    env.exit_x(buf_[rp]);                          // line 38
    env.fence();                                   // line 39
    env.entry_x(read_ptr_[reader]);                // line 40
    env.st<uint32_t>(read_ptr_[reader], 0, rp_raw + 1);  // line 41
    env.flush(read_ptr_[reader]);                  // line 42
    env.exit_x(read_ptr_[reader]);                 // line 43
  }

 private:
  uint32_t elem_bytes_ = 0;
  uint32_t depth_ = 0;
  int readers_ = 0;
  rt::ObjId write_ptr_ = -1;
  std::vector<rt::ObjId> read_ptr_;
  std::vector<rt::ObjId> buf_;
};

}  // namespace pmc::apps
