// Small deterministic hashing helpers (FNV-1a), used for state fingerprints
// and for mapping object contents to model "values".
#pragma once

#include <cstddef>
#include <cstdint>

namespace pmc::util {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr uint64_t fnv1a(const uint8_t* data, size_t n, uint64_t h = kFnvOffset) {
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

constexpr uint64_t hash_combine(uint64_t h, uint64_t v) {
  // Treat v as 8 bytes.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace pmc::util
