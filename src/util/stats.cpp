#include "util/stats.h"

#include <cmath>
#include <cstdio>
#include <numeric>

#include "util/check.h"

namespace pmc::util {

void Summary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Summary::sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double Summary::mean() const {
  PMC_CHECK(!samples_.empty());
  return sum() / static_cast<double>(samples_.size());
}

double Summary::min() const {
  PMC_CHECK(!samples_.empty());
  ensure_sorted();
  return samples_.front();
}

double Summary::max() const {
  PMC_CHECK(!samples_.empty());
  ensure_sorted();
  return samples_.back();
}

double Summary::percentile(double p) const {
  PMC_CHECK(!samples_.empty());
  PMC_CHECK(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::string pct(double numerator, double denominator) {
  char buf[32];
  const double v = denominator == 0.0 ? 0.0 : 100.0 * numerator / denominator;
  std::snprintf(buf, sizeof buf, "%.1f%%", v);
  return buf;
}

std::string human_count(uint64_t v) {
  char buf[32];
  if (v >= 1000ULL * 1000 * 1000) {
    std::snprintf(buf, sizeof buf, "%.2fG", static_cast<double>(v) / 1e9);
  } else if (v >= 1000ULL * 1000) {
    std::snprintf(buf, sizeof buf, "%.2fM", static_cast<double>(v) / 1e6);
  } else if (v >= 1000ULL) {
    std::snprintf(buf, sizeof buf, "%.2fk", static_cast<double>(v) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  }
  return buf;
}

}  // namespace pmc::util
