#include "util/table.h"

#include <algorithm>
#include <sstream>

namespace pmc::util {

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::render(bool with_header) const {
  if (rows_.empty()) return "";
  size_t ncols = 0;
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<size_t> width(ncols, 0);
  for (const auto& r : rows_) {
    for (size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::ostringstream os;
  for (size_t ri = 0; ri < rows_.size(); ++ri) {
    const auto& r = rows_[ri];
    for (size_t c = 0; c < ncols; ++c) {
      const std::string cell = c < r.size() ? r[c] : "";
      os << "| " << cell << std::string(width[c] - cell.size(), ' ') << " ";
    }
    os << "|\n";
    if (ri == 0 && with_header) {
      for (size_t c = 0; c < ncols; ++c) {
        os << "|" << std::string(width[c] + 2, '-');
      }
      os << "|\n";
    }
  }
  return os.str();
}

}  // namespace pmc::util
