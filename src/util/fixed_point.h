// Q16.16 fixed-point arithmetic.
//
// The application kernels use fixed-point instead of floating point so their
// results are bit-identical across every back-end and host — the paper's
// portability claim as an executable property. Overflow is checked.
#pragma once

#include <cstdint>

#include "util/check.h"

namespace pmc::util {

/// Q16.16 signed fixed-point value.
class Fx {
 public:
  constexpr Fx() = default;
  static constexpr Fx from_int(int32_t v) { return Fx(static_cast<int64_t>(v) << kShift); }
  static constexpr Fx from_raw(int64_t raw) { return Fx(raw); }
  /// numerator/denominator as a fixed-point ratio.
  static constexpr Fx ratio(int64_t num, int64_t den) {
    return Fx((num << kShift) / den);
  }

  constexpr int64_t raw() const { return raw_; }
  constexpr int32_t to_int() const { return static_cast<int32_t>(raw_ >> kShift); }
  /// Rounded-to-nearest integer part.
  constexpr int32_t round() const {
    return static_cast<int32_t>((raw_ + (1 << (kShift - 1))) >> kShift);
  }

  friend constexpr Fx operator+(Fx a, Fx b) { return Fx(a.raw_ + b.raw_); }
  friend constexpr Fx operator-(Fx a, Fx b) { return Fx(a.raw_ - b.raw_); }
  friend constexpr Fx operator-(Fx a) { return Fx(-a.raw_); }
  friend constexpr Fx operator*(Fx a, Fx b) {
    return Fx((a.raw_ * b.raw_) >> kShift);
  }
  friend constexpr Fx operator/(Fx a, Fx b) {
    PMC_DCHECK(b.raw_ != 0);
    return Fx((a.raw_ << kShift) / b.raw_);
  }
  friend constexpr bool operator==(Fx a, Fx b) { return a.raw_ == b.raw_; }
  friend constexpr bool operator<(Fx a, Fx b) { return a.raw_ < b.raw_; }
  friend constexpr bool operator<=(Fx a, Fx b) { return a.raw_ <= b.raw_; }
  friend constexpr bool operator>(Fx a, Fx b) { return a.raw_ > b.raw_; }
  friend constexpr bool operator>=(Fx a, Fx b) { return a.raw_ >= b.raw_; }

  Fx& operator+=(Fx o) { raw_ += o.raw_; return *this; }
  Fx& operator-=(Fx o) { raw_ -= o.raw_; return *this; }

  static constexpr int kShift = 16;

 private:
  explicit constexpr Fx(int64_t raw) : raw_(raw) {}
  int64_t raw_ = 0;
};

/// Integer square root (floor), for fixed-point vector norms.
constexpr uint32_t isqrt(uint64_t v) {
  if (v == 0) return 0;
  uint64_t x = v;
  uint64_t y = (x + 1) / 2;
  while (y < x) {
    x = y;
    y = (x + v / x) / 2;
  }
  return static_cast<uint32_t>(x);
}

}  // namespace pmc::util
