// ASCII table rendering for benchmark harness output (Fig. 8-style tables).
#pragma once

#include <string>
#include <vector>

namespace pmc::util {

/// Column-aligned ASCII table. First added row can serve as header
/// (rendered with a separator underneath when render(true)).
class Table {
 public:
  void add_row(std::vector<std::string> cells);
  /// Renders with padding; if with_header, a rule is drawn under row 0.
  std::string render(bool with_header = true) const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pmc::util
