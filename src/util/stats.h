// Simple descriptive statistics and percentage helpers used by the benchmark
// harnesses.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace pmc::util {

/// Accumulates samples; provides min/max/mean/percentiles.
class Summary {
 public:
  void add(double v) { samples_.push_back(v); sorted_ = false; }
  size_t count() const { return samples_.size(); }
  double sum() const;
  double mean() const;
  double min() const;
  double max() const;
  /// p in [0,100]; nearest-rank percentile.
  double percentile(double p) const;

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Percentage with one decimal, e.g. "38.4%".
std::string pct(double numerator, double denominator);

/// Human-readable cycle count, e.g. "12.4M".
std::string human_count(uint64_t v);

}  // namespace pmc::util
