// Checked assertions for the PMC library.
//
// PMC_CHECK is always on (also in Release builds): the simulator and the
// memory-model engine are validation tools, so internal invariant violations
// must never pass silently. PMC_DCHECK compiles out in Release.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pmc::util {

/// Thrown when a PMC_CHECK fails. Tests rely on this being catchable.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void raise_check_failure(const char* cond, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}

}  // namespace pmc::util

#define PMC_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond))                                                          \
      ::pmc::util::raise_check_failure(#cond, __FILE__, __LINE__, "");    \
  } while (0)

#define PMC_CHECK_MSG(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream pmc_check_os_;                                   \
      pmc_check_os_ << msg;                                               \
      ::pmc::util::raise_check_failure(#cond, __FILE__, __LINE__,         \
                                       pmc_check_os_.str());              \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define PMC_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define PMC_DCHECK(cond) PMC_CHECK(cond)
#endif
