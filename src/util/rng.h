// Deterministic pseudo-random number generation.
//
// All randomness in workload generators flows through these generators so a
// given seed reproduces the exact same workload on every platform. No
// std::random_device, no global state.
#pragma once

#include <cstdint>

namespace pmc::util {

/// SplitMix64: used to spread user seeds into full 64-bit state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(uint64_t seed) : state_(seed) {}

  constexpr uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256** — fast, high-quality, deterministic PRNG.
class Rng {
 public:
  explicit constexpr Rng(uint64_t seed) : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  constexpr uint64_t next_u64() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  constexpr uint32_t next_u32() { return static_cast<uint32_t>(next_u64() >> 32); }

  /// Unbiased integer in [0, bound). bound must be > 0.
  constexpr uint64_t next_below(uint64_t bound) {
    // Lemire-style rejection; determinism matters more than speed here, so a
    // simple threshold rejection loop is fine.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Integer in [lo, hi] inclusive.
  constexpr int64_t next_in(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(next_below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with probability num/den.
  constexpr bool chance(uint64_t num, uint64_t den) { return next_below(den) < num; }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

}  // namespace pmc::util
