// bench_explore: throughput of the schedule-exploration engine.
//
// Explores fig5_mp_annotated (message passing, the paper's running example)
// on every simulated back-end under a fixed preemption bound and horizon,
// reporting schedules/second and the pruning ratio, plus how many schedules
// the seeded-bug mode needs before the injected missing-flush fault is
// found. Every schedule is a full program re-execution (stateless model
// checking), so schedules/sec tracks the whole sim+runtime+validator stack.
//
//   bench_explore [--preemptions=N] [--horizon=H] [--json[=PATH]]
#include <chrono>

#include "bench/bench_common.h"
#include "explore/litmus_driver.h"
#include "model/litmus_library.h"

using namespace pmc;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  explore::ExploreConfig cfg;
  cfg.preemption_bound =
      static_cast<int>(bench::flag_int(argc, argv, "preemptions", 2));
  cfg.horizon =
      static_cast<uint64_t>(bench::flag_int(argc, argv, "horizon", 20));

  bench::JsonReport json("explore");
  json.add("preemptions", cfg.preemption_bound);
  json.add("horizon", cfg.horizon);

  std::printf("schedule exploration throughput (fig5_mp_annotated, "
              "preemptions<=%d, horizon=%llu)\n\n",
              cfg.preemption_bound,
              static_cast<unsigned long long>(cfg.horizon));
  util::Table table;
  table.add_row({"back-end", "explored", "pruned", "prune", "sched/s"});
  uint64_t total_explored = 0;
  uint64_t total_pruned = 0;
  for (rt::Target t : rt::sim_targets()) {
    const explore::LitmusCheck check(model::litmus::fig5_mp_annotated(), t);
    explore::Explorer ex(check.runner());
    const auto t0 = std::chrono::steady_clock::now();
    const auto rep = ex.explore(cfg);
    const double secs = seconds_since(t0);
    if (rep.failing != 0) {
      std::fprintf(stderr, "!! %s: %llu model-invalid schedule(s)\n",
                   rt::to_string(t),
                   static_cast<unsigned long long>(rep.failing));
      return 1;
    }
    const double rate = secs > 0 ? static_cast<double>(rep.explored) / secs
                                 : 0.0;
    total_explored += rep.explored;
    total_pruned += rep.pruned;
    table.add_row({rt::to_string(t), bench::fmt_u64(rep.explored),
                   bench::fmt_u64(rep.pruned),
                   bench::pc(static_cast<double>(rep.pruned),
                             static_cast<double>(rep.explored + rep.pruned)),
                   bench::fmt_u64(static_cast<uint64_t>(rate))});
    json.add(std::string(rt::to_string(t)) + "_schedules_per_sec", rate);
    json.add(std::string(rt::to_string(t)) + "_explored", rep.explored);
  }
  std::printf("%s\n", table.render().c_str());
  json.add("total_explored", total_explored);
  json.add("total_pruned", total_pruned);
  json.add("prune_ratio",
           total_explored + total_pruned == 0
               ? 0.0
               : static_cast<double>(total_pruned) /
                     static_cast<double>(total_explored + total_pruned));

  // Seeded-bug mode: schedules until the injected missing flush is exposed.
  uint64_t worst_to_find = 0;
  for (rt::Target t : rt::sim_targets()) {
    if (!explore::has_seeded_fault(t)) continue;
    const explore::LitmusCheck check = explore::seeded_bug_check(t);
    explore::Explorer ex(check.runner());
    const auto rep = ex.explore(cfg);
    if (rep.failing == 0) {
      std::fprintf(stderr, "!! %s: seeded fault not found\n",
                   rt::to_string(t));
      return 1;
    }
    std::printf("seed-bug %-5s found in %llu schedules, first failing \"%s\""
                " (%llu of %llu explored failing)\n",
                rt::to_string(t),
                static_cast<unsigned long long>(
                    rep.schedules_to_first_failure),
                explore::to_string(rep.first_failing).c_str(),
                static_cast<unsigned long long>(rep.failing),
                static_cast<unsigned long long>(rep.explored));
    worst_to_find = std::max(worst_to_find, rep.schedules_to_first_failure);
  }
  json.add("seedbug_worst_schedules", worst_to_find);
  return json.maybe_write(argc, argv) ? 0 : 1;
}
